package sulong_test

// Hang-regression suite for the execution governor: a non-terminating guest
// program must never hang the host. Every tier — the tier-0 interpreters,
// tier-1 compiled code, and the instrumented native machines — honors the
// same step budget, and all of them poll the wall-clock/context governor at
// block boundaries.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	sulong "repro"
	"repro/internal/core"
)

const spinForever = `
int main(void) {
    volatile long i = 0;
    for (;;) { i++; }
    return 0;
}
`

// hotSpin only hangs when asked to: f(0) terminates quickly (so the JIT can
// warm up on it), f(1) loops forever in the by-then-compiled body.
const hotSpin = `
long f(int hang) {
    long i = 0;
    while (hang || i < 100) { i++; }
    return i;
}
int main(int argc, char **argv) {
    long total = 0;
    for (int k = 0; k < 64; k++) { total += f(0); }
    total += f(1); /* hangs in tier-1 code */
    return (int)total;
}
`

// TestStepLimitStopsInfiniteLoopEveryEngine: while(1) exhausts MaxSteps and
// surfaces a *core.LimitError under all four engines.
func TestStepLimitStopsInfiniteLoopEveryEngine(t *testing.T) {
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			_, err := sulong.Run(spinForever, sulong.Config{Engine: eng, MaxSteps: 200_000})
			var limit *core.LimitError
			if !errors.As(err, &limit) {
				t.Fatalf("%v: got err=%v, want *core.LimitError", eng, err)
			}
		})
	}
}

// TestStepLimitStopsHotJITLoop is the issue's acceptance criterion: an
// infinite loop inside a function hot enough to be tier-1-compiled must
// still exhaust the budget — compiled code charges fuel per block, it is
// not free.
func TestStepLimitStopsHotJITLoop(t *testing.T) {
	for _, jit := range []bool{false, true} {
		t.Run(fmt.Sprintf("jit=%v", jit), func(t *testing.T) {
			cfg := sulong.Config{
				Engine:   sulong.EngineSafeSulong,
				MaxSteps: 1_000_000,
				JIT:      jit,
			}
			var compiled []string
			if jit {
				cfg.JITThreshold = 8
				cfg.OnCompile = func(name string) { compiled = append(compiled, name) }
			}
			_, err := sulong.Run(hotSpin, cfg)
			var limit *core.LimitError
			if !errors.As(err, &limit) {
				t.Fatalf("jit=%v: got err=%v, want *core.LimitError", jit, err)
			}
			if jit {
				found := false
				for _, name := range compiled {
					if strings.Contains(name, "f") {
						found = true
					}
				}
				if !found {
					t.Fatalf("jit=true: hot function was never tier-1 compiled (compiled: %v) — the test is not exercising compiled code", compiled)
				}
			}
		})
	}
}

// TestStepLimitIsDeterministic: the same program and budget produce the
// same LimitError text on every run — the property that keeps timeout
// cells byte-identical across matrix worker counts.
func TestStepLimitIsDeterministic(t *testing.T) {
	msg := func() string {
		_, err := sulong.Run(spinForever, sulong.Config{Engine: sulong.EngineSafeSulong, MaxSteps: 100_000})
		if err == nil {
			t.Fatal("expected error")
		}
		return err.Error()
	}
	first := msg()
	for i := 0; i < 3; i++ {
		if got := msg(); got != first {
			t.Fatalf("run %d: %q != %q", i, got, first)
		}
	}
}

// TestWallClockDeadlineEveryEngine: with no step budget, the cooperative
// wall-clock watchdog stops the loop and reports *core.DeadlineError.
func TestWallClockDeadlineEveryEngine(t *testing.T) {
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			start := time.Now()
			_, err := sulong.Run(spinForever, sulong.Config{Engine: eng, Timeout: 100 * time.Millisecond})
			var deadline *core.DeadlineError
			if !errors.As(err, &deadline) {
				t.Fatalf("%v: got err=%v, want *core.DeadlineError", eng, err)
			}
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Fatalf("%v: cancellation took %v — the engine is not polling the governor", eng, elapsed)
			}
		})
	}
}

// TestWallClockDeadlineHotJITLoop: tier-1 compiled code also polls the
// governor — a deadline interrupts a loop running as compiled closures.
func TestWallClockDeadlineHotJITLoop(t *testing.T) {
	_, err := sulong.Run(hotSpin, sulong.Config{
		Engine:       sulong.EngineSafeSulong,
		JIT:          true,
		JITThreshold: 8,
		Timeout:      100 * time.Millisecond,
	})
	var deadline *core.DeadlineError
	if !errors.As(err, &deadline) {
		t.Fatalf("got err=%v, want *core.DeadlineError", err)
	}
}

// TestRunCtxCancellation: caller-driven cancellation via context stops the
// run and the error names the context's cause.
func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := sulong.RunCtx(ctx, spinForever, sulong.Config{Engine: sulong.EngineSafeSulong})
	var deadline *core.DeadlineError
	if !errors.As(err, &deadline) {
		t.Fatalf("got err=%v, want *core.DeadlineError", err)
	}
	if !strings.Contains(deadline.Cause, "context") {
		t.Errorf("cause %q does not mention the context", deadline.Cause)
	}
}

// TestRunCtxPreDeadlined: an already-expired context never starts spinning.
func TestRunCtxPreDeadlined(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := sulong.RunCtx(ctx, spinForever, sulong.Config{Engine: sulong.EngineNative})
	var deadline *core.DeadlineError
	if !errors.As(err, &deadline) {
		t.Fatalf("got err=%v, want *core.DeadlineError", err)
	}
}

// TestTimeoutUnsetDoesNotCancel: governor machinery must be inert for
// ordinary runs — a terminating program with no timeout behaves as before.
func TestTimeoutUnsetDoesNotCancel(t *testing.T) {
	res, err := sulong.Run(`int main(void){ return 7; }`, sulong.Config{Engine: sulong.EngineSafeSulong})
	if err != nil || res.ExitCode != 7 {
		t.Fatalf("got (%d, %v), want (7, nil)", res.ExitCode, err)
	}
}

// TestPanicContainment: an engine panic (provoked by a deliberately
// corrupted module) is recovered at the RunModule boundary and surfaces as
// a structured *core.InternalError instead of killing the process.
func TestPanicContainment(t *testing.T) {
	mod, err := sulong.CompileFor(`int main(void){ return 0; }`,
		sulong.Config{Engine: sulong.EngineSafeSulong, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt main: a nil entry block makes the interpreter dereference nil
	// — exactly the class of engine bug the containment boundary is for.
	corrupted := false
	for _, f := range mod.Funcs {
		if f.Name == "main" && len(f.Blocks) > 0 {
			f.Blocks[0] = nil
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("could not find main to corrupt")
	}
	_, err = sulong.RunModule(mod, sulong.Config{Engine: sulong.EngineSafeSulong})
	var internal *core.InternalError
	if !errors.As(err, &internal) {
		t.Fatalf("got err=%v, want *core.InternalError", err)
	}
	if internal.Stack == "" {
		t.Error("InternalError carries no stack trace")
	}
}

// TestUngetcEOFIsNoOp: C11 7.21.7.10p3 — ungetc(EOF, stream) returns EOF
// without touching the pushback buffer, so the next getchar() still reads
// the real input. Regression for the hang where EOF (-1) was pushed back
// as 0xFF and re-read forever.
func TestUngetcEOFIsNoOp(t *testing.T) {
	src := `
#include <stdio.h>
int main(void) {
    int r = ungetc(EOF, stdin);
    int c = getchar();
    printf("%d %d\n", r, c);
    return 0;
}
`
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			res, err := sulong.Run(src, sulong.Config{
				Engine:   eng,
				Stdin:    strings.NewReader("A"),
				MaxSteps: 10_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := strings.TrimSpace(res.Stdout), "-1 65"; got != want {
				t.Fatalf("%v: output %q, want %q", eng, got, want)
			}
		})
	}
}

// TestUngetcPushbackStillWorks: the ordinary pushback path is unchanged.
func TestUngetcPushbackStillWorks(t *testing.T) {
	src := `
#include <stdio.h>
int main(void) {
    ungetc('Z', stdin);
    printf("%c%c\n", getchar(), getchar());
    return 0;
}
`
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			res, err := sulong.Run(src, sulong.Config{
				Engine:   eng,
				Stdin:    strings.NewReader("A"),
				MaxSteps: 10_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := strings.TrimSpace(res.Stdout), "ZA"; got != want {
				t.Fatalf("%v: output %q, want %q", eng, got, want)
			}
		})
	}
}
