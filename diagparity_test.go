package sulong_test

import (
	"strings"
	"testing"

	sulong "repro"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
)

// runTier executes one corpus case under Safe Sulong with the given tier
// selection and returns the result.
func runTier(t *testing.T, c corpus.Case, jit bool) sulong.Result {
	t.Helper()
	cfg := sulong.Config{
		Engine:   sulong.EngineSafeSulong,
		Args:     c.Args,
		Stdin:    strings.NewReader(c.Stdin),
		MaxSteps: harness.DefaultMaxSteps,
		JIT:      jit,
	}
	if jit {
		// Compile every function on its first call so that the buggy code
		// actually executes in tier-1 (most corpus programs call each
		// function only once).
		cfg.JITThreshold = 1
	}
	res, err := sulong.Run(c.Source, cfg)
	if err != nil {
		t.Fatalf("%s (jit=%v): %v", c.Name, jit, err)
	}
	return res
}

// TestTierParityDiagnostics runs the full 68-bug corpus under Safe Sulong
// twice — tier-0 only, and tier-1 with compile-on-first-call — and requires
// the rendered diagnostics to be byte-identical. The JIT must not change
// what is reported or how: same bug kind, same backtraces, same text.
func TestTierParityDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep skipped in -short mode")
	}
	for _, c := range corpus.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			interp := runTier(t, c, false)
			jitted := runTier(t, c, true)

			if (interp.Bug == nil) != (jitted.Bug == nil) {
				t.Fatalf("tiers disagree on detection: tier-0 bug=%v, tier-1 bug=%v",
					interp.Bug, jitted.Bug)
			}
			if interp.ExitCode != jitted.ExitCode {
				t.Errorf("exit codes diverge: tier-0 %d, tier-1 %d",
					interp.ExitCode, jitted.ExitCode)
			}
			if len(interp.Diagnostics) != len(jitted.Diagnostics) {
				t.Fatalf("diagnostic counts diverge: tier-0 %d, tier-1 %d",
					len(interp.Diagnostics), len(jitted.Diagnostics))
			}
			for i := range interp.Diagnostics {
				d0 := interp.Diagnostics[i].Render()
				d1 := jitted.Diagnostics[i].Render()
				if d0 != d1 {
					t.Errorf("diagnostic %d renders diverge:\n--- tier-0 ---\n%s\n--- tier-1 ---\n%s", i, d0, d1)
				}
			}
			if interp.Bug == nil {
				return
			}

			// Every Safe Sulong detection must carry a non-empty access
			// call stack whose leaf matches the report's location.
			for tier, res := range map[string]sulong.Result{"tier-0": interp, "tier-1": jitted} {
				if res.Bug.AccessStack.IsEmpty() {
					t.Errorf("%s: detection has empty access stack: %v", tier, res.Bug)
					continue
				}
				top, _ := res.Bug.AccessStack.Top()
				if res.Bug.Func != "" && top.Func != res.Bug.Func {
					t.Errorf("%s: stack leaf %q != report site %q", tier, top.Func, res.Bug.Func)
				}
			}

			// Heap use-after-free and double-free reports must blame both
			// the allocation site and the free site.
			kind := interp.Bug.Kind
			if interp.Bug.Mem == core.HeapMem && (kind == core.UseAfterFree || kind == core.DoubleFree) {
				for tier, res := range map[string]sulong.Result{"tier-0": interp, "tier-1": jitted} {
					if res.Bug.AllocStack.IsEmpty() {
						t.Errorf("%s: %s report lacks an allocation-site stack", tier, kind)
					}
					if res.Bug.FreeStack.IsEmpty() {
						t.Errorf("%s: %s report lacks a free-site stack", tier, kind)
					}
				}
			}
		})
	}
}

// TestHeapBlameAllTools checks the alloc/free-site acceptance criterion on
// the tools that can see heap history: for a use-after-free, Safe Sulong,
// ASan, and memcheck must all report the allocation site and the free site.
func TestHeapBlameAllTools(t *testing.T) {
	const src = `#include <stdlib.h>
int *make(void) { return malloc(4 * sizeof(int)); }
void drop(int *p) { free(p); }
int main(void) {
    int *p = make();
    drop(p);
    return p[2];
}`
	for _, eng := range []sulong.Engine{sulong.EngineSafeSulong, sulong.EngineASan, sulong.EngineMemcheck} {
		res, err := sulong.Run(src, sulong.Config{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if res.Bug == nil {
			t.Fatalf("%v: use-after-free not detected", eng)
		}
		if res.Bug.AccessStack.IsEmpty() {
			t.Errorf("%v: no access stack", eng)
		}
		if res.Bug.AllocStack.IsEmpty() {
			t.Errorf("%v: no allocation-site stack", eng)
		}
		if res.Bug.FreeStack.IsEmpty() {
			t.Errorf("%v: no free-site stack", eng)
		}
		if len(res.Diagnostics) == 0 {
			t.Fatalf("%v: no structured diagnostics", eng)
		}
		r := res.Diagnostics[0].Render()
		for _, want := range []string{"allocated by:", "freed by:", "make", "drop"} {
			if !strings.Contains(r, want) {
				t.Errorf("%v: rendered diagnostic missing %q:\n%s", eng, want, r)
			}
		}
	}
}
