package sulong_test

import (
	"strings"
	"testing"

	sulong "repro"
)

// csemCase is one C-semantics program with its expected behaviour. Every
// case runs under both the managed engine and the simulated native machine;
// the two execution models must agree with each other and with the C
// standard — differential testing of the whole stack (front end, both
// interpreters, both libcs).
type csemCase struct {
	name string
	src  string
	out  string
	exit int
}

var csemCases = []csemCase{
	{"int-arith", `#include <stdio.h>
int main(void){ printf("%d %d %d %d %d\n", 7+3, 7-3, 7*3, 7/3, 7%3); return 0; }`,
		"10 4 21 2 1\n", 0},
	{"negative-div-rem", `#include <stdio.h>
int main(void){ printf("%d %d %d %d\n", -7/2, -7%2, 7/-2, 7%-2); return 0; }`,
		"-3 -1 -3 1\n", 0},
	{"unsigned-wrap", `#include <stdio.h>
int main(void){ unsigned int u = 0; u--; printf("%u\n", u); return 0; }`,
		"4294967295\n", 0},
	{"unsigned-compare", `#include <stdio.h>
int main(void){ unsigned int a = 0xffffffffu; int b = -1;
  printf("%d %d\n", a > 5u, (unsigned)b == a); return 0; }`,
		"1 1\n", 0},
	{"char-sign-extension", `#include <stdio.h>
int main(void){ char c = (char)200; printf("%d\n", (int)c); return 0; }`,
		"-56\n", 0},
	{"unsigned-char", `#include <stdio.h>
int main(void){ unsigned char c = (unsigned char)200; printf("%d\n", (int)c); return 0; }`,
		"200\n", 0},
	{"short-overflow", `#include <stdio.h>
int main(void){ short s = 32767; s++; printf("%d\n", (int)s); return 0; }`,
		"-32768\n", 0},
	{"shifts", `#include <stdio.h>
int main(void){ int a = -16; unsigned int b = 0x80000000u;
  printf("%d %d %u\n", a >> 2, 1 << 10, b >> 4); return 0; }`,
		"-4 1024 134217728\n", 0},
	{"bitwise", `#include <stdio.h>
int main(void){ printf("%d %d %d %d\n", 12 & 10, 12 | 10, 12 ^ 10, ~0); return 0; }`,
		"8 14 6 -1\n", 0},
	{"float-arith", `#include <stdio.h>
int main(void){ double d = 1.0 / 3.0; float f = 0.5f;
  printf("%.4f %.2f %.1f\n", d, f + 0.25f, 10.0 * 0.5); return 0; }`,
		"0.3333 0.75 5.0\n", 0},
	{"float-int-conversions", `#include <stdio.h>
int main(void){ double d = 3.99; int i = (int)d; double back = i;
  printf("%d %.1f %d\n", i, back, (int)-2.7); return 0; }`,
		"3 3.0 -2\n", 0},
	{"integer-promotion", `#include <stdio.h>
int main(void){ unsigned char a = 255, b = 1; printf("%d\n", a + b); return 0; }`,
		"256\n", 0},
	{"ternary", `#include <stdio.h>
int main(void){ int x = 5; printf("%d %d\n", x > 3 ? 1 : 2, x < 3 ? 1 : 2); return 0; }`,
		"1 2\n", 0},
	{"short-circuit", `#include <stdio.h>
int hits = 0;
int bump(void){ hits++; return 1; }
int main(void){
  int a = 0 && bump();
  int b = 1 || bump();
  printf("%d %d %d\n", a, b, hits);
  return 0; }`,
		"0 1 0\n", 0},
	{"comma-operator", `#include <stdio.h>
int main(void){ int x = (1, 2, 3); printf("%d\n", x); return 0; }`,
		"3\n", 0},
	{"pre-post-incr", `#include <stdio.h>
int main(void){ int i = 5; printf("%d %d %d %d\n", i++, i, ++i, i); return 0; }`,
		"5 6 7 7\n", 0},
	{"compound-assign", `#include <stdio.h>
int main(void){ int x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 2; x |= 1;
  printf("%d\n", x); return 0; }`,
		"9\n", 0},
	{"pointer-arith", `#include <stdio.h>
int main(void){ int a[5] = {10, 20, 30, 40, 50}; int *p = a + 1;
  printf("%d %d %d %d\n", *p, p[2], *(p + 1), (int)(&a[4] - &a[1])); return 0; }`,
		"20 40 30 3\n", 0},
	{"pointer-compare", `#include <stdio.h>
int main(void){ int a[4]; int *p = a, *q = a + 2;
  printf("%d %d %d\n", p < q, p == a, q - p); return 0; }`,
		"1 1 2\n", 0},
	{"array-decay-param", `#include <stdio.h>
int sum(int *v, int n){ int s = 0; int i; for (i = 0; i < n; i++) s += v[i]; return s; }
int main(void){ int a[4] = {1, 2, 3, 4}; printf("%d\n", sum(a, 4)); return 0; }`,
		"10\n", 0},
	{"struct-members", `#include <stdio.h>
struct point { int x; int y; };
int main(void){ struct point p; p.x = 3; p.y = 4;
  printf("%d %d %d\n", p.x, p.y, (int)sizeof(struct point)); return 0; }`,
		"3 4 8\n", 0},
	{"struct-pointer-arrow", `#include <stdio.h>
#include <stdlib.h>
struct node { int v; struct node *next; };
int main(void){
  struct node *a = malloc(sizeof(struct node));
  struct node *b = malloc(sizeof(struct node));
  a->v = 1; a->next = b; b->v = 2; b->next = NULL;
  printf("%d %d\n", a->v, a->next->v);
  free(a); free(b);
  return 0; }`,
		"1 2\n", 0},
	{"struct-assignment", `#include <stdio.h>
struct pair { int a; int b; };
int main(void){ struct pair x; struct pair y; x.a = 1; x.b = 2; y = x; x.a = 9;
  printf("%d %d\n", y.a, y.b); return 0; }`,
		"1 2\n", 0},
	{"struct-layout-padding", `#include <stdio.h>
struct s { char c; int i; char c2; double d; };
int main(void){ printf("%d\n", (int)sizeof(struct s)); return 0; }`,
		"24\n", 0},
	{"nested-struct", `#include <stdio.h>
struct inner { int v[2]; };
struct outer { int tag; struct inner in; };
int main(void){ struct outer o; o.tag = 7; o.in.v[0] = 1; o.in.v[1] = 2;
  printf("%d %d %d\n", o.tag, o.in.v[0], o.in.v[1]); return 0; }`,
		"7 1 2\n", 0},
	{"union-overlay", `#include <stdio.h>
union u { int i; unsigned char b[4]; };
int main(void){ union u x; x.i = 0x01020304;
  printf("%d %d\n", x.b[0], x.b[3]); return 0; }`,
		"4 1\n", 0},
	{"enum-values", `#include <stdio.h>
enum color { RED, GREEN = 5, BLUE };
int main(void){ printf("%d %d %d\n", RED, GREEN, BLUE); return 0; }`,
		"0 5 6\n", 0},
	{"typedef", `#include <stdio.h>
typedef unsigned long word;
typedef struct { int v; } box;
int main(void){ word w = 42; box b; b.v = 7; printf("%d %d\n", (int)w, b.v); return 0; }`,
		"42 7\n", 0},
	{"switch-fallthrough", `#include <stdio.h>
int classify(int v){
  switch (v) {
  case 0:
  case 1: return 10;
  case 2: return 20;
  default: return 30;
  }
}
int main(void){ printf("%d %d %d %d\n", classify(0), classify(1), classify(2), classify(9)); return 0; }`,
		"10 10 20 30\n", 0},
	{"switch-break-fall", `#include <stdio.h>
int main(void){ int total = 0; int v;
  for (v = 0; v < 3; v++) {
    switch (v) {
    case 0: total += 1; /* fall through */
    case 1: total += 10; break;
    case 2: total += 100; break;
    }
  }
  printf("%d\n", total); return 0; }`,
		"121\n", 0},
	{"goto", `#include <stdio.h>
int main(void){ int i = 0;
again:
  i++;
  if (i < 3) goto again;
  printf("%d\n", i); return 0; }`,
		"3\n", 0},
	{"do-while", `#include <stdio.h>
int main(void){ int n = 0; do { n++; } while (n < 5); printf("%d\n", n); return 0; }`,
		"5\n", 0},
	{"break-continue", `#include <stdio.h>
int main(void){ int s = 0; int i;
  for (i = 0; i < 10; i++) { if (i == 7) break; if (i % 2) continue; s += i; }
  printf("%d\n", s); return 0; }`,
		"12\n", 0},
	{"recursion", `#include <stdio.h>
int fact(int n){ return n <= 1 ? 1 : n * fact(n - 1); }
int main(void){ printf("%d\n", fact(10)); return 0; }`,
		"3628800\n", 0},
	{"mutual-recursion", `#include <stdio.h>
int isOdd(int n);
int isEven(int n){ return n == 0 ? 1 : isOdd(n - 1); }
int isOdd(int n){ return n == 0 ? 0 : isEven(n - 1); }
int main(void){ printf("%d %d\n", isEven(10), isOdd(7)); return 0; }`,
		"1 1\n", 0},
	{"function-pointer", `#include <stdio.h>
int add(int a, int b){ return a + b; }
int mul(int a, int b){ return a * b; }
int apply(int (*f)(int, int), int a, int b){ return f(a, b); }
int main(void){ int (*op)(int, int) = add;
  printf("%d %d\n", apply(op, 3, 4), apply(mul, 3, 4)); return 0; }`,
		"7 12\n", 0},
	{"function-pointer-array", `#include <stdio.h>
int one(void){ return 1; }
int two(void){ return 2; }
int main(void){ int (*fs[2])(void) = {one, two};
  printf("%d %d\n", fs[0](), fs[1]()); return 0; }`,
		"1 2\n", 0},
	{"string-literals", `#include <stdio.h>
#include <string.h>
int main(void){ const char *s = "hello" " " "world";
  printf("%s %d %c\n", s, (int)strlen(s), s[6]); return 0; }`,
		"hello world 11 w\n", 0},
	{"string-functions", `#include <stdio.h>
#include <string.h>
int main(void){
  char buf[32];
  strcpy(buf, "abc");
  strcat(buf, "def");
  printf("%s %d %d %d\n", buf, strcmp(buf, "abcdef"), strcmp("a", "b") < 0,
         strncmp("abcX", "abcY", 3));
  printf("%s %s\n", strchr(buf, 'd'), strstr(buf, "cd"));
  return 0; }`,
		"abcdef 0 1 0\ndef cdef\n", 0},
	{"strtok-loop", `#include <stdio.h>
#include <string.h>
int main(void){
  char line[32] = "a,bb,ccc";
  char *tok = strtok(line, ",");
  while (tok != NULL) { printf("[%s]", tok); tok = strtok(NULL, ","); }
  printf("\n");
  return 0; }`,
		"[a][bb][ccc]\n", 0},
	{"mem-functions", `#include <stdio.h>
#include <string.h>
int main(void){
  char a[8] = "abcdefg";
  char b[8];
  memcpy(b, a, 8);
  memset(a, 'x', 3);
  printf("%s %s %d\n", a, b, memcmp(a, b, 8) != 0);
  memmove(a + 1, a, 6);
  a[7] = '\0';
  printf("%s\n", a);
  return 0; }`,
		"xxxdefg abcdefg 1\nxxxxdef\n", 0},
	{"sprintf-formats", `#include <stdio.h>
int main(void){
  char buf[64];
  int n = sprintf(buf, "%d|%05d|%-4d|%x|%X|%o|%c|%s|%%", -42, 42, 7, 255, 255, 8, 'Z', "ok");
  printf("%s %d\n", buf, n);
  return 0; }`,
		"-42|00042|7   |ff|FF|10|Z|ok|% 30\n", 0},
	{"printf-floats", `#include <stdio.h>
int main(void){ printf("%.2f %.0f %e %g\n", 3.14159, 2.71, 12345.678, 0.0001); return 0; }`,
		"3.14 3 1.234568e+04 0.0001\n", 0},
	{"printf-width-star", `#include <stdio.h>
int main(void){ printf("[%*d] [%.*f]\n", 6, 42, 3, 2.5); return 0; }`,
		"[    42] [2.500]\n", 0},
	{"snprintf-truncates", `#include <stdio.h>
int main(void){ char buf[6]; int n = snprintf(buf, 6, "abcdefgh");
  printf("%s %d\n", buf, n); return 0; }`,
		"abcde 8\n", 0},
	{"sscanf-like-atoi", `#include <stdio.h>
#include <stdlib.h>
int main(void){ printf("%d %ld %.1f\n", atoi("  -42xyz"), atol("123456789012"), atof("2.5e1")); return 0; }`,
		"-42 123456789012 25.0\n", 0},
	{"strtol-bases", `#include <stdio.h>
#include <stdlib.h>
int main(void){
  char *end;
  long a = strtol("ff", &end, 16);
  long b = strtol("0x1A", NULL, 0);
  long c = strtol("0755", NULL, 0);
  long d = strtol("42rest", &end, 10);
  printf("%ld %ld %ld %ld %s\n", a, b, c, d, end);
  return 0; }`,
		"255 26 493 42 rest\n", 0},
	{"qsort-ints", `#include <stdio.h>
#include <stdlib.h>
int cmp(const void *a, const void *b){ return *(const int*)a - *(const int*)b; }
int main(void){ int v[6] = {5, 2, 9, 1, 7, 3}; int i;
  qsort(v, 6, sizeof(int), cmp);
  for (i = 0; i < 6; i++) printf("%d ", v[i]);
  printf("\n"); return 0; }`,
		"1 2 3 5 7 9 \n", 0},
	{"bsearch", `#include <stdio.h>
#include <stdlib.h>
int cmp(const void *a, const void *b){ return *(const int*)a - *(const int*)b; }
int main(void){ int v[5] = {2, 4, 6, 8, 10}; int key = 8;
  int *hit = bsearch(&key, v, 5, sizeof(int), cmp);
  int miss_key = 5;
  printf("%d %d\n", hit ? *hit : -1, bsearch(&miss_key, v, 5, sizeof(int), cmp) == NULL);
  return 0; }`,
		"8 1\n", 0},
	{"user-varargs", `#include <stdio.h>
#include <stdarg.h>
int sum(int count, ...) {
    va_list ap;
    int total = 0;
    int i;
    va_start(ap, count);
    for (i = 0; i < count; i++) total += va_arg(ap, int);
    va_end(ap);
    return total;
}
int main(void){ printf("%d %d\n", sum(3, 10, 20, 30), sum(0)); return 0; }`,
		"60 0\n", 0},
	{"sizeof-everything", `#include <stdio.h>
int main(void){
  int a[12];
  printf("%d %d %d %d %d %d %d\n",
    (int)sizeof(char), (int)sizeof(short), (int)sizeof(int), (int)sizeof(long),
    (int)sizeof(double), (int)sizeof(void*), (int)sizeof(a));
  return 0; }`,
		"1 2 4 8 8 8 48\n", 0},
	{"global-init", `#include <stdio.h>
int scalar = 42;
int arr[4] = {1, 2, 3};
char msg[] = "hi";
struct conf { int a; double b; } cfg = {7, 2.5};
int *ptr = &scalar;
int main(void){
  printf("%d %d %d %d %s %d %.1f %d\n",
    scalar, arr[0], arr[2], arr[3], msg, cfg.a, cfg.b, *ptr);
  return 0; }`,
		"42 1 3 0 hi 7 2.5 42\n", 0},
	{"static-local", `#include <stdio.h>
int counter(void){ static int n = 0; return ++n; }
int main(void){ counter(); counter(); printf("%d\n", counter()); return 0; }`,
		"3\n", 0},
	{"scoping-shadow", `#include <stdio.h>
int x = 1;
int main(void){
  int x = 2;
  { int x = 3; printf("%d ", x); }
  printf("%d\n", x);
  return 0; }`,
		"3 2\n", 0},
	{"exit-code", `#include <stdlib.h>
int main(void){ exit(42); }`, "", 42},
	{"main-return-code", `int main(void){ return 7; }`, "", 7},
	{"argv-access", `#include <stdio.h>
#include <string.h>
int main(int argc, char **argv){
  printf("%d %s %d\n", argc, argv[1], argv[argc] == NULL);
  return 0; }`,
		"", -1000}, // filled in below (uses args)
	{"calloc-zeroed", `#include <stdio.h>
#include <stdlib.h>
int main(void){ int *p = calloc(4, sizeof(int)); int ok = 1; int i;
  for (i = 0; i < 4; i++) if (p[i] != 0) ok = 0;
  printf("%d\n", ok); free(p); return 0; }`,
		"1\n", 0},
	{"realloc-preserves", `#include <stdio.h>
#include <stdlib.h>
int main(void){
  int *p = malloc(2 * sizeof(int));
  p[0] = 11; p[1] = 22;
  p = realloc(p, 8 * sizeof(int));
  p[7] = 77;
  printf("%d %d %d\n", p[0], p[1], p[7]);
  free(p);
  return 0; }`,
		"11 22 77\n", 0},
	{"ctype", `#include <stdio.h>
#include <ctype.h>
int main(void){
  printf("%d%d%d%d%d %c%c\n",
    isdigit('7'), isalpha('x'), isspace(' '), isupper('A') && !isupper('a'),
    isalnum('_') == 0, toupper('q'), tolower('Q'));
  return 0; }`,
		"11111 Qq\n", 0},
	{"math-functions", `#include <stdio.h>
#include <math.h>
int main(void){
  printf("%.4f %.4f %.4f %.4f %.1f %.1f\n",
    sqrt(2.0), sin(0.0), pow(2.0, 10.0), fabs(-1.5), floor(2.7), ceil(2.1));
  return 0; }`,
		"1.4142 0.0000 1024.0000 1.5000 2.0 3.0\n", 0},
	{"fgets-scanf", `#include <stdio.h>
int main(void){
  int v;
  char word[16];
  scanf("%d %s", &v, word);
  printf("%d %s\n", v * 2, word);
  return 0; }`,
		"", -2000}, // stdin case, filled below
	{"gets-line", `#include <stdio.h>
#include <string.h>
int main(void){
  char buf[64];
  gets(buf);
  printf("%d:%s\n", (int)strlen(buf), buf);
  return 0; }`,
		"", -2001},
	{"2d-array", `#include <stdio.h>
int main(void){
  int m[3][4];
  int r, c, sum = 0;
  for (r = 0; r < 3; r++) for (c = 0; c < 4; c++) m[r][c] = r * 4 + c;
  for (r = 0; r < 3; r++) sum += m[r][3];
  printf("%d %d\n", sum, m[2][1]);
  return 0; }`,
		"21 9\n", 0},
	{"char-array-init-list", `#include <stdio.h>
int main(void){ char v[4] = {'a', 'b'}; printf("%c%c%d%d\n", v[0], v[1], v[2], v[3]); return 0; }`,
		"ab00\n", 0},
	{"hex-octal-char-literals", `#include <stdio.h>
int main(void){ printf("%d %d %d %d\n", 0xff, 010, 'A', '\n'); return 0; }`,
		"255 8 65 10\n", 0},
	{"long-long-math", `#include <stdio.h>
int main(void){ long long big = 1; int i;
  for (i = 0; i < 40; i++) big *= 2;
  printf("%ld\n", (long)big); return 0; }`,
		"1099511627776\n", 0},
	{"const-propagated", `#include <stdio.h>
int main(void){ const int n = 6; int a[6]; int i; int s = 0;
  for (i = 0; i < n; i++) a[i] = i * i;
  for (i = 0; i < n; i++) s += a[i];
  printf("%d\n", s); return 0; }`,
		"55\n", 0},
	{"preprocessor-macros", `#include <stdio.h>
#define SQUARE(x) ((x) * (x))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define GREETING "hey"
#if defined(SQUARE) && 1
#define ENABLED 1
#else
#define ENABLED 0
#endif
int main(void){ printf("%d %d %s %d\n", SQUARE(1 + 2), MAX(3, 7), GREETING, ENABLED); return 0; }`,
		"9 7 hey 1\n", 0},
	{"preprocessor-conditional", `#include <stdio.h>
#define MODE 2
#if MODE == 1
#define NAME "one"
#elif MODE == 2
#define NAME "two"
#else
#define NAME "other"
#endif
#ifndef MISSING
#define FALLBACK 9
#endif
int main(void){ printf("%s %d\n", NAME, FALLBACK); return 0; }`,
		"two 9\n", 0},
	{"void-pointer-roundtrip", `#include <stdio.h>
#include <stdlib.h>
int main(void){
  int v = 99;
  void *p = &v;
  int *q = (int *)p;
  printf("%d\n", *q);
  return 0; }`,
		"99\n", 0},
	{"double-in-long-reinterpret", `#include <stdio.h>
#include <string.h>
int main(void){
  /* the paper's relaxed-typing example: store a double's bits in a long */
  double d = 1.5;
  long bits;
  double back;
  memcpy(&bits, &d, 8);
  memcpy(&back, &bits, 8);
  printf("%.1f %d\n", back, bits != 0);
  return 0; }`,
		"1.5 1\n", 0},
}

func TestCSemanticsBothEngines(t *testing.T) {
	for _, tc := range csemCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfgBase := sulong.Config{}
			wantOut, wantExit := tc.out, tc.exit
			switch tc.exit {
			case -1000:
				cfgBase.Args = []string{"alpha", "beta"}
				wantOut, wantExit = "3 alpha 1\n", 0
			case -2000:
				wantOut, wantExit = "42 go\n", 0
			case -2001:
				wantOut, wantExit = "5:hello\n", 0
			}
			for _, eng := range []sulong.Engine{sulong.EngineSafeSulong, sulong.EngineNative} {
				cfg := cfgBase
				cfg.Engine = eng
				switch tc.exit {
				case -2000:
					cfg.Stdin = strings.NewReader("21 go\n")
				case -2001:
					cfg.Stdin = strings.NewReader("hello\n")
				}
				res, err := sulong.Run(tc.src, cfg)
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				if res.Bug != nil {
					t.Fatalf("%v: unexpected bug: %v", eng, res.Bug)
				}
				if res.Fault != nil {
					t.Fatalf("%v: fault: %v", eng, res.Fault)
				}
				if res.Stdout != wantOut {
					t.Errorf("%v: stdout = %q, want %q", eng, res.Stdout, wantOut)
				}
				if res.ExitCode != wantExit {
					t.Errorf("%v: exit = %d, want %d", eng, res.ExitCode, wantExit)
				}
			}
		})
	}
}

// TestCSemanticsUnderJIT re-runs the same suite under the tier-1 compiler
// with an aggressive threshold, guarding against compiled/interpreted
// divergence.
func TestCSemanticsUnderJIT(t *testing.T) {
	for _, tc := range csemCases {
		if tc.exit < -100 {
			continue // arg/stdin cases covered above
		}
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := sulong.Run(tc.src, sulong.Config{
				Engine: sulong.EngineSafeSulong, JIT: true, JITThreshold: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Bug != nil {
				t.Fatalf("unexpected bug: %v", res.Bug)
			}
			if res.Stdout != tc.out || res.ExitCode != tc.exit {
				t.Errorf("jit: got (%q, %d), want (%q, %d)", res.Stdout, res.ExitCode, tc.out, tc.exit)
			}
		})
	}
}

// TestCSemanticsAtO3 runs the suite through the optimizer pipeline on the
// native engine: optimization must never change the observable behaviour of
// well-defined programs.
func TestCSemanticsAtO3(t *testing.T) {
	for _, tc := range csemCases {
		if tc.exit < -100 {
			continue
		}
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := sulong.Run(tc.src, sulong.Config{Engine: sulong.EngineNative, OptLevel: 3})
			if err != nil {
				t.Fatal(err)
			}
			if res.Fault != nil {
				t.Fatalf("fault: %v", res.Fault)
			}
			if res.Stdout != tc.out || res.ExitCode != tc.exit {
				t.Errorf("-O3: got (%q, %d), want (%q, %d)", res.Stdout, res.ExitCode, tc.out, tc.exit)
			}
		})
	}
}
