package sulong_test

import (
	"testing"

	sulong "repro"
	"repro/internal/benchprog"
	"repro/internal/ir"
)

// TestIRRoundTripOnRealModules prints and re-parses the full compiled module
// (program + interpreted libc) of every benchmark, then runs the re-parsed
// module and compares observable behaviour — exercising the textual IR
// format over tens of thousands of real instructions.
func TestIRRoundTripOnRealModules(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			mod, err := sulong.CompileOnly(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			text1 := ir.Print(mod)
			mod2, err := ir.Parse(text1)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if err := ir.Verify(mod2); err != nil {
				t.Fatalf("verify: %v", err)
			}
			text2 := ir.Print(mod2)
			if text1 != text2 {
				t.Fatal("print/parse/print not a fixpoint")
			}
			cfg := sulong.Config{Engine: sulong.EngineSafeSulong, Args: []string{b.SmallArg}}
			want, err := sulong.RunModule(mod, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sulong.RunModule(mod2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stdout != want.Stdout || got.ExitCode != want.ExitCode {
				t.Errorf("behaviour diverged after round trip")
			}
		})
	}
}
