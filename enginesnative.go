package sulong

import (
	"fmt"

	"repro/internal/asan"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/memcheck"
	"repro/internal/nativemem"
	"repro/internal/nativevm"
	"repro/internal/nlibc"
	"repro/internal/pipeline"
)

// CompileNative compiles a C program the way the native toolchain does: the
// user source only (libc is the "precompiled" nlibc), run through the
// optimizer at the requested level. Level 0 still applies the backend
// constant-global fold the paper caught Clang doing at -O0 (Fig. 13).
// The result comes from the content-addressed cache and is shared; treat it
// as immutable.
func CompileNative(src string, optLevel int) (*ir.Module, error) {
	res, err := pipeline.Compile(pipeline.Request{
		Source: src, Flavor: pipeline.FlavorNative, OptLevel: optLevel,
	})
	if err != nil {
		return nil, err
	}
	return res.Module, nil
}

// NativeConfig builds the machine configuration for a native-family engine:
// the libc binding, and for the instrumented engines the checker, the
// replacement allocator, and the redzone geometry. Callers fill in Args,
// Stdin/Stdout, and limits.
func NativeConfig(eng Engine) (nativevm.Config, error) {
	ncfg, _, err := nativeConfigWithHook(eng)
	return ncfg, err
}

func nativeConfigWithHook(eng Engine) (nativevm.Config, func(res *Result), error) {
	var ncfg nativevm.Config
	switch eng {
	case EngineNative:
		ncfg.Libc = nlibc.Table(false)
		return ncfg, nil, nil
	case EngineASan:
		tool := asan.New(asan.DefaultOptions())
		ncfg.Checker = tool
		ncfg.NewAllocator = tool.NewAllocator
		ncfg.StackRedzone = tool.Options().StackRedzone
		ncfg.GlobalRedzone = tool.Options().GlobalRedzone
		ncfg.Libc = asan.Interceptors(nlibc.Table(false), tool)
		return ncfg, nil, nil
	case EngineMemcheck:
		tool := memcheck.New()
		ncfg.Checker = tool
		ncfg.NewAllocator = tool.NewAllocator
		ncfg.PerInstr = tool.PerInstr
		ncfg.Libc = nlibc.Table(true)
		return ncfg, func(res *Result) { res.Leaks = tool.Leaks() }, nil
	}
	return ncfg, nil, fmt.Errorf("sulong: engine %v is not native", eng)
}

// runNativeFamily executes a module on the simulated native machine,
// optionally under ASan or memcheck instrumentation.
func runNativeFamily(mod *ir.Module, cfg Config, gov *core.Governor) (Result, error) {
	ncfg, finish, err := nativeConfigWithHook(cfg.Engine)
	if err != nil {
		return Result{}, err
	}
	ncfg.Args = cfg.Args
	ncfg.Env = cfg.Env
	ncfg.Stdin = cfg.Stdin
	ncfg.Stdout = cfg.Stdout
	ncfg.MaxSteps = cfg.MaxSteps
	ncfg.MaxHeapBytes = cfg.MaxHeapBytes
	ncfg.MaxAllocBytes = cfg.MaxAllocBytes
	ncfg.FaultPlan = cfg.FaultPlan
	ncfg.Governor = gov
	ncfg.Hardened = cfg.HardenedLibc

	m, err := nativevm.New(mod, ncfg)
	if err != nil {
		return Result{}, err
	}
	code, runErr := m.Run()
	res := Result{ExitCode: code, Stdout: m.Output()}
	ms := m.MemStats()
	res.Stats.HeapAllocs = ms.HeapAllocs
	res.Stats.HeapAllocBytes = ms.HeapAllocBytes
	res.Stats.HeapInUseBytes = ms.HeapInUseBytes
	res.Stats.HeapPeakBytes = ms.HeapPeakBytes
	res.Stats.InjectedFaults = ms.InjectedFaults
	res.Stats.DeniedAllocs = ms.DeniedAllocs
	if finish != nil {
		finish(&res)
	}
	if runErr != nil {
		switch e := runErr.(type) {
		case *core.BugError:
			res.Bug = e
		case *nativemem.Fault:
			res.Fault = e
		case *nativevm.GlibcAbort:
			res.Fault = e
		default:
			res.collectDiagnostics(cfg.Engine.String(), "native")
			return res, runErr
		}
	}
	res.collectDiagnostics(cfg.Engine.String(), "native")
	return res, nil
}
