// Quickstart: compile a C program, run it under Safe Sulong, and catch the
// heap overflow it contains — in ~20 lines of API use.
package main

import (
	"fmt"
	"log"

	sulong "repro"
)

const program = `
#include <stdlib.h>
#include <stdio.h>

int main(void) {
    int i;
    int *primes = malloc(4 * sizeof(int));
    primes[0] = 2; primes[1] = 3; primes[2] = 5; primes[3] = 7;
    for (i = 0; i <= 4; i++) {               /* classic off-by-one */
        printf("prime %d: %d\n", i, primes[i]);
    }
    free(primes);
    return 0;
}
`

func main() {
	res, err := sulong.Run(program, sulong.Config{Engine: sulong.EngineSafeSulong})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Stdout)
	if res.Bug != nil {
		fmt.Println("bug found:", res.Bug)
	} else {
		fmt.Println("no bug found (unexpected!)")
	}
}
