// Bugfinding: one program per error category the paper's tool detects
// (§3.4), each run under Safe Sulong, printing the exact error report.
package main

import (
	"fmt"
	"log"

	sulong "repro"
)

var programs = []struct {
	title string
	src   string
}{
	{"out-of-bounds write (stack)", `
int main(void) { int a[4]; int i; for (i = 0; i <= 4; i++) a[i] = i; return 0; }`},
	{"out-of-bounds read (heap)", `
#include <stdlib.h>
int main(void) { int *p = malloc(3 * sizeof(int)); return p[3]; }`},
	{"use-after-free", `
#include <stdlib.h>
int main(void) { int *p = malloc(8); free(p); return *p; }`},
	{"double free", `
#include <stdlib.h>
int main(void) { char *p = malloc(8); free(p); free(p); return 0; }`},
	{"invalid free (stack object)", `
#include <stdlib.h>
int main(void) { int x = 1; free(&x); return x; }`},
	{"invalid free (interior pointer)", `
#include <stdlib.h>
int main(void) { char *p = malloc(16); free(p + 4); return 0; }`},
	{"NULL dereference", `
int main(void) { int *p = (void*)0; return *p; }`},
	{"variadic: wrong width (printf %ld with int)", `
#include <stdio.h>
int n = 3;
int main(void) { printf("%ld\n", n); return 0; }`},
	{"variadic: missing argument", `
#include <stdio.h>
int main(void) { printf("%s and %s\n", "one"); return 0; }`},
	{"out-of-bounds read of argv", `
#include <stdio.h>
int main(int argc, char **argv) { printf("%s\n", argv[9]); return 0; }`},
}

func main() {
	for _, p := range programs {
		res, err := sulong.Run(p.src, sulong.Config{Engine: sulong.EngineSafeSulong})
		if err != nil {
			log.Fatalf("%s: %v", p.title, err)
		}
		fmt.Printf("%-45s", p.title)
		if res.Bug != nil {
			fmt.Printf("-> %v\n", res.Bug)
		} else {
			fmt.Printf("-> no error reported (exit %d)\n", res.ExitCode)
		}
	}

	// Leak detection (the paper's §6 future work, implemented here).
	leaky := `
#include <stdlib.h>
int main(void) { malloc(64); malloc(32); return 0; }`
	res, err := sulong.Run(leaky, sulong.Config{Engine: sulong.EngineSafeSulong, DetectLeaks: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-45s", "memory leaks at exit")
	fmt.Printf("-> %d leaked allocations\n", len(res.Leaks))
	for _, l := range res.Leaks {
		fmt.Printf("     %v\n", l)
	}
}
