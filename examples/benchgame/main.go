// Benchgame: run one Benchmarks Game program (nbody by default) under every
// engine, verify they agree on the output, and report relative timings —
// a miniature of the paper's Fig. 16.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/benchprog"
	"repro/internal/harness"
)

func main() {
	name := "nbody"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := benchprog.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s (argument %s)\n\n", b.Name, b.SmallArg)

	res, err := harness.MeasurePeak(b, b.SmallArg, 5, 3, harness.PerfConfigs())
	if err != nil {
		log.Fatal(err)
	}
	base := res.Times[harness.ClangO0]
	for _, cfg := range harness.PerfConfigs() {
		bar := ""
		n := int(res.Relative(cfg) * 20)
		for i := 0; i < n && i < 60; i++ {
			bar += "#"
		}
		fmt.Printf("%-14v %8s  %5.2fx  %s\n", cfg, round(res.Times[cfg]), res.Relative(cfg), bar)
	}
	fmt.Printf("\nbaseline (Clang -O0 on the simulated machine): %v per iteration\n", round(base))
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
