// Toolcompare: the same buggy program under all four engines, showing who
// sees what — the paper's central claim in miniature. The bug is Fig. 11's
// unterminated strtok delimiter: the overflow happens *inside libc*, where
// ASan has no interceptor and Valgrind sees only addressable stack memory.
package main

import (
	"fmt"
	"log"

	sulong "repro"
)

const program = `
#include <string.h>
#include <stdio.h>

char line[64] = "GET /index.html HTTP/1.0";

int main(void) {
    const char sep[1] = {' '};      /* no room for the NUL terminator */
    char *tok = strtok(line, sep);
    while (tok != NULL) {
        puts(tok);
        tok = strtok(NULL, sep);
    }
    return 0;
}
`

func main() {
	engines := []sulong.Engine{
		sulong.EngineSafeSulong,
		sulong.EngineASan,
		sulong.EngineMemcheck,
		sulong.EngineNative,
	}
	for _, eng := range engines {
		res, err := sulong.Run(program, sulong.Config{Engine: eng})
		if err != nil {
			log.Fatalf("%v: %v", eng, err)
		}
		fmt.Printf("%-12v ", eng)
		switch {
		case res.Bug != nil:
			fmt.Printf("DETECTED: %v\n", res.Bug)
		case res.Fault != nil:
			fmt.Printf("crashed: %v\n", res.Fault)
		default:
			fmt.Printf("silent (exit %d, %d bytes of output)\n", res.ExitCode, len(res.Stdout))
		}
	}
}
