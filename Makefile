# Tier-1 gate: everything a change must pass before it lands.
# `make check` == `make fmt vet build test race`.
#
# Every test invocation carries an explicit -timeout: the repository's own
# subject matter is non-terminating guest programs, so the gate must fail
# fast (with goroutine dumps) if a hang regression ever escapes the
# execution governor, instead of idling until Go's default 10m.

GO ?= go
TEST_TIMEOUT ?= 300s

.PHONY: check fmt vet build test race hangcheck diagcheck faultcheck perfcheck tiercheck typecheck fuzzcheck throughputcheck bench clean

check: fmt vet build test race faultcheck perfcheck tiercheck typecheck fuzzcheck throughputcheck

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

# The concurrency suite (shared-module audit, parallel matrix, cache
# coalescing) must stay race-clean.
race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) -run 'Concurrent|Parallel|Matrix|Cache|ForEach' ./...

# Hang-regression gate: the governor suite (step limits, wall-clock
# deadlines, context cancellation, tier-1 fuel accounting, timeout matrix
# cells) under the race detector with a tight budget. If any engine stops
# polling the governor, this target times out instead of `make test`.
hangcheck:
	$(GO) test -race -timeout 120s -run 'Governor|Timeout|Deadline|Limit|Hang|Spin|Tier1|RunCtx|Ungetc|PanicContainment|ForEachPropagates|Degrades' ./...

# Diagnostics gate: the tier-parity sweep (full corpus under Safe Sulong,
# JIT off vs on, rendered diagnostics byte-identical) plus the cross-tool
# heap-blame check, under the race detector — the persistent stacks are
# shared across captured diagnostics and worker goroutines, so this must
# stay race-clean.
diagcheck:
	$(GO) test -race -timeout 120s -run 'TierParity|HeapBlame|Diag' ./...

# Fault-plane gate: the allocation-failure suite (heap budgets, injected
# fault schedules, calloc overflow, glibc realloc semantics, tier parity of
# injected outcomes, oom-cell determinism, retry/quarantine) under the race
# detector, plus the corpus-wide FailNth sweep asserting no engine ever
# panics on an injected allocation failure.
faultcheck:
	$(GO) test -race -timeout 120s -run 'Fault|Calloc|MallocZero|Realloc|HeapBudget|HeapDenial|AllocAuto|NullPlusOffset|OOM|Retry|Quarantin|Sweep' ./...
	$(GO) run ./cmd/bugbench -faultsweep -sweepmax 3

# Peak-performance gate: one benchgame program under every performance
# configuration (native anchors, sanitized engines, each managed JIT
# ablation) with zero tolerated bail-outs, the tier-parity step/output
# sweep on the benchmark programs, and a schema check of the committed
# BENCH_PR5.json baseline — all under the race detector.
perfcheck:
	$(GO) test -race -timeout 120s -run 'PerfCheck|BenchBaseline|BenchPR6|TierParityBenchmarks|HoistedCheck|CoalescedRun|FramePoolFaultReuse' ./...

# Tiering gate: the asynchronous pipeline under the race detector — the
# full-corpus forced-OSR parity sweep (background compile on first call, OSR
# at the first back edge, speculation on; clean and fault-injected), the
# single-call-loop OSR and exact-instruction deopt pins, and the governor
# cancellation race against an in-flight background compilation (no leaked
# workers, nothing installed after teardown).
tiercheck:
	$(GO) test -race -timeout 120s -run 'TierCheck|AsyncCompile|AsyncClose' ./...

# Type-identity gate: the type-confusion corpus sweep (managed engines
# detect union punning / bad casts / vararg mismatches with alloc-site
# backtraces while ASan and memcheck stay silent), introspection-builtin
# parity across all four engines (clean and under an injected allocation
# failure, tier-0 vs forced async+OSR), the hardened-libc truncation
# check on both toolchains, and the typed-IR round trip — under the race
# detector, since the descriptor caches are shared across matrix workers.
typecheck:
	$(GO) test -race -timeout 120s -run 'TypeConfusion|Introspection|Hardened|TypedIR|Union|CheckedCast' ./...

# Fuzzing-campaign gate: a fixed-seed 200-program differential campaign
# under the race detector — tier parity (tier-0 vs forced tier-1 vs
# async+OSR), FailNth 1..2 fault-schedule parity, cross-tool blind spots,
# every finding auto-minimized and re-verified — plus the campaign's own
# resilience suite: resume byte-identity after cancellation and after a
# real kill -9, worker panic storms with zero leaked goroutines, journal
# torn-tail recovery, and the committed fuzz-find regressions.
# The campaign package gets its own generous timeout: 200 race-instrumented
# programs × ~10 oracle runs each is real work on a small machine.
fuzzcheck:
	FUZZCHECK_PROGRAMS=200 $(GO) test -race -timeout 600s -run 'Campaign|Journal|Minimize|FuzzFinds|Generate|Mutate|SweepProgress|Backoff' ./internal/campaign ./internal/gen ./internal/corpus ./internal/harness

# Compile-once/run-many gate: the full-corpus warm-vs-cold parity pin (a
# code-cache hit on a pooled engine must be observationally identical to a
# cold compile — stdout, exit, Steps, Calls, diagnostics — for tier-0,
# forced tier-1, and async+OSR, clean and fault-injected), the code cache's
# own concurrency suite (singleflight under eviction churn, LRU bound,
# hit-not-mutated), the perf-runner pool-reuse pin, and a schema check of
# the committed BENCH_PR10.json throughput baseline — under the race
# detector, since the code cache and engine pool are shared process-wide.
throughputcheck:
	$(GO) test -race -timeout 300s -run 'WarmColdCacheParity|BenchPR10|CodeCache|PerfRunnerPool|EnginePool' . ./internal/jit ./internal/core ./internal/harness

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
