# Tier-1 gate: everything a change must pass before it lands.
# `make check` == `make fmt vet build test race`.

GO ?= go

.PHONY: check fmt vet build test race bench clean

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency suite (shared-module audit, parallel matrix, cache
# coalescing) must stay race-clean.
race:
	$(GO) test -race -run 'Concurrent|Parallel|Matrix|Cache|ForEach' ./...

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
