package sulong_test

import (
	"strings"
	"testing"

	sulong "repro"
	"repro/internal/ir"
)

func TestEngineNames(t *testing.T) {
	names := map[sulong.Engine]string{
		sulong.EngineSafeSulong: "SafeSulong",
		sulong.EngineNative:     "Native",
		sulong.EngineASan:       "ASan",
		sulong.EngineMemcheck:   "Memcheck",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
}

func TestRunModuleRejectsUnknownEngine(t *testing.T) {
	mod, err := sulong.CompileBare("int main(void){ return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sulong.RunModule(mod, sulong.Config{Engine: sulong.Engine(99)}); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestNativeConfigPerEngine(t *testing.T) {
	for _, eng := range []sulong.Engine{sulong.EngineNative, sulong.EngineASan, sulong.EngineMemcheck} {
		cfg, err := sulong.NativeConfig(eng)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if cfg.Libc == nil {
			t.Errorf("%v: no libc binding", eng)
		}
		if eng != sulong.EngineNative && cfg.Checker == nil {
			t.Errorf("%v: instrumented engine without checker", eng)
		}
		if eng == sulong.EngineNative && cfg.Checker != nil {
			t.Error("bare native must not have a checker")
		}
	}
	if _, err := sulong.NativeConfig(sulong.EngineSafeSulong); err == nil {
		t.Error("NativeConfig(SafeSulong) should error")
	}
}

func TestCompileErrorsSurfaceLocations(t *testing.T) {
	_, err := sulong.Run("int main(void) { return undeclared_symbol; }",
		sulong.Config{Engine: sulong.EngineSafeSulong})
	if err == nil {
		t.Fatal("expected compile error")
	}
	if !strings.Contains(err.Error(), "user.c:") {
		t.Errorf("error should carry a user.c location: %v", err)
	}
}

func TestExtraFilesInclude(t *testing.T) {
	src := `#include "config.h"
#include <stdio.h>
int main(void) { printf("%d\n", LIMIT); return 0; }`
	res, err := sulong.Run(src, sulong.Config{
		Engine:     sulong.EngineSafeSulong,
		ExtraFiles: map[string]string{"config.h": "#define LIMIT 77\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "77\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestCompileForMatchesEnginePipelines(t *testing.T) {
	src := `
const int tab[2] = {1, 2};
int main(void) { return tab[5]; }`
	managed, err := sulong.CompileFor(src, sulong.Config{Engine: sulong.EngineSafeSulong})
	if err != nil {
		t.Fatal(err)
	}
	native, err := sulong.CompileFor(src, sulong.Config{Engine: sulong.EngineNative, OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	// The managed module links the interpreted libc; the native one does not.
	if managed.Func("printf") == nil || !functionDefined(managed, "printf") {
		t.Error("managed module should define printf (C libc linked)")
	}
	if functionDefined(native, "printf") {
		t.Error("native module must not define printf (precompiled libc)")
	}
	// The native -O0 pipeline folds the const-global OOB read away.
	if countLoads(native.Func("main")) != 0 {
		t.Errorf("native -O0 should fold the const-global load:\n%s", ir.PrintFunc(native.Func("main")))
	}
	if countLoads(managed.Func("main")) == 0 {
		t.Error("managed module must keep the load (Safe Sulong sees the bug)")
	}
}

func functionDefined(m *ir.Module, name string) bool {
	f := m.Func(name)
	return f != nil && !f.IsDecl
}

func countLoads(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpLoad {
				n++
			}
		}
	}
	return n
}

func TestStatsExposed(t *testing.T) {
	res, err := sulong.Run(`int main(void){ int i, s = 0; for (i = 0; i < 100; i++) s += i; return s & 0x7f; }`,
		sulong.Config{Engine: sulong.EngineSafeSulong})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steps == 0 || res.Stats.Allocs == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
}
