package sulong_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/harness"
)

// TestPerfCheckSmoke is `make perfcheck`'s runtime half: one benchgame
// program under every performance configuration — the native anchors, the
// sanitized engines, and each managed JIT ablation — for a handful of
// iterations each, under the race detector. The managed configurations must
// compile without a single bail-out: a bail never changes behavior, but on
// the benchmark programs the tier-2 layer was built for, silently staying in
// the interpreter is a performance regression this gate exists to catch.
func TestPerfCheckSmoke(t *testing.T) {
	b, err := benchprog.Get("nbody")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []harness.PerfConfig{
		harness.ClangO0, harness.ClangO3, harness.ASanPerf, harness.ValgrindPerf,
		harness.SafeSulongNoJIT, harness.SafeSulongBaseline,
		harness.SafeSulongNoInline, harness.SafeSulongPerf,
		harness.SafeSulongAsync, harness.SafeSulongAsyncOSR,
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			r, err := harness.NewRunner(cfg, b.Source, b.SmallArg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			// Enough iterations to cross the tier-1 compile threshold (25)
			// so the bail-out assertion below is about compiled code, not a
			// cold interpreter.
			for i := 0; i < 30; i++ {
				if err := r.RunIteration(); err != nil {
					t.Fatalf("iteration %d: %v", i, err)
				}
			}
			js := r.JITStats()
			if js.Bailed != 0 {
				t.Errorf("%d bail-out(s) on a benchgame program: %v", js.Bailed, js.BailReasons)
			}
			switch cfg {
			case harness.SafeSulongPerf, harness.SafeSulongBaseline, harness.SafeSulongNoInline:
				if js.Compiled == 0 {
					t.Error("tier-1 compiled nothing after 30 iterations")
				}
			case harness.SafeSulongAsync, harness.SafeSulongAsyncOSR:
				// Async installs are timing-dependent, but after 30 warm
				// iterations at threshold 25 the hot functions must have been
				// published at a dispatch point.
				if r.CompiledFunctions() == 0 && r.TierStats().OSRCompiled == 0 {
					t.Error("async tier-up installed nothing after 30 iterations")
				}
			}
		})
	}
}

// TestBenchPR6Schema validates the committed BENCH_PR6.json tiering
// baseline: warm-up timelines for the interpreter, synchronous tier-2,
// async tier-2, and async+OSR (plus the Clang -O0 anchor), peak rows that
// now include the async configurations, and the acceptance shape of the
// recorded curves — compilation events visible *after* the first one-second
// bucket (the forced-high threshold spreads them), OSR activity on the
// async+OSR curve, and a time-to-peak no worse than synchronous tier-up's.
func TestBenchPR6Schema(t *testing.T) {
	data, err := os.ReadFile("BENCH_PR6.json")
	if err != nil {
		t.Fatalf("recorded tiering baseline missing (run `go run ./cmd/perfbench -record BENCH_PR6.json`): %v", err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Warmups int    `json:"warmups"`
		Samples int    `json:"samples"`
		Startup []struct {
			Tool string `json:"tool"`
		} `json:"startup"`
		Warmup []struct {
			Config         string `json:"config"`
			Tier1Threshold int64  `json:"tier1_threshold"`
			OSRThreshold   int64  `json:"osr_threshold"`
			Rows           []struct {
				Second      int `json:"second"`
				Iterations  int `json:"iterations"`
				Compiled    int `json:"compiled"`
				OSRCompiled int `json:"osr_compiled"`
				OSREntries  int `json:"osr_entries"`
				Deopts      int `json:"deopts"`
			} `json:"rows"`
			PeakItersPerS int `json:"peak_iterations_per_sec"`
			TimeToPeakSec int `json:"time_to_peak_sec"`
		} `json:"warmup"`
		Benches []struct {
			Bench string `json:"bench"`
			Rows  []struct {
				Config string  `json:"config"`
				TimeMs float64 `json:"time_ms"`
				JIT    *struct {
					Bailed  int      `json:"bailed"`
					Reasons []string `json:"bail_reasons"`
				} `json:"jit"`
			} `json:"rows"`
		} `json:"benches"`
		Summary struct {
			MetTarget             bool `json:"met_target"`
			TimeToPeakSync        int  `json:"time_to_peak_sync_sec"`
			TimeToPeakAsyncOSR    int  `json:"time_to_peak_async_osr_sec"`
			AsyncOSRWarmsUpFaster bool `json:"async_osr_warms_up_faster"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_PR6.json does not parse: %v", err)
	}
	if rep.Schema != "sulong-bench/pr6" {
		t.Fatalf("schema = %q, want sulong-bench/pr6", rep.Schema)
	}
	if rep.Warmups < 30 || rep.Samples < 15 {
		t.Errorf("recorded with warmups=%d samples=%d; protocol floor is 30/15", rep.Warmups, rep.Samples)
	}

	curves := map[string]int{}
	for i, c := range rep.Warmup {
		curves[c.Config] = i
		if len(c.Rows) == 0 {
			t.Errorf("warmup curve %q has no rows", c.Config)
		}
		if c.PeakItersPerS <= 0 || c.TimeToPeakSec <= 0 {
			t.Errorf("warmup curve %q: peak=%d time_to_peak=%d", c.Config, c.PeakItersPerS, c.TimeToPeakSec)
		}
	}
	for _, want := range []string{
		"Clang -O0", "Safe Sulong (no JIT)", "Safe Sulong",
		"Safe Sulong (async)", "Safe Sulong (async+OSR)",
	} {
		if _, ok := curves[want]; !ok {
			t.Errorf("missing warmup curve for %q", want)
		}
	}

	// The tiered curves must show compilation landing after bucket 1 — the
	// point of the forced-high threshold is that the timeline is not flat.
	lateCompiles := false
	for _, name := range []string{"Safe Sulong", "Safe Sulong (async)", "Safe Sulong (async+OSR)"} {
		i, ok := curves[name]
		if !ok {
			continue
		}
		c := rep.Warmup[i]
		if c.Tier1Threshold <= 25 {
			t.Errorf("curve %q recorded at threshold %d; protocol forces a high threshold", name, c.Tier1Threshold)
		}
		first := c.Rows[0].Compiled
		for _, r := range c.Rows[1:] {
			if r.Second >= 2 && r.Compiled > first {
				lateCompiles = true
			}
		}
	}
	if !lateCompiles {
		t.Error("no tiered curve shows compilation events after the first second")
	}

	if i, ok := curves["Safe Sulong (async+OSR)"]; ok {
		c := rep.Warmup[i]
		last := c.Rows[len(c.Rows)-1]
		if c.OSRThreshold <= 0 {
			t.Errorf("async+OSR curve lacks its OSR threshold")
		}
		if last.OSRCompiled == 0 || last.OSREntries == 0 {
			t.Errorf("async+OSR curve recorded no OSR activity: %+v", last)
		}
	}
	if s := rep.Summary; !s.AsyncOSRWarmsUpFaster || s.TimeToPeakAsyncOSR >= s.TimeToPeakSync {
		t.Errorf("async+OSR warm-up (%ds to peak) must strictly beat synchronous (%ds)",
			s.TimeToPeakAsyncOSR, s.TimeToPeakSync)
	}

	wantRows := []string{
		"Clang -O0", "Safe Sulong (no JIT)", "Safe Sulong (baseline)",
		"Safe Sulong (no inline)", "Safe Sulong",
		"Safe Sulong (async)", "Safe Sulong (async+OSR)",
	}
	if want := len(benchprog.All()); len(rep.Benches) != want {
		t.Errorf("benches: got %d rows, want %d", len(rep.Benches), want)
	}
	for _, b := range rep.Benches {
		seen := map[string]bool{}
		for _, row := range b.Rows {
			seen[row.Config] = true
			if row.TimeMs <= 0 {
				t.Errorf("%s/%s: non-positive time %v", b.Bench, row.Config, row.TimeMs)
			}
			if row.JIT != nil && row.JIT.Bailed != 0 {
				t.Errorf("%s/%s: recorded run had %d bail-out(s): %v",
					b.Bench, row.Config, row.JIT.Bailed, row.JIT.Reasons)
			}
		}
		for _, cfg := range wantRows {
			if !seen[cfg] {
				t.Errorf("%s: missing row for %q", b.Bench, cfg)
			}
		}
	}
	if !rep.Summary.MetTarget {
		t.Error("recorded tiering baseline did not meet the tier-2 speedup target")
	}
}

// TestBenchBaselineSchema is `make perfcheck`'s artifact half: the committed
// BENCH_PR5.json must parse against the recorded-baseline schema, carry a
// row per managed ablation for every benchmark, report zero bail-outs in its
// compiled rows, and have met the tier-2 speedup target when it was recorded.
func TestBenchBaselineSchema(t *testing.T) {
	data, err := os.ReadFile("BENCH_PR5.json")
	if err != nil {
		t.Fatalf("recorded baseline missing (run `go run ./cmd/perfbench -record BENCH_PR5.json`): %v", err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Warmups int    `json:"warmups"`
		Samples int    `json:"samples"`
		Startup []struct {
			Tool   string  `json:"tool"`
			TimeMs float64 `json:"timeMs"`
		} `json:"startup"`
		Warmup []struct {
			Second     int `json:"second"`
			Iterations int `json:"iterations"`
		} `json:"warmup"`
		Benches []struct {
			Bench string `json:"bench"`
			Rows  []struct {
				Config    string  `json:"config"`
				TimeMs    float64 `json:"time_ms"`
				VsClangO0 float64 `json:"vs_clang_o0"`
				JIT       *struct {
					Compiled int      `json:"compiled"`
					Bailed   int      `json:"bailed"`
					Reasons  []string `json:"bail_reasons"`
				} `json:"jit"`
			} `json:"rows"`
			Tier2Speedup float64 `json:"tier2_speedup_vs_baseline"`
		} `json:"benches"`
		Summary struct {
			Target    float64 `json:"target_speedup"`
			Geomean   float64 `json:"compute_bound_geomean_speedup"`
			MetTarget bool    `json:"met_target"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_PR5.json does not parse: %v", err)
	}
	if rep.Schema != "sulong-bench/pr5" {
		t.Fatalf("schema = %q, want sulong-bench/pr5", rep.Schema)
	}
	if rep.Warmups < 30 || rep.Samples < 15 {
		t.Errorf("recorded with warmups=%d samples=%d; protocol floor is 30/15", rep.Warmups, rep.Samples)
	}
	if len(rep.Startup) == 0 || len(rep.Warmup) == 0 {
		t.Error("startup or warmup section empty")
	}
	if want := len(benchprog.All()); len(rep.Benches) != want {
		t.Errorf("benches: got %d rows, want %d", len(rep.Benches), want)
	}
	wantRows := map[string]bool{
		"Clang -O0": false, "Safe Sulong (no JIT)": false,
		"Safe Sulong (baseline)": false, "Safe Sulong (no inline)": false,
		"Safe Sulong": false,
	}
	for _, b := range rep.Benches {
		seen := map[string]bool{}
		for _, row := range b.Rows {
			seen[row.Config] = true
			if row.TimeMs <= 0 {
				t.Errorf("%s/%s: non-positive time %v", b.Bench, row.Config, row.TimeMs)
			}
			if row.JIT != nil && row.JIT.Bailed != 0 {
				t.Errorf("%s/%s: recorded run had %d bail-out(s): %v",
					b.Bench, row.Config, row.JIT.Bailed, row.JIT.Reasons)
			}
		}
		for cfg := range wantRows {
			if !seen[cfg] {
				t.Errorf("%s: missing row for %q", b.Bench, cfg)
			}
		}
		if b.Tier2Speedup <= 0 {
			t.Errorf("%s: tier2_speedup_vs_baseline = %v", b.Bench, b.Tier2Speedup)
		}
	}
	if rep.Summary.Target != 1.5 {
		t.Errorf("target_speedup = %v, want 1.5", rep.Summary.Target)
	}
	if !rep.Summary.MetTarget {
		t.Errorf("recorded baseline did not meet the %.1fx target (geomean %.2fx)",
			rep.Summary.Target, rep.Summary.Geomean)
	}
	if rep.Summary.Geomean < rep.Summary.Target {
		t.Errorf("met_target set but geomean %.2fx < target %.1fx", rep.Summary.Geomean, rep.Summary.Target)
	}
}
