package sulong_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/harness"
)

// TestPerfCheckSmoke is `make perfcheck`'s runtime half: one benchgame
// program under every performance configuration — the native anchors, the
// sanitized engines, and each managed JIT ablation — for a handful of
// iterations each, under the race detector. The managed configurations must
// compile without a single bail-out: a bail never changes behavior, but on
// the benchmark programs the tier-2 layer was built for, silently staying in
// the interpreter is a performance regression this gate exists to catch.
func TestPerfCheckSmoke(t *testing.T) {
	b, err := benchprog.Get("nbody")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []harness.PerfConfig{
		harness.ClangO0, harness.ClangO3, harness.ASanPerf, harness.ValgrindPerf,
		harness.SafeSulongNoJIT, harness.SafeSulongBaseline,
		harness.SafeSulongNoInline, harness.SafeSulongPerf,
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			r, err := harness.NewRunner(cfg, b.Source, b.SmallArg)
			if err != nil {
				t.Fatal(err)
			}
			// Enough iterations to cross the tier-1 compile threshold (25)
			// so the bail-out assertion below is about compiled code, not a
			// cold interpreter.
			for i := 0; i < 30; i++ {
				if err := r.RunIteration(); err != nil {
					t.Fatalf("iteration %d: %v", i, err)
				}
			}
			js := r.JITStats()
			if js.Bailed != 0 {
				t.Errorf("%d bail-out(s) on a benchgame program: %v", js.Bailed, js.BailReasons)
			}
			switch cfg {
			case harness.SafeSulongPerf, harness.SafeSulongBaseline, harness.SafeSulongNoInline:
				if js.Compiled == 0 {
					t.Error("tier-1 compiled nothing after 30 iterations")
				}
			}
		})
	}
}

// TestBenchBaselineSchema is `make perfcheck`'s artifact half: the committed
// BENCH_PR5.json must parse against the recorded-baseline schema, carry a
// row per managed ablation for every benchmark, report zero bail-outs in its
// compiled rows, and have met the tier-2 speedup target when it was recorded.
func TestBenchBaselineSchema(t *testing.T) {
	data, err := os.ReadFile("BENCH_PR5.json")
	if err != nil {
		t.Fatalf("recorded baseline missing (run `go run ./cmd/perfbench -record BENCH_PR5.json`): %v", err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Warmups int    `json:"warmups"`
		Samples int    `json:"samples"`
		Startup []struct {
			Tool   string  `json:"tool"`
			TimeMs float64 `json:"timeMs"`
		} `json:"startup"`
		Warmup []struct {
			Second     int `json:"second"`
			Iterations int `json:"iterations"`
		} `json:"warmup"`
		Benches []struct {
			Bench string `json:"bench"`
			Rows  []struct {
				Config    string  `json:"config"`
				TimeMs    float64 `json:"time_ms"`
				VsClangO0 float64 `json:"vs_clang_o0"`
				JIT       *struct {
					Compiled int      `json:"compiled"`
					Bailed   int      `json:"bailed"`
					Reasons  []string `json:"bail_reasons"`
				} `json:"jit"`
			} `json:"rows"`
			Tier2Speedup float64 `json:"tier2_speedup_vs_baseline"`
		} `json:"benches"`
		Summary struct {
			Target    float64 `json:"target_speedup"`
			Geomean   float64 `json:"compute_bound_geomean_speedup"`
			MetTarget bool    `json:"met_target"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_PR5.json does not parse: %v", err)
	}
	if rep.Schema != "sulong-bench/pr5" {
		t.Fatalf("schema = %q, want sulong-bench/pr5", rep.Schema)
	}
	if rep.Warmups < 30 || rep.Samples < 15 {
		t.Errorf("recorded with warmups=%d samples=%d; protocol floor is 30/15", rep.Warmups, rep.Samples)
	}
	if len(rep.Startup) == 0 || len(rep.Warmup) == 0 {
		t.Error("startup or warmup section empty")
	}
	if want := len(benchprog.All()); len(rep.Benches) != want {
		t.Errorf("benches: got %d rows, want %d", len(rep.Benches), want)
	}
	wantRows := map[string]bool{
		"Clang -O0": false, "Safe Sulong (no JIT)": false,
		"Safe Sulong (baseline)": false, "Safe Sulong (no inline)": false,
		"Safe Sulong": false,
	}
	for _, b := range rep.Benches {
		seen := map[string]bool{}
		for _, row := range b.Rows {
			seen[row.Config] = true
			if row.TimeMs <= 0 {
				t.Errorf("%s/%s: non-positive time %v", b.Bench, row.Config, row.TimeMs)
			}
			if row.JIT != nil && row.JIT.Bailed != 0 {
				t.Errorf("%s/%s: recorded run had %d bail-out(s): %v",
					b.Bench, row.Config, row.JIT.Bailed, row.JIT.Reasons)
			}
		}
		for cfg := range wantRows {
			if !seen[cfg] {
				t.Errorf("%s: missing row for %q", b.Bench, cfg)
			}
		}
		if b.Tier2Speedup <= 0 {
			t.Errorf("%s: tier2_speedup_vs_baseline = %v", b.Bench, b.Tier2Speedup)
		}
	}
	if rep.Summary.Target != 1.5 {
		t.Errorf("target_speedup = %v, want 1.5", rep.Summary.Target)
	}
	if !rep.Summary.MetTarget {
		t.Errorf("recorded baseline did not meet the %.1fx target (geomean %.2fx)",
			rep.Summary.Target, rep.Summary.Geomean)
	}
	if rep.Summary.Geomean < rep.Summary.Target {
		t.Errorf("met_target set but geomean %.2fx < target %.1fx", rep.Summary.Geomean, rep.Summary.Target)
	}
}
