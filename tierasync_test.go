package sulong_test

import (
	"fmt"
	"strings"
	"testing"

	sulong "repro"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/harness"
)

// runAsyncOSR executes one corpus case under Safe Sulong with the full
// asynchronous tiering pipeline forced: background compilation on, every
// function enqueued at its first call, every loop requesting an OSR entry at
// its first back edge, speculation enabled. Because installs are
// asynchronous, *which* activations run compiled is timing-dependent — the
// point of the parity sweep is that it cannot matter.
func runAsyncOSR(t *testing.T, c corpus.Case, plan fault.Plan) sulong.Result {
	t.Helper()
	cfg := sulong.Config{
		Engine:       sulong.EngineSafeSulong,
		Args:         c.Args,
		Stdin:        strings.NewReader(c.Stdin),
		MaxSteps:     harness.DefaultMaxSteps,
		JIT:          true,
		JITThreshold: 1,
		JITAsync:     true,
		OSR:          true,
		OSRThreshold: 1,
		FaultPlan:    plan,
	}
	res, err := sulong.Run(c.Source, cfg)
	if err != nil {
		t.Fatalf("%s (async+osr): %v", c.Name, err)
	}
	return res
}

func runTier0(t *testing.T, c corpus.Case, plan fault.Plan) sulong.Result {
	t.Helper()
	cfg := sulong.Config{
		Engine:    sulong.EngineSafeSulong,
		Args:      c.Args,
		Stdin:     strings.NewReader(c.Stdin),
		MaxSteps:  harness.DefaultMaxSteps,
		FaultPlan: plan,
	}
	res, err := sulong.Run(c.Source, cfg)
	if err != nil {
		t.Fatalf("%s (tier-0): %v", c.Name, err)
	}
	return res
}

// requireTierCheckParity asserts everything observable matches between a
// tier-0 run and an async+OSR run: exit status, stdout, detection, rendered
// diagnostics, and the Stats.Steps/Stats.Calls ledgers — byte-identical
// even though installs, OSR entries, and deopts happened at arbitrary
// points of the tiered run.
func requireTierCheckParity(t *testing.T, interp, tiered sulong.Result) {
	t.Helper()
	if interp.ExitCode != tiered.ExitCode {
		t.Errorf("exit codes diverge: tier-0 %d, async+OSR %d", interp.ExitCode, tiered.ExitCode)
	}
	if interp.Stdout != tiered.Stdout {
		t.Errorf("stdout diverges:\n--- tier-0 ---\n%s\n--- async+OSR ---\n%s",
			clip(interp.Stdout), clip(tiered.Stdout))
	}
	if (interp.Bug == nil) != (tiered.Bug == nil) {
		t.Fatalf("tiers disagree on detection: tier-0 bug=%v, async+OSR bug=%v",
			interp.Bug, tiered.Bug)
	}
	if len(interp.Diagnostics) != len(tiered.Diagnostics) {
		t.Fatalf("diagnostic counts diverge: tier-0 %d, async+OSR %d",
			len(interp.Diagnostics), len(tiered.Diagnostics))
	}
	for i := range interp.Diagnostics {
		d0, d1 := interp.Diagnostics[i].Render(), tiered.Diagnostics[i].Render()
		if d0 != d1 {
			t.Errorf("diagnostic %d diverges:\n--- tier-0 ---\n%s\n--- async+OSR ---\n%s", i, d0, d1)
		}
	}
	if interp.Stats.Steps != tiered.Stats.Steps {
		t.Errorf("step accounting diverges: tier-0 %d, async+OSR %d (Δ %d)",
			interp.Stats.Steps, tiered.Stats.Steps, tiered.Stats.Steps-interp.Stats.Steps)
	}
	if interp.Stats.Calls != tiered.Stats.Calls {
		t.Errorf("call accounting diverges: tier-0 %d, async+OSR %d",
			interp.Stats.Calls, tiered.Stats.Calls)
	}
}

func clip(s string) string {
	if len(s) > 600 {
		return s[:600] + "…"
	}
	return s
}

// TestTierCheckAsyncOSRParityCorpus is `make tiercheck`'s clean-run half:
// the full corpus under tier-0 versus the forced asynchronous pipeline
// (background compile on first call, OSR at the first back edge,
// speculative deopt enabled). Every observable must be byte-identical.
func TestTierCheckAsyncOSRParityCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep skipped in -short mode")
	}
	for _, c := range corpus.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			interp := runTier0(t, c, fault.Plan{})
			tiered := runAsyncOSR(t, c, fault.Plan{})
			requireTierCheckParity(t, interp, tiered)
		})
	}
}

// TestTierCheckAsyncOSRFaultSchedules is the faulting half: the corpus under
// deterministic allocation-failure schedules (the fault sweep's FailNth
// plans), tier-0 versus the forced asynchronous pipeline. An injected
// failure that lands while a loop is running in an OSR entry must unwind
// with the same diagnostics and the same fuel ledger as the interpreter.
func TestTierCheckAsyncOSRFaultSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-schedule sweep skipped in -short mode")
	}
	for nth := int64(1); nth <= 2; nth++ {
		nth := nth
		for _, c := range corpus.All() {
			c := c
			t.Run(fmt.Sprintf("failnth%d/%s", nth, c.Name), func(t *testing.T) {
				t.Parallel()
				plan := fault.Plan{FailNth: nth}
				interp := runTier0(t, c, plan)
				tiered := runAsyncOSR(t, c, plan)
				requireTierCheckParity(t, interp, tiered)
			})
		}
	}
}

// TestTierCheckOSREntersSingleCallLoop pins the scenario synchronous
// tier-up can never reach: a loop that is hot inside its *first and only*
// activation. The entry threshold is set unreachably high, so the only way
// compiled code can run is a mid-activation OSR transfer at a loop back
// edge — and the run must still match tier-0 exactly.
func TestTierCheckOSREntersSingleCallLoop(t *testing.T) {
	const src = `
#include <stdio.h>
int main(void) {
    long s = 0;
    for (int i = 0; i < 200000; i++) s += i % 7;
    printf("%ld\n", s);
    return 0;
}`
	run := func(osr bool) sulong.Result {
		cfg := sulong.Config{
			Engine:   sulong.EngineSafeSulong,
			Stdin:    strings.NewReader(""),
			MaxSteps: harness.DefaultMaxSteps,
		}
		if osr {
			cfg.JIT = true
			cfg.JITThreshold = 1 << 30 // entry compilation unreachable
			cfg.OSR = true
			cfg.OSRThreshold = 1
		}
		res, err := sulong.Run(src, cfg)
		if err != nil {
			t.Fatalf("osr=%v: %v", osr, err)
		}
		return res
	}
	interp := run(false)
	osr := run(true)
	requireTierCheckParity(t, interp, osr)
	if osr.JIT == nil || osr.JIT.OSREntries == 0 {
		t.Fatalf("hot single-call loop never entered an OSR compilation: %+v", osr.JIT)
	}
}

// TestTierCheckDeoptResumesExactInstruction forces a speculation failure:
// the loop's element loads speculate "direct scalar access", but the array
// elements carry pointers, so the guard fails on the first compiled
// iteration and control must transfer back to tier-0 at exactly that
// instruction — observable as a byte-identical run that still records a
// deopt. The one-strike blacklist then recompiles the loop without the
// failed speculation, so OSR re-enters and stays.
func TestTierCheckDeoptResumesExactInstruction(t *testing.T) {
	const src = `
#include <stdio.h>
struct cell { long v; const char *name; };
int main(void) {
    struct cell cells[64];
    for (int i = 0; i < 64; i++) { cells[i].v = i; cells[i].name = "x"; }
    long s = 0;
    for (int r = 0; r < 300; r++)
        for (int i = 0; i < 64; i++)
            s += cells[i].v + (long)(cells[i].name[0] == 'x');
    printf("%ld\n", s);
    return 0;
}`
	run := func(osr bool) sulong.Result {
		cfg := sulong.Config{
			Engine:   sulong.EngineSafeSulong,
			Stdin:    strings.NewReader(""),
			MaxSteps: harness.DefaultMaxSteps,
		}
		if osr {
			cfg.JIT = true
			cfg.JITThreshold = 1 << 30
			cfg.OSR = true
			cfg.OSRThreshold = 1
		}
		res, err := sulong.Run(src, cfg)
		if err != nil {
			t.Fatalf("osr=%v: %v", osr, err)
		}
		return res
	}
	interp := run(false)
	osr := run(true)
	requireTierCheckParity(t, interp, osr)
	if osr.JIT == nil {
		t.Fatal("no JIT report on the OSR run")
	}
	if osr.JIT.Deopts == 0 {
		t.Errorf("pointer-carrying cells never failed a speculation guard: %+v", osr.JIT)
	}
	if osr.JIT.OSREntries <= osr.JIT.Deopts {
		t.Errorf("loop did not re-enter OSR after blacklist recompilation: entries=%d deopts=%d",
			osr.JIT.OSREntries, osr.JIT.Deopts)
	}
}
