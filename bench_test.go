// bench_test.go regenerates every table and figure in the paper's
// evaluation as Go benchmarks. Each benchmark prints the regenerated
// numbers via b.Log / custom metrics; `go test -bench=. -benchmem` runs the
// full set with test-sized workloads, and cmd/perfbench runs paper-sized
// ones.
//
// Index (see DESIGN.md §4 for the full mapping):
//
//	BenchmarkFig1CVEClassification   — Fig. 1 (CVE keyword study)
//	BenchmarkFig2ExploitClassification — Fig. 2 (ExploitDB keyword study)
//	BenchmarkFig3OptimizedAwayBug    — Fig. 3 (O3 deletes the OOB store)
//	BenchmarkTable1ErrorDistribution — Table 1
//	BenchmarkTable2OOBDistribution   — Table 2
//	BenchmarkDetectionMatrix         — §4.1 tool comparison (60/56/8)
//	BenchmarkCaseStudies             — Figs. 10-14
//	BenchmarkStartup*                — §4.2 start-up costs
//	BenchmarkFig15Warmup             — Fig. 15 warm-up curve
//	BenchmarkFig16Peak/*             — Fig. 16 peak performance
//	BenchmarkBinarytrees*            — §4.3 allocation-heavy discussion
//	BenchmarkAblation*               — DESIGN.md §5 design-choice ablations
package sulong_test

import (
	"io"
	"testing"
	"time"

	sulong "repro"
	"repro/internal/benchprog"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/vulndb"
)

// ---- Figures 1 and 2 ----

func BenchmarkFig1CVEClassification(b *testing.B) {
	records := vulndb.GenerateCVE(1802)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := vulndb.Aggregate(records)
		if vulndb.PeakYear(series, vulndb.Spatial) != 2017 {
			b.Fatal("spatial errors should peak in 2017")
		}
	}
	b.ReportMetric(float64(len(records)), "records")
}

func BenchmarkFig2ExploitClassification(b *testing.B) {
	records := vulndb.GenerateExploitDB(1803)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vulndb.Aggregate(records)
	}
	b.ReportMetric(float64(len(records)), "records")
}

// ---- Figure 3 ----

func BenchmarkFig3OptimizedAwayBug(b *testing.B) {
	src := `
int test(int length) {
    int arr[10];
    int i;
    for (i = 0; i < length; i++) arr[i] = i;
    return 0;
}
int main(void) { return test(20); }`
	detectedAtO0, detectedAtO3 := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r0, err := sulong.Run(src, sulong.Config{Engine: sulong.EngineASan, OptLevel: 0})
		if err != nil {
			b.Fatal(err)
		}
		r3, err := sulong.Run(src, sulong.Config{Engine: sulong.EngineASan, OptLevel: 3})
		if err != nil {
			b.Fatal(err)
		}
		if r0.Bug != nil {
			detectedAtO0++
		}
		if r3.Bug != nil {
			detectedAtO3++
		}
	}
	if detectedAtO0 != b.N || detectedAtO3 != 0 {
		b.Fatalf("Fig. 3 shape broken: O0 %d/%d, O3 %d/%d", detectedAtO0, b.N, detectedAtO3, b.N)
	}
}

// ---- Tables 1 and 2 + the detection matrix ----

func BenchmarkTable1ErrorDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for _, c := range corpus.All() {
			cell := harness.RunCase(c, harness.SafeSulong)
			if cell.Detected {
				total++
			}
		}
		if total != 68 {
			b.Fatalf("Safe Sulong detected %d/68", total)
		}
	}
	b.ReportMetric(61, "oob")
	b.ReportMetric(5, "null")
	b.ReportMetric(1, "uaf")
	b.ReportMetric(1, "varargs")
}

func BenchmarkTable2OOBDistribution(b *testing.B) {
	var reads, writes int
	for i := 0; i < b.N; i++ {
		reads, writes = 0, 0
		for _, c := range corpus.All() {
			if c.Category != corpus.BufferOverflow {
				continue
			}
			if !harness.RunCase(c, harness.SafeSulong).Detected {
				b.Fatalf("%s not detected", c.Name)
			}
			if c.Access == corpus.ReadAccess {
				reads++
			} else {
				writes++
			}
		}
	}
	b.ReportMetric(float64(reads), "reads")
	b.ReportMetric(float64(writes), "writes")
}

func BenchmarkDetectionMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.RunDetectionMatrix()
		if m.Totals[harness.SafeSulong] != 68 ||
			m.Totals[harness.ASanO0] != 60 ||
			m.Totals[harness.ASanO3] != 56 ||
			len(m.MissedByBoth()) != 8 {
			b.Fatalf("matrix shape broken: %+v missed=%d", m.Totals, len(m.MissedByBoth()))
		}
		if i == 0 {
			b.ReportMetric(float64(m.Totals[harness.ValgrindO0]), "valgrind_found")
		}
	}
}

func BenchmarkCaseStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range corpus.All() {
			if c.CaseStudy == "" {
				continue
			}
			if !harness.RunCase(c, harness.SafeSulong).Detected {
				b.Fatalf("%s: Safe Sulong must detect %s", c.CaseStudy, c.Name)
			}
			// Fig. 3's bug survives at -O0 and is deleted at -O3; the
			// Figs. 10-14 blind spots are missed at both levels.
			asanTool := harness.ASanO0
			if c.OptimizedAwayAtO3 {
				asanTool = harness.ASanO3
			}
			if harness.RunCase(c, asanTool).Detected {
				b.Fatalf("%s: %v must miss %s", c.CaseStudy, asanTool, c.Name)
			}
		}
	}
}

// ---- §4.2 start-up ----

func benchStartup(b *testing.B, cfgKind harness.PerfConfig) {
	for i := 0; i < b.N; i++ {
		res, err := harness.MeasureStartup(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Tool == cfgKind {
				b.ReportMetric(float64(r.Time.Microseconds()), "us/startup")
			}
		}
	}
}

func BenchmarkStartupSafeSulong(b *testing.B) { benchStartup(b, harness.SafeSulongPerf) }
func BenchmarkStartupASan(b *testing.B)       { benchStartup(b, harness.ASanPerf) }
func BenchmarkStartupValgrind(b *testing.B)   { benchStartup(b, harness.ValgrindPerf) }

// ---- Fig. 15 warm-up ----

func BenchmarkFig15Warmup(b *testing.B) {
	bench, err := benchprog.Get("meteor")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out, err := harness.MeasureWarmup(bench, bench.SmallArg, 1200*time.Millisecond, 300*time.Millisecond,
			[]harness.PerfConfig{harness.SafeSulongPerf})
		if err != nil {
			b.Fatal(err)
		}
		samples := out[harness.SafeSulongPerf]
		if len(samples) == 0 {
			b.Fatal("no warm-up samples")
		}
		last := samples[len(samples)-1]
		if last.Compiled == 0 {
			b.Fatal("the dynamic compiler never fired during warm-up")
		}
		b.ReportMetric(float64(last.Compiled), "compiled_fns")
	}
}

// ---- Fig. 16 peak performance ----

func BenchmarkFig16Peak(b *testing.B) {
	for _, bench := range benchprog.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.MeasurePeak(bench, bench.SmallArg, 5, 3, harness.PerfConfigs())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Relative(harness.SafeSulongPerf), "sulong_vs_O0")
				b.ReportMetric(res.Relative(harness.ASanPerf), "asan_vs_O0")
				b.ReportMetric(res.Relative(harness.ValgrindPerf), "valgrind_vs_O0")
				b.ReportMetric(res.Relative(harness.ClangO3), "O3_vs_O0")
			}
		})
	}
}

// ---- §4.3 binarytrees (allocation-intensive) ----

func benchBinarytrees(b *testing.B, cfgKind harness.PerfConfig) {
	bench, err := benchprog.Get("binarytrees")
	if err != nil {
		b.Fatal(err)
	}
	r, err := harness.NewRunner(cfgKind, bench.Source, bench.SmallArg)
	if err != nil {
		b.Fatal(err)
	}
	// warm up (matters only for the managed engine)
	for i := 0; i < 5; i++ {
		if err := r.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinarytreesClangO0(b *testing.B)    { benchBinarytrees(b, harness.ClangO0) }
func BenchmarkBinarytreesASan(b *testing.B)       { benchBinarytrees(b, harness.ASanPerf) }
func BenchmarkBinarytreesValgrind(b *testing.B)   { benchBinarytrees(b, harness.ValgrindPerf) }
func BenchmarkBinarytreesSafeSulong(b *testing.B) { benchBinarytrees(b, harness.SafeSulongPerf) }

// ---- ablations (DESIGN.md §5) ----

// BenchmarkAblationJITOff measures the tier-0 interpreter against the
// tiered configuration on a compute benchmark.
func BenchmarkAblationJITOff(b *testing.B) {
	bench, err := benchprog.Get("fannkuchredux")
	if err != nil {
		b.Fatal(err)
	}
	for _, cfgKind := range []harness.PerfConfig{harness.SafeSulongPerf, harness.SafeSulongNoJIT} {
		cfgKind := cfgKind
		b.Run(cfgKind.String(), func(b *testing.B) {
			r, err := harness.NewRunner(cfgKind, bench.Source, bench.SmallArg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := r.RunIteration(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.RunIteration(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNoMem2Reg disables the tier-1 compiler's scalar
// promotion, isolating how much of its win comes from removing alloca
// traffic versus dispatch elimination.
func BenchmarkAblationNoMem2Reg(b *testing.B) {
	bench, err := benchprog.Get("nbody")
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		name := "mem2reg-on"
		if disable {
			name = "mem2reg-off"
		}
		b.Run(name, func(b *testing.B) {
			mod, err := sulong.CompileOnly(bench.Source)
			if err != nil {
				b.Fatal(err)
			}
			comp := jit.New()
			comp.DisableMem2Reg = disable
			eng, err := core.NewEngine(mod, core.Config{
				Args: []string{bench.SmallArg}, Stdout: io.Discard,
				Tier1: comp, Tier1Threshold: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationQuarantine shows the UAF-detection consequence of ASan's
// quarantine size: with a tiny quarantine, freed blocks are re-allocated
// immediately and a dangling read goes dark (detection rate, not speed).
func BenchmarkAblationQuarantine(b *testing.B) {
	// A use-after-free with enough intervening allocation to cycle a small
	// quarantine.
	mkChurn := func(iters int) string {
		return `
#include <stdlib.h>
int main(void) {
    int i;
    char *stale = malloc(8192);
    char *fresh;
    free(stale);
    for (i = 0; i < ` + itoa(iters) + `; i++) {
        fresh = malloc(4096); /* churn: pushes the freed block out of quarantine */
        free(fresh);
    }
    fresh = malloc(8192); /* reuses stale's storage once it left quarantine */
    fresh[0] = 'x';
    return stale[0];
}`
	}
	for _, churn := range []int{2, 512} {
		churn := churn
		b.Run("churn-"+itoa(churn), func(b *testing.B) {
			src := mkChurn(churn)
			detected := 0
			for i := 0; i < b.N; i++ {
				res, err := sulong.Run(src, sulong.Config{Engine: sulong.EngineASan})
				if err != nil {
					b.Fatal(err)
				}
				if res.Bug != nil && res.Bug.Kind == core.UseAfterFree {
					detected++
				}
				// Safe Sulong detects it regardless of allocation churn.
				res, err = sulong.Run(src, sulong.Config{Engine: sulong.EngineSafeSulong})
				if err != nil {
					b.Fatal(err)
				}
				if res.Bug == nil {
					b.Fatal("managed engine must detect the stale read")
				}
			}
			b.ReportMetric(float64(detected)/float64(b.N), "asan_uaf_detection_rate")
		})
	}
}

// BenchmarkAblationRedzoneWidth sweeps how far past an object ASan can see:
// accesses beyond the redzone land in valid memory (Fig. 14's mechanism).
func BenchmarkAblationRedzoneWidth(b *testing.B) {
	mk := func(offset int) string {
		return `
#include <stdio.h>
int table[8];
char spacer[8192];
int main(void) {
    int idx = ` + itoa(offset) + `;
    printf("%d\n", table[idx]);
    return (int)spacer[0];
}`
	}
	for _, off := range []int{8, 12, 1024} {
		off := off
		b.Run("index-"+itoa(off), func(b *testing.B) {
			detected := 0
			for i := 0; i < b.N; i++ {
				res, err := sulong.Run(mk(off), sulong.Config{Engine: sulong.EngineASan})
				if err != nil {
					b.Fatal(err)
				}
				if res.Bug != nil {
					detected++
				}
			}
			b.ReportMetric(float64(detected)/float64(b.N), "asan_detection_rate")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
