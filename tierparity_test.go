package sulong_test

import (
	"strings"
	"testing"

	sulong "repro"
	"repro/internal/benchprog"
	"repro/internal/corpus"
	"repro/internal/harness"
)

// TestTierParityStepsAndOutput runs the full corpus under tier-0 and under
// forced tier-2 (compile on first call, all peak optimizations on) and
// requires *semantic* equality beyond the diagnostics parity test: the same
// program output and the byte-identical Stats.Steps count. The step count is
// the strictest observable the weight account must preserve — inlined
// callees, fused gep+access superinstructions, hoisted invariants, and
// coalesced range checks all charge exactly what the tier-0 interpreter
// charges, on clean and on faulting runs.
func TestTierParityStepsAndOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep skipped in -short mode")
	}
	for _, c := range corpus.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			interp := runTier(t, c, false)
			jitted := runTier(t, c, true)
			if interp.Stdout != jitted.Stdout {
				t.Errorf("stdout diverges:\n--- tier-0 ---\n%s\n--- tier-2 ---\n%s",
					interp.Stdout, jitted.Stdout)
			}
			if interp.Stats.Steps != jitted.Stats.Steps {
				t.Errorf("step accounting diverges: tier-0 %d, tier-2 %d (Δ %d)",
					interp.Stats.Steps, jitted.Stats.Steps,
					jitted.Stats.Steps-interp.Stats.Steps)
			}
			if interp.Stats.Calls != jitted.Stats.Calls {
				t.Errorf("call accounting diverges: tier-0 %d, tier-2 %d",
					interp.Stats.Calls, jitted.Stats.Calls)
			}
		})
	}
}

// TestTierParityBenchmarks checks output, exit-code, and step parity on the
// nine benchgame programs — the workloads the tier-2 optimizer was tuned on,
// and the ones exercising inlining, fusion, and hoisting hardest.
func TestTierParityBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark sweep skipped in -short mode")
	}
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			run := func(jit bool) sulong.Result {
				cfg := sulong.Config{
					Engine:   sulong.EngineSafeSulong,
					Args:     []string{b.SmallArg},
					Stdin:    strings.NewReader(""),
					MaxSteps: harness.DefaultMaxSteps,
					JIT:      jit,
				}
				if jit {
					cfg.JITThreshold = 1
				}
				res, err := sulong.Run(b.Source, cfg)
				if err != nil {
					t.Fatalf("%s (jit=%v): %v", b.Name, jit, err)
				}
				return res
			}
			interp := run(false)
			jitted := run(true)
			if interp.ExitCode != jitted.ExitCode {
				t.Errorf("exit codes diverge: tier-0 %d, tier-2 %d", interp.ExitCode, jitted.ExitCode)
			}
			if interp.Stdout != jitted.Stdout {
				d0, d1 := interp.Stdout, jitted.Stdout
				if len(d0) > 600 {
					d0 = d0[:600] + "…"
				}
				if len(d1) > 600 {
					d1 = d1[:600] + "…"
				}
				t.Errorf("stdout diverges:\n--- tier-0 ---\n%s\n--- tier-2 ---\n%s", d0, d1)
			}
			if interp.Stats.Steps != jitted.Stats.Steps {
				t.Errorf("step accounting diverges: tier-0 %d, tier-2 %d (Δ %d)",
					interp.Stats.Steps, jitted.Stats.Steps,
					jitted.Stats.Steps-interp.Stats.Steps)
			}
		})
	}
}
