package sulong_test

import (
	"fmt"
	"strings"
	"testing"

	sulong "repro"
)

// exprRNG is a deterministic generator for the differential fuzzer.
type exprRNG struct{ s uint64 }

func (r *exprRNG) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 16
}

func (r *exprRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// genExpr builds a random C integer expression of bounded depth over a fixed
// set of variables. Division and shifts are guarded to keep the program
// well-defined (so both engines must agree).
func genExpr(r *exprRNG, depth int) string {
	if depth == 0 || r.intn(4) == 0 {
		switch r.intn(6) {
		case 0:
			return fmt.Sprintf("%d", r.intn(2000)-1000)
		case 1:
			return fmt.Sprintf("%du", r.intn(1000))
		case 2:
			return "a"
		case 3:
			return "b"
		case 4:
			return "c"
		default:
			return "u"
		}
	}
	x := genExpr(r, depth-1)
	y := genExpr(r, depth-1)
	switch r.intn(12) {
	case 0:
		return "(" + x + " + " + y + ")"
	case 1:
		return "(" + x + " - " + y + ")"
	case 2:
		return "(" + x + " * " + y + ")"
	case 3:
		return "(" + x + " / (" + y + " | 1))" // never zero
	case 4:
		return "(" + x + " % (" + y + " | 1))"
	case 5:
		return "(" + x + " & " + y + ")"
	case 6:
		return "(" + x + " | " + y + ")"
	case 7:
		return "(" + x + " ^ " + y + ")"
	case 8:
		return "(" + x + " << (" + y + " & 7))"
	case 9:
		return "(" + x + " >> (" + y + " & 7))"
	case 10:
		return "(" + x + " < " + y + ")"
	default:
		return "(" + x + " == " + y + " ? " + x + " : " + y + ")"
	}
}

// TestDifferentialExpressions generates random well-defined integer
// expression programs and requires the managed engine, the native machine,
// and the optimized native pipeline to produce identical output — a three-
// way differential over the front end, both ALUs, and the optimizer.
func TestDifferentialExpressions(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzz skipped in -short mode")
	}
	r := &exprRNG{s: 20180324} // the paper's publication date
	const programs = 60
	for i := 0; i < programs; i++ {
		var exprs []string
		for k := 0; k < 4; k++ {
			exprs = append(exprs, genExpr(r, 3))
		}
		src := fmt.Sprintf(`#include <stdio.h>
int main(void) {
    int a = %d, b = %d, c = %d;
    unsigned int u = %du;
    long r0 = (long)(%s);
    long r1 = (long)(%s);
    long r2 = (long)(%s);
    long r3 = (long)(%s);
    printf("%%ld %%ld %%ld %%ld\n", r0, r1, r2, r3);
    return 0;
}`, r.intn(200)-100, r.intn(200)-100, r.intn(2000)-1000, r.intn(5000),
			exprs[0], exprs[1], exprs[2], exprs[3])

		var outs [3]string
		configs := []sulong.Config{
			{Engine: sulong.EngineSafeSulong},
			{Engine: sulong.EngineNative, OptLevel: 0},
			{Engine: sulong.EngineNative, OptLevel: 3},
		}
		ok := true
		for ci, cfg := range configs {
			res, err := sulong.Run(src, cfg)
			if err != nil {
				t.Fatalf("program %d config %d: %v\n%s", i, ci, err, src)
			}
			if res.Bug != nil || res.Fault != nil {
				t.Fatalf("program %d config %d: unexpected bug/fault %v %v\n%s", i, ci, res.Bug, res.Fault, src)
			}
			outs[ci] = res.Stdout
			if ci > 0 && outs[ci] != outs[0] {
				ok = false
			}
		}
		if !ok {
			t.Errorf("program %d: engines diverge:\n  managed:   %q\n  native O0: %q\n  native O3: %q\nsource:\n%s",
				i, outs[0], outs[1], outs[2], src)
		}
	}
}

// TestDifferentialUnsignedLong extends the fuzz to 64-bit unsigned edges.
func TestDifferentialUnsignedLong(t *testing.T) {
	cases := []string{
		"(unsigned long)-1 / 3u",
		"(unsigned long)-1 % 10u",
		"(1ul << 63) >> 62",
		"((long)((1ul << 63))) >> 62",
		"(unsigned long)-1 > 5u",
		"(long)-1 > 5",
		"(unsigned char)(300) + (signed char)(-2)",
		"(short)65535 * 2",
		"(unsigned short)65535 + 1",
	}
	var lines []string
	for _, e := range cases {
		lines = append(lines, fmt.Sprintf(`    printf("%%ld\n", (long)(%s));`, e))
	}
	src := "#include <stdio.h>\nint main(void) {\n" + strings.Join(lines, "\n") + "\n    return 0;\n}"
	var ref string
	for _, eng := range []sulong.Engine{sulong.EngineSafeSulong, sulong.EngineNative} {
		res, err := sulong.Run(src, sulong.Config{Engine: eng})
		if err != nil || res.Bug != nil {
			t.Fatalf("%v: %v %v", eng, err, res.Bug)
		}
		if ref == "" {
			ref = res.Stdout
		} else if res.Stdout != ref {
			t.Errorf("engines diverge:\n%q\nvs\n%q", ref, res.Stdout)
		}
	}
	// Spot-check a few known values.
	if !strings.HasPrefix(ref, "6148914691236517205\n") {
		t.Errorf("(unsigned long)-1 / 3 wrong: %q", ref)
	}
}
