package sulong_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/harness"
)

func TestDetectionMatrixShape(t *testing.T) {
	m := harness.RunDetectionMatrix()
	t.Log("\n" + m.Render())
	for name, row := range m.Cells {
		for tool, cell := range row {
			if cell.RunError != "" {
				t.Errorf("%s under %v: run error: %s", name, tool, cell.RunError)
			}
		}
	}
	// 68 paper cases + 8 type-confusion cases (beyond the paper).
	if got := m.Totals[harness.SafeSulong]; got != 76 {
		t.Errorf("SafeSulong detected %d, want 76", got)
		for _, c := range m.Cases {
			cell := m.Cells[c.Name][harness.SafeSulong]
			if !cell.Detected {
				t.Logf("  MISSED: %s (%s)", c.Name, cell.Report)
			}
		}
	}
	if got := m.Totals[harness.ASanO0]; got != 60 {
		t.Errorf("ASan -O0 detected %d, want 60", got)
	}
	if got := m.Totals[harness.ASanO3]; got != 56 {
		t.Errorf("ASan -O3 detected %d, want 56", got)
	}
	// The paper's 8 plus the 8 in-bounds type-confusion cases.
	if len(m.MissedByBoth()) != 16 {
		t.Errorf("missed-by-both = %d, want 16: %v", len(m.MissedByBoth()), m.MissedByBoth())
	}
}

// TestFixedVersionsRunClean checks the bundled bug fixes: every repaired
// program must run with no report under Safe Sulong AND still produce no
// report under the baseline tools (a fix, not a workaround).
func TestFixedVersionsRunClean(t *testing.T) {
	n := 0
	for _, c := range corpus.All() {
		if c.Fixed == "" {
			continue
		}
		n++
		fixed := c
		fixed.Source = c.Fixed
		for _, tool := range []harness.Tool{harness.SafeSulong, harness.ASanO0, harness.ValgrindO0} {
			cell := harness.RunCase(fixed, tool)
			if cell.RunError != "" {
				t.Errorf("%s (fixed) under %v: %s", c.Name, tool, cell.RunError)
				continue
			}
			if cell.Detected || cell.Crashed {
				t.Errorf("%s (fixed) under %v still reports: %s", c.Name, tool, cell.Report)
			}
		}
	}
	if n < 10 {
		t.Errorf("expected at least 10 bundled fixes, have %d", n)
	}
}
