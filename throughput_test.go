package sulong_test

// Warm-vs-cold parity pin for the compile-once/run-many machinery, run under
// -race by `make throughputcheck`. A warm run — executable-code cache hit,
// engine taken from the reuse pool — must be observationally indistinguishable
// from a cold compile: byte-identical stdout, exit code, Stats.Steps,
// Stats.Calls, and rendered diagnostics, across the full bug corpus, for
// tier-0, forced tier-1, and async+OSR tiering, clean and under injected
// allocation faults. TestBenchPR10Schema additionally pins the committed
// BENCH_PR10.json throughput baseline to its schema.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	sulong "repro"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/harness"
)

// throughputTiers are the tier selections the pin sweeps: interpreter only,
// compile-on-first-call, and background tier-up with on-stack replacement at
// the first hot back-edge — the three execution models whose observables the
// code cache must not move.
var throughputTiers = []struct {
	name string
	cfg  func(*sulong.Config)
}{
	{"tier0", func(*sulong.Config) {}},
	{"jit", func(c *sulong.Config) { c.JIT = true; c.JITThreshold = 1 }},
	{"osr", func(c *sulong.Config) {
		c.JIT = true
		c.JITThreshold = 1
		c.JITAsync = true
		c.OSR = true
		c.OSRThreshold = 1
	}},
}

// runPin executes one corpus case once. cold opts out of the code cache and
// engine pool (the from-scratch execution model); warm runs use both.
func runPin(t *testing.T, c corpus.Case, tier func(*sulong.Config), failNth int64, cold bool) sulong.Result {
	t.Helper()
	cfg := sulong.Config{
		Engine:      sulong.EngineSafeSulong,
		Args:        c.Args,
		MaxSteps:    harness.DefaultMaxSteps,
		FaultPlan:   fault.Plan{FailNth: failNth},
		NoCodeCache: cold,
	}
	if c.Stdin != "" {
		cfg.Stdin = strings.NewReader(c.Stdin)
	}
	tier(&cfg)
	res, err := sulong.Run(c.Source, cfg)
	if err != nil {
		t.Fatalf("%s (cold=%v, failNth=%d): %v", c.Name, cold, failNth, err)
	}
	return res
}

// observables flattens the parts of a Result the pin compares into one
// printable string, so a mismatch reports every divergent field at once.
func observables(r sulong.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "exit=%d steps=%d calls=%d\n", r.ExitCode, r.Stats.Steps, r.Stats.Calls)
	fmt.Fprintf(&b, "stdout=%q\n", r.Stdout)
	for _, d := range r.Diagnostics {
		b.WriteString(d.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestWarmColdCacheParity is the acceptance pin: for every corpus case, every
// tier selection, and fault plans {none, FailNth 1, FailNth 2}, a cold run,
// a warm run, and a second warm run (the one that actually hits the code
// cache and a pooled engine) must agree byte-for-byte on every observable.
func TestWarmColdCacheParity(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep skipped in -short mode")
	}
	for _, tier := range throughputTiers {
		tier := tier
		t.Run(tier.name, func(t *testing.T) {
			for _, c := range corpus.All() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					for _, failNth := range []int64{0, 1, 2} {
						cold := observables(runPin(t, c, tier.cfg, failNth, true))
						warm1 := observables(runPin(t, c, tier.cfg, failNth, false))
						warm2 := observables(runPin(t, c, tier.cfg, failNth, false))
						if warm1 != cold {
							t.Errorf("failNth=%d: first warm run diverges from cold:\ncold:\n%s\nwarm:\n%s",
								failNth, cold, warm1)
						}
						if warm2 != cold {
							t.Errorf("failNth=%d: cache-hit run diverges from cold:\ncold:\n%s\nwarm:\n%s",
								failNth, cold, warm2)
						}
					}
				})
			}
		})
	}
}

// TestBenchPR10Schema validates the committed throughput baseline the same
// way TestBenchPR6Schema pins BENCH_PR6.json: the schema tag, a cold and a
// warm row per driver with sane units/throughput, latency percentiles where
// the protocol promises them, and a summary that meets the warm-cache
// speedup target the PR claims.
func TestBenchPR10Schema(t *testing.T) {
	data, err := os.ReadFile("BENCH_PR10.json")
	if err != nil {
		t.Fatalf("BENCH_PR10.json must be committed alongside the code cache: %v", err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Workers int    `json:"workers"`
		Rows    []struct {
			Driver      string  `json:"driver"`
			Mode        string  `json:"mode"`
			Units       int     `json:"units"`
			WallClockMs float64 `json:"wall_clock_ms"`
			UnitsPerSec float64 `json:"units_per_sec"`
			P50CellMs   float64 `json:"p50_cell_ms"`
			P99CellMs   float64 `json:"p99_cell_ms"`
		} `json:"rows"`
		Summary struct {
			Target   float64 `json:"target_warm_speedup"`
			Geomean  float64 `json:"matrix_geomean_warm_speedup"`
			Met      bool    `json:"met_target"`
			CampCold float64 `json:"campaign_programs_per_sec_cold"`
			CampWarm float64 `json:"campaign_programs_per_sec_warm"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parse BENCH_PR10.json: %v", err)
	}
	if rep.Schema != "sulong-bench/pr10" {
		t.Fatalf("schema = %q, want sulong-bench/pr10", rep.Schema)
	}
	if rep.Workers < 1 {
		t.Fatalf("workers = %d", rep.Workers)
	}

	type key struct{ driver, mode string }
	seen := map[key]bool{}
	for _, r := range rep.Rows {
		if r.Mode != "cold" && r.Mode != "warm" {
			t.Fatalf("row %s has mode %q", r.Driver, r.Mode)
		}
		if r.Units <= 0 || r.WallClockMs <= 0 || r.UnitsPerSec <= 0 {
			t.Fatalf("row %s/%s has empty measurements: %+v", r.Driver, r.Mode, r)
		}
		if r.Driver != "campaign-500" {
			if r.P50CellMs <= 0 || r.P99CellMs < r.P50CellMs {
				t.Fatalf("row %s/%s has implausible latency percentiles: p50=%v p99=%v",
					r.Driver, r.Mode, r.P50CellMs, r.P99CellMs)
			}
		}
		seen[key{r.Driver, r.Mode}] = true
	}
	for _, driver := range []string{"matrix", "matrix-jit", "faultsweep", "campaign-500"} {
		for _, mode := range []string{"cold", "warm"} {
			if !seen[key{driver, mode}] {
				t.Errorf("missing row %s/%s", driver, mode)
			}
		}
	}

	if rep.Summary.Target != 3.0 {
		t.Errorf("target_warm_speedup = %v, want 3.0", rep.Summary.Target)
	}
	if !rep.Summary.Met || rep.Summary.Geomean < rep.Summary.Target {
		t.Errorf("committed baseline misses the warm-cache target: geomean %.2fx vs %.1fx",
			rep.Summary.Geomean, rep.Summary.Target)
	}
	if rep.Summary.CampCold <= 0 || rep.Summary.CampWarm <= 0 {
		t.Errorf("campaign programs/sec missing: cold=%v warm=%v",
			rep.Summary.CampCold, rep.Summary.CampWarm)
	}
}
