// Command cvestats reproduces the paper's §2.1 study (Figs. 1 and 2):
// keyword classification of vulnerability and exploit records into memory-
// error categories, aggregated per year.
//
// Usage:
//
//	cvestats            # both figures plus classifier accuracy
//	cvestats -seed 7    # regenerate the synthetic databases with a seed
package main

import (
	"flag"
	"fmt"

	"repro/internal/vulndb"
)

func main() {
	seed := flag.Uint64("seed", 1802, "dataset generator seed")
	flag.Parse()

	cves := vulndb.GenerateCVE(*seed)
	exploits := vulndb.GenerateExploitDB(*seed + 1)

	fmt.Print(vulndb.Render("Figure 1: reported vulnerabilities in the CVE database (2012-03 .. 2017-09)",
		vulndb.Aggregate(cves)))
	fmt.Println()
	fmt.Print(vulndb.Render("Figure 2: available exploits in the ExploitDB (2012-03 .. 2017-09)",
		vulndb.Aggregate(exploits)))
	fmt.Println()

	c1, t1 := vulndb.ClassifierAccuracy(cves)
	c2, t2 := vulndb.ClassifierAccuracy(exploits)
	fmt.Printf("keyword classifier accuracy: CVE %d/%d (%.1f%%), ExploitDB %d/%d (%.1f%%)\n",
		c1, t1, 100*float64(c1)/float64(t1), c2, t2, 100*float64(c2)/float64(t2))
	fmt.Printf("spatial errors peak in %d (the paper's all-time-high claim)\n",
		vulndb.PeakYear(vulndb.Aggregate(cves), vulndb.Spatial))
}
