// Command sulong compiles and runs a C program under one of the
// reproduction's execution engines.
//
// Usage:
//
//	sulong [-engine safe|native|asan|memcheck] [-O 0|3] [-emit-ir]
//	       [-jit] [-jitthreshold N] [-jitasync] [-osr] [-osrthreshold N]
//	       [-leaks] [-maxheap N] [-failnth N] [-json report.json]
//	       file.c [program args...]
//
// -jitasync moves tier-1 compilation onto a background pool (installs land
// at dispatch points between guest instructions); -osr additionally compiles
// hot loops mid-activation via on-stack replacement, with speculative fast
// paths that deoptimize back to the interpreter when a guard fails. All
// combinations report identical program behavior — only warm-up changes.
//
// -maxheap bounds the guest's memory: heap allocations past the budget
// return NULL (so the guest's own error paths run), while stack or global
// exhaustion surfaces a structured resource error. -failnth/-failprob inject
// deterministic allocation failures to exercise the same paths on demand.
//
// Memory-error reports render with their backtraces: the access call stack
// plus, for heap errors, the allocation-site and free-site stacks (the
// ASan report shape). -json additionally writes the structured diagnostics.
//
// Exit status: the program's exit code; 2 on compile errors; 1 when a
// memory error or machine fault was reported.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	sulong "repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
)

func main() {
	engine := flag.String("engine", "safe", "execution engine: safe, native, asan, memcheck")
	optLevel := flag.Int("O", 0, "optimization level for the native pipeline (0 or 3)")
	emitIR := flag.Bool("emit-ir", false, "print the compiled SIR module and exit")
	useJIT := flag.Bool("jit", true, "enable the tier-1 dynamic compiler (safe engine)")
	jitThreshold := flag.Int64("jitthreshold", 0, "call count that triggers tier-up (0 = library default)")
	jitAsync := flag.Bool("jitasync", false, "compile hot functions on a background pool (safe engine)")
	osr := flag.Bool("osr", false, "enable on-stack replacement at hot loop back-edges (safe engine)")
	osrThreshold := flag.Int64("osrthreshold", 0, "back-edge count that triggers OSR (0 = library default, implies -osr)")
	leaks := flag.Bool("leaks", false, "report unfreed heap objects at exit (safe engine)")
	uar := flag.Bool("use-after-return", false, "detect accesses to stack objects of returned functions (safe engine)")
	runIR := flag.Bool("ir", false, "treat the input as an SIR module instead of C source")
	maxHeap := flag.Int64("maxheap", 0, "guest heap budget in bytes (0 = unlimited)")
	maxAlloc := flag.Int64("maxalloc", 0, "single-allocation cap in bytes (0 = engine default)")
	failNth := flag.Int64("failnth", 0, "fail the N-th guest heap allocation (0 = off)")
	failProb := flag.Float64("failprob", 0, "fail each guest heap allocation with this probability (0 = off)")
	faultSeed := flag.Int64("faultseed", 0, "PRNG seed for -failprob (deterministic)")
	jsonOut := flag.String("json", "", "write the run's structured diagnostics to this file")
	introspect := flag.Bool("introspect", false, "on a memory error, also print the involved object's identity (effective type, stored/accessed types, allocation site)")
	hardened := flag.Bool("hardened", false, "use the bounds-aware libc: bulk string writes truncate at the destination object's end instead of overflowing")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: sulong [flags] file.c [args...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	srcFile := flag.Arg(0)
	src, err := os.ReadFile(srcFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	engines := map[string]sulong.Engine{
		"safe":     sulong.EngineSafeSulong,
		"native":   sulong.EngineNative,
		"asan":     sulong.EngineASan,
		"memcheck": sulong.EngineMemcheck,
		"valgrind": sulong.EngineMemcheck,
	}
	eng, ok := engines[*engine]
	if !ok {
		fmt.Fprintf(os.Stderr, "sulong: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	cfg := sulong.Config{
		Engine:               eng,
		OptLevel:             *optLevel,
		Args:                 flag.Args()[1:],
		Stdin:                os.Stdin,
		Stdout:               os.Stdout,
		JIT:                  *useJIT,
		JITThreshold:         *jitThreshold,
		JITAsync:             *jitAsync,
		OSR:                  *osr,
		OSRThreshold:         *osrThreshold,
		DetectLeaks:          *leaks,
		DetectUseAfterReturn: *uar,
		HardenedLibc:         *hardened,
		MaxHeapBytes:         *maxHeap,
		MaxAllocBytes:        *maxAlloc,
		FaultPlan:            fault.Plan{Seed: *faultSeed, FailNth: *failNth, FailProb: *failProb},
	}

	if *runIR {
		mod, err := ir.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := ir.Verify(mod); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res, err := sulong.RunModule(mod, cfg)
		finish(res, err, *engine, *jsonOut, *introspect)
		return
	}

	if *emitIR {
		mod, err := sulong.CompileFor(string(src), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(ir.Print(mod))
		return
	}

	res, err := sulong.Run(string(src), cfg)
	finish(res, err, *engine, *jsonOut, *introspect)
}

func finish(res sulong.Result, err error, engine, jsonOut string, introspect bool) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sulong:", err)
		// Guest resource exhaustion (-maxheap) is a run outcome, not a
		// toolchain failure: exit like a reported fault.
		var oom *core.ResourceError
		if errors.As(err, &oom) {
			os.Exit(1)
		}
		os.Exit(2)
	}
	if jsonOut != "" {
		// The report carries the structured diagnostics plus the tier-1
		// compiler's activity: a bail-out never changes behavior — the
		// function just stays interpreted — so it must be visible here
		// rather than diagnosed from a mysteriously slow run.
		payload := struct {
			Diagnostics interface{}       `json:"diagnostics"`
			JIT         *sulong.JITReport `json:"jit,omitempty"`
		}{res.Diagnostics, res.JIT}
		data, jerr := json.MarshalIndent(payload, "", "  ")
		if jerr == nil {
			jerr = os.WriteFile(jsonOut, append(data, '\n'), 0o644)
		}
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "sulong:", jerr)
			os.Exit(2)
		}
	}
	if res.Bug != nil {
		// Render the full diagnostic when backtraces are available: the
		// message plus the access / allocation-site / free-site stacks.
		if len(res.Diagnostics) > 0 {
			fmt.Fprintf(os.Stderr, "%s: %s\n", engine, res.Diagnostics[0].Render())
		} else {
			fmt.Fprintf(os.Stderr, "%s: %v\n", engine, res.Bug)
		}
		if introspect {
			printObjectReport(res.Bug)
		}
		os.Exit(1)
	}
	if res.Fault != nil {
		fmt.Fprintf(os.Stderr, "%v\n", res.Fault)
		os.Exit(1)
	}
	for _, leak := range res.Leaks {
		fmt.Fprintf(os.Stderr, "leak: %v\n", leak)
	}
	os.Exit(res.ExitCode)
}

// printObjectReport renders the -introspect view of a reported bug: the
// involved object's dynamic identity as the type plane saw it at the
// moment of the report.
func printObjectReport(bug *core.BugError) {
	fmt.Fprintln(os.Stderr, "object report:")
	name := bug.Obj
	if name == "" {
		name = "<unknown>"
	}
	fmt.Fprintf(os.Stderr, "  object:         %s (%s, %d bytes)\n", name, bug.Mem, bug.ObjSize)
	if bug.CType != "" {
		fmt.Fprintf(os.Stderr, "  effective type: %s\n", bug.CType)
	}
	if bug.Stored != "" {
		fmt.Fprintf(os.Stderr, "  stored as:      %s\n", bug.Stored)
	}
	if bug.Accessed != "" {
		fmt.Fprintf(os.Stderr, "  accessed as:    %s\n", bug.Accessed)
	}
	fmt.Fprintf(os.Stderr, "  access:         %s of size %d at offset %d\n", bug.Access, bug.Size, bug.Off)
	if !bug.AllocStack.IsEmpty() {
		fmt.Fprintf(os.Stderr, "  allocated at:\n%s\n", bug.AllocStack)
	}
	if !bug.FreeStack.IsEmpty() {
		fmt.Fprintf(os.Stderr, "  freed at:\n%s\n", bug.FreeStack)
	}
}
