// Command perfbench reproduces the paper's performance evaluation:
// §4.2 start-up and warm-up (Fig. 15) and §4.3 peak performance (Fig. 16).
//
// Usage:
//
//	perfbench -startup                 # hello-world start-up per tool
//	perfbench -warmup [-bench meteor]  # Fig. 15 iterations/s over time
//	perfbench -peak [-bench all]       # Fig. 16 relative execution times
//	perfbench -peak -warmups 50 -samples 10 -full   # paper-sized runs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchprog"
	"repro/internal/harness"
)

func main() {
	startup := flag.Bool("startup", false, "measure start-up time (§4.2)")
	warmup := flag.Bool("warmup", false, "measure warm-up behaviour (Fig. 15)")
	peak := flag.Bool("peak", false, "measure peak performance (Fig. 16)")
	benchName := flag.String("bench", "", "benchmark name (default: meteor for -warmup, all for -peak)")
	warmups := flag.Int("warmups", 10, "in-process warm-up iterations before sampling")
	samples := flag.Int("samples", 5, "timed iterations per configuration")
	seconds := flag.Float64("seconds", 10, "wall-clock duration of the warm-up experiment")
	full := flag.Bool("full", false, "use the paper-sized workloads (slower)")
	flag.Parse()

	if !*startup && !*warmup && !*peak {
		fmt.Fprintln(os.Stderr, "usage: perfbench -startup | -warmup | -peak [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *startup {
		results, err := harness.MeasureStartup(10)
		check(err)
		fmt.Println("Start-up time, hello world (average of 10 runs):")
		for _, r := range results {
			fmt.Printf("  %-14v %v\n", r.Tool, r.Time)
		}
	}

	if *warmup {
		name := *benchName
		if name == "" {
			name = "meteor"
		}
		b, err := benchprog.Get(name)
		check(err)
		arg := b.SmallArg
		if *full {
			arg = b.DefaultArg
		}
		fmt.Printf("Warm-up on %s (arg %s), %gs window, 1s buckets (Fig. 15):\n", name, arg, *seconds)
		cfgs := []harness.PerfConfig{harness.SafeSulongPerf, harness.ASanPerf, harness.ValgrindPerf}
		out, err := harness.MeasureWarmup(b, arg, time.Duration(*seconds*float64(time.Second)), time.Second, cfgs)
		check(err)
		for _, cfg := range cfgs {
			fmt.Printf("  %v:\n", cfg)
			for _, s := range out[cfg] {
				marker := ""
				if cfg == harness.SafeSulongPerf {
					marker = fmt.Sprintf("  (compiled ASTs: %d)", s.Compiled)
				}
				fmt.Printf("    second %2d: %4d iterations%s\n", s.Bucket+1, s.Iterations, marker)
			}
		}
	}

	if *peak {
		var benches []benchprog.Benchmark
		if *benchName == "" || *benchName == "all" {
			benches = benchprog.All()
		} else {
			b, err := benchprog.Get(*benchName)
			check(err)
			benches = []benchprog.Benchmark{b}
		}
		fmt.Printf("Peak performance relative to Clang -O0 (Fig. 16), %d warm-ups, %d samples:\n",
			*warmups, *samples)
		var rows []harness.PeakResult
		for _, b := range benches {
			arg := b.SmallArg
			if *full {
				arg = b.DefaultArg
			}
			row, err := harness.MeasurePeak(b, arg, *warmups, *samples, harness.PerfConfigs())
			check(err)
			rows = append(rows, row)
			note := ""
			if b.AllocHeavy {
				note = "   <- allocation-intensive (§4.3's binarytrees discussion)"
			}
			fmt.Printf("  %s done%s\n", b.Name, note)
		}
		fmt.Println()
		fmt.Print(harness.RenderPeak(rows, harness.PerfConfigs()))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}
