// Command perfbench reproduces the paper's performance evaluation:
// §4.2 start-up and warm-up (Fig. 15) and §4.3 peak performance (Fig. 16),
// plus pipeline-level measurements of this repository's own machinery: the
// corpus-matrix wall clock under the parallel evaluation driver and the
// content-addressed module cache's hit rate.
//
// Usage:
//
//	perfbench -startup                 # hello-world start-up per tool
//	perfbench -warmup [-bench meteor]  # Fig. 15 iterations/s over time
//	perfbench -peak [-bench all]       # Fig. 16 relative execution times
//	perfbench -peak -warmups 50 -samples 10 -full   # paper-sized runs
//	perfbench -matrix [-parallel N]    # corpus-matrix wall clock, serial vs parallel
//	perfbench -matrix -timeout 5s      # with a per-cell wall-clock deadline
//	perfbench ... -json out.json       # machine-readable report (cache stats included)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	sulong "repro"
	"repro/internal/benchprog"
	"repro/internal/harness"
)

// report is the machine-readable output of a perfbench invocation. Every
// section is optional (filled only when the matching mode ran); the cache
// section is always present.
type report struct {
	Startup []startupEntry `json:"startup,omitempty"`
	Peak    []peakEntry    `json:"peak,omitempty"`
	Matrix  *matrixEntry   `json:"matrix,omitempty"`
	Cache   cacheEntry     `json:"cache"`
}

type startupEntry struct {
	Tool   string  `json:"tool"`
	TimeMs float64 `json:"timeMs"`
}

type peakEntry struct {
	Bench    string             `json:"bench"`
	TimesMs  map[string]float64 `json:"timesMs"`
	Relative map[string]float64 `json:"relativeToClangO0"`
}

type matrixEntry struct {
	Cases               int     `json:"cases"`
	Workers             int     `json:"workers"`
	SerialWallClockMs   float64 `json:"serialWallClockMs"`
	ParallelWallClockMs float64 `json:"parallelWallClockMs"`
	Speedup             float64 `json:"speedup"`
}

type cacheEntry struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hitRate"`
	Entries int     `json:"entries"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func main() {
	startup := flag.Bool("startup", false, "measure start-up time (§4.2)")
	warmup := flag.Bool("warmup", false, "measure warm-up behaviour (Fig. 15)")
	peak := flag.Bool("peak", false, "measure peak performance (Fig. 16)")
	matrix := flag.Bool("matrix", false, "measure corpus-matrix wall clock, serial vs parallel")
	benchName := flag.String("bench", "", "benchmark name (default: meteor for -warmup, all for -peak)")
	warmups := flag.Int("warmups", 10, "in-process warm-up iterations before sampling")
	samples := flag.Int("samples", 5, "timed iterations per configuration")
	seconds := flag.Float64("seconds", 10, "wall-clock duration of the warm-up experiment")
	full := flag.Bool("full", false, "use the paper-sized workloads (slower)")
	parallel := flag.Int("parallel", 0, "matrix worker count (0 = one per CPU)")
	cellTimeout := flag.Duration("timeout", 0, "per-cell wall-clock deadline for -matrix (0 = none)")
	maxSteps := flag.Int64("maxsteps", 0, "per-cell step budget for -matrix (0 = harness default)")
	jsonOut := flag.String("json", "", "write a machine-readable report to this file")
	flag.Parse()

	if !*startup && !*warmup && !*peak && !*matrix {
		fmt.Fprintln(os.Stderr, "usage: perfbench -startup | -warmup | -peak | -matrix [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var rep report

	if *startup {
		results, err := harness.MeasureStartup(10)
		check(err)
		fmt.Println("Start-up time, hello world (average of 10 runs):")
		for _, r := range results {
			fmt.Printf("  %-14v %v\n", r.Tool, r.Time)
			rep.Startup = append(rep.Startup, startupEntry{Tool: r.Tool.String(), TimeMs: ms(r.Time)})
		}
	}

	if *warmup {
		name := *benchName
		if name == "" {
			name = "meteor"
		}
		b, err := benchprog.Get(name)
		check(err)
		arg := b.SmallArg
		if *full {
			arg = b.DefaultArg
		}
		fmt.Printf("Warm-up on %s (arg %s), %gs window, 1s buckets (Fig. 15):\n", name, arg, *seconds)
		cfgs := []harness.PerfConfig{harness.SafeSulongPerf, harness.ASanPerf, harness.ValgrindPerf}
		out, err := harness.MeasureWarmup(b, arg, time.Duration(*seconds*float64(time.Second)), time.Second, cfgs)
		check(err)
		for _, cfg := range cfgs {
			fmt.Printf("  %v:\n", cfg)
			for _, s := range out[cfg] {
				marker := ""
				if cfg == harness.SafeSulongPerf {
					marker = fmt.Sprintf("  (compiled ASTs: %d)", s.Compiled)
				}
				fmt.Printf("    second %2d: %4d iterations%s\n", s.Bucket+1, s.Iterations, marker)
			}
		}
	}

	if *peak {
		var benches []benchprog.Benchmark
		if *benchName == "" || *benchName == "all" {
			benches = benchprog.All()
		} else {
			b, err := benchprog.Get(*benchName)
			check(err)
			benches = []benchprog.Benchmark{b}
		}
		fmt.Printf("Peak performance relative to Clang -O0 (Fig. 16), %d warm-ups, %d samples:\n",
			*warmups, *samples)
		var rows []harness.PeakResult
		for _, b := range benches {
			arg := b.SmallArg
			if *full {
				arg = b.DefaultArg
			}
			row, err := harness.MeasurePeak(b, arg, *warmups, *samples, harness.PerfConfigs())
			check(err)
			rows = append(rows, row)
			note := ""
			if b.AllocHeavy {
				note = "   <- allocation-intensive (§4.3's binarytrees discussion)"
			}
			fmt.Printf("  %s done%s\n", b.Name, note)
		}
		fmt.Println()
		fmt.Print(harness.RenderPeak(rows, harness.PerfConfigs()))
		for _, row := range rows {
			pe := peakEntry{Bench: row.Bench, TimesMs: map[string]float64{}, Relative: map[string]float64{}}
			for _, cfg := range harness.PerfConfigs() {
				pe.TimesMs[cfg.String()] = ms(row.Times[cfg])
				pe.Relative[cfg.String()] = row.Relative(cfg)
			}
			rep.Peak = append(rep.Peak, pe)
		}
	}

	if *matrix {
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		// Warm the module cache off the clock, then time the matrix serial
		// vs parallel: with compilation amortized, the remaining cost is
		// execution, which scales with the worker count.
		fmt.Printf("Corpus-matrix wall clock (cache warm, %d cases x %d tools):\n",
			len(harness.RunDetectionMatrix().Cases), len(harness.Tools()))
		t0 := time.Now()
		serial := harness.RunDetectionMatrixWith(harness.MatrixOptions{
			Workers: 1, MaxSteps: *maxSteps, CaseTimeout: *cellTimeout,
		})
		serialDur := time.Since(t0)
		t0 = time.Now()
		par := harness.RunDetectionMatrixWith(harness.MatrixOptions{
			Workers: workers, MaxSteps: *maxSteps, CaseTimeout: *cellTimeout,
		})
		parDur := time.Since(t0)
		if serial.Render() != par.Render() {
			fmt.Fprintln(os.Stderr, "perfbench: serial and parallel matrices disagree")
			os.Exit(1)
		}
		speedup := float64(serialDur) / float64(parDur)
		fmt.Printf("  serial   (1 worker)   %v\n", serialDur.Round(time.Millisecond))
		fmt.Printf("  parallel (%d workers) %v  (%.2fx)\n", workers, parDur.Round(time.Millisecond), speedup)
		rep.Matrix = &matrixEntry{
			Cases:               len(par.Cases),
			Workers:             workers,
			SerialWallClockMs:   ms(serialDur),
			ParallelWallClockMs: ms(parDur),
			Speedup:             speedup,
		}
	}

	stats := sulong.CacheStats()
	rep.Cache = cacheEntry{Hits: stats.Hits, Misses: stats.Misses, HitRate: stats.HitRate(), Entries: stats.Entries}
	fmt.Printf("\nmodule cache: %d hits / %d misses (%.0f%% hit rate), %d entries\n",
		stats.Hits, stats.Misses, 100*stats.HitRate(), stats.Entries)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*jsonOut, append(data, '\n'), 0o644))
		fmt.Printf("report written to %s\n", *jsonOut)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}
