// Command perfbench reproduces the paper's performance evaluation:
// §4.2 start-up and warm-up (Fig. 15) and §4.3 peak performance (Fig. 16),
// plus pipeline-level measurements of this repository's own machinery: the
// corpus-matrix wall clock under the parallel evaluation driver and the
// content-addressed module cache's hit rate.
//
// Usage:
//
//	perfbench -startup                 # hello-world start-up per tool
//	perfbench -warmup [-bench meteor]  # Fig. 15 iterations/s over time
//	perfbench -peak [-bench all]       # Fig. 16 relative execution times
//	perfbench -peak -warmups 50 -samples 10 -full   # paper-sized runs
//	perfbench -matrix [-parallel N]    # corpus-matrix wall clock, serial vs parallel
//	perfbench -matrix -timeout 5s      # with a per-cell wall-clock deadline
//	perfbench ... -json out.json       # machine-readable report (cache stats included)
//	perfbench -throughput BENCH_PR10.json  # cold-vs-warm throughput for the
//	                                   # matrix/sweep/campaign drivers: one pass
//	                                   # with every process cache reset and the
//	                                   # code cache opted out, one pass warm,
//	                                   # with per-cell latency percentiles
//	perfbench -record BENCH_PR6.json   # the tiering benchmark protocol: startup,
//	                                   # per-second warm-up timelines (iterations
//	                                   # plus cumulative compile/OSR/deopt events)
//	                                   # for the interpreter, synchronous tier-2,
//	                                   # async tier-2, and async+OSR, and peak
//	                                   # rows for every managed ablation with the
//	                                   # compiler's bail-out and inline counters
//
// The recorded warm-up runs force a deliberately high tier-up threshold so
// compilation is *visible* in the timeline: events land across several
// one-second buckets instead of disappearing into bucket 1, and the
// time-to-peak column shows what background compilation and on-stack
// replacement buy during those seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	sulong "repro"
	"repro/internal/benchprog"
	"repro/internal/campaign"
	"repro/internal/harness"
)

// report is the machine-readable output of a perfbench invocation. Every
// section is optional (filled only when the matching mode ran); the cache
// section is always present.
type report struct {
	Startup []startupEntry `json:"startup,omitempty"`
	Peak    []peakEntry    `json:"peak,omitempty"`
	Matrix  *matrixEntry   `json:"matrix,omitempty"`
	// Caches reports every process-wide cache (pipeline module cache,
	// executable-code cache, engine pool) with key-sorted fields.
	Caches harness.CacheReport `json:"caches"`
}

type startupEntry struct {
	Tool   string  `json:"tool"`
	TimeMs float64 `json:"timeMs"`
}

type peakEntry struct {
	Bench    string             `json:"bench"`
	TimesMs  map[string]float64 `json:"timesMs"`
	Relative map[string]float64 `json:"relativeToClangO0"`
}

type matrixEntry struct {
	Cases               int     `json:"cases"`
	Workers             int     `json:"workers"`
	SerialWallClockMs   float64 `json:"serialWallClockMs"`
	ParallelWallClockMs float64 `json:"parallelWallClockMs"`
	Speedup             float64 `json:"speedup"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func main() {
	startup := flag.Bool("startup", false, "measure start-up time (§4.2)")
	warmup := flag.Bool("warmup", false, "measure warm-up behaviour (Fig. 15)")
	peak := flag.Bool("peak", false, "measure peak performance (Fig. 16)")
	matrix := flag.Bool("matrix", false, "measure corpus-matrix wall clock, serial vs parallel")
	benchName := flag.String("bench", "", "benchmark name (default: meteor for -warmup, all for -peak)")
	warmups := flag.Int("warmups", 10, "in-process warm-up iterations before sampling")
	samples := flag.Int("samples", 5, "timed iterations per configuration")
	seconds := flag.Float64("seconds", 10, "wall-clock duration of the warm-up experiment")
	full := flag.Bool("full", false, "use the paper-sized workloads (slower)")
	parallel := flag.Int("parallel", 0, "matrix worker count (0 = one per CPU)")
	cellTimeout := flag.Duration("timeout", 0, "per-cell wall-clock deadline for -matrix (0 = none)")
	maxSteps := flag.Int64("maxsteps", 0, "per-cell step budget for -matrix (0 = harness default)")
	jsonOut := flag.String("json", "", "write a machine-readable report to this file")
	record := flag.String("record", "", "record the tiering benchmark baseline to this file (BENCH_PR6.json protocol)")
	throughput := flag.String("throughput", "", "record cold-vs-warm driver throughput to this file (BENCH_PR10.json protocol)")
	flag.Parse()

	if *record != "" {
		recordBaseline(*record, *warmups, *samples)
		return
	}
	if *throughput != "" {
		recordThroughput(*throughput)
		return
	}

	if !*startup && !*warmup && !*peak && !*matrix {
		fmt.Fprintln(os.Stderr, "usage: perfbench -startup | -warmup | -peak | -matrix [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var rep report

	if *startup {
		results, err := harness.MeasureStartup(10)
		check(err)
		fmt.Println("Start-up time, hello world (average of 10 runs):")
		for _, r := range results {
			fmt.Printf("  %-14v %v\n", r.Tool, r.Time)
			rep.Startup = append(rep.Startup, startupEntry{Tool: r.Tool.String(), TimeMs: ms(r.Time)})
		}
	}

	if *warmup {
		name := *benchName
		if name == "" {
			name = "meteor"
		}
		b, err := benchprog.Get(name)
		check(err)
		arg := b.SmallArg
		if *full {
			arg = b.DefaultArg
		}
		fmt.Printf("Warm-up on %s (arg %s), %gs window, 1s buckets (Fig. 15):\n", name, arg, *seconds)
		cfgs := []harness.PerfConfig{harness.SafeSulongPerf, harness.ASanPerf, harness.ValgrindPerf}
		out, err := harness.MeasureWarmup(b, arg, time.Duration(*seconds*float64(time.Second)), time.Second, cfgs)
		check(err)
		for _, cfg := range cfgs {
			fmt.Printf("  %v:\n", cfg)
			for _, s := range out[cfg] {
				marker := ""
				if cfg == harness.SafeSulongPerf {
					marker = fmt.Sprintf("  (compiled ASTs: %d)", s.Compiled)
				}
				fmt.Printf("    second %2d: %4d iterations%s\n", s.Bucket+1, s.Iterations, marker)
			}
		}
	}

	if *peak {
		var benches []benchprog.Benchmark
		if *benchName == "" || *benchName == "all" {
			benches = benchprog.All()
		} else {
			b, err := benchprog.Get(*benchName)
			check(err)
			benches = []benchprog.Benchmark{b}
		}
		fmt.Printf("Peak performance relative to Clang -O0 (Fig. 16), %d warm-ups, %d samples:\n",
			*warmups, *samples)
		var rows []harness.PeakResult
		for _, b := range benches {
			arg := b.SmallArg
			if *full {
				arg = b.DefaultArg
			}
			row, err := harness.MeasurePeak(b, arg, *warmups, *samples, harness.PerfConfigs())
			check(err)
			rows = append(rows, row)
			note := ""
			if b.AllocHeavy {
				note = "   <- allocation-intensive (§4.3's binarytrees discussion)"
			}
			fmt.Printf("  %s done%s\n", b.Name, note)
		}
		fmt.Println()
		fmt.Print(harness.RenderPeak(rows, harness.PerfConfigs()))
		for _, row := range rows {
			pe := peakEntry{Bench: row.Bench, TimesMs: map[string]float64{}, Relative: map[string]float64{}}
			for _, cfg := range harness.PerfConfigs() {
				pe.TimesMs[cfg.String()] = ms(row.Times[cfg])
				pe.Relative[cfg.String()] = row.Relative(cfg)
			}
			rep.Peak = append(rep.Peak, pe)
		}
	}

	if *matrix {
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		// Warm the module cache off the clock, then time the matrix serial
		// vs parallel: with compilation amortized, the remaining cost is
		// execution, which scales with the worker count.
		fmt.Printf("Corpus-matrix wall clock (cache warm, %d cases x %d tools):\n",
			len(harness.RunDetectionMatrix().Cases), len(harness.Tools()))
		t0 := time.Now()
		serial := harness.RunDetectionMatrixWith(harness.MatrixOptions{
			Workers: 1, MaxSteps: *maxSteps, CaseTimeout: *cellTimeout,
		})
		serialDur := time.Since(t0)
		t0 = time.Now()
		par := harness.RunDetectionMatrixWith(harness.MatrixOptions{
			Workers: workers, MaxSteps: *maxSteps, CaseTimeout: *cellTimeout,
		})
		parDur := time.Since(t0)
		if serial.Render() != par.Render() {
			fmt.Fprintln(os.Stderr, "perfbench: serial and parallel matrices disagree")
			os.Exit(1)
		}
		speedup := float64(serialDur) / float64(parDur)
		fmt.Printf("  serial   (1 worker)   %v\n", serialDur.Round(time.Millisecond))
		fmt.Printf("  parallel (%d workers) %v  (%.2fx)\n", workers, parDur.Round(time.Millisecond), speedup)
		rep.Matrix = &matrixEntry{
			Cases:               len(par.Cases),
			Workers:             workers,
			SerialWallClockMs:   ms(serialDur),
			ParallelWallClockMs: ms(parDur),
			Speedup:             speedup,
		}
	}

	rep.Caches = harness.Caches()
	pc, cc, ep := rep.Caches.Pipeline, rep.Caches.CodeCache, rep.Caches.EnginePool
	fmt.Printf("\nmodule cache: %d hits / %d misses (%.0f%% hit rate), %d entries\n",
		pc.Hits, pc.Misses, 100*pc.HitRate, pc.Entries)
	fmt.Printf("code cache:   %d hits / %d misses, %d evictions, %d units (%d funcs)\n",
		cc.Hits, cc.Misses, cc.Evictions, cc.Units, cc.Funcs)
	fmt.Printf("engine pool:  %d hits / %d misses, %d idle\n", ep.Hits, ep.Misses, ep.Idle)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		check(os.WriteFile(*jsonOut, append(data, '\n'), 0o644))
		fmt.Printf("report written to %s\n", *jsonOut)
	}
}

// ---- the tiering benchmark protocol (-record) ----

// baselineReport is the committed BENCH_PR6.json schema: one startup row per
// tool, a per-configuration warm-up timeline (per-second iterations plus
// cumulative compile/OSR/deopt events), and a peak row per benchmark per
// managed ablation, with the compiler's own counters so a silent bail-out
// (which would make a "tier-2" row secretly interpreted) is visible in the
// record itself. It extends the PR 5 protocol; BENCH_PR5.json remains
// committed under its own schema.
type baselineReport struct {
	Schema     string          `json:"schema"`
	RecordedAt string          `json:"recorded_at"`
	Warmups    int             `json:"warmups"`
	Samples    int             `json:"samples"`
	Startup    []startupEntry  `json:"startup"`
	Warmup     []warmupCurve   `json:"warmup"`
	Benches    []baselineBench `json:"benches"`
	Summary    baselineSummary `json:"summary"`
}

// warmupCurve is one configuration's Fig. 15 timeline. TimeToPeakSec is the
// first one-second bucket whose iteration rate reaches 90% of the curve's
// best bucket — the warm-up cost in wall-clock seconds.
type warmupCurve struct {
	Config         string        `json:"config"`
	Tier1Threshold int64         `json:"tier1_threshold,omitempty"`
	OSRThreshold   int64         `json:"osr_threshold,omitempty"`
	Rows           []timelineRow `json:"rows"`
	PeakItersPerS  int           `json:"peak_iterations_per_sec"`
	TimeToPeakSec  int           `json:"time_to_peak_sec"`
}

// timelineRow is one second of a warm-up curve. The event counters are
// cumulative at bucket end, so a row whose Compiled exceeds the previous
// row's records compilation landing *in* that second.
type timelineRow struct {
	Second      int `json:"second"`
	Iterations  int `json:"iterations"`
	Compiled    int `json:"compiled"`
	OSRCompiled int `json:"osr_compiled"`
	OSREntries  int `json:"osr_entries"`
	Deopts      int `json:"deopts"`
}

type baselineBench struct {
	Bench              string        `json:"bench"`
	AllocHeavy         bool          `json:"alloc_heavy"`
	Rows               []baselineRow `json:"rows"`
	Tier2SpeedupVsBase float64       `json:"tier2_speedup_vs_baseline"`
}

type baselineRow struct {
	Config    string                  `json:"config"`
	TimeMs    float64                 `json:"time_ms"`
	VsClangO0 float64                 `json:"vs_clang_o0"`
	JIT       *harness.RunnerJITStats `json:"jit,omitempty"`
}

type baselineSummary struct {
	TargetSpeedup              float64 `json:"target_speedup"`
	ComputeBoundGeomeanSpeedup float64 `json:"compute_bound_geomean_speedup"`
	ComputeBoundMinSpeedup     float64 `json:"compute_bound_min_speedup"`
	MetTarget                  bool    `json:"met_target"`
	// Warm-up comparison under the forced-high tier-up threshold: seconds to
	// reach 90% of peak rate with synchronous tier-up vs async+OSR.
	TimeToPeakSyncSec     int  `json:"time_to_peak_sync_sec"`
	TimeToPeakAsyncOSRSec int  `json:"time_to_peak_async_osr_sec"`
	AsyncOSRWarmsUpFaster bool `json:"async_osr_warms_up_faster"`
}

// pr6WarmupThreshold is the deliberately high tier-up threshold for the
// recorded warm-up timelines. At the historical threshold of 25 every
// compilation lands inside the first one-second bucket and the timeline is
// flat — meteor's hot functions see thousands of calls per second, so even
// a few hundred calls cross almost immediately. At 50000 calls the entry
// compilations spread across the first several one-second buckets, so the
// curves actually show the difference between waiting for call counts
// (synchronous and plain async tier-up) and entering hot loops
// mid-iteration via OSR, whose back-edge threshold is independent of the
// call threshold.
const pr6WarmupThreshold = 50000

// pr6WarmupWindow bounds each warm-up timeline capture.
const pr6WarmupWindow = 6 * time.Second

// recordBaseline runs the full protocol and writes the report. The managed
// ablations are: tier-0 only (no JIT), the pre-tier-2 compiler (baseline),
// tier-2 with the inliner off, the full tier-2 peak layer with synchronous
// tier-up, background (async) tier-up, and async tier-up with on-stack
// replacement; Clang -O0 anchors the relative column.
func recordBaseline(path string, warmups, samples int) {
	// The protocol's floor: every hot function must cross the tier-1 compile
	// threshold (25 calls) during warm-up, or the "baseline"/"tier-2" rows
	// silently measure the interpreter. 30 warm-ups and 15 samples are the
	// recorded-baseline minimums; -warmups/-samples can only raise them.
	if warmups < 30 {
		warmups = 30
	}
	if samples < 15 {
		samples = 15
	}
	cfgs := []harness.PerfConfig{
		harness.ClangO0,
		harness.SafeSulongNoJIT,
		harness.SafeSulongBaseline,
		harness.SafeSulongNoInline,
		harness.SafeSulongPerf,
		harness.SafeSulongAsync,
		harness.SafeSulongAsyncOSR,
	}
	rep := baselineReport{
		Schema:     "sulong-bench/pr6",
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Warmups:    warmups,
		Samples:    samples,
	}

	fmt.Println("Recording tiering benchmark baseline...")
	fmt.Println("  start-up (hello world, average of 10 runs)")
	st, err := harness.MeasureStartup(10)
	check(err)
	for _, r := range st {
		rep.Startup = append(rep.Startup, startupEntry{Tool: r.Tool.String(), TimeMs: ms(r.Time)})
	}

	wb, err := benchprog.Get("meteor")
	check(err)
	warmupCfgs := []harness.PerfConfig{
		harness.ClangO0,
		harness.SafeSulongNoJIT,
		harness.SafeSulongPerf,
		harness.SafeSulongAsync,
		harness.SafeSulongAsyncOSR,
	}
	wopts := harness.RunnerOptions{Tier1Threshold: pr6WarmupThreshold}
	for _, cfg := range warmupCfgs {
		fmt.Printf("  warm-up timeline: %v (meteor, %v window)\n", cfg, pr6WarmupWindow)
		wu, err := harness.MeasureWarmupOpts(wb, wb.SmallArg, pr6WarmupWindow, time.Second,
			[]harness.PerfConfig{cfg}, wopts)
		check(err)
		rep.Warmup = append(rep.Warmup, makeCurve(cfg, wu[cfg]))
	}

	var rows []harness.PeakResult
	var speedups []float64
	minSpeedup := math.Inf(1)
	for _, b := range benchprog.All() {
		fmt.Printf("  peak: %s\n", b.Name)
		row, err := harness.MeasurePeak(b, b.SmallArg, warmups, samples, cfgs)
		check(err)
		rows = append(rows, row)
		bb := baselineBench{Bench: b.Name, AllocHeavy: b.AllocHeavy}
		for _, cfg := range cfgs {
			br := baselineRow{
				Config:    cfg.String(),
				TimeMs:    ms(row.Times[cfg]),
				VsClangO0: row.Relative(cfg),
			}
			if js, ok := row.JIT[cfg]; ok {
				js := js
				br.JIT = &js
			}
			bb.Rows = append(bb.Rows, br)
		}
		base := row.Times[harness.SafeSulongBaseline]
		tier2 := row.Times[harness.SafeSulongPerf]
		if tier2 > 0 {
			bb.Tier2SpeedupVsBase = float64(base) / float64(tier2)
		}
		if !b.AllocHeavy && bb.Tier2SpeedupVsBase > 0 {
			speedups = append(speedups, bb.Tier2SpeedupVsBase)
			if bb.Tier2SpeedupVsBase < minSpeedup {
				minSpeedup = bb.Tier2SpeedupVsBase
			}
		}
		rep.Benches = append(rep.Benches, bb)
	}

	logSum := 0.0
	for _, s := range speedups {
		logSum += math.Log(s)
	}
	geomean := 0.0
	if len(speedups) > 0 {
		geomean = math.Exp(logSum / float64(len(speedups)))
	}
	syncPeak := curveTimeToPeak(rep.Warmup, harness.SafeSulongPerf.String())
	osrPeak := curveTimeToPeak(rep.Warmup, harness.SafeSulongAsyncOSR.String())
	rep.Summary = baselineSummary{
		TargetSpeedup:              1.5,
		ComputeBoundGeomeanSpeedup: geomean,
		ComputeBoundMinSpeedup:     minSpeedup,
		MetTarget:                  geomean >= 1.5,
		TimeToPeakSyncSec:          syncPeak,
		TimeToPeakAsyncOSRSec:      osrPeak,
		AsyncOSRWarmsUpFaster:      osrPeak < syncPeak,
	}

	fmt.Println()
	fmt.Print(harness.RenderPeak(rows, cfgs))
	fmt.Printf("\ntier-2 vs baseline tier-1, compute-bound benchmarks: geomean %.2fx, min %.2fx (target 1.5x: %v)\n",
		geomean, minSpeedup, rep.Summary.MetTarget)
	fmt.Printf("time to 90%%-of-peak at tier-up threshold %d: sync %ds, async+OSR %ds\n",
		pr6WarmupThreshold, syncPeak, osrPeak)

	data, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	check(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Printf("baseline recorded to %s\n", path)
	if !rep.Summary.MetTarget {
		fmt.Fprintln(os.Stderr, "perfbench: tier-2 speedup target not met")
		os.Exit(1)
	}
}

// makeCurve converts one configuration's warm-up samples into the recorded
// timeline: per-second rows plus the 90%-of-peak warm-up time. The trailing
// sample covers a partial bucket (the capture window rarely ends on a bucket
// boundary), so it is kept in the rows but excluded from rate analysis.
func makeCurve(cfg harness.PerfConfig, samples []harness.WarmupSample) warmupCurve {
	c := warmupCurve{Config: cfg.String()}
	switch cfg {
	case harness.SafeSulongPerf, harness.SafeSulongAsync, harness.SafeSulongAsyncOSR:
		c.Tier1Threshold = pr6WarmupThreshold
	}
	if cfg == harness.SafeSulongAsyncOSR {
		c.OSRThreshold = sulong.DefaultOSRThreshold
	}
	for _, s := range samples {
		c.Rows = append(c.Rows, timelineRow{
			Second:      s.Bucket + 1,
			Iterations:  s.Iterations,
			Compiled:    s.Compiled,
			OSRCompiled: s.OSRCompiled,
			OSREntries:  s.OSREntries,
			Deopts:      s.Deopts,
		})
	}
	full := c.Rows
	if len(full) > 1 {
		full = full[:len(full)-1]
	}
	for _, r := range full {
		if r.Iterations > c.PeakItersPerS {
			c.PeakItersPerS = r.Iterations
		}
	}
	for _, r := range full {
		if r.Iterations*10 >= c.PeakItersPerS*9 {
			c.TimeToPeakSec = r.Second
			break
		}
	}
	return c
}

// ---- the compile-once/run-many throughput protocol (-throughput) ----

// throughputReport is the committed BENCH_PR10.json schema: cold-vs-warm
// rows for the drivers that re-run the corpus (the detection matrix plain
// and with the tier-1 compiler forced hot, the FailNth fault sweep) plus a
// fixed-seed 500-program campaign, and a summary holding the warm-cache
// speedup geomean against its target. "Cold" bypasses every process-wide
// cache — pipeline module cache, executable-code cache, engine pool — so
// each cell compiles from source and builds its engine from scratch, the
// compile-every-time execution model. "Warm" runs with the caches primed by
// one untimed pass, which is how every long-lived driver actually runs.
type throughputReport struct {
	Schema     string            `json:"schema"`
	RecordedAt string            `json:"recorded_at"`
	Workers    int               `json:"workers"`
	Rows       []throughputRow   `json:"rows"`
	Summary    throughputSummary `json:"summary"`
}

// throughputRow is one (driver, mode) measurement. Units are matrix/sweep
// cells or campaign programs; the cell-latency percentiles come from a
// separate single-worker pass whose inter-cell deltas are exact per-cell
// durations (omitted for the campaign, whose per-seed latency is already
// its throughput's reciprocal).
type throughputRow struct {
	Driver      string  `json:"driver"`
	Mode        string  `json:"mode"` // "cold" or "warm"
	Units       int     `json:"units"`
	WallClockMs float64 `json:"wall_clock_ms"`
	UnitsPerSec float64 `json:"units_per_sec"`
	P50CellMs   float64 `json:"p50_cell_ms,omitempty"`
	P99CellMs   float64 `json:"p99_cell_ms,omitempty"`
}

type throughputSummary struct {
	TargetWarmSpeedup          float64 `json:"target_warm_speedup"`
	MatrixGeomeanWarmSpeedup   float64 `json:"matrix_geomean_warm_speedup"`
	MetTarget                  bool    `json:"met_target"`
	CampaignProgramsPerSecCold float64 `json:"campaign_programs_per_sec_cold"`
	CampaignProgramsPerSecWarm float64 `json:"campaign_programs_per_sec_warm"`
}

// throughputCampaignSeed fixes the recorded campaign so cold and warm judge
// the identical 500 programs.
const throughputCampaignSeed = 0x10C0DE

// resetProcessCaches empties the pipeline module cache, the executable-code
// cache, and the engine pool: the next run pays full front-end, back-end,
// and engine-construction cost.
func resetProcessCaches() {
	sulong.ResetCache()
	sulong.ResetCodeCache()
}

// driverRun executes one driver pass: cold is the fully cold-compile
// baseline (module cache, code cache, and engine pool all bypassed — every
// cell compiles from source and builds its engine from scratch), w is the
// worker count, and lat (when non-nil) collects per-cell durations —
// callers pass it only with w == 1, where inter-progress deltas are exact.
// Returns the number of units completed.
type driverRun func(cold bool, w int, lat *[]time.Duration) int

func latProgress(lat *[]time.Duration) func(done, total int) {
	last := time.Now()
	return func(done, total int) {
		now := time.Now()
		*lat = append(*lat, now.Sub(last))
		last = now
	}
}

func percentileMs(lat []time.Duration, pct int) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * pct / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return ms(sorted[idx])
}

// measureDriver produces the cold and warm rows for one driver. The timed
// parallel pass gives throughput; an additional single-worker pass (same
// cache state) gives the latency percentiles.
func measureDriver(name string, workers int, withLat bool, run driverRun) (cold, warm throughputRow) {
	row := func(mode string, units int, d time.Duration, lat []time.Duration) throughputRow {
		r := throughputRow{
			Driver: name, Mode: mode, Units: units, WallClockMs: ms(d),
			UnitsPerSec: float64(units) / d.Seconds(),
		}
		if withLat {
			r.P50CellMs = percentileMs(lat, 50)
			r.P99CellMs = percentileMs(lat, 99)
		}
		return r
	}

	fmt.Printf("  %s: cold...", name)
	resetProcessCaches()
	t0 := time.Now()
	units := run(true, workers, nil)
	coldDur := time.Since(t0)
	var coldLat []time.Duration
	if withLat {
		resetProcessCaches()
		run(true, 1, &coldLat)
	}
	cold = row("cold", units, coldDur, coldLat)

	fmt.Printf(" warm...")
	resetProcessCaches()
	run(false, workers, nil) // untimed priming pass fills every cache
	t0 = time.Now()
	units = run(false, workers, nil)
	warmDur := time.Since(t0)
	var warmLat []time.Duration
	if withLat {
		run(false, 1, &warmLat)
	}
	warm = row("warm", units, warmDur, warmLat)
	fmt.Printf(" %.2fx (%v -> %v)\n", float64(coldDur)/float64(warmDur),
		coldDur.Round(time.Millisecond), warmDur.Round(time.Millisecond))
	return cold, warm
}

// recordThroughput runs the full cold-vs-warm protocol and writes
// BENCH_PR10.json. Exit status 1 when the warm-cache matrix speedup misses
// its 3x target.
func recordThroughput(path string) {
	workers := runtime.GOMAXPROCS(0)
	rep := throughputReport{
		Schema:     "sulong-bench/pr10",
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Workers:    workers,
	}
	fmt.Println("Recording compile-once/run-many throughput baseline...")

	matrixRun := func(jit bool) driverRun {
		return func(cold bool, w int, lat *[]time.Duration) int {
			opts := harness.MatrixOptions{Workers: w, NoCodeCache: cold, NoCache: cold}
			if jit {
				opts.JIT = true
				opts.JITThreshold = 1
			}
			if lat != nil {
				opts.Progress = latProgress(lat)
			}
			m := harness.RunDetectionMatrixWith(opts)
			return len(m.Cases) * len(harness.Tools())
		}
	}
	sweepRun := func(cold bool, w int, lat *[]time.Duration) int {
		opts := harness.SweepOptions{Workers: w, MaxNth: 2, NoCodeCache: cold, NoCache: cold}
		if lat != nil {
			opts.Progress = latProgress(lat)
		}
		return harness.FaultSweep(opts).Runs
	}
	campaignRun := func(cold bool, w int, lat *[]time.Duration) int {
		res, err := campaign.Run(campaign.Options{
			Seed: throughputCampaignSeed, Programs: 500, Workers: w,
			MinimizeBudget: -1, NoCodeCache: cold, NoCache: cold,
		})
		check(err)
		return res.Judged
	}

	var speedups []float64
	for _, d := range []struct {
		name    string
		withLat bool
		run     driverRun
	}{
		{"matrix", true, matrixRun(false)},
		{"matrix-jit", true, matrixRun(true)},
		{"faultsweep", true, sweepRun},
	} {
		cold, warm := measureDriver(d.name, workers, d.withLat, d.run)
		rep.Rows = append(rep.Rows, cold, warm)
		speedups = append(speedups, warm.UnitsPerSec/cold.UnitsPerSec)
	}
	// The campaign is measured single-pass per mode: its reuse wins come
	// from the per-program oracle runs (tier triples, fault schedules)
	// sharing one compiled artifact, not from re-running the whole campaign.
	fmt.Printf("  campaign-500: cold...")
	resetProcessCaches()
	t0 := time.Now()
	units := campaignRun(true, workers, nil)
	coldDur := time.Since(t0)
	coldRow := throughputRow{
		Driver: "campaign-500", Mode: "cold", Units: units,
		WallClockMs: ms(coldDur), UnitsPerSec: float64(units) / coldDur.Seconds(),
	}
	fmt.Printf(" warm...")
	resetProcessCaches()
	t0 = time.Now()
	units = campaignRun(false, workers, nil)
	warmDur := time.Since(t0)
	warmRow := throughputRow{
		Driver: "campaign-500", Mode: "warm", Units: units,
		WallClockMs: ms(warmDur), UnitsPerSec: float64(units) / warmDur.Seconds(),
	}
	fmt.Printf(" %.2fx (%v -> %v)\n", float64(coldDur)/float64(warmDur),
		coldDur.Round(time.Millisecond), warmDur.Round(time.Millisecond))
	rep.Rows = append(rep.Rows, coldRow, warmRow)

	logSum := 0.0
	for _, s := range speedups {
		logSum += math.Log(s)
	}
	geomean := math.Exp(logSum / float64(len(speedups)))
	rep.Summary = throughputSummary{
		TargetWarmSpeedup:          3.0,
		MatrixGeomeanWarmSpeedup:   geomean,
		MetTarget:                  geomean >= 3.0,
		CampaignProgramsPerSecCold: coldRow.UnitsPerSec,
		CampaignProgramsPerSecWarm: warmRow.UnitsPerSec,
	}

	fmt.Printf("\nwarm-cache matrix speedup: geomean %.2fx (target 3x: %v)\n", geomean, rep.Summary.MetTarget)
	fmt.Printf("campaign: %.1f programs/sec cold -> %.1f warm\n",
		coldRow.UnitsPerSec, warmRow.UnitsPerSec)
	data, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	check(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Printf("throughput baseline recorded to %s\n", path)
	if !rep.Summary.MetTarget {
		fmt.Fprintln(os.Stderr, "perfbench: warm-cache throughput target not met")
		os.Exit(1)
	}
}

// curveTimeToPeak looks up a configuration's recorded warm-up time by name.
func curveTimeToPeak(curves []warmupCurve, config string) int {
	for _, c := range curves {
		if c.Config == config {
			return c.TimeToPeakSec
		}
	}
	return 0
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}
