// Command bugbench reproduces the paper's §4.1 evaluation: it runs the
// 68-bug corpus under Safe Sulong, ASan (-O0/-O3), Valgrind (-O0/-O3), and
// the bare native machine, then prints Tables 1 and 2, the tool comparison,
// and the list of bugs only Safe Sulong finds.
//
// The corpus×tool matrix fans out across a worker pool (one worker per CPU
// by default); every translation unit is compiled once through the staged
// pipeline's content-addressed module cache and shared by all workers.
// Results are deterministic: any -parallel value produces byte-identical
// output.
//
// Usage:
//
//	bugbench                 # full detection matrix
//	bugbench -parallel 1     # force the serial driver
//	bugbench -timeout 5s     # per-cell wall-clock deadline
//	bugbench -maxsteps N     # per-cell step budget (deterministic)
//	bugbench -maxheap N      # per-cell guest heap budget in bytes
//	bugbench -failnth N      # fail the N-th guest heap allocation
//	bugbench -failprob P -faultseed S  # seeded random allocation failures
//	bugbench -retries N      # retry cells that die with internal errors
//	bugbench -jit -jitthreshold 1 -jitasync -osr -osrthreshold 1
//	                         # force tiered SafeSulong cells (tier-parity check)
//	bugbench -faultsweep     # FailNth=1..k sweep asserting engine survival
//	bugbench -json out.json  # also emit a machine-readable report
//	bugbench -casestudies    # only the Figs. 10-14 case studies
//	bugbench -case NAME      # one corpus case, all tools, with reports
//	bugbench -list           # corpus inventory with ground truth
//
// A case that exhausts its step budget renders as a "timeout" cell, one
// whose stack or globals exhaust -maxheap as an "oom" cell, and one whose
// every retry dies with an internal engine error as a "quarantined" cell;
// the rest of the matrix completes normally in each instance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	sulong "repro"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/harness"
)

// matrixSchemaVersion identifies the -json report shape. Bump it whenever a
// field is added, removed, or changes meaning, so downstream consumers can
// reject reports they do not understand. Version 2 added categories.
const matrixSchemaVersion = 2

// matrixReport is the machine-readable form of a bugbench run.
type matrixReport struct {
	SchemaVersion int            `json:"schemaVersion"`
	Cases         int            `json:"cases"`
	Workers       int            `json:"workers"`
	WallClockMs   float64        `json:"wallClockMs"`
	Totals        map[string]int `json:"totals"`
	// Categories counts the bugs Safe Sulong detected per ground-truth
	// category (Table 1 plus the beyond-the-paper type-confusion row).
	// Maps marshal key-sorted, so the report is byte-identical at any
	// -parallel worker count.
	Categories  map[string]int    `json:"categories"`
	MissedBoth  []string          `json:"foundOnlyBySafeSulong"`
	Timeouts    []string          `json:"timeouts,omitempty"`
	OOMs        []string          `json:"ooms,omitempty"`
	Quarantined []string          `json:"quarantined,omitempty"`
	FaultPlan   string            `json:"faultPlan,omitempty"`
	Cache       sulongCacheReport `json:"cache"`
	// Diagnostics carries every cell's structured report (kind, message,
	// tool/tier provenance, access/alloc/free backtraces) in deterministic
	// (case, tool) order — byte-identical at any -parallel worker count.
	Diagnostics []harness.CellDiagnostic `json:"diagnostics"`
}

type sulongCacheReport struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hitRate"`
	Entries int     `json:"entries"`
}

func cacheReport() sulongCacheReport {
	s := sulong.CacheStats()
	return sulongCacheReport{Hits: s.Hits, Misses: s.Misses, HitRate: s.HitRate(), Entries: s.Entries}
}

func main() {
	caseStudies := flag.Bool("casestudies", false, "run only the paper's case studies (Figs. 10-14)")
	oneCase := flag.String("case", "", "run a single corpus case by name")
	list := flag.Bool("list", false, "list corpus cases with ground truth")
	parallel := flag.Int("parallel", 0, "matrix worker count (0 = one per CPU, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock deadline (0 = none)")
	maxSteps := flag.Int64("maxsteps", 0, "per-cell step budget (0 = harness default, <0 = engine default)")
	maxHeap := flag.Int64("maxheap", 0, "per-cell guest heap budget in bytes (0 = none)")
	maxAlloc := flag.Int64("maxalloc", 0, "per-cell single-allocation cap in bytes (0 = engine default)")
	failNth := flag.Int64("failnth", 0, "fail the N-th guest heap allocation in every cell (0 = off)")
	failProb := flag.Float64("failprob", 0, "fail each guest heap allocation with this probability (0 = off)")
	faultSeed := flag.Int64("faultseed", 0, "PRNG seed for -failprob (deterministic per cell)")
	retries := flag.Int("retries", 0, "retry cells that die with internal engine errors this many times")
	useJIT := flag.Bool("jit", false, "run SafeSulong cells with the tier-1 compiler enabled")
	jitThreshold := flag.Int64("jitthreshold", 0, "call count that triggers tier-up (0 = engine default, implies -jit)")
	jitAsync := flag.Bool("jitasync", false, "background tier-up for SafeSulong cells (implies -jit)")
	osr := flag.Bool("osr", false, "on-stack replacement for SafeSulong cells (implies -jit)")
	osrThreshold := flag.Int64("osrthreshold", 0, "back-edge count that triggers OSR (0 = library default, implies -jit -osr)")
	faultSweep := flag.Bool("faultsweep", false, "run the FailNth=1..k allocation-failure sweep instead of the matrix")
	sweepMax := flag.Int("sweepmax", 3, "with -faultsweep, sweep FailNth from 1 to this value")
	jsonOut := flag.String("json", "", "write a machine-readable report to this file")
	flag.Parse()

	plan := fault.Plan{Seed: *faultSeed, FailNth: *failNth, FailProb: *failProb}
	jit := *useJIT || *jitThreshold > 0 || *jitAsync || *osr || *osrThreshold > 0
	budget := harness.CaseBudget{
		MaxSteps:      *maxSteps,
		Timeout:       *timeout,
		MaxHeapBytes:  *maxHeap,
		MaxAllocBytes: *maxAlloc,
		FaultPlan:     plan,
		MaxRetries:    *retries,
		JIT:           jit,
		JITThreshold:  *jitThreshold,
		JITAsync:      *jitAsync,
		OSR:           *osr || *osrThreshold > 0,
		OSRThreshold:  *osrThreshold,
	}

	switch {
	case *list:
		for _, c := range corpus.All() {
			extra := ""
			if c.ASanBlindSpot {
				extra = "  [missed by ASan+Valgrind]"
			}
			if c.OptimizedAwayAtO3 {
				extra += "  [deleted at -O3]"
			}
			fmt.Printf("%-28s %-16s %-5s %-9s %-9s%s\n",
				c.Name, c.Category, c.Access, c.Direction, c.Mem, extra)
		}
	case *faultSweep:
		res := harness.FaultSweep(harness.SweepOptions{
			MaxNth:       *sweepMax,
			Workers:      *parallel,
			MaxSteps:     *maxSteps,
			MaxHeapBytes: *maxHeap,
		})
		fmt.Print(res.Render())
		if *jsonOut != "" {
			writeJSON(*jsonOut, res)
		}
		if !res.OK() {
			os.Exit(1)
		}
	case *caseStudies:
		fmt.Print(harness.CaseStudiesWith(budget))
	case *oneCase != "":
		c, ok := corpus.Get(*oneCase)
		if !ok {
			fmt.Fprintf(os.Stderr, "bugbench: no case %q (try -list)\n", *oneCase)
			os.Exit(2)
		}
		fmt.Printf("case %s (%s, %s %s, %s memory)\n\n%s\n\n",
			c.Name, c.Category, c.Access, c.Direction, c.Mem, c.Source)
		for _, tool := range harness.Tools() {
			cell := harness.RunCaseWith(c, tool, budget)
			if cell.Diag != nil {
				// Render the full diagnostic: message plus the access /
				// allocation-site / free-site backtraces (ASan-style).
				fmt.Printf("  %-14s %-9s %s\n", tool, cell.Status(),
					indentFollowing(cell.Diag.Render(), "  "))
			} else {
				fmt.Printf("  %-14s %-9s %s\n", tool, cell.Status(), cell.Report)
			}
		}
	default:
		start := time.Now()
		m := harness.RunDetectionMatrixWith(harness.MatrixOptions{
			Workers:       *parallel,
			MaxSteps:      *maxSteps,
			CaseTimeout:   *timeout,
			MaxHeapBytes:  *maxHeap,
			MaxAllocBytes: *maxAlloc,
			FaultPlan:     plan,
			MaxRetries:    *retries,
			JIT:           budget.JIT,
			JITThreshold:  budget.JITThreshold,
			JITAsync:      budget.JITAsync,
			OSR:           budget.OSR,
			OSRThreshold:  budget.OSRThreshold,
		})
		elapsed := time.Since(start)
		fmt.Print(m.Render())
		stats := sulong.CacheStats()
		fmt.Printf("\nmatrix wall clock %v (workers=%d), module cache %d hits / %d misses (%.0f%% hit rate)\n",
			elapsed.Round(time.Millisecond), *parallel, stats.Hits, stats.Misses, 100*stats.HitRate())
		if *jsonOut != "" {
			rep := matrixReport{
				SchemaVersion: matrixSchemaVersion,
				Cases:         len(m.Cases),
				Workers:       *parallel,
				WallClockMs:   float64(elapsed.Microseconds()) / 1000,
				Totals:        map[string]int{},
				Categories:    map[string]int{},
				MissedBoth:    m.MissedByBoth(),
				Timeouts:      m.Timeouts(),
				OOMs:          m.OOMs(),
				Quarantined:   m.Quarantined,
				Cache:         cacheReport(),
				Diagnostics:   m.Diagnostics(),
			}
			if plan.Enabled() {
				rep.FaultPlan = plan.String()
			}
			for _, tool := range harness.Tools() {
				rep.Totals[tool.String()] = m.Totals[tool]
			}
			for cat, n := range m.Table1() {
				rep.Categories[cat.String()] = n
			}
			writeJSON(*jsonOut, rep)
		}
	}
}

// indentFollowing indents every line after the first by extra spaces, so a
// multi-line backtrace stays aligned under its table row.
func indentFollowing(s, extra string) string {
	return strings.ReplaceAll(s, "\n", "\n                           "+extra)
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bugbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bugbench:", err)
		os.Exit(1)
	}
}
