// Command bugbench reproduces the paper's §4.1 evaluation: it runs the
// 68-bug corpus under Safe Sulong, ASan (-O0/-O3), Valgrind (-O0/-O3), and
// the bare native machine, then prints Tables 1 and 2, the tool comparison,
// and the list of bugs only Safe Sulong finds.
//
// Usage:
//
//	bugbench                 # full detection matrix
//	bugbench -casestudies    # only the Figs. 10-14 case studies
//	bugbench -case NAME      # one corpus case, all tools, with reports
//	bugbench -list           # corpus inventory with ground truth
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/harness"
)

func main() {
	caseStudies := flag.Bool("casestudies", false, "run only the paper's case studies (Figs. 10-14)")
	oneCase := flag.String("case", "", "run a single corpus case by name")
	list := flag.Bool("list", false, "list corpus cases with ground truth")
	flag.Parse()

	switch {
	case *list:
		for _, c := range corpus.All() {
			extra := ""
			if c.ASanBlindSpot {
				extra = "  [missed by ASan+Valgrind]"
			}
			if c.OptimizedAwayAtO3 {
				extra += "  [deleted at -O3]"
			}
			fmt.Printf("%-28s %-16s %-5s %-9s %-9s%s\n",
				c.Name, c.Category, c.Access, c.Direction, c.Mem, extra)
		}
	case *caseStudies:
		fmt.Print(harness.CaseStudies())
	case *oneCase != "":
		found := false
		for _, c := range corpus.All() {
			if c.Name != *oneCase {
				continue
			}
			found = true
			fmt.Printf("case %s (%s, %s %s, %s memory)\n\n%s\n\n",
				c.Name, c.Category, c.Access, c.Direction, c.Mem, c.Source)
			for _, tool := range harness.Tools() {
				cell := harness.RunCase(c, tool)
				status := "missed"
				if cell.Detected {
					status = "DETECTED"
				} else if cell.Crashed {
					status = "crashed"
				}
				fmt.Printf("  %-14s %-9s %s\n", tool, status, cell.Report)
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "bugbench: no case %q (try -list)\n", *oneCase)
			os.Exit(2)
		}
	default:
		m := harness.RunDetectionMatrix()
		fmt.Print(m.Render())
	}
}
