// Command fuzzbench runs a crash-resilient differential fuzzing campaign:
// seeded program generation, three oracles per program (tier parity,
// fault-schedule parity, cross-tool blind spots), supervised workers, an
// append-only checkpoint journal, and automatic delta-debugging of every
// confirmed finding into a corpus-shaped case.
//
// Usage:
//
//	fuzzbench -seed 0xC0FFEE -programs 10000           # fresh campaign
//	fuzzbench ... -journal camp.jsonl                  # checkpoint as you go
//	fuzzbench ... -journal camp.jsonl -resume          # continue after any crash
//	fuzzbench ... -out finds/                          # write intake files per find
//	fuzzbench ... -maxnth 3                            # deeper fault schedules
//	fuzzbench ... -mutate 0                            # grammar only, no corpus mutants
//	fuzzbench ... -json report.json                    # machine-readable result
//
// The campaign is deterministic: program i is a pure function of
// (-seed, i), records are journaled in index order, and a campaign killed
// at any point — power loss included — resumes from its journal to the
// byte-identical journal and result an uninterrupted run would have
// produced.
//
// Exit status: 0 when the campaign completes (tool blind spots are results,
// not defects), 1 when it finds hard engine defects (tier or fault
// divergences, engine panics) or cannot run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/harness"
)

// fuzzSchemaVersion identifies the -json report shape.
const fuzzSchemaVersion = 1

type fuzzReport struct {
	SchemaVersion int     `json:"schemaVersion"`
	Seed          uint64  `json:"seed"`
	WallClockMs   float64 `json:"wallClockMs"`
	*campaign.Result
	HardFindings int `json:"hardFindings"`
	// Caches reports process-wide cache effectiveness (pipeline module
	// cache, executable-code cache, engine pool), key-sorted for stable
	// diffing across runs.
	Caches harness.CacheReport `json:"caches"`
}

func main() {
	seed := flag.Uint64("seed", 1, "campaign root seed (program i derives from it)")
	programs := flag.Int("programs", 1000, "number of programs to judge")
	workers := flag.Int("workers", 0, "supervised worker pool size (0 = GOMAXPROCS)")
	maxNth := flag.Int64("maxnth", 2, "sweep fault schedules FailNth=1..N (negative disables)")
	mutate := flag.Int("mutate", 4, "every k'th program mutates a corpus case (negative disables)")
	maxSteps := flag.Int64("maxsteps", 0, "per-run step budget (0 = campaign default)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock guard; hits are quarantined, never judged")
	journal := flag.String("journal", "", "append-only checkpoint file")
	resume := flag.Bool("resume", false, "resume an interrupted campaign from -journal")
	outDir := flag.String("out", "", "directory for per-finding intake files")
	minBudget := flag.Int("minimize", 0, "delta-debugging budget in oracle re-runs per finding (0 = default, negative disables)")
	jsonPath := flag.String("json", "", "also write a machine-readable report to this file")
	quiet := flag.Bool("q", false, "suppress the progress line")
	flag.Parse()

	opts := campaign.Options{
		Seed:           *seed,
		Programs:       *programs,
		Workers:        *workers,
		MaxNth:         *maxNth,
		MutateEvery:    *mutate,
		MaxSteps:       *maxSteps,
		Timeout:        *timeout,
		Journal:        *journal,
		Resume:         *resume,
		OutDir:         *outDir,
		MinimizeBudget: *minBudget,
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			// One line, updated in place; sparse enough not to drown logs
			// when stderr is a file.
			if done == total || done%25 == 0 {
				fmt.Fprintf(os.Stderr, "\r%d/%d programs judged", done, total)
			}
		}
	}

	start := time.Now()
	res, err := campaign.Run(opts)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzzbench:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Print(res.Summary())
	fmt.Printf("wall clock: %.1fs\n", elapsed.Seconds())

	if *jsonPath != "" {
		report := fuzzReport{
			SchemaVersion: fuzzSchemaVersion,
			Seed:          *seed,
			WallClockMs:   float64(elapsed.Microseconds()) / 1e3,
			Result:        res,
			HardFindings:  len(res.Hard()),
			Caches:        harness.Caches(),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuzzbench: encode report:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fuzzbench: write report:", err)
			os.Exit(1)
		}
	}

	if hard := res.Hard(); len(hard) > 0 {
		fmt.Fprintf(os.Stderr, "fuzzbench: %d hard engine defect(s) found\n", len(hard))
		os.Exit(1)
	}
}
