package sulong_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	sulong "repro"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// engines under test for the concurrency suite.
var allEngines = []sulong.Engine{
	sulong.EngineSafeSulong, sulong.EngineNative, sulong.EngineASan, sulong.EngineMemcheck,
}

// TestConcurrentRunAllEngines is the -race audit that compiled modules are
// safely shareable: N goroutines run a mix of corpus programs across all
// four engines simultaneously, all of them executing cache-shared modules,
// and every outcome must match a serial reference run.
func TestConcurrentRunAllEngines(t *testing.T) {
	cases := corpus.All()[:8]

	type key struct {
		caseIdx int
		eng     sulong.Engine
	}
	runOne := func(c corpus.Case, eng sulong.Engine) (string, error) {
		cfg := sulong.Config{Engine: eng, Args: c.Args, MaxSteps: 20_000_000, JIT: eng == sulong.EngineSafeSulong}
		if c.Stdin != "" {
			cfg.Stdin = strings.NewReader(c.Stdin)
		}
		res, err := sulong.Run(c.Source, cfg)
		if err != nil {
			return "", err
		}
		switch {
		case res.Bug != nil:
			return "bug: " + res.Bug.Error(), nil
		case res.Fault != nil:
			return "fault: " + res.Fault.Error(), nil
		default:
			return "ok: " + res.Stdout, nil
		}
	}

	// Serial reference.
	ref := map[key]string{}
	for i, c := range cases {
		for _, eng := range allEngines {
			out, err := runOne(c, eng)
			if err != nil {
				t.Fatalf("%s under %v: %v", c.Name, eng, err)
			}
			ref[key{i, eng}] = out
		}
	}

	// Concurrent re-run: every (case, engine) pair twice, all goroutines at
	// once, over the warm shared cache.
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		for i := range cases {
			for _, eng := range allEngines {
				wg.Add(1)
				go func(i int, eng sulong.Engine) {
					defer wg.Done()
					out, err := runOne(cases[i], eng)
					if err != nil {
						t.Errorf("%s under %v (parallel): %v", cases[i].Name, eng, err)
						return
					}
					if want := ref[key{i, eng}]; out != want {
						t.Errorf("%s under %v diverged:\n got %q\nwant %q", cases[i].Name, eng, out, want)
					}
				}(i, eng)
			}
		}
	}
	wg.Wait()
}

// TestCacheHitNotMutated asserts that a cache hit returns a module
// bit-identical to the cold compile even after every engine has executed
// it — i.e. no run mutates the shared artifact.
func TestCacheHitNotMutated(t *testing.T) {
	src := corpus.All()[0].Source
	sulong.ResetCache()

	snapshots := map[sulong.Engine]string{}
	mods := map[sulong.Engine]*ir.Module{}
	for _, eng := range allEngines {
		mod, err := sulong.CompileFor(src, sulong.Config{Engine: eng, OptLevel: 3})
		if err != nil {
			t.Fatal(err)
		}
		snapshots[eng] = ir.Print(mod)
		mods[eng] = mod
	}
	before := sulong.CacheStats()

	// Exercise every engine against the shared modules, repeatedly, with
	// the managed engine's JIT on.
	c := corpus.All()[0]
	for round := 0; round < 2; round++ {
		for _, eng := range allEngines {
			cfg := sulong.Config{Engine: eng, OptLevel: 3, Args: c.Args, MaxSteps: 20_000_000, JIT: eng == sulong.EngineSafeSulong}
			if _, err := sulong.Run(src, cfg); err != nil {
				t.Fatalf("%v: %v", eng, err)
			}
		}
	}

	after := sulong.CacheStats()
	if after.Hits <= before.Hits {
		t.Errorf("expected cache hits during re-runs: before %+v after %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Errorf("re-runs must not miss: before %+v after %+v", before, after)
	}
	for _, eng := range allEngines {
		mod2, err := sulong.CompileFor(src, sulong.Config{Engine: eng, OptLevel: 3})
		if err != nil {
			t.Fatal(err)
		}
		if mod2 != mods[eng] {
			t.Errorf("%v: warm compile returned a different module object", eng)
		}
		if got := ir.Print(mod2); got != snapshots[eng] {
			t.Errorf("%v: cached module was mutated by execution", eng)
		}
	}
}

// TestMatrixSerialParallelIdentical is the determinism acceptance check:
// the rendered matrix over a corpus slice must be byte-identical for
// workers 1 and 4 and across cold/warm caches.
func TestMatrixSerialParallelIdentical(t *testing.T) {
	cases := corpus.All()[:12]

	sulong.ResetCache()
	serialCold := harness.RunDetectionMatrixWith(harness.MatrixOptions{Workers: 1, Cases: cases}).Render()
	serialWarm := harness.RunDetectionMatrixWith(harness.MatrixOptions{Workers: 1, Cases: cases}).Render()
	parallel4 := harness.RunDetectionMatrixWith(harness.MatrixOptions{Workers: 4, Cases: cases}).Render()
	sulong.ResetCache()
	parallelCold := harness.RunDetectionMatrixWith(harness.MatrixOptions{Workers: 4, Cases: cases}).Render()

	if serialCold != serialWarm {
		t.Errorf("cold vs warm cache changed results:\n%s\n---\n%s", serialCold, serialWarm)
	}
	if serialCold != parallel4 {
		t.Errorf("serial vs parallel changed results:\n%s\n---\n%s", serialCold, parallel4)
	}
	if serialCold != parallelCold {
		t.Errorf("parallel cold-cache run changed results:\n%s\n---\n%s", serialCold, parallelCold)
	}
}

// TestStringersGuardUnknownValues covers the out-of-range enum guards:
// RunModule admits unknown engines, so the stringers must not panic.
func TestStringersGuardUnknownValues(t *testing.T) {
	for _, s := range []fmt.Stringer{
		sulong.Engine(99), sulong.Engine(-1),
		harness.Tool(99), harness.Tool(-2),
		harness.PerfConfig(42), harness.PerfConfig(-1),
		pipeline.Flavor(7), pipeline.Flavor(-3),
	} {
		got := s.String()
		if got == "" {
			t.Errorf("%T: empty String() for out-of-range value", s)
		}
	}
	// Known values are unchanged, and unknown ones identify themselves.
	if sulong.EngineASan.String() != "ASan" {
		t.Errorf("EngineASan.String() = %q", sulong.EngineASan.String())
	}
	if harness.PerfConfig(42).String() != "PerfConfig(42)" {
		t.Errorf("PerfConfig(42).String() = %q", harness.PerfConfig(42).String())
	}
	if sulong.Engine(99).String() != "Engine(99)" {
		t.Errorf("Engine(99).String() = %q", sulong.Engine(99).String())
	}
}

// TestMatrixProgress checks the progress callback is serialized and
// complete.
func TestMatrixProgress(t *testing.T) {
	cases := corpus.All()[:3]
	var got []int
	harness.RunDetectionMatrixWith(harness.MatrixOptions{
		Workers: 4,
		Cases:   cases,
		Tools:   []harness.Tool{harness.SafeSulong, harness.NativeO0},
		Progress: func(done, total int) {
			if total != len(cases)*2 {
				t.Errorf("total = %d, want %d", total, len(cases)*2)
			}
			got = append(got, done)
		},
	})
	if len(got) != len(cases)*2 {
		t.Fatalf("progress called %d times, want %d", len(got), len(cases)*2)
	}
	for i, d := range got {
		if d != i+1 {
			t.Fatalf("progress out of order: %v", got)
		}
	}
}
