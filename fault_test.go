package sulong_test

import (
	"fmt"
	"strings"
	"testing"

	sulong "repro"
	"repro/internal/fault"
)

// faultConfigs enumerates every execution engine (the managed engine in both
// tiers, plus the three native-machine variants) so libc semantics can be
// asserted differentially. The returned label names the engine in failures.
func faultConfigs() []struct {
	label string
	cfg   sulong.Config
} {
	return []struct {
		label string
		cfg   sulong.Config
	}{
		{"safe/tier-0", sulong.Config{Engine: sulong.EngineSafeSulong}},
		{"safe/tier-1", sulong.Config{Engine: sulong.EngineSafeSulong, JIT: true, JITThreshold: 1}},
		{"native", sulong.Config{Engine: sulong.EngineNative}},
		{"asan", sulong.Config{Engine: sulong.EngineASan}},
		{"memcheck", sulong.Config{Engine: sulong.EngineMemcheck}},
	}
}

// runAllEngines runs src under every engine and requires identical stdout and
// exit codes with no bug, fault, or run error — the differential oracle for
// libc allocator semantics.
func runAllEngines(t *testing.T, name, src string, mut func(*sulong.Config)) {
	t.Helper()
	var wantOut string
	var wantCode int
	for i, ec := range faultConfigs() {
		cfg := ec.cfg
		if mut != nil {
			mut(&cfg)
		}
		res, err := sulong.Run(src, cfg)
		if err != nil {
			t.Fatalf("%s: %s: %v", name, ec.label, err)
		}
		if res.Bug != nil || res.Fault != nil {
			t.Fatalf("%s: %s: unexpected bug/fault: %v %v", name, ec.label, res.Bug, res.Fault)
		}
		if i == 0 {
			wantOut, wantCode = res.Stdout, res.ExitCode
			continue
		}
		if res.Stdout != wantOut || res.ExitCode != wantCode {
			t.Errorf("%s: %s diverges: stdout %q exit %d, want %q exit %d",
				name, ec.label, res.Stdout, res.ExitCode, wantOut, wantCode)
		}
	}
}

// TestCallocOverflowReturnsNull is the regression test for the calloc
// count*size multiplication overflow: C11 7.22.3.2 requires NULL, not a
// short allocation that a later memset would overflow. Every engine (both
// managed tiers and both libcs) must agree.
func TestCallocOverflowReturnsNull(t *testing.T) {
	src := `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    /* 2^62 * 8 wraps a 64-bit size_t; a naive n*sz yields 0. */
    char *p = calloc((size_t)1 << 62, 8);
    if (p) { printf("got %p\n", (void*)p); free(p); return 1; }
    printf("overflow -> NULL\n");
    /* A sane calloc must still work afterwards. */
    int *q = calloc(4, sizeof(int));
    if (!q) { printf("small calloc failed\n"); return 2; }
    printf("%d %d\n", q[0], q[3]);
    free(q);
    return 0;
}`
	runAllEngines(t, "calloc-overflow", src, nil)
}

// TestCallocOverflowCountsAsAttempt pins the FailNth coordinate system: a
// calloc denied for overflow still counts as one allocation attempt, so an
// injected schedule lands on the same allocation in every engine.
func TestCallocOverflowCountsAsAttempt(t *testing.T) {
	src := `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    char *a = calloc((size_t)1 << 62, 8); /* attempt 1: overflow -> NULL */
    char *b = malloc(8);                  /* attempt 2: injected -> NULL */
    char *c = malloc(8);                  /* attempt 3: succeeds */
    printf("%d %d %d\n", a == NULL, b == NULL, c == NULL);
    free(c);
    return 0;
}`
	runAllEngines(t, "calloc-overflow-attempt", src, func(cfg *sulong.Config) {
		cfg.FaultPlan = fault.Plan{FailNth: 2}
	})
	// And assert the expected pattern explicitly on the managed engine.
	res, err := sulong.Run(src, sulong.Config{
		Engine: sulong.EngineSafeSulong, FaultPlan: fault.Plan{FailNth: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Stdout, "1 1 0\n"; got != want {
		t.Fatalf("attempt numbering: stdout %q, want %q", got, want)
	}
	if res.Stats.InjectedFaults != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", res.Stats.InjectedFaults)
	}
	if res.Stats.DeniedAllocs != 2 { // overflow denial + injected denial
		t.Fatalf("DeniedAllocs = %d, want 2", res.Stats.DeniedAllocs)
	}
}

// TestMallocZeroReallocZeroSemantics pins the glibc behavior documented in
// DESIGN.md §10: malloc(0) returns a unique non-NULL zero-size object,
// realloc(p, 0) frees p and returns NULL, and realloc(NULL, n) is malloc(n).
// All engines must agree byte-for-byte.
func TestMallocZeroReallocZeroSemantics(t *testing.T) {
	src := `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    char *a = malloc(0);
    char *b = malloc(0);
    printf("m0 nonnull=%d distinct=%d\n", a != NULL && b != NULL, a != b);
    free(a);
    printf("r0 null=%d\n", realloc(b, 0) == NULL); /* frees b */
    char *c = realloc(NULL, 16);                   /* == malloc(16) */
    printf("rN nonnull=%d\n", c != NULL);
    c[15] = 'x';
    char *d = realloc(c, 32); /* grow preserves contents */
    printf("grow nonnull=%d kept=%d\n", d != NULL, d[15] == 'x');
    free(d);
    return 0;
}`
	runAllEngines(t, "malloc0-realloc0", src, nil)
}

// TestReallocFailureKeepsOldBlock pins C11 7.22.3.5: when realloc cannot
// grow a block, it returns NULL and the old block is untouched — under an
// injected failure every engine must keep the original bytes readable.
func TestReallocFailureKeepsOldBlock(t *testing.T) {
	src := `#include <stdlib.h>
#include <stdio.h>
#include <string.h>
int main(void) {
    char *p = malloc(8);           /* attempt 1: succeeds */
    if (!p) return 2;
    strcpy(p, "alive");
    char *q = realloc(p, 1 << 20); /* attempt 2: injected -> NULL */
    printf("failed=%d old=%s\n", q == NULL, p);
    free(p);
    return 0;
}`
	runAllEngines(t, "realloc-failure", src, func(cfg *sulong.Config) {
		cfg.FaultPlan = fault.Plan{FailNth: 2}
	})
	res, err := sulong.Run(src, sulong.Config{
		Engine: sulong.EngineSafeSulong, FaultPlan: fault.Plan{FailNth: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Stdout, "failed=1 old=alive\n"; got != want {
		t.Fatalf("stdout %q, want %q", got, want)
	}
}

// TestHeapBudgetSoftExhaustion bounds the guest heap and requires malloc to
// fail softly (NULL) once the budget is reached, identically everywhere.
func TestHeapBudgetSoftExhaustion(t *testing.T) {
	// All printing happens after the heap is drained: the managed engine's
	// printf is guest C with its own stack frames, and the budget bounds
	// *total* guest memory, so printing while the heap sits at the cap would
	// (correctly) exhaust the stack.
	src := `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int ok = 0, failed = 0;
    int i;
    void *blocks[64];
    for (i = 0; i < 64; i++) {
        blocks[i] = malloc(1024);
        if (blocks[i]) ok++; else failed++;
    }
    for (i = 0; i < 64; i++) free(blocks[i]);
    void *again = malloc(1024); /* budget freed up again */
    int reusable = again != NULL;
    free(again);
    printf("ok=%d failed=%d\n", ok, failed);
    printf("after-free nonnull=%d\n", reusable);
    return 0;
}`
	// The managed and native machines charge different stack footprints, so
	// under a tight budget assert the *shape* (some allocations denied, freed
	// bytes reusable) rather than a cross-engine byte-identical count.
	for _, ec := range faultConfigs() {
		cfg := ec.cfg
		cfg.MaxHeapBytes = 1 << 20
		cfg.MaxAllocBytes = 0
		res, err := sulong.Run(src, cfg)
		if err != nil {
			t.Fatalf("%s: %v", ec.label, err)
		}
		if res.Bug != nil || res.Fault != nil {
			t.Fatalf("%s: unexpected bug/fault: %v %v", ec.label, res.Bug, res.Fault)
		}
		// 64 KiB requested fits in 1 MiB: everything succeeds.
		if res.Stdout != "ok=64 failed=0\nafter-free nonnull=1\n" {
			t.Fatalf("%s: stdout %q", ec.label, res.Stdout)
		}
	}
	// Now a budget only ~half the demand: some mallocs must fail, the guest
	// handles it, and freed bytes return to the budget.
	res, err := sulong.Run(src, sulong.Config{
		Engine: sulong.EngineSafeSulong, MaxHeapBytes: 40 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok, failed int
	if _, serr := fmt.Sscanf(res.Stdout, "ok=%d failed=%d", &ok, &failed); serr != nil {
		t.Fatalf("unparseable stdout %q", res.Stdout)
	}
	if failed == 0 || ok == 0 {
		t.Fatalf("expected mixed outcomes under 40KiB budget, got ok=%d failed=%d", ok, failed)
	}
	if !strings.Contains(res.Stdout, "after-free nonnull=1") {
		t.Fatalf("freed bytes not returned to budget: %q", res.Stdout)
	}
	if res.Stats.DeniedAllocs == 0 {
		t.Fatal("Stats.DeniedAllocs = 0 under exhausted budget")
	}
}

// TestFaultScheduleTierParity runs a heap-heavy program under several fault
// plans with the tier-1 compiler off and forced hot, requiring identical
// stdout, exit code, and heap accounting — the paper's "identical semantics
// across tiers" claim extended to injected allocation failures.
func TestFaultScheduleTierParity(t *testing.T) {
	src := `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int i, live = 0;
    for (i = 0; i < 20; i++) {
        char *p = malloc(16 + i);
        if (!p) { printf("alloc %d failed\n", i); continue; }
        live++;
        p[0] = (char)i;
        if (i % 3 == 0) { free(p); live--; }
    }
    printf("live=%d\n", live);
    return live;
}`
	plans := []fault.Plan{
		{},
		{FailNth: 1},
		{FailNth: 7},
		{FailAfterBytes: 128},
		{FailProb: 0.25, Seed: 42},
		{FailProb: 0.5, Seed: 7, FailNth: 3},
	}
	for pi, plan := range plans {
		t0, err := sulong.Run(src, sulong.Config{
			Engine: sulong.EngineSafeSulong, FaultPlan: plan,
		})
		if err != nil {
			t.Fatalf("plan %d tier-0: %v", pi, err)
		}
		t1, err := sulong.Run(src, sulong.Config{
			Engine: sulong.EngineSafeSulong, JIT: true, JITThreshold: 1, FaultPlan: plan,
		})
		if err != nil {
			t.Fatalf("plan %d tier-1: %v", pi, err)
		}
		if t0.Stdout != t1.Stdout || t0.ExitCode != t1.ExitCode {
			t.Errorf("plan %d (%v): tiers diverge: tier-0 %q/%d vs tier-1 %q/%d",
				pi, plan, t0.Stdout, t0.ExitCode, t1.Stdout, t1.ExitCode)
		}
		for _, f := range []struct {
			name string
			a, b int64
		}{
			{"HeapAllocs", t0.Stats.HeapAllocs, t1.Stats.HeapAllocs},
			{"HeapAllocBytes", t0.Stats.HeapAllocBytes, t1.Stats.HeapAllocBytes},
			{"HeapInUseBytes", t0.Stats.HeapInUseBytes, t1.Stats.HeapInUseBytes},
			{"InjectedFaults", t0.Stats.InjectedFaults, t1.Stats.InjectedFaults},
			{"DeniedAllocs", t0.Stats.DeniedAllocs, t1.Stats.DeniedAllocs},
		} {
			if f.a != f.b {
				t.Errorf("plan %d (%v): %s diverges: tier-0 %d vs tier-1 %d",
					pi, plan, f.name, f.a, f.b)
			}
		}
		// Seeded schedules are reproducible: a second identical run matches.
		t0b, err := sulong.Run(src, sulong.Config{
			Engine: sulong.EngineSafeSulong, FaultPlan: plan,
		})
		if err != nil {
			t.Fatalf("plan %d rerun: %v", pi, err)
		}
		if t0b.Stdout != t0.Stdout {
			t.Errorf("plan %d (%v): rerun diverges: %q vs %q", pi, plan, t0b.Stdout, t0.Stdout)
		}
	}
}

// TestNullPlusOffsetRoundtrip pins the offset-preserving null-pointer store:
// pointer arithmetic on a failed malloc must report the same effective
// offset whether the pointer spills to memory (tier-0) or stays in a
// register (tier-1 after scalar promotion).
func TestNullPlusOffsetRoundtrip(t *testing.T) {
	src := `#include <stdlib.h>
int main(void) {
    char *p = malloc(16); /* injected -> NULL */
    char *q = p + 4;
    q[-5] = 'x';          /* effective offset -1 from NULL */
    return 0;
}`
	var reports []string
	for _, jit := range []bool{false, true} {
		cfg := sulong.Config{Engine: sulong.EngineSafeSulong, FaultPlan: fault.Plan{FailNth: 1}}
		if jit {
			cfg.JIT, cfg.JITThreshold = true, 1
		}
		res, err := sulong.Run(src, cfg)
		if err != nil {
			t.Fatalf("jit=%v: %v", jit, err)
		}
		if res.Bug == nil {
			t.Fatalf("jit=%v: expected a NULL-deref bug", jit)
		}
		reports = append(reports, res.Bug.Error())
	}
	if reports[0] != reports[1] {
		t.Fatalf("tiers report different offsets:\n  tier-0: %s\n  tier-1: %s", reports[0], reports[1])
	}
	if !strings.Contains(reports[0], "offset -1") {
		t.Fatalf("report lost the pointer offset: %s", reports[0])
	}
}
