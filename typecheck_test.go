package sulong_test

import (
	"strings"
	"testing"

	sulong "repro"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/ir"
)

// TestTypeConfusionBlindSpot is the acceptance gate for the type-identity
// plane: every type-confusion corpus case must be detected by the managed
// engine — with an allocation-site backtrace on the report — while ASan and
// memcheck, whose shadow state models where memory is valid rather than
// what it holds, report nothing at either optimization level.
func TestTypeConfusionBlindSpot(t *testing.T) {
	n := 0
	for _, c := range corpus.All() {
		if c.Category != corpus.TypeConfusion {
			continue
		}
		n++
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			res := runTier(t, c, false)
			if res.Bug == nil {
				t.Fatalf("managed engine found no bug (stdout=%q exit=%d)", res.Stdout, res.ExitCode)
			}
			switch res.Bug.Kind {
			case core.BadUnionRead, core.BadCast, core.VarargMismatch:
			default:
				t.Errorf("bug kind = %v, want a type-confusion kind", res.Bug.Kind)
			}
			if res.Bug.AllocStack.IsEmpty() {
				t.Errorf("report lacks an allocation-site backtrace: %v", res.Bug)
			}
			if res.Bug.Accessed == "" && res.Bug.CType == "" {
				t.Errorf("report carries no type identity: %v", res.Bug)
			}
			for _, tool := range []harness.Tool{
				harness.NativeO0, harness.ASanO0, harness.ASanO3,
				harness.ValgrindO0, harness.ValgrindO3,
			} {
				cell := harness.RunCase(c, tool)
				if cell.RunError != "" {
					t.Errorf("%v: run error: %s", tool, cell.RunError)
					continue
				}
				if cell.Detected || cell.Crashed {
					t.Errorf("%v unexpectedly reported: %s", tool, cell.Report)
				}
			}
		})
	}
	if n < 3 {
		t.Errorf("type-confusion corpus has %d cases, want >= 3", n)
	}
}

// introProbe exercises every introspection builtin on stack, heap
// (cast-adopted), null, and freed pointers. All four engines must print
// byte-identical answers: the type mirror is the managed metadata's native
// shadow, not an approximation with different semantics.
const introProbe = `#include <stdio.h>
#include <stdlib.h>
#include <introspect.h>
struct point { long x; long y; };
int main(void) {
    char buf[16];
    struct point *p = (struct point *)malloc(sizeof(struct point));
    if (p == 0) {
        return 1;
    }
    buf[0] = 'a';
    printf("stack size=%ld bounds=%ld type=%s\n",
           _size_of_object((void *)buf), _bounds_of((void *)(buf + 4)), _type_of((void *)buf));
    printf("heap size=%ld bounds=%ld type=%s\n",
           _size_of_object((void *)p), _bounds_of((void *)p), _type_of((void *)p));
    printf("null size=%ld bounds=%ld type=%s\n",
           _size_of_object((void *)0), _bounds_of((void *)0), _type_of((void *)0));
    free(p);
    printf("freed bounds=%ld\n", _bounds_of((void *)p));
    return 0;
}`

func TestIntrospectionParityAcrossEngines(t *testing.T) {
	want := "stack size=16 bounds=12 type=char[16]\n" +
		"heap size=16 bounds=16 type=struct point\n" +
		"null size=-1 bounds=0 type=null\n" +
		"freed bounds=0\n"
	for _, eng := range []sulong.Engine{
		sulong.EngineSafeSulong, sulong.EngineNative, sulong.EngineASan, sulong.EngineMemcheck,
	} {
		res, err := sulong.Run(introProbe, sulong.Config{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if res.Bug != nil || res.Fault != nil {
			t.Fatalf("%v: unexpected report: bug=%v fault=%v", eng, res.Bug, res.Fault)
		}
		if res.Stdout != want {
			t.Errorf("%v stdout:\n%s\nwant:\n%s", eng, res.Stdout, want)
		}
	}
}

// TestIntrospectionUnderFaultPlan pins the documented don't-know value on
// the fault plane's denied allocations: _size_of_object(NULL) is -1, in
// every engine, and identically under tier-0 and the forced asynchronous
// tiering pipeline. Calling the builtins must never shift a fault-schedule
// coordinate: the denial stays on allocation 1 regardless.
func TestIntrospectionUnderFaultPlan(t *testing.T) {
	const src = `#include <stdio.h>
#include <stdlib.h>
#include <introspect.h>
int main(void) {
    int i;
    for (i = 0; i < 6; i++) {
        char *p = (char *)malloc(32);
        printf("%d size=%ld type=%s\n", i, _size_of_object((void *)p), _type_of((void *)p));
        if (p != 0) {
            free(p);
        }
    }
    return 0;
}`
	plan := fault.Plan{FailNth: 1}
	var first string
	for _, eng := range []sulong.Engine{
		sulong.EngineSafeSulong, sulong.EngineNative, sulong.EngineASan, sulong.EngineMemcheck,
	} {
		res, err := sulong.Run(src, sulong.Config{Engine: eng, FaultPlan: plan})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if !strings.HasPrefix(res.Stdout, "0 size=-1 type=null\n") {
			t.Errorf("%v: denied allocation not reported as size -1:\n%s", eng, res.Stdout)
		}
		if first == "" {
			first = res.Stdout
		} else if res.Stdout != first {
			t.Errorf("%v diverges from SafeSulong:\n%s\nwant:\n%s", eng, res.Stdout, first)
		}
	}
	// Tiered managed runs must agree byte-for-byte, steps included.
	c := corpus.Case{Name: "introspect-failnth", Source: src}
	interp := runTier0(t, c, plan)
	tiered := runAsyncOSR(t, c, plan)
	requireTierCheckParity(t, interp, tiered)
	if interp.Stdout != first {
		t.Errorf("tier-0 run diverges from plain run:\n%s\nwant:\n%s", interp.Stdout, first)
	}
}

// TestHardenedLibcTruncates checks the bounds-aware libc on both
// toolchains: with Config.HardenedLibc the bulk-write family truncates at
// the destination object's end — same visible output on the managed engine
// (recompiled C libc consulting _bounds_of) and the native machine
// (precompiled nlibc consulting the type mirror) — while the default libc
// keeps its ordinary overflowing behavior, which the managed engine
// reports exactly.
func TestHardenedLibcTruncates(t *testing.T) {
	const src = `#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[8];
    char b2[8];
    strcpy(buf, "overflowing string");
    printf("[%s]\n", buf);
    memset(b2, 'x', 32);
    b2[7] = 0;
    printf("[%s]\n", b2);
    return 0;
}`
	const want = "[overflo]\n[xxxxxxx]\n"
	for _, eng := range []sulong.Engine{
		sulong.EngineSafeSulong, sulong.EngineNative, sulong.EngineMemcheck,
	} {
		res, err := sulong.Run(src, sulong.Config{Engine: eng, HardenedLibc: true})
		if err != nil {
			t.Fatalf("%v hardened: %v", eng, err)
		}
		if res.Bug != nil || res.Fault != nil {
			t.Fatalf("%v hardened: unexpected report: bug=%v fault=%v", eng, res.Bug, res.Fault)
		}
		if res.Stdout != want {
			t.Errorf("%v hardened stdout = %q, want %q", eng, res.Stdout, want)
		}
	}
	// Unhardened, the same program is a reported stack overflow.
	res, err := sulong.Run(src, sulong.Config{Engine: sulong.EngineSafeSulong})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil || res.Bug.Kind != core.OutOfBounds {
		t.Errorf("default libc: want an out-of-bounds report, got %v", res.Bug)
	}
}

// TestTypedIRRoundTrip checks that the type-identity metadata survives the
// textual IR: union layouts keep their keyword, allocation and cast sites
// keep their !ctype annotations, and a re-parsed module reports the same
// bug as the original.
func TestTypedIRRoundTrip(t *testing.T) {
	for _, name := range []string{"union-double-as-long", "cast-heap-retype"} {
		c, ok := corpus.Get(name)
		if !ok {
			t.Fatalf("corpus case %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			mod, err := sulong.CompileOnly(c.Source)
			if err != nil {
				t.Fatal(err)
			}
			text1 := ir.Print(mod)
			if !strings.Contains(text1, "!ctype") {
				t.Error("printed module carries no !ctype annotations")
			}
			if name == "union-double-as-long" && !strings.Contains(text1, "union") {
				t.Error("printed module lost the union keyword")
			}
			mod2, err := ir.Parse(text1)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if err := ir.Verify(mod2); err != nil {
				t.Fatalf("verify: %v", err)
			}
			if text2 := ir.Print(mod2); text1 != text2 {
				t.Fatal("print/parse/print not a fixpoint")
			}
			cfg := sulong.Config{Engine: sulong.EngineSafeSulong}
			want, err := sulong.RunModule(mod, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sulong.RunModule(mod2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want.Bug == nil || got.Bug == nil {
				t.Fatalf("detection lost: original bug=%v, reparsed bug=%v", want.Bug, got.Bug)
			}
			if want.Bug.Error() != got.Bug.Error() {
				t.Errorf("reports diverge after round trip:\n%v\n%v", want.Bug, got.Bug)
			}
		})
	}
}
