// Package sulong is the public API of this repository: a reproduction of
// "Sulong, and Thanks For All the Bugs" (ASPLOS 2018). It compiles C
// programs to SIR (an LLVM-IR-like representation) and executes them under
// one of several engines:
//
//   - EngineSafeSulong — the paper's contribution: a managed interpreter
//     with exact bounds/NULL/free/vararg checking (internal/core) and an
//     optional tier-1 dynamic compiler (internal/jit).
//   - EngineNative — a simulated native machine (flat memory, no checks),
//     standing in for binaries produced by Clang -O0/-O3.
//   - EngineASan — the native machine instrumented with shadow memory and
//     redzones, modeling LLVM's AddressSanitizer.
//   - EngineMemcheck — the native machine under binary instrumentation with
//     A/V-bit shadow state, modeling Valgrind's memcheck.
//
// Typical use:
//
//	res, err := sulong.Run(src, sulong.Config{Engine: sulong.EngineSafeSulong})
//	if res.Bug != nil { fmt.Println(res.Bug) }
package sulong

import (
	"fmt"
	"io"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/libc"
)

// Engine selects an execution engine.
type Engine int

const (
	// EngineSafeSulong is the managed, exactly-checked engine (the paper's
	// tool), running IR produced without optimization.
	EngineSafeSulong Engine = iota
	// EngineNative simulates an uninstrumented native binary.
	EngineNative
	// EngineASan simulates a Clang+AddressSanitizer build.
	EngineASan
	// EngineMemcheck simulates running the native binary under Valgrind.
	EngineMemcheck
)

var engineNames = [...]string{
	EngineSafeSulong: "SafeSulong",
	EngineNative:     "Native",
	EngineASan:       "ASan",
	EngineMemcheck:   "Memcheck",
}

func (e Engine) String() string { return engineNames[e] }

// Config configures compilation and execution.
type Config struct {
	Engine Engine
	// OptLevel is the optimization level of the *native-side* compile
	// pipeline (0 or 3). Safe Sulong always executes unoptimized IR
	// (paper §3.1: Clang is run without optimizations).
	OptLevel int

	Args  []string
	Env   []string
	Stdin io.Reader
	// Stdout receives program output; when nil it is captured in Result.
	Stdout io.Writer

	// JIT enables Safe Sulong's tier-1 dynamic compiler.
	JIT bool
	// JITThreshold overrides the default compile-after-N-calls policy.
	JITThreshold int64
	// OnCompile observes tier-1 compilation events (Fig. 15).
	OnCompile func(name string)

	// MaxSteps bounds execution (0 = engine default).
	MaxSteps int64
	// DetectLeaks turns on leak reporting at exit (managed engine only).
	DetectLeaks bool
	// DetectUseAfterReturn reports accesses to stack objects of functions
	// that already returned (managed engine only).
	DetectUseAfterReturn bool

	// ExtraFiles adds include-able files to the compilation.
	ExtraFiles map[string]string
}

// Result is the outcome of running a program.
type Result struct {
	ExitCode int
	Stdout   string
	// Bug is the first detected memory error, if any. Only engines that
	// check (SafeSulong, ASan, Memcheck) report bugs; the native engine
	// reports Fault instead when the simulated machine traps.
	Bug *core.BugError
	// Fault is a native machine trap (SIGSEGV-like), when one occurred.
	Fault error
	// Leaks lists unfreed heap allocations (managed engine, DetectLeaks).
	Leaks []*core.BugError
	// Stats carries engine counters (managed engine).
	Stats core.Stats
}

// CompileOnly compiles a C program (user source plus the bundled libc) to an
// unoptimized SIR module, as the managed engine consumes it.
func CompileOnly(src string) (*ir.Module, error) {
	files := libc.Files()
	files["user.c"] = src
	files["__program.c"] = libc.WrapProgram("user.c")
	return cc.Compile("__program.c", files, cc.Options{})
}

// CompileBare compiles a C program without linking the bundled libc sources
// (headers remain available). This is the native toolchain's view: libc is
// precompiled, only prototypes are seen at compile time.
func CompileBare(src string) (*ir.Module, error) {
	files := libc.Files()
	files["user.c"] = src
	return cc.Compile("user.c", files, cc.Options{})
}

// Run compiles and executes a C program under the configured engine.
//
// The compilation pipeline differs per engine exactly as in the paper:
// Safe Sulong interprets unoptimized IR of the program *plus* the safe libc
// written in C; the native family compiles only the user program (their
// libc is precompiled) and runs it through the optimizer at cfg.OptLevel.
func Run(src string, cfg Config) (Result, error) {
	mod, err := CompileFor(src, cfg)
	if err != nil {
		return Result{}, err
	}
	return RunModule(mod, cfg)
}

// CompileFor compiles src the way cfg.Engine's toolchain would.
func CompileFor(src string, cfg Config) (*ir.Module, error) {
	if cfg.Engine == EngineSafeSulong {
		files := libc.Files()
		for k, v := range cfg.ExtraFiles {
			files[k] = v
		}
		files["user.c"] = src
		files["__program.c"] = libc.WrapProgram("user.c")
		return cc.Compile("__program.c", files, cc.Options{})
	}
	files := libc.Files() // headers only matter; sources are not linked
	for k, v := range cfg.ExtraFiles {
		files[k] = v
	}
	files["user.c"] = src
	mod, err := cc.Compile("user.c", files, cc.Options{})
	if err != nil {
		return nil, err
	}
	applyNativeOpt(mod, cfg.OptLevel)
	return mod, nil
}

// RunModule executes an already-compiled module under the configured engine.
func RunModule(mod *ir.Module, cfg Config) (Result, error) {
	switch cfg.Engine {
	case EngineSafeSulong:
		return runManaged(mod, cfg)
	case EngineNative, EngineASan, EngineMemcheck:
		return runNativeFamily(mod, cfg)
	}
	return Result{}, fmt.Errorf("sulong: unknown engine %d", cfg.Engine)
}

func runManaged(mod *ir.Module, cfg Config) (Result, error) {
	ecfg := core.Config{
		Args:                 cfg.Args,
		Env:                  cfg.Env,
		Stdin:                cfg.Stdin,
		Stdout:               cfg.Stdout,
		MaxSteps:             cfg.MaxSteps,
		DetectLeaks:          cfg.DetectLeaks,
		DetectUseAfterReturn: cfg.DetectUseAfterReturn,
		OnCompile:            cfg.OnCompile,
	}
	if cfg.JIT {
		ecfg.Tier1 = jit.New()
		ecfg.Tier1Threshold = cfg.JITThreshold
	}
	eng, err := core.NewEngine(mod, ecfg)
	if err != nil {
		return Result{}, err
	}
	code, err := eng.Run()
	res := Result{ExitCode: code, Stdout: eng.Output(), Stats: eng.Stats()}
	if cfg.DetectLeaks {
		res.Leaks = eng.Leaks()
	}
	if err != nil {
		var bug *core.BugError
		if asBug(err, &bug) {
			res.Bug = bug
			return res, nil
		}
		return res, err
	}
	return res, nil
}

func asBug(err error, out **core.BugError) bool {
	for err != nil {
		if be, ok := err.(*core.BugError); ok {
			*out = be
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
