// Package sulong is the public API of this repository: a reproduction of
// "Sulong, and Thanks For All the Bugs" (ASPLOS 2018). It compiles C
// programs to SIR (an LLVM-IR-like representation) and executes them under
// one of several engines:
//
//   - EngineSafeSulong — the paper's contribution: a managed interpreter
//     with exact bounds/NULL/free/vararg checking (internal/core) and an
//     optional tier-1 dynamic compiler (internal/jit).
//   - EngineNative — a simulated native machine (flat memory, no checks),
//     standing in for binaries produced by Clang -O0/-O3.
//   - EngineASan — the native machine instrumented with shadow memory and
//     redzones, modeling LLVM's AddressSanitizer.
//   - EngineMemcheck — the native machine under binary instrumentation with
//     A/V-bit shadow state, modeling Valgrind's memcheck.
//
// Typical use:
//
//	res, err := sulong.Run(src, sulong.Config{Engine: sulong.EngineSafeSulong})
//	if res.Bug != nil { fmt.Println(res.Bug) }
package sulong

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/pipeline"
)

// Engine selects an execution engine.
type Engine int

const (
	// EngineSafeSulong is the managed, exactly-checked engine (the paper's
	// tool), running IR produced without optimization.
	EngineSafeSulong Engine = iota
	// EngineNative simulates an uninstrumented native binary.
	EngineNative
	// EngineASan simulates a Clang+AddressSanitizer build.
	EngineASan
	// EngineMemcheck simulates running the native binary under Valgrind.
	EngineMemcheck
)

var engineNames = [...]string{
	EngineSafeSulong: "SafeSulong",
	EngineNative:     "Native",
	EngineASan:       "ASan",
	EngineMemcheck:   "Memcheck",
}

func (e Engine) String() string {
	if e < 0 || int(e) >= len(engineNames) {
		return fmt.Sprintf("Engine(%d)", int(e))
	}
	return engineNames[e]
}

// flavor maps an engine to its compilation-pipeline flavor.
func (e Engine) flavor() pipeline.Flavor {
	if e == EngineSafeSulong {
		return pipeline.FlavorManaged
	}
	return pipeline.FlavorNative
}

// Config configures compilation and execution.
type Config struct {
	Engine Engine
	// OptLevel is the optimization level of the *native-side* compile
	// pipeline (0 or 3). Safe Sulong always executes unoptimized IR
	// (paper §3.1: Clang is run without optimizations).
	OptLevel int

	Args  []string
	Env   []string
	Stdin io.Reader
	// Stdout receives program output; when nil it is captured in Result.
	Stdout io.Writer

	// JIT enables Safe Sulong's tier-1 dynamic compiler.
	JIT bool
	// JITThreshold overrides the default compile-after-N-calls policy.
	JITThreshold int64
	// JITAsync compiles hot functions on a background pool owned by the
	// engine while tier-0 keeps executing; compiled code is installed at
	// the next dispatch point instead of stalling the hot call.
	JITAsync bool
	// JITWorkers bounds the background compile pool (0 = 1 worker).
	JITWorkers int
	// OSR enables on-stack replacement: a loop whose back edge fires
	// OSRThreshold times is entered mid-execution by frame-compatible
	// compiled code with speculative (deopting) fast paths, so a hot loop
	// tiers up even when its function is called once.
	OSR bool
	// OSRThreshold overrides the hot back-edge count (default 64; setting
	// it non-zero implies OSR).
	OSRThreshold int64
	// OnCompile observes tier-1 compilation events (Fig. 15).
	OnCompile func(name string)

	// NoCache bypasses the content-addressed module cache: the compile runs
	// every pipeline stage from scratch and the caller owns the resulting
	// module exclusively (it may be mutated freely). The cache is on by
	// default; modules it returns are shared and must not be mutated.
	NoCache bool
	// NoCodeCache bypasses the back-end reuse layer: the process-wide
	// executable-code cache (tier-1 closures shared across runs of the same
	// module) and the engine reset/reuse pool. Every run then constructs a
	// fresh engine and compiles from scratch — the cold baseline the
	// warm-vs-cold parity suite and throughput benchmarks compare against.
	NoCodeCache bool

	// MaxSteps bounds execution (0 = engine default). The budget is
	// enforced in every tier: the tier-0 interpreters charge one step per
	// instruction, tier-1 compiled code charges per basic block, and libc
	// fast paths charge data-proportional work. Exhaustion surfaces as a
	// *core.LimitError — deterministic for a given program and budget.
	MaxSteps int64
	// Timeout bounds wall-clock execution (0 = none). Enforcement is
	// cooperative: a watchdog stops the run's governor, which every engine
	// polls at basic-block boundaries; expiry surfaces as a
	// *core.DeadlineError. Use RunCtx for caller-driven cancellation.
	Timeout time.Duration
	// MaxHeapBytes bounds cumulative live guest memory — heap plus stack
	// plus globals — in every engine (0 = unlimited). Heap exhaustion is
	// soft: guest malloc returns NULL, which C programs can handle. Stack
	// or global exhaustion is hard: it surfaces as a *core.ResourceError
	// and the harness classifies the run "oom".
	MaxHeapBytes int64
	// MaxAllocBytes bounds a single heap request (0 = engine default of
	// 2 GiB); over-cap requests fail softly like a real malloc.
	MaxAllocBytes int64
	// FaultPlan injects deterministic guest allocation failures (fail the
	// n-th malloc, fail after N bytes, seeded-random failures) identically
	// in every tier, so the guest's own `if (!p)` error paths are actually
	// exercised. The zero plan injects nothing.
	FaultPlan fault.Plan
	// DetectLeaks turns on leak reporting at exit (managed engine only).
	DetectLeaks bool
	// DetectUseAfterReturn reports accesses to stack objects of functions
	// that already returned (managed engine only).
	DetectUseAfterReturn bool
	// HardenedLibc selects the bounds-aware C library: the bulk-write
	// string family (memcpy/memmove/memset/strcpy/strcat) consults the
	// engine's object metadata and truncates at the destination's end
	// instead of overflowing. On the managed engine the libc sources are
	// recompiled with __SS_HARDENED; on the native family the precompiled
	// nlibc clamps through the machine's type mirror. Where the engine
	// cannot tell the destination's extent the functions degrade to their
	// ordinary (overflowing, but checked where the engine checks) behavior.
	HardenedLibc bool

	// ExtraFiles adds include-able files to the compilation.
	ExtraFiles map[string]string
}

// Result is the outcome of running a program.
type Result struct {
	ExitCode int
	Stdout   string
	// Bug is the first detected memory error, if any. Only engines that
	// check (SafeSulong, ASan, Memcheck) report bugs; the native engine
	// reports Fault instead when the simulated machine traps.
	Bug *core.BugError
	// Fault is a native machine trap (SIGSEGV-like), when one occurred.
	Fault error
	// Leaks lists unfreed heap allocations (managed engine, DetectLeaks).
	Leaks []*core.BugError
	// Diagnostics carries every report of the run (the bug, then leaks) in
	// the unified diagnostics form: kind, message, tool/tier provenance, and
	// the access / allocation-site / free-site backtraces. The rendered form
	// (Diagnostic.Render) is deterministic and excludes the tier, so tier-0
	// and tier-1 SafeSulong runs produce byte-identical reports.
	Diagnostics []*diag.Diagnostic
	// Stats carries engine counters (managed engine).
	Stats core.Stats
	// JIT reports tier-1 compiler activity (nil unless Config.JIT). A
	// bail-out is invisible in correctness terms — the function simply stays
	// interpreted — so benchmarks and CI must be able to *see* it here
	// rather than diagnose a silent slowdown.
	JIT *JITReport
}

// JITReport summarizes one run's tier-1 compiler activity.
type JITReport struct {
	// Compiled counts functions lowered to tier-1 closures; InstrsTotal
	// their pre-lowering instruction count (committed only on success).
	Compiled    int `json:"compiled"`
	InstrsTotal int `json:"instrs_total"`
	// Bailed counts abandoned compilations; BailReasons says why (capped).
	Bailed      int      `json:"bailed"`
	BailReasons []string `json:"bail_reasons,omitempty"`
	// Inlined counts call sites expanded by the tier-2 inliner.
	Inlined int `json:"inlined"`
	// Async tiering activity: OSR entries installed and entered, deopt
	// transfers back to tier-0, and background compilations installed.
	OSRCompiled   int64 `json:"osr_compiled,omitempty"`
	OSREntries    int64 `json:"osr_entries,omitempty"`
	Deopts        int64 `json:"deopts,omitempty"`
	AsyncInstalls int64 `json:"async_installs,omitempty"`
}

// DefaultOSRThreshold is the back-edge count after which a loop is compiled
// for on-stack replacement when Config.OSR is set without an explicit
// threshold.
const DefaultOSRThreshold = 64

// CompileOnly compiles a C program (user source plus the bundled libc) to an
// unoptimized SIR module, as the managed engine consumes it. The result is
// served from the content-addressed module cache and shared; treat it as
// immutable (engines never mutate modules, and the tier-1 JIT clones before
// optimizing).
func CompileOnly(src string) (*ir.Module, error) {
	res, err := pipeline.Compile(pipeline.Request{Source: src, Flavor: pipeline.FlavorManaged})
	if err != nil {
		return nil, err
	}
	return res.Module, nil
}

// CompileBare compiles a C program without linking the bundled libc sources
// (headers remain available). This is the native toolchain's view: libc is
// precompiled, only prototypes are seen at compile time. No optimizer stage
// runs — not even the -O0 backend fold. The front-end work is cached, but
// the returned module is a private deep copy: callers historically hand
// CompileBare results to the optimizer, which mutates in place.
func CompileBare(src string) (*ir.Module, error) {
	res, err := pipeline.Compile(pipeline.Request{Source: src, Flavor: pipeline.FlavorNative, Bare: true})
	if err != nil {
		return nil, err
	}
	return res.Module.Clone(), nil
}

// CacheStats snapshots the process-wide module cache counters.
func CacheStats() pipeline.CacheStats { return pipeline.Default.Stats() }

// ResetCache drops every cached module (cold-start measurements and tests).
func ResetCache() { pipeline.Default.Reset() }

// The back-end reuse layer: one executable-code cache and one engine pool
// for the whole process, mirroring pipeline.Default on the front end.
// Config.NoCodeCache opts a run out of both.
var (
	codeCache  = jit.NewCodeCache(0)
	enginePool = core.NewEnginePool(0)
)

// CodeCacheStats snapshots the process-wide executable-code cache counters.
func CodeCacheStats() jit.CodeCacheStats { return codeCache.Stats() }

// EnginePoolStats snapshots the engine reuse pool counters.
func EnginePoolStats() core.EnginePoolStats { return enginePool.Stats() }

// ResetCodeCache drops every cached compiled unit and pooled engine and
// zeroes their counters (cold-start measurements and tests).
func ResetCodeCache() {
	codeCache.Reset()
	enginePool.Reset()
}

// ReleaseModule retires mod from every process-wide reuse layer: the module
// cache, the executable-code cache, and the engine pool. Callers that know a
// module will never run again — the fuzzing-campaign judge, after the last
// oracle's verdict on a generated program — use it to implement "compile
// once, run many, then release": the caches carry the module across its own
// runs but never accumulate one-shot programs. Releasing is always safe,
// merely a cache eviction — a later run of the same source recompiles — and
// concurrent runs of mod are unaffected.
func ReleaseModule(mod *ir.Module) {
	if mod == nil {
		return
	}
	pipeline.Default.Release(mod)
	codeCache.ReleaseModule(mod)
	enginePool.Release(mod)
}

// Run compiles and executes a C program under the configured engine.
//
// The compilation pipeline differs per engine exactly as in the paper:
// Safe Sulong interprets unoptimized IR of the program *plus* the safe libc
// written in C; the native family compiles only the user program (their
// libc is precompiled) and runs it through the optimizer at cfg.OptLevel.
func Run(src string, cfg Config) (Result, error) {
	return RunCtx(context.Background(), src, cfg)
}

// RunCtx is Run with caller-driven cancellation: when ctx is cancelled (or
// its deadline passes), the run's governor is stopped and every engine
// returns a *core.DeadlineError at its next basic-block boundary. ctx also
// composes with cfg.Timeout — whichever fires first wins.
func RunCtx(ctx context.Context, src string, cfg Config) (Result, error) {
	mod, err := CompileFor(src, cfg)
	if err != nil {
		return Result{}, err
	}
	return RunModuleCtx(ctx, mod, cfg)
}

// CompileFor compiles src the way cfg.Engine's toolchain would, through the
// staged pipeline. With the cache enabled (the default) the returned module
// is shared with every other compilation of the same (source, flavor, opt
// level) and must be treated as immutable; with cfg.NoCache it is owned by
// the caller.
//
// Like RunModuleCtx, CompileFor is a containment boundary: a panic anywhere
// in the front end or optimizer (a lexer/parser/codegen bug, never guest
// behavior) is recovered and returned as a *core.InternalError instead of
// killing the process. The fuzzing campaign feeds this path millions of
// generated programs, where a compiler death must be a quarantined,
// reportable finding — not the end of the run.
func CompileFor(src string, cfg Config) (mod *ir.Module, err error) {
	defer func() {
		if r := recover(); r != nil {
			mod, err = nil, &core.InternalError{Panic: r, Stack: string(debug.Stack())}
		}
	}()
	req := pipeline.Request{
		Source:     src,
		ExtraFiles: cfg.ExtraFiles,
		Flavor:     cfg.Engine.flavor(),
		OptLevel:   cfg.OptLevel,
		Hardened:   cfg.HardenedLibc,
	}
	if cfg.NoCache {
		mod, _, err := pipeline.CompileUncached(req)
		return mod, err
	}
	res, err := pipeline.Compile(req)
	if err != nil {
		return nil, err
	}
	return res.Module, nil
}

// RunModule executes an already-compiled module under the configured engine.
func RunModule(mod *ir.Module, cfg Config) (Result, error) {
	return RunModuleCtx(context.Background(), mod, cfg)
}

// RunModuleCtx executes an already-compiled module with cancellation.
//
// This is the execution governor's containment boundary: engine panics
// (interpreter, tier-1 compiler, or simulated machine bugs — never guest
// program behavior) are recovered and returned as a *core.InternalError
// instead of killing the process, so one bad case cannot take down a whole
// evaluation matrix.
func RunModuleCtx(ctx context.Context, mod *ir.Module, cfg Config) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &core.InternalError{Panic: r, Stack: string(debug.Stack())}
		}
	}()
	var gov *core.Governor
	if cfg.Timeout > 0 || (ctx != nil && ctx.Done() != nil) {
		gov = &core.Governor{}
		release := gov.Watch(ctx, cfg.Timeout)
		defer release()
	}
	switch cfg.Engine {
	case EngineSafeSulong:
		return runManaged(mod, cfg, gov)
	case EngineNative, EngineASan, EngineMemcheck:
		return runNativeFamily(mod, cfg, gov)
	}
	return Result{}, fmt.Errorf("sulong: unknown engine %d", cfg.Engine)
}

func runManaged(mod *ir.Module, cfg Config, gov *core.Governor) (Result, error) {
	ecfg := core.Config{
		Args:                 cfg.Args,
		Env:                  cfg.Env,
		Stdin:                cfg.Stdin,
		Stdout:               cfg.Stdout,
		MaxSteps:             cfg.MaxSteps,
		MaxHeapBytes:         cfg.MaxHeapBytes,
		MaxAllocBytes:        cfg.MaxAllocBytes,
		FaultPlan:            cfg.FaultPlan,
		Governor:             gov,
		DetectLeaks:          cfg.DetectLeaks,
		DetectUseAfterReturn: cfg.DetectUseAfterReturn,
		OnCompile:            cfg.OnCompile,
	}
	var comp *jit.Compiler
	if cfg.JIT {
		comp = jit.New()
		if !cfg.NoCodeCache {
			comp.Cache = codeCache
		}
		ecfg.Tier1 = comp
		ecfg.Tier1Threshold = cfg.JITThreshold
		ecfg.AsyncJIT = cfg.JITAsync
		ecfg.JITWorkers = cfg.JITWorkers
		if cfg.OSR || cfg.OSRThreshold > 0 {
			ecfg.OSRThreshold = cfg.OSRThreshold
			if ecfg.OSRThreshold == 0 {
				ecfg.OSRThreshold = DefaultOSRThreshold
			}
		}
	}
	var eng *core.Engine
	var err error
	if cfg.NoCodeCache {
		eng, err = core.NewEngine(mod, ecfg)
	} else {
		eng, err = enginePool.Get(mod, ecfg)
	}
	if err != nil {
		return Result{}, err
	}
	// The deferred Close covers the panic-containment path (an engine that
	// panicked is never pooled); the explicit Close below joins the
	// background compile pool before counters are read.
	pooled := false
	defer func() {
		if !pooled {
			eng.Close()
		}
	}()
	code, err := eng.Run()
	eng.Close()
	stats := eng.Stats()
	res := Result{ExitCode: code, Stdout: eng.Output(), Stats: stats}
	if comp != nil {
		cs := comp.Snapshot()
		res.JIT = &JITReport{
			Compiled:      cs.Compiled,
			InstrsTotal:   cs.InstrsTotal,
			Bailed:        cs.Bailed,
			BailReasons:   cs.BailReasons,
			Inlined:       cs.Inlined,
			OSRCompiled:   stats.OSRCompiled,
			OSREntries:    stats.OSREntries,
			Deopts:        stats.Deopts,
			AsyncInstalls: stats.AsyncInstalls,
		}
	}
	if cfg.DetectLeaks {
		res.Leaks = eng.Leaks()
	}
	// Everything the result needs has been read out of the engine (output
	// string, stats, leak reports — all value types or engine-independent
	// persistent structures), so it is safe to recycle it.
	if !cfg.NoCodeCache {
		pooled = true
		enginePool.Put(eng)
	}
	tier := "tier-0"
	if cfg.JIT {
		tier = "tier-1"
	}
	if err != nil {
		var bug *core.BugError
		if asBug(err, &bug) {
			res.Bug = bug
			res.collectDiagnostics("SafeSulong", tier)
			return res, nil
		}
		res.collectDiagnostics("SafeSulong", tier)
		return res, err
	}
	res.collectDiagnostics("SafeSulong", tier)
	return res, nil
}

// collectDiagnostics converts the run's reports (the bug, then leaks, in
// that deterministic order) into the unified diagnostics form.
func (r *Result) collectDiagnostics(tool, tier string) {
	if r.Bug != nil {
		r.Diagnostics = append(r.Diagnostics, r.Bug.Diagnostic(tool, tier))
	}
	for _, l := range r.Leaks {
		r.Diagnostics = append(r.Diagnostics, l.Diagnostic(tool, tier))
	}
}

// asBug reports whether err is, or wraps, a *core.BugError — including
// multi-error wrappers (errors.Join), which the old hand-rolled unwrap loop
// could not traverse.
func asBug(err error, out **core.BugError) bool {
	return errors.As(err, out)
}
