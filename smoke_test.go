package sulong

import "testing"

func TestSmokeHello(t *testing.T) {
	res, err := Run(`
#include <stdio.h>
int main(void) {
    printf("Hello, %s! %d %05d %.3f %c %x\n", "World", 42, 7, 3.14159, 'A', 255);
    return 0;
}
`, Config{Engine: EngineSafeSulong})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exit=%d stdout=%q bug=%v", res.ExitCode, res.Stdout, res.Bug)
	want := "Hello, World! 42 00007 3.142 A ff\n"
	if res.Stdout != want {
		t.Errorf("got %q want %q", res.Stdout, want)
	}
}

func TestSmokeBugs(t *testing.T) {
	cases := []struct{ name, src, wantKind string }{
		{"stack-oob", `int main(void){ int a[10]; int i; for(i=0;i<=10;i++) a[i]=i; return a[0]; }`, "out-of-bounds access"},
		{"heap-uaf", `#include <stdlib.h>
int main(void){ int *p = malloc(4); *p = 1; free(p); return *p; }`, "use after free"},
		{"double-free", `#include <stdlib.h>
int main(void){ int *p = malloc(4); free(p); free(p); return 0; }`, "double free"},
		{"invalid-free", `#include <stdlib.h>
int main(void){ int x; free(&x); return 0; }`, "invalid free"},
		{"null-deref", `int main(void){ int *p = 0; return *p; }`, "NULL pointer dereference"},
		{"argv-oob", `#include <stdio.h>
int main(int argc, char **argv){ printf("%d %s\n", argc, argv[5]); return 0; }`, "out-of-bounds access"},
		{"vararg-width", `#include <stdio.h>
int counter = 7;
int main(void){ printf("counter: %ld\n", counter); return 0; }`, "out-of-bounds access"},
		{"missing-vararg", `#include <stdio.h>
int main(void){ printf("%d %d\n", 1); return 0; }`, "out-of-bounds access"},
		{"strtok-unterminated", `#include <string.h>
#include <stdio.h>
char buf[32] = "a\nb";
int main(void){ const char t[1] = {'\n'}; char *tok = strtok(buf, t); puts(tok); return 0; }`, "out-of-bounds access"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.src, Config{Engine: EngineSafeSulong})
			if err != nil {
				t.Fatalf("run error: %v", err)
			}
			if res.Bug == nil {
				t.Fatalf("no bug detected; stdout=%q exit=%d", res.Stdout, res.ExitCode)
			}
			if got := res.Bug.Kind.String(); got != tc.wantKind {
				t.Errorf("bug kind = %q (%v), want %q", got, res.Bug, tc.wantKind)
			} else {
				t.Logf("detected: %v", res.Bug)
			}
		})
	}
}

func TestSmokeCompute(t *testing.T) {
	res, err := Run(`
#include <stdio.h>
#include <string.h>
#include <stdlib.h>
struct point { int x; int y; };
int sq(int v){ return v*v; }
int main(void) {
    char buf[64];
    struct point p;
    int (*f)(int) = sq;
    int vals[5] = {5, 3, 1, 4, 2};
    double d = 2.0;
    p.x = 3; p.y = 4;
    sprintf(buf, "%d-%d", p.x, p.y);
    printf("%s len=%d sq=%d d2=%.1f\n", buf, (int)strlen(buf), f(5), d*d);
    {
        int i; long sum = 0;
        for (i = 0; i < 5; i++) sum += vals[i];
        printf("sum=%ld\n", sum);
    }
    return 0;
}
`, Config{Engine: EngineSafeSulong})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug != nil {
		t.Fatalf("unexpected bug: %v", res.Bug)
	}
	want := "3-4 len=3 sq=25 d2=4.0\nsum=15\n"
	if res.Stdout != want {
		t.Errorf("got %q want %q", res.Stdout, want)
	}
}

func TestSmokeNativeEngines(t *testing.T) {
	src := `
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
int main(void) {
    char buf[32];
    int *p = malloc(3 * sizeof(int));
    p[0] = 10; p[1] = 20; p[2] = 12;
    sprintf(buf, "%d", p[0]+p[1]+p[2]);
    printf("sum=%s len=%d\n", buf, (int)strlen(buf));
    free(p);
    return 0;
}
`
	for _, eng := range []Engine{EngineNative, EngineASan, EngineMemcheck} {
		for _, lvl := range []int{0, 3} {
			res, err := Run(src, Config{Engine: eng, OptLevel: lvl})
			if err != nil {
				t.Fatalf("%v -O%d: %v", eng, lvl, err)
			}
			if res.Bug != nil || res.Fault != nil {
				t.Fatalf("%v -O%d: unexpected bug=%v fault=%v", eng, lvl, res.Bug, res.Fault)
			}
			if res.Stdout != "sum=42 len=2\n" {
				t.Errorf("%v -O%d: stdout = %q", eng, lvl, res.Stdout)
			}
		}
	}
}

func TestSmokeToolDifferences(t *testing.T) {
	heapOOB := `
#include <stdlib.h>
int main(void) { int *p = malloc(4*sizeof(int)); p[4] = 1; int r = p[0]; free(p); return r; }`
	stackOOB := `
int main(void) { int a[4]; int i; for (i=0; i<=4; i++) a[i]=i; return a[0]; }`

	// Heap OOB just past the block: ASan and memcheck catch it, native does not.
	for _, eng := range []Engine{EngineASan, EngineMemcheck} {
		res, err := Run(heapOOB, Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bug == nil || res.Bug.Kind != 0 /* OutOfBounds */ {
			t.Errorf("%v: heap OOB not detected (bug=%v fault=%v)", eng, res.Bug, res.Fault)
		}
	}
	res, err := Run(heapOOB, Config{Engine: EngineNative})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug != nil || res.Fault != nil {
		t.Errorf("native: heap OOB should be silent, got bug=%v fault=%v", res.Bug, res.Fault)
	}

	// Stack OOB: ASan catches (redzone); memcheck misses (stack is addressable).
	res, err = Run(stackOOB, Config{Engine: EngineASan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil {
		t.Errorf("asan: stack OOB not detected")
	}
	res, err = Run(stackOOB, Config{Engine: EngineMemcheck})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug != nil {
		t.Errorf("memcheck: stack OOB unexpectedly detected: %v", res.Bug)
	}

	// Fig. 3: an OOB store to an array that is never read. At -O3 the
	// stores (and the whole loop) are deleted, so ASan finds nothing; at
	// -O0 ASan still sees the store and reports it.
	fig3 := `
int test(int length) {
    int arr[10];
    int i;
    for (i = 0; i < length; i++) arr[i] = i;
    return 0;
}
int main(void) { return test(20); }`
	res, err = Run(fig3, Config{Engine: EngineASan, OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil {
		t.Errorf("asan -O0: Fig. 3 store should be visible")
	}
	res, err = Run(fig3, Config{Engine: EngineASan, OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug != nil {
		t.Errorf("asan -O3: bug should be optimized away, got %v", res.Bug)
	}
	// Safe Sulong interprets unoptimized IR: always caught.
	res, err = Run(fig3, Config{Engine: EngineSafeSulong})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil {
		t.Errorf("safe sulong: Fig. 3 bug not detected")
	}

	// argv OOB: missed by all native tools, caught by Safe Sulong.
	argvOOB := `
#include <stdio.h>
int main(int argc, char **argv) { printf("%d %s\n", argc, argv[5]); return 0; }`
	for _, eng := range []Engine{EngineNative, EngineASan, EngineMemcheck} {
		res, err := Run(argvOOB, Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bug != nil {
			t.Errorf("%v: argv OOB should be missed, got %v", eng, res.Bug)
		}
	}
}

func TestSmokeJIT(t *testing.T) {
	src := `
#include <stdio.h>
long fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) {
    int i;
    long total = 0;
    for (i = 0; i < 18; i++) total += fib(i);
    printf("total=%ld\n", total);
    return 0;
}
`
	var compiled []string
	res, err := Run(src, Config{Engine: EngineSafeSulong, JIT: true, JITThreshold: 10,
		OnCompile: func(name string) { compiled = append(compiled, name) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug != nil {
		t.Fatalf("bug: %v", res.Bug)
	}
	if res.Stdout != "total=4180\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if len(compiled) == 0 {
		t.Error("no functions were tier-1 compiled")
	}
	t.Logf("compiled: %v, stats: %+v", compiled, res.Stats)

	// Bugs must still be detected in compiled code.
	buggy := `
int f(int i) { int a[8]; return a[i]; }
int main(void) { int i, s = 0; for (i = 0; i < 2000; i++) s += f(i % 9); return s; }
`
	res, err = Run(buggy, Config{Engine: EngineSafeSulong, JIT: true, JITThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil {
		t.Fatal("JIT-compiled code missed the out-of-bounds access")
	}
	t.Logf("jit bug: %v", res.Bug)
}

// TestUseAfterReturnDetection exercises the managed engine's
// use-after-return extension (off by default, like the historical ASan
// feature the paper's §2.2 mentions).
func TestUseAfterReturnDetection(t *testing.T) {
	src := `
int *escape(void) {
    int local = 42;
    return &local;
}
int main(void) {
    int *p = escape();
    return *p;
}`
	// Default: the managed model keeps the object alive (GC semantics, as
	// in the paper), so no error fires.
	res, err := Run(src, Config{Engine: EngineSafeSulong})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug != nil {
		t.Fatalf("default config should tolerate escaped locals: %v", res.Bug)
	}
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	// With the option on, the access is reported.
	res, err = Run(src, Config{Engine: EngineSafeSulong, DetectUseAfterReturn: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil {
		t.Fatal("use-after-return not detected")
	}
	t.Logf("detected: %v", res.Bug)
	// And under the JIT as well.
	jsrc := `
int *escape(void) { int local = 7; return &local; }
int main(void) {
    int i, s = 0;
    for (i = 0; i < 100; i++) { int *p = escape(); if (i == 99) s = *p; }
    return s;
}`
	res, err = Run(jsrc, Config{Engine: EngineSafeSulong, DetectUseAfterReturn: true, JIT: true, JITThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bug == nil {
		t.Fatal("use-after-return not detected in compiled code")
	}
}

func TestGetenvBothEngines(t *testing.T) {
	src := `
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    char *home = getenv("HOME");
    char *ghost = getenv("NOPE");
    printf("%s %d\n", home ? home : "(null)", ghost == NULL);
    return 0;
}`
	for _, eng := range []Engine{EngineSafeSulong, EngineNative} {
		res, err := Run(src, Config{Engine: eng, Env: []string{"HOME=/home/user", "PATH=/bin"}})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if res.Bug != nil || res.Fault != nil {
			t.Fatalf("%v: %v %v", eng, res.Bug, res.Fault)
		}
		if res.Stdout != "/home/user 1\n" {
			t.Errorf("%v: stdout = %q", eng, res.Stdout)
		}
	}
}
