package sulong

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestAsBugUnwrapsWrappedErrors covers the errors.As-based unwrap: a
// *core.BugError buried under fmt.Errorf %w chains (and errors.Join, which
// the old hand-rolled loop could not traverse) must still be surfaced.
func TestAsBugUnwrapsWrappedErrors(t *testing.T) {
	bug := &core.BugError{Kind: core.OutOfBounds}

	cases := map[string]error{
		"bare":          bug,
		"wrapped":       fmt.Errorf("engine: %w", bug),
		"doublewrapped": fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", bug)),
		"joined":        errors.Join(errors.New("unrelated"), fmt.Errorf("run: %w", bug)),
	}
	for name, err := range cases {
		var got *core.BugError
		if !asBug(err, &got) {
			t.Errorf("%s: asBug failed to find the bug", name)
			continue
		}
		if got != bug {
			t.Errorf("%s: surfaced %v, want the original bug", name, got)
		}
	}

	var got *core.BugError
	if asBug(errors.New("no bug here"), &got) {
		t.Error("asBug reported a bug in a plain error")
	}
	if asBug(nil, &got) {
		t.Error("asBug reported a bug in nil")
	}
}

// TestWrappedBugSurfacesInResult runs a program whose execution reports a
// bug and checks it lands in Result.Bug (not in the error return), i.e. the
// unwrap path is live end to end.
func TestWrappedBugSurfacesInResult(t *testing.T) {
	src := `int main(void) { int a[4]; return a[5]; }`
	res, err := Run(src, Config{Engine: EngineSafeSulong})
	if err != nil {
		t.Fatalf("bug must be surfaced in Result, not the error: %v", err)
	}
	if res.Bug == nil {
		t.Fatal("expected Result.Bug for an out-of-bounds read")
	}
}
