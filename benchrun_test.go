package sulong

import (
	"testing"

	"repro/internal/benchprog"
)

// TestBenchProgramsRunEverywhere compiles and runs every benchmark at its
// small size under all four engines and checks output agreement.
func TestBenchProgramsRunEverywhere(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			var ref string
			for _, eng := range []Engine{EngineSafeSulong, EngineNative, EngineASan, EngineMemcheck} {
				res, err := Run(b.Source, Config{Engine: eng, Args: []string{b.SmallArg}, JIT: eng == EngineSafeSulong})
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				if res.Bug != nil {
					t.Fatalf("%v: unexpected bug: %v", eng, res.Bug)
				}
				if res.Fault != nil {
					t.Fatalf("%v: fault: %v", eng, res.Fault)
				}
				if eng == EngineSafeSulong {
					ref = res.Stdout
					if ref == "" {
						t.Fatalf("no output")
					}
				} else if res.Stdout != ref {
					t.Errorf("%v output differs:\n got: %q\nwant: %q", eng, res.Stdout, ref)
				}
			}
		})
	}
}
