package asan

import (
	"repro/internal/core"
	"repro/internal/nativevm"
)

// Interceptors wraps the precompiled libc with ASan's argument-checking
// interceptors. The set below mirrors the historical ASan interceptor list
// as of the paper's evaluation:
//
//   - memory and string movers are fully range-checked,
//   - strlen/strcmp check the string range they traverse,
//   - printf's interceptor validates only pointer (%s) arguments — an int
//     passed where %ld is expected goes unnoticed (paper Fig. 12),
//   - strtok has NO interceptor (the paper found this and contributed one
//     upstream afterwards, LLVM rL298650 — this model predates the fix).
func Interceptors(base map[string]nativevm.LibFunc, t *Tool) map[string]nativevm.LibFunc {
	out := make(map[string]nativevm.LibFunc, len(base))
	for k, v := range base {
		out[k] = v
	}

	// cstrRange computes [addr, addr+len] of a NUL-terminated string by an
	// unchecked scan, then checks that range in shadow — how real
	// interceptors validate string arguments.
	checkStr := func(m *nativevm.Machine, addr uint64, acc core.AccessKind) *core.BugError {
		if addr == 0 {
			return nil
		}
		n := int64(0)
		for {
			b, f := m.Mem.LoadByte(addr + uint64(n))
			if f != nil || b == 0 {
				break
			}
			n++
			if n > 1<<20 {
				break
			}
		}
		// The interceptor's scan is real work: charge it as fuel so
		// repeated giant-string validation honors the step budget.
		m.AddSteps(n / 8)
		return t.CheckRange(addr, n+1, acc)
	}

	wrapRange := func(name string, ranges func(c *nativevm.CallCtx) [][3]int64) {
		inner, ok := base[name]
		if !ok {
			return
		}
		out[name] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
			for _, r := range ranges(c) {
				acc := core.Read
				if r[2] != 0 {
					acc = core.Write
				}
				if be := t.CheckRange(uint64(r[0]), r[1], acc); be != nil {
					be.Func = "asan:" + name
					return nativevm.Value{}, be
				}
			}
			return inner(m, c)
		}
	}

	// memcpy/memmove/memset: both ranges fully checked.
	for _, name := range []string{"memcpy", "memmove", "__builtin_memcpy"} {
		wrapRange(name, func(c *nativevm.CallCtx) [][3]int64 {
			return [][3]int64{
				{c.Args[0].I, c.Args[2].I, 1},
				{c.Args[1].I, c.Args[2].I, 0},
			}
		})
	}
	for _, name := range []string{"memset", "__builtin_memset"} {
		wrapRange(name, func(c *nativevm.CallCtx) [][3]int64 {
			return [][3]int64{{c.Args[0].I, c.Args[2].I, 1}}
		})
	}
	wrapRange("memcmp", func(c *nativevm.CallCtx) [][3]int64 {
		return [][3]int64{
			{c.Args[0].I, c.Args[2].I, 0},
			{c.Args[1].I, c.Args[2].I, 0},
		}
	})

	wrapStr := func(name string, which []int) {
		inner, ok := base[name]
		if !ok {
			return
		}
		out[name] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
			for _, i := range which {
				if be := checkStr(m, uint64(c.Args[i].I), core.Read); be != nil {
					be.Func = "asan:" + name
					return nativevm.Value{}, be
				}
			}
			return inner(m, c)
		}
	}
	wrapStr("strlen", []int{0})
	wrapStr("strcmp", []int{0, 1})
	wrapStr("strncmp", []int{0, 1})
	wrapStr("strchr", []int{0})
	wrapStr("strcat", []int{0, 1})
	wrapStr("strdup", []int{0})
	wrapStr("puts", []int{0})
	wrapStr("atoi", []int{0})
	wrapStr("atol", []int{0})
	// strcpy: source string readable, destination writable for its length.
	if inner, ok := base["strcpy"]; ok {
		out["strcpy"] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
			src := uint64(c.Args[1].I)
			if be := checkStr(m, src, core.Read); be != nil {
				be.Func = "asan:strcpy"
				return nativevm.Value{}, be
			}
			n := int64(0)
			for {
				b, f := m.Mem.LoadByte(src + uint64(n))
				if f != nil || b == 0 {
					break
				}
				n++
			}
			if be := t.CheckRange(uint64(c.Args[0].I), n+1, core.Write); be != nil {
				be.Func = "asan:strcpy"
				return nativevm.Value{}, be
			}
			return inner(m, c)
		}
	}
	// NOTE: no strtok interceptor — deliberately (paper case study 2).

	// printf family: the interceptor walks the format string and validates
	// only the pointer conversions (%s). Integer-width mismatches and
	// missing arguments pass through unchecked.
	wrapPrintf := func(name string, fmtArg int) {
		inner, ok := base[name]
		if !ok {
			return
		}
		out[name] = func(m *nativevm.Machine, c *nativevm.CallCtx) (nativevm.Value, error) {
			fmtStr, _ := m.Mem.CString(uint64(c.Args[fmtArg].I), 1<<16)
			va := c.VaBase
			slot := 0
			for i := 0; i+1 < len(fmtStr); i++ {
				if fmtStr[i] != '%' {
					continue
				}
				j := i + 1
				for j < len(fmtStr) && isFmtMod(fmtStr[j]) {
					j++
				}
				if j >= len(fmtStr) {
					break
				}
				conv := fmtStr[j]
				if conv == '%' {
					i = j
					continue
				}
				if conv == 's' {
					addr, _ := m.Mem.Load(va+uint64(8*slot), 8)
					if addr != 0 {
						if be := checkStr(m, addr, core.Read); be != nil {
							be.Func = "asan:" + name
							return nativevm.Value{}, be
						}
					}
				}
				slot++ // ints/floats advance the slot but are not checked
				i = j
			}
			return inner(m, c)
		}
	}
	wrapPrintf("printf", 0)
	wrapPrintf("fprintf", 1)

	return out
}

func isFmtMod(c byte) bool {
	switch c {
	case '-', '+', ' ', '#', '.', '*', 'l', 'h', 'z',
		'0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
		return true
	}
	return false
}
