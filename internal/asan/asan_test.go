package asan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nativemem"
)

func newTool() (*Tool, *nativemem.Memory) {
	t := New(DefaultOptions())
	mem := nativemem.New()
	t.NewAllocator(mem)
	return t, mem
}

func TestHeapRedzonesFire(t *testing.T) {
	tool, _ := newTool()
	alloc := (*asanAlloc)(tool)
	addr := alloc.Malloc(32)
	if addr == 0 {
		t.Fatal("malloc failed")
	}
	if be := tool.Load(addr, 4); be != nil {
		t.Errorf("in-bounds load flagged: %v", be)
	}
	if be := tool.Load(addr+31, 1); be != nil {
		t.Errorf("last byte flagged: %v", be)
	}
	be := tool.Load(addr+32, 1)
	if be == nil || be.Kind != core.OutOfBounds || be.Mem != core.HeapMem {
		t.Errorf("right redzone: %v", be)
	}
	be = tool.Store(addr-1, 1)
	if be == nil || be.Kind != core.OutOfBounds {
		t.Errorf("left redzone: %v", be)
	}
}

func TestBeyondRedzoneIsInvisible(t *testing.T) {
	tool, _ := newTool()
	alloc := (*asanAlloc)(tool)
	addr := alloc.Malloc(32)
	// Far past the redzone: unshadowed memory never fires (Fig. 14).
	if be := tool.Load(addr+100000, 4); be != nil {
		t.Errorf("unshadowed access flagged: %v", be)
	}
}

func TestFreedMemoryAndQuarantine(t *testing.T) {
	tool, _ := newTool()
	alloc := (*asanAlloc)(tool)
	addr := alloc.Malloc(64)
	if err := alloc.Free(addr); err != nil {
		t.Fatal(err)
	}
	be := tool.Load(addr, 4)
	if be == nil || be.Kind != core.UseAfterFree {
		t.Errorf("freed-in-quarantine read: %v", be)
	}
	// Double free detected while in quarantine.
	if err := alloc.Free(addr); err == nil {
		t.Error("double free not detected")
	} else if be, ok := err.(*core.BugError); !ok || be.Kind != core.DoubleFree {
		t.Errorf("double free kind: %v", err)
	}
	// Invalid free of a never-allocated address.
	if err := alloc.Free(0x123456); err == nil {
		t.Error("invalid free not detected")
	}
}

func TestQuarantineEvictionLosesUAF(t *testing.T) {
	opts := DefaultOptions()
	opts.QuarantineBytes = 128 // tiny: evicts almost immediately
	tool := New(opts)
	mem := nativemem.New()
	tool.NewAllocator(mem)
	alloc := (*asanAlloc)(tool)

	stale := alloc.Malloc(64)
	alloc.Free(stale)
	// Churn past the quarantine budget.
	for i := 0; i < 8; i++ {
		alloc.Free(alloc.Malloc(64))
	}
	// Reuse the storage.
	fresh := alloc.Malloc(64)
	_ = fresh
	if be := tool.Load(stale, 4); be != nil && be.Kind == core.UseAfterFree {
		// Only a failure if the block was genuinely re-allocated.
		if fresh == stale {
			t.Errorf("reused block still reports UAF: %v", be)
		}
	}
}

func TestStackRedzones(t *testing.T) {
	tool, _ := newTool()
	tool.StackAlloc(0x7000_0000, 16)
	if be := tool.Load(0x7000_0000, 8); be != nil {
		t.Errorf("object flagged: %v", be)
	}
	be := tool.Load(0x7000_0010, 1)
	if be == nil || be.Mem != core.AutoMem {
		t.Errorf("stack redzone above: %v", be)
	}
	be = tool.Load(0x7000_0000-1, 1)
	if be == nil || be.Mem != core.AutoMem {
		t.Errorf("stack redzone below: %v", be)
	}
	// Frame teardown unpoisons.
	tool.StackFree(0x7000_0000-32, 0x7000_0000+48)
	if be := tool.Load(0x7000_0010, 1); be != nil {
		t.Errorf("after StackFree: %v", be)
	}
}

func TestGlobalRedzones(t *testing.T) {
	tool, _ := newTool()
	tool.GlobalAlloc(0x10000, 8)
	if be := tool.Load(0x10000, 8); be != nil {
		t.Errorf("global flagged: %v", be)
	}
	be := tool.Load(0x10008, 4)
	if be == nil || be.Mem != core.StaticMem {
		t.Errorf("global redzone: %v", be)
	}
	// With instrumentation off, nothing fires.
	opts := DefaultOptions()
	opts.InstrumentGlobals = false
	tool2 := New(opts)
	tool2.GlobalAlloc(0x10000, 8)
	if be := tool2.Load(0x10008, 4); be != nil {
		t.Errorf("uninstrumented globals should not fire: %v", be)
	}
}

func TestCheckRangeScansEveryByte(t *testing.T) {
	tool, _ := newTool()
	alloc := (*asanAlloc)(tool)
	addr := alloc.Malloc(16)
	// A 32-byte range starting in-bounds crosses the right redzone.
	if be := tool.CheckRange(addr, 32, core.Write); be == nil {
		t.Error("CheckRange should scan into the redzone")
	}
	if be := tool.CheckRange(addr, 16, core.Read); be != nil {
		t.Errorf("exact range flagged: %v", be)
	}
}

func TestAccessSpanningPageBoundary(t *testing.T) {
	tool, _ := newTool()
	// Poison straddles a shadow-page boundary; the slow path must see it.
	base := uint64(nativemem.PageSize*10 - 4)
	tool.setState(base, 8, shadowHeapRedzone)
	if be := tool.Load(base+2, 4); be == nil {
		t.Error("cross-page poisoned access missed")
	}
}
