// Package asan models LLVM's AddressSanitizer on the simulated native
// machine: shadow state for every mapped byte, redzones around heap, stack,
// and global objects, a quarantine that delays heap reuse, and libc
// interceptors that validate arguments of selected functions.
//
// The model includes ASan's documented blind spots, which the paper's
// evaluation turns into missed bugs:
//
//   - accesses that jump over a redzone into another valid object (Fig. 14),
//   - dangling pointers whose block left quarantine and was re-allocated,
//   - the argv/envp block, set up before instrumented code runs (Fig. 10),
//   - functions without interceptors (strtok, Fig. 11),
//   - non-pointer variadic arguments (printf's interceptor checks only
//     %s/%n-style pointers, Fig. 12).
package asan

import (
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/nativemem"
	"repro/internal/nativevm"
)

// Shadow byte states.
const (
	shadowValid byte = iota
	shadowHeapRedzone
	shadowStackRedzone
	shadowGlobalRedzone
	shadowFreed
)

// Options tunes the instrumentation (the ablation benchmarks sweep these).
type Options struct {
	HeapRedzone     int64
	StackRedzone    int64
	GlobalRedzone   int64
	QuarantineBytes int64
	// InstrumentGlobals models -fno-common + global instrumentation; the
	// paper had to enable it to catch zero-initialized global overflows.
	InstrumentGlobals bool
}

// DefaultOptions mirrors ASan's defaults (scaled down: the real quarantine
// is 256 MB; the simulated heap is smaller).
func DefaultOptions() Options {
	return Options{
		HeapRedzone:       16,
		StackRedzone:      32,
		GlobalRedzone:     32,
		QuarantineBytes:   1 << 18,
		InstrumentGlobals: true,
	}
}

// Tool is the ASan instance: checker + allocator + interceptor factory.
type Tool struct {
	opts   Options
	shadow map[uint64][]byte // page index -> per-byte state
	// Heap bookkeeping.
	live       map[uint64]int64 // addr -> user size
	freedSize  map[uint64]int64 // addr -> size while in quarantine
	quarantine []uint64
	quarBytes  int64
	inner      nativevm.Allocator

	// one-entry shadow page cache: most accesses hit the same page.
	cachePage uint64
	cacheBuf  []byte

	// fuel, when set by the machine, charges data-proportional shadow work
	// (range checks, poisoning) against the run's step budget so
	// instrumented bulk operations honor the execution governor.
	fuel func(n int64)

	// stack, when set by the machine, captures the guest backtrace at the
	// current instruction; allocStacks/freeStacks remember the malloc and
	// free sites of heap blocks (real ASan stores these in the chunk
	// header), so use-after-free and double-free reports carry both.
	stack       func() diag.Stack
	allocStacks map[uint64]diag.Stack
	freeStacks  map[uint64]diag.Stack
}

// SetFuel installs the machine's fuel account (nativevm wires this up).
func (t *Tool) SetFuel(f func(n int64)) { t.fuel = f }

// SetStackSource installs the machine's shadow call stack (nativevm wires
// this up, like SetFuel).
func (t *Tool) SetStackSource(f func() diag.Stack) { t.stack = f }

func (t *Tool) capture() diag.Stack {
	if t.stack != nil {
		return t.stack()
	}
	return diag.Stack{}
}

func (t *Tool) charge(n int64) {
	if t.fuel != nil && n > 0 {
		t.fuel(n)
	}
}

// New builds an ASan tool.
func New(opts Options) *Tool {
	return &Tool{
		opts:        opts,
		shadow:      map[uint64][]byte{},
		live:        map[uint64]int64{},
		freedSize:   map[uint64]int64{},
		allocStacks: map[uint64]diag.Stack{},
		freeStacks:  map[uint64]diag.Stack{},
	}
}

// Options returns the tool's configuration.
func (t *Tool) Options() Options { return t.opts }

func (t *Tool) state(addr uint64) byte {
	idx := addr / nativemem.PageSize
	if idx == t.cachePage && t.cacheBuf != nil {
		return t.cacheBuf[addr%nativemem.PageSize]
	}
	pg, ok := t.shadow[idx]
	if !ok {
		return shadowValid // unshadowed memory (argv block, libc internals) is never flagged
	}
	t.cachePage, t.cacheBuf = idx, pg
	return pg[addr%nativemem.PageSize]
}

func (t *Tool) setState(addr uint64, size int64, s byte) {
	t.charge(size / 8)
	for i := int64(0); i < size; i++ {
		a := addr + uint64(i)
		pg, ok := t.shadow[a/nativemem.PageSize]
		if !ok {
			pg = make([]byte, nativemem.PageSize)
			t.shadow[a/nativemem.PageSize] = pg
		}
		pg[a%nativemem.PageSize] = s
	}
}

func (t *Tool) report(s byte, addr uint64, size int64, acc core.AccessKind) *core.BugError {
	be := &core.BugError{Access: acc, Size: size, Func: "asan"}
	switch s {
	case shadowFreed:
		be.Kind = core.UseAfterFree
		be.Mem = core.HeapMem
	case shadowHeapRedzone:
		be.Kind = core.OutOfBounds
		be.Mem = core.HeapMem
	case shadowStackRedzone:
		be.Kind = core.OutOfBounds
		be.Mem = core.AutoMem
	case shadowGlobalRedzone:
		be.Kind = core.OutOfBounds
		be.Mem = core.StaticMem
	default:
		return nil
	}
	be.AccessStack = t.capture()
	t.blameHeapBlock(be, addr)
	return be
}

// blameHeapBlock attaches allocation/free-site backtraces when the faulting
// address falls inside a tracked heap block or its redzones — the lookup
// real ASan does against its chunk headers when printing a report.
func (t *Tool) blameHeapBlock(be *core.BugError, addr uint64) {
	switch be.Kind {
	case core.UseAfterFree:
		for base, size := range t.freedSize {
			if addr >= base && addr < base+uint64(size) {
				be.AllocStack = t.allocStacks[base]
				be.FreeStack = t.freeStacks[base]
				return
			}
		}
	case core.OutOfBounds:
		if be.Mem != core.HeapMem {
			return
		}
		rz := uint64(t.opts.HeapRedzone)
		for base, size := range t.live {
			if addr+rz >= base && addr < base+uint64(size)+rz {
				be.AllocStack = t.allocStacks[base]
				return
			}
		}
	}
}

// check validates an access ASan-style: the shadow of the first and last
// byte (real ASan checks up to 8 bytes with one shadow load; the blind spot
// — valid memory beyond the redzone — is identical).
func (t *Tool) check(addr uint64, size int64, acc core.AccessKind) *core.BugError {
	if size <= 0 {
		return nil
	}
	last := addr + uint64(size-1)
	idx := addr / nativemem.PageSize
	if last/nativemem.PageSize == idx {
		// Fast path: one shadow "load" covers the access (as the real
		// compiled check does).
		var pg []byte
		if idx == t.cachePage && t.cacheBuf != nil {
			pg = t.cacheBuf
		} else {
			var ok bool
			pg, ok = t.shadow[idx]
			if !ok {
				return nil
			}
			t.cachePage, t.cacheBuf = idx, pg
		}
		if s := pg[addr%nativemem.PageSize]; s != shadowValid {
			return t.report(s, addr, size, acc)
		}
		if size > 1 {
			if s := pg[last%nativemem.PageSize]; s != shadowValid {
				return t.report(s, addr, size, acc)
			}
		}
		return nil
	}
	if be := t.report(t.state(addr), addr, size, acc); be != nil {
		return be
	}
	if size > 1 {
		if be := t.report(t.state(last), addr, size, acc); be != nil {
			return be
		}
	}
	return nil
}

// Load implements nativevm.Checker.
func (t *Tool) Load(addr uint64, size int64) *core.BugError {
	return t.check(addr, size, core.Read)
}

// Store implements nativevm.Checker.
func (t *Tool) Store(addr uint64, size int64) *core.BugError {
	return t.check(addr, size, core.Write)
}

// CheckRange validates every byte of a range (interceptors use this).
func (t *Tool) CheckRange(addr uint64, size int64, acc core.AccessKind) *core.BugError {
	t.charge(size / 8)
	for i := int64(0); i < size; i++ {
		if be := t.report(t.state(addr+uint64(i)), addr+uint64(i), 1, acc); be != nil {
			return be
		}
	}
	return nil
}

// StackAlloc poisons redzones around a new stack object.
func (t *Tool) StackAlloc(addr uint64, size int64) {
	rz := t.opts.StackRedzone
	t.setState(addr, size, shadowValid)
	t.setState(addr+uint64(size), rz, shadowStackRedzone)
	if addr > uint64(rz) {
		t.setState(addr-uint64(rz), rz, shadowStackRedzone)
	}
}

// StackFree unpoisons a frame's stack range on return.
func (t *Tool) StackFree(lo, hi uint64) {
	t.setState(lo, int64(hi-lo), shadowValid)
}

// GlobalAlloc poisons the gap after each instrumented global.
func (t *Tool) GlobalAlloc(addr uint64, size int64) {
	if !t.opts.InstrumentGlobals {
		return
	}
	t.setState(addr, size, shadowValid)
	t.setState(addr+uint64(size), t.opts.GlobalRedzone, shadowGlobalRedzone)
}

// NewAllocator wraps the machine heap with redzones and a quarantine.
func (t *Tool) NewAllocator(mem *nativemem.Memory) nativevm.Allocator {
	t.inner = nativevm.NewFreeListAlloc(mem)
	return (*asanAlloc)(t)
}

// asanAlloc is the Tool acting as the heap allocator.
type asanAlloc Tool

func (a *asanAlloc) tool() *Tool { return (*Tool)(a) }

func (a *asanAlloc) Malloc(size int64) uint64 {
	t := a.tool()
	rz := t.opts.HeapRedzone
	raw := t.inner.Malloc(size + 2*rz)
	if raw == 0 {
		return 0
	}
	addr := raw + uint64(rz)
	t.setState(raw, rz, shadowHeapRedzone)
	t.setState(addr, size, shadowValid)
	t.setState(addr+uint64(size), rz, shadowHeapRedzone)
	t.live[addr] = size
	t.allocStacks[addr] = t.capture()
	delete(t.freeStacks, addr) // block re-allocated: old free site is stale
	return addr
}

func (a *asanAlloc) Free(addr uint64) error {
	t := a.tool()
	size, ok := t.live[addr]
	if !ok {
		if _, inQuarantine := t.freedSize[addr]; inQuarantine {
			return &core.BugError{Kind: core.DoubleFree, Access: core.Free, Mem: core.HeapMem, Func: "asan",
				AccessStack: t.capture(), AllocStack: t.allocStacks[addr], FreeStack: t.freeStacks[addr]}
		}
		return &core.BugError{Kind: core.InvalidFree, Access: core.Free, Func: "asan", AccessStack: t.capture()}
	}
	delete(t.live, addr)
	t.freedSize[addr] = size
	t.freeStacks[addr] = t.capture()
	t.setState(addr, size, shadowFreed)
	t.quarantine = append(t.quarantine, addr)
	t.quarBytes += size
	// Evict oldest blocks once over budget: their memory becomes reusable,
	// and stale pointers into them go dark (the paper's P3).
	for t.quarBytes > t.opts.QuarantineBytes && len(t.quarantine) > 0 {
		old := t.quarantine[0]
		t.quarantine = t.quarantine[1:]
		osize, ok := t.freedSize[old]
		if !ok {
			continue
		}
		delete(t.freedSize, old)
		delete(t.allocStacks, old)
		delete(t.freeStacks, old)
		t.quarBytes -= osize
		t.setState(old, osize, shadowValid)
		t.inner.Free(old - uint64(t.opts.HeapRedzone))
	}
	return nil
}

func (a *asanAlloc) SizeOf(addr uint64) (int64, bool) {
	s, ok := a.tool().live[addr]
	return s, ok
}
