package core

import (
	"encoding/binary"
	"math"
)

// Direct accessors: the tier-2 peak-performance fast path for scalar memory
// traffic. Each method performs the complete safety check inline — liveness
// (not freed / not returned), pointer-slot purity, and the exact bounds test
// — and reports ok=false when *any* condition fails, in which case the
// caller must take the generic LoadTyped/StoreTyped path, which re-executes
// the checks and produces the exact, byte-identical diagnostic the tier-0
// interpreter would.
//
// Nothing is ever elided: the fast path *is* the bounds/liveness check,
// compiled to a handful of compares instead of a type-switch plus per-byte
// loop. An object that has ever held a pointer (len(Ptrs) != 0) is excluded
// wholesale so pointer-integrity checking (paper §3.2) stays exact, as is
// any object that has been freed, so temporal errors keep their use-after-
// free/use-after-return classification and their recorded stacks.
//
// The methods are deliberately tiny so the Go compiler inlines them into the
// tier-1 closures.

// DirectI64 loads an 8-byte little-endian integer when every check passes.
func (o *Object) DirectI64(off int64) (int64, bool) {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+8 > int64(len(o.Data)) {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(o.Data[off:])), true
}

// DirectI32 loads a sign-extended 4-byte integer when every check passes.
func (o *Object) DirectI32(off int64) (int64, bool) {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+4 > int64(len(o.Data)) {
		return 0, false
	}
	return int64(int32(binary.LittleEndian.Uint32(o.Data[off:]))), true
}

// DirectI16 loads a sign-extended 2-byte integer when every check passes.
func (o *Object) DirectI16(off int64) (int64, bool) {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+2 > int64(len(o.Data)) {
		return 0, false
	}
	return int64(int16(binary.LittleEndian.Uint16(o.Data[off:]))), true
}

// DirectI8 loads a sign-extended byte when every check passes.
func (o *Object) DirectI8(off int64) (int64, bool) {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+1 > int64(len(o.Data)) {
		return 0, false
	}
	return int64(int8(o.Data[off])), true
}

// DirectF64 loads an 8-byte float when every check passes.
func (o *Object) DirectF64(off int64) (float64, bool) {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+8 > int64(len(o.Data)) {
		return 0, false
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(o.Data[off:])), true
}

// DirectF32 loads a 4-byte float when every check passes.
func (o *Object) DirectF32(off int64) (float64, bool) {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+4 > int64(len(o.Data)) {
		return 0, false
	}
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(o.Data[off:]))), true
}

// DirectPutI64 stores an 8-byte integer when every check passes.
func (o *Object) DirectPutI64(off, v int64) bool {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+8 > int64(len(o.Data)) {
		return false
	}
	binary.LittleEndian.PutUint64(o.Data[off:], uint64(v))
	return true
}

// DirectPutI32 stores a 4-byte integer when every check passes.
func (o *Object) DirectPutI32(off, v int64) bool {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+4 > int64(len(o.Data)) {
		return false
	}
	binary.LittleEndian.PutUint32(o.Data[off:], uint32(v))
	return true
}

// DirectPutI16 stores a 2-byte integer when every check passes.
func (o *Object) DirectPutI16(off, v int64) bool {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+2 > int64(len(o.Data)) {
		return false
	}
	binary.LittleEndian.PutUint16(o.Data[off:], uint16(v))
	return true
}

// DirectPutI8 stores one byte when every check passes.
func (o *Object) DirectPutI8(off, v int64) bool {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+1 > int64(len(o.Data)) {
		return false
	}
	o.Data[off] = byte(v)
	return true
}

// DirectPutF64 stores an 8-byte float when every check passes.
func (o *Object) DirectPutF64(off int64, v float64) bool {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+8 > int64(len(o.Data)) {
		return false
	}
	binary.LittleEndian.PutUint64(o.Data[off:], math.Float64bits(v))
	return true
}

// DirectPutF32 stores a 4-byte float when every check passes.
func (o *Object) DirectPutF32(off int64, v float64) bool {
	if o == nil || o.Freed || o.Strict || len(o.Ptrs) != 0 || off < 0 || off+4 > int64(len(o.Data)) {
		return false
	}
	binary.LittleEndian.PutUint32(o.Data[off:], math.Float32bits(float32(v)))
	return true
}

// InRange reports whether the half-open byte range [lo, hi) lies inside a
// live, pointer-free object — the coalesced range check used when tier-2
// fuses a run of same-object accesses. ok=false sends the caller down the
// per-access generic path, which faults (or succeeds) access by access with
// exact tier-0 diagnostics.
func (o *Object) InRange(lo, hi int64) bool {
	// lo <= hi guards against offset arithmetic that wrapped between the two
	// endpoint computations; a wrapped window must take the checked path.
	// Strict objects (vararg cells, union carriers) always take the checked
	// path so the type-identity checks run — the same wholesale exclusion
	// pointer-carrying objects get.
	return o != nil && !o.Freed && !o.Strict && len(o.Ptrs) == 0 && lo >= 0 && lo <= hi && hi <= int64(len(o.Data))
}
