package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/diag"
)

// Governor is the cross-engine execution governor: a single cancellation
// point shared by every engine of one run (the managed interpreter, the
// tier-1 compiled code, and the simulated native machine with its tools).
// Engines poll Stopped() — one atomic load — at basic-block boundaries, so
// a non-terminating program reacts to cancellation within one block.
//
// The flag is set either by the caller (context cancellation) or by the
// watchdog armed from Config.Timeout; the first Stop wins and its reason is
// what the resulting *DeadlineError carries. A nil *Governor is valid and
// means "never cancelled", so engines can keep a single code path.
type Governor struct {
	stop   atomic.Bool
	reason atomic.Pointer[string]
}

// Stop requests cooperative cancellation. The first caller's reason is
// kept; later calls are no-ops (the run is already winding down).
func (g *Governor) Stop(reason string) {
	if g == nil {
		return
	}
	if g.reason.CompareAndSwap(nil, &reason) {
		g.stop.Store(true)
	}
}

// Stopped reports whether cancellation was requested. This is the cheap
// per-block poll: a single atomic load.
func (g *Governor) Stopped() bool {
	return g != nil && g.stop.Load()
}

// Err returns the structured cancellation error, or nil if the governor
// has not been stopped.
func (g *Governor) Err() error {
	if g == nil || !g.stop.Load() {
		return nil
	}
	reason := "cancelled"
	if r := g.reason.Load(); r != nil {
		reason = *r
	}
	return &DeadlineError{Cause: reason}
}

// Watch arms the governor from a context and an optional wall-clock budget:
// whichever fires first stops the run. It returns a release function that
// must be called when the run finishes (normally via defer); releasing
// tears the watchdog goroutine down without stopping the governor.
//
// With a background context and zero timeout no goroutine is started and
// the release function is a no-op — uncancellable runs stay zero-cost.
func (g *Governor) Watch(ctx context.Context, timeout time.Duration) (release func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && timeout <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var timer <-chan time.Time
	var tstop *time.Timer
	if timeout > 0 {
		tstop = time.NewTimer(timeout)
		timer = tstop.C
	}
	go func() {
		defer func() {
			if tstop != nil {
				tstop.Stop()
			}
		}()
		select {
		case <-ctx.Done():
			g.Stop(fmt.Sprintf("context cancelled (%v)", context.Cause(ctx)))
		case <-timer:
			g.Stop(fmt.Sprintf("wall-clock timeout after %v", timeout))
		case <-done:
		}
	}()
	return func() { close(done) }
}

// DeadlineError reports that a run was cancelled cooperatively: the
// wall-clock budget expired or the caller's context was cancelled. It is
// distinct from *LimitError (a deterministic step-budget exhaustion) so
// harnesses can classify the two outcomes separately, but both mean "the
// program did not terminate within its budget".
type DeadlineError struct {
	Cause string
}

func (e *DeadlineError) Error() string { return "execution deadline exceeded: " + e.Cause }

// InternalError is a contained engine panic: a bug in the interpreter, the
// tier-1 compiler, or the simulated machine — never in the guest program.
// RunModule's recovery boundary converts panics into this error so one bad
// case cannot kill a whole evaluation matrix mid-run.
type InternalError struct {
	Panic any
	Stack string
	// Msg describes an internal fault detected without panicking (reached
	// unreachable, invalid opcode, unknown function). Structured this way,
	// panic containment and explicit internal faults share one error path
	// and one diagnostics surface.
	Msg string
	// Guest is the guest program's call stack at the internal fault, when
	// the engine had one (explicit faults do; contained panics may not).
	Guest diag.Stack
}

func (e *InternalError) Error() string {
	if e.Msg != "" {
		return "internal engine error: " + e.Msg
	}
	return fmt.Sprintf("internal engine error: panic: %v", e.Panic)
}
