package core

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/ir"
)

// newTestEngine builds an engine over a trivial module so allocation entry
// points can be unit-tested without the C front end.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	m := buildModule(t, `module "t"
func @main fn() i32 regs 1 {
entry:
  ret i32 0
}
`)
	e, err := NewEngine(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAllocAutoNegativeSizeClamped pins the alloca clamp: a negative size
// (a miscomputed dynamic array length) yields a zero-size object instead of
// panicking the engine, and any access to it is an out-of-bounds bug.
func TestAllocAutoNegativeSizeClamped(t *testing.T) {
	e := newTestEngine(t, Config{})
	p, err := e.AllocAuto(nil, -1, "buf", ir.I8, "", "main", 1)
	if err != nil {
		t.Fatalf("AllocAuto(-1): %v", err)
	}
	if p.Obj == nil || p.Obj.Size() != 0 {
		t.Fatalf("AllocAuto(-1) = %+v, want zero-size object", p.Obj)
	}
	if be := p.Obj.StoreInt(0, 1, 'x', Write); be == nil {
		t.Fatal("store into zero-size object must be out of bounds")
	}
}

// TestAllocAutoBudgetExhaustion pins the hard stack-denial path: an alloca
// that exceeds the heap budget returns a *ResourceError naming the stack.
func TestAllocAutoBudgetExhaustion(t *testing.T) {
	e := newTestEngine(t, Config{MaxHeapBytes: 64})
	fr := &Frame{}
	if _, err := e.AllocAuto(fr, 32, "small", ir.I8, "", "main", 1); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if fr.stackBytes != 32 {
		t.Fatalf("frame charged %d bytes, want 32", fr.stackBytes)
	}
	_, err := e.AllocAuto(fr, 64, "big", ir.I8, "", "main", 2)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("over budget: got %v, want *ResourceError", err)
	}
	if re.Resource != "stack" || re.Limit != 64 {
		t.Fatalf("ResourceError = %+v, want stack/limit 64", re)
	}
	// Releasing the frame's bytes returns them to the budget.
	e.mem.ReleaseFixed(fr.stackBytes)
	if _, err := e.AllocAuto(&Frame{}, 48, "retry", ir.I8, "", "main", 3); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestHeapDenialIsSoft pins the soft path: AllocHeap under an exhausted
// budget or an injected fault returns the NULL pointer, never an error.
func TestHeapDenialIsSoft(t *testing.T) {
	e := newTestEngine(t, Config{MaxHeapBytes: 64})
	p := e.AllocHeap(48, "malloc")
	if p.IsNull() {
		t.Fatal("within budget: got NULL")
	}
	if q := e.AllocHeap(48, "malloc"); !q.IsNull() {
		t.Fatal("over budget: want NULL")
	}
	e.mem.Release(48)

	e2 := newTestEngine(t, Config{FaultPlan: fault.Plan{FailNth: 1}})
	if p := e2.AllocHeap(8, "malloc"); !p.IsNull() {
		t.Fatal("injected attempt 1: want NULL")
	}
	if p := e2.AllocHeap(8, "malloc"); p.IsNull() {
		t.Fatal("attempt 2: want success")
	}
	st := e2.MemStats()
	if st.InjectedFaults != 1 || st.HeapAllocs != 1 || st.HeapAttempts != 2 {
		t.Fatalf("stats = %+v, want 1 injected / 1 alloc / 2 attempts", st)
	}
}
