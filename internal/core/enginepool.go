package core

import (
	"sync"

	"repro/internal/ir"
)

// EnginePool recycles finished engines keyed by the module they execute.
// Constructing an engine repeats work that is a pure function of the module
// — binding the builtin table, laying out and initializing every global in
// the linked libc image — so drivers that run one module many times (the
// FailNth sweep, tier-parity triples, perfbench sample loops) pay that
// layout once and Reset thereafter. Get falls back to NewEngine on an empty
// pool or a failed Reset, so a pool is never less correct than cold
// construction, only faster; the warm-vs-cold parity suite pins that the
// two are byte-identical.
type EnginePool struct {
	mu    sync.Mutex
	idle  map[*ir.Module][]*Engine
	order []*Engine // park order across all modules, oldest first
	limit int       // max idle engines retained per module

	hits   uint64
	misses uint64
}

// globalIdleFactor bounds the pool's total idle population at
// globalIdleFactor × the per-module limit, evicting the oldest parked
// engine first. Without the global bound a campaign of unique modules
// (every generated program is its own *ir.Module, never run again) would
// park an engine — and pin its guest heap — per program, and the growing
// live set turns the pool from a cache into a leak: GC scan time eats more
// than engine reuse saves.
const globalIdleFactor = 4

// NewEnginePool returns a pool retaining at most perModule idle engines per
// module (0 means a small default) and globalIdleFactor× that many in total.
func NewEnginePool(perModule int) *EnginePool {
	if perModule <= 0 {
		perModule = 4
	}
	return &EnginePool{idle: make(map[*ir.Module][]*Engine), limit: perModule}
}

// Get returns an engine for mod configured per cfg: a pooled engine reset
// in place when one is idle, otherwise a newly constructed one. A Reset
// failure discards the stale engine and retries cold, so callers see
// exactly NewEngine's error behavior.
func (p *EnginePool) Get(mod *ir.Module, cfg Config) (*Engine, error) {
	p.mu.Lock()
	var e *Engine
	if q := p.idle[mod]; len(q) > 0 {
		e = q[len(q)-1]
		q[len(q)-1] = nil
		p.idle[mod] = q[:len(q)-1]
		p.unorder(e)
	}
	p.mu.Unlock()
	if e != nil {
		if err := e.Reset(cfg); err == nil {
			p.mu.Lock()
			p.hits++
			p.mu.Unlock()
			return e, nil
		}
		// Half-reset engines are unusable; drop and construct cold.
		e.Close()
	}
	p.mu.Lock()
	p.misses++
	p.mu.Unlock()
	return NewEngine(mod, cfg)
}

// Put returns a finished engine to the pool. The engine must be done: the
// caller has read everything it needs (output, stats, leaks, diagnostics)
// and no goroutine still references it. Put closes the engine (stopping any
// background compile pool) before parking it; over-limit engines are simply
// dropped for the collector.
func (p *EnginePool) Put(e *Engine) {
	if e == nil {
		return
	}
	e.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.idle[e.mod]
	if len(q) >= p.limit {
		return
	}
	p.idle[e.mod] = append(q, e)
	p.order = append(p.order, e)
	if len(p.order) > globalIdleFactor*p.limit {
		victim := p.order[0]
		p.order[0] = nil
		p.order = p.order[1:]
		vq := p.idle[victim.mod]
		for i, cand := range vq {
			if cand == victim {
				copy(vq[i:], vq[i+1:])
				vq[len(vq)-1] = nil
				vq = vq[:len(vq)-1]
				break
			}
		}
		if len(vq) == 0 {
			delete(p.idle, victim.mod)
		} else {
			p.idle[victim.mod] = vq
		}
	}
}

// Release drops every idle engine parked for mod. Drivers that retire a
// module for good — the fuzzing-campaign judge, which never runs a generated
// program again after its verdict — call it so dead engines (and the guest
// heaps they pin) do not ride the pool until global eviction reaches them.
// Engines currently checked out are unaffected; they are simply not re-parked
// usefully, and the global bound reclaims them.
func (p *EnginePool) Release(mod *ir.Module) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.idle[mod]
	if q == nil {
		return
	}
	delete(p.idle, mod)
	for _, e := range q {
		p.unorder(e)
	}
}

// unorder removes e from the park-order queue (caller holds p.mu).
func (p *EnginePool) unorder(e *Engine) {
	for i, cand := range p.order {
		if cand == e {
			copy(p.order[i:], p.order[i+1:])
			p.order[len(p.order)-1] = nil
			p.order = p.order[:len(p.order)-1]
			return
		}
	}
}

// EnginePoolStats is a point-in-time snapshot of pool effectiveness.
type EnginePoolStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Idle   int    `json:"idle"`
}

// Stats returns the pool's hit/miss counters and current idle population.
func (p *EnginePool) Stats() EnginePoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, q := range p.idle {
		idle += len(q)
	}
	return EnginePoolStats{Hits: p.hits, Misses: p.misses, Idle: idle}
}

// Reset empties the pool and zeroes its counters (cold-start benchmarking).
func (p *EnginePool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle = make(map[*ir.Module][]*Engine)
	p.order = nil
	p.hits, p.misses = 0, 0
}
