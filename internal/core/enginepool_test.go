package core

import (
	"testing"

	"repro/internal/ir"
)

// poolModSrc exercises enough engine state to make a sloppy Reset visible:
// heap allocation, stdout, and a mutated global.
const poolModSrc = `module "pool"
global @g i64 = int 7
declare @malloc fn(i64) ptr
declare @free fn(ptr) void
func @main fn() i32 regs 6 {
entry:
  %r0 = load i64, @g
  %r1 = add i64 %r0, 1
  store i64 %r1, @g
  %r2 = call ptr &malloc(i64 16) fixed 1
  call void &free(ptr %r2) fixed 1
  %r3 = trunc i64 %r1 to i32
  ret i32 %r3
}
`

// TestEnginePoolResetReuse pins the pool's contract: a parked engine comes
// back Reset — and a run on it is indistinguishable from a run on a fresh
// engine (exit code, Steps, Calls), including the mutated-global rollback.
func TestEnginePoolResetReuse(t *testing.T) {
	m := buildModule(t, poolModSrc)
	p := NewEnginePool(0)

	e1, err := p.Get(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	code1, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	stats1 := e1.Stats()
	p.Put(e1)

	if st := p.Stats(); st.Misses != 1 || st.Hits != 0 || st.Idle != 1 {
		t.Fatalf("after first cycle: %+v, want 1 miss, 0 hits, 1 idle", st)
	}

	e2, err := p.Get(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1 {
		t.Fatal("pool built a new engine while one was parked")
	}
	if st := p.Stats(); st.Hits != 1 || st.Idle != 0 {
		t.Fatalf("after reuse get: %+v, want 1 hit, 0 idle", st)
	}
	code2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	stats2 := e2.Stats()
	p.Put(e2)

	// The global @g was incremented by run 1; Reset must have rolled it back
	// or the second run would exit 9, run more steps, or both.
	if code2 != code1 {
		t.Fatalf("reused engine exited %d, fresh exited %d", code2, code1)
	}
	if stats2.Steps != stats1.Steps || stats2.Calls != stats1.Calls {
		t.Fatalf("reused engine ran %d steps/%d calls, fresh ran %d/%d",
			stats2.Steps, stats2.Calls, stats1.Steps, stats1.Calls)
	}
}

// TestEnginePoolIdleLimit pins the per-module retention bound: parking more
// engines than the limit drops the surplus instead of growing without bound.
func TestEnginePoolIdleLimit(t *testing.T) {
	m := buildModule(t, poolModSrc)
	const limit = 2
	p := NewEnginePool(limit)

	engs := make([]*Engine, limit+2)
	for i := range engs {
		e, err := p.Get(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		engs[i] = e
	}
	for _, e := range engs {
		p.Put(e)
	}
	if st := p.Stats(); st.Idle != limit {
		t.Fatalf("pool retains %d idle engines, limit is %d", st.Idle, limit)
	}

	p.Reset()
	if st := p.Stats(); st.Idle != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Reset left state behind: %+v", st)
	}
}

// TestEnginePoolRelease pins the retire path: releasing a module drops its
// idle engines (and their park-order slots) while other modules' engines
// stay parked, and a post-release Get simply constructs cold.
func TestEnginePoolRelease(t *testing.T) {
	m1 := buildModule(t, poolModSrc)
	m2 := buildModule(t, poolModSrc)
	p := NewEnginePool(2)

	for _, m := range []*ir.Module{m1, m2} {
		e, err := p.Get(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		p.Put(e)
	}
	if st := p.Stats(); st.Idle != 2 {
		t.Fatalf("setup parked %d engines, want 2", st.Idle)
	}

	p.Release(m1)
	if st := p.Stats(); st.Idle != 1 {
		t.Fatalf("release left %d idle engines, want 1 (m2's)", st.Idle)
	}
	p.mu.Lock()
	orderLen, m1Idle := len(p.order), len(p.idle[m1])
	p.mu.Unlock()
	if orderLen != 1 || m1Idle != 0 {
		t.Fatalf("release left order=%d idle[m1]=%d, want 1 and 0", orderLen, m1Idle)
	}

	// Releasing an unknown module is a no-op.
	p.Release(buildModule(t, poolModSrc))
	if st := p.Stats(); st.Idle != 1 {
		t.Fatalf("no-op release dropped engines: %+v", p.Stats())
	}

	// A released module still runs — the next Get is just a cold miss.
	e, err := p.Get(m1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if code, err := e.Run(); err != nil || code != 8 {
		t.Fatalf("post-release run: code=%d err=%v, want 8", code, err)
	}
	p.Put(e)
	if st := p.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("post-release stats %+v, want 3 misses (2 setup + 1 cold)", st)
	}
}
