package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// buildModule parses SIR text (tests drive the engine without the C front
// end, pinning down engine semantics in isolation).
func buildModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestEngineArithmeticProgram(t *testing.T) {
	m := buildModule(t, `module "t"
func @main fn() i32 regs 4 {
entry:
  %r0 = add i32 2, 3
  %r1 = mul i32 %r0, 4
  %r2 = sub i32 %r1, 6
  ret i32 %r2
}
`)
	e, err := NewEngine(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 14 {
		t.Errorf("exit = %d, want 14", code)
	}
}

func TestEngineAllocaLoadStore(t *testing.T) {
	m := buildModule(t, `module "t"
func @main fn() i32 regs 4 {
entry:
  %r0 = alloca [4 x i32] name "v"
  %r1 = gep %r0, 4, 2
  store i32 77, %r1
  %r2 = load i32, %r1
  ret i32 %r2
}
`)
	e, _ := NewEngine(m, Config{})
	code, err := e.Run()
	if err != nil || code != 77 {
		t.Errorf("got (%d, %v)", code, err)
	}
}

func TestEngineOutOfBoundsReport(t *testing.T) {
	m := buildModule(t, `module "t"
func @main fn() i32 regs 3 {
entry:
  %r0 = alloca [4 x i32] name "v"
  %r1 = gep %r0, 4, 4
  %r2 = load i32, %r1
  ret i32 %r2
}
`)
	e, _ := NewEngine(m, Config{})
	_, err := e.Run()
	be, ok := err.(*BugError)
	if !ok {
		t.Fatalf("expected BugError, got %v", err)
	}
	if be.Kind != OutOfBounds || be.Obj != "v" || be.Off != 16 || be.ObjSize != 16 {
		t.Errorf("report fields wrong: %+v", be)
	}
}

func TestEngineDivideByZero(t *testing.T) {
	m := buildModule(t, `module "t"
func @main fn() i32 regs 2 {
entry:
  %r0 = add i32 0, 0
  %r1 = sdiv i32 7, %r0
  ret i32 %r1
}
`)
	e, _ := NewEngine(m, Config{})
	_, err := e.Run()
	be, ok := err.(*BugError)
	if !ok || be.Kind != DivideByZero {
		t.Errorf("want DivideByZero, got %v", err)
	}
}

func TestEngineCallDepthLimit(t *testing.T) {
	m := buildModule(t, `module "t"
func @loop fn() i32 regs 1 {
entry:
  %r0 = call i32 &loop() fixed 0
  ret i32 %r0
}
func @main fn() i32 regs 1 {
entry:
  %r0 = call i32 &loop() fixed 0
  ret i32 %r0
}
`)
	e, _ := NewEngine(m, Config{MaxCallDepth: 64})
	_, err := e.Run()
	if _, ok := err.(*LimitError); !ok {
		t.Errorf("want LimitError (stack overflow), got %v", err)
	}
}

func TestEngineStepLimit(t *testing.T) {
	m := buildModule(t, `module "t"
func @main fn() i32 regs 1 {
entry:
  br entry
}
`)
	// An IR-level infinite loop needs a terminator target; single-block
	// self-loop suffices.
	e, _ := NewEngine(m, Config{MaxSteps: 1000})
	_, err := e.Run()
	if _, ok := err.(*LimitError); !ok {
		t.Errorf("want LimitError, got %v", err)
	}
}

func TestEngineGlobalInitializers(t *testing.T) {
	m := buildModule(t, `module "t"
global @nums [3 x i32] = array [int 5, int 6, int 7]
global @msg const [3 x i8] = bytes "ab\x00"
global @ptr ptr = addr @nums + 4
func @main fn() i32 regs 4 {
entry:
  %r0 = load ptr, @ptr
  %r1 = load i32, %r0
  ret i32 %r1
}
`)
	e, _ := NewEngine(m, Config{})
	code, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 6 {
		t.Errorf("exit = %d, want 6 (through the global pointer)", code)
	}
	if e.Global("msg") == nil || e.Global("msg").Data[0] != 'a' {
		t.Error("byte global not initialized")
	}
}

func TestEngineExitCodePropagation(t *testing.T) {
	m := buildModule(t, `module "t"
declare @exit fn(i32) void
func @main fn() i32 regs 1 {
entry:
  call void &exit(i32 9) fixed 1
  ret i32 0
}
`)
	e, _ := NewEngine(m, Config{})
	code, err := e.Run()
	if err != nil || code != 9 {
		t.Errorf("got (%d, %v), want (9, nil)", code, err)
	}
}

func TestEngineLeakDetection(t *testing.T) {
	m := buildModule(t, `module "t"
declare @malloc fn(i64) ptr
declare @free fn(ptr) void
func @main fn() i32 regs 3 {
entry:
  %r0 = call ptr &malloc(i64 16) fixed 1
  %r1 = call ptr &malloc(i64 32) fixed 1
  call void &free(ptr %r1) fixed 1
  ret i32 0
}
`)
	e, _ := NewEngine(m, Config{DetectLeaks: true})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	leaks := e.Leaks()
	if len(leaks) != 1 || leaks[0].ObjSize != 16 {
		t.Errorf("leaks = %v, want one 16-byte leak", leaks)
	}
}

func TestEngineStats(t *testing.T) {
	m := buildModule(t, `module "t"
func @helper fn(i32) i32 regs 2 {
entry:
  %r1 = add i32 %r0, 1
  ret i32 %r1
}
func @main fn() i32 regs 2 {
entry:
  %r0 = call i32 &helper(i32 1) fixed 1
  %r1 = call i32 &helper(i32 %r0) fixed 1
  ret i32 %r1
}
`)
	e, _ := NewEngine(m, Config{})
	code, err := e.Run()
	if err != nil || code != 3 {
		t.Fatalf("got (%d, %v)", code, err)
	}
	s := e.Stats()
	if s.Calls < 3 || s.Steps == 0 {
		t.Errorf("stats look wrong: %+v", s)
	}
}

func TestEngineStdoutCapture(t *testing.T) {
	m := buildModule(t, `module "t"
declare @__ss_putchar fn(i32) i32
func @main fn() i32 regs 1 {
entry:
  %r0 = call i32 &__ss_putchar(i32 104) fixed 1
  %r0 = call i32 &__ss_putchar(i32 105) fixed 1
  ret i32 0
}
`)
	e, _ := NewEngine(m, Config{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Output() != "hi" {
		t.Errorf("output = %q", e.Output())
	}
}

func TestEngineStdinEOF(t *testing.T) {
	m := buildModule(t, `module "t"
declare @__ss_getchar fn() i32
func @main fn() i32 regs 1 {
entry:
  %r0 = call i32 &__ss_getchar() fixed 0
  ret i32 %r0
}
`)
	e, _ := NewEngine(m, Config{Stdin: strings.NewReader("")})
	code, _ := e.Run()
	if code != -1 {
		t.Errorf("EOF should read -1, got %d", code)
	}
}

func TestEngineUnresolvedExternalFailsOnlyWhenCalled(t *testing.T) {
	m := buildModule(t, `module "t"
declare @mystery fn() i32
func @main fn() i32 regs 1 {
entry:
  ret i32 0
}
`)
	e, err := NewEngine(m, Config{})
	if err != nil {
		t.Fatalf("declaring an unknown external must not fail engine construction: %v", err)
	}
	if code, err := e.Run(); err != nil || code != 0 {
		t.Errorf("got (%d, %v)", code, err)
	}
	m2 := buildModule(t, `module "t"
declare @mystery fn() i32
func @main fn() i32 regs 1 {
entry:
  %r0 = call i32 &mystery() fixed 0
  ret i32 %r0
}
`)
	e2, _ := NewEngine(m2, Config{})
	if _, err := e2.Run(); err == nil {
		t.Error("calling an unresolved external must fail")
	}
}

func TestBoxVarArgSizes(t *testing.T) {
	m := buildModule(t, `module "t"
func @main fn() i32 regs 1 { entry: ret i32 0 }
`)
	e, _ := NewEngine(m, Config{})
	cell := e.BoxVarArg(ir.I32, IntValue(42), 0)
	if cell.Obj.Size() != 4 {
		t.Errorf("i32 cell size = %d", cell.Obj.Size())
	}
	if _, be := cell.Obj.LoadInt(0, 8, Read); be == nil {
		t.Error("reading an i32 cell with 8 bytes must be out of bounds (Fig. 12)")
	}
	fcell := e.BoxVarArg(ir.F64, FloatValue(2.5), 1)
	v, be := fcell.Obj.LoadFloat(0, 64, Read)
	if be != nil || v != 2.5 {
		t.Errorf("f64 cell: %v %v", v, be)
	}
	pcell := e.BoxVarArg(ir.BytePtr, PtrValue(cell), 2)
	p, be := pcell.Obj.LoadPtr(0, Read)
	if be != nil || p.Obj != cell.Obj {
		t.Errorf("ptr cell round trip failed")
	}
}
