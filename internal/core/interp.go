package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/memdesc"
)

// interpret is the tier-0 execution engine: a straightforward block/
// instruction interpreter. Hot functions move to tier 1 (internal/jit).
func (e *Engine) interpret(fr *Frame) (Value, error) {
	f := fr.Fn
	blk := 0
	ii := 0
	for {
		e.steps++
		if e.steps > e.maxSteps {
			return Value{}, &LimitError{What: fmt.Sprintf("%d interpreter steps", e.maxSteps)}
		}
		if ii == 0 && e.gov.Stopped() {
			// Cancellation point: polled once per basic block entered, so a
			// non-terminating loop reacts within one block (tentpole #2).
			return Value{}, e.gov.Err()
		}
		in := &f.Blocks[blk].Instrs[ii]
		switch in.Op {
		case ir.OpAlloca:
			count := int64(1)
			if cnt, ok := in.CountOp(); ok {
				count = e.operand(fr, cnt).I
			}
			size := in.Ty.Size() * count
			p, aerr := e.AllocAuto(fr, size, in.Name, in.Ty, in.CType, f.Name, in.Line)
			if aerr != nil {
				return Value{}, aerr
			}
			e.TrackAuto(fr, p)
			fr.Regs[in.Dst] = PtrValue(p)

		case ir.OpLoad:
			v, be := e.LoadTyped(e.operand(fr, in.Addr).P, in.Ty)
			if be != nil {
				return Value{}, e.located(be, f.Name, in.Line)
			}
			fr.Regs[in.Dst] = v

		case ir.OpStore:
			if be := e.StoreTyped(e.operand(fr, in.Addr).P, in.Ty, e.operand(fr, in.A)); be != nil {
				return Value{}, e.located(be, f.Name, in.Line)
			}

		case ir.OpGEP:
			base := e.operand(fr, in.Addr).P
			idx := e.operand(fr, in.A).I
			fr.Regs[in.Dst] = PtrValue(base.Add(in.Stride * idx))

		case ir.OpBin:
			a, b := e.operand(fr, in.A), e.operand(fr, in.B)
			if in.Bin.IsFloatOp() {
				bits := 64
				if ft, ok := in.Ty.(*ir.FloatType); ok {
					bits = ft.Bits
				}
				fr.Regs[in.Dst] = FloatValue(ir.EvalFloatBin(in.Bin, bits, a.F, b.F))
			} else {
				v, ok := ir.EvalIntBin(in.Bin, intBits(in.Ty), a.I, b.I)
				if !ok {
					return Value{}, e.located(&BugError{Kind: DivideByZero}, f.Name, in.Line)
				}
				fr.Regs[in.Dst] = IntValue(v)
			}

		case ir.OpCmp:
			a, b := e.operand(fr, in.A), e.operand(fr, in.B)
			var r bool
			switch {
			case in.Pred.IsFloatPred():
				r = ir.EvalFloatCmp(in.Pred, a.F, b.F)
			case ir.IsPtr(in.Ty):
				r = EvalPtrCmp(in.Pred, a.P, b.P)
			default:
				r = ir.EvalIntCmp(in.Pred, intBits(in.Ty), a.I, b.I)
			}
			fr.Regs[in.Dst] = IntValue(b2i(r))

		case ir.OpCast:
			if in.CType != "" && in.Cast == ir.Bitcast {
				// Checked pointer cast: validate the cast target against the
				// pointee's effective type (adopting one for fresh heap
				// blocks), then move the pointer through unchanged.
				v := e.operand(fr, in.A)
				if be := e.CheckCast(v.P, in); be != nil {
					return Value{}, e.located(be, f.Name, in.Line)
				}
				fr.Regs[in.Dst] = v
			} else {
				fr.Regs[in.Dst] = e.evalCast(in, e.operand(fr, in.A))
			}

		case ir.OpSelect:
			if e.operand(fr, in.A).I != 0 {
				fr.Regs[in.Dst] = e.operand(fr, in.B)
			} else {
				fr.Regs[in.Dst] = e.operand(fr, in.C)
			}

		case ir.OpCall:
			ret, err := e.execCall(fr, in)
			if err != nil {
				return Value{}, err
			}
			if in.Dst >= 0 {
				fr.Regs[in.Dst] = ret
			}

		case ir.OpBr:
			// Backward branches are the OSR profile points: a hot back edge
			// transfers this live frame into compiled code at the loop
			// header, and a deopt transfers it back to the exact
			// (block, instruction) the guard protected. The probe runs only
			// with OSR configured, so tier-0 pays one boolean test.
			if e.osrOn && in.Blk0 <= blk {
				if cf := e.tryOSR(fr, in.Blk0); cf != nil {
					e.stats.OSREntries++
					ret, terr := cf(e, fr)
					if de, ok := terr.(*DeoptError); ok {
						e.deopted(fr, in.Blk0, de)
						blk, ii = de.Blk, de.Instr
						continue
					}
					return ret, terr
				}
			}
			blk, ii = in.Blk0, 0
			continue

		case ir.OpCondBr:
			t := in.Blk1
			if e.operand(fr, in.A).I != 0 {
				t = in.Blk0
			}
			if e.osrOn && t <= blk {
				if cf := e.tryOSR(fr, t); cf != nil {
					e.stats.OSREntries++
					ret, terr := cf(e, fr)
					if de, ok := terr.(*DeoptError); ok {
						e.deopted(fr, t, de)
						blk, ii = de.Blk, de.Instr
						continue
					}
					return ret, terr
				}
			}
			blk, ii = t, 0
			continue

		case ir.OpSwitch:
			v := e.operand(fr, in.A).I
			t := in.Blk0
			for _, c := range in.Cases {
				if c.Val == v {
					t = c.Blk
					break
				}
			}
			if e.osrOn && t <= blk {
				if cf := e.tryOSR(fr, t); cf != nil {
					e.stats.OSREntries++
					ret, terr := cf(e, fr)
					if de, ok := terr.(*DeoptError); ok {
						e.deopted(fr, t, de)
						blk, ii = de.Blk, de.Instr
						continue
					}
					return ret, terr
				}
			}
			blk, ii = t, 0
			continue

		case ir.OpRet:
			if in.A.Kind == ir.OperNone {
				return Value{}, nil
			}
			return e.operand(fr, in.A), nil

		case ir.OpUnreachable:
			// Internal faults are structured, not bare strings, so panic
			// containment and diagnostics share one error path. The message
			// is tier-neutral: the tier-1 compiler emits the identical one.
			return Value{}, &InternalError{
				Msg:   fmt.Sprintf("reached unreachable in %s", f.Name),
				Guest: e.CaptureStack(f.Name, in.Line),
			}

		default:
			return Value{}, &InternalError{
				Msg:   fmt.Sprintf("invalid opcode %d in %s", in.Op, f.Name),
				Guest: e.CaptureStack(f.Name, in.Line),
			}
		}
		ii++
	}
}

// execCall evaluates a call instruction: resolving the callee, boxing
// variadic arguments into managed cells, and dispatching.
func (e *Engine) execCall(fr *Frame, in *ir.Instr) (Value, error) {
	var idx int
	switch in.Callee.Kind {
	case ir.OperFunc:
		idx = e.mod.FuncIndex(in.Callee.Sym)
	default:
		p := e.operand(fr, in.Callee).P
		if p.IsNull() {
			return Value{}, e.located(&BugError{Kind: NullDeref, Access: CallAccess}, fr.Fn.Name, in.Line)
		}
		if !p.IsFunc() {
			return Value{}, e.located(&BugError{
				Kind: TypeViolation, Access: CallAccess, Mem: p.Obj.Mem, Obj: p.Obj.Name,
			}, fr.Fn.Name, in.Line)
		}
		idx = p.FuncIndex()
	}
	if idx < 0 || idx >= len(e.mod.Funcs) {
		return Value{}, &InternalError{
			Msg:   fmt.Sprintf("call to unknown function in %s", fr.Fn.Name),
			Guest: e.CaptureStack(fr.Fn.Name, in.Line),
		}
	}
	callee := e.mod.Funcs[idx]

	nFixed := in.FixedArgs
	if nFixed > len(in.Args) {
		nFixed = len(in.Args)
	}
	args := make([]Value, 0, nFixed)
	for i := 0; i < nFixed; i++ {
		args = append(args, e.operand(fr, in.Args[i]))
	}
	// The call edge is pushed before variadic boxing so the cells' recorded
	// allocation stacks name this call site, and before builtin dispatch so
	// faults inside malloc/free/memcpy capture the caller. The tier-1
	// compiled call sequence mirrors this ordering exactly.
	e.PushCall(fr.Fn.Name, in.Line)
	defer e.PopCall()
	var cells []Pointer
	if len(in.Args) > nFixed {
		cells = make([]Pointer, 0, len(in.Args)-nFixed)
		for i := nFixed; i < len(in.Args); i++ {
			v := e.operand(fr, in.Args[i])
			cells = append(cells, e.BoxVarArg(in.Args[i].Ty, v, i-nFixed))
		}
	}
	// Builtins that need the caller's frame (count_varargs/get_vararg) are
	// handled by invoke via the frame we thread through builtins.
	if b := e.builtins[idx]; b != nil {
		e.stats.Calls++
		return b(e, fr, args)
	}
	ret, err := e.invoke(idx, args, cells)
	if err != nil {
		return Value{}, err
	}
	_ = callee
	return ret, nil
}

// LoadTyped performs a checked, typed load through a managed pointer.
func (e *Engine) LoadTyped(p Pointer, ty ir.Type) (Value, *BugError) {
	if p.IsNull() {
		return Value{}, &BugError{Kind: NullDeref, Access: Read, Off: p.Off, Size: ty.Size()}
	}
	if p.IsFunc() {
		return Value{}, &BugError{Kind: TypeViolation, Access: Read, Size: ty.Size()}
	}
	switch t := ty.(type) {
	case *ir.FloatType:
		f, be := p.Obj.LoadFloat(p.Off, t.Bits, Read)
		if be != nil {
			return Value{}, be
		}
		// Type-identity checks fire only after a fully valid access, so
		// spatial/temporal errors keep their exact classification.
		if p.Obj.Strict {
			if be := p.Obj.typedReadCheck(p.Off, int64(t.Bits/8), memdesc.Float); be != nil {
				return Value{}, be
			}
		}
		return FloatValue(f), nil
	case *ir.PtrType:
		q, be := p.Obj.LoadPtr(p.Off, Read)
		if be != nil {
			return Value{}, be
		}
		return PtrValue(q), nil
	default:
		v, be := p.Obj.LoadInt(p.Off, ty.Size(), Read)
		if be != nil {
			return Value{}, be
		}
		if p.Obj.Strict {
			if be := p.Obj.typedReadCheck(p.Off, ty.Size(), memdesc.Int); be != nil {
				return Value{}, be
			}
		}
		if it, ok := ty.(*ir.IntType); ok && it.Bits%8 != 0 {
			v = ir.SignExtend(v, it.Bits)
		}
		return IntValue(v), nil
	}
}

// StoreTyped performs a checked, typed store through a managed pointer.
func (e *Engine) StoreTyped(p Pointer, ty ir.Type, v Value) *BugError {
	if p.IsNull() {
		return &BugError{Kind: NullDeref, Access: Write, Off: p.Off, Size: ty.Size()}
	}
	if p.IsFunc() {
		return &BugError{Kind: TypeViolation, Access: Write, Size: ty.Size()}
	}
	switch t := ty.(type) {
	case *ir.FloatType:
		if be := p.Obj.StoreFloat(p.Off, t.Bits, v.F, Write); be != nil {
			return be
		}
		if p.Obj.Strict {
			p.Obj.noteTypedStore(p.Off, int64(t.Bits/8), memdesc.Float)
		}
		return nil
	case *ir.PtrType:
		return p.Obj.StorePtr(p.Off, v.P, Write)
	default:
		if be := p.Obj.StoreInt(p.Off, ty.Size(), v.I, Write); be != nil {
			return be
		}
		if p.Obj.Strict {
			p.Obj.noteTypedStore(p.Off, ty.Size(), memdesc.Int)
		}
		return nil
	}
}

// evalCast applies a cast instruction to a value.
func (e *Engine) evalCast(in *ir.Instr, a Value) Value {
	switch in.Cast {
	case ir.PtrToInt:
		// Pointers have no numeric address in the managed model; expose a
		// stable per-object token so round-tripping and hashing behave.
		return IntValue(PointerToken(a.P))
	case ir.IntToPtr:
		if a.I == 0 {
			return PtrValue(Pointer{})
		}
		// Forging pointers from integers is unsupported (paper §5, tagged
		// pointers). The resulting pointer is poisoned: any dereference is
		// a type violation because it has no object.
		return PtrValue(Pointer{Fn: 0, Obj: nil, Off: a.I})
	case ir.Bitcast:
		return a
	}
	i, fres, isF := ir.EvalCast(in.Cast, intBits(in.Ty), intBits(in.Ty2), a.I, a.F)
	if isF {
		return FloatValue(fres)
	}
	return IntValue(i)
}

// PointerToken derives a deterministic integer from a pointer (used for
// ptrtoint, alignment tricks, and pointer hashing in user code).
func PointerToken(p Pointer) int64 {
	if p.IsNull() {
		return 0
	}
	if p.IsFunc() {
		return int64(p.Fn) << 4
	}
	return p.Obj.ID<<20 + p.Off + 0x10000
}

// EvalPtrCmp compares managed pointers (exported for the tier-1 compiler).
func EvalPtrCmp(pred ir.Pred, a, b Pointer) bool {
	switch pred {
	case ir.Eq:
		return a.Equal(b)
	case ir.Ne:
		return !a.Equal(b)
	}
	ai, ao := a.OrderKey()
	bi, bo := b.OrderKey()
	less := ai < bi || ai == bi && ao < bo
	eq := a.Equal(b)
	switch pred {
	case ir.Ult, ir.Slt:
		return less
	case ir.Ule, ir.Sle:
		return less || eq
	case ir.Ugt, ir.Sgt:
		return !less && !eq
	case ir.Uge, ir.Sge:
		return !less
	}
	return false
}

// operand resolves an instruction operand against a frame.
func (e *Engine) operand(fr *Frame, o ir.Operand) Value {
	switch o.Kind {
	case ir.OperReg:
		return fr.Regs[o.Reg]
	case ir.OperConstInt:
		return IntValue(o.Int)
	case ir.OperConstFloat:
		return FloatValue(o.Flt)
	case ir.OperGlobal:
		return PtrValue(Pointer{Obj: e.globals[o.Sym]})
	case ir.OperFunc:
		return PtrValue(FuncPointer(e.mod.FuncIndex(o.Sym)))
	case ir.OperNull:
		return PtrValue(Pointer{})
	}
	return Value{}
}

// Operand exposes operand resolution to the tier-1 compiler.
func (e *Engine) Operand(fr *Frame, o ir.Operand) Value { return e.operand(fr, o) }

// located fills function/line context into a bug report (see Located).
func (e *Engine) located(be *BugError, fn string, line int) *BugError {
	return e.Located(be, fn, line)
}

func intBits(t ir.Type) int {
	switch v := t.(type) {
	case *ir.IntType:
		return v.Bits
	case *ir.FloatType:
		return v.Bits
	case *ir.PtrType:
		return 64
	case nil:
		return 64
	}
	return 64
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
