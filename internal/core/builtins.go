package core

import (
	"math"
	"strconv"
	"time"

	"repro/internal/fault"
)

// builtinTable maps declared external functions to Go implementations.
// These play the role of the paper's Java methods that "serve the same
// purpose as system calls" (§3.1): allocation, character I/O, variadic
// introspection (count_varargs/get_vararg, Fig. 9), math, and process exit.
// Everything else in libc is written in C and interpreted (internal/libc).
var builtinTable = map[string]Builtin{
	// Heap management (paper §3.3).
	"malloc":  biMalloc,
	"calloc":  biCalloc,
	"realloc": biRealloc,
	"free":    biFree,

	// Front-end intrinsics.
	"__builtin_memcpy": biMemcpyIntrinsic,
	"__builtin_memset": biMemsetIntrinsic,

	// Character I/O.
	"__ss_putchar": biPutchar,
	"__ss_getchar": biGetchar,
	"__ss_fwrite":  biFwrite,

	// Variadic argument introspection (paper Fig. 9).
	"__ss_count_varargs": biCountVarargs,
	"__ss_get_vararg":    biGetVararg,

	// Process control.
	"exit":  biExit,
	"abort": biAbort,

	// Number formatting/parsing helpers used by the C printf/scanf.
	"__ss_ftoa": biFtoa,
	"__ss_atof": biAtof,

	// Environment access (the engine owns the environment strings).
	"__ss_getenv": biGetenv,

	// Introspection primitives (typeident.go): pure observers of the
	// type-identity plane, guest-callable per "Introspection for C".
	"_size_of_object": biSizeOfObject,
	"_type_of":        biTypeOf,
	"_bounds_of":      biBoundsOf,

	// Math (C89 <math.h> double entry points).
	"sin": biMath1(math.Sin), "cos": biMath1(math.Cos), "tan": biMath1(math.Tan),
	"asin": biMath1(math.Asin), "acos": biMath1(math.Acos), "atan": biMath1(math.Atan),
	"exp": biMath1(math.Exp), "log": biMath1(math.Log), "log10": biMath1(math.Log10),
	"sqrt": biMath1(math.Sqrt), "floor": biMath1(math.Floor), "ceil": biMath1(math.Ceil),
	"fabs":  biMath1(math.Abs),
	"atan2": biMath2(math.Atan2), "pow": biMath2(math.Pow), "fmod": biMath2(math.Mod),

	"clock": biClock,
}

// RegisterBuiltin adds (or overrides) a named builtin before engines are
// constructed. The harness uses it for test doubles.
func RegisterBuiltin(name string, fn Builtin) { builtinTable[name] = fn }

// HasBuiltin reports whether a builtin with the given name exists.
func HasBuiltin(name string) bool { _, ok := builtinTable[name]; return ok }

func biMalloc(e *Engine, fr *Frame, args []Value) (Value, error) {
	return Value{P: e.AllocHeap(args[0].I, "malloc")}, nil
}

// maxHeapAlloc is the default single-allocation cap; larger requests fail
// like a real malloc returning NULL (the corpus exercises the
// unchecked-malloc pattern). Config.MaxAllocBytes overrides it.
const maxHeapAlloc = 1 << 31

// AllocHeap creates a managed heap object (exposed for builtins/tests).
// Every request is charged through the fault injector: oversized or
// over-budget requests, and allocations the fault plan denies, return the
// null pointer — exactly how guest code observes a real malloc failure
// (malloc(0) follows glibc and returns a unique zero-size object, see
// DESIGN.md §10). The engine call stack at the allocation becomes the
// object's allocation-site backtrace: the malloc call edge is pushed before
// builtin dispatch, so the stack's top frame is the caller at the malloc
// call line — recording it is one pointer copy.
func (e *Engine) AllocHeap(size int64, name string) Pointer {
	if e.mem.ChargeHeap(size) != fault.OK {
		return Pointer{}
	}
	obj := NewObject(size, HeapMem, name, e.id())
	obj.AllocStack = e.callStack
	e.stats.Allocs++
	e.heap = append(e.heap, obj)
	return Pointer{Obj: obj}
}

func biCalloc(e *Engine, fr *Frame, args []Value) (Value, error) {
	n, sz := args[0].I, args[1].I
	// C11 7.22.3.2: if n*sz overflows, the request cannot be satisfied —
	// return NULL instead of wrapping to a small (exploitable) size.
	if n < 0 || sz < 0 || (sz != 0 && n > math.MaxInt64/sz) {
		e.mem.ChargeHeap(-1) // count the denied attempt (FailNth coordinate)
		return Value{P: Pointer{}}, nil
	}
	return Value{P: e.AllocHeap(n*sz, "calloc")}, nil // already zeroed
}

// biRealloc follows glibc semantics (documented in DESIGN.md §10):
// realloc(NULL, n) is malloc(n); realloc(p, 0) frees p and returns NULL;
// and when the new allocation fails, NULL is returned with the old block
// left untouched — the caller still owns it, per C11 7.22.3.5.
func biRealloc(e *Engine, fr *Frame, args []Value) (Value, error) {
	p := args[0].P
	size := args[1].I
	if p.IsNull() {
		return Value{P: e.AllocHeap(size, "realloc")}, nil
	}
	if be := checkFreeable(p); be != nil {
		be.Access = Free
		be.Func = "realloc"
		return Value{}, e.frameErr(fr, be)
	}
	old := p.Obj
	if size == 0 {
		e.mem.Release(old.Size())
		old.FreeWith(e.callStack)
		e.stats.Frees++
		return Value{P: Pointer{}}, nil
	}
	np := e.AllocHeap(size, "realloc")
	if np.IsNull() {
		return Value{P: Pointer{}}, nil // old block stays live and valid
	}
	n := old.Size()
	if size < n {
		n = size
	}
	if n > 0 {
		if be := copyManaged(np.Obj, 0, old, 0, n); be != nil {
			return Value{}, e.frameErr(fr, be)
		}
	}
	e.mem.Release(old.Size())
	old.FreeWith(e.callStack)
	e.stats.Frees++
	return Value{P: np}, nil
}

// checkFreeable implements the paper's Fig. 8: the pointee must be a heap
// object (otherwise InvalidFree — the Java version's ClassCastException),
// the offset must be zero (InvalidFree), and it must not already be freed
// (DoubleFree).
func checkFreeable(p Pointer) *BugError {
	if p.IsFunc() || p.Obj == nil {
		return &BugError{Kind: InvalidFree, Access: Free}
	}
	if p.Obj.Mem != HeapMem {
		return &BugError{Kind: InvalidFree, Access: Free, Mem: p.Obj.Mem, Obj: p.Obj.Name, ObjSize: p.Obj.Size(),
			AllocStack: p.Obj.AllocStack}
	}
	if p.Off != 0 {
		return &BugError{Kind: InvalidFree, Access: Free, Off: p.Off, Mem: p.Obj.Mem, Obj: p.Obj.Name, ObjSize: p.Obj.Size(),
			AllocStack: p.Obj.AllocStack}
	}
	if p.Obj.Freed {
		return &BugError{Kind: DoubleFree, Access: Free, Mem: p.Obj.Mem, Obj: p.Obj.Name, ObjSize: p.Obj.Size(),
			AllocStack: p.Obj.AllocStack, FreeStack: p.Obj.FreeStack}
	}
	return nil
}

func biFree(e *Engine, fr *Frame, args []Value) (Value, error) {
	p := args[0].P
	if p.IsNull() {
		return Value{}, nil // free(NULL) is defined to do nothing
	}
	if be := checkFreeable(p); be != nil {
		return Value{}, e.frameErr(fr, be)
	}
	e.mem.Release(p.Obj.Size())
	p.Obj.FreeWith(e.callStack)
	e.stats.Frees++
	return Value{}, nil
}

// copyManaged copies n bytes between managed objects, relocating pointer
// slots and refusing to split a pointer in half.
func copyManaged(dst *Object, doff int64, src *Object, soff, n int64) *BugError {
	if be := src.access(soff, n, Read); be != nil {
		return be
	}
	if be := dst.access(doff, n, Write); be != nil {
		return be
	}
	// Snapshot pointer slots in the source range first (src may alias dst).
	type slotCopy struct {
		rel int64
		p   Pointer
	}
	var slots []slotCopy
	for off, p := range src.Ptrs {
		if off >= soff && off+8 <= soff+n {
			slots = append(slots, slotCopy{rel: off - soff, p: p})
		} else if off+8 > soff && off < soff+n {
			return &BugError{Kind: TypeViolation, Access: Read, Off: off, Size: 8, ObjSize: src.Size(), Mem: src.Mem, Obj: src.Name}
		}
	}
	// Clear pointer slots in the destination range, then copy bytes.
	for off := range dst.Ptrs {
		if off+8 > doff && off < doff+n {
			delete(dst.Ptrs, off)
		}
	}
	copy(dst.Data[doff:doff+n], src.Data[soff:soff+n])
	// A raw byte copy can no longer prove what scalar class union storage
	// holds — degrade the records to "unknown" rather than misreport.
	dst.ClearUnionKinds(doff, doff+n)
	for _, s := range slots {
		if be := dst.StorePtr(doff+s.rel, s.p, Write); be != nil {
			return be
		}
	}
	return nil
}

func biMemcpyIntrinsic(e *Engine, fr *Frame, args []Value) (Value, error) {
	dst, src, n := args[0].P, args[1].P, args[2].I
	if n == 0 {
		return Value{}, nil
	}
	if dst.IsNull() || src.IsNull() {
		return Value{}, e.frameErr(fr, &BugError{Kind: NullDeref, Access: Write, Size: n})
	}
	if be := copyManaged(dst.Obj, dst.Off, src.Obj, src.Off, n); be != nil {
		return Value{}, e.frameErr(fr, be)
	}
	return Value{}, nil
}

func biMemsetIntrinsic(e *Engine, fr *Frame, args []Value) (Value, error) {
	p, c, n := args[0].P, byte(args[1].I), args[2].I
	if n == 0 {
		return Value{}, nil
	}
	if p.IsNull() {
		return Value{}, e.frameErr(fr, &BugError{Kind: NullDeref, Access: Write, Size: n})
	}
	obj := p.Obj
	if obj == nil {
		return Value{}, e.frameErr(fr, &BugError{Kind: TypeViolation, Access: Write, Size: n})
	}
	if be := obj.access(p.Off, n, Write); be != nil {
		return Value{}, e.frameErr(fr, be)
	}
	for off := range obj.Ptrs {
		if off+8 > p.Off && off < p.Off+n {
			delete(obj.Ptrs, off)
		}
	}
	for i := int64(0); i < n; i++ {
		obj.Data[p.Off+i] = c
	}
	obj.ClearUnionKinds(p.Off, p.Off+n)
	return Value{}, nil
}

// frameErr locates a builtin-raised error at its call site. The call edge
// is pushed onto the engine call stack before builtin dispatch, so the
// stack's top frame already names the caller at the call line — the stack
// is recorded as-is, with no synthesized leaf frame (both tiers share this
// path, so their builtin diagnostics match byte for byte).
func (e *Engine) frameErr(fr *Frame, be *BugError) *BugError {
	if f, ok := e.callStack.Top(); ok {
		if be.Func == "" {
			be.Func = f.Func
			be.Line = f.Line
		}
		if be.AccessStack.IsEmpty() {
			be.AccessStack = e.callStack
		}
		return be
	}
	if fr != nil {
		return e.located(be, fr.Fn.Name, 0)
	}
	return be
}

func biPutchar(e *Engine, fr *Frame, args []Value) (Value, error) {
	e.stdout.WriteByte(byte(args[0].I))
	return IntValue(args[0].I & 0xff), nil
}

func biGetchar(e *Engine, fr *Frame, args []Value) (Value, error) {
	b, err := e.stdin.ReadByte()
	if err != nil {
		return IntValue(-1), nil // EOF
	}
	return IntValue(int64(b)), nil
}

// biFwrite writes n bytes from a managed buffer to stdout (fast path for
// puts/%s). The read is fully checked, so printing an unterminated string
// still reports the out-of-bounds read.
func biFwrite(e *Engine, fr *Frame, args []Value) (Value, error) {
	p, n := args[0].P, args[1].I
	if n == 0 {
		return IntValue(0), nil
	}
	if p.IsNull() {
		return Value{}, e.frameErr(fr, &BugError{Kind: NullDeref, Access: Read, Size: n})
	}
	if be := p.Obj.access(p.Off, n, Read); be != nil {
		return Value{}, e.frameErr(fr, be)
	}
	if _, bad := p.Obj.overlapsPtr(p.Off, n); bad {
		return Value{}, e.frameErr(fr, &BugError{Kind: TypeViolation, Access: Read, Off: p.Off, Size: n, Mem: p.Obj.Mem, Obj: p.Obj.Name})
	}
	e.stdout.Write(p.Obj.Data[p.Off : p.Off+n])
	return IntValue(n), nil
}

func biCountVarargs(e *Engine, fr *Frame, args []Value) (Value, error) {
	if fr == nil {
		return IntValue(0), nil
	}
	return IntValue(int64(len(fr.VarArgs))), nil
}

func biGetVararg(e *Engine, fr *Frame, args []Value) (Value, error) {
	i := args[0].I
	if fr == nil || i < 0 || i >= int64(len(fr.VarArgs)) {
		return Value{}, e.frameErr(fr, &BugError{Kind: VarargMisuse, Access: Read, Off: i})
	}
	return PtrValue(fr.VarArgs[i]), nil
}

func biExit(e *Engine, fr *Frame, args []Value) (Value, error) {
	return Value{}, &ExitError{Code: int(int32(args[0].I))}
}

func biAbort(e *Engine, fr *Frame, args []Value) (Value, error) {
	return Value{}, &ExitError{Code: 134} // 128+SIGABRT
}

// biFtoa formats a double into a managed buffer: kind 'f', 'e', or 'g' with
// the given precision. The stores are checked, so an undersized buffer is an
// out-of-bounds write, not corruption.
func biFtoa(e *Engine, fr *Frame, args []Value) (Value, error) {
	p := args[0].P
	v := args[1].F
	prec := int(args[2].I)
	kind := byte(args[3].I)
	if kind != 'f' && kind != 'e' && kind != 'g' {
		kind = 'f'
	}
	s := strconv.FormatFloat(v, kind, prec, 64)
	if p.IsNull() {
		return Value{}, e.frameErr(fr, &BugError{Kind: NullDeref, Access: Write, Size: int64(len(s) + 1)})
	}
	for i := 0; i < len(s); i++ {
		if be := p.Obj.StoreInt(p.Off+int64(i), 1, int64(s[i]), Write); be != nil {
			return Value{}, e.frameErr(fr, be)
		}
	}
	if be := p.Obj.StoreInt(p.Off+int64(len(s)), 1, 0, Write); be != nil {
		return Value{}, e.frameErr(fr, be)
	}
	return IntValue(int64(len(s))), nil
}

// biAtof parses a double from a managed C string with checked reads.
func biAtof(e *Engine, fr *Frame, args []Value) (Value, error) {
	p := args[0].P
	if p.IsNull() {
		return Value{}, e.frameErr(fr, &BugError{Kind: NullDeref, Access: Read, Size: 1})
	}
	var buf []byte
	for i := int64(0); ; i++ {
		c, be := p.Obj.LoadInt(p.Off+i, 1, Read)
		if be != nil {
			return Value{}, e.frameErr(fr, be)
		}
		if c == 0 || i > 64 {
			break
		}
		buf = append(buf, byte(c))
	}
	f, _ := strconv.ParseFloat(trimFloat(string(buf)), 64)
	return FloatValue(f), nil
}

// trimFloat trims to the longest prefix that parses as a float.
func trimFloat(s string) string {
	for len(s) > 0 {
		if _, err := strconv.ParseFloat(s, 64); err == nil {
			return s
		}
		s = s[:len(s)-1]
	}
	return "0"
}

func biMath1(f func(float64) float64) Builtin {
	return func(e *Engine, fr *Frame, args []Value) (Value, error) {
		return FloatValue(f(args[0].F)), nil
	}
}

func biMath2(f func(a, b float64) float64) Builtin {
	return func(e *Engine, fr *Frame, args []Value) (Value, error) {
		return FloatValue(f(args[0].F, args[1].F)), nil
	}
}

// biGetenv searches the configured environment and returns a managed
// pointer to the value (one shared object per variable).
func biGetenv(e *Engine, fr *Frame, args []Value) (Value, error) {
	name, be := e.StringAt(args[0].P, 4096)
	if be != nil {
		return Value{}, e.frameErr(fr, be)
	}
	if e.envObjs == nil {
		e.envObjs = map[string]*Object{}
	}
	for _, kv := range e.cfg.Env {
		for i := 0; i < len(kv); i++ {
			if kv[i] == '=' {
				if kv[:i] == name {
					obj, ok := e.envObjs[name]
					if !ok {
						val := kv[i+1:]
						obj = NewObject(int64(len(val)+1), StaticMem, "getenv:"+name, e.id())
						copy(obj.Data, val)
						e.envObjs[name] = obj
					}
					return PtrValue(Pointer{Obj: obj}), nil
				}
				break
			}
		}
	}
	return PtrValue(Pointer{}), nil
}

var processStart = time.Now()

func biClock(e *Engine, fr *Frame, args []Value) (Value, error) {
	return IntValue(time.Since(processStart).Microseconds()), nil
}

// StringAt reads a NUL-terminated managed string (diagnostics and builtins).
func (e *Engine) StringAt(p Pointer, max int64) (string, *BugError) {
	if p.IsNull() {
		return "", &BugError{Kind: NullDeref, Access: Read, Size: 1}
	}
	var buf []byte
	for i := int64(0); i < max; i++ {
		c, be := p.Obj.LoadInt(p.Off+i, 1, Read)
		if be != nil {
			return "", be
		}
		if c == 0 {
			break
		}
		buf = append(buf, byte(c))
	}
	return string(buf), nil
}
