package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/memdesc"
)

// Value is a scalar during managed execution: an integer (canonical
// sign-extended form), a float, or a managed pointer. Exactly one of the
// fields is meaningful per use; the IR's types say which.
type Value struct {
	I int64
	F float64
	P Pointer
}

// IntValue, FloatValue, and PtrValue build Values.
func IntValue(v int64) Value     { return Value{I: v} }
func FloatValue(v float64) Value { return Value{F: v} }
func PtrValue(p Pointer) Value   { return Value{P: p} }

// Frame is one managed activation record.
type Frame struct {
	Fn *ir.Func
	// FnIdx is Fn's module index (set by invoke); the back-edge profiler
	// keys OSR requests on it without a name lookup.
	FnIdx int
	Regs  []Value
	// VarArgs holds the boxed variadic arguments for this call: one managed
	// cell per extra argument (paper §3.4, "Variadic argument errors").
	VarArgs []Pointer
	// Autos tracks this frame's stack objects when use-after-return
	// detection is on; they are invalidated when the frame pops.
	Autos []*Object
	// stackBytes is the total charged size of this frame's alloca objects;
	// the bytes are returned to the fault injector's budget when the frame
	// pops (the managed analogue of resetting the stack pointer).
	stackBytes int64
}

// Builtin is a function implemented in Go, playing the role of the paper's
// Java methods that "serve the same purpose as system calls" (§3.1).
type Builtin func(e *Engine, fr *Frame, args []Value) (Value, error)

// Tier1Compiler is implemented by internal/jit: it turns a hot function into
// a directly executable closure. A nil result means "keep interpreting".
type Tier1Compiler interface {
	Compile(e *Engine, fidx int) CompiledFunc
}

// CompiledFunc executes a function against a prepared frame.
type CompiledFunc func(e *Engine, fr *Frame) (Value, error)

// Config configures a managed engine.
type Config struct {
	Args   []string
	Env    []string
	Stdin  io.Reader
	Stdout io.Writer

	// MaxSteps bounds interpreted instructions (0 = default of 2e9).
	MaxSteps int64
	// MaxCallDepth bounds recursion (0 = default of 4096).
	MaxCallDepth int
	// DetectLeaks reports unfreed heap objects after main returns (§6).
	DetectLeaks bool
	// DetectUseAfterReturn invalidates a function's stack objects when it
	// returns, so accesses through escaped pointers are reported (the
	// use-after-return/use-after-scope class ASan added after the paper's
	// original publication; the managed model gets it by marking objects).
	DetectUseAfterReturn bool
	// MaxHeapBytes bounds cumulative live guest memory (heap + stack +
	// globals). 0 = unlimited. Heap exhaustion is soft (malloc returns
	// NULL); stack/global exhaustion is hard (*ResourceError, paper has no
	// native analogue — C cannot report a failed alloca).
	MaxHeapBytes int64
	// MaxAllocBytes bounds a single heap allocation (0 = engine default of
	// 2 GiB); over-cap requests fail softly like a real malloc.
	MaxAllocBytes int64
	// FaultPlan injects deterministic allocation failures so the guest's
	// own malloc error paths are exercised. The zero plan injects nothing.
	FaultPlan fault.Plan
	// Governor, when non-nil, is the run's cooperative cancellation point:
	// the interpreter and tier-1 compiled code poll it at basic-block
	// boundaries and return its *DeadlineError when it has been stopped.
	Governor *Governor
	// Tier1 enables dynamic compilation of hot functions.
	Tier1 Tier1Compiler
	// Tier1Threshold is the call count that triggers compilation (default 50).
	Tier1Threshold int64
	// AsyncJIT moves tier-1 compilation off the execution thread onto a
	// bounded background pool owned by the engine: tier-0 keeps running
	// while hot functions compile, and finished code is installed at the
	// next dispatch point. Engines created with AsyncJIT must be Closed.
	AsyncJIT bool
	// JITWorkers bounds the background compile pool (default 1, max 4).
	JITWorkers int
	// OSRThreshold is the per-loop back-edge count that triggers an
	// on-stack-replacement entry compilation (0 = OSR off). Effective only
	// when Tier1 also implements OSRCompiler.
	OSRThreshold int64
	// NoSpeculate disables speculative deopting fast paths in OSR entries
	// (ablation: frame-compatible compilation with generic accesses only).
	NoSpeculate bool
	// NoFramePool disables activation-record reuse (ablation benchmarks and
	// the recorded baseline rows): every call allocates a fresh Frame, as the
	// engine did before the tier-2 peak-performance layer.
	NoFramePool bool
	// OnCompile is invoked when a function is tier-1 compiled (Fig. 15's
	// compilation-event annotations). Under AsyncJIT it fires at install
	// time, on the engine thread.
	OnCompile func(name string)
	// OnOSR is invoked when an OSR entry is installed; OnDeopt when
	// speculative code transfers back to tier-0. Both run on the engine
	// thread (warmup-curve capture in the harness).
	OnOSR   func(name string)
	OnDeopt func(name string)
}

// Stats captures execution counters. The Heap* and fault fields mirror the
// fault injector's accounting and are tier-invariant: a tier-0 and a tier-1
// run of the same program report identical heap numbers (paper §5's
// "identical semantics across tiers" requirement extended to resources).
type Stats struct {
	Steps       int64
	Calls       int64
	Allocs      int64
	Frees       int64
	Tier1Funcs  int64
	Tier1Calls  int64
	InterpCalls int64
	LeaksFound  int

	// Async tiering counters. OSRCompiled counts installed OSR entries,
	// OSREntries transfers into them, Deopts speculative transfers back to
	// tier-0, AsyncInstalls background compilations published at a dispatch
	// point. All are engine-thread counters — unlike Steps/Calls they are
	// timing-dependent and excluded from tier parity.
	OSRCompiled   int64
	OSREntries    int64
	Deopts        int64
	AsyncInstalls int64

	// Heap accounting from the fault plane (internal/fault.Stats).
	HeapAllocs     int64
	HeapAllocBytes int64
	HeapInUseBytes int64
	HeapPeakBytes  int64
	InjectedFaults int64
	DeniedAllocs   int64
}

// Engine is the managed execution engine (Safe Sulong).
type Engine struct {
	mod     *ir.Module
	cfg     Config
	globals map[string]*Object
	// globalList indexes the global objects by module global index, so
	// tier-1 closures can bake the (module-pure) index and resolve the
	// object through whichever engine executes them.
	globalList []*Object
	builtins   []Builtin // indexed by function index; nil for IR-defined funcs
	compiled   []CompiledFunc
	counts     []int64
	// sites is the dense per-engine call-site state table behind shared
	// tier-1 closures: argument buffers and inline caches, addressed by the
	// site IDs the compiler assigned at lowering time (see Site).
	sites []CallSite

	stdout *bufio.Writer
	stdin  *bufio.Reader

	steps    int64
	maxSteps int64
	gov      *Governor
	depth    int
	maxDepth int
	nextID   int64

	heap    []*Object // live heap objects, for leak detection
	envObjs map[string]*Object
	stats   Stats
	mem     *fault.Injector // heap budget + fault schedule (nil-safe)

	// Type-identity plane caches. descCache memoizes allocation descriptors
	// by C type spelling (one *Desc per distinct declared type, shared by
	// every object of that type); castDesc memoizes checked-cast target
	// descriptors by instruction CType; typeObjs interns the strings the
	// _type_of builtin returns. typeObjs objects live outside the heap and
	// the fault plane (never charged, never leak-checked), so introspection
	// cannot shift a FailNth schedule: they are engine metadata, not guest
	// allocations.
	descCache map[string]*memdesc.Desc
	castDesc  map[string]*memdesc.Desc
	typeObjs  map[string]*Object

	// Async tiering state (tierup.go). pool is the background compile pool
	// (nil in synchronous mode); queued dedups in-flight requests; the osr*
	// maps hold per-(function, header) back-edge counts and installed OSR
	// entries; specBad is the deopt blacklist, shared with background
	// compile workers under specMu.
	pool       *tierPool
	closeOnce  sync.Once
	queued     map[tierKey]bool
	osrComp    OSRCompiler
	osrOn      bool
	osrEntries map[int64]CompiledFunc
	osrCounts  map[int64]int64
	specMu     sync.Mutex
	specBad    map[specSite]bool

	// framePool is a LIFO free-list of activation records. The engine is
	// single-threaded, so no locking; frames are reset on release (registers
	// zeroed, auto/vararg references dropped) so no pointer, diagnostic
	// stack, or fault-plane state can leak from one call — or one run — into
	// the next. Bounded by the live call depth, since release is LIFO.
	framePool []*Frame

	// callStack is the live guest call stack: one frame per active call,
	// holding the *caller's* function and the call-site line. It is a
	// persistent diag.Stack, so maintaining it is one node allocation per
	// call and capturing it (at a fault, malloc, alloca, or free) is one
	// pointer copy — cheap enough to stay on in peak-performance runs.
	// Both tiers push and pop at exactly the same points, which is what
	// makes tier-0 and tier-1 diagnostics byte-identical.
	callStack diag.Stack

	// Writer for captured output when none is configured.
	sink strings.Builder
}

// NewEngine prepares a managed engine for the module. The module is not
// mutated; globals are instantiated as managed objects.
func NewEngine(mod *ir.Module, cfg Config) (*Engine, error) {
	e := &Engine{mod: mod, cfg: cfg, gov: cfg.Governor}
	e.maxSteps = cfg.MaxSteps
	if e.maxSteps == 0 {
		e.maxSteps = 2_000_000_000
	}
	e.maxDepth = cfg.MaxCallDepth
	if e.maxDepth == 0 {
		e.maxDepth = 4096
	}
	if cfg.Tier1Threshold == 0 {
		e.cfg.Tier1Threshold = 50
	}
	out := cfg.Stdout
	if out == nil {
		out = &e.sink
	}
	e.stdout = bufio.NewWriter(out)
	in := cfg.Stdin
	if in == nil {
		in = strings.NewReader("")
	}
	e.stdin = bufio.NewReader(in)
	e.compiled = make([]CompiledFunc, len(mod.Funcs))
	e.counts = make([]int64, len(mod.Funcs))
	mab := cfg.MaxAllocBytes
	if mab == 0 {
		mab = maxHeapAlloc
	}
	e.mem = fault.NewInjector(cfg.FaultPlan, fault.Budget{
		MaxHeapBytes:  cfg.MaxHeapBytes,
		MaxAllocBytes: mab,
	})
	if err := e.bindBuiltins(); err != nil {
		return nil, err
	}
	if err := e.initGlobals(); err != nil {
		return nil, err
	}
	if cfg.Tier1 != nil {
		if oc, ok := cfg.Tier1.(OSRCompiler); ok && cfg.OSRThreshold > 0 {
			e.osrComp = oc
			e.osrOn = true
			e.osrEntries = make(map[int64]CompiledFunc)
			e.osrCounts = make(map[int64]int64)
		}
		if cfg.AsyncJIT {
			e.startPool()
		}
	}
	return e, nil
}

// Reset returns a finished engine to its just-constructed state for a new
// run of the same module under a fresh configuration, reusing the expensive
// immutable scaffolding a cold NewEngine would rebuild: the bound builtin
// table, the global objects (re-zeroed and re-initialized in module order,
// keeping their IDs 1..N so the next runtime ID — and therefore every later
// Pointer.OrderKey — matches a cold start exactly), the frame free-list,
// and the memoized type descriptors (pure functions of C type spellings,
// which consume no IDs). Everything observable is per-run and is rebuilt
// exactly as NewEngine would build it: step/depth ledgers, stats, the fault
// injector (the global charge sequence is replayed against the new budget,
// so FailNth schedules land on the same allocations), tier-1 dispatch
// tables and call counts (so tier-up events, OnCompile callbacks, OSR and
// deopt behavior replay a cold run even when the compiles themselves are
// code-cache hits), the speculation blacklist, per-site inline-cache and
// argument-buffer state, the lazily-interned type-name and environment
// objects (they consume runtime IDs, so they must be re-created in the same
// order), the diagnostic call stack, and the stdio plumbing. A reset engine
// is observationally indistinguishable from a new one — the warm-vs-cold
// parity suite pins that byte-for-byte.
//
// On error (a global layout exceeding cfg's budget, exactly as NewEngine
// would fail) the engine is left half-reset and must be discarded.
func (e *Engine) Reset(cfg Config) error {
	// Stop any background compile pool from the previous run, then re-arm
	// the close latch for this one.
	e.Close()
	e.closeOnce = sync.Once{}

	e.cfg = cfg
	e.gov = cfg.Governor
	e.maxSteps = cfg.MaxSteps
	if e.maxSteps == 0 {
		e.maxSteps = 2_000_000_000
	}
	e.maxDepth = cfg.MaxCallDepth
	if e.maxDepth == 0 {
		e.maxDepth = 4096
	}
	if cfg.Tier1Threshold == 0 {
		e.cfg.Tier1Threshold = 50
	}
	e.sink.Reset()
	out := cfg.Stdout
	if out == nil {
		out = &e.sink
	}
	e.stdout = bufio.NewWriter(out)
	in := cfg.Stdin
	if in == nil {
		in = strings.NewReader("")
	}
	e.stdin = bufio.NewReader(in)

	e.steps, e.depth = 0, 0
	e.stats = Stats{}
	e.callStack = diag.Stack{}
	for i := range e.compiled {
		e.compiled[i] = nil
	}
	for i := range e.counts {
		e.counts[i] = 0
	}
	for i := range e.heap {
		e.heap[i] = nil
	}
	e.heap = e.heap[:0]
	e.envObjs = nil
	e.typeObjs = nil
	for i := range e.sites {
		e.sites[i] = CallSite{}
	}
	e.sites = e.sites[:0]
	e.queued = nil
	e.osrComp, e.osrOn = nil, false
	e.osrEntries, e.osrCounts = nil, nil
	e.specMu.Lock()
	e.specBad = nil
	e.specMu.Unlock()

	mab := cfg.MaxAllocBytes
	if mab == 0 {
		mab = maxHeapAlloc
	}
	e.mem = fault.NewInjector(cfg.FaultPlan, fault.Budget{
		MaxHeapBytes:  cfg.MaxHeapBytes,
		MaxAllocBytes: mab,
	})

	// Replay the cold-start global layout: same charge order, same IDs,
	// same initializer stores. Globals hold IDs 1..N, so the next runtime
	// ID picks up where a cold initGlobals would have left it. A module
	// mutated since construction (legal for caller-owned NoCache modules)
	// fails the shape check and the caller falls back to a cold engine.
	if len(e.globalList) != len(e.mod.Globals) {
		return fmt.Errorf("core: reset: module global count changed")
	}
	e.nextID = int64(len(e.mod.Globals))
	for i, g := range e.mod.Globals {
		obj := e.globalList[i]
		if obj.Name != g.Name || obj.size != g.Ty.Size() {
			return fmt.Errorf("core: reset: module global %s changed shape", g.Name)
		}
		if e.mem.ChargeFixed(g.Ty.Size()) == fault.Exhausted {
			return &ResourceError{Resource: "global", Requested: g.Ty.Size(), Limit: e.mem.Limit()}
		}
		obj.resetStatic()
	}
	for _, g := range e.mod.Globals {
		if g.Init == nil {
			continue
		}
		if err := e.fillConst(e.globals[g.Name], 0, g.Init, g.Ty); err != nil {
			return fmt.Errorf("core: initializing global %s: %w", g.Name, err)
		}
	}

	if cfg.Tier1 != nil {
		if oc, ok := cfg.Tier1.(OSRCompiler); ok && cfg.OSRThreshold > 0 {
			e.osrComp = oc
			e.osrOn = true
			e.osrEntries = make(map[int64]CompiledFunc)
			e.osrCounts = make(map[int64]int64)
		}
		if cfg.AsyncJIT {
			e.startPool()
		}
	}
	return nil
}

// Module returns the module being executed.
func (e *Engine) Module() *ir.Module { return e.mod }

// IsBuiltin reports whether the function at idx is dispatched to a native
// builtin (the tier-1 compiler must not inline or arg-buffer-optimize those:
// builtins may re-enter guest code while still reading their argument slice).
func (e *Engine) IsBuiltin(idx int) bool {
	return idx >= 0 && idx < len(e.builtins) && e.builtins[idx] != nil
}

// ChargeSteps is the unified fuel account: it charges n instruction steps
// against the engine's budget and polls the run governor. The tier-0
// interpreter charges one step per instruction; tier-1 compiled code calls
// this once per executed basic block with the block's instruction count, so
// Config.MaxSteps binds identically whether a hot loop is interpreted or
// compiled, and Stats.Steps stays comparable across tiers.
func (e *Engine) ChargeSteps(n int64) error {
	e.steps += n
	if e.steps > e.maxSteps {
		return &LimitError{What: fmt.Sprintf("%d interpreter steps", e.maxSteps)}
	}
	if e.gov.Stopped() {
		return e.gov.Err()
	}
	return nil
}

// RefundSteps returns n steps to the budget. Tier-1 compiled code charges a
// basic block's full cost on entry; when an instruction inside the block
// faults, the closure refunds the cost of the instructions that never ran,
// so Stats.Steps on a faulting run is byte-identical to the tier-0
// interpreter's charge-per-instruction accounting.
func (e *Engine) RefundSteps(n int64) { e.steps -= n }

// PushCall records a call edge: the caller's function and the call-site
// line. Every executor (tier-0 interpreter, tier-1 compiled closures) pushes
// before transferring control — including to builtins — and pops after, so
// the stack is identical whichever tier executes the caller. O(1).
func (e *Engine) PushCall(fn string, line int) {
	e.callStack = e.callStack.Push(diag.Frame{Func: fn, Line: line})
}

// PopCall removes the innermost call edge.
func (e *Engine) PopCall() { e.callStack = e.callStack.Pop() }

// CallStack returns the live guest call stack (innermost caller first).
// The returned value is immutable and safe to retain.
func (e *Engine) CallStack() diag.Stack { return e.callStack }

// CaptureStack returns the guest call stack with a synthesized leaf frame
// for the current location — frame #0 of a backtrace. One node allocation.
func (e *Engine) CaptureStack(fn string, line int) diag.Stack {
	return e.callStack.Push(diag.Frame{Func: fn, Line: line})
}

// Located fills a BugError's location (function, line, access stack) if it
// does not carry one yet, and returns it. Shared by both execution tiers so
// reports render identically.
func (e *Engine) Located(be *BugError, fn string, line int) *BugError {
	if be.Func == "" {
		be.Func = fn
		be.Line = line
	}
	if be.AccessStack.IsEmpty() {
		be.AccessStack = e.CaptureStack(be.Func, be.Line)
	}
	return be
}

// Stats returns a snapshot of execution counters, merging in the fault
// plane's exact heap accounting.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Steps = e.steps
	ms := e.mem.Stats()
	s.HeapAllocs = ms.HeapAllocs
	s.HeapAllocBytes = ms.HeapAllocBytes
	s.HeapInUseBytes = ms.HeapInUseBytes
	s.HeapPeakBytes = ms.HeapPeakBytes
	s.InjectedFaults = ms.InjectedFaults
	s.DeniedAllocs = ms.DeniedAllocs
	return s
}

// MemStats exposes the raw fault-plane accounting (tests, the sweep).
func (e *Engine) MemStats() fault.Stats { return e.mem.Stats() }

// Output returns captured stdout when no Stdout writer was configured.
func (e *Engine) Output() string {
	e.stdout.Flush()
	return e.sink.String()
}

func (e *Engine) id() int64 {
	e.nextID++
	return e.nextID
}

func (e *Engine) bindBuiltins() error {
	e.builtins = make([]Builtin, len(e.mod.Funcs))
	for i, f := range e.mod.Funcs {
		if !f.IsDecl {
			continue
		}
		if b, ok := builtinTable[f.Name]; ok {
			e.builtins[i] = b
			continue
		}
		// Headers declare more than a program links against; an unresolved
		// external only fails if it is actually called.
		name := f.Name
		e.builtins[i] = func(e *Engine, fr *Frame, args []Value) (Value, error) {
			return Value{}, fmt.Errorf("core: call to unresolved external function %q", name)
		}
	}
	return nil
}

// initGlobals materializes module globals as managed static objects.
func (e *Engine) initGlobals() error {
	e.globals = make(map[string]*Object, len(e.mod.Globals))
	e.globalList = make([]*Object, 0, len(e.mod.Globals))
	for _, g := range e.mod.Globals {
		// Globals are charged against the run budget and never released.
		// C cannot express a failed global, so exhaustion is hard (oom).
		if e.mem.ChargeFixed(g.Ty.Size()) == fault.Exhausted {
			return &ResourceError{Resource: "global", Requested: g.Ty.Size(), Limit: e.mem.Limit()}
		}
		obj := NewObject(g.Ty.Size(), StaticMem, g.Name, e.id())
		obj.Ty = g.Ty
		if g.CType != "" {
			obj.Desc = e.descFor(g.Ty, g.CType)
			if obj.Desc.HasUnions() {
				obj.Strict = true
			}
		}
		e.globals[g.Name] = obj
		e.globalList = append(e.globalList, obj)
	}
	// Second pass fills initializers (they may reference other globals).
	for _, g := range e.mod.Globals {
		if g.Init == nil {
			continue
		}
		if err := e.fillConst(e.globals[g.Name], 0, g.Init, g.Ty); err != nil {
			return fmt.Errorf("core: initializing global %s: %w", g.Name, err)
		}
	}
	return nil
}

func (e *Engine) fillConst(obj *Object, off int64, c ir.Const, ty ir.Type) error {
	switch v := c.(type) {
	case ir.ConstZero:
		return nil
	case ir.ConstIntVal:
		if be := obj.StoreInt(off, ty.Size(), v.V, Write); be != nil {
			return be
		}
	case ir.ConstFloatVal:
		bits := 64
		if ft, ok := ty.(*ir.FloatType); ok {
			bits = ft.Bits
		}
		if be := obj.StoreFloat(off, bits, v.V, Write); be != nil {
			return be
		}
	case ir.ConstBytes:
		if off+int64(len(v.Data)) > obj.Size() {
			return fmt.Errorf("byte initializer overflows object")
		}
		copy(obj.Data[off:], v.Data)
	case ir.ConstArrayVal:
		at, ok := ty.(*ir.ArrayType)
		if !ok {
			return fmt.Errorf("array constant for non-array type %s", ty)
		}
		esz := at.Elem.Size()
		for i, el := range v.Elems {
			if err := e.fillConst(obj, off+int64(i)*esz, el, at.Elem); err != nil {
				return err
			}
		}
	case ir.ConstStructVal:
		st, ok := ty.(*ir.StructType)
		if !ok {
			return fmt.Errorf("struct constant for non-struct type %s", ty)
		}
		for i, el := range v.Fields {
			if err := e.fillConst(obj, off+st.Fields[i].Offset, el, st.Fields[i].Ty); err != nil {
				return err
			}
		}
	case ir.ConstGlobalRef:
		target, ok := e.globals[v.Sym]
		if !ok {
			return fmt.Errorf("unknown global %q in initializer", v.Sym)
		}
		if be := obj.StorePtr(off, Pointer{Obj: target, Off: v.Off}, Write); be != nil {
			return be
		}
	case ir.ConstFuncRef:
		idx := e.mod.FuncIndex(v.Sym)
		if idx < 0 {
			return fmt.Errorf("unknown function %q in initializer", v.Sym)
		}
		if be := obj.StorePtr(off, FuncPointer(idx), Write); be != nil {
			return be
		}
	default:
		return fmt.Errorf("unhandled constant %T", c)
	}
	return nil
}

// Global returns the managed object backing a named global (tests and the
// harness use this to inspect state).
func (e *Engine) Global(name string) *Object { return e.globals[name] }

// GlobalAt returns the managed object backing the i'th module global. The
// tier-1 compiler bakes the index (a module-pure fact) into its closures
// and resolves the object through the executing engine at run time, so
// shared compiled code never captures one engine's global layout.
func (e *Engine) GlobalAt(i int) *Object { return e.globalList[i] }

// ICEntry is one inline-cache way for an indirect tier-1 call site: the
// observed function-pointer key (Pointer.Fn, never 0) and its validated
// module function index.
type ICEntry struct {
	Key int
	Idx int
}

// CallSite is the per-engine mutable state behind one tier-1 call site: the
// persistent argument buffer for direct calls and the polymorphic inline
// cache for indirect ones. Compiled closures are immutable and shared
// across engines (the executable-code cache); every per-run mutation lands
// here instead, addressed by the dense site ID the compiler assigned at
// lowering time. Inline-cache state therefore starts empty on every run,
// exactly as it did when closures were compiled per engine.
type CallSite struct {
	Args []Value
	IC   []ICEntry
	Mega bool
}

// Site returns the engine's state cell for call site id, growing the dense
// site table on demand. The engine is single-threaded, so growth between
// guest instructions is safe; closures must not retain the returned pointer
// across a call that can execute guest code (take the Args slice instead —
// its backing array survives table growth).
func (e *Engine) Site(id int) *CallSite {
	if id >= len(e.sites) {
		ns := make([]CallSite, id+1, 2*(id+1))
		copy(ns, e.sites)
		e.sites = ns
	}
	return &e.sites[id]
}

// ArgBuf returns the site's persistent argument buffer, sized to n. The
// engine copies arguments into the callee frame before any guest code runs,
// so one buffer per site is safe even under recursion through the site.
func (s *CallSite) ArgBuf(n int) []Value {
	if cap(s.Args) < n {
		s.Args = make([]Value, n)
	}
	return s.Args[:n]
}

// Run executes main() with the configured arguments and returns the exit
// code. Detected bugs come back as *BugError; normal termination (including
// exit()) reports the code with a nil error.
func (e *Engine) Run() (int, error) {
	mainIdx := e.mod.FuncIndex("main")
	if mainIdx < 0 {
		return 127, fmt.Errorf("core: program has no main function")
	}
	argvPtr := e.buildArgv()
	envpPtr := e.buildEnvp()
	mainFn := e.mod.Funcs[mainIdx]
	var args []Value
	switch len(mainFn.Sig.Params) {
	case 0:
	case 1:
		args = []Value{IntValue(int64(len(e.cfg.Args) + 1))}
	case 2:
		args = []Value{IntValue(int64(len(e.cfg.Args) + 1)), PtrValue(argvPtr)}
	default:
		args = []Value{IntValue(int64(len(e.cfg.Args) + 1)), PtrValue(argvPtr), PtrValue(envpPtr)}
	}
	ret, err := e.CallIndex(mainIdx, args)
	e.stdout.Flush()
	if err != nil {
		var ex *ExitError
		if asExit(err, &ex) {
			return ex.Code, e.maybeLeakCheck()
		}
		return -1, err
	}
	return int(int32(ret.I)), e.maybeLeakCheck()
}

func asExit(err error, out **ExitError) bool {
	for err != nil {
		if ex, ok := err.(*ExitError); ok {
			*out = ex
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// buildArgv creates the argv vector: a pointer array of length argc+1
// (terminated by NULL as C guarantees) tagged ArgvMem, so out-of-bounds
// argv accesses are reported with the paper's "main args" memory kind.
func (e *Engine) buildArgv() Pointer {
	args := append([]string{"program"}, e.cfg.Args...)
	vec := NewObject(int64(len(args)+1)*8, ArgvMem, "argv", e.id())
	for i, a := range args {
		s := NewObject(int64(len(a)+1), ArgvMem, fmt.Sprintf("argv[%d]", i), e.id())
		copy(s.Data, a)
		vec.StorePtr(int64(i)*8, Pointer{Obj: s}, Write)
	}
	return Pointer{Obj: vec}
}

func (e *Engine) buildEnvp() Pointer {
	env := e.cfg.Env
	vec := NewObject(int64(len(env)+1)*8, ArgvMem, "envp", e.id())
	for i, kv := range env {
		s := NewObject(int64(len(kv)+1), ArgvMem, "envp[]", e.id())
		copy(s.Data, kv)
		vec.StorePtr(int64(i)*8, Pointer{Obj: s}, Write)
	}
	return Pointer{Obj: vec}
}

func (e *Engine) maybeLeakCheck() error {
	if !e.cfg.DetectLeaks {
		return nil
	}
	for _, obj := range e.heap {
		if !obj.Freed {
			e.stats.LeaksFound++
		}
	}
	return nil
}

// Leaks returns the unfreed heap objects after a run (when DetectLeaks).
func (e *Engine) Leaks() []*BugError {
	var out []*BugError
	for _, obj := range e.heap {
		if !obj.Freed {
			out = append(out, &BugError{Kind: MemoryLeak, ObjSize: obj.Size(), Mem: HeapMem, Obj: obj.Name,
				AllocStack: obj.AllocStack})
		}
	}
	return out
}

// CallByName invokes a function by name (examples and tests).
func (e *Engine) CallByName(name string, args []Value) (Value, error) {
	idx := e.mod.FuncIndex(name)
	if idx < 0 {
		return Value{}, fmt.Errorf("core: no function %q", name)
	}
	return e.CallIndex(idx, args)
}

// CallIndex invokes a function by module index.
func (e *Engine) CallIndex(idx int, args []Value) (Value, error) {
	return e.invoke(idx, args, nil)
}

// AllocAuto creates a managed stack object (used by both tiers' allocas).
// fn and line name the alloca's source location; the allocation-site stack
// is captured so later out-of-bounds / use-after-return reports can print
// it. The bytes are charged against the run's heap budget (owned by fr, so
// they are released when the frame pops); exhaustion is hard — C cannot
// report a failed alloca — so the error is a *ResourceError, never NULL.
func (e *Engine) AllocAuto(fr *Frame, size int64, name string, ty ir.Type, ctype string, fn string, line int) (Pointer, error) {
	if size < 0 {
		size = 0
	}
	if e.mem.ChargeFixed(size) == fault.Exhausted {
		return Pointer{}, &ResourceError{
			Resource:  "stack",
			Requested: size,
			Limit:     e.mem.Limit(),
			Guest:     e.CaptureStack(fn, line),
		}
	}
	if fr != nil {
		fr.stackBytes += size
	}
	obj := NewObject(size, AutoMem, name, e.id())
	obj.Ty = ty
	if ctype != "" {
		obj.Desc = e.descFor(ty, ctype)
		if obj.Desc.HasUnions() {
			obj.Strict = true
		}
	}
	obj.AllocStack = e.CaptureStack(fn, line)
	e.stats.Allocs++
	return Pointer{Obj: obj}, nil
}

// Invoke dispatches a call from tier-1 compiled code: builtins receive the
// caller's frame (for variadic introspection), IR functions get the boxed
// variadic cells.
func (e *Engine) Invoke(idx int, args []Value, varargs []Pointer, caller *Frame) (Value, error) {
	if idx < 0 || idx >= len(e.mod.Funcs) {
		return Value{}, &InternalError{
			Msg:   fmt.Sprintf("call to unknown function index %d", idx),
			Guest: e.callStack,
		}
	}
	if b := e.builtins[idx]; b != nil {
		e.stats.Calls++
		return b(e, caller, args)
	}
	return e.invoke(idx, args, varargs)
}

// invoke runs a function with pre-boxed variadic cells (built by the caller,
// which knows the argument types from the call instruction).
func (e *Engine) invoke(idx int, args []Value, varargs []Pointer) (Value, error) {
	f := e.mod.Funcs[idx]
	e.stats.Calls++
	if b := e.builtins[idx]; b != nil {
		return b(e, nil, args)
	}
	if e.depth >= e.maxDepth {
		return Value{}, &LimitError{What: fmt.Sprintf("call depth %d (stack overflow in %s)", e.maxDepth, f.Name)}
	}

	fr := e.getFrame(f)
	fr.FnIdx = idx
	fr.VarArgs = varargs
	nFixed := len(f.Sig.Params)
	for i := 0; i < nFixed && i < len(args); i++ {
		fr.Regs[i] = args[i]
	}

	e.depth++
	defer func() {
		e.depth--
		// Return this frame's alloca bytes to the budget — the managed
		// analogue of popping the stack pointer. Both tiers allocate
		// through AllocAuto, so the release point is tier-identical.
		e.mem.ReleaseFixed(fr.stackBytes)
		if e.cfg.DetectUseAfterReturn {
			for _, obj := range fr.Autos {
				obj.InvalidateReturned()
			}
		}
		e.putFrame(fr)
	}()

	// Safe publication point: background compilations finished since the
	// last dispatch become visible here, between guest instructions.
	if e.pool != nil && e.pool.pending.Load() {
		e.installReady()
	}
	// Tier-1 dispatch: compiled functions bypass the interpreter.
	if cf := e.compiled[idx]; cf != nil {
		e.stats.Tier1Calls++
		return cf(e, fr)
	}
	e.counts[idx]++
	if e.cfg.Tier1 != nil {
		if e.pool != nil {
			// Asynchronous tier-up: enqueue and keep interpreting; the
			// compiled function installs at a later dispatch point.
			if e.counts[idx] >= e.cfg.Tier1Threshold {
				e.requestCompile(tierKey{fidx: idx, header: -1})
			}
		} else if e.counts[idx] == e.cfg.Tier1Threshold {
			if cf := e.cfg.Tier1.Compile(e, idx); cf != nil {
				e.compiled[idx] = cf
				e.stats.Tier1Funcs++
				if e.cfg.OnCompile != nil {
					e.cfg.OnCompile(f.Name)
				}
				e.stats.Tier1Calls++
				return cf(e, fr)
			}
		}
	}
	e.stats.InterpCalls++
	return e.interpret(fr)
}

// getFrame takes an activation record from the free-list (or allocates one)
// and sizes its register file for f. Pooled frames were scrubbed on release,
// so the registers a fresh activation observes are zero Values exactly as if
// newly allocated — tier-0 "fresh frame" semantics are preserved.
func (e *Engine) getFrame(f *ir.Func) *Frame {
	need := f.NumRegs
	if n := len(e.framePool); n > 0 && !e.cfg.NoFramePool {
		fr := e.framePool[n-1]
		e.framePool[n-1] = nil
		e.framePool = e.framePool[:n-1]
		fr.Fn = f
		if cap(fr.Regs) >= need {
			fr.Regs = fr.Regs[:need]
		} else {
			fr.Regs = make([]Value, need)
		}
		return fr
	}
	return &Frame{Fn: f, Regs: make([]Value, need)}
}

// putFrame scrubs a dead activation record and returns it to the free-list.
// The reset is total: register Values are zeroed (dropping any managed
// pointers, so pooled frames cannot keep dead objects — or the diagnostic
// stacks recorded on them — alive), boxed vararg cells and tracked autos are
// released, and the fault-plane byte account is cleared. A reused frame is
// observationally identical to a fresh one.
func (e *Engine) putFrame(fr *Frame) {
	if e.cfg.NoFramePool {
		return
	}
	regs := fr.Regs[:cap(fr.Regs)]
	for i := range regs {
		regs[i] = Value{}
	}
	for i := range fr.VarArgs {
		fr.VarArgs[i] = Pointer{}
	}
	fr.VarArgs = nil
	for i := range fr.Autos {
		fr.Autos[i] = nil
	}
	fr.Autos = fr.Autos[:0]
	fr.Fn = nil
	fr.FnIdx = 0
	fr.stackBytes = 0
	e.framePool = append(e.framePool, fr)
}

// InlineScope snapshots the caller-frame state that an inlined call must
// restore when it returns: the fault-plane stack-byte account and the tracked
// auto objects. Tier-1 inlining runs a callee's blocks against the caller's
// frame (in a disjoint register window); Enter/LeaveInline make that
// execution observationally identical to a real activation — same call
// accounting, same depth limit and error message, same alloca release point,
// and same use-after-return invalidation.
type InlineScope struct {
	stackBytes int64
	nAutos     int
}

// EnterInline begins an inlined activation of callee against fr. It performs
// exactly the bookkeeping invoke does for a real call — Stats.Calls, then the
// depth check (in that order, so counters and stack-overflow reports match
// tier-0 byte-for-byte).
func (e *Engine) EnterInline(fr *Frame, callee string) (InlineScope, error) {
	e.stats.Calls++
	if e.depth >= e.maxDepth {
		return InlineScope{}, &LimitError{What: fmt.Sprintf("call depth %d (stack overflow in %s)", e.maxDepth, callee)}
	}
	e.depth++
	return InlineScope{stackBytes: fr.stackBytes, nAutos: len(fr.Autos)}, nil
}

// LeaveInline ends an inlined activation: the callee's alloca bytes go back
// to the budget and, under use-after-return detection, the callee's stack
// objects are invalidated — at the same point a real frame pop would.
// It must run on both the normal and the error path (mirroring invoke's
// deferred cleanup).
func (e *Engine) LeaveInline(fr *Frame, sc InlineScope) {
	e.depth--
	e.mem.ReleaseFixed(fr.stackBytes - sc.stackBytes)
	fr.stackBytes = sc.stackBytes
	if e.cfg.DetectUseAfterReturn {
		for _, obj := range fr.Autos[sc.nAutos:] {
			obj.InvalidateReturned()
		}
	}
	fr.Autos = fr.Autos[:sc.nAutos]
}

// TrackAuto registers a stack object with its owning frame for
// use-after-return invalidation (no-op when the option is off).
func (e *Engine) TrackAuto(fr *Frame, p Pointer) {
	if e.cfg.DetectUseAfterReturn && fr != nil && p.Obj != nil {
		fr.Autos = append(fr.Autos, p.Obj)
	}
}

// BoxVarArg boxes one variadic argument value of the given IR type into its
// own managed cell. The cell's size is the promoted argument's size, so
// reading it with a wider type is an out-of-bounds read — exactly how the
// paper detects printf("%ld", int) (Fig. 12).
func (e *Engine) BoxVarArg(ty ir.Type, v Value, idx int) Pointer {
	name := fmt.Sprintf("vararg %d", idx+1)
	cell := NewObject(ty.Size(), VarargMem, name, e.id())
	cell.Ty = ty
	// The cell's descriptor records the promoted argument's scalar class so
	// that reading the other class back (printf("%d", 3.5)) is reportable.
	// Strict keeps every cell access on the generic checked path.
	cell.Desc = e.descFor(ty, ty.String())
	cell.Strict = true
	// The caller has already pushed its call edge, so the live stack names
	// the call site that supplied this argument.
	cell.AllocStack = e.callStack
	switch t := ty.(type) {
	case *ir.FloatType:
		cell.StoreFloat(0, t.Bits, v.F, Write)
	case *ir.PtrType:
		cell.StorePtr(0, v.P, Write)
	default:
		cell.StoreInt(0, ty.Size(), v.I, Write)
	}
	return Pointer{Obj: cell}
}
