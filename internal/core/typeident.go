package core

import (
	"repro/internal/ir"
	"repro/internal/memdesc"
)

// This file is the managed half of the dynamic type-identity plane: the
// engine stamps memdesc descriptors on allocations (see AllocAuto,
// initGlobals, BoxVarArg), validates checked pointer casts against them, and
// exposes the guest-visible introspection builtins _size_of_object, _type_of,
// and _bounds_of. The native machine mirrors the same descriptors in a
// memdesc.Table (internal/nativevm).

// descFor returns the shared descriptor for a declared C type, memoized by
// spelling so every object of one type shares one *Desc.
func (e *Engine) descFor(ty ir.Type, ctype string) *memdesc.Desc {
	if d, ok := e.descCache[ctype]; ok {
		return d
	}
	d := memdesc.FromIR(ty, ctype)
	if e.descCache == nil {
		e.descCache = make(map[string]*memdesc.Desc, 16)
	}
	e.descCache[ctype] = d
	return d
}

// castDescFor resolves a checked cast's target descriptor. The fast route
// reads the struct type off the instruction's Ty2 pointee; modules that have
// been through a print/parse round trip type every pointer as "ptr", so the
// fallback resolves the CType spelling ("struct foo" / "union foo") against
// the module's struct table. Memoized per engine; nil when unresolvable
// (the cast then behaves as a plain move, exactly like native).
func (e *Engine) castDescFor(in *ir.Instr) *memdesc.Desc {
	if d, ok := e.castDesc[in.CType]; ok {
		return d
	}
	var d *memdesc.Desc
	if pt, ok := in.Ty2.(*ir.PtrType); ok {
		if st, ok := pt.Elem.(*ir.StructType); ok && st.Size() > 0 {
			d = memdesc.FromIR(st, in.CType)
		}
	}
	if d == nil {
		if name, ok := taggedName(in.CType); ok {
			if st := e.mod.Structs[name]; st != nil && st.Size() > 0 {
				d = memdesc.FromIR(st, in.CType)
			}
		}
	}
	if e.castDesc == nil {
		e.castDesc = make(map[string]*memdesc.Desc, 8)
	}
	e.castDesc[in.CType] = d
	return d
}

// taggedName splits "struct foo" / "union foo" into the bare tag (shared
// with the native mirror via memdesc).
func taggedName(ctype string) (string, bool) { return memdesc.TagName(ctype) }

// isTagged reports whether a C type spelling names a struct or union.
func isTagged(ctype string) bool {
	_, ok := taggedName(ctype)
	return ok
}

// CheckCast validates a checked pointer cast (an OpCast carrying a CType)
// against the pointee's effective type. Two confusions are reportable:
//
//   - size: the allocation is too small to hold even one value of the cast
//     target (casting an undersized buffer to a struct pointer), and
//   - identity: the allocation's declared type and the cast target are both
//     named struct/union types and are incompatible (neither is a leading
//     prefix of the other, so this is not the container-of idiom).
//
// A cast of a fresh, type-less heap block at offset 0 *adopts* the target as
// the block's effective type — the malloc-then-cast pattern, mirroring the
// paper's §3.3 inference of heap types. NULL, function pointers, forged
// pointers, and freed objects pass through unchecked: the eventual
// dereference reports the better-classified error.
func (e *Engine) CheckCast(p Pointer, in *ir.Instr) *BugError {
	obj := p.Obj
	if obj == nil || p.IsFunc() || obj.Freed {
		return nil
	}
	desc := e.castDescFor(in)
	if desc == nil || desc.Size <= 0 {
		return nil
	}
	if p.Off < 0 || p.Off+desc.Size > obj.Size() {
		return &BugError{
			Kind: BadCast, Access: Read, Off: p.Off, Size: desc.Size,
			ObjSize: obj.Size(), Mem: obj.Mem, Obj: obj.Name,
			CType: desc.CType, AllocStack: obj.AllocStack,
		}
	}
	if obj.Desc == nil {
		if p.Off == 0 {
			obj.AdoptDesc(desc)
		}
		return nil
	}
	if p.Off == 0 && isTagged(obj.Desc.CType) && isTagged(desc.CType) &&
		obj.Desc.CType != desc.CType && !prefixCompatible(objType(obj), descType(desc)) {
		return &BugError{
			Kind: BadCast, Access: Read, Off: p.Off, Size: desc.Size,
			ObjSize: obj.Size(), Mem: obj.Mem, Obj: obj.Name,
			CType: desc.CType, Stored: obj.Desc.CType, AllocStack: obj.AllocStack,
		}
	}
	return nil
}

func objType(o *Object) ir.Type { return o.Ty }
func descType(d *memdesc.Desc) ir.Type {
	return d.Ty
}

// prefixCompatible reports whether one type is a leading prefix of the
// other by first-member recursion: casting a struct pointer to its first
// member's type (or the reverse, the container-of idiom) is deliberate
// layering, not confusion.
func prefixCompatible(a, b ir.Type) bool {
	if a == nil || b == nil {
		// Unknown layout on one side: stay silent rather than risk a false
		// positive (the managed engine never reports what it cannot prove).
		return true
	}
	for {
		if ir.TypesEqual(a, b) {
			return true
		}
		if sa, ok := a.(*ir.StructType); ok && len(sa.Fields) > 0 {
			if prefixAt(sa.Fields[0].Ty, b) {
				return true
			}
		}
		if sb, ok := b.(*ir.StructType); ok && len(sb.Fields) > 0 {
			b = sb.Fields[0].Ty
			continue
		}
		return false
	}
}

func prefixAt(a, b ir.Type) bool {
	for {
		if ir.TypesEqual(a, b) {
			return true
		}
		sa, ok := a.(*ir.StructType)
		if !ok || len(sa.Fields) == 0 {
			return false
		}
		a = sa.Fields[0].Ty
	}
}

// Introspection builtins (guest-visible; declared in the bundled libc).
// They are pure observers: no heap charge, no fault-plane interaction, no
// step-count dependence on prior allocation outcomes — so a program may call
// them under any FailNth schedule and render identically in every tier.

func biSizeOfObject(e *Engine, fr *Frame, args []Value) (Value, error) {
	p := args[0].P
	if p.IsNull() || p.IsFunc() || p.Obj == nil {
		// Includes pointers from denied allocations (malloc returned NULL):
		// the size of no object is well-defined as -1.
		return IntValue(-1), nil
	}
	return IntValue(p.Obj.Size()), nil
}

func biTypeOf(e *Engine, fr *Frame, args []Value) (Value, error) {
	p := args[0].P
	name := "unknown"
	switch {
	case p.IsNull():
		name = "null"
	case p.IsFunc():
		name = "function"
	case p.Obj != nil && p.Obj.DescCType() != "":
		name = p.Obj.DescCType()
	}
	return PtrValue(Pointer{Obj: e.internTypeName(name)}), nil
}

func biBoundsOf(e *Engine, fr *Frame, args []Value) (Value, error) {
	p := args[0].P
	if p.IsNull() || p.IsFunc() || p.Obj == nil || p.Obj.Freed {
		return IntValue(0), nil
	}
	rem := p.Obj.Size() - p.Off
	if rem < 0 {
		rem = 0
	}
	return IntValue(rem), nil
}

// internTypeName returns the shared managed string object for a type name
// (one object per distinct name, like biGetenv's envObjs). The objects are
// engine metadata: never heap-charged, never leak-checked.
func (e *Engine) internTypeName(s string) *Object {
	if obj, ok := e.typeObjs[s]; ok {
		return obj
	}
	obj := NewObject(int64(len(s)+1), StaticMem, "typeof", e.id())
	copy(obj.Data, s)
	if e.typeObjs == nil {
		e.typeObjs = make(map[string]*Object, 8)
	}
	e.typeObjs[s] = obj
	return obj
}
