package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestObjectBoundsExactness(t *testing.T) {
	obj := NewObject(10, HeapMem, "buf", 1)
	// Every in-bounds (offset, size) pair succeeds; everything else fails.
	for off := int64(-3); off <= 12; off++ {
		for _, size := range []int64{1, 2, 4, 8} {
			_, be := obj.LoadInt(off, size, Read)
			inBounds := off >= 0 && off+size <= 10
			if inBounds && be != nil {
				t.Errorf("load(%d,%d) failed: %v", off, size, be)
			}
			if !inBounds && be == nil {
				t.Errorf("load(%d,%d) should be out of bounds", off, size)
			}
			if !inBounds && be != nil && be.Kind != OutOfBounds {
				t.Errorf("load(%d,%d) kind = %v", off, size, be.Kind)
			}
		}
	}
}

func TestObjectUnderflowFlag(t *testing.T) {
	obj := NewObject(8, AutoMem, "a", 1)
	_, be := obj.LoadInt(-1, 1, Read)
	if be == nil || !be.Underflow() {
		t.Errorf("negative offset should be an underflow: %v", be)
	}
	_, be = obj.LoadInt(8, 1, Read)
	if be == nil || be.Underflow() {
		t.Errorf("past-the-end should be an overflow: %v", be)
	}
}

func TestObjectIntRoundTrip(t *testing.T) {
	f := func(v int64, off uint8) bool {
		obj := NewObject(64, HeapMem, "x", 1)
		o := int64(off % 56)
		if be := obj.StoreInt(o, 8, v, Write); be != nil {
			return false
		}
		got, be := obj.LoadInt(o, 8, Read)
		return be == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectNarrowIntSignExtension(t *testing.T) {
	obj := NewObject(8, HeapMem, "x", 1)
	obj.StoreInt(0, 1, 0xFF, Write)
	v, _ := obj.LoadInt(0, 1, Read)
	if v != -1 {
		t.Errorf("i8 load of 0xFF = %d, want -1 (canonical sign-extended)", v)
	}
	obj.StoreInt(2, 2, 0x8000, Write)
	v, _ = obj.LoadInt(2, 2, Read)
	if v != -32768 {
		t.Errorf("i16 load = %d", v)
	}
}

func TestObjectFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		obj := NewObject(16, HeapMem, "f", 1)
		if be := obj.StoreFloat(0, 64, v, Write); be != nil {
			return false
		}
		got, be := obj.LoadFloat(0, 64, Read)
		if be != nil {
			return false
		}
		return got == v || (got != got && v != v) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectRelaxedTypeReinterpretation(t *testing.T) {
	// The paper's relaxation: a double stored where longs live reads back
	// as the bit pattern.
	obj := NewObject(8, HeapMem, "x", 1)
	obj.StoreFloat(0, 64, 1.5, Write)
	bits, be := obj.LoadInt(0, 8, Read)
	if be != nil {
		t.Fatal(be)
	}
	if bits != 0x3FF8000000000000 {
		t.Errorf("bits = %#x", bits)
	}
}

func TestPointerSlotIntegrity(t *testing.T) {
	target := NewObject(4, HeapMem, "t", 2)
	obj := NewObject(24, HeapMem, "x", 1)
	if be := obj.StorePtr(8, Pointer{Obj: target, Off: 2}, Write); be != nil {
		t.Fatal(be)
	}
	p, be := obj.LoadPtr(8, Read)
	if be != nil || p.Obj != target || p.Off != 2 {
		t.Fatalf("pointer round trip failed: %v %v", p, be)
	}
	// Reading the pointer's bytes as an integer is a type violation.
	if _, be := obj.LoadInt(8, 8, Read); be == nil || be.Kind != TypeViolation {
		t.Errorf("int read over pointer slot: %v", be)
	}
	// Partially overlapping reads too.
	if _, be := obj.LoadInt(12, 4, Read); be == nil || be.Kind != TypeViolation {
		t.Errorf("partial overlap read: %v", be)
	}
	// Overwriting with ints kills the pointer.
	if be := obj.StoreInt(8, 8, 42, Write); be != nil {
		t.Fatal(be)
	}
	if _, be := obj.LoadPtr(8, Read); be == nil || be.Kind != TypeViolation {
		t.Errorf("pointer should be dead after int overwrite: %v", be)
	}
}

func TestNullPointerFromZeroBytes(t *testing.T) {
	obj := NewObject(16, HeapMem, "z", 1)
	p, be := obj.LoadPtr(0, Read)
	if be != nil || !p.IsNull() {
		t.Errorf("zeroed memory should read as NULL: %v %v", p, be)
	}
	obj.StoreInt(0, 1, 1, Write)
	if _, be := obj.LoadPtr(0, Read); be == nil || be.Kind != TypeViolation {
		t.Errorf("nonzero ints should not read as a pointer: %v", be)
	}
}

func TestStoreNullPtrZeroesBytes(t *testing.T) {
	obj := NewObject(16, HeapMem, "z", 1)
	obj.StorePtr(0, Pointer{Obj: obj}, Write)
	obj.StorePtr(0, Pointer{}, Write)
	v, be := obj.LoadInt(0, 8, Read)
	if be != nil || v != 0 {
		t.Errorf("NULL store should zero bytes: %d %v", v, be)
	}
}

func TestFreeSemantics(t *testing.T) {
	obj := NewObject(8, HeapMem, "h", 1)
	obj.Free()
	if !obj.Freed || obj.Data != nil {
		t.Error("Free must drop the data reference (GC reclaim, Fig. 7)")
	}
	if _, be := obj.LoadInt(0, 4, Read); be == nil || be.Kind != UseAfterFree {
		t.Errorf("access after free: %v", be)
	}
	if be := obj.StoreInt(0, 4, 1, Write); be == nil || be.Kind != UseAfterFree {
		t.Errorf("store after free: %v", be)
	}
	if obj.Size() != 8 {
		t.Error("freed object should remember its size for diagnostics")
	}
}

func TestPointerHelpers(t *testing.T) {
	a := NewObject(8, HeapMem, "a", 1)
	p := Pointer{Obj: a, Off: 4}
	q := p.Add(2)
	if q.Off != 6 || p.Off != 4 {
		t.Error("Add must not mutate the receiver")
	}
	if !p.Equal(Pointer{Obj: a, Off: 4}) || p.Equal(q) {
		t.Error("Equal broken")
	}
	fp := FuncPointer(3)
	if !fp.IsFunc() || fp.FuncIndex() != 3 || fp.IsNull() {
		t.Error("function pointer identity broken")
	}
	if !(Pointer{}).IsNull() {
		t.Error("zero pointer should be NULL")
	}
}

func TestEvalPtrCmpOrdering(t *testing.T) {
	a := NewObject(8, HeapMem, "a", 1)
	b := NewObject(8, HeapMem, "b", 2)
	p1 := Pointer{Obj: a, Off: 0}
	p2 := Pointer{Obj: a, Off: 4}
	p3 := Pointer{Obj: b, Off: 0}
	if !EvalPtrCmp(ir.Ult, p1, p2) || EvalPtrCmp(ir.Ult, p2, p1) {
		t.Error("same-object ordering by offset failed")
	}
	if !EvalPtrCmp(ir.Ult, p1, p3) {
		t.Error("cross-object ordering should follow allocation ids")
	}
	if !EvalPtrCmp(ir.Ule, p1, p1) || !EvalPtrCmp(ir.Uge, p2, p1) {
		t.Error("reflexive/inverse comparisons failed")
	}
	if !EvalPtrCmp(ir.Eq, p1, p1) || !EvalPtrCmp(ir.Ne, p1, p2) {
		t.Error("equality failed")
	}
}

func TestBugErrorMessages(t *testing.T) {
	cases := []struct {
		be   BugError
		want string
	}{
		{BugError{Kind: OutOfBounds, Access: Write, Off: 40, Size: 4, ObjSize: 40, Mem: AutoMem, Obj: "arr", Func: "main"},
			"invalid write of size 4 at offset 40 of 40-byte stack object 'arr' (buffer overflow) in main"},
		{BugError{Kind: UseAfterFree, Access: Read, Size: 8, Mem: HeapMem, Obj: "malloc"},
			"invalid read of size 8 to freed heap object 'malloc'"},
		{BugError{Kind: DoubleFree, Mem: HeapMem},
			"double free of heap object"},
		{BugError{Kind: NullDeref, Access: Read, Size: 4},
			"NULL pointer dereference (read of size 4 at offset 0)"},
	}
	for _, c := range cases {
		if got := c.be.Error(); got != c.want {
			t.Errorf("got  %q\nwant %q", got, c.want)
		}
	}
}
