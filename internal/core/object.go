package core

import (
	"encoding/binary"
	"math"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/memdesc"
)

// Object is a managed allocation. Its storage is a Go byte slice plus a
// pointer-slot table; the engine never hands out raw addresses, only
// Pointer values referencing an Object.
//
// This is the Go rendering of the paper's ManagedObject hierarchy (Fig. 5).
// Where the Java implementation uses one wrapper class per element type
// (I32Array, AddressArray, ...) and infers heap allocation types on first
// access (§3.3), this implementation backs every object with bytes and keeps
// an exact table of which 8-byte slots currently hold pointers. The
// observable guarantees are identical:
//
//   - spatial safety: every access is bounds-checked against the object,
//   - temporal safety: free() drops the storage, so any later access fails,
//   - pointer integrity: a pointer can only be read from a slot a pointer
//     was stored to; ints reinterpreted as pointers are a type violation,
//   - relaxed data typing: ints/floats may reinterpret each other's bytes
//     (the paper's double-in-long-array relaxation comes for free).
type Object struct {
	// Data is the live storage; nil once freed, so the allocation is
	// reclaimable by Go's collector exactly as in the paper's Fig. 7.
	Data []byte
	// Ptrs maps byte offsets to pointer values stored at those offsets.
	// nil for objects that never held a pointer.
	Ptrs map[int64]Pointer

	Mem   MemKind
	Name  string // allocation-site variable name (diagnostics)
	Freed bool
	// Returned marks a stack object invalidated by its frame popping
	// (use-after-return detection).
	Returned bool
	ID       int64 // allocation order; gives pointers a stable total order

	// Ty is the allocation's IR type if known (diagnostics only).
	Ty ir.Type

	// Desc is the allocation's effective (dynamic) type descriptor: stamped
	// at the allocation site for stack objects, globals, and vararg cells,
	// and adopted at the first checked pointer cast for heap objects. nil
	// when the front end declared nothing.
	Desc *memdesc.Desc
	// Strict excludes the object from every tier-2 Direct* fast path, the
	// same way pointer-carrying objects are excluded: accesses must take the
	// generic checked path so the type-identity checks (union kinds, vararg
	// classes) always run. Set for vararg cells and union-carrying objects.
	Strict bool
	// unionKinds records, per byte offset inside union storage, the scalar
	// class last stored there — the state a bad-union-read check compares
	// against. nil for objects without union storage.
	unionKinds map[int64]unionRec

	// AllocStack is the guest call stack at the allocation site and
	// FreeStack the stack at the free (or frame pop) that retired the
	// object. Both are persistent diag.Stack values — recording them is one
	// pointer copy — and both flow into every BugError that blames this
	// object, giving reports their "allocated by / freed by" backtraces.
	AllocStack diag.Stack
	FreeStack  diag.Stack

	// size is kept separately from len(Data) so freed objects still report
	// their allocated size in error messages.
	size int64
}

// NewObject allocates a managed object of the given size.
func NewObject(size int64, mem MemKind, name string, id int64) *Object {
	return &Object{Data: make([]byte, size), Mem: mem, Name: name, ID: id, size: size}
}

// Size returns the object's size in bytes (its allocated size even after
// being freed, for error messages).
func (o *Object) Size() int64 { return o.size }

// resetStatic returns a global (static-storage) object to its just-allocated
// state for engine reuse: zeroed bytes, no pointer slots, no union records,
// live again, and no retained backtraces. Identity fields (ID, Ty, Desc,
// Strict, Name, size) are module properties and survive, which is what keeps
// Pointer.OrderKey stable across a pooled engine's runs.
func (o *Object) resetStatic() {
	if o.Data == nil || int64(len(o.Data)) != o.size {
		o.Data = make([]byte, o.size)
	} else {
		for i := range o.Data {
			o.Data[i] = 0
		}
	}
	o.Ptrs = nil
	o.unionKinds = nil
	o.Freed = false
	o.Returned = false
	o.AllocStack = diag.Stack{}
	o.FreeStack = diag.Stack{}
}

// Pointer is the paper's Address class: a managed reference plus a byte
// offset for pointer arithmetic (Fig. 6). The zero Pointer is NULL.
// Function pointers have Fn >= 0 and no object.
type Pointer struct {
	Obj *Object
	Off int64
	Fn  int // function index + 1; 0 means "not a function pointer"
}

// IsNull reports whether p is the null pointer.
func (p Pointer) IsNull() bool { return p.Obj == nil && p.Fn == 0 }

// IsFunc reports whether p designates a function.
func (p Pointer) IsFunc() bool { return p.Fn != 0 }

// FuncIndex returns the function index for a function pointer.
func (p Pointer) FuncIndex() int { return p.Fn - 1 }

// FuncPointer builds a pointer to the function with the given module index.
func FuncPointer(idx int) Pointer { return Pointer{Fn: idx + 1} }

// Add returns p advanced by delta bytes (pointer arithmetic never traps; only
// dereferencing does, per C and per the paper).
func (p Pointer) Add(delta int64) Pointer {
	p.Off += delta
	return p
}

// OrderKey gives pointers a deterministic total order so that programs
// sorting pointers (qsort) behave reproducibly. Comparing pointers into
// different objects is undefined in C; the engine makes it deterministic
// rather than an error, matching the paper's relaxations.
func (p Pointer) OrderKey() (int64, int64) {
	if p.Obj == nil {
		return 0, p.Off
	}
	return p.Obj.ID, p.Off
}

// Equal reports pointer equality (same object and offset, or both NULL).
func (p Pointer) Equal(q Pointer) bool {
	return p.Obj == q.Obj && p.Off == q.Off && p.Fn == q.Fn
}

// unionRec is one recorded scalar store into union storage.
type unionRec struct {
	size int64
	kind memdesc.Kind
}

// AdoptDesc stamps a descriptor on a previously type-less object (the
// malloc-then-cast pattern: the first checked cast determines the heap
// block's effective type, mirroring the paper's §3.3 type inference on
// first access). Union-carrying descriptors make the object Strict.
func (o *Object) AdoptDesc(d *memdesc.Desc) {
	if o.Desc != nil || d == nil {
		return
	}
	o.Desc = d
	if o.Ty == nil {
		o.Ty = d.Ty
	}
	if d.HasUnions() {
		o.Strict = true
	}
}

// DescCType returns the effective C type name, or "" when untyped.
func (o *Object) DescCType() string {
	if o.Desc != nil {
		return o.Desc.CType
	}
	return ""
}

// unionSpanAt reports whether [off, off+size) lies inside union storage of
// the object's effective type. Descriptors describe one element; objects
// sized a multiple of the element (arrays, counted allocas) check the
// element-relative offset.
func (o *Object) unionSpanAt(off, size int64) bool {
	d := o.Desc
	if d == nil || len(d.Unions) == 0 {
		return false
	}
	rel := off
	if d.Size > 0 && off >= d.Size {
		rel = off % d.Size
		if rel+size > d.Size { // straddles an element boundary
			return false
		}
	}
	_, ok := d.UnionAt(rel, size)
	return ok
}

// recordUnionKind notes that [off, off+size) inside union storage now holds
// a value of the given scalar class (replacing overlapping records).
func (o *Object) recordUnionKind(off, size int64, k memdesc.Kind) {
	o.clearUnionRecs(off, off+size)
	if o.unionKinds == nil {
		o.unionKinds = make(map[int64]unionRec, 4)
	}
	o.unionKinds[off] = unionRec{size: size, kind: k}
}

// clearUnionRecs drops records overlapping [lo, hi) — raw byte stores and
// block copies degrade union storage back to "unknown" (never a false
// positive from stale state).
func (o *Object) clearUnionRecs(lo, hi int64) {
	for off, r := range o.unionKinds {
		if off < hi && off+r.size > lo {
			delete(o.unionKinds, off)
		}
	}
}

// ClearUnionKinds is the exported form used by memcpy/memset-style builtins.
func (o *Object) ClearUnionKinds(lo, hi int64) {
	if o.unionKinds != nil {
		o.clearUnionRecs(lo, hi)
	}
}

// checkUnionRead reports a BadUnionRead when [off, off+size) reads union
// storage whose last store was the other scalar class. Single-byte reads are
// exempt (char-wise inspection of a union is normal C), as are reads that
// are not fully covered by one recorded store (raw reinterpretation of mixed
// bytes, which the relaxed model permits).
func (o *Object) checkUnionRead(off, size int64, k memdesc.Kind) *BugError {
	if o.unionKinds == nil || size <= 1 || (k != memdesc.Int && k != memdesc.Float) {
		return nil
	}
	for roff, r := range o.unionKinds {
		if roff <= off && off+size <= roff+r.size {
			if (r.kind == memdesc.Int || r.kind == memdesc.Float) && r.kind != k {
				return &BugError{
					Kind: BadUnionRead, Access: Read, Off: off, Size: size,
					ObjSize: o.size, Mem: o.Mem, Obj: o.Name,
					CType: o.DescCType(), Stored: r.kind.String(), Accessed: k.String(),
					AllocStack: o.AllocStack,
				}
			}
			return nil
		}
	}
	return nil
}

// noteTypedStore records the scalar class of a successful typed store when
// it lands wholly inside union storage. Single-byte stores are not
// classified (char-wise writes are raw bytes).
func (o *Object) noteTypedStore(off, size int64, k memdesc.Kind) {
	if size > 1 && o.Desc.HasUnions() && o.unionSpanAt(off, size) {
		o.recordUnionKind(off, size, k)
	}
}

// typedReadCheck runs the type-identity read checks for a Strict object:
// vararg cells compare the read's scalar class against the passed argument's;
// union carriers compare against the class last stored.
func (o *Object) typedReadCheck(off, size int64, k memdesc.Kind) *BugError {
	if o.Mem == VarargMem {
		if o.Desc == nil {
			return nil
		}
		sk := o.Desc.Kind
		if (sk == memdesc.Int || sk == memdesc.Float) && (k == memdesc.Int || k == memdesc.Float) && sk != k {
			return &BugError{
				Kind: VarargMismatch, Access: Read, Off: off, Size: size,
				ObjSize: o.size, Mem: o.Mem, Obj: o.Name,
				CType: o.Desc.CType, Stored: sk.String(), Accessed: k.String(),
				AllocStack: o.AllocStack,
			}
		}
		return nil
	}
	return o.checkUnionRead(off, size, k)
}

// access validates an access of `size` bytes at byte offset off and returns
// a BugError template when it is invalid. A nil return means the access is
// in bounds on a live object.
func (o *Object) access(off, size int64, acc AccessKind) *BugError {
	if o.Freed {
		kind := UseAfterFree
		if o.Returned {
			kind = UseAfterReturn
		}
		return &BugError{Kind: kind, Access: acc, Off: off, Size: size, ObjSize: o.size, Mem: o.Mem, Obj: o.Name,
			CType: o.DescCType(), AllocStack: o.AllocStack, FreeStack: o.FreeStack}
	}
	if off < 0 || off+size > int64(len(o.Data)) {
		return &BugError{Kind: OutOfBounds, Access: acc, Off: off, Size: size, ObjSize: o.size, Mem: o.Mem, Obj: o.Name,
			CType: o.DescCType(), AllocStack: o.AllocStack}
	}
	return nil
}

// overlapsPtr reports whether [off, off+size) overlaps a pointer slot, and
// the slot offset if so.
func (o *Object) overlapsPtr(off, size int64) (int64, bool) {
	if len(o.Ptrs) == 0 {
		return 0, false
	}
	// Pointer slots are 8 bytes; check the up-to-two candidate slots.
	base := (off / 8) * 8
	for s := base - 8; s < off+size; s += 8 {
		if _, ok := o.Ptrs[s]; ok && s+8 > off && s < off+size {
			return s, true
		}
	}
	return 0, false
}

// LoadInt reads a size-byte little-endian integer at off, sign-extended.
func (o *Object) LoadInt(off, size int64, acc AccessKind) (int64, *BugError) {
	if be := o.access(off, size, acc); be != nil {
		return 0, be
	}
	if _, bad := o.overlapsPtr(off, size); bad {
		// Reading pointer bytes as an integer would let the program forge
		// or leak addresses; the paper's model disallows it (§3.2).
		return 0, &BugError{Kind: TypeViolation, Access: acc, Off: off, Size: size, ObjSize: o.size, Mem: o.Mem, Obj: o.Name, AllocStack: o.AllocStack}
	}
	var v uint64
	for i := int64(0); i < size; i++ {
		v |= uint64(o.Data[off+i]) << (8 * uint(i))
	}
	// sign-extend to the canonical 64-bit register form
	shift := uint(64 - 8*size)
	return int64(v<<shift) >> shift, nil
}

// StoreInt writes the low size bytes of v at off.
func (o *Object) StoreInt(off, size int64, v int64, acc AccessKind) *BugError {
	if be := o.access(off, size, acc); be != nil {
		return be
	}
	if s, bad := o.overlapsPtr(off, size); bad {
		delete(o.Ptrs, s) // overwriting a pointer with ints kills the pointer
	}
	if o.unionKinds != nil {
		// Raw byte stores degrade overlapping union records to "unknown";
		// StoreTyped re-records for stores it can classify.
		o.clearUnionRecs(off, off+size)
	}
	for i := int64(0); i < size; i++ {
		o.Data[off+i] = byte(v >> (8 * uint(i)))
	}
	return nil
}

// LoadFloat reads a 4- or 8-byte float at off.
func (o *Object) LoadFloat(off int64, bits int, acc AccessKind) (float64, *BugError) {
	v, be := o.LoadInt(off, int64(bits/8), acc)
	if be != nil {
		return 0, be
	}
	if bits == 32 {
		return float64(math.Float32frombits(uint32(v))), nil
	}
	return math.Float64frombits(uint64(v)), nil
}

// StoreFloat writes a 4- or 8-byte float at off.
func (o *Object) StoreFloat(off int64, bits int, v float64, acc AccessKind) *BugError {
	if bits == 32 {
		return o.StoreInt(off, 4, int64(math.Float32bits(float32(v))), acc)
	}
	return o.StoreInt(off, 8, int64(math.Float64bits(v)), acc)
}

// LoadPtr reads a pointer at off. Reading 8 zero bytes yields NULL (so
// calloc'ed and zero-initialized memory reads as null pointers); reading
// bytes that were not stored as a pointer is a type violation.
func (o *Object) LoadPtr(off int64, acc AccessKind) (Pointer, *BugError) {
	if be := o.access(off, 8, acc); be != nil {
		return Pointer{}, be
	}
	if p, ok := o.Ptrs[off]; ok {
		return p, nil
	}
	if _, bad := o.overlapsPtr(off, 8); bad {
		return Pointer{}, &BugError{Kind: TypeViolation, Access: acc, Off: off, Size: 8, ObjSize: o.size, Mem: o.Mem, Obj: o.Name, AllocStack: o.AllocStack}
	}
	allZero := true
	for i := int64(0); i < 8; i++ {
		if o.Data[off+i] != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return Pointer{}, nil
	}
	return Pointer{}, &BugError{Kind: TypeViolation, Access: acc, Off: off, Size: 8, ObjSize: o.size, Mem: o.Mem, Obj: o.Name, AllocStack: o.AllocStack}
}

// StorePtr writes a pointer at off (must be within bounds; unaligned pointer
// slots are permitted but each slot is keyed by its exact offset).
func (o *Object) StorePtr(off int64, p Pointer, acc AccessKind) *BugError {
	if be := o.access(off, 8, acc); be != nil {
		return be
	}
	if s, bad := o.overlapsPtr(off, 8); bad && s != off {
		delete(o.Ptrs, s)
	}
	if o.unionKinds != nil {
		o.clearUnionRecs(off, off+8)
	}
	if p.IsNull() && p.Off == 0 {
		delete(o.Ptrs, off)
		for i := int64(0); i < 8; i++ {
			o.Data[off+i] = 0
		}
		return nil
	}
	// A null pointer with a nonzero offset (NULL+4 after pointer arithmetic on
	// a failed malloc) keeps its offset through the memory roundtrip, so a
	// later dereference reports the same effective offset whether the pointer
	// lived in memory (tier-0) or in a register (tier-1 after scalar
	// promotion). Such a pointer still compares equal to NULL only at Off 0.
	if o.Ptrs == nil {
		o.Ptrs = make(map[int64]Pointer, 4)
	}
	o.Ptrs[off] = p
	// The underlying bytes become an opaque non-zero marker so that
	// "all-zero means NULL" stays sound.
	binary.LittleEndian.PutUint64(o.Data[off:], 0xdeadbeefdeadbeef)
	return nil
}

// InvalidateReturned marks a stack object dead because its function
// returned; later accesses report a use-after-return (Returned
// distinguishes the message from a heap use-after-free).
func (o *Object) InvalidateReturned() {
	o.Data = nil
	o.Ptrs = nil
	o.Freed = true
	o.Returned = true
}

// FreeWith is Free plus a record of the free-site call stack, which later
// use-after-free / double-free reports print as their "freed by" backtrace.
func (o *Object) FreeWith(st diag.Stack) {
	o.FreeStack = st
	o.Free()
}

// Free releases a heap object (paper Fig. 7/8 semantics): the data reference
// is dropped so the garbage collector can reclaim the storage, and any later
// access reports a use-after-free.
func (o *Object) Free() {
	o.Data = nil
	o.Ptrs = nil
	o.Freed = true
}
