// Package core implements Safe Sulong's managed execution engine — the
// paper's primary contribution. C objects are represented as managed objects
// (typed, size-carrying allocations addressed by Pointer{Obj, Off} values
// instead of raw machine addresses), so every load, store, and free is
// checked exactly. There is no shadow memory and no redzone: an access is
// valid iff it lies inside the bounds of the live object its pointer was
// derived from, which is why the engine cannot miss an error of a supported
// category (paper §3.4) and cannot report false positives.
package core

import (
	"fmt"

	"repro/internal/diag"
)

// BugKind classifies a detected memory error, mirroring the paper's
// categories (§2.1): spatial errors, temporal errors, NULL dereferences, and
// the "other" group (invalid free, double free, variadic-argument misuse).
type BugKind int

const (
	OutOfBounds BugKind = iota
	UseAfterFree
	DoubleFree
	InvalidFree
	NullDeref
	TypeViolation // disallowed reinterpretation, e.g. forging a pointer from ints
	VarargMisuse  // access to a non-existent or mistyped variadic argument
	DivideByZero
	MemoryLeak     // reported at exit for unfreed heap objects (paper §6)
	UseAfterReturn // access to a stack object after its function returned

	// Type-confusion categories (beyond the paper): detected by comparing
	// accesses against the allocation's dynamic (effective) type descriptor.
	BadUnionRead   // union storage read with a different scalar class than last stored
	BadCast        // pointer cast to a type the allocation cannot hold
	VarargMismatch // variadic cell read with a different scalar class than passed
)

var bugNames = [...]string{
	OutOfBounds:    "out-of-bounds access",
	UseAfterFree:   "use after free",
	DoubleFree:     "double free",
	InvalidFree:    "invalid free",
	NullDeref:      "NULL pointer dereference",
	TypeViolation:  "type violation",
	VarargMisuse:   "variadic argument misuse",
	DivideByZero:   "division by zero",
	MemoryLeak:     "memory leak",
	UseAfterReturn: "use after return",
	BadUnionRead:   "bad union read",
	BadCast:        "mismatched pointer cast",
	VarargMismatch: "variadic argument mismatch",
}

func (k BugKind) String() string { return bugNames[k] }

// AccessKind says what the program was doing when the bug fired.
type AccessKind int

const (
	Read AccessKind = iota
	Write
	Free
	CallAccess
)

var accessNames = [...]string{Read: "read", Write: "write", Free: "free", CallAccess: "call"}

func (a AccessKind) String() string { return accessNames[a] }

// MemKind is the storage class of the object involved, used both for error
// messages and for the paper's Table 2 breakdown.
type MemKind int

const (
	AutoMem   MemKind = iota // stack
	HeapMem                  // malloc/calloc/realloc
	StaticMem                // globals
	ArgvMem                  // the main() argument vector (uninstrumentable natively)
	VarargMem                // boxed variadic arguments
)

var memNames = [...]string{
	AutoMem: "stack", HeapMem: "heap", StaticMem: "global", ArgvMem: "main-args", VarargMem: "vararg",
}

func (m MemKind) String() string { return memNames[m] }

// BugError is the exact error report the managed engine produces. It carries
// everything the paper's messages include: the kind, the access, the offset
// and size, the object's size, storage class, and allocation-site name.
type BugError struct {
	Kind    BugKind
	Access  AccessKind
	Off     int64 // byte offset of the access relative to the object start
	Size    int64 // access size in bytes
	ObjSize int64
	Mem     MemKind
	Obj     string // allocation-site variable name, if known
	Func    string // function in which the access happened
	Line    int    // source line, if known

	// CType is the declared C type involved, when the type-identity plane
	// knows one: the cast target for BadCast, the involved allocation's
	// effective type otherwise. Stored and Accessed are the two sides of a
	// type-confusion report — what the storage last held (or the allocation
	// declared) versus how the access interpreted it.
	CType    string
	Stored   string
	Accessed string

	// AccessStack is the guest call stack at the faulting access (innermost
	// frame first). AllocStack and FreeStack are the stacks at the involved
	// object's allocation and free sites, when the object is known. All
	// three are persistent diag.Stack values captured in O(1).
	AccessStack diag.Stack
	AllocStack  diag.Stack
	FreeStack   diag.Stack
}

// Diagnostic converts the error to the unified diagnostics form. tool and
// tier record provenance; tier is excluded from Diagnostic.Render, so
// tier-0 and tier-1 produce byte-identical reports.
func (e *BugError) Diagnostic(tool, tier string) *diag.Diagnostic {
	return &diag.Diagnostic{
		Kind:    e.Kind.String(),
		Message: e.Error(),
		Tool:    tool,
		Tier:    tier,
		Access:  e.AccessStack,
		Alloc:   e.AllocStack,
		Free:    e.FreeStack,
	}
}

// Underflow reports whether an out-of-bounds access is before the object
// (paper Table 2 distinguishes underflows from overflows).
func (e *BugError) Underflow() bool { return e.Kind == OutOfBounds && e.Off < 0 }

func (e *BugError) Error() string {
	loc := ""
	if e.Func != "" {
		loc = " in " + e.Func
		if e.Line > 0 {
			loc = fmt.Sprintf("%s (line %d)", loc, e.Line)
		}
	}
	name := ""
	if e.Obj != "" {
		name = fmt.Sprintf(" '%s'", e.Obj)
	}
	switch e.Kind {
	case OutOfBounds:
		dir := "overflow"
		if e.Underflow() {
			dir = "underflow"
		}
		return fmt.Sprintf("invalid %s of size %d at offset %d of %d-byte %s object%s (buffer %s)%s",
			e.Access, e.Size, e.Off, e.ObjSize, e.Mem, name, dir, loc)
	case UseAfterFree:
		return fmt.Sprintf("invalid %s of size %d to freed %s object%s%s", e.Access, e.Size, e.Mem, name, loc)
	case DoubleFree:
		return fmt.Sprintf("double free of %s object%s%s", e.Mem, name, loc)
	case InvalidFree:
		if e.Off != 0 {
			return fmt.Sprintf("invalid free: pointer into the middle (offset %d) of %s object%s%s", e.Off, e.Mem, name, loc)
		}
		return fmt.Sprintf("invalid free of %s object%s (not heap-allocated)%s", e.Mem, name, loc)
	case NullDeref:
		return fmt.Sprintf("NULL pointer dereference (%s of size %d at offset %d)%s", e.Access, e.Size, e.Off, loc)
	case TypeViolation:
		return fmt.Sprintf("type violation: %s of size %d at offset %d of %s object%s%s", e.Access, e.Size, e.Off, e.Mem, name, loc)
	case VarargMisuse:
		return fmt.Sprintf("variadic argument misuse%s%s", name, loc)
	case DivideByZero:
		return fmt.Sprintf("division by zero%s", loc)
	case MemoryLeak:
		return fmt.Sprintf("memory leak: %d-byte heap object%s never freed", e.ObjSize, name)
	case UseAfterReturn:
		return fmt.Sprintf("invalid %s of size %d to %s object%s after its function returned%s",
			e.Access, e.Size, e.Mem, name, loc)
	case BadUnionRead:
		return fmt.Sprintf("bad union read: %s of size %d at offset %d of %s object%s reads %s but union storage last held %s%s",
			e.Access, e.Size, e.Off, e.Mem, name, e.Accessed, e.Stored, loc)
	case BadCast:
		if e.Stored != "" {
			return fmt.Sprintf("mismatched pointer cast: %s object%s of type %s cast to incompatible %s%s",
				e.Mem, name, e.Stored, e.CType, loc)
		}
		return fmt.Sprintf("mismatched pointer cast: cast to %s (%d bytes) at offset %d of %d-byte %s object%s%s",
			e.CType, e.Size, e.Off, e.ObjSize, e.Mem, name, loc)
	case VarargMismatch:
		return fmt.Sprintf("variadic argument mismatch: %s of size %d reads %s object%s as %s but it was passed as %s%s",
			e.Access, e.Size, e.Mem, name, e.Accessed, e.Stored, loc)
	}
	return "unknown bug"
}

// ExitError carries a program's exit() status through the interpreter.
type ExitError struct {
	Code int
}

func (e *ExitError) Error() string { return fmt.Sprintf("program exited with status %d", e.Code) }

// LimitError reports that the engine's step or memory budget was exhausted.
type LimitError struct {
	What string
}

func (e *LimitError) Error() string { return "execution limit exceeded: " + e.What }

// ResourceError reports *hard* guest-memory exhaustion: a stack or global
// allocation exceeded the run's heap budget (Config.MaxHeapBytes). Heap
// exhaustion is soft — guest malloc returns NULL, which C programs can
// handle — but C has no way to report a failed alloca or global, so the
// engine surfaces this structured error instead and harnesses classify the
// run "oom" (a deterministic outcome, like LimitError's "timeout").
//
// The message is deterministic for a given program and budget (no
// addresses, no elapsed quantities beyond the configured limit), so matrix
// renders that include it stay byte-identical at any worker count.
type ResourceError struct {
	Resource  string // "stack" or "global"
	Requested int64  // bytes the allocation asked for
	Limit     int64  // the configured budget it exceeded
	// Guest is the guest call stack at the exhausted allocation, when the
	// engine had one (global-init exhaustion happens before main runs).
	Guest diag.Stack
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("guest memory exhausted: %s allocation of %d bytes exceeds heap budget of %d bytes",
		e.Resource, e.Requested, e.Limit)
}
