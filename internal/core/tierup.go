// Asynchronous tiering: the background compile pool, on-stack replacement
// at hot loop back-edges, and speculative deoptimization.
//
// The synchronous tier-up path compiles a hot function on the execution
// thread at the moment its call count crosses the threshold — the compile
// pause is on the critical path, and a hot loop *entered once* never tiers
// up at all. This file abstracts that into the Graal-shaped pipeline the
// paper's Safe Sulong inherits from Truffle:
//
//		profile → enqueue → compile (background) → install → OSR → deopt
//
//	  - Profiling stays where it was: per-function call counts in invoke, plus
//	    per-(function, loop header) back-edge counts in the interpreter.
//	  - Enqueue hands a (function, header) key to a bounded goroutine pool
//	    owned by the engine. Workers compile against the immutable module (the
//	    tier-1 compiler clones before optimizing) while tier-0 keeps running.
//	  - Install is the safe publication point: workers never touch engine
//	    state; they post results to a mutex-guarded mailbox, and the engine —
//	    which is single-threaded — drains it at dispatch points (call entry,
//	    back edge). Compiled code therefore becomes visible only between
//	    guest instructions, never in the middle of one.
//	  - OSR transfers a live interpreter activation into compiled code at a
//	    loop header. OSR entries are compiled *frame-compatible* (no scalar
//	    promotion, no instruction restructuring), so the interpreter frame is
//	    the compiled frame: the transfer is a function call with the same
//	    *Frame, entered at the header block.
//	  - Deopt is the reverse transfer. Frame-compatible code may speculate
//	    per-site invariants ("this access stays direct: live object, no
//	    pointer slots, in bounds"); a failed guard returns a *DeoptError
//	    naming the exact (block, instruction), the ledger refunds the fuel of
//	    everything from that instruction on, and the interpreter resumes at
//	    it — re-executing the instruction generically, which also reproduces
//	    the exact tier-0 diagnostic if the failure was a real memory error.
//
// The fuel ledger makes the nondeterministic timing safe: compiled code is
// observationally identical to the interpreter (same output, same
// Stats.Steps/Calls, same diagnostics), so it does not matter *when* an
// install or an OSR entry happens — parity holds for every interleaving.
package core

import (
	"sync"
	"sync/atomic"
)

// DeoptError is the control transfer from speculative tier-1 code back to
// the interpreter: a guard failed before instruction (Blk, Instr) executed.
// It is consumed by the interpreter's OSR transfer site, never surfaces to
// users, and deliberately does not wrap another error — a deopt is not a
// failure, it is a tier change.
type DeoptError struct {
	Blk   int
	Instr int
}

func (d *DeoptError) Error() string { return "core: deoptimize to tier-0" }

// OSRCompiler is implemented by tier-1 compilers that can produce a
// frame-compatible compiled entry starting at a loop header. A nil result
// means the header is not OSR-able (not a single-header loop, or lowering
// bailed); the engine records the failure and never re-requests it.
type OSRCompiler interface {
	CompileOSR(e *Engine, fidx, header int) CompiledFunc
}

// tierKey identifies one compilation request: a function index plus the OSR
// loop-header block, or header -1 for a function-entry compilation.
type tierKey struct {
	fidx   int
	header int
}

type tierResult struct {
	key tierKey
	fn  CompiledFunc
}

// tierPool is the bounded background compile pool. Lifecycle: NewEngine
// starts the workers when Config.AsyncJIT is set; Engine.Close stops them
// and must be called by whoever owns the engine. Cancellation composes with
// the run governor: a stopped governor makes workers drain their queue
// without compiling, so RunCtx teardown is never blocked behind a compile.
type tierPool struct {
	jobs chan tierKey
	wg   sync.WaitGroup

	mu     sync.Mutex
	done   []tierResult
	closed bool
	// pending is the engine thread's cheap "mailbox non-empty" probe,
	// checked at every dispatch point without taking the mutex.
	pending atomic.Bool
}

// publish posts a finished compilation for the engine thread to install.
// After Close has marked the pool closed, results are dropped: nothing is
// ever installed past engine teardown.
func (p *tierPool) publish(r tierResult) {
	p.mu.Lock()
	if !p.closed {
		p.done = append(p.done, r)
		p.pending.Store(true)
	}
	p.mu.Unlock()
}

// take removes and returns every finished compilation.
func (p *tierPool) take() []tierResult {
	p.mu.Lock()
	rs := p.done
	p.done = nil
	p.pending.Store(false)
	p.mu.Unlock()
	return rs
}

func (p *tierPool) worker(e *Engine) {
	defer p.wg.Done()
	for k := range p.jobs {
		if e.gov.Stopped() {
			// Cancelled run: drain the queue without compiling so Close
			// returns promptly and no new code appears during teardown.
			continue
		}
		var fn CompiledFunc
		if k.header < 0 {
			fn = e.cfg.Tier1.Compile(e, k.fidx)
		} else if oc, ok := e.cfg.Tier1.(OSRCompiler); ok {
			fn = oc.CompileOSR(e, k.fidx, k.header)
		}
		p.publish(tierResult{key: k, fn: fn})
	}
}

// startPool launches the background compile workers (NewEngine, when
// Config.AsyncJIT is set and a tier-1 compiler is configured).
func (e *Engine) startPool() {
	n := e.cfg.JITWorkers
	if n <= 0 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	e.pool = &tierPool{jobs: make(chan tierKey, 64)}
	e.pool.wg.Add(n)
	for i := 0; i < n; i++ {
		go e.pool.worker(e)
	}
}

// Close stops the background compile pool: the job queue is closed, every
// worker is joined, and the result mailbox is sealed so a result published
// between the last drain and the join can never be installed. Idempotent.
// Engines created with Config.AsyncJIT must be closed by their owner; an
// engine remains usable afterwards, falling back to synchronous tier-up.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		p := e.pool
		if p == nil {
			return
		}
		close(p.jobs)
		p.wg.Wait()
		p.mu.Lock()
		p.closed = true
		p.done = nil
		p.pending.Store(false)
		p.mu.Unlock()
		e.pool = nil
	})
}

// requestCompile enqueues a background compilation if the key is not already
// in flight. A saturated queue drops the request — the site stays hot, so
// the next threshold crossing re-requests it. Keys whose compilation bailed
// (nil result) stay marked queued forever: a bail is deterministic, so
// retrying would only burn a worker.
func (e *Engine) requestCompile(k tierKey) {
	if e.queued == nil {
		e.queued = make(map[tierKey]bool)
	}
	if e.queued[k] {
		return
	}
	select {
	case e.pool.jobs <- k:
		e.queued[k] = true
	default:
	}
}

// installReady is the safe publication point: it runs on the engine thread,
// between guest instructions, and moves finished background compilations
// into the dispatch tables. Called from invoke and from the back-edge probe.
func (e *Engine) installReady() {
	for _, r := range e.pool.take() {
		if r.fn == nil {
			continue // bailed: e.queued[r.key] stays set, never retried
		}
		if r.key.header < 0 {
			if e.compiled[r.key.fidx] == nil {
				e.compiled[r.key.fidx] = r.fn
				e.stats.Tier1Funcs++
				if e.cfg.OnCompile != nil {
					e.cfg.OnCompile(e.mod.Funcs[r.key.fidx].Name)
				}
			}
		} else {
			e.osrEntries[osrKey(r.key.fidx, r.key.header)] = r.fn
			e.stats.OSRCompiled++
			if e.cfg.OnOSR != nil {
				e.cfg.OnOSR(e.mod.Funcs[r.key.fidx].Name)
			}
		}
		e.stats.AsyncInstalls++
		// Allow a later re-request (deopt discards installed entries).
		delete(e.queued, r.key)
	}
}

// osrKey packs a (function, header) pair for the OSR maps.
func osrKey(fidx, header int) int64 { return int64(fidx)<<20 | int64(header) }

// tryOSR is the interpreter's back-edge probe, called when a backward branch
// in function fr.FnIdx targets header. It installs any finished background
// work, counts the edge, requests (or, in synchronous mode, performs) an OSR
// compilation once the edge is hot, and returns the installed entry — or nil
// to keep interpreting. The probe charges no fuel: profiling is invisible to
// the step ledger.
func (e *Engine) tryOSR(fr *Frame, header int) CompiledFunc {
	if e.pool != nil && e.pool.pending.Load() {
		e.installReady()
	}
	k := osrKey(fr.FnIdx, header)
	if cf := e.osrEntries[k]; cf != nil {
		return cf
	}
	n := e.osrCounts[k] + 1
	e.osrCounts[k] = n
	if e.pool != nil {
		if n >= e.cfg.OSRThreshold {
			e.requestCompile(tierKey{fidx: fr.FnIdx, header: header})
			// A hot back edge is evidence for the whole function, not just
			// the loop: promote it for an optimized entry compilation too
			// (background, so the loop keeps running), instead of waiting
			// for the call counter to cross the entry threshold. The OSR
			// entry bridges the current activation; this covers the next
			// call.
			if e.compiled[fr.FnIdx] == nil {
				e.requestCompile(tierKey{fidx: fr.FnIdx, header: -1})
			}
		}
		return nil
	}
	if n == e.cfg.OSRThreshold {
		if cf := e.osrComp.CompileOSR(e, fr.FnIdx, header); cf != nil {
			e.osrEntries[k] = cf
			e.stats.OSRCompiled++
			if e.cfg.OnOSR != nil {
				e.cfg.OnOSR(fr.Fn.Name)
			}
			return cf
		}
	}
	return nil
}

// deopted records a speculation failure at (fr.FnIdx, de.Blk, de.Instr): the
// site is blacklisted so recompilations lower it generically, the OSR entry
// that contained it is discarded, and the back-edge counter restarts so the
// loop re-tiers once a replacement (without the failed speculation) exists.
// The interpreter then resumes at exactly (de.Blk, de.Instr).
func (e *Engine) deopted(fr *Frame, header int, de *DeoptError) {
	e.stats.Deopts++
	e.noteSpecFailure(fr.FnIdx, de.Blk, de.Instr)
	k := osrKey(fr.FnIdx, header)
	delete(e.osrEntries, k)
	e.osrCounts[k] = 0
	delete(e.queued, tierKey{fidx: fr.FnIdx, header: header})
	if e.cfg.OnDeopt != nil {
		e.cfg.OnDeopt(fr.Fn.Name)
	}
}

// specSite names one speculatable instruction.
type specSite struct {
	fidx  int
	blk   int
	instr int
}

// CanSpeculate reports whether the tier-1 compiler may emit a speculative
// (deopting) fast path for the instruction at (fidx, blk, instr): speculation
// is enabled and the site has not already deopted once. Safe to call from
// background compile workers.
func (e *Engine) CanSpeculate(fidx, blk, instr int) bool {
	if e.cfg.NoSpeculate {
		return false
	}
	e.specMu.Lock()
	bad := e.specBad[specSite{fidx, blk, instr}]
	e.specMu.Unlock()
	return !bad
}

// noteSpecFailure blacklists a site after its guard failed (one strike: the
// profile said monomorphic-direct, the program disagreed, believe the
// program from now on).
func (e *Engine) noteSpecFailure(fidx, blk, instr int) {
	e.specMu.Lock()
	if e.specBad == nil {
		e.specBad = make(map[specSite]bool)
	}
	e.specBad[specSite{fidx, blk, instr}] = true
	e.specMu.Unlock()
}
