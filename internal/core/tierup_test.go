package core

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// blockingCompiler is a fake tier-1 compiler whose Compile parks until the
// test releases it — a deterministic way to hold a background compilation
// in flight while the run is cancelled out from under it.
type blockingCompiler struct {
	started  chan struct{} // closed when Compile begins
	release  chan struct{} // Compile parks until this closes
	once     atomic.Bool
	executed atomic.Bool // set if the produced closure ever runs
}

func (c *blockingCompiler) Compile(e *Engine, fidx int) CompiledFunc {
	if c.once.CompareAndSwap(false, true) {
		close(c.started)
	}
	<-c.release
	return func(e *Engine, fr *Frame) (Value, error) {
		c.executed.Store(true)
		return Value{}, nil
	}
}

// asyncLoopModule is a program that stays hot forever: main loops calling
// @hot, so with Tier1Threshold 1 the second call enqueues a background
// compilation and the interpreter keeps spinning until the governor stops it.
const asyncLoopModule = `module "t"
func @hot fn() i32 regs 2 {
entry:
  %r0 = add i32 1, 2
  ret i32 %r0
}
func @main fn() i32 regs 2 {
entry:
  br loop
loop:
  %r0 = call i32 &hot() fixed 0
  br loop
}
`

// TestAsyncCompileGovernorCancellation races run cancellation against an
// in-flight background compilation: the governor stops the run while the
// compile worker is parked inside Compile. The run must wind down without
// waiting for the compiler, the late result must never be installed (the
// mailbox is sealed at Close), and no pool goroutine may outlive Close.
func TestAsyncCompileGovernorCancellation(t *testing.T) {
	m := buildModule(t, asyncLoopModule)
	baseline := runtime.NumGoroutine()

	bc := &blockingCompiler{started: make(chan struct{}), release: make(chan struct{})}
	gov := &Governor{}
	e, err := NewEngine(m, Config{
		Tier1:          bc,
		Tier1Threshold: 1,
		AsyncJIT:       true,
		JITWorkers:     2,
		Governor:       gov,
	})
	if err != nil {
		t.Fatal(err)
	}

	runDone := make(chan error, 1)
	go func() {
		_, rerr := e.Run()
		runDone <- rerr
	}()

	// Wait until the worker is provably mid-compile, then cancel the run.
	select {
	case <-bc.started:
	case <-time.After(5 * time.Second):
		t.Fatal("background compile never started")
	}
	gov.Stop("test cancellation")

	// The run must terminate promptly even though the compile is still
	// parked: cancellation may never block behind the compile pool.
	select {
	case rerr := <-runDone:
		if _, ok := rerr.(*DeadlineError); !ok {
			t.Fatalf("run returned %v, want *DeadlineError", rerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not terminate while a compile was in flight")
	}

	// Let the parked compile finish; its result is published into the
	// mailbox after the run is already gone. Close must join the workers and
	// seal the mailbox so the result is dropped, not installed.
	close(bc.release)
	e.Close()

	st := e.Stats()
	if st.Tier1Funcs != 0 || st.AsyncInstalls != 0 {
		t.Errorf("late compile was installed after teardown: Tier1Funcs=%d AsyncInstalls=%d",
			st.Tier1Funcs, st.AsyncInstalls)
	}
	if bc.executed.Load() {
		t.Error("compiled closure executed after cancellation")
	}

	// No pool goroutine may survive Close. The count needs a few polls: the
	// last worker is between publishing and returning when Close's Wait
	// unblocks us.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked past Close: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAsyncCloseIdempotentAndSyncFallback pins Close's contract: closing
// twice is safe, and a closed engine still runs correctly by falling back to
// synchronous tier-up.
func TestAsyncCloseIdempotentAndSyncFallback(t *testing.T) {
	m := buildModule(t, `module "t"
func @hot fn() i32 regs 2 {
entry:
  %r0 = add i32 20, 22
  ret i32 %r0
}
func @main fn() i32 regs 2 {
entry:
  %r0 = call i32 &hot() fixed 0
  %r1 = call i32 &hot() fixed 0
  ret i32 %r1
}
`)
	passthrough := &countingCompiler{}
	e, err := NewEngine(m, Config{Tier1: passthrough, Tier1Threshold: 1, AsyncJIT: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	code, err := e.Run()
	if err != nil || code != 42 {
		t.Fatalf("closed engine run: got (%d, %v), want (42, nil)", code, err)
	}
	// After Close the pool is gone, so tier-up went through the synchronous
	// path: the compile happened on the engine thread.
	if n := passthrough.calls.Load(); n == 0 {
		t.Error("synchronous fallback never compiled the hot function")
	}
}

// countingCompiler counts Compile calls and keeps every function interpreted.
type countingCompiler struct{ calls atomic.Int32 }

func (c *countingCompiler) Compile(e *Engine, fidx int) CompiledFunc {
	c.calls.Add(1)
	return nil
}
