package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/benchprog"
	"repro/internal/corpus"
)

func TestRunCaseReportsInfrastructureErrors(t *testing.T) {
	c := corpus.Case{Name: "broken", Source: "this is not C"}
	cell := RunCase(c, SafeSulong)
	if cell.RunError == "" {
		t.Error("unparseable source should surface a RunError")
	}
}

func TestCaseStudiesRender(t *testing.T) {
	out := CaseStudies()
	for _, want := range []string{"fig10", "fig11", "fig12", "fig13", "fig14", "SafeSulong", "DETECTED"} {
		if !strings.Contains(out, want) {
			t.Errorf("case studies output missing %q", want)
		}
	}
}

func TestMeasureStartupShape(t *testing.T) {
	res, err := MeasureStartup(2)
	if err != nil {
		t.Fatal(err)
	}
	times := map[PerfConfig]time.Duration{}
	for _, r := range res {
		times[r.Tool] = r.Time
		if r.Time <= 0 {
			t.Errorf("%v: non-positive time", r.Tool)
		}
	}
	// The paper's §4.2 ordering: Safe Sulong starts slowest (it parses
	// libc and the program at startup); the precompiled native binary is
	// fastest.
	if times[SafeSulongPerf] <= times[ClangO0] {
		t.Errorf("Safe Sulong startup (%v) should exceed native (%v)", times[SafeSulongPerf], times[ClangO0])
	}
}

func TestRunnersProduceIterations(t *testing.T) {
	b, err := benchprog.Get("mandelbrot")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []PerfConfig{ClangO0, ClangO3, ASanPerf, ValgrindPerf, SafeSulongPerf, SafeSulongNoJIT} {
		r, err := NewRunner(cfg, b.Source, "8")
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if err := r.RunIteration(); err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
	}
}

func TestPeakRelative(t *testing.T) {
	p := PeakResult{Bench: "x", Times: map[PerfConfig]time.Duration{
		ClangO0:  100 * time.Millisecond,
		ASanPerf: 250 * time.Millisecond,
	}}
	if r := p.Relative(ASanPerf); r != 2.5 {
		t.Errorf("Relative = %v", r)
	}
	if p.Relative(ClangO3) != 0 {
		t.Error("missing config should report 0")
	}
	if !strings.Contains(RenderPeak([]PeakResult{p}, []PerfConfig{ClangO0, ASanPerf}), "2.50x") {
		t.Error("RenderPeak formatting broken")
	}
}

func TestMeasureWarmupBuckets(t *testing.T) {
	b, err := benchprog.Get("fannkuchredux")
	if err != nil {
		t.Fatal(err)
	}
	out, err := MeasureWarmup(b, "5", 300*time.Millisecond, 100*time.Millisecond,
		[]PerfConfig{SafeSulongPerf})
	if err != nil {
		t.Fatal(err)
	}
	samples := out[SafeSulongPerf]
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	total := 0
	for _, s := range samples {
		total += s.Iterations
	}
	if total == 0 {
		t.Error("no iterations completed")
	}
}
