package harness

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
)

// The retry backoff must never outlive the cell's own budget: a
// quarantine-bound cell with a wall-clock Timeout quarantines within that
// budget instead of sleeping out MaxRetries worth of ladder.
func TestBackoffHonorsWallBudget(t *testing.T) {
	flakyFailures.Store(1 << 30)
	defer flakyFailures.Store(0)
	start := time.Now()
	cell := RunCaseWith(flakyCase(), SafeSulong, CaseBudget{
		MaxRetries: 1_000,
		Timeout:    50 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if !cell.Quarantined {
		t.Fatalf("cell %+v, want Quarantined", cell)
	}
	if cell.Attempts >= 100 {
		t.Fatalf("Attempts = %d: the budget did not stop the ladder", cell.Attempts)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("quarantine took %v, far beyond the 50ms budget", elapsed)
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond,
	}
	for i, w := range want {
		if got := retryBackoff(i + 1); got != w {
			t.Fatalf("retryBackoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := retryBackoff(50); got != 50*time.Millisecond {
		t.Fatalf("retryBackoff(50) = %v, want the 50ms cap", got)
	}
}

func TestSleepBackoffRespectsDeadlineAndContext(t *testing.T) {
	// Remaining budget smaller than the sleep: refuse without sleeping.
	if sleepBackoff(1, time.Now().Add(time.Millisecond), nil) {
		t.Fatal("sleepBackoff slept past the deadline")
	}
	// Cancelled context interrupts the sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if sleepBackoff(5, time.Time{}, ctx) {
		t.Fatal("sleepBackoff ignored a cancelled context")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled context did not interrupt the sleep")
	}
	// Healthy path: sleeps and reports true.
	if !sleepBackoff(1, time.Time{}, context.Background()) {
		t.Fatal("sleepBackoff refused a viable retry")
	}
}

// The sweep's Progress callback reports every completed cell exactly once,
// serialized and monotonic — the same contract the campaign driver's
// per-seed progress hook relies on.
func TestFaultSweepProgress(t *testing.T) {
	cases := corpus.All()[:2]
	var mu sync.Mutex
	var calls [][2]int
	FaultSweep(SweepOptions{
		Cases: cases, MaxNth: 2, Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			calls = append(calls, [2]int{done, total})
			mu.Unlock()
		},
	})
	total := len(cases) * 2 * len(Tools())
	if len(calls) != total {
		t.Fatalf("Progress called %d times, want %d", len(calls), total)
	}
	for i, c := range calls {
		if c[0] != i+1 || c[1] != total {
			t.Fatalf("call %d = (%d, %d), want (%d, %d)", i, c[0], c[1], i+1, total)
		}
	}
}
