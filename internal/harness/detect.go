// Package harness drives the paper's experiments: the §4.1 detection matrix
// over the bug corpus (Tables 1–2, the tool comparison, the five case
// studies) and the §4.2–4.3 performance measurements (start-up, warm-up,
// peak). cmd/bugbench, cmd/perfbench, and the repository's bench_test.go
// are thin wrappers around this package.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	sulong "repro"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/nativemem"
)

// Tool identifies one column of the detection matrix.
type Tool int

const (
	SafeSulong Tool = iota
	ASanO0
	ASanO3
	ValgrindO0
	ValgrindO3
	NativeO0
	toolCount
)

var toolNames = [...]string{
	SafeSulong: "SafeSulong",
	ASanO0:     "ASan -O0",
	ASanO3:     "ASan -O3",
	ValgrindO0: "Valgrind -O0",
	ValgrindO3: "Valgrind -O3",
	NativeO0:   "Native -O0",
}

func (t Tool) String() string {
	if t < 0 || int(t) >= len(toolNames) {
		return fmt.Sprintf("Tool(%d)", int(t))
	}
	return toolNames[t]
}

// Tools lists the matrix columns in display order.
func Tools() []Tool {
	return []Tool{SafeSulong, ASanO0, ASanO3, ValgrindO0, ValgrindO3, NativeO0}
}

func (t Tool) config() sulong.Config {
	switch t {
	case SafeSulong:
		return sulong.Config{Engine: sulong.EngineSafeSulong}
	case ASanO0:
		return sulong.Config{Engine: sulong.EngineASan, OptLevel: 0}
	case ASanO3:
		return sulong.Config{Engine: sulong.EngineASan, OptLevel: 3}
	case ValgrindO0:
		return sulong.Config{Engine: sulong.EngineMemcheck, OptLevel: 0}
	case ValgrindO3:
		return sulong.Config{Engine: sulong.EngineMemcheck, OptLevel: 3}
	case NativeO0:
		return sulong.Config{Engine: sulong.EngineNative, OptLevel: 0}
	}
	return sulong.Config{}
}

// Detection is one cell of the matrix.
type Detection struct {
	Detected bool
	Report   string // the tool's message, when one was produced
	Crashed  bool   // the program trapped (SIGSEGV-style)
	// Timeout marks a case that did not terminate within its budget: the
	// step limit was exhausted (*core.LimitError, deterministic) or the
	// wall-clock deadline fired (*core.DeadlineError). Distinct from
	// RunError so the tables do not render a non-terminating program the
	// same as an infrastructure failure.
	Timeout bool
	// OOM marks hard guest-memory exhaustion: a stack or global allocation
	// exceeded CaseBudget.MaxHeapBytes (*core.ResourceError). Deterministic
	// for a given program and budget, like Timeout's step-limit flavor —
	// heap exhaustion never lands here, because guest malloc returns NULL
	// and the program keeps running (or mishandles it, which is the point).
	OOM      bool
	RunError string // infrastructure failure (should be empty)
	// Attempts counts how many times the cell was run (≥ 1). Values above 1
	// mean the run died with a contained engine panic (*core.InternalError)
	// and was retried under CaseBudget.MaxRetries.
	Attempts int
	// Quarantined marks a cell whose every attempt died with an internal
	// engine error. The matrix completes without it instead of aborting;
	// MatrixResult.Quarantined lists the coordinates.
	Quarantined bool
	// Diag is the structured diagnostic behind Report when the tool produced
	// one: kind, tool/tier provenance, and the access / allocation-site /
	// free-site backtraces. Deterministic at any matrix worker count (cells
	// are index-addressed, and each cell's run is self-contained).
	Diag *diag.Diagnostic
}

// Status renders the cell's classification for tables and CLIs.
func (d Detection) Status() string {
	switch {
	case d.Detected:
		return "DETECTED"
	case d.Timeout:
		return "timeout"
	case d.OOM:
		return "oom"
	case d.Crashed:
		return "crashed"
	case d.Quarantined:
		return "quarantined"
	case d.RunError != "":
		return "error"
	}
	return "missed"
}

// MatrixResult is the full detection matrix.
type MatrixResult struct {
	Cases  []corpus.Case
	Cells  map[string]map[Tool]Detection // case name -> tool -> cell
	Totals map[Tool]int
	// Quarantined lists cells whose every attempt died with a contained
	// engine panic, as "case / tool" strings in deterministic (case, tool)
	// order. The matrix completes without them instead of aborting.
	Quarantined []string
}

// DefaultMaxSteps is the per-case step budget RunCase applies when the
// caller does not choose one. It is generous enough for every corpus case
// yet bounds a non-terminating program deterministically.
const DefaultMaxSteps = 50_000_000

// CaseBudget bounds one cell's execution. The zero value means "harness
// defaults": DefaultMaxSteps and no wall-clock deadline.
type CaseBudget struct {
	// MaxSteps is the step budget. 0 selects DefaultMaxSteps; a negative
	// value defers to the engine's own default (effectively unbounded).
	MaxSteps int64
	// Timeout is a per-case wall-clock deadline (0 = none). Unlike step
	// limits it is not deterministic, but the resulting cell renders
	// identically (the report quotes the configured budget, not elapsed
	// time), so matrix output stays byte-stable.
	Timeout time.Duration
	// MaxHeapBytes bounds cumulative live guest memory per cell (0 =
	// unlimited). Soft (heap) exhaustion makes guest malloc return NULL;
	// hard (stack/global) exhaustion classifies the cell "oom" —
	// deterministic, so cells render identically at any worker count.
	MaxHeapBytes int64
	// MaxAllocBytes bounds a single guest heap request (0 = engine default).
	MaxAllocBytes int64
	// FaultPlan injects deterministic guest allocation failures into the
	// cell's run (the fault sweep sets FailNth).
	FaultPlan fault.Plan
	// JIT runs SafeSulong cells with the tier-1 compiler enabled at
	// JITThreshold (0 = engine default). Other tools ignore it. The sweep
	// uses it to assert tier parity of injected outcomes.
	JIT          bool
	JITThreshold int64
	// JITAsync moves tier-up onto the background compile pool; OSR enables
	// on-stack replacement at hot loop back-edges (OSRThreshold 0 = library
	// default). Both require JIT and apply only to SafeSulong cells. The
	// forced-OSR sweep uses them to assert that async installs, OSR entries,
	// and speculative deopts keep cell outcomes byte-identical to tier-0.
	JITAsync     bool
	OSR          bool
	OSRThreshold int64
	// MaxRetries re-runs a cell that died with a contained engine panic
	// (*core.InternalError) up to this many extra times, with bounded
	// deterministic backoff; a cell that never recovers is quarantined
	// instead of aborting the matrix. 0 = no retries.
	MaxRetries int
	// NoCodeCache opts the cell out of the process-wide executable-code
	// cache and engine reuse pool — the cold baseline the warm-vs-cold
	// parity suite compares against (see sulong.Config.NoCodeCache).
	NoCodeCache bool
	// NoCache additionally bypasses the pipeline module cache, so the cell
	// compiles its source from scratch (see sulong.Config.NoCache). Together
	// with NoCodeCache this is the fully cold-compile baseline the
	// throughput recorder measures "compile once, run many" against.
	NoCache bool
	// Ctx, when non-nil, cancels the cell cooperatively: the run's governor
	// is stopped at the next basic-block boundary and a retry backoff sleep
	// is interrupted instead of slept out. The campaign driver threads its
	// supervision context through here so a cancelled campaign never idles
	// in a backoff ladder. nil = context.Background().
	Ctx context.Context
}

// ctx returns the cell's caller context, defaulting to Background.
func (b CaseBudget) ctx() context.Context {
	if b.Ctx != nil {
		return b.Ctx
	}
	return context.Background()
}

func (b CaseBudget) maxSteps() int64 {
	switch {
	case b.MaxSteps > 0:
		return b.MaxSteps
	case b.MaxSteps < 0:
		return 0 // engine default
	}
	return DefaultMaxSteps
}

// config assembles the facade configuration for one cell: the tool's engine
// selection plus the case's inputs and the budget's bounds. Shared by the
// matrix driver and the campaign's oracle adapters.
func (b CaseBudget) config(c corpus.Case, tool Tool) sulong.Config {
	cfg := tool.config()
	cfg.Args = c.Args
	if c.Stdin != "" {
		cfg.Stdin = strings.NewReader(c.Stdin)
	}
	cfg.MaxSteps = b.maxSteps()
	cfg.Timeout = b.Timeout
	cfg.MaxHeapBytes = b.MaxHeapBytes
	cfg.MaxAllocBytes = b.MaxAllocBytes
	cfg.FaultPlan = b.FaultPlan
	cfg.NoCodeCache = b.NoCodeCache
	cfg.NoCache = b.NoCache
	if tool == SafeSulong && b.JIT {
		cfg.JIT = true
		cfg.JITThreshold = b.JITThreshold
		cfg.JITAsync = b.JITAsync
		cfg.OSR = b.OSR
		cfg.OSRThreshold = b.OSRThreshold
	}
	return cfg
}

// RunCase executes one corpus case under one tool with the default budget
// and classifies the result.
func RunCase(c corpus.Case, tool Tool) Detection {
	return RunCaseWith(c, tool, CaseBudget{})
}

// RunCaseWith executes one corpus case under one tool within the given
// budget and classifies the result. It never panics: engine panics are
// already contained by sulong.RunModuleCtx, and any harness-side panic is
// recovered here into the cell's RunError, so one bad case cannot take down
// a whole matrix.
//
// Cells that die with a contained engine panic (*core.InternalError) are
// retried up to b.MaxRetries extra times with bounded deterministic backoff
// (5ms, 10ms, 20ms, …, capped at 50ms); a cell that never recovers is
// marked Quarantined. Attempts records the count either way, so the cell is
// honest about how it was produced.
//
// The backoff ladder respects the cell's budget: once b.Timeout worth of
// wall clock has elapsed since the first attempt the cell quarantines
// immediately instead of sleeping out the remaining ladder, and a cancelled
// b.Ctx interrupts a sleep in progress the same way — a quarantine-bound
// cell never outlives the budget its caller gave it.
func RunCaseWith(c corpus.Case, tool Tool, b CaseBudget) (d Detection) {
	defer func() {
		if r := recover(); r != nil {
			d = Detection{RunError: fmt.Sprintf("internal harness error: panic: %v\n%s", r, debug.Stack()), Attempts: 1}
		}
	}()
	var deadline time.Time
	if b.Timeout > 0 {
		deadline = time.Now().Add(b.Timeout)
	}
	for attempt := 1; ; attempt++ {
		var internal bool
		d, internal = runCaseOnce(c, tool, b)
		d.Attempts = attempt
		if !internal {
			return d
		}
		if attempt > b.MaxRetries || !sleepBackoff(attempt, deadline, b.Ctx) {
			d.Quarantined = true
			d.RunError = fmt.Sprintf("quarantined after %d attempt(s): %s", attempt, firstLine(d.RunError))
			return d
		}
	}
}

// retryBackoff is the bounded deterministic backoff schedule between retry
// attempts: 5ms << (attempt-1), capped at 50ms. No jitter — determinism is
// worth more here than collision avoidance (attempts are per-cell serial).
func retryBackoff(attempt int) time.Duration {
	if attempt >= 5 { // 5ms << 4 = 80ms, past the cap
		return 50 * time.Millisecond
	}
	return 5 * time.Millisecond << (attempt - 1)
}

// sleepBackoff waits out the retry backoff before attempt+1, clamped to the
// cell's remaining wall budget and interruptible by ctx. It reports whether
// another attempt is worth making: false when the budget is already blown
// (or would be blown by the sleep alone) or the caller gave up.
func sleepBackoff(attempt int, deadline time.Time, ctx context.Context) bool {
	d := retryBackoff(attempt)
	if !deadline.IsZero() {
		rem := time.Until(deadline)
		if rem <= d {
			return false
		}
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runCaseOnce executes a single attempt. internal reports whether the run
// died with a contained engine panic / internal fault — the only class of
// failure worth retrying (everything else is deterministic).
func runCaseOnce(c corpus.Case, tool Tool, b CaseBudget) (d Detection, internal bool) {
	res, err := sulong.RunCtx(b.ctx(), c.Source, b.config(c, tool))
	if err != nil {
		var limit *core.LimitError
		var deadline *core.DeadlineError
		if errors.As(err, &limit) || errors.As(err, &deadline) {
			return Detection{Timeout: true, Report: err.Error()}, false
		}
		var oom *core.ResourceError
		if errors.As(err, &oom) {
			// Hard guest-memory exhaustion: a stack or global allocation
			// exceeded the budget. Deterministic for a given program and
			// budget — the report quotes the configured limit only.
			return Detection{OOM: true, Report: err.Error()}, false
		}
		var ie *core.InternalError
		if errors.As(err, &ie) {
			return Detection{RunError: err.Error()}, true
		}
		return Detection{RunError: err.Error()}, false
	}
	d = Detection{}
	if res.Bug != nil {
		d.Detected = true
		d.Report = res.Bug.Error()
		if len(res.Diagnostics) > 0 {
			d.Diag = res.Diagnostics[0]
		}
		return d, false
	}
	if res.Fault != nil {
		d.Crashed = true
		d.Report = res.Fault.Error()
		// A NULL dereference traps on the zero page; every tool (and the
		// bare machine) observes that crash, which the paper counts as
		// "could also have been found without a bug-finding tool".
		if f, ok := res.Fault.(*nativemem.Fault); ok && f.Addr < nativemem.PageSize {
			d.Detected = true
		}
	}
	return d, false
}

// RunDetectionMatrix runs every corpus case under every tool, fanned out
// across GOMAXPROCS workers (see RunDetectionMatrixWith for control over
// the pool size and the determinism guarantee).
func RunDetectionMatrix() *MatrixResult {
	return RunDetectionMatrixWith(MatrixOptions{})
}

// Table1 aggregates detected bugs by paper category (Safe Sulong's column,
// which detects the full corpus).
func (m *MatrixResult) Table1() map[corpus.Category]int {
	out := map[corpus.Category]int{}
	for _, c := range m.Cases {
		if m.Cells[c.Name][SafeSulong].Detected {
			out[c.Category]++
		}
	}
	return out
}

// Table2 aggregates the out-of-bounds cases by read/write, direction, and
// memory kind.
func (m *MatrixResult) Table2() (rw map[corpus.Access]int, dir map[corpus.Direction]int, mem map[corpus.Mem]int) {
	rw = map[corpus.Access]int{}
	dir = map[corpus.Direction]int{}
	mem = map[corpus.Mem]int{}
	for _, c := range m.Cases {
		if c.Category != corpus.BufferOverflow || !m.Cells[c.Name][SafeSulong].Detected {
			continue
		}
		rw[c.Access]++
		dir[c.Direction]++
		mem[c.Mem]++
	}
	return
}

// Timeouts lists every cell classified Timeout, as "case/tool" strings in
// deterministic (case, tool) order. Empty under the default budgets: the
// corpus terminates.
func (m *MatrixResult) Timeouts() []string {
	var out []string
	for _, c := range m.Cases {
		for _, tool := range Tools() {
			if m.Cells[c.Name][tool].Timeout {
				out = append(out, fmt.Sprintf("%s / %s", c.Name, tool))
			}
		}
	}
	return out
}

// OOMs lists every cell classified OOM (hard guest-memory exhaustion), as
// "case/tool" strings in deterministic (case, tool) order. Empty unless a
// heap budget was configured.
func (m *MatrixResult) OOMs() []string {
	var out []string
	for _, c := range m.Cases {
		for _, tool := range Tools() {
			if m.Cells[c.Name][tool].OOM {
				out = append(out, fmt.Sprintf("%s / %s", c.Name, tool))
			}
		}
	}
	return out
}

// CellDiagnostic pairs one matrix cell's structured diagnostic with its
// coordinates, for machine-readable reports.
type CellDiagnostic struct {
	Case string           `json:"case"`
	Tool string           `json:"tool"`
	Diag *diag.Diagnostic `json:"diagnostic"`
}

// Diagnostics lists every cell's structured diagnostic in deterministic
// (case, tool) order — the same at any worker count, since cells are
// index-addressed and each cell's run is self-contained.
func (m *MatrixResult) Diagnostics() []CellDiagnostic {
	var out []CellDiagnostic
	for _, c := range m.Cases {
		for _, tool := range Tools() {
			if d := m.Cells[c.Name][tool].Diag; d != nil {
				out = append(out, CellDiagnostic{Case: c.Name, Tool: tool.String(), Diag: d})
			}
		}
	}
	return out
}

// MissedByBoth lists bugs found by Safe Sulong but by neither ASan nor
// Valgrind at either optimization level — the paper's "8 errors".
func (m *MatrixResult) MissedByBoth() []string {
	var out []string
	for _, c := range m.Cases {
		row := m.Cells[c.Name]
		if row[SafeSulong].Detected &&
			!row[ASanO0].Detected && !row[ASanO3].Detected &&
			!row[ValgrindO0].Detected && !row[ValgrindO3].Detected {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Render prints the matrix in the shape of the paper's §4.1 discussion.
func (m *MatrixResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection matrix over %d corpus bugs\n\n", len(m.Cases))

	t1 := m.Table1()
	b.WriteString("Table 1. Error distribution of the detected bugs\n")
	fmt.Fprintf(&b, "  Buffer overflows    %2d\n", t1[corpus.BufferOverflow])
	fmt.Fprintf(&b, "  NULL dereferences   %2d\n", t1[corpus.NullDereference])
	fmt.Fprintf(&b, "  Use-after-free      %2d\n", t1[corpus.UseAfterFree])
	fmt.Fprintf(&b, "  Varargs             %2d\n", t1[corpus.Varargs])
	fmt.Fprintf(&b, "  Type confusion      %2d  (beyond the paper)\n\n", t1[corpus.TypeConfusion])

	rw, dir, mem := m.Table2()
	b.WriteString("Table 2. Distribution of out-of-bounds accesses\n")
	fmt.Fprintf(&b, "  Read %2d / Write %2d   Underflow %2d / Overflow %2d\n",
		rw[corpus.ReadAccess], rw[corpus.WriteAccess], dir[corpus.Underflow], dir[corpus.Overflow])
	fmt.Fprintf(&b, "  Stack %2d  Heap %2d  Global %2d  Main args %2d\n\n",
		mem[corpus.Stack], mem[corpus.Heap], mem[corpus.Global], mem[corpus.MainArgs])

	b.WriteString("Tool comparison (bugs detected)\n")
	for _, tool := range Tools() {
		fmt.Fprintf(&b, "  %-14s %2d / %d\n", tool, m.Totals[tool], len(m.Cases))
	}
	if t := m.Timeouts(); len(t) > 0 {
		b.WriteString("\nCells that exhausted their budget (timeout)\n")
		for _, cell := range t {
			fmt.Fprintf(&b, "  - %s\n", cell)
		}
	}
	if o := m.OOMs(); len(o) > 0 {
		b.WriteString("\nCells that exhausted the guest heap budget (oom)\n")
		for _, cell := range o {
			fmt.Fprintf(&b, "  - %s\n", cell)
		}
	}
	if len(m.Quarantined) > 0 {
		b.WriteString("\nQuarantined cells (persistent internal errors)\n")
		for _, cell := range m.Quarantined {
			fmt.Fprintf(&b, "  - %s\n", cell)
		}
	}
	b.WriteString("\nFound by Safe Sulong, missed by ASan and Valgrind at -O0 and -O3:\n")
	for _, name := range m.MissedByBoth() {
		fmt.Fprintf(&b, "  - %s\n", name)
	}
	return b.String()
}

// CaseStudies runs only the five paper figures and reports per-tool results.
func CaseStudies() string {
	return CaseStudiesWith(CaseBudget{})
}

// CaseStudiesWith is CaseStudies under a caller-chosen per-cell budget.
func CaseStudiesWith(budget CaseBudget) string {
	var b strings.Builder
	for _, c := range corpus.All() {
		if c.CaseStudy == "" {
			continue
		}
		fmt.Fprintf(&b, "%s (%s)\n", c.CaseStudy, c.Name)
		for _, tool := range Tools() {
			cell := RunCaseWith(c, tool, budget)
			fmt.Fprintf(&b, "  %-14s %-9s %s\n", tool, cell.Status(), firstLine(cell.Report))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
