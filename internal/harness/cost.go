// Cost-aware scheduling for the matrix/sweep drivers.
//
// The drivers' work items have wildly uneven costs (a three-line NULL deref
// vs a benchmark loop under Valgrind simulation), and a longest-job-last
// schedule leaves the pool idling on one straggler at the end. Each
// (case, tool) pair's observed duration feeds a process-wide EMA; later
// runs claim work longest-first. Only the *claim order* changes — results
// stay index-addressed in pre-sized grids, so rendered output is
// byte-identical at any worker count, with or without a trained model.
package harness

import (
	"sort"
	"sync"
	"time"
)

// costAlpha is the EMA smoothing factor: recent observations dominate, but
// one anomalous cell (a GC pause mid-run) cannot wreck the schedule.
const costAlpha = 0.3

// costModel is a process-wide duration estimator keyed by free-form strings
// (the drivers use "case|tool"). Safe for concurrent use.
type costModel struct {
	mu  sync.Mutex
	ema map[string]float64
}

var costs = &costModel{ema: make(map[string]float64)}

func (m *costModel) observe(key string, d time.Duration) {
	m.mu.Lock()
	if prev, ok := m.ema[key]; ok {
		m.ema[key] = (1-costAlpha)*prev + costAlpha*float64(d)
	} else {
		m.ema[key] = float64(d)
	}
	m.mu.Unlock()
}

// order returns a permutation of [0, n) scheduling the estimated-longest
// items first. Items without an estimate sort before everything (a job of
// unknown size is scheduled pessimistically early); ties and the untrained
// cold start fall back to index order, so the permutation is deterministic
// for a given model state.
func (m *costModel) order(n int, key func(i int) string) []int {
	type item struct {
		idx     int
		cost    float64
		unknown bool
	}
	items := make([]item, n)
	m.mu.Lock()
	for i := 0; i < n; i++ {
		c, ok := m.ema[key(i)]
		items[i] = item{idx: i, cost: c, unknown: !ok}
	}
	m.mu.Unlock()
	sort.SliceStable(items, func(a, b int) bool {
		ia, ib := items[a], items[b]
		if ia.unknown != ib.unknown {
			return ia.unknown
		}
		if ia.cost != ib.cost {
			return ia.cost > ib.cost
		}
		return ia.idx < ib.idx
	})
	out := make([]int, n)
	for k, it := range items {
		out[k] = it.idx
	}
	return out
}

// ForEachOrdered is ForEach with an explicit claim order: workers pop items
// in order[k] sequence instead of 0..n-1. The serial path (workers == 1 or
// n < 2) ignores the permutation and keeps the historical 0..n-1 loop, so
// single-worker side-effect ordering guarantees are unchanged. A nil order
// is identity. Result placement stays the caller's responsibility — fn
// still receives the item index, so index-addressed grids assemble
// identically however the work was scheduled.
func ForEachOrdered(n, workers int, order []int, fn func(i int)) {
	if order == nil || workers == 1 || n < 2 {
		ForEach(n, workers, fn)
		return
	}
	ForEach(n, workers, func(k int) { fn(order[k]) })
}

// ObserveCost feeds one observed work-item duration into the process-wide
// scheduling model. Exported for sibling drivers (the fuzzing campaign)
// that share the model across package boundaries.
func ObserveCost(key string, d time.Duration) { costs.observe(key, d) }

// CostOrder returns the longest-first claim permutation for n items keyed
// by key(i). Deterministic for a given model state; see costModel.order.
func CostOrder(n int, key func(i int) string) []int { return costs.order(n, key) }

// timedCell runs fn and feeds the observed duration back into the model.
func (m *costModel) timedCell(key string, fn func()) {
	start := time.Now()
	fn()
	m.observe(key, time.Since(start))
}
