package harness

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
)

// oomCase is a synthetic corpus entry whose 4 MiB global cannot fit in a
// 1 MiB guest budget: every engine must classify it "oom" (hard exhaustion —
// C cannot report a failed global as NULL) while the rest of the matrix
// completes.
func oomCase() corpus.Case {
	return corpus.Case{
		Name:     "synthetic-global-oom",
		Source:   "char big[1 << 22];\nint main(void) { big[0] = 1; return (int)big[0]; }",
		Category: corpus.NullDereference, // arbitrary; never detected
	}
}

// TestMatrixClassifiesOOMDeterministically: a case that exhausts the guest
// heap budget renders as an "oom" cell — not a crash, not an infrastructure
// error — at every worker count, byte-identically.
func TestMatrixClassifiesOOMDeterministically(t *testing.T) {
	normal := corpus.All()[0]
	opts := MatrixOptions{
		Cases:        []corpus.Case{normal, oomCase()},
		Tools:        []Tool{SafeSulong, ASanO0, NativeO0},
		MaxHeapBytes: 1 << 20,
	}

	var renders []string
	for _, workers := range []int{1, 2, 8} {
		o := opts
		o.Workers = workers
		m := RunDetectionMatrixWith(o)

		for _, tool := range o.Tools {
			cell := m.Cells[oomCase().Name][tool]
			if !cell.OOM {
				t.Fatalf("workers=%d: oom case under %v is not an OOM cell: %+v", workers, tool, cell)
			}
			if got := cell.Status(); got != "oom" {
				t.Fatalf("workers=%d: Status() = %q, want \"oom\"", workers, got)
			}
			if cell.RunError != "" {
				t.Fatalf("workers=%d: oom misclassified as infrastructure error: %s", workers, cell.RunError)
			}
		}
		if !m.Cells[normal.Name][SafeSulong].Detected {
			t.Fatalf("workers=%d: case %s no longer detected next to an oom case", workers, normal.Name)
		}
		if got := m.OOMs(); len(got) != len(o.Tools) {
			t.Fatalf("workers=%d: OOMs() = %v, want %d entries", workers, got, len(o.Tools))
		}
		renders = append(renders, m.Render())
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("matrix render differs between worker counts:\n--- workers=1 ---\n%s\n--- variant %d ---\n%s",
				renders[0], i, renders[i])
		}
	}
	if !strings.Contains(renders[0], "oom") {
		t.Errorf("rendered matrix does not surface the oom cell:\n%s", renders[0])
	}
}

// TestMatrixFaultPlanDeterministicAcrossWorkers: an injected allocation-
// failure schedule produces byte-identical renders and structured
// diagnostics at any worker count — the fault plane never introduces
// scheduling-dependent behavior.
func TestMatrixFaultPlanDeterministicAcrossWorkers(t *testing.T) {
	cases := corpus.All()
	if len(cases) > 8 {
		cases = cases[:8]
	}
	opts := MatrixOptions{
		Cases:     cases,
		Tools:     []Tool{SafeSulong, NativeO0},
		FaultPlan: fault.Plan{FailNth: 2},
	}

	var renders, diags []string
	for _, workers := range []int{1, 8} {
		o := opts
		o.Workers = workers
		m := RunDetectionMatrixWith(o)
		renders = append(renders, m.Render())
		data, err := json.Marshal(m.Diagnostics())
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, string(data))
	}
	if renders[0] != renders[1] {
		t.Fatalf("renders differ between -parallel 1 and 8:\n%s\n---\n%s", renders[0], renders[1])
	}
	if diags[0] != diags[1] {
		t.Fatal("structured diagnostics differ between -parallel 1 and 8")
	}
}

// TestFaultSweepSubsetClean: the FailNth sweep over a corpus slice finds no
// engine panics and no tier mismatches (the full-corpus sweep runs in
// `make faultcheck` via `bugbench -faultsweep`).
func TestFaultSweepSubsetClean(t *testing.T) {
	cases := corpus.All()
	if len(cases) > 6 {
		cases = cases[:6]
	}
	res := FaultSweep(SweepOptions{Cases: cases, MaxNth: 2})
	if !res.OK() {
		t.Fatalf("sweep violations:\n%s", res.Render())
	}
	if want := len(cases)*2*len(Tools()) + len(cases)*2; res.Runs != want {
		// Every SafeSulong cell runs twice (tier-0 + forced tier-1).
		t.Fatalf("Runs = %d, want %d", res.Runs, want)
	}
	if !strings.Contains(res.Render(), "no engine panics") {
		t.Errorf("render: %q", res.Render())
	}
}

// flakyFailures controls the __flaky_probe builtin: each run decrements it;
// while positive the builtin panics (an engine bug by construction), after
// that it succeeds. Registered once; reset per test.
var flakyFailures atomic.Int64

func init() {
	core.RegisterBuiltin("__flaky_probe", func(e *core.Engine, fr *core.Frame, args []core.Value) (core.Value, error) {
		if flakyFailures.Add(-1) >= 0 {
			panic("flaky test double: injected engine failure")
		}
		return core.Value{}, nil
	})
}

func flakyCase() corpus.Case {
	return corpus.Case{
		Name:     "synthetic-flaky-probe",
		Source:   "void __flaky_probe(void);\nint main(void) { __flaky_probe(); return 0; }",
		Category: corpus.NullDereference, // arbitrary; never detected
	}
}

// TestRetryRecoversTransientInternalError: a cell whose engine dies twice
// and then succeeds is retried under MaxRetries and lands as a normal cell
// with its attempt count recorded.
func TestRetryRecoversTransientInternalError(t *testing.T) {
	flakyFailures.Store(2)
	cell := RunCaseWith(flakyCase(), SafeSulong, CaseBudget{MaxRetries: 3})
	if cell.Quarantined || cell.RunError != "" {
		t.Fatalf("cell %+v, want recovered run", cell)
	}
	if cell.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (two failures + one success)", cell.Attempts)
	}
}

// TestPersistentInternalErrorIsQuarantined: a cell that fails on every
// attempt is quarantined with a deterministic single-line reason instead of
// aborting the matrix.
func TestPersistentInternalErrorIsQuarantined(t *testing.T) {
	flakyFailures.Store(1 << 30) // effectively always fail
	defer flakyFailures.Store(0)
	cell := RunCaseWith(flakyCase(), SafeSulong, CaseBudget{MaxRetries: 1})
	if !cell.Quarantined {
		t.Fatalf("cell %+v, want Quarantined", cell)
	}
	if cell.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (initial + one retry)", cell.Attempts)
	}
	if got := cell.Status(); got != "quarantined" {
		t.Fatalf("Status() = %q, want \"quarantined\"", got)
	}
	if !strings.HasPrefix(cell.RunError, "quarantined after 2 attempt(s): ") {
		t.Fatalf("RunError = %q, want quarantine prefix", cell.RunError)
	}
	if strings.Contains(cell.RunError, "\n") {
		t.Fatalf("quarantine reason is not single-line: %q", cell.RunError)
	}

	// Matrix level: the quarantined cell is listed and the run completes.
	flakyFailures.Store(1 << 30)
	m := RunDetectionMatrixWith(MatrixOptions{
		Cases:      []corpus.Case{corpus.All()[0], flakyCase()},
		Tools:      []Tool{SafeSulong},
		MaxRetries: 1,
	})
	if len(m.Quarantined) != 1 || !strings.Contains(m.Quarantined[0], flakyCase().Name) {
		t.Fatalf("MatrixResult.Quarantined = %v, want the flaky case", m.Quarantined)
	}
	if !m.Cells[corpus.All()[0].Name][SafeSulong].Detected {
		t.Fatal("well-behaved case no longer detected next to a quarantined cell")
	}
	if !strings.Contains(m.Render(), "Quarantined cells") {
		t.Error("render does not surface the quarantine section")
	}
}
