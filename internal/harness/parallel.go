package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/fault"
)

// ForEach fans fn out over n items on a bounded worker pool. workers <= 0
// means one worker per available CPU (GOMAXPROCS); workers == 1 degrades to
// a plain serial loop, guaranteeing identical side-effect ordering to the
// historical drivers. fn receives the item index; result placement is the
// caller's responsibility (index into a pre-sized slice for deterministic
// assembly regardless of completion order).
//
// A panic in fn does not kill the worker's goroutine silently (which would
// deadlock wg.Wait in older Go) nor crash the process from a goroutine the
// caller cannot recover on: the first panic is captured, the remaining work
// is drained, and the panic is re-raised on the caller's goroutine.
func ForEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var panicked atomic.Pointer[workerPanic]
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &workerPanic{item: i, value: r, stack: debug.Stack()})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("harness.ForEach: worker panic on item %d: %v\n%s", p.item, p.value, p.stack))
	}
}

// workerPanic records the first panic observed by a ForEach worker.
type workerPanic struct {
	item  int
	value any
	stack []byte
}

// MatrixOptions configures the detection-matrix driver.
type MatrixOptions struct {
	// Workers bounds the goroutine pool. <= 0 uses GOMAXPROCS; 1 runs the
	// matrix serially.
	Workers int
	// Cases restricts the corpus (nil = corpus.All()).
	Cases []corpus.Case
	// Tools restricts the matrix columns (nil = Tools()).
	Tools []Tool
	// Progress, when non-nil, is called after every completed cell with the
	// running count. Calls are serialized.
	Progress func(done, total int)
	// MaxSteps is the per-cell step budget (0 = DefaultMaxSteps, < 0 =
	// engine default). Deterministic: a case that exhausts it produces the
	// same Timeout cell at any worker count.
	MaxSteps int64
	// CaseTimeout is a per-cell wall-clock deadline (0 = none). A cell that
	// trips it is classified Timeout, and the rest of the matrix completes
	// normally.
	CaseTimeout time.Duration
	// MaxHeapBytes / MaxAllocBytes bound per-cell guest memory (0 =
	// unlimited / engine default). Hard exhaustion classifies the cell
	// "oom" — deterministic, so renders match at any worker count.
	MaxHeapBytes  int64
	MaxAllocBytes int64
	// FaultPlan injects deterministic guest allocation failures into every
	// cell (see internal/fault.Plan).
	FaultPlan fault.Plan
	// MaxRetries re-runs cells that die with a contained engine panic up to
	// this many extra times (bounded deterministic backoff); persistent
	// failures are quarantined into MatrixResult.Quarantined instead of
	// aborting the matrix. 0 = no retries.
	MaxRetries int
	// JIT/JITThreshold/JITAsync/OSR/OSRThreshold configure SafeSulong cells'
	// tiering (see CaseBudget); other tools ignore them.
	JIT          bool
	JITThreshold int64
	JITAsync     bool
	OSR          bool
	OSRThreshold int64
	// NoCodeCache opts every cell out of the process-wide executable-code
	// cache and engine reuse pool (cold-baseline benchmarking; see
	// sulong.Config.NoCodeCache).
	NoCodeCache bool
	// NoCache additionally bypasses the pipeline module cache, making every
	// cell compile its translation unit from scratch — the fully cold
	// "compile every time" baseline (see sulong.Config.NoCache).
	NoCache bool
}

// RunDetectionMatrixWith runs the corpus×tool evaluation matrix on a
// bounded worker pool. Each (case, tool) cell is an independent job; cells
// land in a pre-indexed grid, so the assembled MatrixResult — cells, totals
// and rendering — is byte-identical for any worker count. Compilation of a
// given translation unit happens once process-wide (the pipeline module
// cache coalesces concurrent compiles), so the matrix cost is dominated by
// execution and scales with the number of cores.
func RunDetectionMatrixWith(opts MatrixOptions) *MatrixResult {
	cases := opts.Cases
	if cases == nil {
		cases = corpus.All()
	}
	tools := opts.Tools
	if tools == nil {
		tools = Tools()
	}
	nt := len(tools)
	total := len(cases) * nt
	grid := make([]Detection, total)

	budget := CaseBudget{
		MaxSteps:      opts.MaxSteps,
		Timeout:       opts.CaseTimeout,
		MaxHeapBytes:  opts.MaxHeapBytes,
		MaxAllocBytes: opts.MaxAllocBytes,
		FaultPlan:     opts.FaultPlan,
		MaxRetries:    opts.MaxRetries,
		JIT:           opts.JIT,
		JITThreshold:  opts.JITThreshold,
		JITAsync:      opts.JITAsync,
		OSR:           opts.OSR,
		OSRThreshold:  opts.OSRThreshold,
		NoCodeCache:   opts.NoCodeCache,
		NoCache:       opts.NoCache,
	}
	var progressMu sync.Mutex
	var done int
	// Longest-first claim order from the duration model (cold start: index
	// order). Cells land by index, so the grid — and everything rendered
	// from it — is byte-identical whatever order the workers claimed.
	order := costs.order(total, func(i int) string {
		return cases[i/nt].Name + "|" + tools[i%nt].String()
	})
	ForEachOrdered(total, opts.Workers, order, func(i int) {
		c := cases[i/nt]
		tool := tools[i%nt]
		costs.timedCell(c.Name+"|"+tool.String(), func() {
			grid[i] = RunCaseWith(c, tool, budget)
		})
		if opts.Progress != nil {
			progressMu.Lock()
			done++
			opts.Progress(done, total)
			progressMu.Unlock()
		}
	})

	m := &MatrixResult{
		Cases:  cases,
		Cells:  make(map[string]map[Tool]Detection, len(cases)),
		Totals: map[Tool]int{},
	}
	for ci, c := range cases {
		row := make(map[Tool]Detection, nt)
		for ti, tool := range tools {
			cell := grid[ci*nt+ti]
			row[tool] = cell
			if cell.Detected {
				m.Totals[tool]++
			}
			if cell.Quarantined {
				// Deterministic (case, tool) order: the grid is walked in
				// index order regardless of which worker filled each cell.
				m.Quarantined = append(m.Quarantined, fmt.Sprintf("%s / %s", c.Name, tool))
			}
		}
		m.Cells[c.Name] = row
	}
	return m
}
