package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
)

// spinCase is a synthetic non-terminating corpus entry: the matrix must
// classify it as a timeout cell and keep going.
func spinCase() corpus.Case {
	return corpus.Case{
		Name:     "synthetic-spin-forever",
		Source:   "int main(void) { volatile long i = 0; for (;;) { i++; } return 0; }",
		Category: corpus.NullDereference, // arbitrary; never detected
	}
}

// TestRunCaseWithStepBudgetClassifiesTimeout: a non-terminating case under
// a step budget lands in the Timeout cell — not RunError, not missed.
func TestRunCaseWithStepBudgetClassifiesTimeout(t *testing.T) {
	for _, tool := range Tools() {
		cell := RunCaseWith(spinCase(), tool, CaseBudget{MaxSteps: 200_000})
		if !cell.Timeout {
			t.Errorf("%v: cell %+v, want Timeout", tool, cell)
		}
		if cell.RunError != "" {
			t.Errorf("%v: timeout misclassified as infrastructure error: %s", tool, cell.RunError)
		}
		if got := cell.Status(); got != "timeout" {
			t.Errorf("%v: Status() = %q, want \"timeout\"", tool, got)
		}
	}
}

// TestRunCaseWithWallClockClassifiesTimeout: the wall-clock deadline is
// honored per cell as well.
func TestRunCaseWithWallClockClassifiesTimeout(t *testing.T) {
	cell := RunCaseWith(spinCase(), SafeSulong, CaseBudget{MaxSteps: -1, Timeout: 100 * time.Millisecond})
	if !cell.Timeout || cell.RunError != "" {
		t.Fatalf("cell %+v, want Timeout with empty RunError", cell)
	}
	if !strings.Contains(cell.Report, "deadline") {
		t.Errorf("report %q does not mention the deadline", cell.Report)
	}
}

// TestMatrixDegradesGracefullyAndStaysDeterministic is the tentpole's
// matrix-level guarantee: one non-terminating case yields a Timeout cell
// while every other cell completes, and the rendered matrix is
// byte-identical at any worker count (step budgets are deterministic).
func TestMatrixDegradesGracefullyAndStaysDeterministic(t *testing.T) {
	normal := corpus.All()[0]
	opts := MatrixOptions{
		Cases:    []corpus.Case{normal, spinCase()},
		Tools:    []Tool{SafeSulong, NativeO0},
		MaxSteps: 200_000,
	}

	var renders []string
	for _, workers := range []int{1, 2, 4} {
		o := opts
		o.Workers = workers
		m := RunDetectionMatrixWith(o)

		for _, tool := range o.Tools {
			if !m.Cells[spinCase().Name][tool].Timeout {
				t.Fatalf("workers=%d: spin case under %v is not a Timeout cell: %+v",
					workers, tool, m.Cells[spinCase().Name][tool])
			}
		}
		// The well-behaved case still completes: Safe Sulong detects it.
		if !m.Cells[normal.Name][SafeSulong].Detected {
			t.Fatalf("workers=%d: case %s no longer detected next to a hanging case: %+v",
				workers, normal.Name, m.Cells[normal.Name][SafeSulong])
		}
		if got := m.Timeouts(); len(got) != 2 {
			t.Fatalf("workers=%d: Timeouts() = %v, want 2 entries", workers, got)
		}
		renders = append(renders, m.Render())
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("matrix render differs between worker counts:\n--- workers=1 ---\n%s\n--- variant %d ---\n%s",
				renders[0], i, renders[i])
		}
	}
	if !strings.Contains(renders[0], "timeout") {
		t.Errorf("rendered matrix does not surface the timeout cells:\n%s", renders[0])
	}
}

// TestForEachPropagatesWorkerPanic: a panicking item surfaces on the
// caller's goroutine after the pool drains, instead of crashing the
// process from an anonymous goroutine.
func TestForEachPropagatesWorkerPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("re-raised panic %q does not carry the original value", r)
		}
	}()
	ForEach(16, 4, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}
