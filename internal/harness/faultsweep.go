package harness

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/fault"
)

// SweepOptions configures a fault-injection sweep: every case is run under
// FailNth = 1..MaxNth for every tool, asserting that injected allocation
// failures never panic an engine and that the managed engine classifies
// each injected outcome identically in tier 0 and tier 1.
type SweepOptions struct {
	// MaxNth sweeps FailNth from 1 to this value (default 3).
	MaxNth int
	// Cases restricts the corpus (nil = corpus.All()).
	Cases []corpus.Case
	// Tools restricts the columns (nil = Tools()).
	Tools []Tool
	// Workers bounds the goroutine pool (<= 0 = GOMAXPROCS, 1 = serial).
	Workers int
	// MaxSteps is the per-run step budget (0 = DefaultMaxSteps).
	MaxSteps int64
	// MaxHeapBytes additionally bounds guest memory per run (0 = none).
	MaxHeapBytes int64
	// Progress, when non-nil, is called after every completed (case, nth,
	// tool) cell with the running count. Calls are serialized, so the
	// callback needs no locking of its own. The campaign driver reports its
	// per-seed progress through the same signature, so both surfaces share
	// one mechanism (and one renderer).
	Progress func(done, total int)
	// NoCodeCache opts every run out of the executable-code cache and
	// engine pool (cold-baseline benchmarking).
	NoCodeCache bool
	// NoCache additionally bypasses the pipeline module cache — every run
	// compiles from source, the fully cold-compile baseline.
	NoCache bool
}

// SweepViolation is one assertion failure found by the sweep.
type SweepViolation struct {
	Case string `json:"case"`
	Tool string `json:"tool"`
	Nth  int    `json:"failNth"`
	// Kind is "panic" (an engine died with an internal error under
	// injection) or "tier-mismatch" (tier-0 and tier-1 SafeSulong disagreed
	// on the injected outcome).
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// SweepResult is the aggregate outcome of a fault sweep.
type SweepResult struct {
	Runs       int              `json:"runs"`
	Cases      int              `json:"cases"`
	MaxNth     int              `json:"maxNth"`
	Violations []SweepViolation `json:"violations"`
}

// OK reports whether the sweep completed without violations.
func (r *SweepResult) OK() bool { return len(r.Violations) == 0 }

// Render summarizes the sweep for CLIs.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: %d cases x FailNth 1..%d (%d runs)\n",
		r.Cases, r.MaxNth, r.Runs)
	if r.OK() {
		b.WriteString("  no engine panics, no tier mismatches\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %d violation(s)\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  - %s / %s / failnth=%d: %s: %s\n",
			v.Case, v.Tool, v.Nth, v.Kind, firstLine(v.Detail))
	}
	return b.String()
}

// FaultSweep runs the deterministic allocation-failure sweep. For every
// (case, nth, tool) triple it runs the case under fault.Plan{FailNth: nth}
// and asserts the engine survives (no contained panic — a guest that
// mishandles a NULL malloc must produce a *report* or a crash
// classification, never an engine death). For SafeSulong it additionally
// runs the same plan with the tier-1 compiler forced hot (JITThreshold 1)
// and asserts both tiers classify the injected outcome identically — the
// paper's "identical semantics across tiers" claim extended to injected
// allocation failures.
//
// Work is fanned out cell-by-cell onto a bounded pool; results land in an
// index-addressed grid, so the assembled violations list is deterministic
// at any worker count.
func FaultSweep(opts SweepOptions) *SweepResult {
	cases := opts.Cases
	if cases == nil {
		cases = corpus.All()
	}
	tools := opts.Tools
	if tools == nil {
		tools = Tools()
	}
	maxNth := opts.MaxNth
	if maxNth <= 0 {
		maxNth = 3
	}
	nt := len(tools)
	total := len(cases) * maxNth * nt

	type cellOut struct {
		violations []SweepViolation
		runs       int
	}
	grid := make([]cellOut, total)

	var progressMu sync.Mutex
	var done int
	report := func() {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		opts.Progress(done, total)
		progressMu.Unlock()
	}

	// Longest-first claim order from the shared duration model. Every nth of
	// one (case, tool) pair shares a key — injection changes where a run
	// stops, not its scale — so matrix runs train the sweep's schedule too.
	order := costs.order(total, func(i int) string {
		return cases[i/(maxNth*nt)].Name + "|" + tools[i%(maxNth*nt)%nt].String()
	})
	ForEachOrdered(total, opts.Workers, order, func(i int) {
		defer report()
		c := cases[i/(maxNth*nt)]
		rem := i % (maxNth * nt)
		nth := rem/nt + 1
		tool := tools[rem%nt]

		budget := CaseBudget{
			MaxSteps:     opts.MaxSteps,
			MaxHeapBytes: opts.MaxHeapBytes,
			FaultPlan:    fault.Plan{FailNth: int64(nth)},
			NoCodeCache:  opts.NoCodeCache,
			NoCache:      opts.NoCache,
		}
		out := &grid[i]
		start := time.Now()
		defer func() { costs.observe(c.Name+"|"+tool.String(), time.Since(start)) }()
		cell := RunCaseWith(c, tool, budget)
		out.runs++
		if cell.RunError != "" {
			out.violations = append(out.violations, SweepViolation{
				Case: c.Name, Tool: tool.String(), Nth: nth,
				Kind: "panic", Detail: cell.RunError,
			})
			return
		}
		if tool != SafeSulong {
			return
		}
		// Tier parity: the same plan with the compiler forced hot must
		// classify identically and produce the identical report.
		jb := budget
		jb.JIT = true
		jb.JITThreshold = 1
		jcell := RunCaseWith(c, tool, jb)
		out.runs++
		if jcell.RunError != "" {
			out.violations = append(out.violations, SweepViolation{
				Case: c.Name, Tool: tool.String(), Nth: nth,
				Kind: "panic", Detail: "tier-1: " + jcell.RunError,
			})
			return
		}
		if cell.Status() != jcell.Status() || cell.Report != jcell.Report {
			out.violations = append(out.violations, SweepViolation{
				Case: c.Name, Tool: tool.String(), Nth: nth,
				Kind: "tier-mismatch",
				Detail: fmt.Sprintf("tier-0 %s %q vs tier-1 %s %q",
					cell.Status(), firstLine(cell.Report), jcell.Status(), firstLine(jcell.Report)),
			})
		}
	})

	res := &SweepResult{Cases: len(cases), MaxNth: maxNth}
	for i := range grid {
		res.Runs += grid[i].runs
		res.Violations = append(res.Violations, grid[i].violations...)
	}
	return res
}
