package harness

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
	// Zero items is a no-op.
	ForEach(0, 4, func(i int) { t.Fatal("called for empty range") })
}
