package harness

import (
	sulong "repro"
)

// CacheReport groups every process-wide cache's effectiveness counters for
// the bench CLIs' machine-readable reports (fuzzbench -json, perfbench
// -json). Field names — and therefore the emitted JSON keys — are sorted
// alphabetically at every level, so reports from different runs diff
// stably against each other.
type CacheReport struct {
	CodeCache  CodeCacheReport     `json:"codeCache"`
	EnginePool EnginePoolReport    `json:"enginePool"`
	Pipeline   PipelineCacheReport `json:"pipeline"`
}

// CodeCacheReport mirrors jit.CodeCacheStats with key-sorted fields.
type CodeCacheReport struct {
	Evictions uint64 `json:"evictions"`
	Funcs     int    `json:"funcs"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Units     int    `json:"units"`
}

// EnginePoolReport mirrors core.EnginePoolStats with key-sorted fields.
type EnginePoolReport struct {
	Hits   uint64 `json:"hits"`
	Idle   int    `json:"idle"`
	Misses uint64 `json:"misses"`
}

// PipelineCacheReport mirrors pipeline.CacheStats with key-sorted fields
// plus the derived hit rate.
type PipelineCacheReport struct {
	Entries int     `json:"entries"`
	HitRate float64 `json:"hitRate"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
}

// Caches snapshots the pipeline module cache, the executable-code cache,
// and the engine reuse pool in one report.
func Caches() CacheReport {
	pc := sulong.CacheStats()
	cc := sulong.CodeCacheStats()
	ep := sulong.EnginePoolStats()
	return CacheReport{
		CodeCache: CodeCacheReport{
			Evictions: cc.Evictions,
			Funcs:     cc.Funcs,
			Hits:      cc.Hits,
			Misses:    cc.Misses,
			Units:     cc.Units,
		},
		EnginePool: EnginePoolReport{
			Hits:   ep.Hits,
			Idle:   ep.Idle,
			Misses: ep.Misses,
		},
		Pipeline: PipelineCacheReport{
			Entries: pc.Entries,
			HitRate: pc.HitRate(),
			Hits:    pc.Hits,
			Misses:  pc.Misses,
		},
	}
}
