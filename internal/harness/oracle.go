package harness

// Oracle adapters for the differential fuzzing campaign (internal/campaign).
//
// The detection matrix compares *classifications* of known-buggy corpus
// programs; the campaign compares everything observable about *generated*
// programs across tiers and tools — a wrong-code bug shows up as identical
// classifications with different stdout, exit codes, or step counts, which
// Detection cannot express. Outcome carries the full comparison surface, and
// RunSource produces one without going through corpus registration.

import (
	"crypto/sha256"
	"errors"
	"fmt"

	sulong "repro"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ir"
)

// Outcome is everything the campaign's oracles compare about one run of one
// program under one tool. Deterministic for a given (source, tool, budget)
// as long as the budget avoids wall-clock deadlines: every class below is
// decided by step budgets, fault schedules, or program behavior, never by
// elapsed time.
type Outcome struct {
	// Class is the coarse classification: "detected", "clean", "crashed",
	// "timeout" (step budget exhausted — deterministic), "deadline"
	// (wall-clock expiry — NOT deterministic; the campaign quarantines the
	// seed instead of judging it), "oom", "compile-error", "panic" (a
	// contained engine or compiler death — always a finding), or "error"
	// (other infrastructure failure).
	Class string `json:"class"`
	// Kind is the structured diagnostic's bug classification when the tool
	// produced one ("out-of-bounds access", "use-after-free", ...) — stable
	// across engines for the same bug class, which makes it the minimizer's
	// signature anchor: line numbers in Report shift as lines are deleted,
	// Kind does not.
	Kind string `json:"kind,omitempty"`
	// Report is the first line of the tool's report ("" when clean).
	Report string `json:"report,omitempty"`
	// Stdout and Exit are the program's observable behavior. Comparable
	// across tiers of the same engine; not across engine families (their
	// libc internals legitimately differ on undefined behavior).
	Stdout string `json:"stdout,omitempty"`
	Exit   int    `json:"exit"`
	// Steps is the managed engine's exact instruction count — the tier
	// parity ledger. Byte-identical between tier-0, forced tier-2, and
	// async+OSR runs of the same program, so any difference is a find.
	// Zero for the native family.
	Steps int64 `json:"steps,omitempty"`
	// HeapAllocs / InjectedFaults mirror the fault plane's accounting,
	// which is tier-invariant for heap traffic by construction.
	HeapAllocs     int64 `json:"heapAllocs,omitempty"`
	InjectedFaults int64 `json:"injectedFaults,omitempty"`
}

// Signature renders the outcome compactly and deterministically for journal
// records and divergence reports. Stdout beyond 64 bytes is folded into a
// hash so records stay small while remaining byte-exact comparators.
func (o Outcome) Signature() string {
	out := o.Stdout
	if len(out) > 64 {
		sum := sha256.Sum256([]byte(out))
		out = fmt.Sprintf("sha256:%x(len=%d)", sum[:8], len(o.Stdout))
	}
	return fmt.Sprintf("%s exit=%d steps=%d allocs=%d faults=%d report=%q stdout=%q",
		o.Class, o.Exit, o.Steps, o.HeapAllocs, o.InjectedFaults, firstLine(o.Report), out)
}

// Detected reports whether the tool positively identified a bug.
func (o Outcome) Detected() bool { return o.Class == "detected" }

// RunSource compiles and executes an arbitrary C program (not a registered
// corpus case) under one tool within the given budget, and captures the
// full comparison surface. It never panics and never kills the process:
// compile-stage and engine panics are contained (class "panic" — for a
// generated program that is the finding itself, not a retry candidate), and
// any harness-side panic lands in class "error".
func RunSource(src string, tool Tool, b CaseBudget) Outcome {
	mod, bad := CompileOutcome(src, tool, b)
	if bad != nil {
		return *bad
	}
	return RunModule(mod, tool, b)
}

// CompileOutcome runs just the compile stage of RunSource, returning the
// module on success or the Outcome that ends the run on failure. Callers
// that judge one program under several same-toolchain oracles (the
// campaign's tier-parity and fault oracles all use SafeSulong's pipeline)
// compile once and feed the module to RunModule per oracle.
func CompileOutcome(src string, tool Tool, b CaseBudget) (m *ir.Module, bad *Outcome) {
	defer func() {
		if r := recover(); r != nil {
			m, bad = nil, &Outcome{Class: "error", Report: fmt.Sprintf("internal harness error: panic: %v", r)}
		}
	}()
	cfg := b.config(corpus.Case{Name: "generated", Source: src}, tool)
	mod, err := sulong.CompileFor(src, cfg)
	if err != nil {
		var ie *core.InternalError
		if errors.As(err, &ie) {
			return nil, &Outcome{Class: "panic", Report: firstLine(err.Error())}
		}
		return nil, &Outcome{Class: "compile-error", Report: firstLine(err.Error())}
	}
	return mod, nil
}

// ReleaseModule retires a CompileOutcome module from the process-wide reuse
// layers once the caller's last run of it has finished. See
// sulong.ReleaseModule.
func ReleaseModule(mod *ir.Module) { sulong.ReleaseModule(mod) }

// RunModule executes an already-compiled module under one tool within the
// given budget (the execution half of RunSource).
func RunModule(mod *ir.Module, tool Tool, b CaseBudget) (o Outcome) {
	defer func() {
		if r := recover(); r != nil {
			o = Outcome{Class: "error", Report: fmt.Sprintf("internal harness error: panic: %v", r)}
		}
	}()
	cfg := b.config(corpus.Case{Name: "generated"}, tool)
	res, err := sulong.RunModuleCtx(b.ctx(), mod, cfg)
	o = Outcome{
		Stdout:         res.Stdout,
		Exit:           res.ExitCode,
		Steps:          res.Stats.Steps,
		HeapAllocs:     res.Stats.HeapAllocs,
		InjectedFaults: res.Stats.InjectedFaults,
	}
	if err != nil {
		var limit *core.LimitError
		var deadline *core.DeadlineError
		var oom *core.ResourceError
		var ie *core.InternalError
		switch {
		case errors.As(err, &limit):
			o.Class, o.Report = "timeout", err.Error()
		case errors.As(err, &deadline):
			o.Class, o.Report = "deadline", err.Error()
		case errors.As(err, &oom):
			o.Class, o.Report = "oom", err.Error()
		case errors.As(err, &ie):
			o.Class, o.Report = "panic", firstLine(err.Error())
		default:
			o.Class, o.Report = "error", err.Error()
		}
		return o
	}
	switch {
	case res.Bug != nil:
		o.Class, o.Report = "detected", res.Bug.Error()
		if len(res.Diagnostics) > 0 {
			o.Kind = res.Diagnostics[0].Kind
		}
	case res.Fault != nil:
		o.Class, o.Report = "crashed", res.Fault.Error()
	default:
		o.Class = "clean"
	}
	return o
}
