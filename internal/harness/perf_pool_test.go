package harness

import (
	"testing"
)

const perfPoolSrc = `#include <stdio.h>
int add(int a, int b) { return a + b; }
int main(void) {
	int s = 0;
	for (int i = 0; i < 200; i++) s = add(s, i);
	printf("%d\n", s);
	return 0;
}`

// TestPerfRunnerPoolReuse pins the satellite fix: rebuilding a managed
// Runner for the same program must reuse a parked engine, and the reused
// engine must do exactly the work a fresh one does. Step-count identity per
// sample row is the deterministic form of "sample variance doesn't
// regress": if every iteration executes the identical instruction stream,
// reuse cannot widen the sample distribution.
func TestPerfRunnerPoolReuse(t *testing.T) {
	opts := RunnerOptions{Tier1Threshold: 1}
	iterate := func(r Runner, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := r.RunIteration(); err != nil {
				t.Fatal(err)
			}
		}
	}

	r1, err := NewRunnerOpts(SafeSulongPerf, perfPoolSrc, "", opts)
	if err != nil {
		t.Fatal(err)
	}
	iterate(r1, 3)
	m1 := r1.(*managedRunner)
	steps1 := m1.eng.Stats().Steps
	compiled1 := r1.CompiledFunctions()
	if steps1 == 0 {
		t.Fatal("no steps recorded on the fresh runner")
	}

	before := perfPool.Stats()
	r1.Close()
	r1.Close() // idempotent: must not double-park the engine
	after := perfPool.Stats()
	if after.Idle != before.Idle+1 {
		t.Fatalf("Close parked %d engines, want exactly 1", after.Idle-before.Idle)
	}

	r2, err := NewRunnerOpts(SafeSulongPerf, perfPoolSrc, "", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := perfPool.Stats(); got.Hits != after.Hits+1 {
		t.Fatalf("rebuilding the runner did not reuse the parked engine: hits %d -> %d", after.Hits, got.Hits)
	}
	m2 := r2.(*managedRunner)
	if m2.eng != m1.eng {
		t.Fatal("pool returned a different engine for the same module")
	}
	iterate(r2, 3)
	if steps2 := m2.eng.Stats().Steps; steps2 != steps1 {
		t.Fatalf("reused engine ran %d steps over 3 iterations, fresh ran %d — reuse changed per-sample work", steps2, steps1)
	}
	if compiled2 := r2.CompiledFunctions(); compiled2 != compiled1 {
		t.Fatalf("reused runner compiled %d functions, fresh compiled %d", compiled2, compiled1)
	}
}
