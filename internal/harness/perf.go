package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	sulong "repro"
	"repro/internal/benchprog"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/nativevm"
)

// PerfConfig is one performance configuration (Fig. 16's x-axis groups).
type PerfConfig int

const (
	ClangO0            PerfConfig = iota // native machine, unoptimized IR
	ClangO3                              // native machine, optimized IR
	ASanPerf                             // ASan-instrumented, unoptimized IR
	ValgrindPerf                         // memcheck-hosted, unoptimized IR
	SafeSulongPerf                       // managed engine with the tier-1 compiler (tier-2 peak layer on), synchronous tier-up
	SafeSulongNoJIT                      // ablation: tier-0 interpreter only
	SafeSulongBaseline                   // ablation: tier-1 without the tier-2 peak layer or frame pooling (the pre-tier-2 compiler)
	SafeSulongNoInline                   // ablation: tier-2 with the inliner off
	SafeSulongAsync                      // tier-2 with background compilation (install at dispatch points)
	SafeSulongAsyncOSR                   // async tier-2 plus on-stack replacement and speculative deopt
)

var perfNames = [...]string{
	ClangO0: "Clang -O0", ClangO3: "Clang -O3", ASanPerf: "ASan -O0",
	ValgrindPerf: "Valgrind", SafeSulongPerf: "Safe Sulong", SafeSulongNoJIT: "Safe Sulong (no JIT)",
	SafeSulongBaseline: "Safe Sulong (baseline)", SafeSulongNoInline: "Safe Sulong (no inline)",
	SafeSulongAsync: "Safe Sulong (async)", SafeSulongAsyncOSR: "Safe Sulong (async+OSR)",
}

func (p PerfConfig) String() string {
	if p < 0 || int(p) >= len(perfNames) {
		return fmt.Sprintf("PerfConfig(%d)", int(p))
	}
	return perfNames[p]
}

// PerfConfigs lists Fig. 16's configurations (Valgrind is measured but
// plotted separately, as in the paper).
func PerfConfigs() []PerfConfig {
	return []PerfConfig{ClangO0, ClangO3, ASanPerf, ValgrindPerf, SafeSulongPerf}
}

// DefaultTier1Threshold is the call count at which the harness's managed
// runners tier up. PR 6 threads it through RunnerOptions instead of
// hardcoding it at engine construction, so benchmarks and the matrix can
// force early (or never) compilation.
const DefaultTier1Threshold = 25

// RunnerOptions tunes the managed configurations. The zero value reproduces
// the historical harness behavior (threshold 25, one background worker for
// async configs, default back-edge threshold for OSR).
type RunnerOptions struct {
	// Tier1Threshold overrides the call count that triggers tier-up
	// (DefaultTier1Threshold when zero).
	Tier1Threshold int64
	// OSRThreshold overrides the back-edge count that requests an OSR entry
	// for SafeSulongAsyncOSR (sulong.DefaultOSRThreshold when zero).
	OSRThreshold int64
	// Workers bounds the background compile pool for async configs.
	Workers int
}

// Runner executes one program repeatedly in-process (the paper's warm-up
// harness keeps state, letting the dynamic compiler reach a steady state).
type Runner interface {
	RunIteration() error
	// CompiledFunctions reports tier-1 compilations so far (managed only).
	// Under async configs this counts *installed* entry compilations.
	CompiledFunctions() int
	// JITStats reports tier-1 compiler activity (zero for native runners).
	JITStats() RunnerJITStats
	// TierStats reports the engine's tiering counters (zero for native
	// runners): OSR installs/entries, deopts, async installs.
	TierStats() RunnerTierStats
	// Close releases engine resources. Async configs own a background
	// compile pool; Close drains it. Idempotent, required for every runner.
	Close()
}

// RunnerTierStats mirrors core.Stats' async-tiering counters for benchmark
// reports and warm-up curves.
type RunnerTierStats struct {
	OSRCompiled   int64 `json:"osr_compiled"`
	OSREntries    int64 `json:"osr_entries"`
	Deopts        int64 `json:"deopts"`
	AsyncInstalls int64 `json:"async_installs"`
}

// RunnerJITStats mirrors the tier-1 compiler's counters for benchmark
// reports: a bail-out or a missing inline shows up here instead of as an
// unexplained slow row.
type RunnerJITStats struct {
	Compiled    int      `json:"compiled"`
	InstrsTotal int      `json:"instrs_total"`
	Bailed      int      `json:"bailed"`
	BailReasons []string `json:"bail_reasons,omitempty"`
	Inlined     int      `json:"inlined"`
}

// perfPool parks managed benchmark engines between runners. Sample rows
// that rebuild a Runner for the same module (recorded warm-up timelines,
// repeated MeasurePeak calls) reset a parked engine — globals re-zeroed,
// libc layout kept — instead of paying NewEngine's full layout cost.
var perfPool = core.NewEnginePool(0)

type managedRunner struct {
	eng      *core.Engine
	comp     *jit.Compiler
	compiled int
	bad      bool // an iteration errored: never park this engine
	closed   bool // Close is idempotent, but Put must happen exactly once
}

func (r *managedRunner) RunIteration() error {
	_, err := r.eng.Run()
	if err != nil {
		r.bad = true
	}
	return err
}

func (r *managedRunner) CompiledFunctions() int { return r.compiled }

func (r *managedRunner) JITStats() RunnerJITStats {
	if r.comp == nil {
		return RunnerJITStats{}
	}
	// Snapshot, not direct field reads: async configs mutate the compiler's
	// counters from pool workers.
	cs := r.comp.Snapshot()
	return RunnerJITStats{
		Compiled:    cs.Compiled,
		InstrsTotal: cs.InstrsTotal,
		Bailed:      cs.Bailed,
		BailReasons: cs.BailReasons,
		Inlined:     cs.Inlined,
	}
}

func (r *managedRunner) TierStats() RunnerTierStats {
	st := r.eng.Stats()
	return RunnerTierStats{
		OSRCompiled:   st.OSRCompiled,
		OSREntries:    st.OSREntries,
		Deopts:        st.Deopts,
		AsyncInstalls: st.AsyncInstalls,
	}
}

// Close parks the engine for the next runner of the same module instead of
// discarding it (the pool closes it first, draining any async pool). An
// engine whose iteration errored is closed and dropped: its state is not
// worth trusting to a reset.
func (r *managedRunner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.bad {
		r.eng.Close()
		return
	}
	perfPool.Put(r.eng)
}

type nativeRunner struct {
	m *nativevm.Machine
}

func (r *nativeRunner) RunIteration() error {
	_, err := r.m.Run()
	return err
}

func (r *nativeRunner) CompiledFunctions() int { return 0 }

func (r *nativeRunner) JITStats() RunnerJITStats { return RunnerJITStats{} }

func (r *nativeRunner) TierStats() RunnerTierStats { return RunnerTierStats{} }

func (r *nativeRunner) Close() {}

// NewRunner prepares an in-process repeat runner for a benchmark program
// with default options.
func NewRunner(cfgKind PerfConfig, src, arg string) (Runner, error) {
	return NewRunnerOpts(cfgKind, src, arg, RunnerOptions{})
}

// NewRunnerOpts prepares an in-process repeat runner for a benchmark program.
// Callers must Close the runner.
func NewRunnerOpts(cfgKind PerfConfig, src, arg string, opts RunnerOptions) (Runner, error) {
	switch cfgKind {
	case SafeSulongPerf, SafeSulongNoJIT, SafeSulongBaseline, SafeSulongNoInline,
		SafeSulongAsync, SafeSulongAsyncOSR:
		mod, err := sulong.CompileOnly(src)
		if err != nil {
			return nil, err
		}
		r := &managedRunner{}
		ecfg := core.Config{
			Args:   []string{arg},
			Stdout: io.Discard,
			OnCompile: func(string) {
				r.compiled++
			},
		}
		switch cfgKind {
		case SafeSulongPerf, SafeSulongAsync, SafeSulongAsyncOSR:
			r.comp = jit.New()
		case SafeSulongBaseline:
			// The pre-tier-2 tier-1 compiler: scalar promotion and closure
			// lowering, but no peak layer and no frame pooling. This is the
			// honest "before" row for the recorded benchmark baseline.
			r.comp = &jit.Compiler{DisableTier2: true}
			ecfg.NoFramePool = true
		case SafeSulongNoInline:
			r.comp = &jit.Compiler{DisableInline: true}
		}
		if r.comp != nil {
			ecfg.Tier1 = r.comp
			ecfg.Tier1Threshold = opts.Tier1Threshold
			if ecfg.Tier1Threshold <= 0 {
				ecfg.Tier1Threshold = DefaultTier1Threshold
			}
		}
		switch cfgKind {
		case SafeSulongAsync, SafeSulongAsyncOSR:
			ecfg.AsyncJIT = true
			ecfg.JITWorkers = opts.Workers
			if cfgKind == SafeSulongAsyncOSR {
				ecfg.OSRThreshold = opts.OSRThreshold
				if ecfg.OSRThreshold <= 0 {
					ecfg.OSRThreshold = sulong.DefaultOSRThreshold
				}
			}
		}
		eng, err := perfPool.Get(mod, ecfg)
		if err != nil {
			return nil, err
		}
		r.eng = eng
		return r, nil
	default:
		optLevel := 0
		if cfgKind == ClangO3 {
			optLevel = 3
		}
		mod, err := sulong.CompileNative(src, optLevel)
		if err != nil {
			return nil, err
		}
		return newNativeRunner(cfgKind, mod, arg)
	}
}

func newNativeRunner(cfgKind PerfConfig, mod *ir.Module, arg string) (Runner, error) {
	eng := sulong.EngineNative
	switch cfgKind {
	case ASanPerf:
		eng = sulong.EngineASan
	case ValgrindPerf:
		eng = sulong.EngineMemcheck
	}
	ncfg, err := sulong.NativeConfig(eng)
	if err != nil {
		return nil, err
	}
	ncfg.Args = []string{arg}
	ncfg.Stdout = io.Discard
	m, err := nativevm.New(mod, ncfg)
	if err != nil {
		return nil, err
	}
	return &nativeRunner{m: m}, nil
}

// ---- start-up (§4.2) ----

// StartupResult is the time from invocation to hello-world completion.
// Safe Sulong's figure includes parsing libc and the user program (the
// paper's dominant cost); the native tools run a precompiled module.
type StartupResult struct {
	Tool PerfConfig
	Time time.Duration
}

const helloSrc = `#include <stdio.h>
int main(void) { printf("Hello, World!\n"); return 0; }`

// MeasureStartup times hello-world end to end, averaged over runs.
func MeasureStartup(runs int) ([]StartupResult, error) {
	if runs <= 0 {
		runs = 10
	}
	configs := []PerfConfig{ClangO0, ASanPerf, ValgrindPerf, SafeSulongPerf}
	// Native binaries exist before startup: compile outside the timer.
	nativeMod, err := sulong.CompileNative(helloSrc, 0)
	if err != nil {
		return nil, err
	}
	var out []StartupResult
	for _, cfgKind := range configs {
		start := time.Now()
		for i := 0; i < runs; i++ {
			switch cfgKind {
			case SafeSulongPerf:
				// Safe Sulong parses libc + program at startup (§4.2).
				// NoCache keeps the measurement honest: the paper's start-up
				// cost is exactly the front-end work the module cache would
				// otherwise skip.
				mod, err := sulong.CompileFor(helloSrc, sulong.Config{Engine: sulong.EngineSafeSulong, NoCache: true})
				if err != nil {
					return nil, err
				}
				if _, err := sulong.RunModule(mod, sulong.Config{Engine: sulong.EngineSafeSulong, Stdout: io.Discard}); err != nil {
					return nil, err
				}
			default:
				r, err := newNativeRunner(cfgKind, nativeMod, "")
				if err != nil {
					return nil, err
				}
				if err := r.RunIteration(); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, StartupResult{Tool: cfgKind, Time: time.Since(start) / time.Duration(runs)})
	}
	return out, nil
}

// ---- warm-up (Fig. 15) ----

// WarmupSample is one time bucket of Fig. 15, extended in PR 6 with the
// async-tiering counters so the curve shows *when* compilation happened,
// not just how many iterations completed.
type WarmupSample struct {
	Bucket      int // index of the time bucket
	Iterations  int // benchmark iterations completed in this bucket
	Compiled    int // cumulative tier-1 compiled (installed) functions at bucket end
	OSRCompiled int // cumulative installed OSR entries at bucket end
	OSREntries  int // cumulative OSR transfers at bucket end
	Deopts      int // cumulative speculative deopts at bucket end
}

// MeasureWarmup replays the paper's Fig. 15: run the benchmark continuously
// for the given duration and report iterations completed per bucket.
func MeasureWarmup(bench benchprog.Benchmark, arg string, total time.Duration, bucket time.Duration, cfgs []PerfConfig) (map[PerfConfig][]WarmupSample, error) {
	return MeasureWarmupOpts(bench, arg, total, bucket, cfgs, RunnerOptions{})
}

// MeasureWarmupOpts is MeasureWarmup with explicit runner options (used by
// perfbench to force early tier-up so the compile timeline is visible within
// a short capture window).
func MeasureWarmupOpts(bench benchprog.Benchmark, arg string, total time.Duration, bucket time.Duration, cfgs []PerfConfig, opts RunnerOptions) (map[PerfConfig][]WarmupSample, error) {
	if arg == "" {
		arg = bench.SmallArg
	}
	out := map[PerfConfig][]WarmupSample{}
	for _, cfgKind := range cfgs {
		r, err := NewRunnerOpts(cfgKind, bench.Source, arg, opts)
		if err != nil {
			return nil, err
		}
		snap := func(s *WarmupSample) {
			s.Compiled = r.CompiledFunctions()
			ts := r.TierStats()
			s.OSRCompiled = int(ts.OSRCompiled)
			s.OSREntries = int(ts.OSREntries)
			s.Deopts = int(ts.Deopts)
		}
		start := time.Now()
		var samples []WarmupSample
		cur := WarmupSample{Bucket: 0}
		for time.Since(start) < total {
			if err := r.RunIteration(); err != nil {
				r.Close()
				return nil, fmt.Errorf("%v: %w", cfgKind, err)
			}
			b := int(time.Since(start) / bucket)
			if b != cur.Bucket {
				snap(&cur)
				samples = append(samples, cur)
				for k := cur.Bucket + 1; k < b; k++ {
					empty := WarmupSample{Bucket: k}
					snap(&empty)
					samples = append(samples, empty)
				}
				cur = WarmupSample{Bucket: b}
			}
			cur.Iterations++
		}
		snap(&cur)
		samples = append(samples, cur)
		r.Close()
		out[cfgKind] = samples
	}
	return out, nil
}

// ---- peak performance (Fig. 16) ----

// PeakResult is one benchmark's row of Fig. 16.
type PeakResult struct {
	Bench string
	// Time per configuration (median of samples after warm-up).
	Times map[PerfConfig]time.Duration
	// JIT carries the tier-1 compiler counters per managed configuration
	// (compiled/bailed/inlined), so a bail-out can be asserted against
	// instead of read off a slow row.
	JIT map[PerfConfig]RunnerJITStats
}

// Relative returns the ratio of a configuration's time to Clang -O0
// (Fig. 16's y-axis).
func (p PeakResult) Relative(cfg PerfConfig) float64 {
	base := p.Times[ClangO0]
	if base == 0 {
		return 0
	}
	return float64(p.Times[cfg]) / float64(base)
}

// MeasurePeak measures steady-state iteration time for each configuration:
// `warmups` in-process iterations first (the paper uses 50), then the
// median of `samples` timed iterations.
func MeasurePeak(bench benchprog.Benchmark, arg string, warmups, samples int, cfgs []PerfConfig) (PeakResult, error) {
	if arg == "" {
		arg = bench.DefaultArg
	}
	if warmups <= 0 {
		warmups = 50
	}
	if samples <= 0 {
		samples = 10
	}
	res := PeakResult{
		Bench: bench.Name,
		Times: map[PerfConfig]time.Duration{},
		JIT:   map[PerfConfig]RunnerJITStats{},
	}
	// Prepare every configuration's runner up front on the worker pool: the
	// compile work (and module-cache population) overlaps across
	// configurations, while the timed iterations below stay strictly serial
	// so measurements are undisturbed.
	runners := make([]Runner, len(cfgs))
	errs := make([]error, len(cfgs))
	ForEach(len(cfgs), 0, func(i int) {
		runners[i], errs[i] = NewRunner(cfgs[i], bench.Source, arg)
	})
	defer func() {
		for _, r := range runners {
			if r != nil {
				r.Close()
			}
		}
	}()
	for i, err := range errs {
		if err != nil {
			return res, fmt.Errorf("%s under %v (prepare): %w", bench.Name, cfgs[i], err)
		}
	}
	for ci, cfgKind := range cfgs {
		r := runners[ci]
		for i := 0; i < warmups; i++ {
			if err := r.RunIteration(); err != nil {
				return res, fmt.Errorf("%s under %v (warmup): %w", bench.Name, cfgKind, err)
			}
		}
		// Collect garbage left over from warm-up (and from the previous
		// configuration's run) off the clock, so a GC cycle triggered by an
		// earlier configuration's allocations doesn't land inside a timed
		// iteration — at sub-millisecond iteration times that skews medians.
		runtime.GC()
		times := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			t0 := time.Now()
			if err := r.RunIteration(); err != nil {
				return res, fmt.Errorf("%s under %v: %w", bench.Name, cfgKind, err)
			}
			times = append(times, time.Since(t0))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		res.Times[cfgKind] = times[len(times)/2]
		res.JIT[cfgKind] = r.JITStats()
	}
	return res, nil
}

// RenderPeak formats Fig. 16 as a table of ratios relative to Clang -O0.
func RenderPeak(results []PeakResult, cfgs []PerfConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s", "benchmark")
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%22s", c)
	}
	b.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-15s", r.Bench)
		for _, c := range cfgs {
			fmt.Fprintf(&b, "%15.2fx (%s)", r.Relative(c), shortDur(r.Times[c]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func shortDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dus", d.Microseconds())
	}
}
