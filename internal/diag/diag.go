// Package diag is the unified diagnostics layer shared by every engine.
//
// The paper's headline UX claim for Safe Sulong is that errors come with
// exact, self-explanatory messages: a Java-style stack trace pinpointing the
// faulting access plus the allocation site of the object involved, the way
// ASan and Valgrind print allocation and free backtraces. This package gives
// all engines one vocabulary for that:
//
//   - Frame is a single (function, source line) location.
//   - Stack is an immutable, persistent stack of frames. Engines thread one
//     through their call sequence; pushing a frame allocates a single node
//     and shares the entire tail with the parent (copy-on-write by
//     construction), so maintaining it costs O(1) per call and capturing it
//     at a fault, allocation or free site costs one pointer copy. No slices
//     are copied on the hot path, which is what keeps peak-performance
//     benchmarks unaffected.
//   - Diagnostic bundles the classified error with the access stack, the
//     involved object's allocation-site stack and (for use-after-free /
//     double-free) its free-site stack, plus engine/tier provenance.
//
// Diagnostic.Render deliberately excludes the tier: tier-0 (interpreter) and
// tier-1 (JIT) must produce byte-identical reports, and the harness asserts
// they do. Tier stays available as structured data for -json consumers.
package diag

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Frame is one call-stack entry: a function name and a 1-based source line.
// Line 0 means "line unknown" and renders without a line suffix.
type Frame struct {
	Func string `json:"func"`
	Line int    `json:"line,omitempty"`
}

func (f Frame) String() string {
	if f.Line > 0 {
		return fmt.Sprintf("%s (line %d)", f.Func, f.Line)
	}
	return f.Func
}

// node is one link of the persistent stack. Nodes are immutable after
// construction and shared freely across goroutines and captured stacks.
type node struct {
	f      Frame
	parent *node
	depth  int
}

// Stack is an immutable stack of frames, innermost (leaf) first. The zero
// value is the empty stack. Values are cheap to copy (one pointer) and safe
// to retain: a captured Stack shares structure with the live call stack but
// can never observe later pushes or pops.
type Stack struct{ top *node }

// Push returns the stack with f as the new innermost frame. O(1): one node
// allocation, tail shared with the receiver.
func (s Stack) Push(f Frame) Stack {
	d := 1
	if s.top != nil {
		d = s.top.depth + 1
	}
	return Stack{&node{f: f, parent: s.top, depth: d}}
}

// Pop returns the stack without its innermost frame. Popping the empty stack
// returns the empty stack.
func (s Stack) Pop() Stack {
	if s.top == nil {
		return s
	}
	return Stack{s.top.parent}
}

// Top returns the innermost frame, if any.
func (s Stack) Top() (Frame, bool) {
	if s.top == nil {
		return Frame{}, false
	}
	return s.top.f, true
}

// Len reports the number of frames.
func (s Stack) Len() int {
	if s.top == nil {
		return 0
	}
	return s.top.depth
}

// IsEmpty reports whether the stack has no frames.
func (s Stack) IsEmpty() bool { return s.top == nil }

// Frames materializes the stack leaf-first. Only called when a diagnostic is
// rendered or serialized, never on the execution hot path.
func (s Stack) Frames() []Frame {
	if s.top == nil {
		return nil
	}
	out := make([]Frame, 0, s.top.depth)
	for n := s.top; n != nil; n = n.parent {
		out = append(out, n.f)
	}
	return out
}

// FromFrames builds a stack from a leaf-first frame slice (the inverse of
// Frames). Used by JSON decoding and tests.
func FromFrames(frames []Frame) Stack {
	var s Stack
	for i := len(frames) - 1; i >= 0; i-- {
		s = s.Push(frames[i])
	}
	return s
}

// Equal reports whether two stacks hold the same frames. Shared tails make
// the common comparison (same underlying node) O(1).
func (s Stack) Equal(o Stack) bool {
	a, b := s.top, o.top
	for a != b {
		if a == nil || b == nil || a.depth != b.depth || a.f != b.f {
			return false
		}
		a, b = a.parent, b.parent
	}
	return true
}

// String renders the stack one frame per line, ASan-style.
func (s Stack) String() string {
	var b strings.Builder
	writeStack(&b, s, "    ")
	return b.String()
}

func writeStack(b *strings.Builder, s Stack, indent string) {
	for i, f := range s.Frames() {
		fmt.Fprintf(b, "%s#%d %s\n", indent, i, f.String())
	}
}

// MarshalJSON encodes the stack as a leaf-first frame array.
func (s Stack) MarshalJSON() ([]byte, error) {
	frames := s.Frames()
	if frames == nil {
		frames = []Frame{}
	}
	return json.Marshal(frames)
}

// UnmarshalJSON decodes a leaf-first frame array.
func (s *Stack) UnmarshalJSON(data []byte) error {
	var frames []Frame
	if err := json.Unmarshal(data, &frames); err != nil {
		return err
	}
	*s = FromFrames(frames)
	return nil
}

// Diagnostic is one classified error report with full provenance.
type Diagnostic struct {
	// Kind classifies the error ("out-of-bounds access", "use-after-free",
	// "double free", ...). Stable across engines for the same bug class.
	Kind string `json:"kind"`
	// Message is the one-line, self-explanatory summary (the historical
	// error string, unchanged for compatibility).
	Message string `json:"message"`
	// Tool names the engine family that produced the report (SafeSulong,
	// ASan, Memcheck, Native).
	Tool string `json:"tool,omitempty"`
	// Tier records which execution tier was active at the fault ("interp",
	// "jit", "native"). Provenance only: Render excludes it so tier-0 and
	// tier-1 reports are byte-identical.
	Tier string `json:"tier,omitempty"`
	// Access is the call stack at the faulting access, innermost first.
	Access Stack `json:"accessStack"`
	// Alloc is the call stack at the involved object's allocation site.
	Alloc Stack `json:"allocStack,omitempty"`
	// Free is the call stack at the free that retired the object, for
	// use-after-free and double-free reports.
	Free Stack `json:"freeStack,omitempty"`
}

// Render produces the stable multi-line report: the message, the access
// backtrace, then "allocated by" / "freed by" sections when known. The tier
// is deliberately absent — tier-0 and tier-1 renders must be byte-identical.
func (d *Diagnostic) Render() string {
	var b strings.Builder
	b.WriteString(d.Message)
	if !d.Access.IsEmpty() {
		b.WriteString("\n")
		writeStack(&b, d.Access, "    ")
	}
	if !d.Free.IsEmpty() {
		b.WriteString("freed by:\n")
		writeStack(&b, d.Free, "    ")
	}
	if !d.Alloc.IsEmpty() {
		b.WriteString("allocated by:\n")
		writeStack(&b, d.Alloc, "    ")
	}
	return strings.TrimRight(b.String(), "\n")
}
