package diag

import (
	"encoding/json"
	"testing"
)

func TestStackPushPopShare(t *testing.T) {
	var s Stack
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("zero Stack should be empty")
	}
	s1 := s.Push(Frame{Func: "main", Line: 3})
	s2 := s1.Push(Frame{Func: "f", Line: 7})
	// Capturing s2 then popping must not disturb the capture.
	captured := s2
	s3 := s2.Pop()
	if !s3.Equal(s1) {
		t.Fatal("pop should restore the parent stack")
	}
	got := captured.Frames()
	if len(got) != 2 || got[0] != (Frame{Func: "f", Line: 7}) || got[1] != (Frame{Func: "main", Line: 3}) {
		t.Fatalf("captured frames wrong: %v", got)
	}
	// Shared-tail fast path.
	if !s2.Equal(captured) {
		t.Fatal("identical stacks must compare equal")
	}
	if s1.Equal(s2) {
		t.Fatal("different depths must not compare equal")
	}
}

func TestStackJSONRoundTrip(t *testing.T) {
	s := FromFrames([]Frame{{Func: "g", Line: 9}, {Func: "main", Line: 2}})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stack
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip changed stack: %s vs %s", back, s)
	}
}

func TestDiagnosticRenderExcludesTier(t *testing.T) {
	mk := func(tier string) *Diagnostic {
		return &Diagnostic{
			Kind:    "use-after-free",
			Message: "use-after-free of size 4 in f (line 7)",
			Tool:    "SafeSulong",
			Tier:    tier,
			Access:  FromFrames([]Frame{{Func: "f", Line: 7}, {Func: "main", Line: 3}}),
			Alloc:   FromFrames([]Frame{{Func: "main", Line: 2}}),
			Free:    FromFrames([]Frame{{Func: "main", Line: 4}}),
		}
	}
	a, b := mk("interp").Render(), mk("jit").Render()
	if a != b {
		t.Fatalf("renders differ across tiers:\n%s\n---\n%s", a, b)
	}
	want := "use-after-free of size 4 in f (line 7)\n" +
		"    #0 f (line 7)\n" +
		"    #1 main (line 3)\n" +
		"freed by:\n" +
		"    #0 main (line 4)\n" +
		"allocated by:\n" +
		"    #0 main (line 2)"
	if a != want {
		t.Fatalf("render:\n%s\nwant:\n%s", a, want)
	}
}
