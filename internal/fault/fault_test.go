package fault

import "testing"

func TestNilInjectorIsValid(t *testing.T) {
	var j *Injector
	if got := j.ChargeHeap(1 << 40); got != OK {
		t.Fatalf("nil ChargeHeap = %v, want OK", got)
	}
	if got := j.ChargeFixed(1 << 40); got != OK {
		t.Fatalf("nil ChargeFixed = %v, want OK", got)
	}
	j.Release(8)
	j.ReleaseFixed(8)
	if s := j.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zero", s)
	}
	if j.Active() {
		t.Fatal("nil injector reports Active")
	}
}

func TestFailNthIsExact(t *testing.T) {
	j := NewInjector(Plan{FailNth: 3}, Budget{})
	var got []Outcome
	for i := 0; i < 5; i++ {
		got = append(got, j.ChargeHeap(16))
	}
	want := []Outcome{OK, OK, Null, OK, OK}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alloc %d: got %v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	s := j.Stats()
	if s.InjectedFaults != 1 || s.HeapAttempts != 5 || s.HeapAllocs != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFailNthCountsDeniedAttempts(t *testing.T) {
	// The n-th *attempt* fails, even if earlier attempts were denied for
	// other reasons — the coordinate system is the guest's call sequence.
	j := NewInjector(Plan{FailNth: 2}, Budget{MaxAllocBytes: 10})
	if got := j.ChargeHeap(100); got != Null { // over cap
		t.Fatalf("first = %v, want Null", got)
	}
	if got := j.ChargeHeap(4); got != Null { // injected (attempt #2)
		t.Fatalf("second = %v, want Null (injected)", got)
	}
	if got := j.ChargeHeap(4); got != OK {
		t.Fatalf("third = %v, want OK", got)
	}
}

func TestFailAfterBytes(t *testing.T) {
	j := NewInjector(Plan{FailAfterBytes: 100}, Budget{})
	if got := j.ChargeHeap(100); got != OK {
		t.Fatalf("first 100B = %v, want OK", got)
	}
	if got := j.ChargeHeap(1); got != Null {
		t.Fatalf("past the line = %v, want Null", got)
	}
	if got := j.ChargeHeap(1); got != Null {
		t.Fatalf("still past the line = %v, want Null", got)
	}
}

func TestFailProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []Outcome {
		j := NewInjector(Plan{Seed: seed, FailProb: 0.5}, Budget{})
		out := make([]Outcome, 64)
		for i := range out {
			out[i] = j.ChargeHeap(8)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 64-draw schedules")
	}
	var injected int
	for _, o := range a {
		if o == Null {
			injected++
		}
	}
	if injected < 16 || injected > 48 {
		t.Fatalf("FailProb 0.5 injected %d/64 — badly skewed stream", injected)
	}
}

func TestHeapBudgetSoftExhaustion(t *testing.T) {
	j := NewInjector(Plan{}, Budget{MaxHeapBytes: 100})
	if got := j.ChargeHeap(60); got != OK {
		t.Fatalf("60B = %v", got)
	}
	if got := j.ChargeHeap(60); got != Null {
		t.Fatalf("second 60B = %v, want Null (soft)", got)
	}
	j.Release(60)
	if got := j.ChargeHeap(60); got != OK {
		t.Fatalf("after release = %v, want OK", got)
	}
	s := j.Stats()
	if s.HeapInUseBytes != 60 || s.HeapPeakBytes != 60 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFixedChargeHardExhaustion(t *testing.T) {
	j := NewInjector(Plan{}, Budget{MaxHeapBytes: 100})
	if got := j.ChargeFixed(90); got != OK {
		t.Fatalf("90B fixed = %v", got)
	}
	if got := j.ChargeFixed(20); got != Exhausted {
		t.Fatalf("overflow fixed = %v, want Exhausted", got)
	}
	// Heap and fixed share one budget.
	if got := j.ChargeHeap(20); got != Null {
		t.Fatalf("heap over shared budget = %v, want Null", got)
	}
	j.ReleaseFixed(90)
	if got := j.ChargeHeap(20); got != OK {
		t.Fatalf("after frame pop = %v, want OK", got)
	}
}

func TestPeakTracksCombinedHighWater(t *testing.T) {
	j := NewInjector(Plan{}, Budget{})
	j.ChargeHeap(40)
	j.ChargeFixed(30)
	j.Release(40)
	j.ChargeHeap(10)
	if s := j.Stats(); s.HeapPeakBytes != 70 {
		t.Fatalf("peak = %d, want 70 (stats %+v)", s.HeapPeakBytes, s)
	}
}

func TestPlanStringAndEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan enabled")
	}
	if got := (Plan{}).String(); got != "none" {
		t.Fatalf("zero plan String = %q", got)
	}
	p := Plan{FailNth: 3, FailAfterBytes: 64, FailProb: 0.1, Seed: 9}
	if !p.Enabled() {
		t.Fatal("plan not enabled")
	}
	if got := p.String(); got != "failnth=3 failafter=64B failprob=0.1 seed=9" {
		t.Fatalf("String = %q", got)
	}
}
