// Package fault is the deterministic fault-injection and resource-accounting
// plane shared by every execution engine (the managed interpreter, the tier-1
// compiled code, and the simulated native machine with its tools).
//
// It answers two questions the engines previously could not:
//
//  1. "May this guest allocation proceed?" — charging every malloc / calloc /
//     realloc / alloca / global against a per-run heap budget, and failing
//     the n-th (or seeded-random) heap allocation on purpose so the guest's
//     own error paths (`if (!p) ...`) are actually exercised. A denied heap
//     allocation is *soft*: guest malloc returns NULL, which is C-correct, so
//     programs that check the result keep running. A denied stack or global
//     allocation is *hard*: C has no way to report it, so the engine surfaces
//     a structured resource error and the harness classifies the run "oom".
//
//  2. "How much guest memory is in use?" — exact byte accounting (in-use,
//     peak, cumulative) that is identical between the tier-0 interpreter and
//     tier-1 compiled code, because both tiers allocate through the same
//     engine entry points.
//
// Everything here is deterministic: the schedule depends only on Plan and the
// sequence of guest allocation requests, never on wall-clock time, host
// memory pressure, or goroutine scheduling. An Injector is per-run state and
// is not safe for concurrent use; each engine instance owns exactly one.
package fault

import (
	"fmt"
	"strings"
)

// Plan is a deterministic allocation-failure schedule. The zero Plan injects
// nothing. Schedules count *heap* allocations only (malloc/calloc/realloc),
// not stack or global charges: heap requests are issued by the guest program
// itself, so their sequence is identical in the tier-0 interpreter and under
// the tier-1 compiler (whose scalar promotion may elide allocas), which is
// what makes injected outcomes tier-portable.
type Plan struct {
	// Seed seeds the deterministic PRNG behind FailProb. Two runs with the
	// same Seed and the same guest allocation sequence fail identically.
	Seed int64
	// FailNth fails the n-th guest heap allocation (1-based). 0 disables.
	FailNth int64
	// FailAfterBytes fails every heap allocation once the cumulative
	// *requested* bytes (successful or not) exceed this. 0 disables.
	FailAfterBytes int64
	// FailProb fails each heap allocation independently with this
	// probability, drawn from the seeded PRNG. 0 disables.
	FailProb float64
}

// Enabled reports whether the plan injects any failures.
func (p Plan) Enabled() bool {
	return p.FailNth > 0 || p.FailAfterBytes > 0 || p.FailProb > 0
}

// String renders the plan compactly for reports ("failnth=3 seed=7").
func (p Plan) String() string {
	if !p.Enabled() {
		return "none"
	}
	var parts []string
	if p.FailNth > 0 {
		parts = append(parts, fmt.Sprintf("failnth=%d", p.FailNth))
	}
	if p.FailAfterBytes > 0 {
		parts = append(parts, fmt.Sprintf("failafter=%dB", p.FailAfterBytes))
	}
	if p.FailProb > 0 {
		parts = append(parts, fmt.Sprintf("failprob=%g seed=%d", p.FailProb, p.Seed))
	}
	return strings.Join(parts, " ")
}

// Budget bounds guest memory. The zero Budget imposes no cumulative bound
// and leaves the single-allocation cap to the engine's default.
type Budget struct {
	// MaxHeapBytes bounds the cumulative *live* guest bytes (heap in-use
	// plus stack and global charges). 0 = unlimited.
	MaxHeapBytes int64
	// MaxAllocBytes bounds a single allocation request. 0 = engine default.
	MaxAllocBytes int64
}

// Outcome classifies one allocation decision.
type Outcome int

const (
	// OK: the allocation proceeds; its bytes are charged until released.
	OK Outcome = iota
	// Null: the allocation must fail softly — guest malloc returns NULL.
	// Raised for injected faults, over-cap single requests, and heap-budget
	// exhaustion. C-correct: programs that check malloc keep running.
	Null
	// Exhausted: a stack or global allocation exceeded the budget. C cannot
	// express this as a return value; the engine must surface a hard
	// *core.ResourceError and the harness classifies the run "oom".
	Exhausted
)

var outcomeNames = [...]string{OK: "ok", Null: "null", Exhausted: "exhausted"}

func (o Outcome) String() string {
	if o < 0 || int(o) >= len(outcomeNames) {
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
	return outcomeNames[o]
}

// Stats is the injector's exact byte/event accounting. All fields are
// tier-invariant for heap traffic: tier-0 and tier-1 runs of the same
// program report identical values (stack charges additionally match under
// jit.DisableMem2Reg, since scalar promotion legitimately elides allocas).
type Stats struct {
	// HeapAllocs counts successful guest heap allocations; HeapAttempts
	// counts all requests (including denied ones — the FailNth coordinate).
	HeapAllocs   int64
	HeapAttempts int64
	// HeapAllocBytes is the cumulative bytes of successful heap allocations;
	// HeapInUseBytes the live (not yet freed) heap bytes; HeapPeakBytes the
	// high-water mark of all live charges (heap + stack + global).
	HeapAllocBytes int64
	HeapInUseBytes int64
	HeapPeakBytes  int64
	// InjectedFaults counts allocations denied by the Plan; DeniedAllocs
	// counts every soft denial (injected, over-cap, or over-budget).
	InjectedFaults int64
	DeniedAllocs   int64
}

// Injector is the per-run accounting and injection state. The nil *Injector
// is valid and means "no plan, no budget": every charge succeeds and costs
// one branch, so engines keep a single code path (mirroring *core.Governor).
type Injector struct {
	plan     Plan
	maxHeap  int64
	maxAlloc int64

	rng uint64 // splitmix64 state, seeded from Plan.Seed

	attempts  int64 // heap allocation requests seen (the FailNth coordinate)
	requested int64 // cumulative requested heap bytes (FailAfterBytes)

	heapInUse  int64 // live heap bytes
	fixedInUse int64 // live stack/global bytes
	peak       int64 // high-water mark of heapInUse+fixedInUse

	st Stats
}

// NewInjector builds an injector for one run. maxAlloc semantics: requests
// above Budget.MaxAllocBytes fail softly; pass 0 to leave single requests
// uncapped (engines substitute their historical default before calling).
func NewInjector(plan Plan, b Budget) *Injector {
	return &Injector{
		plan:     plan,
		maxHeap:  b.MaxHeapBytes,
		maxAlloc: b.MaxAllocBytes,
		rng:      splitmixSeed(uint64(plan.Seed)),
	}
}

// Active reports whether the injector can ever deny an allocation. Engines
// may use it to skip bookkeeping they only need under a plan or budget; the
// accounting itself is cheap enough to stay on unconditionally.
func (j *Injector) Active() bool {
	return j != nil && (j.plan.Enabled() || j.maxHeap > 0 || j.maxAlloc > 0)
}

// ChargeHeap decides the fate of one guest heap allocation (malloc, calloc,
// realloc) of size bytes. On OK the bytes are charged until Release. Soft
// denials return Null: the engine's malloc returns the C NULL pointer.
func (j *Injector) ChargeHeap(size int64) Outcome {
	if j == nil {
		return OK
	}
	j.attempts++
	j.st.HeapAttempts = j.attempts
	if size < 0 {
		j.st.DeniedAllocs++
		return Null
	}
	j.requested += size
	if j.injects(size) {
		j.st.InjectedFaults++
		j.st.DeniedAllocs++
		return Null
	}
	if j.maxAlloc > 0 && size > j.maxAlloc {
		j.st.DeniedAllocs++
		return Null
	}
	if j.maxHeap > 0 && j.heapInUse+j.fixedInUse+size > j.maxHeap {
		j.st.DeniedAllocs++
		return Null
	}
	j.heapInUse += size
	j.st.HeapAllocs++
	j.st.HeapAllocBytes += size
	j.st.HeapInUseBytes = j.heapInUse
	j.bumpPeak()
	return OK
}

// injects applies the plan to the current (already-counted) attempt.
func (j *Injector) injects(size int64) bool {
	hit := false
	if j.plan.FailNth > 0 && j.attempts == j.plan.FailNth {
		hit = true
	}
	if j.plan.FailAfterBytes > 0 && j.requested > j.plan.FailAfterBytes {
		hit = true
	}
	if j.plan.FailProb > 0 {
		// Always draw, so the random schedule depends only on the attempt
		// index — composable with FailNth without perturbing the stream.
		r := j.next()
		if float64(r>>11)/(1<<53) < j.plan.FailProb {
			hit = true
		}
	}
	return hit
}

// Release returns freed heap bytes to the budget (free, realloc's retired
// block). Sizes are the same values that were charged, so in-use accounting
// is exact; over-release is clamped defensively.
func (j *Injector) Release(size int64) {
	if j == nil || size <= 0 {
		return
	}
	j.heapInUse -= size
	if j.heapInUse < 0 {
		j.heapInUse = 0
	}
	j.st.HeapInUseBytes = j.heapInUse
}

// ChargeFixed charges stack or global bytes — allocations C cannot report
// as NULL. Over-budget requests return Exhausted (hard); the plan never
// fires here (schedules target heap allocations only).
func (j *Injector) ChargeFixed(size int64) Outcome {
	if j == nil || size <= 0 {
		return OK
	}
	if j.maxHeap > 0 && j.heapInUse+j.fixedInUse+size > j.maxHeap {
		return Exhausted
	}
	j.fixedInUse += size
	j.bumpPeak()
	return OK
}

// ReleaseFixed returns stack bytes when a frame pops. Global charges live
// for the whole run and are never released.
func (j *Injector) ReleaseFixed(size int64) {
	if j == nil || size <= 0 {
		return
	}
	j.fixedInUse -= size
	if j.fixedInUse < 0 {
		j.fixedInUse = 0
	}
}

func (j *Injector) bumpPeak() {
	if total := j.heapInUse + j.fixedInUse; total > j.peak {
		j.peak = total
		j.st.HeapPeakBytes = total
	}
}

// Stats snapshots the accounting counters. Valid on the nil injector.
func (j *Injector) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	return j.st
}

// HeapInUse returns the live charged heap bytes.
func (j *Injector) HeapInUse() int64 {
	if j == nil {
		return 0
	}
	return j.heapInUse
}

// Limit returns the configured cumulative budget (0 = unlimited).
func (j *Injector) Limit() int64 {
	if j == nil {
		return 0
	}
	return j.maxHeap
}

// splitmix64: a tiny, well-distributed PRNG. Deterministic across platforms
// and Go versions (unlike math/rand's unspecified stream), which the
// byte-identical-render guarantee needs.
func splitmixSeed(s uint64) uint64 { return s + 0x9e3779b97f4a7c15 }

func (j *Injector) next() uint64 {
	j.rng += 0x9e3779b97f4a7c15
	z := j.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
