package cc

import (
	"fmt"

	"repro/internal/ir"
)

// CKind classifies a C type.
type CKind int

const (
	CVoid CKind = iota
	CInt        // all integer types, including char, enum, and _Bool
	CFloat
	CPtr
	CArray
	CStruct
	CFunc
)

// CType is a C type. Values are immutable once constructed.
type CType struct {
	Kind     CKind
	Bits     int  // CInt: 8/16/32/64; CFloat: 32/64
	Unsigned bool // CInt only
	Elem     *CType
	Len      int64 // CArray; -1 when the length is not yet known
	Struct   *CStructInfo
	Fn       *CFuncInfo
}

// CStructInfo describes a struct (or union, laid out as overlapping fields).
type CStructInfo struct {
	Name     string
	Fields   []CField
	IsUnion  bool
	Complete bool
	irType   *ir.StructType
}

// CField is one struct member.
type CField struct {
	Name string
	Ty   *CType
}

// CFuncInfo is a function signature.
type CFuncInfo struct {
	Ret      *CType
	Params   []*CType
	Names    []string
	Variadic bool
}

// Shared scalar types.
var (
	tyVoid    = &CType{Kind: CVoid}
	tyChar    = &CType{Kind: CInt, Bits: 8}
	tyUChar   = &CType{Kind: CInt, Bits: 8, Unsigned: true}
	tyShort   = &CType{Kind: CInt, Bits: 16}
	tyUShort  = &CType{Kind: CInt, Bits: 16, Unsigned: true}
	tyInt     = &CType{Kind: CInt, Bits: 32}
	tyUInt    = &CType{Kind: CInt, Bits: 32, Unsigned: true}
	tyLong    = &CType{Kind: CInt, Bits: 64}
	tyULong   = &CType{Kind: CInt, Bits: 64, Unsigned: true}
	tyFloat   = &CType{Kind: CFloat, Bits: 32}
	tyDouble  = &CType{Kind: CFloat, Bits: 64}
	tyVoidPtr = &CType{Kind: CPtr, Elem: tyVoid}
	tyCharPtr = &CType{Kind: CPtr, Elem: tyChar}
)

func ptrTo(t *CType) *CType { return &CType{Kind: CPtr, Elem: t} }

func arrayOf(t *CType, n int64) *CType { return &CType{Kind: CArray, Elem: t, Len: n} }

// Size returns the storage size in bytes.
func (t *CType) Size() int64 {
	switch t.Kind {
	case CVoid:
		return 1 // GNU-compatible sizeof(void); pointer arithmetic on void* uses 1
	case CInt, CFloat:
		return int64(t.Bits / 8)
	case CPtr:
		return ir.PtrSize
	case CArray:
		if t.Len < 0 {
			return 0
		}
		return t.Elem.Size() * t.Len
	case CStruct:
		return t.IR().Size()
	case CFunc:
		return ir.PtrSize
	}
	return 0
}

// IsScalar reports whether t is an arithmetic or pointer type.
func (t *CType) IsScalar() bool {
	switch t.Kind {
	case CInt, CFloat, CPtr:
		return true
	}
	return false
}

// IsInteger reports whether t is an integer type.
func (t *CType) IsInteger() bool { return t.Kind == CInt }

// IsArithmetic reports whether t is an integer or floating type.
func (t *CType) IsArithmetic() bool { return t.Kind == CInt || t.Kind == CFloat }

// Decay converts array and function types to pointers, as C does in
// expression contexts.
func (t *CType) Decay() *CType {
	switch t.Kind {
	case CArray:
		return ptrTo(t.Elem)
	case CFunc:
		return ptrTo(t)
	}
	return t
}

// IR lowers the C type to its SIR representation.
func (t *CType) IR() ir.Type {
	switch t.Kind {
	case CVoid:
		return ir.Void
	case CInt:
		return ir.IntN(t.Bits)
	case CFloat:
		if t.Bits == 32 {
			return ir.F32
		}
		return ir.F64
	case CPtr, CFunc:
		return ir.BytePtr
	case CArray:
		n := t.Len
		if n < 0 {
			n = 0
		}
		return &ir.ArrayType{Elem: t.Elem.IR(), Len: n}
	case CStruct:
		return t.Struct.ir()
	}
	panic("cc: unhandled type kind")
}

func (s *CStructInfo) ir() *ir.StructType {
	if s.irType != nil {
		return s.irType
	}
	st := &ir.StructType{Name: s.Name}
	s.irType = st // set first: self-referential structs go through pointers
	var fields []ir.Field
	for _, f := range s.Fields {
		fields = append(fields, ir.Field{Name: f.Name, Ty: f.Ty.IR()})
	}
	st.Fields = fields
	if s.IsUnion {
		// Unions overlay every field at offset 0; size is the max field size.
		var size, align int64 = 0, 1
		for i := range st.Fields {
			st.Fields[i].Offset = 0
			if s := st.Fields[i].Ty.Size(); s > size {
				size = s
			}
			if a := st.Fields[i].Ty.Align(); a > align {
				align = a
			}
		}
		st.SetLayout(alignUp(size, align), align)
	} else {
		st.Layout()
	}
	return st
}

// IR returns the struct's lowered type (for use by StructType.Size etc.).
func (t *CType) irStruct() *ir.StructType { return t.Struct.ir() }

// FieldIndex returns the index and type of the named member, or -1.
func (t *CType) FieldIndex(name string) (int, *CType) {
	if t.Kind != CStruct {
		return -1, nil
	}
	for i, f := range t.Struct.Fields {
		if f.Name == name {
			return i, f.Ty
		}
	}
	return -1, nil
}

// FieldOffset returns the byte offset of field i.
func (t *CType) FieldOffset(i int) int64 {
	return t.Struct.ir().Fields[i].Offset
}

// Compatible reports assignment compatibility in the relaxed sense this
// front end enforces (C's real rules plus implicit pointer conversions,
// which the corpus programs rely on).
func Compatible(dst, src *CType) bool {
	dst, src = dst.Decay(), src.Decay()
	if dst.Kind == CVoid || src.Kind == CVoid {
		return dst.Kind == src.Kind
	}
	if dst.IsArithmetic() && src.IsArithmetic() {
		return true
	}
	if dst.Kind == CPtr && src.Kind == CPtr {
		return true // warnings, not errors, in practice
	}
	if dst.Kind == CPtr && src.IsInteger() {
		return true // null constants and integer/pointer abuse
	}
	if dst.IsInteger() && src.Kind == CPtr {
		return true
	}
	return false
}

func (t *CType) String() string {
	switch t.Kind {
	case CVoid:
		return "void"
	case CInt:
		u := ""
		if t.Unsigned {
			u = "unsigned "
		}
		switch t.Bits {
		case 8:
			return u + "char"
		case 16:
			return u + "short"
		case 32:
			return u + "int"
		case 64:
			return u + "long"
		}
		return fmt.Sprintf("%sint%d", u, t.Bits)
	case CFloat:
		if t.Bits == 32 {
			return "float"
		}
		return "double"
	case CPtr:
		return t.Elem.String() + "*"
	case CArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case CStruct:
		kind := "struct"
		if t.Struct.IsUnion {
			kind = "union"
		}
		if t.Struct.Name != "" {
			return kind + " " + t.Struct.Name
		}
		return kind + " <anon>"
	case CFunc:
		return "function"
	}
	return "?"
}

func alignUp(v, a int64) int64 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) / a * a
}
