package cc

import (
	"fmt"

	"repro/internal/ir"
)

// BuiltinMemcpy and BuiltinMemset are IR-level intrinsics every engine
// implements natively. The front end emits them for struct assignment and
// partial initializer zero-fill.
const (
	BuiltinMemcpy = "__builtin_memcpy"
	BuiltinMemset = "__builtin_memset"
)

// local is a function-scope variable; every local lives in an alloca
// (Clang -O0 behaviour), which keeps the IR uniform. The optimizer and the
// JIT promote non-address-taken scalars back to registers.
type local struct {
	addr int // register holding the alloca's address
	ty   *CType
}

type pendingGoto struct {
	blk, instr int
	name       string
	pos        Pos
}

// fnGen generates IR for one function body.
type fnGen struct {
	cg     *codegen
	f      *ir.Func
	sig    *CFuncInfo
	curIdx int

	scopes    []map[string]*local
	breaks    []int
	continues []int
	labels    map[string]int
	gotos     []pendingGoto

	staticIdx int

	// line is the source line of the statement/expression currently being
	// lowered. emit stamps it on every instruction that was not given an
	// explicit Line, so diagnostics never see Line == 0 inside a function
	// body (calls, branches, frees, loads, spills — everything).
	line int
}

// at advances the current source line. Positions without line info (Pos{})
// leave the last known line in place, so synthesized instructions inherit
// the nearest enclosing source location.
func (g *fnGen) at(pos Pos) {
	if pos.Line > 0 {
		g.line = pos.Line
	}
}

// stmtPos extracts a statement's source position.
func stmtPos(s Stmt) Pos {
	switch v := s.(type) {
	case *ExprStmt:
		return v.Pos
	case *DeclStmt:
		return v.Pos
	case *Block:
		return v.Pos
	case *If:
		return v.Pos
	case *While:
		return v.Pos
	case *For:
		return v.Pos
	case *Return:
		return v.Pos
	case *Break:
		return v.Pos
	case *Continue:
		return v.Pos
	case *Switch:
		return v.Pos
	case *Case:
		return v.Pos
	case *Label:
		return v.Pos
	case *Goto:
		return v.Pos
	}
	return Pos{}
}

func (cg *codegen) function(fd *FuncDecl) error {
	f := &ir.Func{Name: fd.Name, Sig: sigIR(fd.Sig), SourceFile: cg.file}
	f.Blocks = []*ir.Block{{Name: "entry"}}
	g := &fnGen{cg: cg, f: f, sig: fd.Sig, labels: map[string]int{}}
	g.at(fd.Pos) // parameter spills carry the function's own line
	g.pushScope()
	// Parameters arrive in registers 0..n-1; spill each into an alloca so
	// that &param works and all locals are uniform.
	for i, pt := range fd.Sig.Params {
		f.NewReg() // reserve the incoming register
		_ = i
		_ = pt
	}
	for i, pt := range fd.Sig.Params {
		name := ""
		if i < len(fd.Sig.Names) {
			name = fd.Sig.Names[i]
		}
		if name == "" {
			continue
		}
		addr := g.alloca(pt, name)
		g.emit(ir.Instr{Op: ir.OpStore, Ty: pt.Decay().IR(), A: ir.Reg(i, pt.Decay().IR()), Addr: ir.Reg(addr, ir.BytePtr)})
		g.scopes[0][name] = &local{addr: addr, ty: pt}
	}
	if err := g.stmts(fd.Body.Stmts); err != nil {
		return err
	}
	g.sealFunction()
	for _, pg := range g.gotos {
		idx, ok := g.labels[pg.name]
		if !ok {
			return cg.errAt(pg.pos, "goto to undefined label %q", pg.name)
		}
		g.f.Blocks[pg.blk].Instrs[pg.instr].Blk0 = idx
	}
	cg.m.AddFunc(f)
	return nil
}

func (g *fnGen) pushScope() { g.scopes = append(g.scopes, map[string]*local{}) }
func (g *fnGen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *fnGen) lookup(name string) *local {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if l, ok := g.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (g *fnGen) cur() *ir.Block { return g.f.Blocks[g.curIdx] }

func (g *fnGen) terminated() bool {
	b := g.cur()
	return len(b.Instrs) > 0 && ir.IsTerminator(b.Instrs[len(b.Instrs)-1].Op)
}

func (g *fnGen) emit(in ir.Instr) {
	if in.Line == 0 {
		in.Line = g.line
	}
	if g.terminated() {
		// Unreachable code after return/break: park it in a fresh block so
		// the IR stays well formed.
		g.curIdx = g.newBlock("dead")
	}
	g.cur().Instrs = append(g.cur().Instrs, in)
}

func (g *fnGen) newBlock(prefix string) int {
	idx := len(g.f.Blocks)
	g.f.Blocks = append(g.f.Blocks, &ir.Block{Name: fmt.Sprintf("%s.%d", prefix, idx)})
	return idx
}

// br terminates the current block with a jump if it is not already terminated.
func (g *fnGen) br(target int) {
	if !g.terminated() {
		g.cur().Instrs = append(g.cur().Instrs, ir.Instr{Op: ir.OpBr, Blk0: target, Line: g.line})
	}
}

func (g *fnGen) setBlock(i int) { g.curIdx = i }

// alloca emits an alloca for a C type and returns the address register.
func (g *fnGen) alloca(ty *CType, name string) int {
	dst := g.f.NewReg()
	// Allocas are emitted where they appear; engines hoist nothing. The
	// entry block would be the classic place, but emitting in place keeps
	// block-scoped lifetimes simple and matches the managed model.
	g.emit(ir.Instr{Op: ir.OpAlloca, Dst: dst, Ty: ty.IR(), Name: name, CType: ty.String()})
	return dst
}

// sealFunction gives every unterminated block a terminator. C permits
// falling off the end of a function; the result is the zero value (and
// main() returns 0 per C99).
func (g *fnGen) sealFunction() {
	for i, b := range g.f.Blocks {
		if len(b.Instrs) > 0 && ir.IsTerminator(b.Instrs[len(b.Instrs)-1].Op) {
			continue
		}
		g.curIdx = i
		switch rt := g.sig.Ret; {
		case rt.Kind == CVoid:
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet, Line: g.line})
		case rt.Kind == CFloat:
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet, Ty: rt.IR(), A: ir.ConstFloat(0, rt.IR()), Line: g.line})
		case rt.Kind == CPtr:
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet, Ty: rt.IR(), A: ir.Null(), Line: g.line})
		default:
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet, Ty: rt.IR(), A: ir.ConstInt(0, rt.IR()), Line: g.line})
		}
	}
}

func (g *fnGen) stmts(list []Stmt) error {
	for _, s := range list {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *fnGen) stmt(s Stmt) error {
	g.at(stmtPos(s))
	switch st := s.(type) {
	case *ExprStmt:
		if st.X == nil {
			return nil
		}
		_, err := g.expr(st.X)
		return err
	case *DeclStmt:
		for _, vd := range st.Decls {
			if err := g.localVar(vd); err != nil {
				return err
			}
		}
		return nil
	case *Block:
		g.pushScope()
		err := g.stmts(st.Stmts)
		g.popScope()
		return err
	case *If:
		cond, err := g.exprCond(st.Cond)
		if err != nil {
			return err
		}
		thenB := g.newBlock("if.then")
		endB := g.newBlock("if.end")
		elseB := endB
		if st.Else != nil {
			elseB = g.newBlock("if.else")
		}
		g.emit(ir.Instr{Op: ir.OpCondBr, A: cond, Blk0: thenB, Blk1: elseB})
		g.setBlock(thenB)
		if err := g.stmt(st.Then); err != nil {
			return err
		}
		g.br(endB)
		if st.Else != nil {
			g.setBlock(elseB)
			if err := g.stmt(st.Else); err != nil {
				return err
			}
			g.br(endB)
		}
		g.setBlock(endB)
		return nil
	case *While:
		condB := g.newBlock("loop.cond")
		bodyB := g.newBlock("loop.body")
		endB := g.newBlock("loop.end")
		if st.DoWhile {
			g.br(bodyB)
		} else {
			g.br(condB)
		}
		g.setBlock(condB)
		cond, err := g.exprCond(st.Cond)
		if err != nil {
			return err
		}
		g.emit(ir.Instr{Op: ir.OpCondBr, A: cond, Blk0: bodyB, Blk1: endB})
		g.setBlock(bodyB)
		g.breaks = append(g.breaks, endB)
		g.continues = append(g.continues, condB)
		err = g.stmt(st.Body)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.continues = g.continues[:len(g.continues)-1]
		if err != nil {
			return err
		}
		g.br(condB)
		g.setBlock(endB)
		return nil
	case *For:
		g.pushScope()
		defer g.popScope()
		if st.Init != nil {
			if err := g.stmt(st.Init); err != nil {
				return err
			}
		}
		condB := g.newBlock("for.cond")
		bodyB := g.newBlock("for.body")
		postB := g.newBlock("for.post")
		endB := g.newBlock("for.end")
		g.br(condB)
		g.setBlock(condB)
		if st.Cond != nil {
			cond, err := g.exprCond(st.Cond)
			if err != nil {
				return err
			}
			g.emit(ir.Instr{Op: ir.OpCondBr, A: cond, Blk0: bodyB, Blk1: endB})
		} else {
			g.br(bodyB)
		}
		g.setBlock(bodyB)
		g.breaks = append(g.breaks, endB)
		g.continues = append(g.continues, postB)
		err := g.stmt(st.Body)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.continues = g.continues[:len(g.continues)-1]
		if err != nil {
			return err
		}
		g.br(postB)
		g.setBlock(postB)
		if st.Post != nil {
			if _, err := g.expr(st.Post); err != nil {
				return err
			}
		}
		g.br(condB)
		g.setBlock(endB)
		return nil
	case *Return:
		if st.X == nil {
			g.emit(ir.Instr{Op: ir.OpRet})
			return nil
		}
		v, err := g.expr(st.X)
		if err != nil {
			return err
		}
		v, err = g.convert(v, g.sig.Ret, posOf(st.X))
		if err != nil {
			return err
		}
		g.emit(ir.Instr{Op: ir.OpRet, Ty: g.sig.Ret.IR(), A: v.op})
		return nil
	case *Break:
		if len(g.breaks) == 0 {
			return g.cg.errAt(st.Pos, "break outside loop or switch")
		}
		g.emit(ir.Instr{Op: ir.OpBr, Blk0: g.breaks[len(g.breaks)-1]})
		return nil
	case *Continue:
		if len(g.continues) == 0 {
			return g.cg.errAt(st.Pos, "continue outside loop")
		}
		g.emit(ir.Instr{Op: ir.OpBr, Blk0: g.continues[len(g.continues)-1]})
		return nil
	case *Switch:
		return g.switchStmt(st)
	case *Case:
		return g.cg.errAt(st.Pos, "case label outside switch")
	case *Label:
		idx, ok := g.labels[st.Name]
		if !ok {
			idx = g.newBlock("label." + st.Name)
			g.labels[st.Name] = idx
		}
		g.br(idx)
		g.setBlock(idx)
		return nil
	case *Goto:
		idx, ok := g.labels[st.Name]
		if ok {
			g.emit(ir.Instr{Op: ir.OpBr, Blk0: idx})
			return nil
		}
		// Forward goto: patch after the body is generated.
		g.emit(ir.Instr{Op: ir.OpBr, Blk0: 0})
		g.gotos = append(g.gotos, pendingGoto{blk: g.curIdx, instr: len(g.cur().Instrs) - 1, name: st.Name, pos: st.Pos})
		return nil
	}
	return fmt.Errorf("cc: unhandled statement %T", s)
}

func (g *fnGen) switchStmt(st *Switch) error {
	scrut, err := g.expr(st.X)
	if err != nil {
		return err
	}
	scrut, err = g.convert(scrut, tyLong, st.Pos)
	if err != nil {
		return err
	}
	dispatch := g.curIdx
	endB := g.newBlock("sw.end")
	var cases []ir.SwitchCase
	defaultB := -1

	g.breaks = append(g.breaks, endB)
	defer func() { g.breaks = g.breaks[:len(g.breaks)-1] }()
	g.pushScope()
	defer g.popScope()

	// Start in a dead block so statements before the first case vanish.
	g.setBlock(g.newBlock("sw.pre"))
	for _, s := range st.Body.Stmts {
		if c, ok := s.(*Case); ok {
			nb := g.newBlock("sw.case")
			g.br(nb) // fall-through from the previous case body
			g.setBlock(nb)
			if c.IsDefault {
				defaultB = nb
				continue
			}
			v, err := g.constInt(c.V)
			if err != nil {
				return g.cg.errAt(c.Pos, "case label is not constant: %v", err)
			}
			cases = append(cases, ir.SwitchCase{Val: v, Blk: nb})
			continue
		}
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	g.br(endB)
	if defaultB < 0 {
		defaultB = endB
	}
	// Seal any dangling pre-case block.
	g.f.Blocks[dispatch].Instrs = append(g.f.Blocks[dispatch].Instrs,
		ir.Instr{Op: ir.OpSwitch, Ty: ir.I64, A: scrut.op, Blk0: defaultB, Cases: cases, Line: st.Pos.Line})
	g.setBlock(endB)
	return nil
}

func (g *fnGen) constInt(e Expr) (int64, error) {
	p := &Parser{enums: map[string]int64{}}
	return p.evalConst(e)
}

// localVar emits a local variable declaration with optional initializer.
func (g *fnGen) localVar(vd *VarDecl) error {
	if vd.Static {
		// Function-scope statics become module globals with mangled names.
		g.staticIdx++
		mangled := fmt.Sprintf("%s.static.%s.%d", g.f.Name, vd.Name, g.staticIdx)
		gv := &ir.Global{Name: mangled, Ty: vd.Ty.IR(), IsConst: vd.Const, CType: vd.Ty.String()}
		if vd.Init != nil {
			c, err := g.cg.constInit(vd.Init, vd.Ty)
			if err != nil {
				return err
			}
			gv.Init = c
		}
		if err := g.cg.m.AddGlobal(gv); err != nil {
			return err
		}
		g.cg.globals[mangled] = vd.Ty
		g.scopes[len(g.scopes)-1][vd.Name] = &local{addr: g.emitGlobalAddr(mangled), ty: vd.Ty}
		return nil
	}
	if vd.Ty.Kind == CArray && vd.Ty.Len < 0 {
		return g.cg.errAt(vd.Pos, "array %q has unknown size", vd.Name)
	}
	addr := g.alloca(vd.Ty, vd.Name)
	g.scopes[len(g.scopes)-1][vd.Name] = &local{addr: addr, ty: vd.Ty}
	if vd.Init == nil {
		return nil
	}
	return g.emitInit(ir.Reg(addr, ir.BytePtr), vd.Ty, vd.Init, vd.Pos)
}

// emitGlobalAddr materializes a global's address into a register so scope
// entries can treat statics like allocas.
func (g *fnGen) emitGlobalAddr(name string) int {
	dst := g.f.NewReg()
	g.emit(ir.Instr{Op: ir.OpGEP, Dst: dst, Addr: ir.GlobalRef(name), Stride: 0, A: ir.ConstInt(0, ir.I64)})
	return dst
}

// emitInit stores an initializer (scalar, string, or brace list) to addr.
func (g *fnGen) emitInit(addr ir.Operand, ty *CType, init Expr, pos Pos) error {
	switch iv := init.(type) {
	case *InitList:
		switch ty.Kind {
		case CArray:
			if int64(len(iv.Items)) < ty.Len {
				g.emitZeroFill(addr, ty.Size())
			}
			for i, item := range iv.Items {
				if ty.Len >= 0 && int64(i) >= ty.Len {
					return g.cg.errAt(pos, "too many initializers")
				}
				elemAddr := g.f.NewReg()
				g.emit(ir.Instr{Op: ir.OpGEP, Dst: elemAddr, Addr: addr, Stride: ty.Elem.Size(), A: ir.ConstInt(int64(i), ir.I64)})
				if err := g.emitInit(ir.Reg(elemAddr, ir.BytePtr), ty.Elem, item, pos); err != nil {
					return err
				}
			}
			return nil
		case CStruct:
			if len(iv.Items) < len(ty.Struct.Fields) {
				g.emitZeroFill(addr, ty.Size())
			}
			for i, item := range iv.Items {
				if i >= len(ty.Struct.Fields) {
					return g.cg.errAt(pos, "too many initializers")
				}
				fAddr := g.f.NewReg()
				g.emit(ir.Instr{Op: ir.OpGEP, Dst: fAddr, Addr: addr, Stride: 1, A: ir.ConstInt(ty.FieldOffset(i), ir.I64)})
				if err := g.emitInit(ir.Reg(fAddr, ir.BytePtr), ty.Struct.Fields[i].Ty, item, pos); err != nil {
					return err
				}
			}
			return nil
		default:
			if len(iv.Items) == 1 {
				return g.emitInit(addr, ty, iv.Items[0], pos)
			}
			return g.cg.errAt(pos, "invalid initializer for %s", ty)
		}
	case *StrLit:
		if ty.Kind == CArray {
			data := append([]byte(iv.S), 0)
			if ty.Len >= 0 && int64(len(data)) > ty.Len {
				data = data[:ty.Len] // may drop the NUL — a real C footgun
			}
			if int64(len(data)) < ty.Len {
				g.emitZeroFill(addr, ty.Size())
			}
			for i, b := range data {
				bAddr := g.f.NewReg()
				g.emit(ir.Instr{Op: ir.OpGEP, Dst: bAddr, Addr: addr, Stride: 1, A: ir.ConstInt(int64(i), ir.I64)})
				g.emit(ir.Instr{Op: ir.OpStore, Ty: ir.I8, A: ir.ConstInt(int64(b), ir.I8), Addr: ir.Reg(bAddr, ir.BytePtr)})
			}
			return nil
		}
	}
	// Scalar initializer.
	v, err := g.expr(init)
	if err != nil {
		return err
	}
	if ty.Kind == CStruct {
		return g.cg.errAt(pos, "struct initialization from expression requires assignment")
	}
	v, err = g.convert(v, ty, pos)
	if err != nil {
		return err
	}
	g.emit(ir.Instr{Op: ir.OpStore, Ty: ty.Decay().IR(), A: v.op, Addr: addr})
	return nil
}

func (g *fnGen) emitZeroFill(addr ir.Operand, size int64) {
	g.emit(ir.Instr{
		Op: ir.OpCall, Dst: -1, Ty: ir.Void, Callee: ir.FuncRef(BuiltinMemset),
		Args: []ir.Operand{
			withTy(addr, ir.BytePtr),
			withTy(ir.ConstInt(0, ir.I32), ir.I32),
			withTy(ir.ConstInt(size, ir.I64), ir.I64),
		},
		FixedArgs: 3,
	})
	g.cg.ensureBuiltin(BuiltinMemset, &ir.FuncType{Ret: ir.Void, Params: []ir.Type{ir.BytePtr, ir.I32, ir.I64}})
}

func withTy(o ir.Operand, ty ir.Type) ir.Operand {
	o.Ty = ty
	return o
}

func (cg *codegen) ensureBuiltin(name string, sig *ir.FuncType) {
	if cg.m.Func(name) == nil {
		cg.m.AddFunc(&ir.Func{Name: name, Sig: sig, IsDecl: true})
	}
}

func posOf(e Expr) Pos {
	switch v := e.(type) {
	case *Ident:
		return v.Pos
	case *IntLit:
		return v.Pos
	case *FloatLit:
		return v.Pos
	case *StrLit:
		return v.Pos
	case *Unary:
		return v.Pos
	case *Binary:
		return v.Pos
	case *Assign:
		return v.Pos
	case *Cond:
		return v.Pos
	case *Call:
		return v.Pos
	case *Index:
		return v.Pos
	case *Member:
		return v.Pos
	case *CastExpr:
		return v.Pos
	case *SizeofExpr:
		return v.Pos
	case *InitList:
		return v.Pos
	}
	return Pos{}
}
