package cc

import (
	"testing"

	"repro/internal/ir"
)

// TestLineFidelityNoZeroLines compiles a multi-function fixture exercising
// every statement and expression form, then asserts that every emitted
// instruction carries a source line. Historically calls, branches, spills,
// loads, short-circuit scaffolding, and frees leaked Line == 0, which left
// diagnostics without locations.
func TestLineFidelityNoZeroLines(t *testing.T) {
	src := `struct P { int x; int y; };
void free(void *p);
void *malloc(unsigned long n);

int helper(int a, int b) {
    int r = a + b;
    if (r > 10 && a < b)
        r = r - 1;
    return r;
}

int looper(int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc += i;
        if (acc > 100)
            break;
    }
    while (n > 0) {
        n--;
        continue;
    }
    switch (acc) {
    case 0:
        acc = 1;
        break;
    default:
        acc = acc ? acc : -acc;
    }
    return acc;
}

int main(void) {
    struct P p;
    int arr[4];
    int *h = malloc(16);
    p.x = helper(1, 2);
    p.y = looper(p.x);
    arr[0] = p.x + p.y;
    h[1] = arr[0];
    free(h);
    return arr[0] - h[1];
}
`
	m, err := Compile("fix.c", map[string]string{"fix.c": src}, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		for bi, blk := range f.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Line == 0 {
					t.Errorf("%s block %d instr %d (op %d) has Line == 0",
						f.Name, bi, i, in.Op)
				}
			}
		}
	}
}

// TestLineFidelityExactLines pins down the exact lines of the accesses that
// matter most for bug reports: the call, the store through the heap pointer,
// and the free.
func TestLineFidelityExactLines(t *testing.T) {
	src := `void free(void *p);
void *malloc(unsigned long n);
int main(void) {
    int *h = malloc(8);
    h[0] = 1;
    free(h);
    return h[0];
}
`
	m, err := Compile("fix.c", map[string]string{"fix.c": src}, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	f := m.Func("main")
	if f == nil {
		t.Fatal("no main")
	}
	wantCall := func(callee string, line int) {
		t.Helper()
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Op == ir.OpCall && in.Callee.Sym == callee {
					if in.Line != line {
						t.Errorf("call %s: Line = %d, want %d", callee, in.Line, line)
					}
					return
				}
			}
		}
		t.Errorf("no call to %s found", callee)
	}
	wantCall("malloc", 4)
	wantCall("free", 6)
	// The store h[0] = 1 on line 5.
	found := false
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op == ir.OpStore && in.Line == 5 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no store with Line 5 (h[0] = 1)")
	}
}
