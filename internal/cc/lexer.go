// Package cc is a self-contained C front end: preprocessor, parser, semantic
// analysis, and SIR code generation. It plays the role Clang -O0 plays in the
// paper: it lowers C to IR without optimizing, so that source-level memory
// errors survive into the IR where the engines can observe them.
//
// The supported language is the C89/C99 subset exercised by the paper's
// corpus and benchmarks: all scalar types, pointers, arrays, structs, enums,
// typedefs, function pointers, variadic functions, string literals, the full
// expression and statement grammar (including switch, do/while, and the
// conditional operator), and a textual preprocessor with object- and
// function-like macros and conditional compilation.
package cc

import (
	"fmt"
	"strings"
)

// TokKind classifies a token.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStrLit
	TokPunct
	TokNewline // only visible to the preprocessor
)

// Token is a lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // identifier, keyword, punctuator, or raw literal text
	Int  int64
	Flt  float64
	Str  string // decoded string-literal contents (without quotes)
	File string
	Line int
	// Adj is true when this token starts immediately after the previous
	// token, with no intervening whitespace (the preprocessor needs this to
	// distinguish function-like from object-like macro definitions).
	Adj bool

	// Unsigned/long suffix info for integer literals ("u", "l", "ul", ...).
	Unsigned bool
	Long     bool

	noExpand map[string]bool // macros not to re-expand (recursion guard)
}

var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true, "else": true,
	"enum": true, "extern": true, "float": true, "for": true, "goto": true,
	"if": true, "int": true, "long": true, "register": true, "return": true,
	"short": true, "signed": true, "sizeof": true, "static": true,
	"struct": true, "switch": true, "typedef": true, "union": true,
	"unsigned": true, "void": true, "volatile": true, "while": true,
	"inline": true,
}

// threeCharPuncts and twoCharPuncts are matched longest-first.
var threeCharPuncts = []string{"<<=", ">>=", "..."}

var twoCharPuncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "##",
}

// Lex tokenizes one source file. Newlines are preserved as TokNewline tokens
// because the preprocessor is line-oriented; the parser skips them.
func Lex(file, src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	adjacent := false
	emit := func(t Token) {
		t.File = file
		t.Line = line
		t.Adj = adjacent
		toks = append(toks, t)
		adjacent = true
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			adjacent = false
			emit(Token{Kind: TokNewline})
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			adjacent = false
			i++
		case c == '\\' && i+1 < n && src[i+1] == '\n':
			// line continuation
			adjacent = false
			line++
			i += 2
		case c == '/' && i+1 < n && src[i+1] == '/':
			adjacent = false
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			adjacent = false
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, fmt.Errorf("%s:%d: unterminated block comment", file, line)
			}
			i += 2
		case isAlpha(c):
			start := i
			for i < n && (isAlpha(src[i]) || isDigit(src[i])) {
				i++
			}
			word := src[start:i]
			if keywords[word] {
				emit(Token{Kind: TokKeyword, Text: word})
			} else {
				emit(Token{Kind: TokIdent, Text: word})
			}
		case isDigit(c) || c == '.' && i+1 < n && isDigit(src[i+1]):
			t, ni, err := lexNumber(src, i)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", file, line, err)
			}
			i = ni
			emit(t)
		case c == '"':
			var sb strings.Builder
			i++
			for i < n && src[i] != '"' {
				ch, ni, err := lexEscape(src, i)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", file, line, err)
				}
				sb.WriteByte(ch)
				i = ni
			}
			if i >= n {
				return nil, fmt.Errorf("%s:%d: unterminated string literal", file, line)
			}
			i++
			emit(Token{Kind: TokStrLit, Str: sb.String()})
		case c == '\'':
			i++
			if i >= n {
				return nil, fmt.Errorf("%s:%d: unterminated char literal", file, line)
			}
			ch, ni, err := lexEscape(src, i)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", file, line, err)
			}
			i = ni
			if i >= n || src[i] != '\'' {
				return nil, fmt.Errorf("%s:%d: unterminated char literal", file, line)
			}
			i++
			emit(Token{Kind: TokCharLit, Int: int64(ch)})
		default:
			matched := false
			for _, p := range threeCharPuncts {
				if strings.HasPrefix(src[i:], p) {
					emit(Token{Kind: TokPunct, Text: p})
					i += 3
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			for _, p := range twoCharPuncts {
				if strings.HasPrefix(src[i:], p) {
					emit(Token{Kind: TokPunct, Text: p})
					i += 2
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%&|^~!<>=?:;,.(){}[]#", rune(c)) {
				emit(Token{Kind: TokPunct, Text: string(c)})
				i++
			} else {
				return nil, fmt.Errorf("%s:%d: unexpected character %q", file, line, c)
			}
		}
	}
	emit(Token{Kind: TokEOF})
	return toks, nil
}

func lexNumber(src string, i int) (Token, int, error) {
	n := len(src)
	start := i
	isFloat := false
	if src[i] == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
		i += 2
		for i < n && isHex(src[i]) {
			i++
		}
		var v uint64
		for _, c := range []byte(src[start+2 : i]) {
			v = v*16 + uint64(hexVal(c))
		}
		t := Token{Kind: TokIntLit, Int: int64(v)}
		i = lexIntSuffix(src, i, &t)
		return t, i, nil
	}
	for i < n && isDigit(src[i]) {
		i++
	}
	if i < n && src[i] == '.' {
		isFloat = true
		i++
		for i < n && isDigit(src[i]) {
			i++
		}
	}
	if i < n && (src[i] == 'e' || src[i] == 'E') {
		isFloat = true
		i++
		if i < n && (src[i] == '+' || src[i] == '-') {
			i++
		}
		for i < n && isDigit(src[i]) {
			i++
		}
	}
	text := src[start:i]
	if isFloat {
		var v float64
		if _, err := fmt.Sscanf(text, "%g", &v); err != nil {
			return Token{}, i, fmt.Errorf("bad float literal %q", text)
		}
		if i < n && (src[i] == 'f' || src[i] == 'F' || src[i] == 'l' || src[i] == 'L') {
			i++
		}
		return Token{Kind: TokFloatLit, Flt: v, Text: text}, i, nil
	}
	var v uint64
	if strings.HasPrefix(text, "0") && len(text) > 1 {
		for _, c := range []byte(text[1:]) { // octal
			v = v*8 + uint64(c-'0')
		}
	} else {
		for _, c := range []byte(text) {
			v = v*10 + uint64(c-'0')
		}
	}
	t := Token{Kind: TokIntLit, Int: int64(v), Text: text}
	i = lexIntSuffix(src, i, &t)
	return t, i, nil
}

func lexIntSuffix(src string, i int, t *Token) int {
	for i < len(src) {
		switch src[i] {
		case 'u', 'U':
			t.Unsigned = true
			i++
		case 'l', 'L':
			t.Long = true
			i++
		default:
			return i
		}
	}
	return i
}

func lexEscape(src string, i int) (byte, int, error) {
	if src[i] != '\\' {
		return src[i], i + 1, nil
	}
	i++
	if i >= len(src) {
		return 0, i, fmt.Errorf("dangling backslash")
	}
	c := src[i]
	i++
	switch c {
	case 'n':
		return '\n', i, nil
	case 't':
		return '\t', i, nil
	case 'r':
		return '\r', i, nil
	case '0', '1', '2', '3', '4', '5', '6', '7':
		v := int(c - '0')
		for k := 0; k < 2 && i < len(src) && src[i] >= '0' && src[i] <= '7'; k++ {
			v = v*8 + int(src[i]-'0')
			i++
		}
		return byte(v), i, nil
	case 'x':
		v := 0
		for i < len(src) && isHex(src[i]) {
			v = v*16 + hexVal(src[i])
			i++
		}
		return byte(v), i, nil
	case '\\':
		return '\\', i, nil
	case '\'':
		return '\'', i, nil
	case '"':
		return '"', i, nil
	case 'a':
		return 7, i, nil
	case 'b':
		return 8, i, nil
	case 'f':
		return 12, i, nil
	case 'v':
		return 11, i, nil
	}
	return 0, i, fmt.Errorf("unknown escape \\%c", c)
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
