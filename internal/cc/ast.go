package cc

// Pos is a source position for diagnostics.
type Pos struct {
	File string
	Line int
}

// Expr is a C expression node.
type Expr interface{ exprNode() }

// Ident names a variable, function, or enum constant.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer or character literal.
type IntLit struct {
	V        int64
	Unsigned bool
	Long     bool
	Pos      Pos
}

// FloatLit is a floating literal.
type FloatLit struct {
	V      float64
	Single bool // 'f' suffix
	Pos    Pos
}

// StrLit is a string literal (already concatenated and unescaped, no NUL).
type StrLit struct {
	S   string
	Pos Pos
}

// Unary is a prefix or postfix unary operation.
// Ops: "&" "*" "-" "+" "!" "~" "++" "--" (Postfix for x++/x--).
type Unary struct {
	Op      string
	X       Expr
	Postfix bool
	Pos     Pos
}

// Binary is a binary operation (arithmetic, comparison, logical, comma).
type Binary struct {
	Op   string
	X, Y Expr
	Pos  Pos
}

// Assign is "=", or a compound assignment such as "+=".
type Assign struct {
	Op   string
	L, R Expr
	Pos  Pos
}

// Cond is the ternary operator c ? t : f.
type Cond struct {
	C, T, F Expr
	Pos     Pos
}

// Call is a function call.
type Call struct {
	Fn   Expr
	Args []Expr
	Pos  Pos
}

// Index is array subscripting x[i].
type Index struct {
	X, I Expr
	Pos  Pos
}

// Member is x.name or x->name.
type Member struct {
	X     Expr
	Name  string
	Arrow bool
	Pos   Pos
}

// CastExpr is (type)x.
type CastExpr struct {
	Ty  *CType
	X   Expr
	Pos Pos
}

// SizeofExpr is sizeof(x) or sizeof(type); exactly one of X, Ty is set.
type SizeofExpr struct {
	X   Expr
	Ty  *CType
	Pos Pos
}

// InitList is a brace initializer { a, b, ... }.
type InitList struct {
	Items []Expr
	Pos   Pos
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StrLit) exprNode()     {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*CastExpr) exprNode()   {}
func (*SizeofExpr) exprNode() {}
func (*InitList) exprNode()   {}

// Stmt is a C statement node.
type Stmt interface{ stmtNode() }

// ExprStmt is an expression statement; X may be nil for ";".
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// DeclStmt declares local variables.
type DeclStmt struct {
	Decls []*VarDecl
	Pos   Pos
}

// Block is a compound statement.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// If is if/else.
type If struct {
	Cond       Expr
	Then, Else Stmt
	Pos        Pos
}

// While covers while and do/while.
type While struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
	Pos     Pos
}

// For is a for loop; Init, Cond, Post may be nil.
type For struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// Return returns from the function; X may be nil.
type Return struct {
	X   Expr
	Pos Pos
}

// Break and Continue exit or restart the innermost loop/switch.
type Break struct{ Pos Pos }
type Continue struct{ Pos Pos }

// Switch is a switch statement; Body contains Case labels inline.
type Switch struct {
	X    Expr
	Body *Block
	Pos  Pos
}

// Case is a case/default label appearing inside a switch body.
type Case struct {
	V         Expr // nil for default
	IsDefault bool
	Pos       Pos
}

// Label is a goto target.
type Label struct {
	Name string
	Pos  Pos
}

// Goto jumps to a label in the same function.
type Goto struct {
	Name string
	Pos  Pos
}

func (*ExprStmt) stmtNode() {}
func (*DeclStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Switch) stmtNode()   {}
func (*Case) stmtNode()     {}
func (*Label) stmtNode()    {}
func (*Goto) stmtNode()     {}

// VarDecl is a variable declaration (local or global).
type VarDecl struct {
	Name   string
	Ty     *CType
	Init   Expr // may be *InitList
	Static bool
	Extern bool
	Const  bool
	Pos    Pos
}

// FuncDecl is a function declaration or definition.
type FuncDecl struct {
	Name   string
	Sig    *CFuncInfo
	Body   *Block // nil for prototypes
	Static bool
	Pos    Pos
}

// Program is a parsed translation unit; Decls holds *VarDecl and *FuncDecl
// in source order.
type Program struct {
	Decls []any
}
