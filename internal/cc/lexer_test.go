package cc

import (
	"testing"
	"testing/quick"
)

func lexKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex("test.c", src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	var out []Token
	for _, tok := range toks {
		if tok.Kind != TokNewline && tok.Kind != TokEOF {
			out = append(out, tok)
		}
	}
	return out
}

func TestLexIdentifiersAndKeywords(t *testing.T) {
	toks := lexKinds(t, "int foo _bar2 return while x9")
	wantKinds := []TokKind{TokKeyword, TokIdent, TokIdent, TokKeyword, TokKeyword, TokIdent}
	wantText := []string{"int", "foo", "_bar2", "return", "while", "x9"}
	if len(toks) != len(wantKinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(wantKinds))
	}
	for i := range toks {
		if toks[i].Kind != wantKinds[i] || toks[i].Text != wantText[i] {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, wantKinds[i], wantText[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src      string
		intVal   int64
		fltVal   float64
		isFloat  bool
		unsigned bool
		long     bool
	}{
		{"42", 42, 0, false, false, false},
		{"0", 0, 0, false, false, false},
		{"0x1f", 31, 0, false, false, false},
		{"0XFF", 255, 0, false, false, false},
		{"017", 15, 0, false, false, false},
		{"42u", 42, 0, false, true, false},
		{"42L", 42, 0, false, false, true},
		{"42ul", 42, 0, false, true, true},
		{"3.5", 0, 3.5, true, false, false},
		{"1e3", 0, 1000, true, false, false},
		{"2.5e-2", 0, 0.025, true, false, false},
		{".5", 0, 0.5, true, false, false},
	}
	for _, c := range cases {
		toks := lexKinds(t, c.src)
		if len(toks) != 1 {
			t.Errorf("%q: got %d tokens", c.src, len(toks))
			continue
		}
		tok := toks[0]
		if c.isFloat {
			if tok.Kind != TokFloatLit || tok.Flt != c.fltVal {
				t.Errorf("%q: got (%v, %g)", c.src, tok.Kind, tok.Flt)
			}
		} else {
			if tok.Kind != TokIntLit || tok.Int != c.intVal || tok.Unsigned != c.unsigned || tok.Long != c.long {
				t.Errorf("%q: got (%v, %d, u=%v l=%v)", c.src, tok.Kind, tok.Int, tok.Unsigned, tok.Long)
			}
		}
	}
}

func TestLexStringsAndChars(t *testing.T) {
	toks := lexKinds(t, `"hi\n" "a\tb" '\0' 'x' '\x41' '\n'`)
	if toks[0].Str != "hi\n" || toks[1].Str != "a\tb" {
		t.Errorf("string escapes wrong: %q %q", toks[0].Str, toks[1].Str)
	}
	wantChars := []int64{0, 'x', 0x41, '\n'}
	for i, w := range wantChars {
		if toks[2+i].Kind != TokCharLit || toks[2+i].Int != w {
			t.Errorf("char %d = %d, want %d", i, toks[2+i].Int, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "a /* block\ncomment */ b // line\nc")
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestLexPunctuatorsLongestMatch(t *testing.T) {
	toks := lexKinds(t, "<<= >>= ... << >> <= >= == != && || ++ -- -> += <")
	want := []string{"<<=", ">>=", "...", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "->", "+=", "<"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("punct %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexAdjacency(t *testing.T) {
	toks := lexKinds(t, "f(x) g (y)")
	// f '(' adjacent; g '(' not adjacent.
	if !toks[1].Adj {
		t.Error("f( should be adjacent")
	}
	if toks[5].Adj {
		t.Error("g ( should not be adjacent")
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("f.c", "a\nb\n\nc")
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			lines = append(lines, tok.Line)
		}
	}
	want := []int{1, 2, 4}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("ident %d at line %d, want %d", i, lines[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{"\"unterminated", "'a", "/* unterminated", "`"}
	for _, src := range bad {
		if _, err := Lex("f.c", src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexLineContinuation(t *testing.T) {
	toks := lexKinds(t, "ab\\\ncd")
	// A continuation splices lines but not tokens (we lex simple idents
	// separately, which is fine for the macro bodies that use it).
	if len(toks) == 0 {
		t.Fatal("no tokens")
	}
}

// TestLexNeverPanics throws random byte strings at the lexer.
func TestLexNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Errors are fine; panics are not (quick.Check turns a panic into
		// a test failure automatically).
		_, _ = Lex("fuzz.c", string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLexIntRoundTrip checks decimal literals lex to their value.
func TestLexIntRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		toks, err := Lex("t.c", fmtInt(int64(v)))
		if err != nil || len(toks) < 1 {
			return false
		}
		return toks[0].Kind == TokIntLit && toks[0].Int == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
