package cc

import (
	"fmt"
	"strings"
)

// macro is a preprocessor macro definition.
type macro struct {
	name     string
	funcLike bool
	params   []string
	body     []Token
}

// preprocessor expands a token stream: directives, macro expansion, and
// conditional compilation. It is deliberately small — the bundled libc
// headers and the corpus only need object/function macros, #include,
// #if/#ifdef/#ifndef/#else/#endif, #undef, and defined().
type preprocessor struct {
	files   map[string]string // include name -> contents
	macros  map[string]*macro
	out     []Token
	depth   int
	maxWork int // expansion budget; guards against runaway recursion
}

// Preprocess lexes and preprocesses the given file. files maps include names
// (as written between quotes or angle brackets) to their contents; the main
// file must be present under its own name.
func Preprocess(mainFile string, files map[string]string, predefined map[string]string) ([]Token, error) {
	p := &preprocessor{
		files:   files,
		macros:  map[string]*macro{},
		maxWork: 2_000_000,
	}
	for name, val := range predefined {
		toks, err := Lex("<predefined>", val)
		if err != nil {
			return nil, err
		}
		// strip trailing EOF/newlines
		body := []Token{}
		for _, t := range toks {
			if t.Kind != TokEOF && t.Kind != TokNewline {
				body = append(body, t)
			}
		}
		p.macros[name] = &macro{name: name, body: body}
	}
	if err := p.processFile(mainFile); err != nil {
		return nil, err
	}
	p.out = append(p.out, Token{Kind: TokEOF, File: mainFile})
	// Drop newline tokens: the parser is not line-oriented.
	dst := p.out[:0]
	for _, t := range p.out {
		if t.Kind != TokNewline {
			dst = append(dst, t)
		}
	}
	return dst, nil
}

func (p *preprocessor) processFile(name string) error {
	src, ok := p.files[name]
	if !ok {
		return fmt.Errorf("cc: include file %q not found", name)
	}
	p.depth++
	if p.depth > 40 {
		return fmt.Errorf("cc: include depth exceeded at %q", name)
	}
	defer func() { p.depth-- }()
	toks, err := Lex(name, src)
	if err != nil {
		return err
	}
	return p.processTokens(toks)
}

// condState tracks one #if level.
type condState struct {
	active    bool // this branch is being emitted
	taken     bool // some branch at this level has been emitted
	parentOff bool
}

func (p *preprocessor) processTokens(toks []Token) error {
	var conds []condState
	i := 0
	atLineStart := true
	emitting := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}
	for i < len(toks) {
		t := toks[i]
		if t.Kind == TokEOF {
			break
		}
		if t.Kind == TokNewline {
			p.out = append(p.out, t)
			atLineStart = true
			i++
			continue
		}
		if atLineStart && t.Kind == TokPunct && t.Text == "#" {
			// collect directive line
			j := i + 1
			for j < len(toks) && toks[j].Kind != TokNewline && toks[j].Kind != TokEOF {
				j++
			}
			line := toks[i+1 : j]
			if err := p.directive(line, &conds, emitting()); err != nil {
				return fmt.Errorf("%s:%d: %w", t.File, t.Line, err)
			}
			i = j
			continue
		}
		atLineStart = false
		if !emitting() {
			i++
			continue
		}
		end := p.invocationEnd(toks, i)
		exp, err := p.fullExpand(toks[i:end])
		if err != nil {
			return fmt.Errorf("%s:%d: %w", t.File, t.Line, err)
		}
		p.out = append(p.out, exp...)
		i = end
	}
	if len(conds) != 0 {
		return fmt.Errorf("cc: unterminated #if")
	}
	return nil
}

// invocationEnd returns the index just past the macro invocation starting at
// toks[i]: the identifier alone for object-like macros, or identifier plus a
// balanced argument list for function-like macros.
func (p *preprocessor) invocationEnd(toks []Token, i int) int {
	t := toks[i]
	if t.Kind != TokIdent {
		return i + 1
	}
	m, ok := p.macros[t.Text]
	if !ok || !m.funcLike {
		return i + 1
	}
	j := i + 1
	for j < len(toks) && toks[j].Kind == TokNewline {
		j++
	}
	if j >= len(toks) || !(toks[j].Kind == TokPunct && toks[j].Text == "(") {
		return i + 1
	}
	_, next, err := collectMacroArgs(toks, j)
	if err != nil {
		return i + 1
	}
	return next
}

// fullExpand rescans a token run to fixpoint, expanding macros. The run must
// contain complete invocations (guaranteed by invocationEnd).
func (p *preprocessor) fullExpand(inv []Token) ([]Token, error) {
	queue := append([]Token(nil), inv...)
	var out []Token
	idx := 0
	for idx < len(queue) {
		p.maxWork--
		if p.maxWork < 0 {
			return nil, fmt.Errorf("cc: macro expansion budget exceeded (recursive macro?)")
		}
		t := queue[idx]
		if t.Kind != TokIdent {
			out = append(out, t)
			idx++
			continue
		}
		m, ok := p.macros[t.Text]
		if !ok || t.noExpand[t.Text] {
			out = append(out, t)
			idx++
			continue
		}
		if !m.funcLike {
			sub := p.substitute(m, nil, t)
			queue = splice(queue, idx, idx+1, sub)
			continue
		}
		j := idx + 1
		for j < len(queue) && queue[j].Kind == TokNewline {
			j++
		}
		if j >= len(queue) || !(queue[j].Kind == TokPunct && queue[j].Text == "(") {
			out = append(out, t)
			idx++
			continue
		}
		args, next, err := collectMacroArgs(queue, j)
		if err != nil {
			return nil, fmt.Errorf("macro %s: %w", t.Text, err)
		}
		if len(args) == 1 && len(args[0]) == 0 && len(m.params) == 0 {
			args = nil
		}
		if len(args) != len(m.params) {
			return nil, fmt.Errorf("macro %s expects %d args, got %d", t.Text, len(m.params), len(args))
		}
		sub := p.substitute(m, args, t)
		queue = splice(queue, idx, next, sub)
	}
	return out, nil
}

func splice(toks []Token, from, to int, repl []Token) []Token {
	out := make([]Token, 0, len(toks)-(to-from)+len(repl))
	out = append(out, toks[:from]...)
	out = append(out, repl...)
	out = append(out, toks[to:]...)
	return out
}

// substitute replaces parameters in the macro body and marks the result
// against re-expansion of the same macro.
func (p *preprocessor) substitute(m *macro, args [][]Token, site Token) []Token {
	paramIdx := map[string]int{}
	for k, name := range m.params {
		paramIdx[name] = k
	}
	var out []Token
	for bi := 0; bi < len(m.body); bi++ {
		bt := m.body[bi]
		// ## token pasting for identifiers/numbers
		if bi+2 < len(m.body) && m.body[bi+1].Kind == TokPunct && m.body[bi+1].Text == "##" {
			left := resolveSingle(bt, args, paramIdx)
			right := resolveSingle(m.body[bi+2], args, paramIdx)
			pasted := left.Text + right.Text
			nt := Token{Kind: TokIdent, Text: pasted, File: site.File, Line: site.Line}
			if keywords[pasted] {
				nt.Kind = TokKeyword
			}
			out = append(out, nt)
			bi += 2
			continue
		}
		if bt.Kind == TokIdent {
			if k, ok := paramIdx[bt.Text]; ok {
				for _, at := range args[k] {
					at.File, at.Line = site.File, site.Line
					out = append(out, at)
				}
				continue
			}
		}
		bt.File, bt.Line = site.File, site.Line
		out = append(out, bt)
	}
	for k := range out {
		ne := map[string]bool{m.name: true}
		for key := range out[k].noExpand {
			ne[key] = true
		}
		for key := range site.noExpand {
			ne[key] = true
		}
		out[k].noExpand = ne
	}
	return out
}

func resolveSingle(t Token, args [][]Token, paramIdx map[string]int) Token {
	if t.Kind == TokIdent {
		if k, ok := paramIdx[t.Text]; ok && len(args[k]) == 1 {
			return args[k][0]
		}
	}
	return t
}

// collectMacroArgs reads "( a, b, ... )" starting at the open paren and
// returns the comma-separated argument token lists.
func collectMacroArgs(toks []Token, open int) (args [][]Token, next int, err error) {
	depth := 0
	cur := []Token{}
	i := open
	for ; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == TokNewline {
			continue
		}
		if t.Kind == TokEOF {
			return nil, 0, fmt.Errorf("unterminated macro invocation")
		}
		if t.Kind == TokPunct {
			switch t.Text {
			case "(":
				depth++
				if depth == 1 {
					continue
				}
			case ")":
				depth--
				if depth == 0 {
					args = append(args, cur)
					return args, i + 1, nil
				}
			case ",":
				if depth == 1 {
					args = append(args, cur)
					cur = []Token{}
					continue
				}
			}
		}
		cur = append(cur, t)
	}
	return nil, 0, fmt.Errorf("unterminated macro invocation")
}

func (p *preprocessor) directive(line []Token, conds *[]condState, emitting bool) error {
	if len(line) == 0 {
		return nil // null directive
	}
	name := line[0].Text
	if line[0].Kind == TokKeyword && name == "if" {
		name = "if"
	}
	switch name {
	case "ifdef", "ifndef":
		if len(line) < 2 {
			return fmt.Errorf("#%s requires a name", name)
		}
		_, defined := p.macros[line[1].Text]
		active := defined == (name == "ifdef")
		*conds = append(*conds, condState{active: active && emitting, taken: active, parentOff: !emitting})
	case "if":
		v := int64(0)
		if emitting {
			var err error
			v, err = p.evalCond(line[1:])
			if err != nil {
				return err
			}
		}
		*conds = append(*conds, condState{active: v != 0 && emitting, taken: v != 0, parentOff: !emitting})
	case "elif":
		if len(*conds) == 0 {
			return fmt.Errorf("#elif without #if")
		}
		c := &(*conds)[len(*conds)-1]
		if c.parentOff || c.taken {
			c.active = false
			return nil
		}
		v, err := p.evalCond(line[1:])
		if err != nil {
			return err
		}
		c.active = v != 0
		c.taken = v != 0
	case "else":
		if len(*conds) == 0 {
			return fmt.Errorf("#else without #if")
		}
		c := &(*conds)[len(*conds)-1]
		c.active = !c.parentOff && !c.taken
		c.taken = true
	case "endif":
		if len(*conds) == 0 {
			return fmt.Errorf("#endif without #if")
		}
		*conds = (*conds)[:len(*conds)-1]
	case "define":
		if !emitting {
			return nil
		}
		return p.define(line[1:])
	case "undef":
		if !emitting {
			return nil
		}
		if len(line) < 2 {
			return fmt.Errorf("#undef requires a name")
		}
		delete(p.macros, line[1].Text)
	case "include":
		if !emitting {
			return nil
		}
		return p.include(line[1:])
	case "pragma", "error", "warning":
		if name == "error" && emitting {
			return fmt.Errorf("#error %s", tokensText(line[1:]))
		}
	default:
		return fmt.Errorf("unknown directive #%s", name)
	}
	return nil
}

func (p *preprocessor) define(line []Token) error {
	if len(line) == 0 || line[0].Kind != TokIdent && line[0].Kind != TokKeyword {
		return fmt.Errorf("#define requires a name")
	}
	m := &macro{name: line[0].Text}
	rest := line[1:]
	// Function-like only when '(' immediately follows the name; the lexer
	// dropped whitespace, so approximate with: next token is '(' and the
	// body otherwise starts with it. This matches all bundled headers.
	if len(rest) > 0 && rest[0].Kind == TokPunct && rest[0].Text == "(" && rest[0].Adj {
		m.funcLike = true
		i := 1
		for i < len(rest) && !(rest[i].Kind == TokPunct && rest[i].Text == ")") {
			if rest[i].Kind == TokPunct && rest[i].Text == "," {
				i++
				continue
			}
			if rest[i].Kind != TokIdent {
				return fmt.Errorf("bad macro parameter %q", rest[i].Text)
			}
			m.params = append(m.params, rest[i].Text)
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated macro parameter list")
		}
		m.body = append([]Token(nil), rest[i+1:]...)
	} else {
		m.body = append([]Token(nil), rest...)
	}
	p.macros[m.name] = m
	return nil
}

func (p *preprocessor) include(line []Token) error {
	if len(line) == 0 {
		return fmt.Errorf("#include requires a file")
	}
	if line[0].Kind == TokStrLit {
		return p.processFile(line[0].Str)
	}
	// <name.h>: tokens are < name . h >
	var sb strings.Builder
	if !(line[0].Kind == TokPunct && line[0].Text == "<") {
		return fmt.Errorf("bad #include syntax")
	}
	for _, t := range line[1:] {
		if t.Kind == TokPunct && t.Text == ">" {
			return p.processFile(sb.String())
		}
		sb.WriteString(t.Text)
	}
	return fmt.Errorf("unterminated #include <...>")
}

// evalCond evaluates a preprocessor conditional expression. Supported:
// integers, defined(X)/defined X, !, &&, ||, comparison and arithmetic
// operators, parentheses, and macro expansion of remaining identifiers.
func (p *preprocessor) evalCond(toks []Token) (int64, error) {
	// First resolve defined(...) before macro expansion.
	var resolved []Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == TokIdent && t.Text == "defined" {
			j := i + 1
			name := ""
			if j < len(toks) && toks[j].Kind == TokPunct && toks[j].Text == "(" {
				if j+2 < len(toks) && toks[j+2].Kind == TokPunct && toks[j+2].Text == ")" {
					name = toks[j+1].Text
					i = j + 2
				} else {
					return 0, fmt.Errorf("bad defined()")
				}
			} else if j < len(toks) {
				name = toks[j].Text
				i = j
			}
			v := int64(0)
			if _, ok := p.macros[name]; ok {
				v = 1
			}
			resolved = append(resolved, Token{Kind: TokIntLit, Int: v})
			continue
		}
		resolved = append(resolved, t)
	}
	// Macro-expand the rest.
	sub := &preprocessor{files: p.files, macros: p.macros, maxWork: 10000}
	expanded, err := sub.fullExpand(resolved)
	if err != nil {
		return 0, err
	}
	// Remaining identifiers evaluate to 0 (C preprocessor rule).
	for i := range expanded {
		if expanded[i].Kind == TokIdent || expanded[i].Kind == TokKeyword {
			expanded[i] = Token{Kind: TokIntLit, Int: 0}
		}
	}
	e := &condEval{toks: expanded}
	v, err := e.orExpr()
	if err != nil {
		return 0, err
	}
	return v, nil
}

type condEval struct {
	toks []Token
	pos  int
}

func (e *condEval) peek() Token {
	if e.pos < len(e.toks) {
		return e.toks[e.pos]
	}
	return Token{Kind: TokEOF}
}

func (e *condEval) isPunct(s string) bool {
	t := e.peek()
	return t.Kind == TokPunct && t.Text == s
}

func (e *condEval) orExpr() (int64, error) {
	v, err := e.andExpr()
	if err != nil {
		return 0, err
	}
	for e.isPunct("||") {
		e.pos++
		w, err := e.andExpr()
		if err != nil {
			return 0, err
		}
		if v != 0 || w != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v, nil
}

func (e *condEval) andExpr() (int64, error) {
	v, err := e.cmpExpr()
	if err != nil {
		return 0, err
	}
	for e.isPunct("&&") {
		e.pos++
		w, err := e.cmpExpr()
		if err != nil {
			return 0, err
		}
		if v != 0 && w != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v, nil
}

func (e *condEval) cmpExpr() (int64, error) {
	v, err := e.addExpr()
	if err != nil {
		return 0, err
	}
	for {
		ops := []struct {
			s string
			f func(a, b int64) bool
		}{
			{"==", func(a, b int64) bool { return a == b }},
			{"!=", func(a, b int64) bool { return a != b }},
			{"<=", func(a, b int64) bool { return a <= b }},
			{">=", func(a, b int64) bool { return a >= b }},
			{"<", func(a, b int64) bool { return a < b }},
			{">", func(a, b int64) bool { return a > b }},
		}
		matched := false
		for _, op := range ops {
			if e.isPunct(op.s) {
				e.pos++
				w, err := e.addExpr()
				if err != nil {
					return 0, err
				}
				if op.f(v, w) {
					v = 1
				} else {
					v = 0
				}
				matched = true
				break
			}
		}
		if !matched {
			return v, nil
		}
	}
}

func (e *condEval) addExpr() (int64, error) {
	v, err := e.unary()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case e.isPunct("+"):
			e.pos++
			w, err := e.unary()
			if err != nil {
				return 0, err
			}
			v += w
		case e.isPunct("-"):
			e.pos++
			w, err := e.unary()
			if err != nil {
				return 0, err
			}
			v -= w
		case e.isPunct("*"):
			e.pos++
			w, err := e.unary()
			if err != nil {
				return 0, err
			}
			v *= w
		default:
			return v, nil
		}
	}
}

func (e *condEval) unary() (int64, error) {
	switch {
	case e.isPunct("!"):
		e.pos++
		v, err := e.unary()
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case e.isPunct("-"):
		e.pos++
		v, err := e.unary()
		return -v, err
	case e.isPunct("("):
		e.pos++
		v, err := e.orExpr()
		if err != nil {
			return 0, err
		}
		if !e.isPunct(")") {
			return 0, fmt.Errorf("missing ) in #if")
		}
		e.pos++
		return v, nil
	}
	t := e.peek()
	if t.Kind == TokIntLit || t.Kind == TokCharLit {
		e.pos++
		return t.Int, nil
	}
	return 0, fmt.Errorf("bad #if expression near %q", t.Text)
}

func tokensText(toks []Token) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch t.Kind {
		case TokStrLit:
			sb.WriteString(t.Str)
		case TokIntLit:
			fmt.Fprintf(&sb, "%d", t.Int)
		default:
			sb.WriteString(t.Text)
		}
	}
	return sb.String()
}
