package cc

import (
	"strings"
	"testing"
)

// parse compiles a snippet through preprocessor + parser.
func parse(t *testing.T, src string) *Program {
	t.Helper()
	toks, err := Preprocess("t.c", map[string]string{"t.c": src}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ParseProgram(toks)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	toks, err := Preprocess("t.c", map[string]string{"t.c": src}, nil)
	if err != nil {
		return err
	}
	_, err = ParseProgram(toks)
	return err
}

func TestParseFunctionDef(t *testing.T) {
	prog := parse(t, "int add(int a, int b) { return a + b; }")
	if len(prog.Decls) != 1 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	fd, ok := prog.Decls[0].(*FuncDecl)
	if !ok {
		t.Fatalf("not a FuncDecl: %T", prog.Decls[0])
	}
	if fd.Name != "add" || len(fd.Sig.Params) != 2 || fd.Body == nil {
		t.Errorf("bad decl: %+v", fd)
	}
	if fd.Sig.Ret != tyInt {
		t.Errorf("ret type = %v", fd.Sig.Ret)
	}
}

func TestParseDeclaratorShapes(t *testing.T) {
	cases := []struct {
		src  string
		desc string
	}{
		{"int x;", "int"},
		{"int *p;", "int*"},
		{"int **pp;", "int**"},
		{"int a[10];", "int[10]"},
		{"int m[2][3];", "int[3][2]"}, // outer dimension first in C syntax
		{"char *names[4];", "char*[4]"},
		{"unsigned long big;", "unsigned long"},
		{"const char *s;", "char*"},
		{"double (*fp)(double);", "function*"},
	}
	for _, c := range cases {
		prog := parse(t, c.src)
		vd, ok := prog.Decls[0].(*VarDecl)
		if !ok {
			t.Errorf("%s: not a VarDecl", c.src)
			continue
		}
		got := vd.Ty.String()
		if got != c.desc {
			t.Errorf("%s: type = %q, want %q", c.src, got, c.desc)
		}
	}
}

func TestParseFunctionPointerDeclarator(t *testing.T) {
	prog := parse(t, "int (*handler)(int, char *);")
	vd := prog.Decls[0].(*VarDecl)
	if vd.Name != "handler" {
		t.Fatalf("name = %q", vd.Name)
	}
	if vd.Ty.Kind != CPtr || vd.Ty.Elem.Kind != CFunc {
		t.Fatalf("type = %v", vd.Ty)
	}
	fn := vd.Ty.Elem.Fn
	if len(fn.Params) != 2 || fn.Ret != tyInt {
		t.Errorf("signature wrong: %+v", fn)
	}
}

func TestParseStructAndTypedef(t *testing.T) {
	prog := parse(t, `
struct point { int x; int y; };
typedef struct point pt;
pt origin;
`)
	found := false
	for _, d := range prog.Decls {
		if vd, ok := d.(*VarDecl); ok && vd.Name == "origin" {
			found = true
			if vd.Ty.Kind != CStruct || vd.Ty.Struct.Name != "point" {
				t.Errorf("origin type = %v", vd.Ty)
			}
		}
	}
	if !found {
		t.Error("origin not declared")
	}
}

func TestParseSelfReferentialStruct(t *testing.T) {
	prog := parse(t, "struct node { int v; struct node *next; }; struct node n;")
	for _, d := range prog.Decls {
		if vd, ok := d.(*VarDecl); ok {
			next := vd.Ty.Struct.Fields[1]
			if next.Ty.Kind != CPtr || next.Ty.Elem.Struct != vd.Ty.Struct {
				t.Error("next should point to the same struct info")
			}
		}
	}
}

func TestParseEnumConstantsFold(t *testing.T) {
	prog := parse(t, "enum e { A, B = 10, C }; int arr[C];")
	vd := prog.Decls[len(prog.Decls)-1].(*VarDecl)
	if vd.Ty.Len != 11 {
		t.Errorf("array length = %d, want 11 (C == 11)", vd.Ty.Len)
	}
}

func TestParseArraySizeConstExpr(t *testing.T) {
	prog := parse(t, "int a[4 * 2 + 1];")
	vd := prog.Decls[0].(*VarDecl)
	if vd.Ty.Len != 9 {
		t.Errorf("len = %d", vd.Ty.Len)
	}
}

func TestParseInferArrayLenFromInit(t *testing.T) {
	prog := parse(t, `char s[] = "abc"; int v[] = {1, 2, 3, 4};`)
	s := prog.Decls[0].(*VarDecl)
	v := prog.Decls[1].(*VarDecl)
	if s.Ty.Len != 4 {
		t.Errorf("s len = %d, want 4 (includes NUL)", s.Ty.Len)
	}
	if v.Ty.Len != 4 {
		t.Errorf("v len = %d", v.Ty.Len)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := parse(t, "int x = 2 + 3 * 4;")
	vd := prog.Decls[0].(*VarDecl)
	bin, ok := vd.Init.(*Binary)
	if !ok || bin.Op != "+" {
		t.Fatalf("top op should be +, got %T", vd.Init)
	}
	rhs, ok := bin.Y.(*Binary)
	if !ok || rhs.Op != "*" {
		t.Fatalf("rhs should be *")
	}
}

func TestParseErrorsHaveLocations(t *testing.T) {
	cases := []string{
		"int f( { }",
		"int x = ;",
		"void g() { if }",
		"struct { int; } v;",
		"int main() { return 1 }", // missing semicolon before }
	}
	for _, src := range cases {
		err := parseErr(t, src)
		if err == nil {
			t.Errorf("%q parsed without error", src)
			continue
		}
		if !strings.Contains(err.Error(), "t.c:") {
			t.Errorf("%q: error lacks location: %v", src, err)
		}
	}
}

func TestParseVariadicSignature(t *testing.T) {
	prog := parse(t, "int printf(const char *fmt, ...);")
	fd := prog.Decls[0].(*FuncDecl)
	if !fd.Sig.Variadic || len(fd.Sig.Params) != 1 {
		t.Errorf("variadic parse wrong: %+v", fd.Sig)
	}
}

func TestEvalConstExpressions(t *testing.T) {
	p := &Parser{enums: map[string]int64{}}
	cases := []struct {
		e    Expr
		want int64
	}{
		{&Binary{Op: "+", X: &IntLit{V: 2}, Y: &IntLit{V: 3}}, 5},
		{&Binary{Op: "<<", X: &IntLit{V: 1}, Y: &IntLit{V: 4}}, 16},
		{&Unary{Op: "-", X: &IntLit{V: 7}}, -7},
		{&Unary{Op: "~", X: &IntLit{V: 0}}, -1},
		{&Cond{C: &IntLit{V: 1}, T: &IntLit{V: 10}, F: &IntLit{V: 20}}, 10},
		{&Binary{Op: "&&", X: &IntLit{V: 2}, Y: &IntLit{V: 0}}, 0},
	}
	for i, c := range cases {
		got, err := p.evalConst(c.e)
		if err != nil || got != c.want {
			t.Errorf("case %d: got (%d, %v), want %d", i, got, err, c.want)
		}
	}
	if _, err := p.evalConst(&Binary{Op: "/", X: &IntLit{V: 1}, Y: &IntLit{V: 0}}); err == nil {
		t.Error("const division by zero should error")
	}
}

func TestTruncToBits(t *testing.T) {
	cases := []struct {
		v        int64
		bits     int
		unsigned bool
		want     int64
	}{
		{0x1ff, 8, false, -1},
		{0x1ff, 8, true, 0xff},
		{-1, 16, true, 0xffff},
		{0x80, 8, false, -128},
		{123, 64, false, 123},
	}
	for _, c := range cases {
		if got := truncToBits(c.v, c.bits, c.unsigned); got != c.want {
			t.Errorf("truncToBits(%#x,%d,%v) = %d, want %d", c.v, c.bits, c.unsigned, got, c.want)
		}
	}
}

func TestCTypeProperties(t *testing.T) {
	if tyInt.Size() != 4 || tyLong.Size() != 8 || tyChar.Size() != 1 {
		t.Error("basic sizes wrong")
	}
	arr := arrayOf(tyInt, 10)
	if arr.Size() != 40 || arr.Decay().Kind != CPtr {
		t.Error("array size/decay wrong")
	}
	if !Compatible(tyInt, tyDouble) || !Compatible(tyCharPtr, tyVoidPtr) {
		t.Error("compatibility too strict")
	}
	if usualArith(tyInt, tyDouble) != tyDouble {
		t.Error("usual arithmetic conversion to double failed")
	}
	if got := usualArith(tyUInt, tyInt); got != tyUInt {
		t.Errorf("int+uint should be uint, got %v", got)
	}
	if got := usualArith(tyUInt, tyLong); got != tyLong {
		t.Errorf("uint+long should be long, got %v", got)
	}
	if got := usualArith(tyChar, tyChar); got != tyInt {
		t.Errorf("char+char should promote to int, got %v", got)
	}
}
