package cc

import (
	"strings"
	"testing"
)

// pp runs the preprocessor and renders the output tokens as a string.
func pp(t *testing.T, main string, files map[string]string) string {
	t.Helper()
	if files == nil {
		files = map[string]string{}
	}
	files["main.c"] = main
	toks, err := Preprocess("main.c", files, nil)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var parts []string
	for _, tok := range toks {
		switch tok.Kind {
		case TokEOF:
		case TokStrLit:
			parts = append(parts, `"`+tok.Str+`"`)
		case TokIntLit:
			parts = append(parts, fmtInt(tok.Int))
		default:
			parts = append(parts, tok.Text)
		}
	}
	return strings.Join(parts, " ")
}

func TestObjectMacro(t *testing.T) {
	got := pp(t, "#define N 10\nint a[N];", nil)
	if got != "int a [ 10 ] ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacro(t *testing.T) {
	got := pp(t, "#define SQ(x) ((x)*(x))\nSQ(a+1)", nil)
	if got != "( ( a + 1 ) * ( a + 1 ) )" {
		t.Errorf("got %q", got)
	}
}

func TestNestedMacros(t *testing.T) {
	got := pp(t, "#define A B\n#define B C\n#define C 42\nA", nil)
	if got != "42" {
		t.Errorf("got %q", got)
	}
}

func TestRecursiveMacroStops(t *testing.T) {
	got := pp(t, "#define X X\nX", nil)
	if got != "X" {
		t.Errorf("self-referential macro should not loop: %q", got)
	}
}

func TestObjectLikeWithParenValue(t *testing.T) {
	// `#define P (1+2)` is object-like: a space precedes the paren.
	got := pp(t, "#define P (1+2)\nP", nil)
	if got != "( 1 + 2 )" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacroNotInvokedWithoutParens(t *testing.T) {
	got := pp(t, "#define F(x) x\nint F;", nil)
	if got != "int F ;" {
		t.Errorf("got %q", got)
	}
}

func TestUndef(t *testing.T) {
	got := pp(t, "#define A 1\n#undef A\nA", nil)
	if got != "A" {
		t.Errorf("got %q", got)
	}
}

func TestConditionals(t *testing.T) {
	src := `#define FLAG 1
#if FLAG
yes1
#else
no1
#endif
#if !FLAG
no2
#endif
#ifdef FLAG
yes2
#endif
#ifndef FLAG
no3
#else
yes3
#endif
#if defined(FLAG) && FLAG > 0
yes4
#endif
#if FLAG == 2
no4
#elif FLAG == 1
yes5
#else
no5
#endif`
	got := pp(t, src, nil)
	if got != "yes1 yes2 yes3 yes4 yes5" {
		t.Errorf("got %q", got)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#if 1
#if 0
dead
#else
live
#endif
#endif
#if 0
#if 1
alsodead
#endif
#endif`
	got := pp(t, src, nil)
	if got != "live" {
		t.Errorf("got %q", got)
	}
}

func TestInclude(t *testing.T) {
	got := pp(t, `#include "defs.h"`+"\nVALUE", map[string]string{
		"defs.h": "#define VALUE 7\n",
	})
	if got != "7" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeAngle(t *testing.T) {
	got := pp(t, "#include <sys.h>\nX", map[string]string{
		"sys.h": "#define X ok\n",
	})
	if got != "ok" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeGuards(t *testing.T) {
	h := "#ifndef H\n#define H\nint once;\n#endif\n"
	got := pp(t, `#include "h.h"`+"\n"+`#include "h.h"`, map[string]string{"h.h": h})
	if got != "int once ;" {
		t.Errorf("guard failed: %q", got)
	}
}

func TestMissingIncludeFails(t *testing.T) {
	files := map[string]string{"main.c": `#include "ghost.h"`}
	if _, err := Preprocess("main.c", files, nil); err == nil {
		t.Error("expected error for missing include")
	}
}

func TestErrorDirective(t *testing.T) {
	files := map[string]string{"main.c": "#if 1\n#error boom\n#endif"}
	if _, err := Preprocess("main.c", files, nil); err == nil {
		t.Error("#error should fail the compilation")
	}
	files = map[string]string{"main.c": "#if 0\n#error never\n#endif\nok"}
	if _, err := Preprocess("main.c", files, nil); err != nil {
		t.Errorf("#error in dead branch should be ignored: %v", err)
	}
}

func TestTokenPaste(t *testing.T) {
	got := pp(t, "#define GLUE(a, b) a##b\nGLUE(var, 7)", nil)
	if got != "var7" {
		t.Errorf("got %q", got)
	}
}

func TestMultiStatementMacro(t *testing.T) {
	src := `#define SWAP(a, b) do { int t = a; a = b; b = t; } while (0)
SWAP(x, y);`
	got := pp(t, src, nil)
	if !strings.Contains(got, "int t = x") || !strings.Contains(got, "while ( 0 )") {
		t.Errorf("got %q", got)
	}
}

func TestPredefinedMacros(t *testing.T) {
	files := map[string]string{"main.c": "#ifdef __SULONG__\nsulong\n#endif\nNULL"}
	toks, err := Preprocess("main.c", files, map[string]string{
		"__SULONG__": "1",
		"NULL":       "((void*)0)",
	})
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, tok := range toks {
		if tok.Kind != TokEOF {
			parts = append(parts, tok.Text)
		}
	}
	joined := strings.Join(parts, " ")
	if !strings.Contains(joined, "sulong") || !strings.Contains(joined, "void") {
		t.Errorf("got %q", joined)
	}
}

func TestUnterminatedIfFails(t *testing.T) {
	files := map[string]string{"main.c": "#if 1\nx"}
	if _, err := Preprocess("main.c", files, nil); err == nil {
		t.Error("unterminated #if should fail")
	}
}

func TestDirectiveAfterMacroUse(t *testing.T) {
	// A macro expansion must not swallow subsequent directives.
	src := "#define A 1\nA\n#define B 2\nB"
	got := pp(t, src, nil)
	if got != "1 2" {
		t.Errorf("got %q", got)
	}
}
