package cc

import (
	"fmt"

	"repro/internal/ir"
)

// Options configures compilation.
//
// The front end never optimizes: even the backend constant-global folding
// the paper caught Clang doing at -O0 (Fig. 13) lives in internal/opt, so
// the managed engine always sees the program's original accesses.
type Options struct {
	// Predefined adds extra predefined macros (name -> replacement).
	Predefined map[string]string
}

// Predefined returns the compiler's built-in macro table merged with extra
// definitions. It is the macro environment Compile hands to Preprocess, and
// staged drivers (internal/pipeline) use it to run the preprocessor stage
// in isolation.
func Predefined(extra map[string]string) map[string]string {
	predef := map[string]string{
		"__SULONG__": "1",
		"NULL":       "((void*)0)",
	}
	for k, v := range extra {
		predef[k] = v
	}
	return predef
}

// Lower is the typecheck/codegen stage: it lowers a parsed Program to an
// SIR module and collects its struct types, but does not verify the result
// (ir.Verify is a separate pipeline stage).
func Lower(prog *Program, mainFile string) (*ir.Module, error) {
	cg := newCodegen(mainFile)
	if err := cg.program(prog); err != nil {
		return nil, err
	}
	collectStructs(cg.m)
	return cg.m, nil
}

// Compile preprocesses, parses, and lowers one C file to an SIR module.
// files maps include names to contents and must contain mainFile.
//
// It is the one-shot composition of the staged front end:
// Preprocess → ParseProgram → Lower → ir.Verify.
func Compile(mainFile string, files map[string]string, opts Options) (*ir.Module, error) {
	toks, err := Preprocess(mainFile, files, Predefined(opts.Predefined))
	if err != nil {
		return nil, err
	}
	prog, err := ParseProgram(toks)
	if err != nil {
		return nil, err
	}
	m, err := Lower(prog, mainFile)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("cc: internal error: generated invalid IR: %w", err)
	}
	return m, nil
}

// codegen lowers a Program to an ir.Module.
type codegen struct {
	m       *ir.Module
	globals map[string]*CType // global variables
	funcs   map[string]*CFuncInfo
	strIdx  int
	file    string
	anonIdx int
}

func newCodegen(file string) *codegen {
	return &codegen{
		m:       ir.NewModule(file),
		globals: map[string]*CType{},
		funcs:   map[string]*CFuncInfo{},
		file:    file,
	}
}

func (cg *codegen) errAt(pos Pos, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", pos.File, pos.Line, fmt.Sprintf(format, args...))
}

func (cg *codegen) program(prog *Program) error {
	// Pass 1: declare all functions and globals so forward references work.
	for _, d := range prog.Decls {
		switch decl := d.(type) {
		case *FuncDecl:
			cg.funcs[decl.Name] = decl.Sig
			if cg.m.Func(decl.Name) == nil {
				cg.m.AddFunc(&ir.Func{Name: decl.Name, Sig: sigIR(decl.Sig), IsDecl: true})
			}
		case *VarDecl:
			if decl.Ty.Kind == CFunc {
				cg.funcs[decl.Name] = decl.Ty.Fn
				continue
			}
			if _, exists := cg.globals[decl.Name]; !exists {
				cg.globals[decl.Name] = decl.Ty
			}
		}
	}
	// Pass 2: emit globals (with initializers) and function bodies.
	for _, d := range prog.Decls {
		switch decl := d.(type) {
		case *VarDecl:
			if decl.Ty.Kind == CFunc || decl.Extern && decl.Init == nil {
				continue
			}
			if err := cg.globalVar(decl); err != nil {
				return err
			}
		case *FuncDecl:
			if decl.Body == nil {
				continue
			}
			if err := cg.function(decl); err != nil {
				return err
			}
		}
	}
	return nil
}

func sigIR(sig *CFuncInfo) *ir.FuncType {
	ft := &ir.FuncType{Ret: sig.Ret.IR(), Variadic: sig.Variadic}
	for _, pt := range sig.Params {
		ft.Params = append(ft.Params, pt.Decay().IR())
	}
	return ft
}

func (cg *codegen) globalVar(vd *VarDecl) error {
	if cg.m.Global(vd.Name) != nil {
		return nil // tentative redefinition
	}
	cg.globals[vd.Name] = vd.Ty
	g := &ir.Global{Name: vd.Name, Ty: vd.Ty.IR(), IsConst: vd.Const, CType: vd.Ty.String()}
	if vd.Init != nil {
		c, err := cg.constInit(vd.Init, vd.Ty)
		if err != nil {
			return err
		}
		g.Init = c
	}
	return cg.m.AddGlobal(g)
}

// internString creates (or reuses) an anonymous const global for a string
// literal and returns its name.
func (cg *codegen) internString(s string) string {
	data := append([]byte(s), 0)
	name := fmt.Sprintf(".str.%d", cg.strIdx)
	cg.strIdx++
	g := &ir.Global{
		Name:    name,
		Ty:      &ir.ArrayType{Elem: ir.I8, Len: int64(len(data))},
		Init:    ir.ConstBytes{Data: data},
		IsConst: true,
	}
	if err := cg.m.AddGlobal(g); err != nil {
		panic("cc: string intern collision: " + err.Error())
	}
	return name
}

// constInit folds a global initializer into an ir.Const.
func (cg *codegen) constInit(e Expr, ty *CType) (ir.Const, error) {
	switch v := e.(type) {
	case *InitList:
		switch ty.Kind {
		case CArray:
			var elems []ir.Const
			for _, item := range v.Items {
				c, err := cg.constInit(item, ty.Elem)
				if err != nil {
					return nil, err
				}
				elems = append(elems, c)
			}
			return ir.ConstArrayVal{Ty: ty.IR().(*ir.ArrayType), Elems: elems}, nil
		case CStruct:
			var fields []ir.Const
			for i, item := range v.Items {
				if i >= len(ty.Struct.Fields) {
					return nil, cg.errAt(v.Pos, "too many initializers for %s", ty)
				}
				c, err := cg.constInit(item, ty.Struct.Fields[i].Ty)
				if err != nil {
					return nil, err
				}
				fields = append(fields, c)
			}
			return ir.ConstStructVal{Ty: ty.IR().(*ir.StructType), Fields: fields}, nil
		default:
			if len(v.Items) == 1 {
				return cg.constInit(v.Items[0], ty)
			}
			return nil, cg.errAt(v.Pos, "invalid brace initializer for %s", ty)
		}
	case *StrLit:
		if ty.Kind == CArray {
			data := append([]byte(v.S), 0)
			if ty.Len >= 0 && int64(len(data)) > ty.Len {
				// `char t[2] = "ab"` drops the NUL — standard C, and the
				// source of several corpus bugs.
				data = data[:ty.Len]
			}
			return ir.ConstBytes{Data: data}, nil
		}
		return ir.ConstGlobalRef{Sym: cg.internString(v.S)}, nil
	}
	// Scalar constant expression.
	cv, err := cg.evalConstExpr(e)
	if err != nil {
		return nil, err
	}
	switch {
	case cv.isFloat && ty.Kind == CFloat:
		return ir.ConstFloatVal{Ty: ty.IR(), V: cv.f}, nil
	case cv.isFloat && ty.Kind == CInt:
		return ir.ConstIntVal{Ty: ty.IR(), V: int64(cv.f)}, nil
	case cv.sym != "":
		if cv.isFunc {
			return ir.ConstFuncRef{Sym: cv.sym}, nil
		}
		return ir.ConstGlobalRef{Sym: cv.sym, Off: cv.i}, nil
	case ty.Kind == CFloat:
		return ir.ConstFloatVal{Ty: ty.IR(), V: float64(cv.i)}, nil
	default:
		return ir.ConstIntVal{Ty: ty.IR(), V: truncToBits(cv.i, bitsOf(ty), isUnsigned(ty))}, nil
	}
}

func bitsOf(ty *CType) int {
	if ty.Kind == CInt {
		return ty.Bits
	}
	return 64
}

func isUnsigned(ty *CType) bool { return ty.Kind == CInt && ty.Unsigned || ty.Kind == CPtr }

// constVal is a folded compile-time value.
type constVal struct {
	i       int64
	f       float64
	isFloat bool
	sym     string // address of global (+i as offset) or function
	isFunc  bool
}

// evalConstExpr folds initializer expressions: literals, arithmetic, sizeof,
// casts, &global, string literals, and global array designators.
func (cg *codegen) evalConstExpr(e Expr) (constVal, error) {
	switch v := e.(type) {
	case *IntLit:
		return constVal{i: v.V}, nil
	case *FloatLit:
		return constVal{f: v.V, isFloat: true}, nil
	case *StrLit:
		return constVal{sym: cg.internString(v.S)}, nil
	case *SizeofExpr:
		if v.Ty != nil {
			return constVal{i: v.Ty.Size()}, nil
		}
		return constVal{}, cg.errAt(v.Pos, "sizeof(expr) not supported in global initializers")
	case *Ident:
		if ty, ok := cg.globals[v.Name]; ok && ty.Kind == CArray {
			return constVal{sym: v.Name}, nil // array decays to its address
		}
		if _, ok := cg.funcs[v.Name]; ok {
			return constVal{sym: v.Name, isFunc: true}, nil
		}
		return constVal{}, cg.errAt(v.Pos, "initializer element %q is not constant", v.Name)
	case *Unary:
		if v.Op == "&" {
			switch x := v.X.(type) {
			case *Ident:
				if _, ok := cg.globals[x.Name]; ok {
					return constVal{sym: x.Name}, nil
				}
				if _, ok := cg.funcs[x.Name]; ok {
					return constVal{sym: x.Name, isFunc: true}, nil
				}
			case *Index:
				base, err := cg.evalConstExpr(&Unary{Op: "&", X: x.X, Pos: v.Pos})
				if err != nil {
					return constVal{}, err
				}
				idx, err := cg.evalConstExpr(x.I)
				if err != nil {
					return constVal{}, err
				}
				if ty, ok := cg.globals[base.sym]; ok && ty.Kind == CArray {
					base.i += idx.i * ty.Elem.Size()
					return base, nil
				}
			}
			return constVal{}, cg.errAt(v.Pos, "cannot take constant address")
		}
		x, err := cg.evalConstExpr(v.X)
		if err != nil {
			return constVal{}, err
		}
		switch v.Op {
		case "-":
			if x.isFloat {
				return constVal{f: -x.f, isFloat: true}, nil
			}
			return constVal{i: -x.i}, nil
		case "+":
			return x, nil
		case "~":
			return constVal{i: ^x.i}, nil
		case "!":
			return constVal{i: b2i(x.i == 0 && x.f == 0)}, nil
		}
	case *Binary:
		x, err := cg.evalConstExpr(v.X)
		if err != nil {
			return constVal{}, err
		}
		y, err := cg.evalConstExpr(v.Y)
		if err != nil {
			return constVal{}, err
		}
		if x.isFloat || y.isFloat {
			xf, yf := x.f, y.f
			if !x.isFloat {
				xf = float64(x.i)
			}
			if !y.isFloat {
				yf = float64(y.i)
			}
			switch v.Op {
			case "+":
				return constVal{f: xf + yf, isFloat: true}, nil
			case "-":
				return constVal{f: xf - yf, isFloat: true}, nil
			case "*":
				return constVal{f: xf * yf, isFloat: true}, nil
			case "/":
				return constVal{f: xf / yf, isFloat: true}, nil
			}
			return constVal{}, cg.errAt(v.Pos, "bad constant float op %q", v.Op)
		}
		p := &Parser{enums: map[string]int64{}}
		r, err := p.evalConst(&Binary{Op: v.Op, X: &IntLit{V: x.i}, Y: &IntLit{V: y.i}})
		if err != nil {
			return constVal{}, err
		}
		if x.sym != "" { // pointer arithmetic on a global address
			return constVal{sym: x.sym, i: r}, nil
		}
		return constVal{i: r}, nil
	case *CastExpr:
		x, err := cg.evalConstExpr(v.X)
		if err != nil {
			return constVal{}, err
		}
		if v.Ty.Kind == CInt && x.isFloat {
			return constVal{i: int64(x.f)}, nil
		}
		if v.Ty.Kind == CFloat && !x.isFloat {
			return constVal{f: float64(x.i), isFloat: true}, nil
		}
		return x, nil
	}
	return constVal{}, fmt.Errorf("cc: initializer expression is not constant")
}

// collectStructs registers every named struct type reachable from the
// module's globals and instructions, so the printed SIR is self-contained
// and re-parses (the textual format declares structs up front).
func collectStructs(m *ir.Module) {
	seen := map[*ir.StructType]bool{}
	var walk func(t ir.Type)
	walk = func(t ir.Type) {
		switch v := t.(type) {
		case *ir.StructType:
			if v == nil || seen[v] {
				return
			}
			seen[v] = true
			if v.Name != "" {
				m.Structs[v.Name] = v
			}
			for _, f := range v.Fields {
				walk(f.Ty)
			}
		case *ir.ArrayType:
			walk(v.Elem)
		case *ir.PtrType:
			if v.Elem != nil {
				walk(v.Elem)
			}
		case *ir.FuncType:
			walk(v.Ret)
			for _, p := range v.Params {
				walk(p)
			}
		}
	}
	for _, g := range m.Globals {
		walk(g.Ty)
	}
	for _, f := range m.Funcs {
		if f.Sig != nil {
			walk(f.Sig)
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Ty != nil {
					walk(b.Instrs[i].Ty)
				}
				if b.Instrs[i].Ty2 != nil {
					walk(b.Instrs[i].Ty2)
				}
			}
		}
	}
}
