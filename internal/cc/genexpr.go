package cc

import (
	"fmt"

	"repro/internal/ir"
)

// value is an rvalue during code generation: an operand plus its C type.
type value struct {
	op ir.Operand
	ty *CType
}

// expr generates code for an expression and returns its rvalue.
func (g *fnGen) expr(e Expr) (value, error) {
	g.at(posOf(e))
	switch v := e.(type) {
	case *IntLit:
		ty := tyInt
		if v.Long || v.V > 0x7fffffff || v.V < -0x80000000 {
			ty = pick(v.Unsigned, tyULong, tyLong)
		} else if v.Unsigned {
			ty = tyUInt
		}
		return value{op: ir.ConstInt(v.V, ty.IR()), ty: ty}, nil
	case *FloatLit:
		if v.Single {
			return value{op: ir.ConstFloat(v.V, ir.F32), ty: tyFloat}, nil
		}
		return value{op: ir.ConstFloat(v.V, ir.F64), ty: tyDouble}, nil
	case *StrLit:
		sym := g.cg.internString(v.S)
		return value{op: ir.GlobalRef(sym), ty: tyCharPtr}, nil
	case *Ident:
		return g.identValue(v)
	case *Unary:
		return g.unary(v)
	case *Binary:
		return g.binary(v)
	case *Assign:
		return g.assign(v)
	case *Cond:
		return g.ternary(v)
	case *Call:
		return g.call(v)
	case *Index, *Member:
		addr, ty, err := g.addr(e)
		if err != nil {
			return value{}, err
		}
		return g.loadOrDecay(addr, ty)
	case *CastExpr:
		x, err := g.expr(v.X)
		if err != nil {
			return value{}, err
		}
		if v.Ty.Kind == CVoid {
			return value{op: ir.ConstInt(0, ir.I32), ty: tyVoid}, nil
		}
		return g.convert(x, v.Ty, v.Pos)
	case *SizeofExpr:
		ty := v.Ty
		if ty == nil {
			var err error
			ty, err = g.typeOf(v.X)
			if err != nil {
				return value{}, err
			}
		}
		return value{op: ir.ConstInt(ty.Size(), ir.I64), ty: tyULong}, nil
	case *InitList:
		return value{}, g.cg.errAt(v.Pos, "brace initializer is only valid in declarations")
	}
	return value{}, fmt.Errorf("cc: unhandled expression %T", e)
}

// identValue loads a named variable, decays arrays/functions to addresses.
func (g *fnGen) identValue(v *Ident) (value, error) {
	if l := g.lookup(v.Name); l != nil {
		return g.loadOrDecay(ir.Reg(l.addr, ir.BytePtr), l.ty)
	}
	if ty, ok := g.cg.globals[v.Name]; ok {
		return g.loadOrDecay(ir.GlobalRef(v.Name), ty)
	}
	if sig, ok := g.cg.funcs[v.Name]; ok {
		return value{op: ir.FuncRef(v.Name), ty: ptrTo(&CType{Kind: CFunc, Fn: sig})}, nil
	}
	return value{}, g.cg.errAt(v.Pos, "use of undeclared identifier %q", v.Name)
}

// loadOrDecay loads a scalar from addr, or decays aggregates/functions.
func (g *fnGen) loadOrDecay(addr ir.Operand, ty *CType) (value, error) {
	switch ty.Kind {
	case CArray:
		return value{op: addr, ty: ptrTo(ty.Elem)}, nil
	case CFunc:
		return value{op: addr, ty: ptrTo(ty)}, nil
	case CStruct:
		// Struct rvalues are represented by their address; assignment and
		// argument passing handle the copy.
		return value{op: addr, ty: ty}, nil
	}
	dst := g.f.NewReg()
	g.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, Ty: ty.IR(), Addr: addr})
	return value{op: ir.Reg(dst, ty.IR()), ty: ty}, nil
}

// addr computes an lvalue address, returning the operand and the object type.
func (g *fnGen) addr(e Expr) (ir.Operand, *CType, error) {
	g.at(posOf(e))
	switch v := e.(type) {
	case *Ident:
		if l := g.lookup(v.Name); l != nil {
			return ir.Reg(l.addr, ir.BytePtr), l.ty, nil
		}
		if ty, ok := g.cg.globals[v.Name]; ok {
			return ir.GlobalRef(v.Name), ty, nil
		}
		if _, ok := g.cg.funcs[v.Name]; ok {
			return ir.FuncRef(v.Name), &CType{Kind: CFunc, Fn: g.cg.funcs[v.Name]}, nil
		}
		return ir.Operand{}, nil, g.cg.errAt(v.Pos, "use of undeclared identifier %q", v.Name)
	case *Unary:
		if v.Op == "*" {
			x, err := g.expr(v.X)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			if x.ty.Kind != CPtr {
				return ir.Operand{}, nil, g.cg.errAt(v.Pos, "cannot dereference %s", x.ty)
			}
			return x.op, x.ty.Elem, nil
		}
	case *Index:
		baseTy, err := g.typeOf(v.X)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		var base ir.Operand
		var elem *CType
		if baseTy.Kind == CArray {
			base, _, err = g.addr(v.X)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			elem = baseTy.Elem
		} else {
			bv, err := g.expr(v.X)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			if bv.ty.Kind != CPtr {
				return ir.Operand{}, nil, g.cg.errAt(v.Pos, "subscript of non-pointer %s", bv.ty)
			}
			base = bv.op
			elem = bv.ty.Elem
		}
		idx, err := g.expr(v.I)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		idx, err = g.convert(idx, tyLong, v.Pos)
		if err != nil {
			return ir.Operand{}, nil, err
		}
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpGEP, Dst: dst, Addr: base, Stride: elem.Size(), A: idx.op, Line: v.Pos.Line})
		return ir.Reg(dst, ir.BytePtr), elem, nil
	case *Member:
		var base ir.Operand
		var sty *CType
		if v.Arrow {
			bv, err := g.expr(v.X)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			if bv.ty.Kind != CPtr || bv.ty.Elem.Kind != CStruct {
				return ir.Operand{}, nil, g.cg.errAt(v.Pos, "-> on non-struct-pointer %s", bv.ty)
			}
			base, sty = bv.op, bv.ty.Elem
		} else {
			b, ty, err := g.addr(v.X)
			if err != nil {
				return ir.Operand{}, nil, err
			}
			if ty.Kind != CStruct {
				return ir.Operand{}, nil, g.cg.errAt(v.Pos, ". on non-struct %s", ty)
			}
			base, sty = b, ty
		}
		fi, fty := sty.FieldIndex(v.Name)
		if fi < 0 {
			return ir.Operand{}, nil, g.cg.errAt(v.Pos, "%s has no member %q", sty, v.Name)
		}
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpGEP, Dst: dst, Addr: base, Stride: 1, A: ir.ConstInt(sty.FieldOffset(fi), ir.I64), Line: v.Pos.Line})
		return ir.Reg(dst, ir.BytePtr), fty, nil
	case *StrLit:
		sym := g.cg.internString(v.S)
		return ir.GlobalRef(sym), arrayOf(tyChar, int64(len(v.S))+1), nil
	case *CastExpr:
		// (T*)x used as lvalue via *(T*)x reaches here through Unary "*".
	}
	return ir.Operand{}, nil, fmt.Errorf("cc: expression is not an lvalue (%T)", e)
}

func (g *fnGen) unary(v *Unary) (value, error) {
	switch v.Op {
	case "&":
		addr, ty, err := g.addr(v.X)
		if err != nil {
			return value{}, err
		}
		if ty.Kind == CFunc {
			return value{op: addr, ty: ptrTo(ty)}, nil
		}
		return value{op: addr, ty: ptrTo(ty)}, nil
	case "*":
		x, err := g.expr(v.X)
		if err != nil {
			return value{}, err
		}
		if x.ty.Kind != CPtr {
			return value{}, g.cg.errAt(v.Pos, "cannot dereference %s", x.ty)
		}
		if x.ty.Elem.Kind == CFunc {
			return x, nil // *fnptr == fnptr
		}
		return g.loadOrDecay(x.op, x.ty.Elem)
	case "-", "+", "~":
		x, err := g.expr(v.X)
		if err != nil {
			return value{}, err
		}
		x = g.promote(x)
		if v.Op == "+" {
			return x, nil
		}
		dst := g.f.NewReg()
		if x.ty.Kind == CFloat {
			if v.Op == "~" {
				return value{}, g.cg.errAt(v.Pos, "~ on floating value")
			}
			g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: x.ty.IR(), Bin: ir.FSub, A: ir.ConstFloat(0, x.ty.IR()), B: x.op})
			return value{op: ir.Reg(dst, x.ty.IR()), ty: x.ty}, nil
		}
		if v.Op == "-" {
			g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: x.ty.IR(), Bin: ir.Sub, A: ir.ConstInt(0, x.ty.IR()), B: x.op})
		} else {
			g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: x.ty.IR(), Bin: ir.Xor, A: x.op, B: ir.ConstInt(-1, x.ty.IR())})
		}
		return value{op: ir.Reg(dst, x.ty.IR()), ty: x.ty}, nil
	case "!":
		cond, err := g.exprCond(v.X)
		if err != nil {
			return value{}, err
		}
		notDst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpBin, Dst: notDst, Ty: ir.I1, Bin: ir.Xor, A: cond, B: ir.ConstInt(1, ir.I1)})
		return g.boolToInt(ir.Reg(notDst, ir.I1)), nil
	case "++", "--":
		return g.incDec(v)
	}
	return value{}, g.cg.errAt(v.Pos, "unhandled unary %q", v.Op)
}

// incDec handles ++x, --x, x++, x--.
func (g *fnGen) incDec(v *Unary) (value, error) {
	addr, ty, err := g.addr(v.X)
	if err != nil {
		return value{}, err
	}
	old, err := g.loadOrDecay(addr, ty)
	if err != nil {
		return value{}, err
	}
	delta := int64(1)
	if v.Op == "--" {
		delta = -1
	}
	var nv value
	switch {
	case ty.Kind == CPtr:
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpGEP, Dst: dst, Addr: old.op, Stride: ty.Elem.Size(), A: ir.ConstInt(delta, ir.I64), Line: v.Pos.Line})
		nv = value{op: ir.Reg(dst, ir.BytePtr), ty: ty}
	case ty.Kind == CFloat:
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: ty.IR(), Bin: ir.FAdd, A: old.op, B: ir.ConstFloat(float64(delta), ty.IR())})
		nv = value{op: ir.Reg(dst, ty.IR()), ty: ty}
	default:
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: ty.IR(), Bin: ir.Add, A: old.op, B: ir.ConstInt(delta, ty.IR())})
		nv = value{op: ir.Reg(dst, ty.IR()), ty: ty}
	}
	g.emit(ir.Instr{Op: ir.OpStore, Ty: ty.Decay().IR(), A: nv.op, Addr: addr, Line: v.Pos.Line})
	if v.Postfix {
		return old, nil
	}
	return nv, nil
}

// promote applies C integer promotion (small ints widen to int).
func (g *fnGen) promote(x value) value {
	if x.ty.Kind == CInt && x.ty.Bits < 32 {
		return g.mustConvert(x, pick(false, tyUInt, tyInt))
	}
	return x
}

// mustConvert converts between scalar types; the conversion cannot fail for
// arithmetic types.
func (g *fnGen) mustConvert(x value, to *CType) value {
	v, err := g.convert(x, to, Pos{})
	if err != nil {
		panic("cc: internal conversion error: " + err.Error())
	}
	return v
}

// convert emits a conversion from x to type `to`.
func (g *fnGen) convert(x value, to *CType, pos Pos) (value, error) {
	from := x.ty.Decay()
	to = to.Decay()
	if from.Kind == CVoid && to.Kind == CVoid {
		return x, nil
	}
	emitCast := func(op ir.CastOp, fromIR, toIR ir.Type) value {
		// Front ends fold constant conversions even at -O0 (Clang does);
		// the backend's Fig. 13 const-global fold depends on seeing
		// constant gep indices.
		if x.op.Kind == ir.OperConstInt || x.op.Kind == ir.OperConstFloat {
			iv, fv, isF := ir.EvalCast(op, bitsOfIR(fromIR), bitsOfIR(toIR), x.op.Int, x.op.Flt)
			if isF {
				return value{op: ir.ConstFloat(fv, toIR), ty: to}
			}
			if op != ir.PtrToInt && op != ir.IntToPtr {
				return value{op: ir.ConstInt(iv, toIR), ty: to}
			}
		}
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpCast, Dst: dst, Cast: op, Ty: fromIR, Ty2: toIR, A: x.op})
		return value{op: ir.Reg(dst, toIR), ty: to}
	}
	switch {
	case from.Kind == CInt && to.Kind == CInt:
		if from.Bits == to.Bits {
			return value{op: x.op, ty: to}, nil
		}
		if from.Bits > to.Bits {
			return emitCast(ir.Trunc, from.IR(), to.IR()), nil
		}
		if from.Unsigned {
			return emitCast(ir.ZExt, from.IR(), to.IR()), nil
		}
		return emitCast(ir.SExt, from.IR(), to.IR()), nil
	case from.Kind == CInt && to.Kind == CFloat:
		if from.Unsigned {
			return emitCast(ir.UIToFP, from.IR(), to.IR()), nil
		}
		return emitCast(ir.SIToFP, from.IR(), to.IR()), nil
	case from.Kind == CFloat && to.Kind == CInt:
		if to.Unsigned {
			return emitCast(ir.FPToUI, from.IR(), to.IR()), nil
		}
		return emitCast(ir.FPToSI, from.IR(), to.IR()), nil
	case from.Kind == CFloat && to.Kind == CFloat:
		if from.Bits == to.Bits {
			return value{op: x.op, ty: to}, nil
		}
		if from.Bits > to.Bits {
			return emitCast(ir.FPTrunc, from.IR(), to.IR()), nil
		}
		return emitCast(ir.FPExt, from.IR(), to.IR()), nil
	case from.Kind == CPtr && to.Kind == CPtr:
		// Pointer-to-pointer conversion is free in the native model, but when
		// the target pointee is a named, complete struct or union that the
		// source pointee is not, emit a checked bitcast carrying the declared
		// C type. The managed engines validate the cast against the pointed-to
		// allocation's effective type (adopting one for fresh heap blocks);
		// native execution treats it as a plain move.
		if te := to.Elem; te.Kind == CStruct && te.Struct.Complete && te.Struct.Name != "" &&
			!(from.Elem.Kind == CStruct && from.Elem.Struct == to.Elem.Struct) &&
			x.op.Kind != ir.OperNull {
			dst := g.f.NewReg()
			g.emit(ir.Instr{
				Op: ir.OpCast, Dst: dst, Cast: ir.Bitcast,
				Ty: ir.BytePtr, Ty2: ir.Ptr(te.IR()), A: x.op,
				CType: te.String(),
			})
			return value{op: ir.Reg(dst, ir.BytePtr), ty: to}, nil
		}
		return value{op: x.op, ty: to}, nil
	case from.Kind == CPtr && to.Kind == CInt:
		v := emitCast(ir.PtrToInt, ir.BytePtr, ir.I64)
		if to.Bits < 64 {
			x = v
			from = tyLong
			return emitCast(ir.Trunc, ir.I64, to.IR()), nil
		}
		v.ty = to
		return v, nil
	case from.Kind == CInt && to.Kind == CPtr:
		if x.op.Kind == ir.OperConstInt && x.op.Int == 0 {
			return value{op: ir.Null(), ty: to}, nil
		}
		if from.Bits < 64 {
			x = g.mustConvert(x, tyLong)
		}
		return emitCast(ir.IntToPtr, ir.I64, ir.BytePtr), nil
	case to.Kind == CVoid:
		return value{op: x.op, ty: tyVoid}, nil
	case from.Kind == CStruct && to.Kind == CStruct:
		return x, nil
	}
	return value{}, g.cg.errAt(pos, "cannot convert %s to %s", x.ty, to)
}

// boolToInt widens an i1 to a C int value.
func (g *fnGen) boolToInt(op ir.Operand) value {
	dst := g.f.NewReg()
	g.emit(ir.Instr{Op: ir.OpCast, Dst: dst, Cast: ir.ZExt, Ty: ir.I1, Ty2: ir.I32, A: op})
	return value{op: ir.Reg(dst, ir.I32), ty: tyInt}
}

// exprCond evaluates e as a branch condition (i1 operand).
func (g *fnGen) exprCond(e Expr) (ir.Operand, error) {
	// Logical operators get short-circuit lowering here.
	if b, ok := e.(*Binary); ok && (b.Op == "&&" || b.Op == "||") {
		tmp := g.alloca(tyInt, "")
		end := g.newBlock("sc.end")
		rhs := g.newBlock("sc.rhs")
		lc, err := g.exprCond(b.X)
		if err != nil {
			return ir.Operand{}, err
		}
		shortVal := int64(0)
		if b.Op == "||" {
			shortVal = 1
		}
		shortB := g.newBlock("sc.short")
		if b.Op == "&&" {
			g.emit(ir.Instr{Op: ir.OpCondBr, A: lc, Blk0: rhs, Blk1: shortB})
		} else {
			g.emit(ir.Instr{Op: ir.OpCondBr, A: lc, Blk0: shortB, Blk1: rhs})
		}
		g.setBlock(shortB)
		g.emit(ir.Instr{Op: ir.OpStore, Ty: ir.I32, A: ir.ConstInt(shortVal, ir.I32), Addr: ir.Reg(tmp, ir.BytePtr)})
		g.br(end)
		g.setBlock(rhs)
		rc, err := g.exprCond(b.Y)
		if err != nil {
			return ir.Operand{}, err
		}
		rci := g.boolToInt(rc)
		g.emit(ir.Instr{Op: ir.OpStore, Ty: ir.I32, A: rci.op, Addr: ir.Reg(tmp, ir.BytePtr)})
		g.br(end)
		g.setBlock(end)
		ld := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpLoad, Dst: ld, Ty: ir.I32, Addr: ir.Reg(tmp, ir.BytePtr)})
		cmp := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpCmp, Dst: cmp, Pred: ir.Ne, Ty: ir.I32, A: ir.Reg(ld, ir.I32), B: ir.ConstInt(0, ir.I32)})
		return ir.Reg(cmp, ir.I1), nil
	}
	if u, ok := e.(*Unary); ok && u.Op == "!" {
		inner, err := g.exprCond(u.X)
		if err != nil {
			return ir.Operand{}, err
		}
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: ir.I1, Bin: ir.Xor, A: inner, B: ir.ConstInt(1, ir.I1)})
		return ir.Reg(dst, ir.I1), nil
	}
	v, err := g.expr(e)
	if err != nil {
		return ir.Operand{}, err
	}
	dst := g.f.NewReg()
	switch v.ty.Decay().Kind {
	case CFloat:
		g.emit(ir.Instr{Op: ir.OpCmp, Dst: dst, Pred: ir.FOne, Ty: v.ty.IR(), A: v.op, B: ir.ConstFloat(0, v.ty.IR())})
	case CPtr:
		g.emit(ir.Instr{Op: ir.OpCmp, Dst: dst, Pred: ir.Ne, Ty: ir.BytePtr, A: v.op, B: ir.Null()})
	default:
		g.emit(ir.Instr{Op: ir.OpCmp, Dst: dst, Pred: ir.Ne, Ty: v.ty.IR(), A: v.op, B: ir.ConstInt(0, v.ty.IR())})
	}
	return ir.Reg(dst, ir.I1), nil
}

// usualArith computes the common type of a binary arithmetic operation.
func usualArith(a, b *CType) *CType {
	if a.Kind == CFloat || b.Kind == CFloat {
		if a.Kind == CFloat && a.Bits == 64 || b.Kind == CFloat && b.Bits == 64 {
			return tyDouble
		}
		return tyFloat
	}
	// both integers; promote to >= int
	pa, pb := a, b
	if pa.Bits < 32 {
		pa = tyInt
	}
	if pb.Bits < 32 {
		pb = tyInt
	}
	if pa.Bits == pb.Bits {
		if pa.Unsigned || pb.Unsigned {
			return pick(pa.Bits == 64, tyULong, tyUInt)
		}
		return pick(pa.Bits == 64, tyLong, tyInt)
	}
	big, small := pa, pb
	if pb.Bits > pa.Bits {
		big, small = pb, pa
	}
	if big.Unsigned || small.Unsigned && small.Bits == big.Bits {
		return pick(big.Bits == 64, tyULong, tyUInt)
	}
	return pick(big.Bits == 64, tyLong, tyInt)
}

var cmpPreds = map[string][2]ir.Pred{
	// {signed/float-ordered, unsigned}
	"==": {ir.Eq, ir.Eq},
	"!=": {ir.Ne, ir.Ne},
	"<":  {ir.Slt, ir.Ult},
	"<=": {ir.Sle, ir.Ule},
	">":  {ir.Sgt, ir.Ugt},
	">=": {ir.Sge, ir.Uge},
}

var floatPreds = map[string]ir.Pred{
	"==": ir.FOeq, "!=": ir.FOne, "<": ir.FOlt, "<=": ir.FOle, ">": ir.FOgt, ">=": ir.FOge,
}

var intBinOps = map[string][2]ir.BinOp{
	// {signed, unsigned}
	"+": {ir.Add, ir.Add}, "-": {ir.Sub, ir.Sub}, "*": {ir.Mul, ir.Mul},
	"/": {ir.SDiv, ir.UDiv}, "%": {ir.SRem, ir.URem},
	"&": {ir.And, ir.And}, "|": {ir.Or, ir.Or}, "^": {ir.Xor, ir.Xor},
	"<<": {ir.Shl, ir.Shl}, ">>": {ir.AShr, ir.LShr},
}

var floatBinOps = map[string]ir.BinOp{
	"+": ir.FAdd, "-": ir.FSub, "*": ir.FMul, "/": ir.FDiv, "%": ir.FRem,
}

func (g *fnGen) binary(v *Binary) (value, error) {
	switch v.Op {
	case ",":
		if _, err := g.expr(v.X); err != nil {
			return value{}, err
		}
		return g.expr(v.Y)
	case "&&", "||":
		cond, err := g.exprCond(v)
		if err != nil {
			return value{}, err
		}
		return g.boolToInt(cond), nil
	}
	x, err := g.expr(v.X)
	if err != nil {
		return value{}, err
	}
	y, err := g.expr(v.Y)
	if err != nil {
		return value{}, err
	}
	return g.binaryValues(v.Op, x, y, v.Pos)
}

func (g *fnGen) binaryValues(op string, x, y value, pos Pos) (value, error) {
	xt, yt := x.ty.Decay(), y.ty.Decay()

	// Pointer arithmetic and comparisons.
	if xt.Kind == CPtr || yt.Kind == CPtr {
		return g.pointerBinary(op, x, y, pos)
	}
	if !xt.IsArithmetic() || !yt.IsArithmetic() {
		return value{}, g.cg.errAt(pos, "invalid operands to %q (%s, %s)", op, x.ty, y.ty)
	}

	if preds, isCmp := cmpPreds[op]; isCmp {
		common := usualArith(xt, yt)
		x, y = g.mustConvert(x, common), g.mustConvert(y, common)
		dst := g.f.NewReg()
		if common.Kind == CFloat {
			g.emit(ir.Instr{Op: ir.OpCmp, Dst: dst, Pred: floatPreds[op], Ty: common.IR(), A: x.op, B: y.op, Line: pos.Line})
		} else {
			g.emit(ir.Instr{Op: ir.OpCmp, Dst: dst, Pred: preds[pickIdx(common.Unsigned)], Ty: common.IR(), A: x.op, B: y.op, Line: pos.Line})
		}
		return g.boolToInt(ir.Reg(dst, ir.I1)), nil
	}

	// Shifts keep the promoted left-operand type.
	if op == "<<" || op == ">>" {
		x = g.promote(x)
		y = g.mustConvert(g.promote(y), x.ty)
		ops := intBinOps[op]
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: x.ty.IR(), Bin: ops[pickIdx(x.ty.Unsigned)], A: x.op, B: y.op, Line: pos.Line})
		return value{op: ir.Reg(dst, x.ty.IR()), ty: x.ty}, nil
	}

	common := usualArith(xt, yt)
	x, y = g.mustConvert(x, common), g.mustConvert(y, common)
	dst := g.f.NewReg()
	if common.Kind == CFloat {
		bop, ok := floatBinOps[op]
		if !ok {
			return value{}, g.cg.errAt(pos, "invalid float operator %q", op)
		}
		g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: common.IR(), Bin: bop, A: x.op, B: y.op, Line: pos.Line})
	} else {
		ops, ok := intBinOps[op]
		if !ok {
			return value{}, g.cg.errAt(pos, "invalid operator %q", op)
		}
		g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: common.IR(), Bin: ops[pickIdx(common.Unsigned)], A: x.op, B: y.op, Line: pos.Line})
	}
	return value{op: ir.Reg(dst, common.IR()), ty: common}, nil
}

func pickIdx(unsigned bool) int {
	if unsigned {
		return 1
	}
	return 0
}

func (g *fnGen) pointerBinary(op string, x, y value, pos Pos) (value, error) {
	xt, yt := x.ty.Decay(), y.ty.Decay()
	switch op {
	case "+":
		p, i := x, y
		if yt.Kind == CPtr {
			p, i = y, x
		}
		i = g.mustConvert(i, tyLong)
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpGEP, Dst: dst, Addr: p.op, Stride: p.ty.Decay().Elem.Size(), A: i.op, Line: pos.Line})
		return value{op: ir.Reg(dst, ir.BytePtr), ty: p.ty.Decay()}, nil
	case "-":
		if yt.Kind != CPtr { // ptr - int
			i := g.mustConvert(y, tyLong)
			neg := g.f.NewReg()
			g.emit(ir.Instr{Op: ir.OpBin, Dst: neg, Ty: ir.I64, Bin: ir.Sub, A: ir.ConstInt(0, ir.I64), B: i.op})
			dst := g.f.NewReg()
			g.emit(ir.Instr{Op: ir.OpGEP, Dst: dst, Addr: x.op, Stride: xt.Elem.Size(), A: ir.Reg(neg, ir.I64), Line: pos.Line})
			return value{op: ir.Reg(dst, ir.BytePtr), ty: xt}, nil
		}
		// ptr - ptr: byte difference divided by element size.
		xi := g.mustConvert(x, tyLong)
		yi := g.mustConvert(y, tyLong)
		diff := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpBin, Dst: diff, Ty: ir.I64, Bin: ir.Sub, A: xi.op, B: yi.op})
		size := xt.Elem.Size()
		if size <= 1 {
			return value{op: ir.Reg(diff, ir.I64), ty: tyLong}, nil
		}
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpBin, Dst: dst, Ty: ir.I64, Bin: ir.SDiv, A: ir.Reg(diff, ir.I64), B: ir.ConstInt(size, ir.I64)})
		return value{op: ir.Reg(dst, ir.I64), ty: tyLong}, nil
	case "==", "!=", "<", "<=", ">", ">=":
		// Compare as addresses. Integer operands (e.g. NULL as 0) convert.
		if xt.Kind != CPtr {
			x = g.mustConvert(x, yt)
		}
		if yt.Kind != CPtr {
			y = g.mustConvert(y, xt)
		}
		dst := g.f.NewReg()
		g.emit(ir.Instr{Op: ir.OpCmp, Dst: dst, Pred: cmpPreds[op][1], Ty: ir.BytePtr, A: x.op, B: y.op, Line: pos.Line})
		return g.boolToInt(ir.Reg(dst, ir.I1)), nil
	}
	return value{}, g.cg.errAt(pos, "invalid pointer operation %q", op)
}

func (g *fnGen) assign(v *Assign) (value, error) {
	addr, lty, err := g.addr(v.L)
	if err != nil {
		return value{}, err
	}
	if v.Op == "=" {
		r, err := g.expr(v.R)
		if err != nil {
			return value{}, err
		}
		if lty.Kind == CStruct {
			// Struct assignment copies the object with the memcpy intrinsic;
			// engines implement it with their own (checked or raw) memory ops.
			g.cg.ensureBuiltin(BuiltinMemcpy, &ir.FuncType{Ret: ir.Void, Params: []ir.Type{ir.BytePtr, ir.BytePtr, ir.I64}})
			g.emit(ir.Instr{
				Op: ir.OpCall, Dst: -1, Ty: ir.Void, Callee: ir.FuncRef(BuiltinMemcpy),
				Args: []ir.Operand{
					withTy(addr, ir.BytePtr),
					withTy(r.op, ir.BytePtr),
					withTy(ir.ConstInt(lty.Size(), ir.I64), ir.I64),
				},
				FixedArgs: 3, Line: v.Pos.Line,
			})
			return value{op: addr, ty: lty}, nil
		}
		r, err = g.convert(r, lty, v.Pos)
		if err != nil {
			return value{}, err
		}
		g.emit(ir.Instr{Op: ir.OpStore, Ty: lty.Decay().IR(), A: r.op, Addr: addr, Line: v.Pos.Line})
		return r, nil
	}
	// Compound assignment: load, combine, store.
	old, err := g.loadOrDecay(addr, lty)
	if err != nil {
		return value{}, err
	}
	r, err := g.expr(v.R)
	if err != nil {
		return value{}, err
	}
	combined, err := g.binaryValues(v.Op[:len(v.Op)-1], old, r, v.Pos)
	if err != nil {
		return value{}, err
	}
	combined, err = g.convert(combined, lty, v.Pos)
	if err != nil {
		return value{}, err
	}
	g.emit(ir.Instr{Op: ir.OpStore, Ty: lty.Decay().IR(), A: combined.op, Addr: addr, Line: v.Pos.Line})
	return combined, nil
}

func (g *fnGen) ternary(v *Cond) (value, error) {
	cond, err := g.exprCond(v.C)
	if err != nil {
		return value{}, err
	}
	// Determine the result type from both arms.
	tt, err := g.typeOf(v.T)
	if err != nil {
		return value{}, err
	}
	ft, err := g.typeOf(v.F)
	if err != nil {
		return value{}, err
	}
	var resTy *CType
	switch {
	case tt.Decay().Kind == CPtr:
		resTy = tt.Decay()
	case ft.Decay().Kind == CPtr:
		resTy = ft.Decay()
	case tt.Kind == CVoid || ft.Kind == CVoid:
		resTy = tyVoid
	default:
		resTy = usualArith(tt.Decay(), ft.Decay())
	}
	thenB := g.newBlock("ter.then")
	elseB := g.newBlock("ter.else")
	endB := g.newBlock("ter.end")
	var tmp int
	if resTy.Kind != CVoid {
		tmp = g.alloca(resTy, "")
	}
	g.emit(ir.Instr{Op: ir.OpCondBr, A: cond, Blk0: thenB, Blk1: elseB})
	emitArm := func(blk int, e Expr) error {
		g.setBlock(blk)
		av, err := g.expr(e)
		if err != nil {
			return err
		}
		if resTy.Kind != CVoid {
			av, err = g.convert(av, resTy, v.Pos)
			if err != nil {
				return err
			}
			g.emit(ir.Instr{Op: ir.OpStore, Ty: resTy.Decay().IR(), A: av.op, Addr: ir.Reg(tmp, ir.BytePtr)})
		}
		g.br(endB)
		return nil
	}
	if err := emitArm(thenB, v.T); err != nil {
		return value{}, err
	}
	if err := emitArm(elseB, v.F); err != nil {
		return value{}, err
	}
	g.setBlock(endB)
	if resTy.Kind == CVoid {
		return value{op: ir.ConstInt(0, ir.I32), ty: tyVoid}, nil
	}
	dst := g.f.NewReg()
	g.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, Ty: resTy.Decay().IR(), Addr: ir.Reg(tmp, ir.BytePtr)})
	return value{op: ir.Reg(dst, resTy.Decay().IR()), ty: resTy}, nil
}

func (g *fnGen) call(v *Call) (value, error) {
	var callee ir.Operand
	var sig *CFuncInfo

	if id, ok := v.Fn.(*Ident); ok && g.lookup(id.Name) == nil {
		if s, found := g.cg.funcs[id.Name]; found {
			sig = s
			callee = ir.FuncRef(id.Name)
		}
	}
	if sig == nil {
		fv, err := g.expr(v.Fn)
		if err != nil {
			return value{}, err
		}
		ft := fv.ty.Decay()
		if ft.Kind == CPtr && ft.Elem.Kind == CFunc {
			sig = ft.Elem.Fn
		} else {
			return value{}, g.cg.errAt(v.Pos, "called object is not a function (type %s)", fv.ty)
		}
		callee = fv.op
	}

	if len(v.Args) < len(sig.Params) {
		return value{}, g.cg.errAt(v.Pos, "too few arguments (%d < %d)", len(v.Args), len(sig.Params))
	}
	if len(v.Args) > len(sig.Params) && !sig.Variadic {
		return value{}, g.cg.errAt(v.Pos, "too many arguments (%d > %d)", len(v.Args), len(sig.Params))
	}

	var args []ir.Operand
	for i, ae := range v.Args {
		av, err := g.expr(ae)
		if err != nil {
			return value{}, err
		}
		if i < len(sig.Params) {
			av, err = g.convert(av, sig.Params[i], v.Pos)
			if err != nil {
				return value{}, err
			}
		} else {
			// Default argument promotions for variadic arguments.
			switch d := av.ty.Decay(); {
			case d.Kind == CFloat && d.Bits == 32:
				av = g.mustConvert(av, tyDouble)
			case d.Kind == CInt && d.Bits < 32:
				av = g.mustConvert(av, tyInt)
			}
		}
		args = append(args, withTy(av.op, av.ty.Decay().IR()))
	}

	retTy := sig.Ret
	dst := -1
	if retTy.Kind != CVoid {
		dst = g.f.NewReg()
	}
	g.emit(ir.Instr{
		Op: ir.OpCall, Dst: dst, Ty: retTy.IR(), Callee: callee,
		Args: args, FixedArgs: len(sig.Params), Line: v.Pos.Line,
	})
	if retTy.Kind == CVoid {
		return value{op: ir.ConstInt(0, ir.I32), ty: tyVoid}, nil
	}
	return value{op: ir.Reg(dst, retTy.IR()), ty: retTy}, nil
}

// typeOf computes an expression's C type without emitting code. It covers
// the forms that appear under sizeof and in ternary arms.
func (g *fnGen) typeOf(e Expr) (*CType, error) {
	switch v := e.(type) {
	case *IntLit:
		if v.Long || v.V > 0x7fffffff {
			return pick(v.Unsigned, tyULong, tyLong), nil
		}
		return pick(v.Unsigned, tyUInt, tyInt), nil
	case *FloatLit:
		return pick(v.Single, tyFloat, tyDouble), nil
	case *StrLit:
		return arrayOf(tyChar, int64(len(v.S))+1), nil
	case *Ident:
		if l := g.lookup(v.Name); l != nil {
			return l.ty, nil
		}
		if ty, ok := g.cg.globals[v.Name]; ok {
			return ty, nil
		}
		if sig, ok := g.cg.funcs[v.Name]; ok {
			return &CType{Kind: CFunc, Fn: sig}, nil
		}
		return nil, g.cg.errAt(v.Pos, "use of undeclared identifier %q", v.Name)
	case *Unary:
		switch v.Op {
		case "&":
			t, err := g.typeOf(v.X)
			if err != nil {
				return nil, err
			}
			return ptrTo(t), nil
		case "*":
			t, err := g.typeOf(v.X)
			if err != nil {
				return nil, err
			}
			t = t.Decay()
			if t.Kind != CPtr {
				return nil, g.cg.errAt(v.Pos, "cannot dereference %s", t)
			}
			return t.Elem, nil
		case "!":
			return tyInt, nil
		default:
			t, err := g.typeOf(v.X)
			if err != nil {
				return nil, err
			}
			if t.Kind == CInt && t.Bits < 32 {
				return tyInt, nil
			}
			return t, nil
		}
	case *Binary:
		switch v.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return tyInt, nil
		case ",":
			return g.typeOf(v.Y)
		}
		xt, err := g.typeOf(v.X)
		if err != nil {
			return nil, err
		}
		yt, err := g.typeOf(v.Y)
		if err != nil {
			return nil, err
		}
		xd, yd := xt.Decay(), yt.Decay()
		if xd.Kind == CPtr && yd.Kind == CPtr {
			return tyLong, nil // ptr - ptr
		}
		if xd.Kind == CPtr {
			return xd, nil
		}
		if yd.Kind == CPtr {
			return yd, nil
		}
		return usualArith(xd, yd), nil
	case *Assign:
		return g.typeOf(v.L)
	case *Cond:
		return g.typeOf(v.T)
	case *Call:
		if id, ok := v.Fn.(*Ident); ok {
			if sig, found := g.cg.funcs[id.Name]; found {
				return sig.Ret, nil
			}
		}
		t, err := g.typeOf(v.Fn)
		if err != nil {
			return nil, err
		}
		t = t.Decay()
		if t.Kind == CPtr && t.Elem.Kind == CFunc {
			return t.Elem.Fn.Ret, nil
		}
		return tyInt, nil
	case *Index:
		t, err := g.typeOf(v.X)
		if err != nil {
			return nil, err
		}
		t = t.Decay()
		if t.Kind != CPtr {
			return nil, g.cg.errAt(v.Pos, "subscript of non-pointer")
		}
		return t.Elem, nil
	case *Member:
		t, err := g.typeOf(v.X)
		if err != nil {
			return nil, err
		}
		if v.Arrow {
			t = t.Decay()
			if t.Kind != CPtr {
				return nil, g.cg.errAt(v.Pos, "-> on non-pointer")
			}
			t = t.Elem
		}
		if t.Kind != CStruct {
			return nil, g.cg.errAt(v.Pos, "member access on non-struct %s", t)
		}
		_, fty := t.FieldIndex(v.Name)
		if fty == nil {
			return nil, g.cg.errAt(v.Pos, "%s has no member %q", t, v.Name)
		}
		return fty, nil
	case *CastExpr:
		return v.Ty, nil
	case *SizeofExpr:
		return tyULong, nil
	}
	return nil, fmt.Errorf("cc: cannot determine type of %T", e)
}

func bitsOfIR(t ir.Type) int {
	switch v := t.(type) {
	case *ir.IntType:
		return v.Bits
	case *ir.FloatType:
		return v.Bits
	}
	return 64
}
