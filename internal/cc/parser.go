package cc

import (
	"fmt"
)

// Parser turns a preprocessed token stream into an AST. It tracks typedefs,
// struct/union tags, and enum constants, which C needs to disambiguate
// declarations from expressions.
type Parser struct {
	toks []Token
	pos  int

	typedefs map[string]*CType
	structs  map[string]*CStructInfo
	unions   map[string]*CStructInfo
	enums    map[string]int64
}

// ParseProgram parses a preprocessed translation unit.
func ParseProgram(toks []Token) (*Program, error) {
	p := &Parser{
		toks:     toks,
		typedefs: map[string]*CType{},
		structs:  map[string]*CStructInfo{},
		unions:   map[string]*CStructInfo{},
		enums:    map[string]int64{},
	}
	prog := &Program{}
	for !p.atEOF() {
		decls, err := p.externalDecl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, decls...)
	}
	return prog, nil
}

func (p *Parser) tok() Token { return p.toks[p.pos] }

func (p *Parser) atEOF() bool { return p.tok().Kind == TokEOF }

func (p *Parser) pdesc() string {
	t := p.tok()
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokStrLit:
		return fmt.Sprintf("%q", t.Str)
	case TokIntLit:
		return fmt.Sprintf("%d", t.Int)
	case TokFloatLit:
		return fmt.Sprintf("%g", t.Flt)
	case TokCharLit:
		return fmt.Sprintf("'%c'", rune(t.Int))
	}
	return fmt.Sprintf("%q", t.Text)
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.tok()
	return fmt.Errorf("%s:%d: %s", t.File, t.Line, fmt.Sprintf(format, args...))
}

func (p *Parser) here() Pos { return Pos{File: p.tok().File, Line: p.tok().Line} }

func (p *Parser) isPunct(s string) bool {
	t := p.tok()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) isKw(s string) bool {
	t := p.tok()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *Parser) accept(s string) bool {
	if p.isPunct(s) || p.isKw(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(s string) error {
	if !p.accept(s) {
		return p.errf("expected %q, found %s", s, p.pdesc())
	}
	return nil
}

func (p *Parser) ident() (string, error) {
	t := p.tok()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", p.pdesc())
	}
	p.pos++
	return t.Text, nil
}

// specKeywords are the keywords that can begin a declaration.
var specKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"struct": true, "union": true, "enum": true, "const": true,
	"volatile": true, "static": true, "extern": true, "typedef": true,
	"register": true, "inline": true, "auto": true,
}

// startsDecl reports whether the current token begins a declaration.
func (p *Parser) startsDecl() bool {
	t := p.tok()
	if t.Kind == TokKeyword && specKeywords[t.Text] {
		return true
	}
	if t.Kind == TokIdent {
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

// storage carries declaration storage-class flags.
type storage struct {
	typedef bool
	static  bool
	extern  bool
	isConst bool
}

// declSpecs parses declaration specifiers into a base type.
func (p *Parser) declSpecs() (*CType, storage, error) {
	var st storage
	var base *CType
	seenInt := false
	longCount := 0
	short := false
	var signed, unsigned bool
	for {
		t := p.tok()
		if t.Kind == TokIdent {
			if td, ok := p.typedefs[t.Text]; ok && base == nil && !seenInt && longCount == 0 && !short && !signed && !unsigned {
				p.pos++
				base = td
				continue
			}
			break
		}
		if t.Kind != TokKeyword {
			break
		}
		switch t.Text {
		case "typedef":
			st.typedef = true
		case "static":
			st.static = true
		case "extern":
			st.extern = true
		case "const":
			st.isConst = true
		case "volatile", "register", "inline", "auto":
			// accepted and ignored
		case "void":
			base = tyVoid
		case "char":
			base = tyChar
		case "short":
			short = true
		case "int":
			seenInt = true
		case "long":
			longCount++
		case "float":
			base = tyFloat
		case "double":
			base = tyDouble
		case "signed":
			signed = true
		case "unsigned":
			unsigned = true
		case "struct", "union":
			p.pos++
			ty, err := p.structSpec(t.Text == "union")
			if err != nil {
				return nil, st, err
			}
			base = ty
			continue
		case "enum":
			p.pos++
			if err := p.enumSpec(); err != nil {
				return nil, st, err
			}
			base = tyInt
			continue
		default:
			goto done
		}
		p.pos++
	}
done:
	if base == nil || seenInt || short || longCount > 0 || unsigned || signed {
		switch {
		case short:
			base = pick(unsigned, tyUShort, tyShort)
		case longCount > 0:
			base = pick(unsigned, tyULong, tyLong)
		case base == tyChar || base != nil && base.Kind == CInt && base.Bits == 8:
			base = pick(unsigned, tyUChar, tyChar)
		case base == nil || seenInt:
			base = pick(unsigned, tyUInt, tyInt)
		}
	}
	if base == nil {
		return nil, st, p.errf("expected type")
	}
	return base, st, nil
}

func pick(c bool, a, b *CType) *CType {
	if c {
		return a
	}
	return b
}

// structSpec parses "struct tag", "struct tag {...}", or "struct {...}".
func (p *Parser) structSpec(isUnion bool) (*CType, error) {
	tags := p.structs
	if isUnion {
		tags = p.unions
	}
	name := ""
	if p.tok().Kind == TokIdent {
		name = p.tok().Text
		p.pos++
	}
	var info *CStructInfo
	if name != "" {
		if existing, ok := tags[name]; ok {
			info = existing
		} else {
			info = &CStructInfo{Name: name, IsUnion: isUnion}
			tags[name] = info
		}
	} else {
		info = &CStructInfo{IsUnion: isUnion}
	}
	if p.accept("{") {
		if info.Complete {
			// Redefinition: replace fields (happens across test programs).
			info.Fields = nil
			info.irType = nil
		}
		for !p.isPunct("}") {
			base, _, err := p.declSpecs()
			if err != nil {
				return nil, err
			}
			for {
				name, ty, err := p.declarator(base)
				if err != nil {
					return nil, err
				}
				if name == "" {
					return nil, p.errf("struct member requires a name")
				}
				info.Fields = append(info.Fields, CField{Name: name, Ty: ty})
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		p.pos++ // }
		info.Complete = true
	}
	return &CType{Kind: CStruct, Struct: info}, nil
}

// enumSpec parses an enum specifier, registering constants.
func (p *Parser) enumSpec() error {
	if p.tok().Kind == TokIdent {
		p.pos++ // tag, unused
	}
	if !p.accept("{") {
		return nil
	}
	next := int64(0)
	for !p.isPunct("}") {
		name, err := p.ident()
		if err != nil {
			return err
		}
		if p.accept("=") {
			e, err := p.condExpr()
			if err != nil {
				return err
			}
			v, err := p.evalConst(e)
			if err != nil {
				return err
			}
			next = v
		}
		p.enums[name] = next
		next++
		if !p.accept(",") {
			break
		}
	}
	return p.expect("}")
}

// declarator parses one declarator and returns the declared name and type.
// abstract declarators (no name) return "".
func (p *Parser) declarator(base *CType) (string, *CType, error) {
	// pointer prefix
	for p.accept("*") {
		for p.isKw("const") || p.isKw("volatile") {
			p.pos++
		}
		base = ptrTo(base)
	}
	// direct declarator
	var name string
	var inner func(*CType) (*CType, error) // deferred parenthesized declarator
	switch {
	case p.tok().Kind == TokIdent:
		name = p.tok().Text
		p.pos++
	case p.isPunct("("):
		// Could be a parenthesized declarator "(*f)(...)" or a parameter
		// list for an abstract declarator. Heuristic: a declarator follows
		// if the next token is '*', an identifier, or '('.
		save := p.pos
		p.pos++
		t := p.tok()
		if t.Kind == TokIdent && p.typedefs[t.Text] == nil || t.Kind == TokPunct && (t.Text == "*" || t.Text == "(") {
			innerToks := p.pos
			// Parse the inner declarator later against the completed suffix type.
			depth := 1
			for depth > 0 {
				if p.atEOF() {
					return "", nil, p.errf("unterminated declarator")
				}
				if p.isPunct("(") {
					depth++
				}
				if p.isPunct(")") {
					depth--
				}
				p.pos++
			}
			endInner := p.pos - 1
			inner = func(t *CType) (*CType, error) {
				sub := &Parser{toks: append(append([]Token{}, p.toks[innerToks:endInner]...), Token{Kind: TokEOF}),
					typedefs: p.typedefs, structs: p.structs, unions: p.unions, enums: p.enums}
				n, ty, err := sub.declarator(t)
				if err != nil {
					return nil, err
				}
				name = n
				return ty, nil
			}
		} else {
			p.pos = save
		}
	}
	// suffixes
	ty, err := p.declSuffix(base)
	if err != nil {
		return "", nil, err
	}
	if inner != nil {
		ty, err = inner(ty)
		if err != nil {
			return "", nil, err
		}
	}
	return name, ty, nil
}

// declSuffix parses array and function suffixes, applied right-to-left.
func (p *Parser) declSuffix(base *CType) (*CType, error) {
	switch {
	case p.accept("["):
		n := int64(-1)
		if !p.isPunct("]") {
			e, err := p.condExpr()
			if err != nil {
				return nil, err
			}
			v, err := p.evalConst(e)
			if err != nil {
				return nil, err
			}
			n = v
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		elem, err := p.declSuffix(base)
		if err != nil {
			return nil, err
		}
		return arrayOf(elem, n), nil
	case p.isPunct("("):
		p.pos++
		fn := &CFuncInfo{Ret: base}
		if p.isKw("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.pos += 2
			return &CType{Kind: CFunc, Fn: fn}, nil
		}
		for !p.isPunct(")") {
			if len(fn.Params) > 0 || fn.Variadic {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			if p.accept("...") {
				fn.Variadic = true
				continue
			}
			pb, _, err := p.declSpecs()
			if err != nil {
				return nil, err
			}
			pname, pty, err := p.declarator(pb)
			if err != nil {
				return nil, err
			}
			pty = pty.Decay()
			fn.Params = append(fn.Params, pty)
			fn.Names = append(fn.Names, pname)
		}
		p.pos++ // )
		return &CType{Kind: CFunc, Fn: fn}, nil
	}
	return base, nil
}

// externalDecl parses one top-level declaration or function definition.
func (p *Parser) externalDecl() ([]any, error) {
	if p.accept(";") {
		return nil, nil
	}
	base, st, err := p.declSpecs()
	if err != nil {
		return nil, err
	}
	if p.accept(";") {
		return nil, nil // bare struct/enum declaration
	}
	var out []any
	for {
		pos := p.here()
		name, ty, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("expected declarator name")
		}
		if st.typedef {
			p.typedefs[name] = ty
			if !p.accept(",") {
				break
			}
			continue
		}
		if ty.Kind == CFunc && p.isPunct("{") {
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			out = append(out, &FuncDecl{Name: name, Sig: ty.Fn, Body: body, Static: st.static, Pos: pos})
			return out, nil
		}
		if ty.Kind == CFunc {
			out = append(out, &FuncDecl{Name: name, Sig: ty.Fn, Static: st.static, Pos: pos})
		} else {
			vd := &VarDecl{Name: name, Ty: ty, Static: st.static, Extern: st.extern, Const: st.isConst, Pos: pos}
			if p.accept("=") {
				vd.Init, err = p.initializer()
				if err != nil {
					return nil, err
				}
			}
			fixArrayLen(vd)
			out = append(out, vd)
		}
		if !p.accept(",") {
			break
		}
	}
	if st.typedef {
		return out, p.expect(";")
	}
	return out, p.expect(";")
}

// fixArrayLen completes `char s[] = "..."` and `T a[] = {...}` lengths.
func fixArrayLen(vd *VarDecl) {
	if vd.Ty.Kind != CArray || vd.Ty.Len >= 0 || vd.Init == nil {
		return
	}
	switch init := vd.Init.(type) {
	case *StrLit:
		vd.Ty = arrayOf(vd.Ty.Elem, int64(len(init.S))+1)
	case *InitList:
		vd.Ty = arrayOf(vd.Ty.Elem, int64(len(init.Items)))
	}
}

func (p *Parser) initializer() (Expr, error) {
	if p.isPunct("{") {
		pos := p.here()
		p.pos++
		il := &InitList{Pos: pos}
		for !p.isPunct("}") {
			if len(il.Items) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
				if p.isPunct("}") {
					break // trailing comma
				}
			}
			item, err := p.initializer()
			if err != nil {
				return nil, err
			}
			il.Items = append(il.Items, item)
		}
		p.pos++
		return il, nil
	}
	return p.assignExpr()
}

// ---- statements ----

func (p *Parser) block() (*Block, error) {
	pos := p.here()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.pos++
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	pos := p.here()
	t := p.tok()
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.isPunct(";"):
		p.pos++
		return &ExprStmt{Pos: pos}, nil
	case p.isKw("if"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.isKw("else") {
			p.pos++
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Pos: pos}, nil
	case p.isKw("while"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Pos: pos}, nil
	case p.isKw("do"):
		p.pos++
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if !p.isKw("while") {
			return nil, p.errf("expected while after do body")
		}
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, DoWhile: true, Pos: pos}, nil
	case p.isKw("for"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		f := &For{Pos: pos}
		if !p.isPunct(";") {
			if p.startsDecl() {
				ds, err := p.localDecl()
				if err != nil {
					return nil, err
				}
				f.Init = ds
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				f.Init = &ExprStmt{X: e, Pos: pos}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.pos++
		}
		if !p.isPunct(";") {
			var err error
			f.Cond, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			var err error
			f.Post, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		f.Body = body
		return f, nil
	case p.isKw("return"):
		p.pos++
		r := &Return{Pos: pos}
		if !p.isPunct(";") {
			var err error
			r.X, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return r, p.expect(";")
	case p.isKw("break"):
		p.pos++
		return &Break{Pos: pos}, p.expect(";")
	case p.isKw("continue"):
		p.pos++
		return &Continue{Pos: pos}, p.expect(";")
	case p.isKw("switch"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Switch{X: x, Body: body, Pos: pos}, nil
	case p.isKw("case"):
		p.pos++
		v, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		return &Case{V: v, Pos: pos}, nil
	case p.isKw("default"):
		p.pos++
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		return &Case{IsDefault: true, Pos: pos}, nil
	case p.isKw("goto"):
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Goto{Name: name, Pos: pos}, p.expect(";")
	case t.Kind == TokIdent && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ":" && p.typedefs[t.Text] == nil:
		p.pos += 2
		return &Label{Name: t.Text, Pos: pos}, nil
	case p.startsDecl():
		return p.localDecl()
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, Pos: pos}, p.expect(";")
	}
}

// localDecl parses a declaration statement (consuming the ';').
func (p *Parser) localDecl() (Stmt, error) {
	pos := p.here()
	base, st, err := p.declSpecs()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{Pos: pos}
	if p.accept(";") {
		return ds, nil // bare struct/enum definition
	}
	for {
		dpos := p.here()
		name, ty, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if st.typedef {
			p.typedefs[name] = ty
		} else {
			vd := &VarDecl{Name: name, Ty: ty, Static: st.static, Extern: st.extern, Const: st.isConst, Pos: dpos}
			if p.accept("=") {
				vd.Init, err = p.initializer()
				if err != nil {
					return nil, err
				}
			}
			fixArrayLen(vd)
			ds.Decls = append(ds.Decls, vd)
		}
		if !p.accept(",") {
			break
		}
	}
	return ds, p.expect(";")
}

// ---- expressions ----

func (p *Parser) expr() (Expr, error) {
	e, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct(",") {
		pos := p.here()
		p.pos++
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		e = &Binary{Op: ",", X: e, Y: r, Pos: pos}
	}
	return e, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) assignExpr() (Expr, error) {
	l, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.tok()
	if t.Kind == TokPunct && assignOps[t.Text] {
		pos := p.here()
		p.pos++
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Op: t.Text, L: l, R: r, Pos: pos}, nil
	}
	return l, nil
}

func (p *Parser) condExpr() (Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return c, nil
	}
	pos := p.here()
	p.pos++
	t, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	f, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, T: t, F: f, Pos: pos}, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) binExpr(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.castExpr()
	}
	l, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		matched := ""
		if t.Kind == TokPunct {
			for _, op := range binLevels[level] {
				if t.Text == op {
					matched = op
					break
				}
			}
		}
		if matched == "" {
			return l, nil
		}
		pos := p.here()
		p.pos++
		r, err := p.binExpr(level + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: matched, X: l, Y: r, Pos: pos}
	}
}

// typeStartAt reports whether the token at offset d begins a type name.
func (p *Parser) typeStartAt(d int) bool {
	t := p.toks[p.pos+d]
	if t.Kind == TokKeyword {
		switch t.Text {
		case "void", "char", "short", "int", "long", "float", "double",
			"signed", "unsigned", "struct", "union", "enum", "const":
			return true
		}
		return false
	}
	return t.Kind == TokIdent && p.typedefs[t.Text] != nil
}

func (p *Parser) castExpr() (Expr, error) {
	if p.isPunct("(") && p.typeStartAt(1) {
		pos := p.here()
		p.pos++
		ty, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		x, err := p.castExpr()
		if err != nil {
			return nil, err
		}
		return &CastExpr{Ty: ty, X: x, Pos: pos}, nil
	}
	return p.unaryExpr()
}

// typeName parses "type-specifiers abstract-declarator" (for casts/sizeof).
func (p *Parser) typeName() (*CType, error) {
	base, _, err := p.declSpecs()
	if err != nil {
		return nil, err
	}
	_, ty, err := p.declarator(base)
	return ty, err
}

func (p *Parser) unaryExpr() (Expr, error) {
	pos := p.here()
	t := p.tok()
	if t.Kind == TokPunct {
		switch t.Text {
		case "&", "*", "-", "+", "!", "~":
			p.pos++
			x, err := p.castExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x, Pos: pos}, nil
		case "++", "--":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x, Pos: pos}, nil
		}
	}
	if p.isKw("sizeof") {
		p.pos++
		if p.isPunct("(") && p.typeStartAt(1) {
			p.pos++
			ty, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SizeofExpr{Ty: ty, Pos: pos}, nil
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &SizeofExpr{X: x, Pos: pos}, nil
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.here()
		switch {
		case p.accept("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{X: e, I: idx, Pos: pos}
		case p.accept("("):
			call := &Call{Fn: e, Pos: pos}
			for !p.isPunct(")") {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.pos++
			e = call
		case p.accept("."):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			e = &Member{X: e, Name: name, Pos: pos}
		case p.accept("->"):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			e = &Member{X: e, Name: name, Arrow: true, Pos: pos}
		case p.isPunct("++") || p.isPunct("--"):
			op := p.tok().Text
			p.pos++
			e = &Unary{Op: op, X: e, Postfix: true, Pos: pos}
		default:
			return e, nil
		}
	}
}

func (p *Parser) primaryExpr() (Expr, error) {
	pos := p.here()
	t := p.tok()
	switch t.Kind {
	case TokIntLit:
		p.pos++
		return &IntLit{V: t.Int, Unsigned: t.Unsigned, Long: t.Long, Pos: pos}, nil
	case TokCharLit:
		p.pos++
		return &IntLit{V: t.Int, Pos: pos}, nil
	case TokFloatLit:
		p.pos++
		single := len(t.Text) > 0 && (t.Text[len(t.Text)-1] == 'f' || t.Text[len(t.Text)-1] == 'F')
		return &FloatLit{V: t.Flt, Single: single, Pos: pos}, nil
	case TokStrLit:
		s := t.Str
		p.pos++
		for p.tok().Kind == TokStrLit { // adjacent literal concatenation
			s += p.tok().Str
			p.pos++
		}
		return &StrLit{S: s, Pos: pos}, nil
	case TokIdent:
		p.pos++
		if v, ok := p.enums[t.Text]; ok {
			return &IntLit{V: v, Pos: pos}, nil
		}
		return &Ident{Name: t.Text, Pos: pos}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, p.errf("unexpected token %s in expression", p.pdesc())
}

// evalConst evaluates an integer constant expression at parse time
// (array sizes, enum values, case labels).
func (p *Parser) evalConst(e Expr) (int64, error) {
	switch v := e.(type) {
	case *IntLit:
		return v.V, nil
	case *Unary:
		x, err := p.evalConst(v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -x, nil
		case "+":
			return x, nil
		case "~":
			return ^x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *Binary:
		x, err := p.evalConst(v.X)
		if err != nil {
			return 0, err
		}
		y, err := p.evalConst(v.Y)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, fmt.Errorf("cc: division by zero in constant expression")
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, fmt.Errorf("cc: modulo by zero in constant expression")
			}
			return x % y, nil
		case "<<":
			return x << uint(y), nil
		case ">>":
			return x >> uint(y), nil
		case "&":
			return x & y, nil
		case "|":
			return x | y, nil
		case "^":
			return x ^ y, nil
		case "==":
			return b2i(x == y), nil
		case "!=":
			return b2i(x != y), nil
		case "<":
			return b2i(x < y), nil
		case "<=":
			return b2i(x <= y), nil
		case ">":
			return b2i(x > y), nil
		case ">=":
			return b2i(x >= y), nil
		case "&&":
			return b2i(x != 0 && y != 0), nil
		case "||":
			return b2i(x != 0 || y != 0), nil
		}
	case *Cond:
		c, err := p.evalConst(v.C)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return p.evalConst(v.T)
		}
		return p.evalConst(v.F)
	case *SizeofExpr:
		if v.Ty != nil {
			return v.Ty.Size(), nil
		}
	case *CastExpr:
		x, err := p.evalConst(v.X)
		if err != nil {
			return 0, err
		}
		if v.Ty.Kind == CInt {
			return truncToBits(x, v.Ty.Bits, v.Ty.Unsigned), nil
		}
		return x, nil
	}
	return 0, fmt.Errorf("cc: expression is not an integer constant")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// truncToBits reduces v to the given width with the given signedness.
func truncToBits(v int64, bits int, unsigned bool) int64 {
	if bits >= 64 {
		return v
	}
	mask := int64(1)<<uint(bits) - 1
	v &= mask
	if !unsigned && v&(1<<uint(bits-1)) != 0 {
		v |= ^mask
	}
	return v
}
