package cc

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// compileSnippet lowers a self-contained snippet (no libc).
func compileSnippet(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := Compile("t.c", map[string]string{"t.c": src}, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return m
}

func fnText(t *testing.T, m *ir.Module, name string) string {
	t.Helper()
	f := m.Func(name)
	if f == nil {
		t.Fatalf("no function %s", name)
	}
	return ir.PrintFunc(f)
}

func TestCodegenArrayIndexStride(t *testing.T) {
	m := compileSnippet(t, `
long pick(long *v, int i) { return v[i]; }
`)
	text := fnText(t, m, "pick")
	if !strings.Contains(text, "gep %r") || !strings.Contains(text, ", 8, ") {
		t.Errorf("expected 8-byte stride gep for long[]:\n%s", text)
	}
}

func TestCodegenStructFieldOffsets(t *testing.T) {
	m := compileSnippet(t, `
struct rec { char tag; double weight; int id; };
int id_of(struct rec *r) { return r->id; }
double w_of(struct rec *r) { return r->weight; }
`)
	// Layout: tag@0, weight@8, id@16.
	if !strings.Contains(fnText(t, m, "id_of"), ", 1, 16") {
		t.Errorf("id offset wrong:\n%s", fnText(t, m, "id_of"))
	}
	if !strings.Contains(fnText(t, m, "w_of"), ", 1, 8") {
		t.Errorf("weight offset wrong:\n%s", fnText(t, m, "w_of"))
	}
}

func TestCodegenSwitchLowering(t *testing.T) {
	m := compileSnippet(t, `
int f(int x) {
  switch (x) {
  case 1: return 10;
  case 5: return 50;
  default: return 0;
  }
}
`)
	text := fnText(t, m, "f")
	if !strings.Contains(text, "switch i64") || !strings.Contains(text, "1:") || !strings.Contains(text, "5:") {
		t.Errorf("switch not lowered to OpSwitch:\n%s", text)
	}
}

func TestCodegenShortCircuitBlocks(t *testing.T) {
	m := compileSnippet(t, `
int g(int v);
int f(int a, int b) { if (a > 0 && g(b)) return 1; return 0; }
`)
	text := fnText(t, m, "f")
	// The RHS call must be in its own block, reached conditionally.
	if strings.Count(text, "condbr") < 2 {
		t.Errorf("&& should produce two conditional branches:\n%s", text)
	}
	if !strings.Contains(text, "sc.rhs") {
		t.Errorf("missing short-circuit blocks:\n%s", text)
	}
}

func TestCodegenVarargsCallFixedCount(t *testing.T) {
	m := compileSnippet(t, `
int printf(const char *fmt, ...);
int f(void) { return printf("%d %d", 1, 2); }
`)
	text := fnText(t, m, "f")
	if !strings.Contains(text, "fixed 1") {
		t.Errorf("variadic call should record 1 fixed arg:\n%s", text)
	}
}

func TestCodegenVarargFloatPromotion(t *testing.T) {
	m := compileSnippet(t, `
int printf(const char *fmt, ...);
int f(float x) { return printf("%f", x); }
`)
	text := fnText(t, m, "f")
	if !strings.Contains(text, "fpext f32") {
		t.Errorf("float vararg must promote to double:\n%s", text)
	}
}

func TestCodegenParamSpill(t *testing.T) {
	m := compileSnippet(t, `
int addr_of(int x) { int *p = &x; return *p; }
`)
	text := fnText(t, m, "addr_of")
	if !strings.Contains(text, `alloca i32 name "x"`) {
		t.Errorf("address-taken parameter must live in an alloca:\n%s", text)
	}
}

func TestCodegenStringLiteralsInterned(t *testing.T) {
	m := compileSnippet(t, `
const char *a(void) { return "shared"; }
const char *b(void) { return "other"; }
`)
	count := 0
	for _, g := range m.Globals {
		if strings.HasPrefix(g.Name, ".str.") {
			count++
			if !g.IsConst {
				t.Errorf("string literal %s not const", g.Name)
			}
		}
	}
	if count != 2 {
		t.Errorf("expected 2 interned strings, got %d", count)
	}
}

func TestCodegenGlobalConstFlag(t *testing.T) {
	m := compileSnippet(t, `
const int ro[2] = {1, 2};
int rw[2] = {3, 4};
`)
	if g := m.Global("ro"); g == nil || !g.IsConst {
		t.Error("const global must carry IsConst")
	}
	if g := m.Global("rw"); g == nil || g.IsConst {
		t.Error("mutable global must not carry IsConst")
	}
}

func TestCodegenStructAssignUsesMemcpyIntrinsic(t *testing.T) {
	m := compileSnippet(t, `
struct big { long v[8]; };
void copy(struct big *d, struct big *s) { *d = *s; }
`)
	text := fnText(t, m, "copy")
	if !strings.Contains(text, "__builtin_memcpy") || !strings.Contains(text, "i64 64") {
		t.Errorf("struct assignment should lower to a 64-byte memcpy:\n%s", text)
	}
}

func TestCodegenErrorsAreDiagnosed(t *testing.T) {
	bad := []string{
		`int f(void) { return undeclared; }`,
		`int f(void) { int x; return x.field; }`,
		`int f(void) { int x; return *x; }`,
		`struct s; int f(struct s v) { return 0; }`, // incomplete by-value param
		`int f(int a) { return g(a); }`,             // undeclared function
	}
	for _, src := range bad {
		if _, err := Compile("t.c", map[string]string{"t.c": src}, Options{}); err == nil {
			t.Errorf("compiled without error: %s", src)
		}
	}
}

func TestCodegenConstCastFoldedAtFrontEnd(t *testing.T) {
	m := compileSnippet(t, `
long f(void) { return (long)(char)300; }
`)
	text := fnText(t, m, "f")
	if !strings.Contains(text, "ret i64 44") {
		t.Errorf("front end should fold (long)(char)300 to 44:\n%s", text)
	}
}

func TestCodegenDeadBlocksStayWellFormed(t *testing.T) {
	m := compileSnippet(t, `
int f(void) {
  return 1;
  return 2;
}
`)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("unreachable trailing code broke the IR: %v", err)
	}
}
