// Package gen is the campaign's seeded C program generator: a csmith-lite
// grammar over the subset of C the front end (internal/cc) accepts, built
// for differential testing rather than breadth. Every program is a pure
// function of its uint64 seed — the same splitmix64 stream the fault plane
// uses — so a campaign can shard, checkpoint, and resume a seed space and
// regenerate byte-identical programs anywhere.
//
// Generated programs are self-checking in the differential sense: they fold
// every computation into one unsigned checksum printed on the last line, so
// a wrong-code bug in any engine tier shows up as a stdout divergence even
// when no checker fires. Loops have static bounds and there is no
// recursion, so programs terminate within a small deterministic step
// budget; heap allocations mostly check for NULL, so injected allocation
// failures (fault.Plan) exercise the guest's own error paths instead of
// trivially crashing.
//
// A configurable fraction of programs deliberately carries one classic
// memory bug (tagged in Info.Bug) — off-by-one walks, far global reads,
// string overflows, use-after-free, union punning, bad casts — which feeds
// the cross-tool oracle: bugs the managed engine reports but the simulated
// native tools miss are the corpus-growth channel.
package gen

import (
	"fmt"
	"strings"
)

// Info is one generated (or mutated) program plus its provenance.
type Info struct {
	Seed   uint64
	Source string
	// Bug tags the deliberately injected defect ("" when the program is
	// intended clean — though clean intent is not a guarantee: the grammar
	// can still compose accidental bugs, which is the point of fuzzing).
	Bug string
}

// rng is the deterministic splitmix64 stream behind every generator
// decision. Identical to the fault plane's PRNG, so the whole campaign
// rests on one portable generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// n returns a value in [0, max). max must be > 0.
func (r *rng) n(max int) int { return int(r.next() % uint64(max)) }

// in returns a value in [lo, hi] inclusive.
func (r *rng) in(lo, hi int) int { return lo + r.n(hi-lo+1) }

// chance reports true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.n(100) < pct }

func (r *rng) pick(ss []string) string { return ss[r.n(len(ss))] }

// arr is one in-scope array the expression grammar can index.
type arr struct {
	name string
	elem string // "int", "long", "char"
	n    int    // element count
	heap bool   // heap-allocated (needs free, may be NULL-checked)
}

// prog accumulates the program under construction.
type prog struct {
	r       *rng
	globals []string // global declaration lines
	funcs   []string // helper function definitions
	body    []string // main body statements (indented)
	arrays  []arr    // in-scope arrays (globals + main locals + heap)
	scalars []string // in-scope int-valued scalars in main
	helpers []string // helper function names: int f(int, int)
	walkers []string // helper names: long w(int *p, int n)
	nstruct int
	bug     string
	freed   bool // the injected bug already freed the heap block
}

func (p *prog) stmt(format string, args ...any) {
	p.body = append(p.body, "    "+fmt.Sprintf(format, args...))
}

// SeedAt derives the idx'th per-program seed of a campaign from the
// campaign's root seed: one splitmix64 step keyed by the index. Workers can
// therefore claim any slice of the index space without coordinating — the
// seed for index i never depends on who generated indices < i — and a
// resumed campaign reproduces exactly the seeds the interrupted one would
// have used.
func SeedAt(campaign uint64, idx int) uint64 {
	r := &rng{s: campaign + uint64(idx)*0x9e3779b97f4a7c15}
	return r.next()
}

// Generate builds the seed'th program of the campaign grammar.
func Generate(seed uint64) Info {
	r := &rng{s: seed}
	// Burn a few draws so adjacent seeds decorrelate beyond the first
	// decision (splitmix64 is an increment-based stream).
	r.next()
	r.next()
	p := &prog{r: r}

	p.emitGlobals()
	p.emitHelpers()
	p.emitMainIntro()
	segments := r.in(3, 6)
	for i := 0; i < segments; i++ {
		p.emitSegment(i)
	}
	if r.chance(bugRate) {
		p.emitBug()
	}
	p.emitMainOutro()

	var b strings.Builder
	fmt.Fprintf(&b, "/* generated: seed=%#x */\n", seed)
	b.WriteString("#include <stdio.h>\n#include <stdlib.h>\n#include <string.h>\n\n")
	for _, g := range p.globals {
		b.WriteString(g)
		b.WriteString("\n")
	}
	b.WriteString("\n")
	for _, f := range p.funcs {
		b.WriteString(f)
		b.WriteString("\n")
	}
	b.WriteString("int main(void) {\n")
	for _, s := range p.body {
		b.WriteString(s)
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return Info{Seed: seed, Source: b.String(), Bug: p.bug}
}

// bugRate is the percentage of generated programs that carry one deliberate
// defect. Low enough that most programs exercise the clean differential
// path end to end, high enough that a few-hundred-program campaign still
// feeds the cross-tool oracle.
const bugRate = 14

func (p *prog) emitGlobals() {
	r := p.r
	ng := r.in(1, 3)
	for i := 0; i < ng; i++ {
		name := fmt.Sprintf("g%d", i)
		elem := r.pick([]string{"int", "long", "int", "short"})
		n := r.in(4, 9)
		vals := make([]string, n)
		for j := range vals {
			vals[j] = fmt.Sprintf("%d", r.in(-9, 99))
		}
		p.globals = append(p.globals, fmt.Sprintf("%s %s[%d] = {%s};", elem, name, n, strings.Join(vals, ", ")))
		if elem != "short" { // the expression grammar indexes int/long arrays
			p.arrays = append(p.arrays, arr{name: name, elem: elem, n: n})
		}
	}
	// A global string for the strlen/strcpy family.
	s := "abcdefghijklmnop"[:r.in(4, 12)]
	p.globals = append(p.globals, fmt.Sprintf("char gstr[%d] = \"%s\";", len(s)+r.in(1, 4), s))
	// Sometimes a struct type with an embedded array, and a global instance.
	if r.chance(60) {
		p.nstruct = 1
		n := r.in(3, 5)
		p.globals = append(p.globals, fmt.Sprintf("struct S0 { int tag; int v[%d]; long acc; };", n))
		p.globals = append(p.globals, "struct S0 gs;")
	}
	// Sometimes a union type for the punning play.
	if r.chance(40) {
		p.globals = append(p.globals, "union U0 { int i; long l; float f; };")
	}
}

func (p *prog) emitHelpers() {
	r := p.r
	nf := r.in(1, 2)
	for i := 0; i < nf; i++ {
		name := fmt.Sprintf("f%d", i)
		op := r.pick([]string{"+", "-", "^", "|"})
		mod := r.in(3, 17)
		lines := []string{
			fmt.Sprintf("int %s(int a, int b) {", name),
			"    int t = a;",
			"    int i;",
			fmt.Sprintf("    for (i = 0; i < (b & %d); i++) {", r.in(3, 7)),
			fmt.Sprintf("        t = (t * %d %s i) + %d;", r.in(2, 5), op, r.in(0, 9)),
			"    }",
			"    if (t < 0) t = -t;",
			fmt.Sprintf("    return t %% %d;", mod),
			"}",
		}
		p.funcs = append(p.funcs, strings.Join(lines, "\n"))
		p.helpers = append(p.helpers, name)
	}
	// An array walker taking a pointer + length: the aliasing workhorse.
	w := fmt.Sprintf("w%d", 0)
	lines := []string{
		fmt.Sprintf("long %s(int *a, int n) {", w),
		"    long acc = 0;",
		"    int i;",
		"    for (i = 0; i < n; i++) {",
		fmt.Sprintf("        acc += a[i] * (i + %d);", r.in(1, 3)),
		"    }",
		"    return acc;",
		"}",
	}
	p.funcs = append(p.funcs, strings.Join(lines, "\n"))
	p.walkers = append(p.walkers, w)
	if p.nstruct > 0 {
		lines := []string{
			"int sget(struct S0 *s, int k) {",
			"    if (k < 0) k = -k;",
			fmt.Sprintf("    return s->v[k %% %d] + s->tag;", p.structVLen()),
			"}",
		}
		p.funcs = append(p.funcs, strings.Join(lines, "\n"))
	}
}

// structVLen recovers the declared length of struct S0's embedded array
// from the global declaration (cheaper than threading it through).
func (p *prog) structVLen() int {
	for _, g := range p.globals {
		var n int
		if _, err := fmt.Sscanf(g, "struct S0 { int tag; int v[%d]", &n); err == nil {
			return n
		}
	}
	return 3
}

func (p *prog) emitMainIntro() {
	r := p.r
	p.stmt("unsigned long chk = %dul;", r.in(1, 9999))
	p.stmt("int i;")
	p.stmt("int j;")
	ns := r.in(2, 4)
	for i := 0; i < ns; i++ {
		name := fmt.Sprintf("x%d", i)
		p.stmt("int %s = %d;", name, r.in(-20, 80))
		p.scalars = append(p.scalars, name)
	}
	// A stack array.
	n := r.in(4, 8)
	vals := make([]string, n)
	for j := range vals {
		vals[j] = fmt.Sprintf("%d", r.in(0, 50))
	}
	p.stmt("int loc[%d] = {%s};", n, strings.Join(vals, ", "))
	p.arrays = append(p.arrays, arr{name: "loc", elem: "int", n: n})
	// A heap array, usually NULL-checked so fault schedules exercise the
	// guest's own error path instead of an uninteresting crash.
	hn := r.in(4, 10)
	p.stmt("int *hp = malloc(%d * sizeof(int));", hn)
	if r.chance(85) {
		p.stmt("if (!hp) { printf(\"chk=oom\\n\"); return 1; }")
	}
	p.stmt("for (i = 0; i < %d; i++) hp[i] = i * %d + %d;", hn, r.in(1, 7), r.in(0, 5))
	p.arrays = append(p.arrays, arr{name: "hp", elem: "int", n: hn, heap: true})
	if p.nstruct > 0 {
		p.stmt("gs.tag = %d;", r.in(1, 9))
		p.stmt("for (i = 0; i < %d; i++) gs.v[i] = i + %d;", p.structVLen(), r.in(0, 9))
		p.stmt("gs.acc = 0;")
	}
}

// expr builds a small int-valued expression from in-scope material.
func (p *prog) expr(depth int) string {
	r := p.r
	if depth <= 0 || r.chance(30) {
		switch r.n(4) {
		case 0:
			return fmt.Sprintf("%d", r.in(-9, 99))
		case 1:
			return p.scalars[r.n(len(p.scalars))]
		case 2:
			a := p.arrays[r.n(len(p.arrays))]
			v := fmt.Sprintf("%s[%d]", a.name, r.n(a.n))
			if a.elem != "int" {
				v = "(int)" + v
			}
			return v
		default:
			return fmt.Sprintf("(i + %d)", r.in(0, 3))
		}
	}
	switch r.n(6) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", p.expr(depth-1), r.pick([]string{"+", "-", "*", "^", "&", "|"}), p.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s >> %d)", p.expr(depth-1), r.in(1, 3))
	case 2:
		return fmt.Sprintf("(%s %% %d)", p.expr(depth-1), r.in(2, 17))
	case 3:
		if len(p.helpers) > 0 {
			return fmt.Sprintf("%s(%s, %s)", p.pickHelper(), p.expr(depth-1), p.expr(depth-1))
		}
		return fmt.Sprintf("(%s + %s)", p.expr(depth-1), p.expr(depth-1))
	case 4:
		a := p.arrays[r.n(len(p.arrays))]
		idx := fmt.Sprintf("((%s) & %d)", p.expr(depth-1), maskFor(a.n))
		v := fmt.Sprintf("%s[%s]", a.name, idx)
		if a.elem != "int" {
			v = "(int)" + v
		}
		return v
	default:
		return fmt.Sprintf("(-(%s))", p.expr(depth-1))
	}
}

func (p *prog) pickHelper() string { return p.helpers[p.r.n(len(p.helpers))] }

// maskFor returns the largest 2^k-1 that is a valid index for an array of
// length n, so masked dynamic indexing stays in bounds.
func maskFor(n int) int {
	m := 1
	for m*2 <= n {
		m *= 2
	}
	return m - 1
}

// emitSegment appends one block of work to main, always folded into chk.
func (p *prog) emitSegment(k int) {
	r := p.r
	switch r.n(8) {
	case 0: // accumulation loop over an array
		a := p.arrays[r.n(len(p.arrays))]
		p.stmt("for (i = 0; i < %d; i++) {", a.n)
		p.stmt("    chk = chk * 31ul + (unsigned long)(long)(%s[i] %s %s);", a.name, r.pick([]string{"+", "^", "*"}), p.expr(1))
		p.stmt("}")
	case 1: // nested loop with a conditional
		p.stmt("for (i = 0; i < %d; i++) {", r.in(2, 5))
		p.stmt("    for (j = 0; j < %d; j++) {", r.in(2, 4))
		p.stmt("        if (((i ^ j) & 1) == 0) {")
		p.stmt("            chk += (unsigned long)(long)(%s);", p.expr(2))
		p.stmt("        } else {")
		p.stmt("            chk ^= (unsigned long)(i * %d + j);", r.in(2, 9))
		p.stmt("        }")
		p.stmt("    }")
		p.stmt("}")
	case 2: // scalar updates through the expression grammar
		s := p.scalars[r.n(len(p.scalars))]
		p.stmt("%s = %s;", s, p.expr(3))
		p.stmt("chk = chk * 17ul + (unsigned long)(long)%s;", s)
	case 3: // pointer aliasing into an array
		a := p.arrays[r.n(len(p.arrays))]
		if a.elem != "int" {
			a = p.arrays[0]
		}
		if a.elem == "int" && a.n >= 2 {
			off := r.n(a.n - 1)
			p.stmt("{")
			p.stmt("    int *ap = &%s[%d];", a.name, off)
			p.stmt("    *ap = *ap + %d;", r.in(1, 9))
			p.stmt("    ap[1] = ap[1] ^ %s;", p.expr(1))
			p.stmt("    chk += (unsigned long)(long)(*ap + ap[1]);")
			p.stmt("}")
		}
	case 4: // walker call over a whole array (or a suffix)
		a := p.intArray()
		w := p.walkers[0]
		off := 0
		if a.n > 2 && r.chance(40) {
			off = r.n(a.n / 2)
		}
		p.stmt("chk = chk * 7ul + (unsigned long)%s(%s + %d, %d);", w, a.name, off, a.n-off)
	case 5: // string work, in bounds
		p.stmt("chk = chk * 13ul + (unsigned long)strlen(gstr);")
		if r.chance(50) {
			p.stmt("{")
			p.stmt("    char tmp[32];")
			p.stmt("    strcpy(tmp, gstr);")
			p.stmt("    strcat(tmp, \"%s\");", "xy"[:r.in(1, 2)])
			p.stmt("    chk += (unsigned long)strlen(tmp);")
			p.stmt("}")
		}
	case 6: // struct traffic
		if p.nstruct > 0 {
			p.stmt("gs.v[%d] = gs.v[%d] + %s;", r.n(p.structVLen()), r.n(p.structVLen()), p.expr(1))
			p.stmt("gs.acc += sget(&gs, %s);", p.expr(1))
			p.stmt("chk = chk * 11ul + (unsigned long)gs.acc;")
		} else {
			p.stmt("chk ^= (unsigned long)(long)(%s);", p.expr(2))
		}
	default: // do-while / switch flavor for statement coverage
		if r.chance(50) {
			p.stmt("i = 0;")
			p.stmt("do {")
			p.stmt("    chk += (unsigned long)(long)(%s);", p.expr(1))
			p.stmt("    i++;")
			p.stmt("} while (i < %d);", r.in(1, 4))
		} else {
			p.stmt("switch ((%s) & 3) {", p.expr(1))
			p.stmt("case 0: chk += 3ul; break;")
			p.stmt("case 1: chk ^= %dul; break;", r.in(1, 99))
			p.stmt("case 2: chk = chk * 5ul; break;")
			p.stmt("default: chk -= 1ul; break;")
			p.stmt("}")
		}
	}
}

// intArray picks an in-scope int array.
func (p *prog) intArray() arr {
	for tries := 0; tries < 8; tries++ {
		a := p.arrays[p.r.n(len(p.arrays))]
		if a.elem == "int" {
			return a
		}
	}
	for _, a := range p.arrays {
		if a.elem == "int" {
			return a
		}
	}
	return p.arrays[0]
}

// emitBug injects one classic memory defect, tagged for the oracles.
func (p *prog) emitBug() {
	r := p.r
	kinds := []string{
		"read-overflow", "write-overflow", "loop-off-by-one", "far-global-read",
		"strcpy-overflow", "use-after-free", "union-pun", "bad-cast", "missing-null-check",
	}
	kind := kinds[r.n(len(kinds))]
	switch kind {
	case "read-overflow":
		a := p.arrays[r.n(len(p.arrays))]
		p.stmt("chk += (unsigned long)(long)%s[%d]; /* one past the end */", a.name, a.n)
	case "write-overflow":
		a := p.arrays[r.n(len(p.arrays))]
		p.stmt("%s[%d] = %d; /* one past the end */", a.name, a.n, r.in(1, 9))
		p.stmt("chk += (unsigned long)(long)%s[0];", a.name)
	case "loop-off-by-one":
		a := p.arrays[r.n(len(p.arrays))]
		p.stmt("for (i = 0; i <= %d; i++) { /* <= walks one past */", a.n)
		p.stmt("    chk += (unsigned long)(long)%s[i];", a.name)
		p.stmt("}")
	case "far-global-read":
		// Far past any redzone: the classic escape (Fig. 14 shape).
		a := p.arrays[0]
		p.stmt("chk += (unsigned long)(long)%s[%d]; /* far out of bounds */", a.name, a.n+r.in(40, 200))
	case "strcpy-overflow":
		p.stmt("{")
		p.stmt("    char small[4];")
		p.stmt("    strcpy(small, \"overflowing-text\");")
		p.stmt("    chk += (unsigned long)small[0];")
		p.stmt("}")
	case "use-after-free":
		p.stmt("free(hp);")
		p.stmt("chk += (unsigned long)(long)hp[%d]; /* stale */", r.n(3))
		p.bug = kind
		p.freed = true
		return
	case "union-pun":
		if !p.hasUnion() {
			p.globals = append(p.globals, "union U0 { int i; long l; float f; };")
		}
		p.stmt("{")
		p.stmt("    union U0 u;")
		p.stmt("    u.i = %d;", r.in(1, 99))
		p.stmt("    chk += (unsigned long)u.f; /* read through the wrong arm */")
		p.stmt("}")
	case "bad-cast":
		p.stmt("{")
		p.stmt("    char raw[%d];", r.in(2, 6))
		p.stmt("    long *lp = (long *)raw; /* object too small for the type */")
		p.stmt("    chk += (unsigned long)*lp;")
		p.stmt("}")
	case "missing-null-check":
		p.stmt("{")
		p.stmt("    int *big = malloc((unsigned long)1 << 62); /* fails */")
		p.stmt("    chk += (unsigned long)(long)big[0];")
		p.stmt("}")
	}
	p.bug = kind
}

func (p *prog) hasUnion() bool {
	for _, g := range p.globals {
		if strings.HasPrefix(g, "union U0") {
			return true
		}
	}
	return false
}

func (p *prog) emitMainOutro() {
	if !p.freed {
		p.stmt("free(hp);")
	}
	p.stmt("printf(\"chk=%%lu\\n\", chk);")
	p.stmt("return (int)(chk %% 23ul);")
}
