package gen

import (
	"strings"
	"testing"
)

// The generator must be a pure function of its seed: the campaign's
// checkpoint/resume story regenerates programs from journaled seeds and
// expects byte-identical sources.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		a := Generate(seed)
		b := Generate(seed)
		if a.Source != b.Source || a.Bug != b.Bug {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		if a.Source == Generate(seed+1).Source {
			t.Fatalf("seed %d: adjacent seeds produced identical programs", seed)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	bugs := 0
	for seed := uint64(0); seed < 300; seed++ {
		info := Generate(seed)
		if !strings.Contains(info.Source, "int main(void)") {
			t.Fatalf("seed %d: no main:\n%s", seed, info.Source)
		}
		if !strings.Contains(info.Source, "chk=%lu") {
			t.Fatalf("seed %d: missing checksum print", seed)
		}
		if info.Bug != "" {
			bugs++
		}
	}
	// The bug-injection rate is a grammar constant; pin it loosely so a
	// refactor that silently stops injecting (or injects everywhere) fails.
	if bugs < 15 || bugs > 120 {
		t.Fatalf("injected-bug count %d out of expected band for rate %d%%", bugs, bugRate)
	}
}

func TestMutateDeterministic(t *testing.T) {
	src := `#include <stdio.h>
int main(void) {
    int a[4] = {1, 2, 3, 4};
    int i, sum = 0;
    for (i = 0; i < 4; i++) sum += a[i];
    printf("%d\n", sum);
    return 0;
}`
	changed := 0
	for seed := uint64(0); seed < 100; seed++ {
		a := Mutate(src, seed)
		b := Mutate(src, seed)
		if a.Source != b.Source || a.Bug != b.Bug {
			t.Fatalf("seed %d: Mutate is not deterministic", seed)
		}
		if a.Source != src {
			changed++
			if a.Bug == "" {
				t.Fatalf("seed %d: source changed but no mutation tag", seed)
			}
		}
	}
	if changed < 50 {
		t.Fatalf("only %d/100 seeds produced a mutation", changed)
	}
}
