package gen

// The mutator is the campaign's second program source: instead of growing a
// program from the grammar, it takes an existing corpus case — already known
// to exercise an interesting engine path — and applies a small number of
// seeded, syntax-preserving edits. Mutations are deliberately the bug
// classes the paper catalogs as root causes (§4.1): off-by-one comparisons,
// tweaked sizes and indices, deleted NULL checks, doubled frees. A mutant
// that still compiles probes engine behavior just off the corpus's
// well-tested paths, which is where tier or tool divergences hide.

import (
	"fmt"
	"regexp"
	"strings"
)

// mutation is one syntax-preserving edit attempt. Each returns the edited
// source and a tag, or ("", "") when the edit does not apply.
type mutation func(r *rng, src string) (string, string)

var intLit = regexp.MustCompile(`\b\d+\b`)

var mutations = []mutation{
	// Tweak an integer literal: the size/index/bound family of bugs.
	func(r *rng, src string) (string, string) {
		locs := intLit.FindAllStringIndex(src, -1)
		if len(locs) == 0 {
			return "", ""
		}
		loc := locs[r.n(len(locs))]
		var v int
		fmt.Sscanf(src[loc[0]:loc[1]], "%d", &v)
		nv := v
		switch r.n(4) {
		case 0:
			nv = v + 1
		case 1:
			if v > 0 {
				nv = v - 1
			} else {
				nv = v + 1
			}
		case 2:
			nv = v * 2
		default:
			nv = v/2 + 1
		}
		if nv == v {
			nv = v + 1
		}
		return src[:loc[0]] + fmt.Sprintf("%d", nv) + src[loc[1]:], fmt.Sprintf("int-literal %d->%d", v, nv)
	},
	// Relational off-by-one: < ↔ <=, > ↔ >=.
	func(r *rng, src string) (string, string) {
		pairs := [][2]string{{"<=", "<"}, {"<", "<="}, {">=", ">"}, {">", ">="}}
		pr := pairs[r.n(len(pairs))]
		idxs := findOps(src, pr[0])
		if len(idxs) == 0 {
			return "", ""
		}
		i := idxs[r.n(len(idxs))]
		return src[:i] + pr[1] + src[i+len(pr[0]):], fmt.Sprintf("relop %s->%s", pr[0], pr[1])
	},
	// Index arithmetic: flip a + to a - (or back) inside brackets.
	func(r *rng, src string) (string, string) {
		var idxs []int
		depth := 0
		for i := 0; i < len(src); i++ {
			switch src[i] {
			case '[':
				depth++
			case ']':
				depth--
			case '+', '-':
				if depth > 0 && i+1 < len(src) && src[i+1] == ' ' {
					idxs = append(idxs, i)
				}
			}
		}
		if len(idxs) == 0 {
			return "", ""
		}
		i := idxs[r.n(len(idxs))]
		repl := "-"
		if src[i] == '-' {
			repl = "+"
		}
		return src[:i] + repl + src[i+1:], "index-sign"
	},
	// Delete a NULL check line: the missing-check family.
	func(r *rng, src string) (string, string) {
		lines := strings.Split(src, "\n")
		var cand []int
		for i, l := range lines {
			t := strings.TrimSpace(l)
			if strings.HasPrefix(t, "if") &&
				(strings.Contains(t, "== NULL") || strings.Contains(t, "!= NULL") || strings.Contains(t, "if (!")) &&
				strings.Contains(t, "{") == strings.Contains(t, "}") {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			return "", ""
		}
		i := cand[r.n(len(cand))]
		lines = append(lines[:i], lines[i+1:]...)
		return strings.Join(lines, "\n"), "drop-null-check"
	},
	// Double a free: the UAF/double-free family.
	func(r *rng, src string) (string, string) {
		lines := strings.Split(src, "\n")
		var cand []int
		for i, l := range lines {
			t := strings.TrimSpace(l)
			if strings.HasPrefix(t, "free(") && strings.HasSuffix(t, ";") {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			return "", ""
		}
		i := cand[r.n(len(cand))]
		lines = append(lines[:i+1], append([]string{lines[i]}, lines[i+1:]...)...)
		return strings.Join(lines, "\n"), "double-free"
	},
	// Drop a `+ 1` (the forgot-the-NUL family).
	func(r *rng, src string) (string, string) {
		i := strings.Index(src, " + 1)")
		if i < 0 {
			return "", ""
		}
		return src[:i] + src[i+4:], "drop-plus-one"
	},
}

// findOps locates standalone occurrences of op ("<" must not match "<=").
func findOps(src, op string) []int {
	var out []int
	for i := 0; i+len(op) <= len(src); i++ {
		if src[i:i+len(op)] != op {
			continue
		}
		if len(op) == 1 {
			next := byte(0)
			if i+1 < len(src) {
				next = src[i+1]
			}
			if next == '=' || next == op[0] { // relational only, not << or <=
				continue
			}
			prev := byte(0)
			if i > 0 {
				prev = src[i-1]
			}
			if prev == op[0] || prev == '<' || prev == '>' || prev == '-' { // <<, ->
				continue
			}
		}
		out = append(out, i)
	}
	return out
}

// Mutate applies 1–3 seeded mutations to src (typically a corpus case) and
// reports what it did. Deterministic for a given (src, seed). When no
// mutation applies the source is returned unchanged with Bug == "".
func Mutate(src string, seed uint64) Info {
	r := &rng{s: seed ^ 0xa5a5a5a55a5a5a5a}
	r.next()
	var tags []string
	cur := src
	k := r.in(1, 3)
	for i := 0; i < k; i++ {
		// Not every operator applies to every source (no NULL check to
		// delete, no free to double); rotate through the list from a seeded
		// starting point until one takes.
		start := r.n(len(mutations))
		for off := 0; off < len(mutations); off++ {
			m := mutations[(start+off)%len(mutations)]
			next, tag := m(r, cur)
			if next == "" || next == cur {
				continue
			}
			cur = next
			tags = append(tags, tag)
			break
		}
	}
	return Info{Seed: seed, Source: cur, Bug: strings.Join(tags, ",")}
}
