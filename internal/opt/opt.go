// Package opt is the optimizer used for the native compilation pipeline. It
// exists to reproduce the paper's P2: optimizers reason with undefined-
// behaviour semantics, so they can delete the very accesses that constitute
// memory errors. Safe Sulong never runs these passes — it interprets the
// front end's unoptimized IR — while native binaries (and therefore ASan and
// Valgrind) see only what survives optimization.
//
// RunO0 models Clang's -O0 reality from the paper's case study 3 (Fig. 13):
// even with optimizations "disabled", the backend folds loads of constant
// globals with constant indices — including out-of-bounds ones.
//
// RunO3 models the -O3 pipeline with the specific passes the paper blames
// (Fig. 3): scalar promotion, constant folding, dead-store elimination on
// non-escaping objects, dead code elimination (including unused loads, legal
// under C's UB rules), and deletion of side-effect-free loops.
package opt

import (
	"repro/internal/ir"
)

// RunO0 applies the minimal folding that real -O0 back ends still perform.
func RunO0(m *ir.Module) {
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		foldConstGlobalLoads(m, f)
	}
}

// RunO3 applies the full pipeline.
func RunO3(m *ir.Module) {
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		Mem2Reg(f)
		FoldConstants(f)
		foldConstGlobalLoads(m, f)
		DeadStoreElim(f)
		DeadCodeElim(f)
		DeleteDeadLoops(f)
		DeadCodeElim(f)
	}
}

// regUses counts, for each register, every operand position that reads it.
func regUses(f *ir.Func) []int {
	uses := make([]int, f.NumRegs)
	see := func(o ir.Operand) {
		if o.Kind == ir.OperReg && o.Reg >= 0 && o.Reg < f.NumRegs {
			uses[o.Reg]++
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			see(in.A)
			see(in.B)
			see(in.C)
			see(in.Addr)
			see(in.Callee)
			for _, a := range in.Args {
				see(a)
			}
		}
	}
	return uses
}

// makeMove rewrites an instruction into a register move (a no-op bitcast),
// preserving the destination.
func makeMove(in *ir.Instr, src ir.Operand, ty ir.Type) {
	*in = ir.Instr{Op: ir.OpCast, Cast: ir.Bitcast, Dst: in.Dst, Ty: ty, Ty2: ty, A: src, Line: in.Line}
}

// makeNop turns an instruction into a move of zero into a fresh, otherwise
// unused register; DeadCodeElim sweeps it afterwards.
func makeNop(f *ir.Func, in *ir.Instr) {
	dst := in.Dst
	if dst < 0 {
		dst = f.NewReg()
	}
	*in = ir.Instr{Op: ir.OpCast, Cast: ir.Bitcast, Dst: dst, Ty: ir.I64, Ty2: ir.I64, A: ir.ConstInt(0, ir.I64), Line: in.Line}
}

// Mem2Reg promotes non-escaping scalar allocas to plain registers: loads
// become moves from a value register, stores become moves into it. Because
// SIR registers are mutable (non-SSA), no phi construction is needed.
//
// Promotion requires every use of the alloca's address register to be a
// load or store of exactly the alloca's element type; anything else (calls,
// geps, pointer arithmetic, mixed-width access) disqualifies it.
func Mem2Reg(f *ir.Func) {
	type cand struct {
		ty    ir.Type
		valid bool
	}
	cands := map[int]*cand{} // address register -> candidacy
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpAlloca {
				if _, isAgg := in.Ty.(*ir.ArrayType); isAgg {
					continue
				}
				if _, isSt := in.Ty.(*ir.StructType); isSt {
					continue
				}
				if _, hasCount := in.CountOp(); hasCount {
					continue
				}
				cands[in.Dst] = &cand{ty: in.Ty, valid: true}
			}
		}
	}
	if len(cands) == 0 {
		return
	}
	disqualify := func(o ir.Operand) {
		if o.Kind == ir.OperReg {
			if c, ok := cands[o.Reg]; ok {
				c.valid = false
			}
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoad:
				if in.Addr.Kind == ir.OperReg {
					if c, ok := cands[in.Addr.Reg]; ok && !ir.TypesEqual(c.ty, in.Ty) {
						c.valid = false
					}
					continue
				}
			case ir.OpStore:
				disqualify(in.A) // storing the address itself escapes it
				if in.Addr.Kind == ir.OperReg {
					if c, ok := cands[in.Addr.Reg]; ok && !ir.TypesEqual(c.ty, in.Ty) {
						c.valid = false
					}
					continue
				}
			case ir.OpAlloca:
				continue
			default:
				disqualify(in.A)
				disqualify(in.B)
				disqualify(in.C)
				disqualify(in.Addr)
				disqualify(in.Callee)
				for _, a := range in.Args {
					disqualify(a)
				}
			}
		}
	}
	// Rewrite: each promoted alloca gets a fresh value register.
	valueReg := map[int]int{}
	valueTy := map[int]ir.Type{}
	for addrReg, c := range cands {
		if c.valid {
			valueReg[addrReg] = f.NewReg()
			valueTy[addrReg] = c.ty
		}
	}
	if len(valueReg) == 0 {
		return
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpAlloca:
				if vr, ok := valueReg[in.Dst]; ok {
					// Initialize the value register to zero (the managed
					// engine zeroes allocas; keep behaviour identical).
					ty := valueTy[in.Dst]
					dst := in.Dst
					var init ir.Operand
					switch ty.(type) {
					case *ir.FloatType:
						init = ir.ConstFloat(0, ty)
					case *ir.PtrType:
						init = ir.Null()
					default:
						init = ir.ConstInt(0, ty)
					}
					*in = ir.Instr{Op: ir.OpCast, Cast: ir.Bitcast, Dst: vr, Ty: ty, Ty2: ty, A: init, Line: in.Line}
					_ = dst
				}
			case ir.OpLoad:
				if in.Addr.Kind == ir.OperReg {
					if vr, ok := valueReg[in.Addr.Reg]; ok {
						makeMove(in, ir.Reg(vr, valueTy[in.Addr.Reg]), valueTy[in.Addr.Reg])
					}
				}
			case ir.OpStore:
				if in.Addr.Kind == ir.OperReg {
					if vr, ok := valueReg[in.Addr.Reg]; ok {
						ty := valueTy[in.Addr.Reg]
						src := in.A
						*in = ir.Instr{Op: ir.OpCast, Cast: ir.Bitcast, Dst: vr, Ty: ty, Ty2: ty, A: src, Line: in.Line}
					}
				}
			}
		}
	}
}

// FoldConstants performs block-local constant folding and copy propagation.
func FoldConstants(f *ir.Func) {
	for _, b := range f.Blocks {
		known := map[int]ir.Operand{} // reg -> constant operand
		resolve := func(o ir.Operand) ir.Operand {
			if o.Kind == ir.OperReg {
				if c, ok := known[o.Reg]; ok {
					c.Ty = o.Ty
					return c
				}
			}
			return o
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			in.A = resolve(in.A)
			in.B = resolve(in.B)
			in.C = resolve(in.C)
			in.Addr = resolve(in.Addr)
			in.Callee = resolve(in.Callee)
			for k := range in.Args {
				in.Args[k] = resolve(in.Args[k])
			}
			if in.Dst >= 0 {
				delete(known, in.Dst)
			}
			switch in.Op {
			case ir.OpBin:
				if in.A.Kind == ir.OperConstInt && in.B.Kind == ir.OperConstInt && !in.Bin.IsFloatOp() {
					if v, ok := ir.EvalIntBin(in.Bin, intBits(in.Ty), in.A.Int, in.B.Int); ok {
						known[in.Dst] = ir.ConstInt(v, in.Ty)
						makeMove(in, ir.ConstInt(v, in.Ty), in.Ty)
					}
				} else if in.A.Kind == ir.OperConstFloat && in.B.Kind == ir.OperConstFloat && in.Bin.IsFloatOp() {
					v := ir.EvalFloatBin(in.Bin, intBits(in.Ty), in.A.Flt, in.B.Flt)
					known[in.Dst] = ir.ConstFloat(v, in.Ty)
					makeMove(in, ir.ConstFloat(v, in.Ty), in.Ty)
				}
			case ir.OpCmp:
				if in.A.Kind == ir.OperConstInt && in.B.Kind == ir.OperConstInt && !in.Pred.IsFloatPred() {
					r := ir.EvalIntCmp(in.Pred, intBits(in.Ty), in.A.Int, in.B.Int)
					v := int64(0)
					if r {
						v = 1
					}
					known[in.Dst] = ir.ConstInt(v, ir.I1)
					makeMove(in, ir.ConstInt(v, ir.I1), ir.I1)
				}
			case ir.OpCast:
				if in.Cast == ir.Bitcast && in.A.IsConst() {
					known[in.Dst] = in.A
				} else if in.A.Kind == ir.OperConstInt || in.A.Kind == ir.OperConstFloat {
					iv, fv, isF := ir.EvalCast(in.Cast, intBits(in.Ty), intBits(in.Ty2), in.A.Int, in.A.Flt)
					if in.Cast != ir.PtrToInt && in.Cast != ir.IntToPtr {
						if isF {
							known[in.Dst] = ir.ConstFloat(fv, in.Ty2)
							makeMove(in, ir.ConstFloat(fv, in.Ty2), in.Ty2)
						} else {
							known[in.Dst] = ir.ConstInt(iv, in.Ty2)
							makeMove(in, ir.ConstInt(iv, in.Ty2), in.Ty2)
						}
					}
				}
			case ir.OpCondBr:
				if in.A.Kind == ir.OperConstInt {
					target := in.Blk1
					if in.A.Int != 0 {
						target = in.Blk0
					}
					*in = ir.Instr{Op: ir.OpBr, Blk0: target, Line: in.Line}
				}
			}
		}
	}
}

// foldConstGlobalLoads replaces loads of `const` globals at constant offsets
// with their initializer values — including offsets that are out of bounds,
// in which case the load folds to zero and the bug is silently deleted
// (paper Fig. 13: Clang does this even at -O0).
func foldConstGlobalLoads(m *ir.Module, f *ir.Func) {
	for _, b := range f.Blocks {
		// reg -> (global, byte offset) for geps with constant indices
		addr := map[int]struct {
			g   *ir.Global
			off int64
		}{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpGEP:
				if in.Dst >= 0 {
					delete(addr, in.Dst)
				}
				if in.A.Kind != ir.OperConstInt {
					continue
				}
				if in.Addr.Kind == ir.OperGlobal {
					g := m.Global(in.Addr.Sym)
					if g != nil && g.IsConst {
						addr[in.Dst] = struct {
							g   *ir.Global
							off int64
						}{g, in.Stride * in.A.Int}
					}
				} else if in.Addr.Kind == ir.OperReg {
					if base, ok := addr[in.Addr.Reg]; ok {
						base.off += in.Stride * in.A.Int
						addr[in.Dst] = base
					}
				}
			case ir.OpLoad:
				if in.Addr.Kind == ir.OperGlobal {
					g := m.Global(in.Addr.Sym)
					if g != nil && g.IsConst {
						if v, ok := readConst(g, 0, in.Ty); ok {
							makeMove(in, v, in.Ty)
						}
					}
					continue
				}
				if in.Addr.Kind == ir.OperReg {
					if base, ok := addr[in.Addr.Reg]; ok {
						if v, ok2 := readConst(base.g, base.off, in.Ty); ok2 {
							makeMove(in, v, in.Ty)
						}
					}
				}
				if in.Dst >= 0 {
					delete(addr, in.Dst)
				}
			default:
				if in.Dst >= 0 {
					delete(addr, in.Dst)
				}
			}
		}
	}
}

// readConst evaluates a typed read of a constant global's initializer.
// Out-of-bounds offsets read as zero: the compiler has, at this point,
// erased the error (undefined behaviour makes any answer "correct").
func readConst(g *ir.Global, off int64, ty ir.Type) (ir.Operand, bool) {
	if _, isF := ty.(*ir.FloatType); isF {
		return ir.Operand{}, false // keep it simple: fold integers only
	}
	if _, isP := ty.(*ir.PtrType); isP {
		return ir.Operand{}, false
	}
	size := ty.Size()
	if off < 0 || off+size > g.Ty.Size() {
		return ir.ConstInt(0, ty), true // the out-of-bounds read "folds away"
	}
	bytes := make([]byte, g.Ty.Size())
	if !flattenConst(g.Init, g.Ty, bytes, 0) {
		return ir.Operand{}, false
	}
	var v uint64
	for i := int64(0); i < size; i++ {
		v |= uint64(bytes[off+i]) << (8 * uint(i))
	}
	return ir.ConstInt(ir.SignExtend(int64(v), int(size*8)), ty), true
}

// flattenConst serializes an initializer into bytes; pointer-valued
// constants make the global unfoldable.
func flattenConst(c ir.Const, ty ir.Type, out []byte, off int64) bool {
	switch v := c.(type) {
	case nil, ir.ConstZero:
		return true
	case ir.ConstIntVal:
		for i := int64(0); i < ty.Size(); i++ {
			out[off+i] = byte(uint64(v.V) >> (8 * uint(i)))
		}
		return true
	case ir.ConstBytes:
		copy(out[off:], v.Data)
		return true
	case ir.ConstArrayVal:
		at, ok := ty.(*ir.ArrayType)
		if !ok {
			return false
		}
		for i, el := range v.Elems {
			if !flattenConst(el, at.Elem, out, off+int64(i)*at.Elem.Size()) {
				return false
			}
		}
		return true
	case ir.ConstStructVal:
		st, ok := ty.(*ir.StructType)
		if !ok {
			return false
		}
		for i, el := range v.Fields {
			if !flattenConst(el, st.Fields[i].Ty, out, off+st.Fields[i].Offset) {
				return false
			}
		}
		return true
	}
	return false
}

func intBits(t ir.Type) int {
	switch v := t.(type) {
	case *ir.IntType:
		return v.Bits
	case *ir.FloatType:
		return v.Bits
	}
	return 64
}
