package opt

import "repro/internal/ir"

// DeadStoreElim removes stores to stack objects that are never read and
// whose address never escapes. This is the pass that erases the paper's
// Fig. 3 bug: the out-of-bounds store to the unused array disappears, so no
// downstream tool can observe it.
func DeadStoreElim(f *ir.Func) {
	// Address set rooted at each alloca: the alloca register plus every gep
	// derived from a register in the set.
	root := make([]int, f.NumRegs) // reg -> alloca dst reg + 1, 0 = none
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpAlloca {
				root[in.Dst] = in.Dst + 1
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpGEP && in.Addr.Kind == ir.OperReg && root[in.Addr.Reg] != 0 {
					if root[in.Dst] != root[in.Addr.Reg] {
						root[in.Dst] = root[in.Addr.Reg]
						changed = true
					}
				}
			}
		}
	}
	// loaded / escaped analysis per alloca root.
	loaded := map[int]bool{}
	escaped := map[int]bool{}
	note := func(o ir.Operand, esc bool) {
		if o.Kind == ir.OperReg && root[o.Reg] != 0 && esc {
			escaped[root[o.Reg]-1] = true
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoad:
				if in.Addr.Kind == ir.OperReg && root[in.Addr.Reg] != 0 {
					loaded[root[in.Addr.Reg]-1] = true
				}
			case ir.OpStore:
				note(in.A, true) // storing the pointer itself is an escape
			case ir.OpGEP:
				// base already tracked; index operand can't be a pointer
				note(in.A, true)
			case ir.OpAlloca:
			default:
				note(in.A, true)
				note(in.B, true)
				note(in.C, true)
				note(in.Addr, true)
				note(in.Callee, true)
				for _, a := range in.Args {
					note(a, true)
				}
			}
		}
	}
	// Delete stores whose target root is never loaded and never escapes.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpStore || in.Addr.Kind != ir.OperReg || root[in.Addr.Reg] == 0 {
				continue
			}
			r := root[in.Addr.Reg] - 1
			if !loaded[r] && !escaped[r] {
				makeNop(f, in)
			}
		}
	}
}

// DeadCodeElim removes pure instructions whose results are never used.
// Unused loads are deletable too: under C's semantics an invalid access is
// undefined behaviour, so the optimizer may assume it never happens — the
// precise reasoning that makes native-pipeline tools miss bugs.
func DeadCodeElim(f *ir.Func) {
	for {
		uses := regUses(f)
		removed := false
		for _, b := range f.Blocks {
			dst := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				if isPureValueOp(in.Op) && in.Dst >= 0 && uses[in.Dst] == 0 {
					removed = true
					continue
				}
				dst = append(dst, in)
			}
			b.Instrs = dst
		}
		if !removed {
			return
		}
	}
}

func producesValue(op ir.Opcode) bool {
	switch op {
	case ir.OpAlloca, ir.OpLoad, ir.OpBin, ir.OpCmp, ir.OpCast, ir.OpGEP, ir.OpSelect:
		return true
	}
	return false
}

func isPureValueOp(op ir.Opcode) bool {
	switch op {
	case ir.OpBin, ir.OpCmp, ir.OpCast, ir.OpGEP, ir.OpSelect, ir.OpAlloca, ir.OpLoad:
		return true
	}
	return false
}

// DeleteDeadLoops removes control-flow cycles that contain no observable
// effects (no stores, loads, calls, or returns). C compilers assume loop
// termination, so `for (i = 0; i < n; i++);` folds to nothing — even when
// the deleted body used to contain the program's only memory error.
func DeleteDeadLoops(f *ir.Func) {
	n := len(f.Blocks)
	succ := make([][]int, n)
	for i, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		switch t.Op {
		case ir.OpBr:
			succ[i] = []int{t.Blk0}
		case ir.OpCondBr:
			succ[i] = []int{t.Blk0, t.Blk1}
		case ir.OpSwitch:
			succ[i] = []int{t.Blk0}
			for _, c := range t.Cases {
				succ[i] = append(succ[i], c.Blk)
			}
		}
	}
	for _, scc := range sccs(succ) {
		inSCC := map[int]bool{}
		for _, b := range scc {
			inSCC[b] = true
		}
		if len(scc) == 1 {
			self := false
			for _, s := range succ[scc[0]] {
				if s == scc[0] {
					self = true
				}
			}
			if !self {
				continue
			}
		}
		pure := true
		exits := map[int]bool{}
		defined := map[int]bool{}
		for _, bi := range scc {
			for i := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[i]
				switch in.Op {
				case ir.OpStore, ir.OpCall, ir.OpRet, ir.OpLoad, ir.OpUnreachable, ir.OpAlloca:
					pure = false
				}
				if in.Dst >= 0 && producesValue(in.Op) {
					defined[in.Dst] = true
				}
			}
			for _, s := range succ[bi] {
				if !inSCC[s] {
					exits[s] = true
				}
			}
		}
		if !pure || len(exits) != 1 {
			continue
		}
		// A register written inside the loop and read outside is a live-out
		// value: the loop computes something, so it stays.
		liveOut := false
		for bi := range f.Blocks {
			if inSCC[bi] {
				continue
			}
			for i := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[i]
				for _, o := range []ir.Operand{in.A, in.B, in.C, in.Addr, in.Callee} {
					if o.Kind == ir.OperReg && defined[o.Reg] {
						liveOut = true
					}
				}
				for _, o := range in.Args {
					if o.Kind == ir.OperReg && defined[o.Reg] {
						liveOut = true
					}
				}
			}
		}
		if liveOut {
			continue
		}
		var exit int
		for e := range exits {
			exit = e
		}
		// Redirect every entry edge into the cycle straight to the exit.
		for bi := range f.Blocks {
			if inSCC[bi] {
				continue
			}
			t := f.Blocks[bi].Terminator()
			if t == nil {
				continue
			}
			redirect := func(blk *int) {
				if inSCC[*blk] {
					*blk = exit
				}
			}
			switch t.Op {
			case ir.OpBr, ir.OpCondBr, ir.OpSwitch:
				redirect(&t.Blk0)
				if t.Op == ir.OpCondBr {
					redirect(&t.Blk1)
				}
				for ci := range t.Cases {
					redirect(&t.Cases[ci].Blk)
				}
			}
		}
	}
}

// sccs computes strongly connected components (iterative Tarjan).
func sccs(succ [][]int) [][]int {
	n := len(succ)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var out [][]int
	next := 0

	type frame struct {
		v, ci int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		var callStack []frame
		callStack = append(callStack, frame{start, 0})
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			if fr.ci < len(succ[fr.v]) {
				w := succ[fr.v][fr.ci]
				fr.ci++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[fr.v] {
					low[fr.v] = index[w]
				}
				continue
			}
			v := fr.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				out = append(out, comp)
			}
		}
	}
	return out
}
