package opt

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func countOps(f *ir.Func, op ir.Opcode) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestMem2RegPromotesScalars(t *testing.T) {
	m := parse(t, `module "t"
func @f fn() i32 regs 5 {
entry:
  %r0 = alloca i32 name "x"
  store i32 41, %r0
  %r1 = load i32, %r0
  %r2 = add i32 %r1, 1
  ret i32 %r2
}
`)
	f := m.Func("f")
	Mem2Reg(f)
	if countOps(f, ir.OpLoad) != 0 || countOps(f, ir.OpStore) != 0 {
		t.Errorf("loads/stores remain after promotion:\n%s", ir.PrintFunc(f))
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestMem2RegSkipsEscaping(t *testing.T) {
	m := parse(t, `module "t"
declare @sink fn(ptr) void
func @f fn() i32 regs 4 {
entry:
  %r0 = alloca i32 name "x"
  call void &sink(ptr %r0) fixed 1
  %r1 = load i32, %r0
  ret i32 %r1
}
`)
	f := m.Func("f")
	Mem2Reg(f)
	if countOps(f, ir.OpAlloca) != 1 {
		t.Error("escaping alloca must not be promoted")
	}
}

func TestMem2RegSkipsMixedWidthAccess(t *testing.T) {
	m := parse(t, `module "t"
func @f fn() i32 regs 4 {
entry:
  %r0 = alloca i32 name "x"
  store i32 258, %r0
  %r1 = load i8, %r0
  %r2 = zext i8 %r1 to i32
  ret i32 %r2
}
`)
	f := m.Func("f")
	Mem2Reg(f)
	if countOps(f, ir.OpAlloca) != 1 {
		t.Error("mixed-width access must block promotion (bit reinterpretation)")
	}
}

func TestFoldConstantsAndBranches(t *testing.T) {
	m := parse(t, `module "t"
func @f fn() i32 regs 4 {
entry:
  %r0 = add i32 2, 3
  %r1 = cmp slt i32 %r0, 10
  condbr %r1, yes, no
yes:
  ret i32 1
no:
  ret i32 0
}
`)
	f := m.Func("f")
	FoldConstants(f)
	if countOps(f, ir.OpCondBr) != 0 {
		t.Errorf("constant branch not folded:\n%s", ir.PrintFunc(f))
	}
}

func TestDeadStoreElimRemovesFig3Stores(t *testing.T) {
	m := parse(t, `module "t"
func @f fn(i64) i32 regs 6 {
entry:
  %r1 = alloca [10 x i32] name "arr"
  br cond
cond:
  %r2 = cmp slt i64 %r0, 10
  condbr %r2, body, done
body:
  %r3 = gep %r1, 4, %r0
  store i32 7, %r3
  br cond
done:
  ret i32 0
}
`)
	f := m.Func("f")
	DeadStoreElim(f)
	DeadCodeElim(f)
	if countOps(f, ir.OpStore) != 0 {
		t.Errorf("dead store to unused array survives:\n%s", ir.PrintFunc(f))
	}
}

func TestDeadStoreElimKeepsLoadedArrays(t *testing.T) {
	m := parse(t, `module "t"
func @f fn() i32 regs 5 {
entry:
  %r0 = alloca [4 x i32] name "arr"
  %r1 = gep %r0, 4, 1
  store i32 7, %r1
  %r2 = load i32, %r1
  ret i32 %r2
}
`)
	f := m.Func("f")
	DeadStoreElim(f)
	if countOps(f, ir.OpStore) != 1 {
		t.Error("store to a loaded array must stay")
	}
}

func TestDeadCodeElimDeletesUnusedLoads(t *testing.T) {
	m := parse(t, `module "t"
global @g [4 x i32] = zero
func @f fn() i32 regs 4 {
entry:
  %r0 = gep @g, 4, 99
  %r1 = load i32, %r0
  ret i32 0
}
`)
	f := m.Func("f")
	DeadCodeElim(f)
	if countOps(f, ir.OpLoad) != 0 {
		t.Error("unused load should be deleted under native UB semantics")
	}
}

func TestDeleteDeadLoopsRemovesEmptyLoop(t *testing.T) {
	m := parse(t, `module "t"
func @f fn(i64) i32 regs 6 {
entry:
  %r1 = add i64 0, 0
  br cond
cond:
  %r2 = cmp slt i64 %r1, %r0
  condbr %r2, body, done
body:
  %r1 = add i64 %r1, 1
  br cond
done:
  ret i32 0
}
`)
	f := m.Func("f")
	DeleteDeadLoops(f)
	// The entry edge must now bypass the loop.
	term := f.Blocks[0].Terminator()
	if term.Blk0 != f.BlockIndex("done") {
		t.Errorf("entry should branch straight to done:\n%s", ir.PrintFunc(f))
	}
}

func TestDeleteDeadLoopsKeepsLiveOutValues(t *testing.T) {
	m := parse(t, `module "t"
func @f fn(i64) i64 regs 6 {
entry:
  %r1 = add i64 0, 0
  br cond
cond:
  %r2 = cmp slt i64 %r1, %r0
  condbr %r2, body, done
body:
  %r1 = add i64 %r1, 1
  br cond
done:
  ret i64 %r1
}
`)
	f := m.Func("f")
	DeleteDeadLoops(f)
	term := f.Blocks[0].Terminator()
	if term.Blk0 == f.BlockIndex("done") {
		t.Error("loop with live-out value must not be deleted")
	}
}

func TestFoldConstGlobalLoads(t *testing.T) {
	m := parse(t, `module "t"
global @tab const [3 x i32] = array [int 11, int 22, int 33]
func @in fn() i32 regs 3 {
entry:
  %r0 = gep @tab, 4, 1
  %r1 = load i32, %r0
  ret i32 %r1
}
func @oob fn() i32 regs 3 {
entry:
  %r0 = gep @tab, 4, 7
  %r1 = load i32, %r0
  ret i32 %r1
}
`)
	RunO0(m)
	inF, oobF := m.Func("in"), m.Func("oob")
	if countOps(inF, ir.OpLoad) != 0 {
		t.Errorf("in-bounds const load not folded:\n%s", ir.PrintFunc(inF))
	}
	if countOps(oobF, ir.OpLoad) != 0 {
		t.Errorf("OOB const load should also fold (the Fig. 13 bug deletion):\n%s", ir.PrintFunc(oobF))
	}
	// The folded value of the in-bounds load must be the initializer value.
	found := false
	for _, b := range inF.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpCast && in.Cast == ir.Bitcast && in.A.Kind == ir.OperConstInt && in.A.Int == 22 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("folded value should be 22:\n%s", ir.PrintFunc(inF))
	}
}

func TestFoldConstGlobalSkipsMutable(t *testing.T) {
	m := parse(t, `module "t"
global @tab [3 x i32] = array [int 1, int 2, int 3]
func @f fn() i32 regs 3 {
entry:
  %r0 = gep @tab, 4, 0
  %r1 = load i32, %r0
  ret i32 %r1
}
`)
	RunO0(m)
	if countOps(m.Func("f"), ir.OpLoad) != 1 {
		t.Error("non-const global loads must never fold")
	}
}

func TestRunO3PreservesVerification(t *testing.T) {
	m := parse(t, `module "t"
declare @use fn(i32) void
func @f fn(i64) i32 regs 10 {
entry:
  %r1 = alloca i32 name "x"
  store i32 5, %r1
  %r2 = load i32, %r1
  %r3 = add i32 %r2, 2
  call void &use(i32 %r3) fixed 1
  br cond
cond:
  %r4 = cmp slt i64 %r0, 3
  condbr %r4, body, done
body:
  %r0 = add i64 %r0, 1
  br cond
done:
  ret i32 0
}
`)
	RunO3(m)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("O3 output fails verification: %v\n%s", err, ir.Print(m))
	}
	if !strings.Contains(ir.PrintFunc(m.Func("f")), "call") {
		t.Error("call must survive optimization")
	}
}

func TestSCCs(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (cycle {1,2}), 2 -> 3
	succ := [][]int{{1}, {2}, {1, 3}, {}}
	comps := sccs(succ)
	var cycle []int
	for _, c := range comps {
		if len(c) == 2 {
			cycle = c
		}
	}
	if cycle == nil {
		t.Fatalf("cycle {1,2} not found: %v", comps)
	}
	seen := map[int]bool{cycle[0]: true, cycle[1]: true}
	if !seen[1] || !seen[2] {
		t.Errorf("wrong SCC: %v", cycle)
	}
}

// TestPipelineOnLargeModule is a safety net: running the full -O3 pipeline
// over a big generated module must preserve verification.
func TestPipelineOnLargeModule(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("module \"big\"\n")
	for i := 0; i < 40; i++ {
		sb.WriteString(ir.PrintFunc(makeChainFunc(i)))
	}
	m, err := ir.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	RunO3(m)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("pipeline broke verification: %v", err)
	}
}

func makeChainFunc(seed int) *ir.Func {
	f := &ir.Func{Name: "chain" + itoa(seed), Sig: &ir.FuncType{Ret: ir.I64, Params: []ir.Type{ir.I64}}}
	f.NumRegs = 1
	entry := &ir.Block{Name: "entry"}
	prev := 0
	for i := 0; i < 20; i++ {
		dst := f.NewReg()
		entry.Instrs = append(entry.Instrs, ir.Instr{
			Op: ir.OpBin, Dst: dst, Ty: ir.I64, Bin: ir.BinOp(i % 3),
			A: ir.Reg(prev, ir.I64), B: ir.ConstInt(int64(seed+i), ir.I64),
		})
		prev = dst
	}
	entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpRet, Ty: ir.I64, A: ir.Reg(prev, ir.I64)})
	f.Blocks = []*ir.Block{entry}
	return f
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	out := ""
	for v > 0 {
		out = string(rune('0'+v%10)) + out
		v /= 10
	}
	return out
}
