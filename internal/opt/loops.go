// Loop discovery shared by the tier-2 hoisting pass and the tier-1 OSR
// compiler. Both consumers need the same answer to the same question — "which
// blocks form a loop, and which single block is its header?" — and keeping
// one SCC-based implementation means an on-stack-replacement entry point is
// requested for exactly the headers the optimizer reasons about.
package opt

import (
	"repro/internal/ir"
)

// Loop is one single-header natural loop: the header block plus every block
// of the strongly connected component it dominates the entry of.
type Loop struct {
	// Header is the unique block inside the loop with predecessors outside
	// it — the block a back edge targets, and the only sound OSR entry point.
	Header int
	// Blocks lists the member blocks (including Header), in block order.
	Blocks []int
}

// Successors returns the CFG successor lists of f's blocks.
func Successors(f *ir.Func) [][]int {
	succ := make([][]int, len(f.Blocks))
	for i, b := range f.Blocks {
		t := b.Terminator()
		switch t.Op {
		case ir.OpBr:
			succ[i] = append(succ[i], t.Blk0)
		case ir.OpCondBr:
			succ[i] = append(succ[i], t.Blk0, t.Blk1)
		case ir.OpSwitch:
			succ[i] = append(succ[i], t.Blk0)
			for _, c := range t.Cases {
				succ[i] = append(succ[i], c.Blk)
			}
		}
	}
	return succ
}

// Loops returns f's single-header loops: every non-trivial strongly
// connected component (or self-looping block) that is entered through
// exactly one block. Multi-entry components — only constructible with goto —
// are skipped: neither hoisting (no unique preheader position) nor OSR (no
// unique replacement point) can handle them. The implicit function-entry
// edge counts as an outside predecessor of block 0, so a component
// containing the entry block is single-header only if no other member has
// outside predecessors.
func Loops(f *ir.Func) []Loop {
	succ := Successors(f)
	pred := make([][]int, len(succ))
	for i, ss := range succ {
		for _, s := range ss {
			pred[s] = append(pred[s], i)
		}
	}

	var loops []Loop
	for _, comp := range sccs(succ) {
		if len(comp) == 1 {
			self := false
			for _, s := range succ[comp[0]] {
				if s == comp[0] {
					self = true
				}
			}
			if !self {
				continue
			}
		}
		inLoop := map[int]bool{}
		for _, b := range comp {
			inLoop[b] = true
		}
		header := -1
		multi := false
		for _, b := range comp {
			outside := false
			for _, p := range pred[b] {
				if !inLoop[p] {
					outside = true
				}
			}
			if b == 0 {
				// The implicit entry edge enters block 0 from outside any loop.
				outside = true
			}
			if outside {
				if header >= 0 && header != b {
					multi = true
				}
				header = b
			}
		}
		if header < 0 || multi {
			continue
		}
		loops = append(loops, Loop{Header: header, Blocks: comp})
	}
	return loops
}

// IsLoopHeader reports whether block bi heads a single-header loop of f —
// the validity check for an OSR entry request derived from a dynamically
// observed back edge (a backward goto that is not a loop fails it).
func IsLoopHeader(f *ir.Func, bi int) bool {
	for _, l := range Loops(f) {
		if l.Header == bi {
			return true
		}
	}
	return false
}
