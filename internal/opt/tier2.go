// Tier-2 optimization passes for the tier-1 dynamic compiler (internal/jit).
//
// These passes are *safety-preserving* in the paper's sense (§4.2: the JIT
// "optimizes based on safe semantics [and] cannot optimize away invalid
// accesses"): they may rewrite how a value is computed, move a pure
// computation earlier, or merge adjacent checks — but a check can never
// disappear, and a faulting access must still fault at the same instruction
// with the same diagnostic. The legality rule, enforced by the full-corpus
// tier-parity suite, is:
//
//	checks may move earlier or merge, never disappear.
//
// Because the execution governor charges fuel per instruction in tier 0, the
// passes also maintain a weight account (Weights): every tier-0 instruction
// carries weight 1, and any transformation that removes an instruction folds
// its weight into the next instruction that still executes. The compiled
// block's cost is the sum of its weights, so Stats.Steps — and the exact
// step at which Config.MaxSteps fires — stay byte-identical across tiers
// even when tier 2 has restructured the code.
package opt

import (
	"repro/internal/ir"
)

// Weights carries, per block and per instruction, the number of tier-0
// interpreter steps the instruction accounts for. A freshly built function
// has weight 1 everywhere. Synthesized instructions (loop preheaders) carry
// weight 0: the interpreter never executes them.
//
// Folding direction: tier 0 charges a step *before* executing an
// instruction, so when an instruction is deleted its weight must attach to
// the next surviving instruction in the block (or the terminator). That way
// a fault at any surviving instruction refunds exactly the weights of the
// instructions that had not yet started in tier-0 order.
type Weights [][]int64

// NewWeights builds the identity weight account for f: one step per
// instruction, mirroring the tier-0 interpreter.
func NewWeights(f *ir.Func) Weights {
	w := make(Weights, len(f.Blocks))
	for i, b := range f.Blocks {
		bw := make([]int64, len(b.Instrs))
		for j := range bw {
			bw[j] = 1
		}
		w[i] = bw
	}
	return w
}

// BlockCost returns the total weight of block bi — the fuel a tier-1
// execution of the block must charge.
func (w Weights) BlockCost(bi int) int64 {
	var n int64
	for _, x := range w[bi] {
		n += x
	}
	return n
}

// isMoveCast reports whether an instruction is a pure register/constant move
// in the canonical value domain: bitcasts, sign extensions (register values
// are already stored sign-extended to 64 bits, so SExt is the identity — the
// same equivalence the tier-1 lowering has always used), and zero extensions
// from i1 (an i1 value is 0 or 1; zero-extending it changes nothing).
func isMoveCast(in *ir.Instr) bool {
	// A cast carrying a declared C type is a *checked* cast — the engines
	// validate it against the pointee's effective type — never a pure move.
	if in.Op != ir.OpCast || in.Dst < 0 || in.CType != "" {
		return false
	}
	switch in.Cast {
	case ir.Bitcast, ir.SExt:
		return true
	case ir.ZExt:
		if it, ok := in.Ty.(*ir.IntType); ok && it.Bits == 1 {
			return true
		}
	}
	return false
}

// CopyPropagate performs block-local copy propagation on the mutable SIR
// registers: uses of a register that currently holds a copy of another
// register (or a constant) read the source directly. It also normalizes
// identity casts (SExt, ZExt-from-i1) into plain moves and rewrites the
// frontend's bool-materialization chain (cmp → zext → cmp ne 0) into moves,
// so the later sweep can retire the dead intermediates.
//
// The pass only rewrites operands to value-identical sources, so every
// check still sees the same pointer and the same index: a faulting access
// faults at the same instruction with the same diagnostic.
func CopyPropagate(f *ir.Func) {
	for _, b := range f.Blocks {
		known := map[int]ir.Operand{} // reg -> current value source (reg or const)
		isBool := map[int]bool{}      // reg -> definitely holds 0/1
		resolve := func(o ir.Operand) ir.Operand {
			if o.Kind == ir.OperReg {
				if c, ok := known[o.Reg]; ok {
					c.Ty = o.Ty
					return c
				}
			}
			return o
		}
		// kill invalidates everything that depends on register r.
		kill := func(r int) {
			delete(known, r)
			for k, v := range known {
				if v.Kind == ir.OperReg && v.Reg == r {
					delete(known, k)
				}
			}
			delete(isBool, r)
		}
		boolSource := func(o ir.Operand) bool {
			switch o.Kind {
			case ir.OperReg:
				return isBool[o.Reg]
			case ir.OperConstInt:
				return o.Int == 0 || o.Int == 1
			}
			return false
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			in.A = resolve(in.A)
			in.B = resolve(in.B)
			in.C = resolve(in.C)
			in.Addr = resolve(in.Addr)
			in.Callee = resolve(in.Callee)
			for k := range in.Args {
				in.Args[k] = resolve(in.Args[k])
			}

			// Normalize identity casts to moves so they participate in copy
			// propagation and dead-move sweeping.
			if isMoveCast(in) && in.Cast != ir.Bitcast {
				makeMove(in, in.A, in.Ty2)
			}
			// Bool-chain peephole: `cmp ne (0/1-valued x), 0` is x itself.
			if in.Op == ir.OpCmp && in.Pred == ir.Ne &&
				in.B.Kind == ir.OperConstInt && in.B.Int == 0 &&
				!ir.IsPtr(in.Ty) && boolSource(in.A) {
				makeMove(in, in.A, ir.I1)
			}

			if in.Dst < 0 {
				continue
			}
			// Compute source booleanness before the kill: a self-move keeps
			// its own (pre-redefinition) classification.
			srcBool := in.Op == ir.OpCast && in.Cast == ir.Bitcast && boolSource(in.A)
			kill(in.Dst)
			switch {
			case in.Op == ir.OpCast && in.Cast == ir.Bitcast && in.CType == "" &&
				(in.A.Kind == ir.OperReg || in.A.Kind == ir.OperConstInt || in.A.Kind == ir.OperConstFloat):
				if !(in.A.Kind == ir.OperReg && in.A.Reg == in.Dst) {
					known[in.Dst] = in.A
				}
				if srcBool {
					isBool[in.Dst] = true
				}
			case in.Op == ir.OpCmp:
				isBool[in.Dst] = true
			}
		}
	}
}

// CSEAddresses merges block-local redundant address computations: two GEPs
// with the same base, stride, and index (none redefined in between) compute
// the same pointer, so the second becomes a move of the first. Address
// *computation* is pure in the managed model — pointer arithmetic never
// traps, only dereferencing does (paper Fig. 6) — so merging it cannot move
// or mask a check; it just lets consecutive accesses share one base
// register, which is what makes the lowering's coalesced range checks
// (internal/jit) match more often.
func CSEAddresses(f *ir.Func) {
	type gepKey struct {
		addrKind ir.OperandKind
		addrReg  int
		addrSym  string
		stride   int64
		idxKind  ir.OperandKind
		idxReg   int
		idxInt   int64
	}
	keyReads := func(k gepKey, r int) bool {
		return (k.addrKind == ir.OperReg && k.addrReg == r) ||
			(k.idxKind == ir.OperReg && k.idxReg == r)
	}
	for _, b := range f.Blocks {
		avail := map[gepKey]int{} // key -> register holding the result
		invalidate := func(r int) {
			for k, v := range avail {
				if v == r || keyReads(k, r) {
					delete(avail, k)
				}
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpGEP && in.Dst >= 0 &&
				(in.Addr.Kind == ir.OperReg || in.Addr.Kind == ir.OperGlobal) &&
				(in.A.Kind == ir.OperReg || in.A.Kind == ir.OperConstInt) {
				k := gepKey{
					addrKind: in.Addr.Kind, addrReg: in.Addr.Reg, addrSym: in.Addr.Sym,
					stride:  in.Stride,
					idxKind: in.A.Kind, idxReg: in.A.Reg, idxInt: in.A.Int,
				}
				if prev, ok := avail[k]; ok && prev != in.Dst {
					makeMove(in, ir.Reg(prev, ir.BytePtr), ir.BytePtr)
					invalidate(in.Dst)
					continue
				}
				invalidate(in.Dst)
				if !keyReads(k, in.Dst) { // r = gep r, …: result key is stale
					avail[k] = in.Dst
				}
				continue
			}
			if in.Dst >= 0 {
				invalidate(in.Dst)
			}
		}
	}
}

// SweepDeadMoves removes register moves (bitcasts) whose destination is
// never read, folding each removed instruction's weight into the next
// surviving instruction so tier-1 fuel accounting stays byte-identical to
// tier 0. Moves are pure by construction, so removing an unread one cannot
// erase a check — this is the only tier-2 pass that deletes instructions,
// and it only ever deletes moves.
func SweepDeadMoves(f *ir.Func, w Weights) {
	uses := regUses(f)
	for bi, b := range f.Blocks {
		bw := w[bi]
		dst := b.Instrs[:0]
		dw := bw[:0]
		var carry int64
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op == ir.OpCast && in.Cast == ir.Bitcast && in.CType == "" && in.Dst >= 0 && in.Dst < len(uses) &&
				uses[in.Dst] == 0 && len(b.Instrs) > 1 {
				// Weight attaches to the next surviving instruction; the
				// terminator is never a move, so a carrier always exists.
				carry += bw[i]
				continue
			}
			dst = append(dst, in)
			dw = append(dw, bw[i]+carry)
			carry = 0
		}
		b.Instrs = dst
		w[bi] = dw
	}
}

// HoistLoopInvariants moves loop-invariant *computations* — never checks,
// never memory accesses — into a synthesized preheader. Only pure,
// non-trapping operations qualify: address computation (GEP), non-dividing
// arithmetic, comparisons, casts, and selects whose operands are constants
// or registers never defined inside the loop.
//
// The hoisted instruction computes into a fresh register in the preheader
// (weight 0 — tier 0 never executes that block), and the original
// instruction becomes a move from that register carrying its original
// weight, so the loop charges the same fuel on every iteration and every
// check that *consumes* the hoisted value still runs, in place, on the same
// values. This is the "hoist the computation feeding a check, never the
// check" half of the tier-2 legality rule: a faulting access still faults
// on its own iteration, at its own line, with its own diagnostic.
//
// It returns the weight account re-synchronized with the (possibly grown)
// block list.
func HoistLoopInvariants(f *ir.Func, w Weights) Weights {
	// Loop discovery is shared with the tier-1 OSR compiler (Loops): both
	// must agree on what a single-header loop is and which block heads it.
	for _, loop := range Loops(f) {
		comp := loop.Blocks
		// Never the entry block: its implicit incoming edge cannot be
		// retargeted to a preheader.
		header := loop.Header
		if header <= 0 {
			continue
		}
		inLoop := map[int]bool{}
		for _, b := range comp {
			inLoop[b] = true
		}

		// Registers defined anywhere inside the loop are not invariant.
		defined := map[int]bool{}
		for _, bi := range comp {
			for i := range f.Blocks[bi].Instrs {
				if d := f.Blocks[bi].Instrs[i].Dst; d >= 0 {
					defined[d] = true
				}
			}
		}
		invariant := func(o ir.Operand) bool {
			if o.Kind == ir.OperReg {
				return !defined[o.Reg]
			}
			return true
		}

		var hoisted []ir.Instr
		const maxHoist = 32
		for _, bi := range comp {
			b := f.Blocks[bi]
			for i := 0; i < len(b.Instrs)-1 && len(hoisted) < maxHoist; i++ {
				in := &b.Instrs[i]
				if in.Dst < 0 {
					continue
				}
				ok := false
				switch in.Op {
				case ir.OpGEP:
					ok = invariant(in.Addr) && invariant(in.A)
				case ir.OpBin:
					switch in.Bin {
					case ir.SDiv, ir.UDiv, ir.SRem, ir.URem:
						// Trapping: a divide-by-zero must fire inside the
						// loop, on the iteration that executes it.
					default:
						ok = invariant(in.A) && invariant(in.B)
					}
				case ir.OpCmp:
					ok = invariant(in.A) && invariant(in.B)
				case ir.OpCast:
					// Checked casts are checks, not computations: they must
					// fire on their own iteration for the exact diagnostic.
					ok = in.CType == "" && invariant(in.A)
				case ir.OpSelect:
					ok = invariant(in.A) && invariant(in.B) && invariant(in.C)
				}
				if !ok {
					continue
				}
				vr := f.NewReg()
				hi := *in
				hi.Dst = vr
				hoisted = append(hoisted, hi)
				var mvTy ir.Type = ir.I64
				switch {
				case in.Op == ir.OpGEP:
					mvTy = ir.BytePtr
				case in.Op == ir.OpCmp:
					mvTy = ir.I1
				case in.Op == ir.OpCast && in.Ty2 != nil:
					mvTy = in.Ty2
				case in.Ty != nil:
					mvTy = in.Ty
				}
				makeMove(in, ir.Reg(vr, mvTy), mvTy)
			}
		}
		if len(hoisted) == 0 {
			continue
		}

		// Synthesize the preheader: hoisted computations then a jump to the
		// header, all weight 0 (tier 0 never executes this block).
		ph := &ir.Block{Name: "preheader." + f.Blocks[header].Name}
		ph.Instrs = append(ph.Instrs, hoisted...)
		ph.Instrs = append(ph.Instrs, ir.Instr{Op: ir.OpBr, Dst: -1, Blk0: header})
		phIdx := len(f.Blocks)
		f.Blocks = append(f.Blocks, ph)

		// Retarget every loop entry edge (from outside the SCC) to the
		// preheader. Back edges keep jumping straight to the header.
		for bi := 0; bi < phIdx; bi++ {
			if inLoop[bi] {
				continue
			}
			t := f.Blocks[bi].Terminator()
			switch t.Op {
			case ir.OpBr:
				if t.Blk0 == header {
					t.Blk0 = phIdx
				}
			case ir.OpCondBr:
				if t.Blk0 == header {
					t.Blk0 = phIdx
				}
				if t.Blk1 == header {
					t.Blk1 = phIdx
				}
			case ir.OpSwitch:
				if t.Blk0 == header {
					t.Blk0 = phIdx
				}
				for ci := range t.Cases {
					if t.Cases[ci].Blk == header {
						t.Cases[ci].Blk = phIdx
					}
				}
			}
		}
	}
	// Extend the weight account to cover the synthesized blocks.
	for len(w) < len(f.Blocks) {
		w = append(w, make([]int64, len(f.Blocks[len(w)].Instrs)))
	}
	return w
}
