/* ctype.c — Safe Sulong libc. */
#include <ctype.h>

int isdigit(int c) {
    return c >= '0' && c <= '9';
}

int isalpha(int c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

int isalnum(int c) {
    return isalpha(c) || isdigit(c);
}

int isspace(int c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f';
}

int isupper(int c) {
    return c >= 'A' && c <= 'Z';
}

int islower(int c) {
    return c >= 'a' && c <= 'z';
}

int isxdigit(int c) {
    return isdigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

int ispunct(int c) {
    return c > ' ' && c < 127 && !isalnum(c);
}

int isprint(int c) {
    return c >= ' ' && c < 127;
}

int toupper(int c) {
    if (islower(c)) {
        return c - 'a' + 'A';
    }
    return c;
}

int tolower(int c) {
    if (isupper(c)) {
        return c - 'A' + 'a';
    }
    return c;
}
