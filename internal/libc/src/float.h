/* float.h — Safe Sulong libc. */
#ifndef _FLOAT_H
#define _FLOAT_H

#define FLT_EPSILON 1.19209290e-07f
#define DBL_EPSILON 2.2204460492503131e-16
#define FLT_MAX 3.402823466e+38f
#define DBL_MAX 1.7976931348623158e+308
#define FLT_MIN 1.175494351e-38f
#define DBL_MIN 2.2250738585072014e-308
#define DBL_DIG 15
#define FLT_DIG 6

#endif
