/* stdarg.h — Safe Sulong libc.
 *
 * This is the paper's Figure 9 verbatim (modulo naming): variadic arguments
 * are materialized by the engine as managed cells; va_start mallocs a
 * counter + pointer-array struct and fills it via the engine's
 * count_varargs/get_vararg entry points; va_arg dereferences the next cell
 * with the user-supplied type. Reading past the last argument is an
 * out-of-bounds access to the malloc'ed args array, and reading a cell with
 * a wider type than the argument is an out-of-bounds read of the cell —
 * which is exactly how Safe Sulong detects format-string bugs.
 */
#ifndef _STDARG_H
#define _STDARG_H

int   __ss_count_varargs(void);
void *__ss_get_vararg(int i);
void *malloc(unsigned long size);
void  free(void *ptr);

struct __varargs {
    int counter;
    void **args;
};

#define va_list struct __varargs *

#define va_start(ap, last) \
    do { \
        ap = (va_list) malloc(sizeof(struct __varargs)); \
        ap->args = (void **) malloc(sizeof(void *) * __ss_count_varargs()); \
        for (ap->counter = __ss_count_varargs() - 1; \
             ap->counter != -1; \
             ap->counter--) { \
            ap->args[ap->counter] = __ss_get_vararg(ap->counter); \
        } \
        ap->counter = 0; \
    } while (0)

#define va_arg(ap, type) (*((type *)(ap->args[ap->counter++])))

#define va_end(ap) \
    do { \
        free(ap->args); \
        free(ap); \
        ap = NULL; \
    } while (0)

#ifndef NULL
#define NULL ((void*)0)
#endif

#endif
