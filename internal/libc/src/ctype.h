/* ctype.h — Safe Sulong libc. */
#ifndef _CTYPE_H
#define _CTYPE_H

int isdigit(int c);
int isalpha(int c);
int isalnum(int c);
int isspace(int c);
int isupper(int c);
int islower(int c);
int isxdigit(int c);
int ispunct(int c);
int isprint(int c);
int toupper(int c);
int tolower(int c);

#endif
