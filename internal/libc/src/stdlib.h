/* stdlib.h — Safe Sulong libc. malloc/free family are engine builtins
 * backed by managed objects (paper §3.3); the rest is C. */
#ifndef _STDLIB_H
#define _STDLIB_H

#include <stddef.h>

void *malloc(size_t size);
void *calloc(size_t nmemb, size_t size);
void *realloc(void *ptr, size_t size);
void free(void *ptr);

void exit(int status);
void abort(void);

int atoi(const char *s);
long atol(const char *s);
double atof(const char *s);
long strtol(const char *s, char **endptr, int base);
double strtod(const char *s, char **endptr);

int abs(int x);
long labs(long x);

int rand(void);
void srand(unsigned int seed);
#define RAND_MAX 2147483647

void qsort(void *base, size_t nmemb, size_t size,
           int (*cmp)(const void *, const void *));
void *bsearch(const void *key, const void *base, size_t nmemb, size_t size,
              int (*cmp)(const void *, const void *));

char *getenv(const char *name);

#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1

#endif
