/* assert.h — Safe Sulong libc. */
#ifndef _ASSERT_H
#define _ASSERT_H

void abort(void);
int printf(const char *fmt, ...);

#define assert(x) \
    do { \
        if (!(x)) { \
            printf("assertion failed\n"); \
            abort(); \
        } \
    } while (0)

#endif
