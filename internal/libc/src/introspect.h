/* introspect.h — Safe Sulong libc: dynamic object introspection.
 *
 * These builtins expose the engine's per-object metadata to the guest
 * ("Introspection for C"): allocation size, remaining capacity from a
 * pointer, and the effective (declared or cast-adopted) C type. On the
 * managed engine the answers are exact; on the native family they are
 * best-effort from the allocator and the type mirror, with documented
 * don't-know values: _size_of_object returns -1, _bounds_of returns 0,
 * and _type_of returns "unknown" when the engine cannot tell.
 *
 * Programs opt in with #include <introspect.h>; the declarations alone
 * switch the native machine's type mirror on. */
#ifndef _INTROSPECT_H
#define _INTROSPECT_H

/* Size in bytes of the allocation containing p, or -1 if unknown/NULL. */
long _size_of_object(void *p);

/* Bytes remaining from p to the end of its allocation (0 when unknown,
 * NULL, freed, or p already past the end). */
long _bounds_of(void *p);

/* Effective C type name of the allocation containing p: "null",
 * "function", a declared type like "struct point", or "unknown". */
char *_type_of(void *p);

#endif
