/* string.h — Safe Sulong libc. */
#ifndef _STRING_H
#define _STRING_H

#include <stddef.h>

size_t strlen(const char *s);
char *strcpy(char *dst, const char *src);
char *strncpy(char *dst, const char *src, size_t n);
char *strcat(char *dst, const char *src);
char *strncat(char *dst, const char *src, size_t n);
int strcmp(const char *a, const char *b);
int strncmp(const char *a, const char *b, size_t n);
char *strchr(const char *s, int c);
char *strrchr(const char *s, int c);
char *strstr(const char *haystack, const char *needle);
char *strtok(char *s, const char *delim);
char *strdup(const char *s);
size_t strspn(const char *s, const char *accept);
size_t strcspn(const char *s, const char *reject);

void *memcpy(void *dst, const void *src, size_t n);
void *memmove(void *dst, const void *src, size_t n);
void *memset(void *s, int c, size_t n);
int memcmp(const void *a, const void *b, size_t n);
void *memchr(const void *s, int c, size_t n);

#endif
