/* stdio.h — Safe Sulong libc. FILE handles are opaque tokens; only the
 * standard streams exist (the engine merges stderr into stdout). */
#ifndef _STDIO_H
#define _STDIO_H

#include <stddef.h>
#include <stdarg.h>

typedef int FILE;

#define stdin  ((FILE *)1)
#define stdout ((FILE *)2)
#define stderr ((FILE *)3)

#define EOF (-1)

int putchar(int c);
int getchar(void);
int puts(const char *s);
char *gets(char *s);
char *fgets(char *s, int size, FILE *stream);
int fputc(int c, FILE *stream);
int fputs(const char *s, FILE *stream);
int fgetc(FILE *stream);
int ungetc(int c, FILE *stream);

int printf(const char *fmt, ...);
int fprintf(FILE *stream, const char *fmt, ...);
int sprintf(char *buf, const char *fmt, ...);
int snprintf(char *buf, size_t size, const char *fmt, ...);
int vprintf(const char *fmt, va_list ap);

int scanf(const char *fmt, ...);
int fscanf(FILE *stream, const char *fmt, ...);
int sscanf(const char *s, const char *fmt, ...);

size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream);
size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);
FILE *fopen(const char *path, const char *mode);
int fclose(FILE *stream);
int fflush(FILE *stream);

#endif
