/* stdlib.c — Safe Sulong libc. malloc/calloc/realloc/free/exit/abort are
 * engine builtins; everything else here is plain C, interpreted managed. */
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

int atoi(const char *s) {
    return (int)atol(s);
}

long atol(const char *s) {
    long v = 0;
    int neg = 0;
    while (isspace(*s)) {
        s++;
    }
    if (*s == '-') {
        neg = 1;
        s++;
    } else if (*s == '+') {
        s++;
    }
    while (isdigit(*s)) {
        v = v * 10 + (*s - '0');
        s++;
    }
    return neg ? -v : v;
}

long strtol(const char *s, char **endptr, int base) {
    long v = 0;
    int neg = 0;
    while (isspace(*s)) {
        s++;
    }
    if (*s == '-') {
        neg = 1;
        s++;
    } else if (*s == '+') {
        s++;
    }
    if ((base == 0 || base == 16) && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s += 2;
    } else if (base == 0 && s[0] == '0') {
        base = 8;
    } else if (base == 0) {
        base = 10;
    }
    for (;;) {
        int d;
        char c = *s;
        if (isdigit(c)) {
            d = c - '0';
        } else if (c >= 'a' && c <= 'z') {
            d = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'Z') {
            d = c - 'A' + 10;
        } else {
            break;
        }
        if (d >= base) {
            break;
        }
        v = v * base + d;
        s++;
    }
    if (endptr != NULL) {
        *endptr = (char *)s;
    }
    return neg ? -v : v;
}

double __ss_atof(const char *s);

double atof(const char *s) {
    return __ss_atof(s);
}

double strtod(const char *s, char **endptr) {
    /* Advance endptr over a float-looking prefix, then parse via builtin. */
    const char *p = s;
    while (isspace(*p)) {
        p++;
    }
    if (*p == '-' || *p == '+') {
        p++;
    }
    while (isdigit(*p)) {
        p++;
    }
    if (*p == '.') {
        p++;
        while (isdigit(*p)) {
            p++;
        }
    }
    if (*p == 'e' || *p == 'E') {
        p++;
        if (*p == '-' || *p == '+') {
            p++;
        }
        while (isdigit(*p)) {
            p++;
        }
    }
    if (endptr != NULL) {
        *endptr = (char *)p;
    }
    return __ss_atof(s);
}

int abs(int x) {
    return x < 0 ? -x : x;
}

long labs(long x) {
    return x < 0 ? -x : x;
}

/* rand: the POSIX example LCG, so runs are deterministic across engines. */
static unsigned long __rand_state = 1;

int rand(void) {
    __rand_state = __rand_state * 6364136223846793005ul + 1442695040888963407ul;
    return (int)((__rand_state >> 33) & 0x7fffffff);
}

void srand(unsigned int seed) {
    __rand_state = seed;
}

/* qsort: in-place quicksort with insertion sort below a threshold, using an
 * explicit byte-wise swap. The comparator is a C function pointer, which the
 * engine dispatches through its function table. */
static void __swap_bytes(char *a, char *b, size_t size) {
    size_t i;
    for (i = 0; i < size; i++) {
        char t = a[i];
        a[i] = b[i];
        b[i] = t;
    }
}

static void __qsort_rec(char *base, long lo, long hi, size_t size,
                        int (*cmp)(const void *, const void *)) {
    long i, j;
    char *pivot;
    if (hi - lo < 8) {
        for (i = lo + 1; i <= hi; i++) {
            for (j = i; j > lo && cmp(base + j * size, base + (j - 1) * size) < 0; j--) {
                __swap_bytes(base + j * size, base + (j - 1) * size, size);
            }
        }
        return;
    }
    __swap_bytes(base + ((lo + hi) / 2) * size, base + hi * size, size);
    pivot = base + hi * size;
    i = lo - 1;
    for (j = lo; j < hi; j++) {
        if (cmp(base + j * size, pivot) <= 0) {
            i++;
            __swap_bytes(base + i * size, base + j * size, size);
        }
    }
    i++;
    __swap_bytes(base + i * size, base + hi * size, size);
    __qsort_rec(base, lo, i - 1, size, cmp);
    __qsort_rec(base, i + 1, hi, size, cmp);
}

void qsort(void *base, size_t nmemb, size_t size,
           int (*cmp)(const void *, const void *)) {
    if (nmemb > 1) {
        __qsort_rec((char *)base, 0, (long)nmemb - 1, size, cmp);
    }
}

void *bsearch(const void *key, const void *base, size_t nmemb, size_t size,
              int (*cmp)(const void *, const void *)) {
    long lo = 0;
    long hi = (long)nmemb - 1;
    while (lo <= hi) {
        long mid = lo + (hi - lo) / 2;
        const char *el = (const char *)base + mid * size;
        int c = cmp(key, el);
        if (c == 0) {
            return (void *)el;
        }
        if (c < 0) {
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    return NULL;
}

char *__ss_getenv(const char *name);

char *getenv(const char *name) {
    return __ss_getenv(name);
}
