/* time.h — Safe Sulong libc. */
#ifndef _TIME_H
#define _TIME_H

typedef long clock_t;
typedef long time_t;

clock_t clock(void);
#define CLOCKS_PER_SEC 1000000L

#endif
