/* string.c — Safe Sulong libc, written in standard C and interpreted by the
 * managed engine. Every access below is bounds-checked by the engine, so a
 * caller passing an unterminated or undersized buffer is reported exactly
 * (paper §3.1: "a libc ... optimized for safety instead of performance").
 * Note the deliberately byte-wise strlen: no word-wise tricks (P4). */
#include <stddef.h>
#include <string.h>
#include <stdlib.h>

void *__builtin_memcpy(void *dst, const void *src, unsigned long n);
void *__builtin_memset(void *s, int c, unsigned long n);

#ifdef __SS_HARDENED
/* Hardened build: the bulk-write family consults the engine's object
 * metadata before writing and truncates at the destination's end instead
 * of overflowing — availability over detection, like a hardened allocator.
 * _bounds_of answering 0 means "don't know" (forged pointer, untyped
 * block); then the function degrades to its ordinary behavior, and on the
 * managed engine the bounds checker still reports the overflow exactly. */
#include <introspect.h>

static size_t __ss_write_cap(void *dst, size_t n) {
    long room = _bounds_of(dst);
    if (room > 0 && (size_t)room < n) {
        return (size_t)room;
    }
    return n;
}
#endif

size_t strlen(const char *s) {
    size_t n = 0;
    while (s[n] != '\0') {
        n++;
    }
    return n;
}

char *strcpy(char *dst, const char *src) {
    size_t i = 0;
#ifdef __SS_HARDENED
    long room = _bounds_of((void *)dst);
    if (room > 0) {
        while ((long)i + 1 < room && src[i] != '\0') {
            dst[i] = src[i];
            i++;
        }
        dst[i] = '\0';
        return dst;
    }
#endif
    while ((dst[i] = src[i]) != '\0') {
        i++;
    }
    return dst;
}

char *strncpy(char *dst, const char *src, size_t n) {
    size_t i;
    for (i = 0; i < n && src[i] != '\0'; i++) {
        dst[i] = src[i];
    }
    for (; i < n; i++) {
        dst[i] = '\0';
    }
    return dst;
}

char *strcat(char *dst, const char *src) {
    size_t i = strlen(dst);
    size_t j = 0;
#ifdef __SS_HARDENED
    long room = _bounds_of((void *)dst);
    if (room > 0) {
        while ((long)(i + j) + 1 < room && src[j] != '\0') {
            dst[i + j] = src[j];
            j++;
        }
        dst[i + j] = '\0';
        return dst;
    }
#endif
    while ((dst[i + j] = src[j]) != '\0') {
        j++;
    }
    return dst;
}

char *strncat(char *dst, const char *src, size_t n) {
    size_t i = strlen(dst);
    size_t j;
    for (j = 0; j < n && src[j] != '\0'; j++) {
        dst[i + j] = src[j];
    }
    dst[i + j] = '\0';
    return dst;
}

int strcmp(const char *a, const char *b) {
    size_t i = 0;
    while (a[i] != '\0' && a[i] == b[i]) {
        i++;
    }
    return (unsigned char)a[i] - (unsigned char)b[i];
}

int strncmp(const char *a, const char *b, size_t n) {
    size_t i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i]) {
            return (unsigned char)a[i] - (unsigned char)b[i];
        }
        if (a[i] == '\0') {
            return 0;
        }
    }
    return 0;
}

char *strchr(const char *s, int c) {
    size_t i = 0;
    for (;;) {
        if (s[i] == (char)c) {
            return (char *)(s + i);
        }
        if (s[i] == '\0') {
            return NULL;
        }
        i++;
    }
}

char *strrchr(const char *s, int c) {
    char *found = NULL;
    size_t i = 0;
    for (;;) {
        if (s[i] == (char)c) {
            found = (char *)(s + i);
        }
        if (s[i] == '\0') {
            return found;
        }
        i++;
    }
}

char *strstr(const char *haystack, const char *needle) {
    size_t nl = strlen(needle);
    size_t i;
    if (nl == 0) {
        return (char *)haystack;
    }
    for (i = 0; haystack[i] != '\0'; i++) {
        if (strncmp(haystack + i, needle, nl) == 0) {
            return (char *)(haystack + i);
        }
    }
    return NULL;
}

size_t strspn(const char *s, const char *accept) {
    size_t n = 0;
    while (s[n] != '\0' && strchr(accept, s[n]) != NULL) {
        n++;
    }
    return n;
}

size_t strcspn(const char *s, const char *reject) {
    size_t n = 0;
    while (s[n] != '\0' && strchr(reject, s[n]) == NULL) {
        n++;
    }
    return n;
}

/* strtok keeps its state in a static pointer, as the standard requires.
 * The delimiter scan goes through strchr, whose reads are checked: passing
 * an unterminated delimiter string (paper Fig. 11) is reported here rather
 * than silently scanning adjacent memory. */
static char *__strtok_save;

char *strtok(char *s, const char *delim) {
    char *start;
    if (s == NULL) {
        s = __strtok_save;
    }
    if (s == NULL) {
        return NULL;
    }
    while (*s != '\0' && strchr(delim, *s) != NULL) {
        s++;
    }
    if (*s == '\0') {
        __strtok_save = NULL;
        return NULL;
    }
    start = s;
    while (*s != '\0' && strchr(delim, *s) == NULL) {
        s++;
    }
    if (*s == '\0') {
        __strtok_save = NULL;
    } else {
        *s = '\0';
        __strtok_save = s + 1;
    }
    return start;
}

char *strdup(const char *s) {
    size_t n = strlen(s);
    char *out = (char *)malloc(n + 1);
    if (out == NULL) {
        return NULL;
    }
    __builtin_memcpy(out, s, n + 1);
    return out;
}

void *memcpy(void *dst, const void *src, size_t n) {
#ifdef __SS_HARDENED
    n = __ss_write_cap(dst, n);
#endif
    __builtin_memcpy(dst, src, n);
    return dst;
}

void *memmove(void *dst, const void *src, size_t n) {
    /* The engine's copy primitive already has memmove semantics. */
#ifdef __SS_HARDENED
    n = __ss_write_cap(dst, n);
#endif
    __builtin_memcpy(dst, src, n);
    return dst;
}

void *memset(void *s, int c, size_t n) {
#ifdef __SS_HARDENED
    n = __ss_write_cap(s, n);
#endif
    __builtin_memset(s, c, n);
    return s;
}

int memcmp(const void *a, const void *b, size_t n) {
    const unsigned char *pa = (const unsigned char *)a;
    const unsigned char *pb = (const unsigned char *)b;
    size_t i;
    for (i = 0; i < n; i++) {
        if (pa[i] != pb[i]) {
            return (int)pa[i] - (int)pb[i];
        }
    }
    return 0;
}

void *memchr(const void *s, int c, size_t n) {
    const unsigned char *p = (const unsigned char *)s;
    size_t i;
    for (i = 0; i < n; i++) {
        if (p[i] == (unsigned char)c) {
            return (void *)(p + i);
        }
    }
    return NULL;
}
