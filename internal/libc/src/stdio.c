/* stdio.c — Safe Sulong libc. The formatted-I/O core is plain C on top of
 * the engine's character builtins. printf pulls variadic arguments through
 * the paper's Figure 9 machinery (stdarg.h): a missing argument is an
 * out-of-bounds read of the malloc'ed args array, and a %ld applied to an
 * int argument is an out-of-bounds read of that argument's 4-byte cell. */
#include <stdio.h>
#include <stdarg.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

int __ss_putchar(int c);
int __ss_getchar(void);
long __ss_fwrite(const void *p, long n);
int __ss_ftoa(char *buf, double v, int prec, int kind);

int putchar(int c) {
    return __ss_putchar(c);
}

static int __ungot = -2;

int getchar(void) {
    if (__ungot != -2) {
        int c = __ungot;
        __ungot = -2;
        return c;
    }
    return __ss_getchar();
}

int ungetc(int c, FILE *stream) {
    /* C11 7.21.7.10p3: pushing back EOF is a no-op that returns EOF.
     * Storing it would make the next getchar spuriously report
     * end-of-stream. */
    (void)stream;
    if (c == -1)
        return -1;
    c = c & 0xff;
    __ungot = c;
    return c;
}

int fgetc(FILE *stream) {
    (void)stream;
    return getchar();
}

int puts(const char *s) {
    __ss_fwrite(s, (long)strlen(s));
    __ss_putchar('\n');
    return 0;
}

int fputc(int c, FILE *stream) {
    (void)stream;
    return __ss_putchar(c);
}

int fputs(const char *s, FILE *stream) {
    (void)stream;
    __ss_fwrite(s, (long)strlen(s));
    return 0;
}

/* gets is unsafe by design; under the managed engine an overflow of the
 * destination is detected on the exact store that exceeds it. */
char *gets(char *s) {
    long i = 0;
    int c;
    for (;;) {
        c = getchar();
        if (c == EOF && i == 0) {
            return NULL;
        }
        if (c == EOF || c == '\n') {
            break;
        }
        s[i++] = (char)c;
    }
    s[i] = '\0';
    return s;
}

char *fgets(char *s, int size, FILE *stream) {
    long i = 0;
    int c;
    (void)stream;
    if (size <= 0) {
        return NULL;
    }
    while (i < size - 1) {
        c = getchar();
        if (c == EOF) {
            break;
        }
        s[i++] = (char)c;
        if (c == '\n') {
            break;
        }
    }
    if (i == 0) {
        return NULL;
    }
    s[i] = '\0';
    return s;
}

size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream) {
    (void)stream;
    __ss_fwrite(ptr, (long)(size * nmemb));
    return nmemb;
}

size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream) {
    char *out = (char *)ptr;
    size_t total = size * nmemb;
    size_t i;
    (void)stream;
    for (i = 0; i < total; i++) {
        int c = getchar();
        if (c == EOF) {
            return i / size;
        }
        out[i] = (char)c;
    }
    return nmemb;
}

FILE *fopen(const char *path, const char *mode) {
    (void)path;
    (void)mode;
    return NULL; /* no filesystem; programs use the standard streams */
}

int fclose(FILE *stream) {
    (void)stream;
    return 0;
}

int fflush(FILE *stream) {
    (void)stream;
    return 0;
}

/* ---- formatted output ---- */

/* __emit appends one char either to a buffer (bounded by cap) or to stdout.
 * Buffer stores are engine-checked, so sprintf overflowing its destination
 * is detected on the exact byte that exceeds the object. */
struct __fmt_out {
    char *buf;
    long cap;
    long n;
};

static void __emit(struct __fmt_out *o, int c) {
    if (o->buf == NULL) {
        __ss_putchar(c);
    } else if (o->cap < 0 || o->n < o->cap - 1) {
        o->buf[o->n] = (char)c;
    }
    o->n++;
}

static void __emit_str(struct __fmt_out *o, const char *s, long len) {
    long i;
    for (i = 0; i < len; i++) {
        __emit(o, s[i]);
    }
}

static void __pad(struct __fmt_out *o, int c, long n) {
    while (n > 0) {
        __emit(o, c);
        n--;
    }
}

/* __utoa formats an unsigned long in the given base into buf (reversed
 * digits, then fixed); returns the length. buf must hold >= 24 chars. */
static int __utoa(unsigned long v, int base, int upper, char *buf) {
    const char *digits = upper ? "0123456789ABCDEF" : "0123456789abcdef";
    int n = 0;
    int i;
    if (v == 0) {
        buf[0] = '0';
        return 1;
    }
    while (v != 0) {
        buf[n++] = digits[v % (unsigned long)base];
        v = v / (unsigned long)base;
    }
    for (i = 0; i < n / 2; i++) {
        char t = buf[i];
        buf[i] = buf[n - 1 - i];
        buf[n - 1 - i] = t;
    }
    return n;
}

static int __vformat(struct __fmt_out *o, const char *fmt, va_list ap) {
    long i;
    for (i = 0; fmt[i] != '\0'; i++) {
        char c = fmt[i];
        int leftAlign = 0, zeroPad = 0, plusSign = 0, spaceSign = 0, altForm = 0;
        long width = 0;
        long prec = -1;
        int longMod = 0;
        char conv;
        char numbuf[32];
        if (c != '%') {
            __emit(o, c);
            continue;
        }
        i++;
        /* flags */
        for (;;) {
            c = fmt[i];
            if (c == '-') {
                leftAlign = 1;
            } else if (c == '0') {
                zeroPad = 1;
            } else if (c == '+') {
                plusSign = 1;
            } else if (c == ' ') {
                spaceSign = 1;
            } else if (c == '#') {
                altForm = 1;
            } else {
                break;
            }
            i++;
        }
        /* width */
        if (fmt[i] == '*') {
            width = (long)va_arg(ap, int);
            if (width < 0) {
                leftAlign = 1;
                width = -width;
            }
            i++;
        } else {
            while (isdigit(fmt[i])) {
                width = width * 10 + (fmt[i] - '0');
                i++;
            }
        }
        /* precision */
        if (fmt[i] == '.') {
            i++;
            prec = 0;
            if (fmt[i] == '*') {
                prec = (long)va_arg(ap, int);
                i++;
            } else {
                while (isdigit(fmt[i])) {
                    prec = prec * 10 + (fmt[i] - '0');
                    i++;
                }
            }
        }
        /* length modifiers */
        while (fmt[i] == 'l' || fmt[i] == 'h' || fmt[i] == 'z') {
            if (fmt[i] == 'l' || fmt[i] == 'z') {
                longMod = 1;
            }
            i++;
        }
        conv = fmt[i];
        if (conv == '%') {
            __emit(o, '%');
            continue;
        }
        if (conv == 'c') {
            int ch = va_arg(ap, int);
            __pad(o, ' ', width - 1);
            __emit(o, ch);
            continue;
        }
        if (conv == 's') {
            const char *s = va_arg(ap, const char *);
            long len;
            if (s == NULL) {
                s = "(null)";
            }
            len = (long)strlen(s);
            if (prec >= 0 && len > prec) {
                len = prec;
            }
            if (!leftAlign) {
                __pad(o, ' ', width - len);
            }
            __emit_str(o, s, len);
            if (leftAlign) {
                __pad(o, ' ', width - len);
            }
            continue;
        }
        if (conv == 'd' || conv == 'i' || conv == 'u' || conv == 'x' || conv == 'X' || conv == 'o' || conv == 'p') {
            unsigned long uv;
            int neg = 0;
            int base = 10;
            int upper = 0;
            int len;
            long total;
            /* %ld on an int-sized argument reads 8 bytes from a 4-byte
             * cell: the engine reports the out-of-bounds read (Fig. 12). */
            if (conv == 'p') {
                uv = (unsigned long)va_arg(ap, void *);
                base = 16;
                altForm = 1;
            } else if (conv == 'd' || conv == 'i') {
                long sv;
                if (longMod) {
                    sv = va_arg(ap, long);
                } else {
                    sv = (long)va_arg(ap, int);
                }
                if (sv < 0) {
                    neg = 1;
                    uv = (unsigned long)(-sv);
                } else {
                    uv = (unsigned long)sv;
                }
            } else {
                if (longMod) {
                    uv = va_arg(ap, unsigned long);
                } else {
                    uv = (unsigned long)va_arg(ap, unsigned int);
                }
                if (conv == 'x') {
                    base = 16;
                } else if (conv == 'X') {
                    base = 16;
                    upper = 1;
                } else if (conv == 'o') {
                    base = 8;
                }
            }
            len = __utoa(uv, base, upper, numbuf);
            total = len;
            if (neg || plusSign || spaceSign) {
                total++;
            }
            if (altForm && base == 16) {
                total += 2;
            }
            if (prec > len) {
                total += prec - len;
            }
            if (!leftAlign && !zeroPad) {
                __pad(o, ' ', width - total);
            }
            if (neg) {
                __emit(o, '-');
            } else if (plusSign) {
                __emit(o, '+');
            } else if (spaceSign) {
                __emit(o, ' ');
            }
            if (altForm && base == 16) {
                __emit(o, '0');
                __emit(o, upper ? 'X' : 'x');
            }
            if (!leftAlign && zeroPad) {
                __pad(o, '0', width - total);
            }
            if (prec > len) {
                __pad(o, '0', prec - len);
            }
            __emit_str(o, numbuf, len);
            if (leftAlign) {
                __pad(o, ' ', width - total);
            }
            continue;
        }
        if (conv == 'f' || conv == 'e' || conv == 'g' || conv == 'E' || conv == 'G') {
            double dv = va_arg(ap, double);
            char fbuf[64];
            int len;
            long pr = prec;
            if (pr < 0) {
                pr = 6;
            }
            if (conv == 'g' || conv == 'G') {
                if (pr == 0) {
                    pr = 1;
                }
                len = __ss_ftoa(fbuf, dv, (int)pr, 'g');
            } else if (conv == 'e' || conv == 'E') {
                len = __ss_ftoa(fbuf, dv, (int)pr, 'e');
            } else {
                len = __ss_ftoa(fbuf, dv, (int)pr, 'f');
            }
            if (!leftAlign) {
                __pad(o, zeroPad ? '0' : ' ', width - len);
            }
            __emit_str(o, fbuf, len);
            if (leftAlign) {
                __pad(o, ' ', width - len);
            }
            continue;
        }
        /* Unknown conversion: emit it literally. */
        __emit(o, '%');
        __emit(o, conv);
    }
    return (int)o->n;
}

int printf(const char *fmt, ...) {
    struct __fmt_out o;
    va_list ap;
    int n;
    o.buf = NULL;
    o.cap = 0;
    o.n = 0;
    va_start(ap, fmt);
    n = __vformat(&o, fmt, ap);
    va_end(ap);
    return n;
}

int vprintf(const char *fmt, va_list ap) {
    struct __fmt_out o;
    o.buf = NULL;
    o.cap = 0;
    o.n = 0;
    return __vformat(&o, fmt, ap);
}

int fprintf(FILE *stream, const char *fmt, ...) {
    struct __fmt_out o;
    va_list ap;
    int n;
    (void)stream;
    o.buf = NULL;
    o.cap = 0;
    o.n = 0;
    va_start(ap, fmt);
    n = __vformat(&o, fmt, ap);
    va_end(ap);
    return n;
}

int sprintf(char *buf, const char *fmt, ...) {
    struct __fmt_out o;
    va_list ap;
    int n;
    o.buf = buf;
    o.cap = -1; /* unbounded: overflow is caught by the managed object */
    o.n = 0;
    va_start(ap, fmt);
    n = __vformat(&o, fmt, ap);
    va_end(ap);
    buf[n] = '\0';
    return n;
}

int snprintf(char *buf, size_t size, const char *fmt, ...) {
    struct __fmt_out o;
    va_list ap;
    int n;
    o.buf = buf;
    o.cap = (long)size;
    o.n = 0;
    va_start(ap, fmt);
    n = __vformat(&o, fmt, ap);
    va_end(ap);
    if (size > 0) {
        if (o.n < (long)size) {
            buf[o.n] = '\0';
        } else {
            buf[size - 1] = '\0';
        }
    }
    return n;
}

/* ---- formatted input ---- */

static int __skip_space(void) {
    int c = getchar();
    while (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        c = getchar();
    }
    return c;
}

static int __vscanf(const char *fmt, va_list ap) {
    int assigned = 0;
    long i;
    for (i = 0; fmt[i] != '\0'; i++) {
        char c = fmt[i];
        if (isspace(c)) {
            continue;
        }
        if (c != '%') {
            int in = __skip_space();
            if (in != c) {
                ungetc(in, stdin);
                return assigned;
            }
            continue;
        }
        i++;
        {
        int longMod = 0;
        while (fmt[i] == 'l' || fmt[i] == 'h' || fmt[i] == 'z') {
            if (fmt[i] == 'l') {
                longMod = 1;
            }
            i++;
        }
        c = fmt[i];
        if (c == 'd' || c == 'u' || c == 'i') {
            int neg = 0;
            long v = 0;
            int any = 0;
            int in = __skip_space();
            if (in == '-') {
                neg = 1;
                in = getchar();
            } else if (in == '+') {
                in = getchar();
            }
            while (in >= '0' && in <= '9') {
                v = v * 10 + (in - '0');
                any = 1;
                in = getchar();
            }
            ungetc(in, stdin);
            if (!any) {
                return assigned;
            }
            /* The target pointer is a vararg; storing through it is fully
             * checked, so scanf("%d", &small_object) overflows loudly. */
            *va_arg(ap, int *) = (int)(neg ? -v : v);
            assigned++;
            continue;
        }
        if (c == 'f' || c == 'e' || c == 'g') {
            char nb[64];
            int k = 0;
            int in = __skip_space();
            while (k < 63 && (isdigit(in) || in == '-' || in == '+' || in == '.' || in == 'e' || in == 'E')) {
                nb[k++] = (char)in;
                in = getchar();
            }
            ungetc(in, stdin);
            nb[k] = '\0';
            if (k == 0) {
                return assigned;
            }
            if (longMod) {
                *va_arg(ap, double *) = atof(nb);
            } else {
                *va_arg(ap, float *) = (float)atof(nb);
            }
            assigned++;
            continue;
        }
        if (c == 's') {
            char *out = va_arg(ap, char *);
            long k = 0;
            int in = __skip_space();
            if (in == EOF) {
                return assigned == 0 ? EOF : assigned;
            }
            while (in != EOF && !isspace(in)) {
                out[k++] = (char)in;
                in = getchar();
            }
            ungetc(in, stdin);
            out[k] = '\0';
            assigned++;
            continue;
        }
        if (c == 'c') {
            int in = getchar();
            if (in == EOF) {
                return assigned == 0 ? EOF : assigned;
            }
            *va_arg(ap, char *) = (char)in;
            assigned++;
            continue;
        }
        }
    }
    return assigned;
}

int scanf(const char *fmt, ...) {
    va_list ap;
    int n;
    va_start(ap, fmt);
    n = __vscanf(fmt, ap);
    va_end(ap);
    return n;
}

int fscanf(FILE *stream, const char *fmt, ...) {
    va_list ap;
    int n;
    (void)stream;
    va_start(ap, fmt);
    n = __vscanf(fmt, ap);
    va_end(ap);
    return n;
}
