/* stdbool.h — Safe Sulong libc. */
#ifndef _STDBOOL_H
#define _STDBOOL_H

#define bool int
#define true 1
#define false 0

#endif
