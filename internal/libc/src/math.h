/* math.h — Safe Sulong libc. The double entry points are engine builtins. */
#ifndef _MATH_H
#define _MATH_H

double sin(double x);
double cos(double x);
double tan(double x);
double asin(double x);
double acos(double x);
double atan(double x);
double atan2(double y, double x);
double exp(double x);
double log(double x);
double log10(double x);
double pow(double x, double y);
double sqrt(double x);
double floor(double x);
double ceil(double x);
double fabs(double x);
double fmod(double x, double y);

#define M_PI 3.14159265358979323846
#define M_E 2.7182818284590452354
#define HUGE_VAL (1.0e308 * 10.0)

#endif
