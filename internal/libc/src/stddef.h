/* stddef.h — Safe Sulong libc. */
#ifndef _STDDEF_H
#define _STDDEF_H

typedef unsigned long size_t;
typedef long ptrdiff_t;

#ifndef NULL
#define NULL ((void*)0)
#endif

#define offsetof(type, member) ((size_t)0)

#endif
