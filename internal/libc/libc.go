// Package libc bundles the safe C standard library the paper describes in
// §3.1: written in standard C, compiled by the same front end as the user
// program, and interpreted by the managed engine, so that all of its
// accesses are checked just like application code. A handful of engine
// builtins (__ss_putchar, __ss_count_varargs, ...) play the role of the
// paper's Java "system call" methods.
package libc

import (
	"embed"
	"fmt"
	"sort"
	"strings"
	"sync"
)

//go:embed src
var srcFS embed.FS

// The embed FS is immutable, so every accessor memoizes its answer: the
// bundle is read exactly once per process no matter how many compilations
// (or concurrent matrix workers) ask for it. Files() hands out defensive
// copies because callers (sulong.CompileFor, internal/pipeline) insert the
// user program into the returned map in place.
var (
	loadOnce    sync.Once
	filesCache  map[string]string
	headerCache []string

	fnCountOnce sync.Once
	fnCount     int
)

func load() {
	entries, err := srcFS.ReadDir("src")
	if err != nil {
		panic("libc: embedded sources missing: " + err.Error())
	}
	filesCache = make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := srcFS.ReadFile("src/" + e.Name())
		if err != nil {
			panic("libc: reading embedded source: " + err.Error())
		}
		filesCache[e.Name()] = string(data)
		if strings.HasSuffix(e.Name(), ".h") {
			headerCache = append(headerCache, e.Name())
		}
	}
	sort.Strings(headerCache)
}

// Sources returns the libc implementation files, in link order.
func Sources() []string {
	return []string{"ctype.c", "string.c", "stdlib.c", "stdio.c"}
}

// Headers returns the header file names the preprocessor can include.
func Headers() []string {
	loadOnce.Do(load)
	return append([]string(nil), headerCache...)
}

// Files returns include-name -> contents for every bundled header and
// source, ready to merge into a cc.Compile file map. The map is a fresh
// copy on every call: callers may insert their own entries without
// aliasing other compilations.
func Files() map[string]string {
	loadOnce.Do(load)
	out := make(map[string]string, len(filesCache)+4)
	for k, v := range filesCache {
		out[k] = v
	}
	return out
}

// FunctionCount reports how many public libc functions the bundle defines
// (the paper reports 126 supported functions; this bundle is smaller but
// covers the same program corpus). The scan runs once per process.
func FunctionCount() int {
	fnCountOnce.Do(func() {
		loadOnce.Do(load)
		for _, src := range Sources() {
			for _, line := range strings.Split(filesCache[src], "\n") {
				trimmed := strings.TrimSpace(line)
				if trimmed == "" || strings.HasPrefix(trimmed, "/*") || strings.HasPrefix(trimmed, "*") ||
					strings.HasPrefix(trimmed, "static") || strings.HasPrefix(trimmed, "#") {
					continue
				}
				if strings.HasSuffix(trimmed, "{") && strings.Contains(trimmed, "(") &&
					!strings.HasPrefix(trimmed, "}") && !strings.Contains(trimmed, "=") &&
					!strings.HasPrefix(trimmed, "if") && !strings.HasPrefix(trimmed, "for") &&
					!strings.HasPrefix(trimmed, "while") && !strings.HasPrefix(trimmed, "switch") {
					fnCount++
				}
			}
		}
	})
	return fnCount
}

// WrapProgram builds the translation unit for a user program: the libc
// sources followed by the user code, stitched together with #include so the
// preprocessor sees one unit (the paper's Fig. 4: libc.c + program.c).
func WrapProgram(userFile string) string {
	var b strings.Builder
	for _, src := range Sources() {
		fmt.Fprintf(&b, "#include %q\n", src)
	}
	fmt.Fprintf(&b, "#include %q\n", userFile)
	return b.String()
}
