package libc

import (
	"strings"
	"testing"
)

func TestFilesComplete(t *testing.T) {
	files := Files()
	for _, h := range Headers() {
		if files[h] == "" {
			t.Errorf("header %s empty", h)
		}
	}
	for _, src := range Sources() {
		if files[src] == "" {
			t.Errorf("source %s missing", src)
		}
	}
	// Core headers exist.
	for _, h := range []string{"stdio.h", "stdlib.h", "string.h", "stdarg.h", "ctype.h", "math.h"} {
		if files[h] == "" {
			t.Errorf("expected header %s", h)
		}
	}
}

func TestHeadersHaveGuards(t *testing.T) {
	files := Files()
	for _, h := range Headers() {
		if !strings.Contains(files[h], "#ifndef") {
			t.Errorf("%s lacks an include guard", h)
		}
	}
}

func TestStdargIsFig9(t *testing.T) {
	src := Files()["stdarg.h"]
	for _, want := range []string{"__ss_count_varargs", "__ss_get_vararg", "counter", "va_arg", "va_start"} {
		if !strings.Contains(src, want) {
			t.Errorf("stdarg.h missing %q (Fig. 9 structure)", want)
		}
	}
}

func TestStrlenIsByteWise(t *testing.T) {
	src := Files()["string.c"]
	idx := strings.Index(src, "size_t strlen")
	if idx < 0 {
		t.Fatal("strlen not found")
	}
	body := src[idx : idx+200]
	if strings.Contains(body, "long *") || strings.Contains(body, "8") {
		t.Errorf("safe strlen must be byte-wise, got:\n%s", body)
	}
}

func TestWrapProgramOrder(t *testing.T) {
	prog := WrapProgram("user.c")
	// libc sources first, user code last.
	if !strings.HasSuffix(strings.TrimSpace(prog), `#include "user.c"`) {
		t.Errorf("user code must come last:\n%s", prog)
	}
	for _, src := range Sources() {
		if !strings.Contains(prog, src) {
			t.Errorf("missing %s", src)
		}
	}
}

// TestFilesDefensiveCopies checks the memoization contract: each Files()
// call returns a fresh map, so CompileFor-style in-place inserts cannot
// alias across compilations, and the cached bundle itself stays pristine.
func TestFilesDefensiveCopies(t *testing.T) {
	a := Files()
	b := Files()
	if &a == &b {
		t.Fatal("identical map headers") // can't happen, but keep intent clear
	}
	a["user.c"] = "int main(void){return 0;}"
	a["stdio.h"] = "clobbered"
	if _, ok := b["user.c"]; ok {
		t.Error("insert into one Files() map leaked into another")
	}
	if b["stdio.h"] == "clobbered" {
		t.Error("overwrite of a bundled entry leaked into another call")
	}
	c := Files()
	if c["stdio.h"] == "clobbered" || c["stdio.h"] == "" {
		t.Error("cached bundle was corrupted by caller mutation")
	}
}

func TestFunctionCountStable(t *testing.T) {
	if FunctionCount() != FunctionCount() {
		t.Error("FunctionCount must be deterministic")
	}
}

func TestFunctionCount(t *testing.T) {
	n := FunctionCount()
	// The paper supports 126 functions; this bundle is smaller but must
	// stay substantial.
	if n < 40 {
		t.Errorf("libc defines only %d functions", n)
	}
	t.Logf("libc defines %d public C functions (paper: 126)", n)
}
