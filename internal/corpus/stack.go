package corpus

// stackCases builds the 32 stack out-of-bounds cases: 15 reads (12 overflow
// + 3 underflow) and 17 writes (14 overflow + 3 underflow). One read (the
// strtok delimiter, Fig. 11) is invisible to both baseline tools; four
// writes are Fig. 3-style stores to otherwise-unused arrays that the -O3
// pipeline deletes.
func stackCases() []Case {
	readsOverflow := []Case{
		{
			Name: "stack-strtok-delim",
			Source: `#include <string.h>
#include <stdio.h>
/* Fig. 11: the delimiter array has no room for the terminator, and the
 * scan happens inside libc where ASan has no interceptor. */
char buf[32] = "alpha\nbeta";
int main(void) {
    const char t[1] = {'\n'};
    char *tok = strtok(buf, t);
    while (tok != NULL) {
        puts(tok);
        tok = strtok(NULL, t);
    }
    return 0;
}`,
			blind: true, study: "fig11",
		},
		{
			Name: "stack-off-by-one-sum",
			Source: `#include <stdio.h>
int main(void) {
    int grades[5] = {90, 85, 77, 92, 60};
    int sum = 0;
    int i;
    for (i = 0; i <= 5; i++) {
        sum += grades[i];
    }
    printf("avg=%d\n", sum / 5);
    return 0;
}`,
		},
		{
			Name: "stack-unterminated-strlen",
			Source: `#include <string.h>
#include <stdio.h>
int main(void) {
    char code[4] = "FULL"; /* exactly fills: no NUL */
    printf("%d\n", (int)strlen(code));
    return 0;
}`,
		},
		{
			Name: "stack-hardcoded-count",
			Source: `#include <stdio.h>
int main(void) {
    double temps[12];
    double total = 0.0;
    int i;
    for (i = 0; i < 12; i++) temps[i] = 20.0 + i;
    for (i = 0; i < 14; i++) { /* stale count */
        total += temps[i];
    }
    printf("%.1f\n", total);
    return 0;
}`,
		},
		{
			Name: "stack-binsearch-hi",
			Source: `#include <stdio.h>
int main(void) {
    int sorted[8] = {1, 3, 5, 7, 9, 11, 13, 15};
    int lo = 0, hi = 8; /* hi should be 7 */
    int target = 20;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (sorted[mid] == target) break;
        if (sorted[mid] < target) lo = mid + 1; else hi = mid - 1;
    }
    printf("%d\n", lo);
    return 0;
}`,
		},
		{
			Name: "stack-read-past-strncpy",
			Source: `#include <string.h>
#include <stdio.h>
int main(void) {
    char short_buf[4];
    char out[16];
    int i, n = 0;
    strncpy(short_buf, "abcdef", 4); /* no terminator fits */
    for (i = 0; short_buf[i] != '\0'; i++) {
        out[n++] = short_buf[i];
        if (n >= 15) break;
    }
    out[n] = '\0';
    printf("%s\n", out);
    return 0;
}`,
		},
		{
			Name: "stack-2d-column-walk",
			Source: `#include <stdio.h>
int main(void) {
    int grid[3][3] = {{1,2,3},{4,5,6},{7,8,9}};
    int sum = 0;
    int c;
    for (c = 0; c < 3; c++) {
        sum += grid[2][c + 1]; /* last row, columns 1..3 */
    }
    printf("%d\n", sum);
    return 0;
}`,
		},
		{
			Name: "stack-sentinel-search",
			Source: `#include <stdio.h>
int main(void) {
    int vals[6] = {4, 8, 15, 16, 23, 42};
    int i = 0;
    while (vals[i] != 99) { /* sentinel never stored */
        i++;
        if (i > 50) break;
    }
    printf("%d\n", i);
    return 0;
}`,
		},
		{
			Name: "stack-struct-array-last",
			Source: `#include <stdio.h>
struct pair { int a; int b; };
int main(void) {
    struct pair ps[4] = {{1,2},{3,4},{5,6},{7,8}};
    int n = 4;
    printf("%d\n", ps[n].b); /* ps[4] is past the end */
    return 0;
}`,
		},
		{
			Name: "stack-length-vs-index",
			Source: `#include <string.h>
#include <stdio.h>
int main(void) {
    char word[8];
    strcpy(word, "seven");
    /* strlen == 5; index 5 is the NUL, 6 reads uninitialized, 8 is OOB */
    printf("%c\n", word[strlen(word) + 3]);
    return 0;
}`,
		},
		{
			Name: "stack-reverse-inclusive",
			Source: `#include <stdio.h>
int main(void) {
    char s[6] = "hello";
    char rev[6];
    int n = 5;
    int i;
    for (i = 0; i <= n; i++) {
        rev[i] = s[n - i + 1]; /* first iteration reads s[6] */
    }
    rev[5] = '\0';
    printf("%s\n", rev);
    return 0;
}`,
		},
		{
			Name: "stack-arg-count-mismatch",
			Source: `#include <stdio.h>
int sum3(int *xs) { return xs[0] + xs[1] + xs[2]; }
int main(void) {
    int two[2] = {10, 20}; /* callee expects three */
    printf("%d\n", sum3(two));
    return 0;
}`,
		},
	}
	for i := range readsOverflow {
		readsOverflow[i].truth = truth{ReadAccess, Overflow, Stack}
	}

	readsUnderflow := []Case{
		{
			Name: "stack-scan-backwards",
			Source: `#include <stdio.h>
int main(void) {
    char line[16] = "key value";
    int i = 0;
    /* walk back to the start of the previous word; misses index 0 */
    while (line[i] != ' ') i++;
    while (i >= -50 && line[i] != '.') i--; /* walks past the front */
    printf("%d\n", i);
    return 0;
}`,
		},
		{
			Name: "stack-prev-element",
			Source: `#include <stdio.h>
int main(void) {
    int deltas[8];
    int i;
    for (i = 0; i < 8; i++) deltas[i] = i * 2;
    /* "previous" of the first element */
    printf("%d\n", deltas[0] - deltas[0 - 1]);
    return 0;
}`,
		},
		{
			Name: "stack-decrement-before-check",
			Source: `#include <stdio.h>
int main(void) {
    int stackv[4] = {1, 2, 3, 4};
    int top = 0;
    int popped;
    popped = stackv[--top]; /* pops from an empty stack */
    printf("%d\n", popped);
    return 0;
}`,
		},
	}
	for i := range readsUnderflow {
		readsUnderflow[i].truth = truth{ReadAccess, Underflow, Stack}
	}

	writesOverflow := []Case{
		{
			Name: "stack-fig3-unused-array",
			Source: `#include <stdio.h>
/* Fig. 3 verbatim: the array is never read, so -O3 deletes the stores
 * and the loop — and the bug. */
int test(int length) {
    int arr[10];
    int i;
    for (i = 0; i < length; i++) {
        arr[i] = i;
    }
    return 0;
}
int main(void) {
    printf("%d\n", test(20));
    return 0;
}`,
		},
		{
			Name: "stack-fig3-scratch-log",
			Source: `#include <stdio.h>
void record(int n) {
    char scratch[16];
    int i;
    for (i = 0; i < n; i++) scratch[i] = (char)i; /* scratch unused */
}
int main(void) {
    record(40);
    printf("done\n");
    return 0;
}`,
		},
		{
			Name: "stack-fig3-padded-init",
			Source: `#include <stdio.h>
int main(void) {
    long pad[4];
    int i;
    for (i = 0; i < 9; i++) pad[i] = 0; /* pad never read again */
    printf("ok\n");
    return 0;
}`,
		},
		{
			Name: "stack-fig3-checksum-buf",
			Source: `#include <stdio.h>
void fill(short *unused_out) {
    short tmp[6];
    int i;
    for (i = 0; i <= 6; i++) tmp[i] = (short)(i * 3);
    (void)unused_out;
}
int main(void) {
    fill((void*)0);
    printf("filled\n");
    return 0;
}`,
		},
		{
			Name: "stack-strcpy-small-buf",
			Source: `#include <string.h>
#include <stdio.h>
int main(void) {
    char initials[4];
    strcpy(initials, "toolong"); /* 8 bytes into 4 */
    printf("%s\n", initials);
    return 0;
}`,
		},
		{
			Name: "stack-gets-classic",
			Source: `#include <stdio.h>
int main(void) {
    char nick[8];
    gets(nick);
    printf("hi %s\n", nick);
    return 0;
}`,
			Stdin: "a-name-that-is-way-too-long\n",
		},
		{
			Name: "stack-scanf-string",
			Source: `#include <stdio.h>
int main(void) {
    char word[4];
    scanf("%s", word);
    printf("%s\n", word);
    return 0;
}`,
			Stdin: "overlong-token\n",
		},
		{
			Name: "stack-sprintf-date",
			Source: `#include <stdio.h>
int main(void) {
    char date[8];
    sprintf(date, "%04d-%02d-%02d", 2017, 9, 30); /* 10 chars + NUL */
    printf("%s\n", date);
    return 0;
}`,
		},
		{
			Name: "stack-inclusive-fill",
			Source: `#include <stdio.h>
int main(void) {
    int squares[10];
    int i;
    for (i = 1; i <= 10; i++) {
        squares[i] = i * i; /* shifts by one; writes squares[10] */
    }
    printf("%d\n", squares[3]);
    return 0;
}`,
		},
		{
			Name: "stack-append-terminator",
			Source: `#include <string.h>
#include <stdio.h>
int main(void) {
    char path[8] = "a/b/c/d"; /* 7 chars + NUL fills it */
    int n = (int)strlen(path);
    path[n] = '/';
    path[n + 1] = '\0'; /* writes path[8] */
    printf("%s\n", path);
    return 0;
}`,
		},
		{
			Name: "stack-swap-past-end",
			Source: `#include <stdio.h>
int main(void) {
    int ring[6] = {0, 1, 2, 3, 4, 5};
    int i;
    for (i = 0; i < 6; i += 2) {
        int t = ring[i];
        ring[i] = ring[i + 1];
        ring[i + 1] = t; /* fine until i+1 == 6? no: i=4 -> 5 ok; rotate below */
    }
    for (i = 1; i <= 6; i++) ring[i] = ring[i - 1]; /* writes ring[6] */
    printf("%d\n", ring[0]);
    return 0;
}`,
		},
		{
			Name: "stack-matrix-flatten",
			Source: `#include <stdio.h>
int main(void) {
    int flat[9];
    int r, c;
    for (r = 0; r < 3; r++) {
        for (c = 0; c < 3; c++) {
            flat[r * 4 + c] = r * 3 + c; /* stride 4 on a 3x3 */
        }
    }
    printf("%d\n", flat[0]);
    return 0;
}`,
		},
		{
			Name: "stack-null-target-write",
			Source: `#include <string.h>
#include <stdio.h>
int main(void) {
    char id[6];
    memset(id, 'x', 7); /* one past the buffer */
    printf("%c\n", id[0]);
    return 0;
}`,
		},
		{
			Name: "stack-concat-loop",
			Source: `#include <stdio.h>
int main(void) {
    char joined[10];
    const char *words[3] = {"one", "two", "three"};
    int n = 0;
    int w;
    int i;
    for (w = 0; w < 3; w++) {
        for (i = 0; words[w][i] != '\0'; i++) {
            joined[n++] = words[w][i]; /* 11 chars into 10 */
        }
    }
    joined[9] = '\0';
    printf("%s\n", joined);
    return 0;
}`,
		},
	}
	for i := range writesOverflow {
		writesOverflow[i].truth = truth{WriteAccess, Overflow, Stack}
	}
	// The four Fig. 3-style cases are the first four writes.
	for i := 0; i < 4; i++ {
		writesOverflow[i].OptimizedAwayAtO3 = true
	}
	writesOverflow[0].study = "fig3"

	writesUnderflow := []Case{
		{
			Name: "stack-clear-backwards",
			Source: `#include <stdio.h>
int main(void) {
    int window[8];
    int i;
    for (i = 7; i >= -1; i--) { /* one too far down */
        window[i] = 0;
    }
    printf("%d\n", window[0]);
    return 0;
}`,
		},
		{
			Name: "stack-queue-push-front",
			Source: `#include <stdio.h>
int main(void) {
    int queue[6];
    int head = 0;
    queue[0] = 7;
    queue[--head] = 99; /* pushes to the "front" of an empty queue */
    printf("%d %d\n", head, queue[0]);
    return 0;
}`,
		},
		{
			Name: "stack-prefix-store",
			Source: `#include <stdio.h>
int main(void) {
    char frame[12];
    char *payload = frame + 0;
    payload[-1] = (char)0xff; /* "header" before the buffer */
    frame[0] = 'p';
    printf("%d\n", frame[0]);
    return 0;
}`,
		},
	}
	for i := range writesUnderflow {
		writesUnderflow[i].truth = truth{WriteAccess, Underflow, Stack}
	}

	var out []Case
	for _, group := range [][]Case{readsOverflow, readsUnderflow, writesOverflow, writesUnderflow} {
		for _, c := range group {
			c.Category = BufferOverflow
			c.Access = c.truth.access
			c.Direction = c.truth.dir
			c.Mem = c.truth.mem
			c.ASanBlindSpot = c.blind
			if c.CaseStudy == "" {
				c.CaseStudy = c.study
			}
			out = append(out, c)
		}
	}
	return out
}
