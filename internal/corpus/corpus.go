// Package corpus is the evaluation's bug corpus: 68 buggy C programs whose
// ground-truth distribution matches the paper's Tables 1 and 2 cell for
// cell (61 out-of-bounds accesses split 32 read / 29 write, 8 underflow /
// 53 overflow, 32 stack / 17 heap / 9 global / 3 main-args; 5 NULL
// dereferences; 1 use-after-free; 1 variadic-argument error).
//
// The paper's corpus came from 63 small GitHub projects; those exact
// repositories are not reproducible, so each case here is a small, distinct
// program built around the same bug causes the paper lists in §4.1:
// unterminated strings, missing NUL space, missing checks, integer
// overflows, hard-coded sizes, checks performed after the access, and
// off-by-one comparisons. The five case studies (Figs. 10–14) appear
// verbatim.
package corpus

import (
	"fmt"
	"sync"
)

// Category is the paper's Table 1 bug classification.
type Category int

const (
	BufferOverflow Category = iota // spatial (any out-of-bounds access)
	NullDereference
	UseAfterFree
	Varargs
	// TypeConfusion goes beyond the paper's Table 1: dynamic type-identity
	// errors (union punning, mismatched pointer casts, variadic argument
	// type mismatches) that only the managed engines' effective-type
	// tracking can see. Every case is in-bounds, so ASan and memcheck stay
	// silent by construction.
	TypeConfusion
)

var catNames = [...]string{"buffer-overflow", "null-dereference", "use-after-free", "varargs", "type-confusion"}

func (c Category) String() string { return catNames[c] }

// Access and Direction refine OOB cases per Table 2.
type Access int

const (
	ReadAccess Access = iota
	WriteAccess
)

func (a Access) String() string { return [...]string{"read", "write"}[a] }

// Direction is underflow vs. overflow.
type Direction int

const (
	Overflow Direction = iota
	Underflow
)

func (d Direction) String() string { return [...]string{"overflow", "underflow"}[d] }

// Mem is the storage class of the overflowed object (Table 2).
type Mem int

const (
	Stack Mem = iota
	Heap
	Global
	MainArgs
)

func (m Mem) String() string { return [...]string{"stack", "heap", "global", "main-args"}[m] }

// Case is one corpus program plus its ground truth.
type Case struct {
	Name   string
	Source string
	Stdin  string
	Args   []string

	Category  Category
	Access    Access
	Direction Direction
	Mem       Mem

	// OptimizedAwayAtO3 marks Fig. 3-style bugs that the -O3 pipeline
	// deletes before any native tool can see them.
	OptimizedAwayAtO3 bool
	// ASanBlindSpot marks the 8 bugs neither ASan nor Valgrind finds
	// (argv, missing interceptors, backend folding, redzone escape,
	// missing variadic argument).
	ASanBlindSpot bool
	// CaseStudy links a program to the paper's Figs. 10-14 ("" if none).
	CaseStudy string
	// Fixed is the repaired program, when one is bundled (the paper's
	// authors submitted fixes for the bugs they found); it must run clean
	// under every engine.
	Fixed string

	// construction-time shorthand, copied into the exported fields by the
	// case builders.
	truth truth
	blind bool
	study string
}

// The corpus is immutable after construction, so it is built exactly once
// per process; All() hands out defensive slice copies so that callers who
// edit a Case in place (tests swapping in the fixed source) cannot alias
// each other. The parallel evaluation driver in internal/harness calls
// All() from many goroutines.
var (
	allOnce  sync.Once
	allCases []Case
	byName   map[string]int
)

func buildAll() {
	var cases []Case
	cases = append(cases, mainArgsCases()...)      // 3
	cases = append(cases, globalCases()...)        // 9
	cases = append(cases, heapCases()...)          // 17
	cases = append(cases, stackCases()...)         // 32
	cases = append(cases, nullCases()...)          // 5
	cases = append(cases, uafCase())               // 1
	cases = append(cases, varargsCase())           // 1
	cases = append(cases, typeConfusionCases()...) // 8, beyond the paper
	byName = make(map[string]int, len(cases))
	for i := range cases {
		cases[i].Fixed = fixes[cases[i].Name]
		byName[cases[i].Name] = i
	}
	allCases = cases
}

// All returns the full 68-case corpus in a stable order.
func All() []Case {
	allOnce.Do(buildAll)
	return append([]Case(nil), allCases...)
}

// Get returns the named case. The second result reports whether it exists.
func Get(name string) (Case, bool) {
	allOnce.Do(buildAll)
	i, ok := byName[name]
	if !ok {
		return Case{}, false
	}
	return allCases[i], true
}

// ---- main() argument vector: 3 cases, all missed natively (Fig. 10) ----

func mainArgsCases() []Case {
	return []Case{
		{
			Name: "argv-direct-index",
			Source: `#include <stdio.h>
int main(int argc, char **argv) {
    printf("%d %s\n", argc, argv[5]);
    return 0;
}`,
			Category: BufferOverflow, Access: ReadAccess, Direction: Overflow, Mem: MainArgs,
			ASanBlindSpot: true, CaseStudy: "fig10",
		},
		{
			Name: "argv-loop-no-argc",
			Source: `#include <stdio.h>
/* Iterates one past the NULL terminator of argv. */
int main(int argc, char **argv) {
    int i;
    for (i = 0; i <= argc + 1; i++) {
        printf("arg %d: %p\n", i, (void*)argv[i]);
    }
    return 0;
}`,
			Category: BufferOverflow, Access: ReadAccess, Direction: Overflow, Mem: MainArgs,
			ASanBlindSpot: true,
		},
		{
			Name: "argv-option-scan",
			Source: `#include <stdio.h>
#include <string.h>
/* Assumes a flag is always followed by a value. */
int main(int argc, char **argv) {
    int i;
    for (i = 1; i <= argc; i++) {
        char *a = argv[i + 1];
        printf("next: %p\n", (void*)a);
    }
    return 0;
}`,
			Category: BufferOverflow, Access: ReadAccess, Direction: Overflow, Mem: MainArgs,
			ASanBlindSpot: true,
		},
	}
}

// ---- globals: 9 cases (5 read / 4 write), two of them in the 8 ----

func globalCases() []Case {
	cases := []Case{
		{
			Name: "global-const-folded",
			Source: `#include <stdio.h>
/* Fig. 13: the backend folds the constant-global load even at -O0,
 * deleting the out-of-bounds read before any tool runs. */
const int count[7] = {0, 0, 0, 0, 0, 0, 0};
int main(int argc, char **args) {
    return count[7];
}`,
			Category: BufferOverflow, Access: ReadAccess, Direction: Overflow, Mem: Global,
			ASanBlindSpot: true, CaseStudy: "fig13",
		},
		{
			Name: "global-redzone-escape",
			Source: `#include <stdio.h>
/* Fig. 14: unvalidated user input indexes a global table; the access
 * jumps far past ASan's redzone into the neighbouring global. */
const char *strings[7] = {"zero","one","two","three","four","five","six"};
char scratch[8192];
int main(void) {
    int number = 0;
    scanf("%d", &number);
    printf("%s\n", strings[number]);
    return (int)scratch[0];
}`,
			Stdin:    "900\n",
			Category: BufferOverflow, Access: ReadAccess, Direction: Overflow, Mem: Global,
			ASanBlindSpot: true, CaseStudy: "fig14",
		},
	}
	// Three more global reads, caught by ASan's global redzones.
	reads := []Case{
		{
			Name: "global-table-off-by-one",
			Source: `#include <stdio.h>
int weekdays[7] = {1, 2, 3, 4, 5, 6, 7};
int main(void) {
    int sum = 0;
    int i;
    for (i = 0; i <= 7; i++) {
        sum += weekdays[i];
    }
    printf("%d\n", sum);
    return 0;
}`,
		},
		{
			Name: "global-string-unterminated",
			Source: `#include <stdio.h>
/* The initializer exactly fills the array: no NUL terminator. */
char tag[4] = "WARN";
int main(void) {
    int n = 0;
    while (tag[n] != '\0') {
        n++;
    }
    printf("%d\n", n);
    return 0;
}`,
		},
		{
			Name: "global-hardcoded-size",
			Source: `#include <stdio.h>
short codes[10] = {1,2,3,4,5,6,7,8,9,10};
int main(void) {
    int sum = 0;
    int i;
    for (i = 0; i < 16; i++) { /* stale hard-coded bound */
        sum += codes[i];
    }
    printf("%d\n", sum);
    return 0;
}`,
		},
	}
	for i := range reads {
		reads[i].Category = BufferOverflow
		reads[i].Access = ReadAccess
		reads[i].Direction = Overflow
		reads[i].Mem = Global
	}
	cases = append(cases, reads...)

	writes := []Case{
		{
			Name: "global-counter-write",
			Source: `#include <stdio.h>
int counters[8];
int main(void) {
    int i;
    for (i = 1; i <= 8; i++) { /* writes counters[8] */
        counters[i - 1] = i;
        counters[i] = 0;
    }
    printf("%d\n", counters[3]);
    return 0;
}`,
		},
		{
			Name: "global-strcpy-too-long",
			Source: `#include <string.h>
#include <stdio.h>
char name[8];
int main(void) {
    strcpy(name, "excessively-long");
    printf("%s\n", name);
    return 0;
}`,
		},
		{
			Name: "global-histogram-range",
			Source: `#include <stdio.h>
int hist[10];
int main(void) {
    int values[5] = {3, 7, 10, 2, 4}; /* 10 is out of range */
    int i;
    for (i = 0; i < 5; i++) {
        hist[values[i]]++;
    }
    printf("%d\n", hist[3]);
    return 0;
}`,
		},
		{
			Name: "global-sentinel-write",
			Source: `#include <stdio.h>
double samples[16];
int main(void) {
    int n = 16;
    samples[n] = -1.0; /* sentinel one past the end */
    printf("%f\n", samples[0]);
    return 0;
}`,
		},
	}
	for i := range writes {
		writes[i].Category = BufferOverflow
		writes[i].Access = WriteAccess
		writes[i].Direction = Overflow
		writes[i].Mem = Global
	}
	// strcpy is intercepted by ASan; the others hit global redzones.
	return append(cases, writes...)
}

// ---- heap: 17 cases (9 read / 8 write; 2 underflows; 2 in the 8) ----

func heapCases() []Case {
	reads := []Case{
		{
			Name: "heap-printf-ld-int",
			Source: `#include <stdio.h>
/* Fig. 12: %ld reads 8 bytes where a 4-byte int was passed. The
 * interceptor checks only pointer arguments, so ASan is silent. */
int counter = 7;
int main(void) {
    printf("counter: %ld\n", counter);
    return 0;
}`,
			truth: truth{ReadAccess, Overflow, Heap},
			blind: true, study: "fig12",
		},
		{
			Name: "heap-missing-nul-space",
			Source: `#include <stdlib.h>
#include <string.h>
#include <stdio.h>
int main(void) {
    const char *src = "hello world";
    char *dst = malloc(strlen(src)); /* forgot +1 */
    strcpy(dst, src);
    printf("%s\n", dst);
    free(dst);
    return 0;
}`,
			truth: truth{WriteAccess, Overflow, Heap},
		},
		{
			Name: "heap-read-past-calloc",
			Source: `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int *v = calloc(6, sizeof(int));
    int i, sum = 0;
    for (i = 0; i <= 6; i++) {
        sum += v[i];
    }
    printf("%d\n", sum);
    free(v);
    return 0;
}`,
			truth: truth{ReadAccess, Overflow, Heap},
		},
		{
			Name: "heap-read-underflow",
			Source: `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int *v = malloc(4 * sizeof(int));
    int i;
    for (i = 0; i < 4; i++) v[i] = i;
    i = 0;
    printf("%d\n", v[i - 1]); /* index before the block */
    free(v);
    return 0;
}`,
			truth: truth{ReadAccess, Underflow, Heap},
		},
		{
			Name: "heap-strlen-unterminated",
			Source: `#include <stdlib.h>
#include <string.h>
#include <stdio.h>
int main(void) {
    char *buf = malloc(4);
    buf[0] = 'a'; buf[1] = 'b'; buf[2] = 'c'; buf[3] = 'd'; /* no NUL */
    printf("%d\n", (int)strlen(buf));
    free(buf);
    return 0;
}`,
			truth: truth{ReadAccess, Overflow, Heap},
		},
		{
			Name: "heap-check-after-read",
			Source: `#include <stdlib.h>
#include <stdio.h>
int get(int *a, int n, int i) {
    int v = a[i];          /* access first... */
    if (i >= n) return -1; /* ...check second */
    return v;
}
int main(void) {
    int *a = malloc(5 * sizeof(int));
    int i;
    for (i = 0; i < 5; i++) a[i] = i * i;
    printf("%d\n", get(a, 5, 5));
    free(a);
    return 0;
}`,
			truth: truth{ReadAccess, Overflow, Heap},
		},
		{
			Name: "heap-strchr-runs-off",
			Source: `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    char *s = malloc(3);
    int i;
    s[0] = 'x'; s[1] = 'y'; s[2] = 'z';
    for (i = 0; s[i] != 'q'; i++) { /* 'q' never present */
        if (i > 100) break;
    }
    printf("%d\n", i);
    free(s);
    return 0;
}`,
			truth: truth{ReadAccess, Overflow, Heap},
		},
		{
			Name: "heap-matrix-row-swap",
			Source: `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int rows = 3, cols = 4;
    int *m = malloc(rows * cols * sizeof(int));
    int r, c, sum = 0;
    for (r = 0; r < rows; r++)
        for (c = 0; c < cols; c++)
            m[r * cols + c] = r + c;
    /* transposed indexing walks past the end */
    for (c = 0; c < cols; c++)
        for (r = 0; r < rows; r++)
            sum += m[c * cols + r];
    printf("%d\n", sum);
    free(m);
    return 0;
}`,
			truth: truth{ReadAccess, Overflow, Heap},
		},
		{
			Name: "heap-off-by-one-copy",
			Source: `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int n = 8;
    long *src = malloc(n * sizeof(long));
    long *dst = malloc(n * sizeof(long));
    int i;
    for (i = 0; i < n; i++) src[i] = i;
    for (i = 1; i <= n; i++) dst[i - 1] = src[i]; /* reads src[8] */
    printf("%ld\n", dst[0]);
    free(src); free(dst);
    return 0;
}`,
			truth: truth{ReadAccess, Overflow, Heap},
		},
		{
			Name: "heap-memcmp-short-key",
			Source: `#include <stdlib.h>
#include <string.h>
#include <stdio.h>
int main(void) {
    char *stored = malloc(16);
    char *key = malloc(4); /* compared as if it were 16 bytes */
    memset(stored, 'a', 16);
    memset(key, 'a', 4);
    printf("%d\n", memcmp(stored, key, 16));
    free(stored);
    free(key);
    return 0;
}`,
			truth: truth{ReadAccess, Overflow, Heap},
		},
	}
	writes := []Case{
		{
			Name: "heap-int-overflow-alloc",
			Source: `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    /* short-typed size computation wraps to a small allocation */
    short n = 300;
    short bytes = (short)(n * 128); /* wraps negative -> small alloc */
    char *p;
    int count = 16;
    if (bytes < 64) bytes = 64;
    p = malloc(bytes);
    {
        int i;
        for (i = 0; i < count * 8; i++) {
            p[i] = (char)i;
        }
    }
    printf("%d\n", p[5]);
    free(p);
    return 0;
}`,
			truth: truth{WriteAccess, Overflow, Heap},
		},
		{
			Name: "heap-write-underflow",
			Source: `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    char *p = malloc(16);
    char *q = p + 4;
    q[-5] = 'x'; /* one byte before the block */
    printf("%d\n", p[0]);
    free(p);
    return 0;
}`,
			truth: truth{WriteAccess, Underflow, Heap},
		},
		{
			Name: "heap-terminator-slot",
			Source: `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int n = 10;
    int *p = malloc(n * sizeof(int));
    int i;
    for (i = 0; i < n; i++) p[i] = i;
    p[n] = -1; /* sentinel beyond the block */
    printf("%d\n", p[2]);
    free(p);
    return 0;
}`,
			truth: truth{WriteAccess, Overflow, Heap},
		},
		{
			Name: "heap-gets-overflow",
			Source: `#include <stdio.h>
#include <stdlib.h>
int main(void) {
    char *line = malloc(8);
    gets(line); /* classic */
    printf("%s\n", line);
    free(line);
    return 0;
}`,
			Stdin: "this-line-is-far-longer-than-eight-bytes\n",
			truth: truth{WriteAccess, Overflow, Heap},
		},
		{
			Name: "heap-append-no-grow",
			Source: `#include <stdlib.h>
#include <stdio.h>
struct vec { int len; int cap; int *data; };
void push(struct vec *v, int x) {
    v->data[v->len++] = x; /* never checks cap */
}
int main(void) {
    struct vec v;
    int i;
    v.len = 0; v.cap = 4;
    v.data = malloc(v.cap * sizeof(int));
    for (i = 0; i < 6; i++) push(&v, i);
    printf("%d\n", v.data[0]);
    free(v.data);
    return 0;
}`,
			truth: truth{WriteAccess, Overflow, Heap},
		},
		{
			Name: "heap-sprintf-overflow",
			Source: `#include <stdio.h>
#include <stdlib.h>
int main(void) {
    char *buf = malloc(8);
    sprintf(buf, "value=%d", 123456789); /* 15 chars + NUL */
    printf("%s\n", buf);
    free(buf);
    return 0;
}`,
			truth: truth{WriteAccess, Overflow, Heap},
		},
		{
			Name: "heap-strcat-no-room",
			Source: `#include <stdlib.h>
#include <string.h>
#include <stdio.h>
int main(void) {
    char *s = malloc(8);
    strcpy(s, "abcd");
    strcat(s, "efghijkl"); /* 13 bytes into 8 */
    printf("%s\n", s);
    free(s);
    return 0;
}`,
			truth: truth{WriteAccess, Overflow, Heap},
		},
	}
	var out []Case
	for _, c := range append(reads, writes...) {
		c.Category = BufferOverflow
		c.Access = c.truth.access
		c.Direction = c.truth.dir
		c.Mem = c.truth.mem
		c.ASanBlindSpot = c.blind
		c.CaseStudy = c.study
		out = append(out, c)
	}
	return out
}

// truth is internal shorthand used while building cases.
type truth struct {
	access Access
	dir    Direction
	mem    Mem
}

// ---- NULL dereferences: 5 cases ----

func nullCases() []Case {
	srcs := []struct {
		name, src string
	}{
		{"null-unchecked-malloc", `#include <stdlib.h>
#include <stdio.h>
int main(void) {
    int *p = malloc((unsigned long)1 << 62); /* fails */
    *p = 42;
    printf("%d\n", *p);
    return 0;
}`},
		{"null-strchr-result", `#include <string.h>
#include <stdio.h>
int main(void) {
    const char *s = "no colon here";
    char *colon = strchr(s, ':');
    printf("%c\n", *colon); /* NULL when absent */
    return 0;
}`},
		{"null-empty-list-head", `#include <stdlib.h>
#include <stdio.h>
struct node { int v; struct node *next; };
int main(void) {
    struct node *head = NULL;
    printf("%d\n", head->v);
    return 0;
}`},
		{"null-write-through", `#include <stdio.h>
int store(int *out, int v) { *out = v; return 0; }
int main(void) {
    store((void*)0, 7);
    return 0;
}`},
		{"null-fgets-eof", `#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[32];
    char *line = fgets(buf, 32, stdin); /* EOF -> NULL */
    buf[0] = '\0';
    printf("%d\n", (int)strlen(line));
    return 0;
}`},
	}
	var out []Case
	for i, s := range srcs {
		acc := ReadAccess
		if i == 3 {
			acc = WriteAccess
		}
		out = append(out, Case{
			Name: s.name, Source: s.src,
			Category: NullDereference, Access: acc, Direction: Overflow, Mem: Heap,
		})
	}
	return out
}

func uafCase() Case {
	return Case{
		Name: "uaf-config-reload",
		Source: `#include <stdlib.h>
#include <string.h>
#include <stdio.h>
struct config { int verbose; char name[16]; };
int main(void) {
    struct config *cfg = malloc(sizeof(struct config));
    cfg->verbose = 1;
    strcpy(cfg->name, "default");
    free(cfg);
    printf("%d\n", cfg->verbose); /* stale pointer */
    return 0;
}`,
		Category: UseAfterFree, Access: ReadAccess, Direction: Overflow, Mem: Heap,
	}
}

func varargsCase() Case {
	return Case{
		Name: "varargs-missing-argument",
		Source: `#include <stdio.h>
/* The format names two conversions; only one argument is passed. */
int main(void) {
    printf("%d %d\n", 1);
    return 0;
}`,
		Category: Varargs, Access: ReadAccess, Direction: Overflow, Mem: Heap,
		ASanBlindSpot: true, CaseStudy: "fig-missing-vararg",
	}
}

// Count sanity-checks the corpus against the paper's totals; tests call it.
// TypeConfusion cases are beyond the paper and counted separately so the
// paper-facing totals (68 = 61+5+1+1) stay pinned.
func Count() (total, oob, null, uaf, va, tc int) {
	for _, c := range All() {
		switch c.Category {
		case BufferOverflow:
			oob++
		case NullDereference:
			null++
		case UseAfterFree:
			uaf++
		case Varargs:
			va++
		case TypeConfusion:
			tc++
			continue
		}
		total++
	}
	return
}

var _ = fmt.Sprintf
