package corpus

import "testing"

// TestDistributionMatchesPaper checks Tables 1 and 2 cell for cell. The
// type-confusion cases sit outside the paper's tables and are pinned
// separately.
func TestDistributionMatchesPaper(t *testing.T) {
	total, oob, null, uaf, va, tc := Count()
	if total != 68 {
		t.Errorf("paper total = %d, want 68", total)
	}
	if oob != 61 || null != 5 || uaf != 1 || va != 1 {
		t.Errorf("Table 1 = OOB %d / NULL %d / UAF %d / VA %d, want 61/5/1/1", oob, null, uaf, va)
	}
	if tc != 8 {
		t.Errorf("type-confusion cases = %d, want 8", tc)
	}
	var r, w, u, o int
	mems := map[Mem]int{}
	for _, c := range All() {
		if c.Category != BufferOverflow {
			continue
		}
		if c.Access == ReadAccess {
			r++
		} else {
			w++
		}
		if c.Direction == Underflow {
			u++
		} else {
			o++
		}
		mems[c.Mem]++
	}
	if r != 32 || w != 29 {
		t.Errorf("reads/writes = %d/%d, want 32/29", r, w)
	}
	if u != 8 || o != 53 {
		t.Errorf("under/over = %d/%d, want 8/53", u, o)
	}
	if mems[Stack] != 32 || mems[Heap] != 17 || mems[Global] != 9 || mems[MainArgs] != 3 {
		t.Errorf("mem kinds = stack %d heap %d global %d args %d, want 32/17/9/3",
			mems[Stack], mems[Heap], mems[Global], mems[MainArgs])
	}
}

func TestBlindSpotsAndOptimizedAway(t *testing.T) {
	blind, opt3 := 0, 0
	names := map[string]bool{}
	for _, c := range All() {
		if names[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		switch {
		case c.Category == TypeConfusion && !c.ASanBlindSpot:
			t.Errorf("%s: type-confusion case must be an ASan blind spot", c.Name)
		case c.Category == TypeConfusion:
			// In-bounds by construction, blind by design: not counted
			// against the paper's 8.
		case c.ASanBlindSpot:
			blind++
		}
		if c.OptimizedAwayAtO3 {
			opt3++
		}
		if c.Source == "" {
			t.Errorf("%s: empty source", c.Name)
		}
	}
	if blind != 8 {
		t.Errorf("blind spots = %d, want 8 (the paper's 8 bugs)", blind)
	}
	if opt3 != 4 {
		t.Errorf("optimized away at -O3 = %d, want 4 (60 - 56)", opt3)
	}
}

func TestCaseStudiesPresent(t *testing.T) {
	want := map[string]bool{"fig10": false, "fig11": false, "fig12": false, "fig13": false, "fig14": false}
	for _, c := range All() {
		if _, ok := want[c.CaseStudy]; ok {
			want[c.CaseStudy] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("case study %s missing from corpus", k)
		}
	}
}
