package corpus_test

// Regression tests for committed campaign finds: every find must keep
// reproducing its cross-tool blind spot (Safe Sulong detects, the simulated
// native tools at -O0 stay silent), and must never leak into the pinned
// paper corpus.

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/harness"
)

func TestFuzzFindsStayBlindSpots(t *testing.T) {
	finds := corpus.FuzzFinds()
	if len(finds) == 0 {
		t.Fatal("no committed fuzz finds")
	}
	for _, c := range finds {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			safe := harness.RunCase(c, harness.SafeSulong)
			if !safe.Detected {
				t.Fatalf("SafeSulong no longer detects %s: %s", c.Name, safe.Status())
			}
			for _, tool := range []harness.Tool{harness.ASanO0, harness.ValgrindO0, harness.NativeO0} {
				d := harness.RunCase(c, tool)
				if d.Detected || d.Crashed {
					t.Fatalf("%s now sees %s (%s) — the blind spot this find documents has closed; "+
						"if that is an intentional tool improvement, retire the find explicitly", tool, c.Name, d.Status())
				}
			}
		})
	}
}

func TestFuzzFindsSeparateFromPaperCorpus(t *testing.T) {
	names := map[string]bool{}
	for _, c := range corpus.All() {
		names[c.Name] = true
	}
	for _, f := range corpus.FuzzFinds() {
		if names[f.Name] {
			t.Fatalf("fuzz find %q is also in the pinned paper corpus", f.Name)
		}
	}
}
