package corpus

// fixes maps case names to repaired sources. The paper reports that the
// authors "provided bug fixes ... many of which were accepted by the
// project maintainers"; these are this corpus's equivalents, and the test
// suite verifies each runs clean under the managed engine.
var fixes = map[string]string{
	"argv-direct-index": `#include <stdio.h>
int main(int argc, char **argv) {
    if (argc > 5) {
        printf("%d %s\n", argc, argv[5]);
    } else {
        printf("%d (no argv[5])\n", argc);
    }
    return 0;
}`,
	"stack-strtok-delim": `#include <string.h>
#include <stdio.h>
char buf[32] = "alpha\nbeta";
int main(void) {
    const char t[2] = "\n"; /* room for the terminator */
    char *tok = strtok(buf, t);
    while (tok != NULL) {
        puts(tok);
        tok = strtok(NULL, t);
    }
    return 0;
}`,
	"heap-printf-ld-int": `#include <stdio.h>
int counter = 7;
int main(void) {
    printf("counter: %d\n", counter); /* width matches the argument */
    return 0;
}`,
	"global-const-folded": `#include <stdio.h>
const int count[7] = {0, 0, 0, 0, 0, 0, 0};
int main(int argc, char **args) {
    return count[6]; /* last valid element */
}`,
	"global-redzone-escape": `#include <stdio.h>
const char *strings[7] = {"zero","one","two","three","four","five","six"};
char scratch[8192];
int main(void) {
    int number = 0;
    scanf("%d", &number);
    if (number >= 0 && number < 7) {
        printf("%s\n", strings[number]);
    } else {
        printf("out of range\n");
    }
    return (int)scratch[0];
}`,
	"varargs-missing-argument": `#include <stdio.h>
int main(void) {
    printf("%d %d\n", 1, 2); /* both arguments supplied */
    return 0;
}`,
	"stack-off-by-one-sum": `#include <stdio.h>
int main(void) {
    int grades[5] = {90, 85, 77, 92, 60};
    int sum = 0;
    int i;
    for (i = 0; i < 5; i++) {
        sum += grades[i];
    }
    printf("avg=%d\n", sum / 5);
    return 0;
}`,
	"heap-missing-nul-space": `#include <stdlib.h>
#include <string.h>
#include <stdio.h>
int main(void) {
    const char *src = "hello world";
    char *dst = malloc(strlen(src) + 1);
    strcpy(dst, src);
    printf("%s\n", dst);
    free(dst);
    return 0;
}`,
	"uaf-config-reload": `#include <stdlib.h>
#include <string.h>
#include <stdio.h>
struct config { int verbose; char name[16]; };
int main(void) {
    struct config *cfg = malloc(sizeof(struct config));
    cfg->verbose = 1;
    strcpy(cfg->name, "default");
    printf("%d\n", cfg->verbose); /* read before free */
    free(cfg);
    return 0;
}`,
	"null-strchr-result": `#include <string.h>
#include <stdio.h>
int main(void) {
    const char *s = "no colon here";
    char *colon = strchr(s, ':');
    if (colon != NULL) {
        printf("%c\n", *colon);
    } else {
        printf("absent\n");
    }
    return 0;
}`,
}

// FixedSource returns the repaired source for a case name ("" if none).
func FixedSource(name string) string { return fixes[name] }
