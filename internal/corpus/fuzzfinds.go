package corpus

// Campaign-discovered cases, promoted from intake files (see intake.go).
//
// These live in their own registry, NOT in All(): the main corpus's
// distribution is pinned cell-for-cell to the paper's Tables 1–2, and the
// detection-matrix totals (76 detected, 16 missed by both native tools) are
// regression-tested. Fuzz finds grow over time and would silently shift
// those pins; keeping them separate preserves the paper reproduction while
// still giving every find a committed program and a regression test.

// FuzzFinds returns the committed campaign finds in discovery order, as
// defensive copies like All().
func FuzzFinds() []Case {
	finds := []Case{
		// Found by the generator (campaign seed 0xC0FFEE, program #49,
		// generator seed 0xcac6676c2ee96f9, injected tag "far-global-read")
		// and auto-minimized from 76 lines to 13 by the campaign's ddmin
		// pass, re-verified against the cross-tool oracle: Safe Sulong
		// reports the out-of-bounds global read at offset 856 of a 48-byte
		// object; simulated ASan, Valgrind, and the bare native machine all
		// stay silent, because the read lands 800 bytes past the redzone in
		// plain mapped memory. The paper's §4.1 "far out-of-bounds" blind
		// spot, reproduced by fuzzing rather than by hand.
		{
			Name: "fuzz-far-global-read",
			Source: `long g0[6] = {55, 99, 16, 16, 85, 8};
int main(void) {
    unsigned long chk = 636ul;
    int i;
    int j;
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 3; j++) {
            if (((i ^ j) & 1) == 0) {
            }
        }
    }
    chk += (unsigned long)(long)g0[107]; /* far out of bounds */
}
`,
			Category:      BufferOverflow,
			Access:        ReadAccess,
			Direction:     Overflow,
			Mem:           Global,
			ASanBlindSpot: true,
		},
	}
	out := make([]Case, len(finds))
	copy(out, finds)
	return out
}
