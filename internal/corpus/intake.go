package corpus

// Intake is the bridge from the fuzzing campaign (internal/campaign) to the
// corpus: a minimized finding is emitted as one self-describing JSON file
// whose provenance — campaign seed, generator, oracle class, divergence
// signature — is enough to regenerate and re-verify the find from scratch.
// Promoting an intake file to a committed case is a human act (it lands in
// fuzzfinds.go with a regression test), so the intake format is the durable
// hand-off, not a hidden pipeline.

import (
	"encoding/json"
	"fmt"
)

// IntakeCase is one campaign finding in corpus-shaped form.
type IntakeCase struct {
	// Name is the proposed case name ("fuzz-<kind>-<seed>").
	Name string `json:"name"`
	// Seed regenerates the original (pre-minimization) program via
	// gen.Generate / gen.Mutate — the find's birth certificate.
	Seed uint64 `json:"seed"`
	// Generator is "gen" (grammar) or "mut:<corpus case>" (mutator).
	Generator string `json:"generator"`
	// Class is the campaign finding kind (campaign.Kind* constants).
	Class string `json:"class"`
	// Signature is the divergence signature the oracle recorded.
	Signature string `json:"signature"`
	// Bug is the generator's injected-bug tag, when the program was born
	// with an intended defect ("" for accidental finds — the valuable ones).
	Bug string `json:"bug,omitempty"`
	// Verified reports that Source is the minimized program and the
	// minimizer re-checked it against the originating oracle. False means
	// Source is raw and the find may be flaky.
	Verified bool `json:"verified"`
	// Source is the program (minimized when Verified).
	Source string `json:"source"`
}

// ParseIntake decodes and validates one intake file.
func ParseIntake(data []byte) (IntakeCase, error) {
	var ic IntakeCase
	if err := json.Unmarshal(data, &ic); err != nil {
		return IntakeCase{}, fmt.Errorf("intake: %w", err)
	}
	switch {
	case ic.Name == "":
		return IntakeCase{}, fmt.Errorf("intake: missing name")
	case ic.Source == "":
		return IntakeCase{}, fmt.Errorf("intake %s: missing source", ic.Name)
	case ic.Class == "":
		return IntakeCase{}, fmt.Errorf("intake %s: missing class", ic.Name)
	}
	return ic, nil
}
