package corpus

// The type-confusion extension: 8 cases beyond the paper's Table 1. Every
// program performs only in-bounds, initialized accesses, so the native
// tools have nothing to object to — ASan's redzones and memcheck's A/V
// bits both model *where* memory is valid, never *what* it holds. The
// managed engines track each allocation's effective type (declared,
// cast-adopted, or vararg-stamped) and report the mismatch exactly:
// bad union reads, mismatched pointer casts, and variadic argument
// type mismatches.
func typeConfusionCases() []Case {
	return []Case{
		{
			Name: "union-double-as-long",
			Source: `#include <stdio.h>
/* Message codec that stores a double payload, then decodes the integer
 * branch of the union without checking the tag. */
union payload { long i; double d; };
int main(void) {
    union payload p;
    p.d = 3.14;
    printf("%ld\n", p.i); /* reads the double's bit pattern as a long */
    return 0;
}`,
			Category: TypeConfusion, Access: ReadAccess, Direction: Overflow, Mem: Stack,
			ASanBlindSpot: true,
		},
		{
			Name: "union-float-as-int",
			Source: `#include <stdio.h>
/* Classic fast-inverse-square-root-style pun, minus the deliberate intent:
 * the float member is live, the int member is read. */
union bits { int i; float f; };
int main(void) {
    union bits u;
    u.f = 1.5f;
    printf("%d\n", u.i);
    return 0;
}`,
			Category: TypeConfusion, Access: ReadAccess, Direction: Overflow, Mem: Stack,
			ASanBlindSpot: true,
		},
		{
			Name: "union-nested-struct-pun",
			Source: `#include <stdio.h>
/* The live member is the double; the read goes through the struct arm. */
struct cell { long tag; };
union slot { struct cell c; double d; };
int main(void) {
    union slot s;
    s.d = 2.5;
    printf("%ld\n", s.c.tag);
    return 0;
}`,
			Category: TypeConfusion, Access: ReadAccess, Direction: Overflow, Mem: Stack,
			ASanBlindSpot: true,
		},
		{
			Name: "cast-undersized-heap",
			Source: `#include <stdlib.h>
#include <stdio.h>
/* A size calculation that accounts for one field casts the block to a
 * two-field struct. Every access stays inside the 8 allocated bytes, so
 * the native tools see nothing; the object is still not a struct pair. */
struct pair { long a; long b; };
int main(void) {
    struct pair *p = (struct pair *)malloc(sizeof(long));
    if (p == 0) {
        return 1;
    }
    p->a = 7;
    printf("%ld\n", p->a);
    return 0;
}`,
			Category: TypeConfusion, Access: WriteAccess, Direction: Overflow, Mem: Heap,
			ASanBlindSpot: true,
		},
		{
			Name: "cast-unrelated-struct",
			Source: `#include <stdio.h>
/* Same size, unrelated layout: two longs reinterpreted as two doubles. */
struct point { long x; long y; };
struct span { double lo; double hi; };
int main(void) {
    struct point pt;
    struct span *s;
    pt.x = 1;
    pt.y = 2;
    s = (struct span *)&pt;
    printf("%f\n", s->lo);
    return 0;
}`,
			Category: TypeConfusion, Access: ReadAccess, Direction: Overflow, Mem: Stack,
			ASanBlindSpot: true,
		},
		{
			Name: "cast-heap-retype",
			Source: `#include <stdlib.h>
#include <stdio.h>
/* The block legitimately becomes a struct header at its first cast, then
 * a second, unrelated cast retypes it. No access ever leaves the block. */
struct header { long tag; long len; };
struct coord { double x; double y; };
int main(void) {
    void *raw = malloc(sizeof(struct header));
    struct header *h;
    struct coord *c;
    if (raw == 0) {
        return 1;
    }
    h = (struct header *)raw;
    h->tag = 42;
    c = (struct coord *)raw; /* retype: header is the effective type */
    if (c == 0) {
        return 1;
    }
    printf("%ld\n", h->tag);
    free(raw);
    return 0;
}`,
			Category: TypeConfusion, Access: ReadAccess, Direction: Overflow, Mem: Heap,
			ASanBlindSpot: true,
		},
		{
			Name: "printf-int-for-double",
			Source: `#include <stdio.h>
/* The format promises a double; the argument is an integer. The native
 * machine reads the 8-byte vararg slot as floating bits and prints
 * garbage without complaint. */
int main(void) {
    long n = 42;
    printf("%f\n", n);
    return 0;
}`,
			Category: TypeConfusion, Access: ReadAccess, Direction: Overflow, Mem: Stack,
			ASanBlindSpot: true,
		},
		{
			Name: "printf-double-for-long",
			Source: `#include <stdio.h>
/* The converse confusion: a double argument read through %ld. */
int main(void) {
    printf("%ld\n", 3.5);
    return 0;
}`,
			Category: TypeConfusion, Access: ReadAccess, Direction: Overflow, Mem: Stack,
			ASanBlindSpot: true,
		},
	}
}
