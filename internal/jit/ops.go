package jit

import (
	"math"

	"repro/internal/core"
	"repro/internal/ir"
)

// compileBin specializes an arithmetic instruction: the operator, width, and
// — when the operands are registers or constants — the exact operand reads
// are baked into one closure, so the hot path is a single Go function with
// no dispatch and no getter indirection. Division keeps its zero check (a
// trap the paper's compiler must preserve: safe semantics).
func (c *Compiler) compileBin(e *core.Engine, in *ir.Instr, fname string, line int) (step, error) {
	dst := in.Dst
	if in.Bin.IsFloatOp() {
		return c.compileFloatBin(e, in)
	}

	bits := intBits(in.Ty)
	shift := uint(64 - bits)
	// Register-register and register-constant fast forms for the common
	// operators (profiling showed two getter closure calls per ALU op).
	if in.A.Kind == ir.OperReg {
		ra := in.A.Reg
		if in.B.Kind == ir.OperReg {
			if st := intBinRR(in.Bin, dst, ra, in.B.Reg, shift); st != nil {
				return st, nil
			}
		} else if in.B.Kind == ir.OperConstInt {
			if st := intBinRC(in.Bin, dst, ra, in.B.Int, shift); st != nil {
				return st, nil
			}
		}
	}

	getA, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	getB, err := c.compileOperand(e, in.B)
	if err != nil {
		return nil, err
	}
	norm := func(v int64) int64 { return v }
	if bits < 64 {
		norm = func(v int64) int64 { return v << shift >> shift }
	}
	switch in.Bin {
	case ir.Add:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(norm(getA(e, fr).I + getB(e, fr).I))
			return nil
		}, nil
	case ir.Sub:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(norm(getA(e, fr).I - getB(e, fr).I))
			return nil
		}, nil
	case ir.Mul:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(norm(getA(e, fr).I * getB(e, fr).I))
			return nil
		}, nil
	case ir.And:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(getA(e, fr).I & getB(e, fr).I)
			return nil
		}, nil
	case ir.Or:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(getA(e, fr).I | getB(e, fr).I)
			return nil
		}, nil
	case ir.Xor:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(getA(e, fr).I ^ getB(e, fr).I)
			return nil
		}, nil
	case ir.Shl:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(norm(getA(e, fr).I << (uint64(getB(e, fr).I) & 63)))
			return nil
		}, nil
	case ir.AShr:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(getA(e, fr).I >> (uint64(getB(e, fr).I) & 63))
			return nil
		}, nil
	}
	// The less common operators (division, remainders, logical shift) fall
	// back to the shared ALU, keeping the zero-divide check.
	op := in.Bin
	b := bits
	return func(e *core.Engine, fr *core.Frame) error {
		v, ok := ir.EvalIntBin(op, b, getA(e, fr).I, getB(e, fr).I)
		if !ok {
			return e.Located(&core.BugError{Kind: core.DivideByZero}, fname, line)
		}
		fr.Regs[dst] = core.IntValue(v)
		return nil
	}, nil
}

// intBinRR builds a direct register-register closure, or nil when the
// operator has no fast form. Values are canonically sign-extended, so the
// narrowing normalization is a pair of baked shifts (zero shifts at i64).
func intBinRR(op ir.BinOp, dst, ra, rb int, shift uint) step {
	switch op {
	case ir.Add:
		if shift == 0 {
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.IntValue(fr.Regs[ra].I + fr.Regs[rb].I)
				return nil
			}
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue((fr.Regs[ra].I + fr.Regs[rb].I) << shift >> shift)
			return nil
		}
	case ir.Sub:
		if shift == 0 {
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.IntValue(fr.Regs[ra].I - fr.Regs[rb].I)
				return nil
			}
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue((fr.Regs[ra].I - fr.Regs[rb].I) << shift >> shift)
			return nil
		}
	case ir.Mul:
		if shift == 0 {
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.IntValue(fr.Regs[ra].I * fr.Regs[rb].I)
				return nil
			}
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue((fr.Regs[ra].I * fr.Regs[rb].I) << shift >> shift)
			return nil
		}
	case ir.And:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(fr.Regs[ra].I & fr.Regs[rb].I)
			return nil
		}
	case ir.Or:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(fr.Regs[ra].I | fr.Regs[rb].I)
			return nil
		}
	case ir.Xor:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(fr.Regs[ra].I ^ fr.Regs[rb].I)
			return nil
		}
	case ir.Shl:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue((fr.Regs[ra].I << (uint64(fr.Regs[rb].I) & 63)) << shift >> shift)
			return nil
		}
	case ir.AShr:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(fr.Regs[ra].I >> (uint64(fr.Regs[rb].I) & 63))
			return nil
		}
	}
	return nil
}

// intBinRC builds a direct register-constant closure (loop increments,
// masks, strides), or nil when the operator has no fast form.
func intBinRC(op ir.BinOp, dst, ra int, bv int64, shift uint) step {
	switch op {
	case ir.Add:
		if shift == 0 {
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.IntValue(fr.Regs[ra].I + bv)
				return nil
			}
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue((fr.Regs[ra].I + bv) << shift >> shift)
			return nil
		}
	case ir.Sub:
		if shift == 0 {
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.IntValue(fr.Regs[ra].I - bv)
				return nil
			}
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue((fr.Regs[ra].I - bv) << shift >> shift)
			return nil
		}
	case ir.Mul:
		if shift == 0 {
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.IntValue(fr.Regs[ra].I * bv)
				return nil
			}
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue((fr.Regs[ra].I * bv) << shift >> shift)
			return nil
		}
	case ir.And:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(fr.Regs[ra].I & bv)
			return nil
		}
	case ir.Or:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(fr.Regs[ra].I | bv)
			return nil
		}
	case ir.Xor:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(fr.Regs[ra].I ^ bv)
			return nil
		}
	case ir.Shl:
		s := uint64(bv) & 63
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue((fr.Regs[ra].I << s) << shift >> shift)
			return nil
		}
	case ir.AShr:
		s := uint64(bv) & 63
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(fr.Regs[ra].I >> s)
			return nil
		}
	}
	return nil
}

func (c *Compiler) compileFloatBin(e *core.Engine, in *ir.Instr) (step, error) {
	dst := in.Dst
	bits := 64
	if ft, ok := in.Ty.(*ir.FloatType); ok {
		bits = ft.Bits
	}
	// Double-precision register-register forms: the inner loops of the
	// numeric benchgame programs (nbody, spectralnorm, mandelbrot).
	if bits == 64 && in.A.Kind == ir.OperReg && in.B.Kind == ir.OperReg {
		ra, rb := in.A.Reg, in.B.Reg
		switch in.Bin {
		case ir.FAdd:
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(fr.Regs[ra].F + fr.Regs[rb].F)
				return nil
			}, nil
		case ir.FSub:
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(fr.Regs[ra].F - fr.Regs[rb].F)
				return nil
			}, nil
		case ir.FMul:
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(fr.Regs[ra].F * fr.Regs[rb].F)
				return nil
			}, nil
		case ir.FDiv:
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(fr.Regs[ra].F / fr.Regs[rb].F)
				return nil
			}, nil
		}
	}
	if bits == 64 && in.A.Kind == ir.OperReg && in.B.Kind == ir.OperConstFloat {
		ra, bv := in.A.Reg, in.B.Flt
		switch in.Bin {
		case ir.FAdd:
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(fr.Regs[ra].F + bv)
				return nil
			}, nil
		case ir.FSub:
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(fr.Regs[ra].F - bv)
				return nil
			}, nil
		case ir.FMul:
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(fr.Regs[ra].F * bv)
				return nil
			}, nil
		case ir.FDiv:
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(fr.Regs[ra].F / bv)
				return nil
			}, nil
		}
	}
	getA, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	getB, err := c.compileOperand(e, in.B)
	if err != nil {
		return nil, err
	}
	var fop func(a, b float64) float64
	switch in.Bin {
	case ir.FAdd:
		fop = func(a, b float64) float64 { return a + b }
	case ir.FSub:
		fop = func(a, b float64) float64 { return a - b }
	case ir.FMul:
		fop = func(a, b float64) float64 { return a * b }
	case ir.FDiv:
		fop = func(a, b float64) float64 { return a / b }
	case ir.FRem:
		fop = math.Mod
	}
	if bits == 32 {
		inner := fop
		fop = func(a, b float64) float64 { return float64(float32(inner(a, b))) }
	}
	return func(e *core.Engine, fr *core.Frame) error {
		fr.Regs[dst] = core.FloatValue(fop(getA(e, fr).F, getB(e, fr).F))
		return nil
	}, nil
}

func (c *Compiler) compileCmp(e *core.Engine, in *ir.Instr) (step, error) {
	getA, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	getB, err := c.compileOperand(e, in.B)
	if err != nil {
		return nil, err
	}
	dst := in.Dst
	switch {
	case in.Pred.IsFloatPred():
		pred := in.Pred
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(ir.EvalFloatCmp(pred, getA(e, fr).F, getB(e, fr).F)))
			return nil
		}, nil
	case ir.IsPtr(in.Ty):
		pred := in.Pred
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(core.EvalPtrCmp(pred, getA(e, fr).P, getB(e, fr).P)))
			return nil
		}, nil
	}
	bits := intBits(in.Ty)
	switch in.Pred {
	case ir.Eq:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I == getB(e, fr).I))
			return nil
		}, nil
	case ir.Ne:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I != getB(e, fr).I))
			return nil
		}, nil
	case ir.Slt:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I < getB(e, fr).I))
			return nil
		}, nil
	case ir.Sle:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I <= getB(e, fr).I))
			return nil
		}, nil
	case ir.Sgt:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I > getB(e, fr).I))
			return nil
		}, nil
	case ir.Sge:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I >= getB(e, fr).I))
			return nil
		}, nil
	}
	pred := in.Pred
	return func(e *core.Engine, fr *core.Frame) error {
		fr.Regs[dst] = core.IntValue(b2i(ir.EvalIntCmp(pred, bits, getA(e, fr).I, getB(e, fr).I)))
		return nil
	}, nil
}

// cmpBool evaluates a comparison to a Go bool (used by the fused
// cmp+condbr terminator, which never materializes the i1).
type cmpBool func(e *core.Engine, fr *core.Frame) bool

// compileCmpBool specializes the register-register and register-constant
// signed forms (the shapes loop exit tests take); everything else reads
// through operand getters.
func (c *Compiler) compileCmpBool(e *core.Engine, in *ir.Instr) (cmpBool, error) {
	if !in.Pred.IsFloatPred() && !ir.IsPtr(in.Ty) && in.A.Kind == ir.OperReg {
		ra := in.A.Reg
		if in.B.Kind == ir.OperReg {
			rb := in.B.Reg
			switch in.Pred {
			case ir.Eq:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I == fr.Regs[rb].I }, nil
			case ir.Ne:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I != fr.Regs[rb].I }, nil
			case ir.Slt:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I < fr.Regs[rb].I }, nil
			case ir.Sle:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I <= fr.Regs[rb].I }, nil
			case ir.Sgt:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I > fr.Regs[rb].I }, nil
			case ir.Sge:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I >= fr.Regs[rb].I }, nil
			}
		} else if in.B.Kind == ir.OperConstInt {
			bv := in.B.Int
			switch in.Pred {
			case ir.Eq:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I == bv }, nil
			case ir.Ne:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I != bv }, nil
			case ir.Slt:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I < bv }, nil
			case ir.Sle:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I <= bv }, nil
			case ir.Sgt:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I > bv }, nil
			case ir.Sge:
				return func(e *core.Engine, fr *core.Frame) bool { return fr.Regs[ra].I >= bv }, nil
			}
		}
	}
	getA, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	getB, err := c.compileOperand(e, in.B)
	if err != nil {
		return nil, err
	}
	switch {
	case in.Pred.IsFloatPred():
		pred := in.Pred
		return func(e *core.Engine, fr *core.Frame) bool {
			return ir.EvalFloatCmp(pred, getA(e, fr).F, getB(e, fr).F)
		}, nil
	case ir.IsPtr(in.Ty):
		pred := in.Pred
		return func(e *core.Engine, fr *core.Frame) bool {
			return core.EvalPtrCmp(pred, getA(e, fr).P, getB(e, fr).P)
		}, nil
	}
	pred := in.Pred
	bits := intBits(in.Ty)
	return func(e *core.Engine, fr *core.Frame) bool {
		return ir.EvalIntCmp(pred, bits, getA(e, fr).I, getB(e, fr).I)
	}, nil
}

// compileFusedCmpBr lowers a cmp whose only reader is the block's condbr
// into the terminator itself: one closure evaluates the comparison and
// branches, skipping the i1 materialization and a dispatch. Legal because
// neither instruction can fault; the cmp's fuel weight moves onto the
// terminator (same block total).
func (c *Compiler) compileFusedCmpBr(e *core.Engine, cmp, br *ir.Instr) (term, error) {
	cond, err := c.compileCmpBool(e, cmp)
	if err != nil {
		return nil, err
	}
	t, f := br.Blk0, br.Blk1
	return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
		if cond(e, fr) {
			return t, core.Value{}, false, nil
		}
		return f, core.Value{}, false, nil
	}, nil
}

func (c *Compiler) compileCast(e *core.Engine, in *ir.Instr, fname string, line int) (step, error) {
	getA, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	dst := in.Dst
	switch in.Cast {
	case ir.Bitcast:
		if in.CType != "" {
			// Checked pointer cast: validate the target type against the
			// pointee's effective type via the shared interpreter check, so
			// both tiers produce the byte-identical diagnostic.
			inst := in
			return func(e *core.Engine, fr *core.Frame) error {
				v := getA(e, fr)
				if be := e.CheckCast(v.P, inst); be != nil {
					return e.Located(be, fname, line)
				}
				fr.Regs[dst] = v
				return nil
			}, nil
		}
		if in.A.Kind == ir.OperReg {
			src := in.A.Reg
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = fr.Regs[src]
				return nil
			}, nil
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = getA(e, fr)
			return nil
		}, nil
	case ir.PtrToInt:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(core.PointerToken(getA(e, fr).P))
			return nil
		}, nil
	case ir.IntToPtr:
		return func(e *core.Engine, fr *core.Frame) error {
			v := getA(e, fr).I
			if v == 0 {
				fr.Regs[dst] = core.PtrValue(core.Pointer{})
			} else {
				fr.Regs[dst] = core.PtrValue(core.Pointer{Off: v})
			}
			return nil
		}, nil
	case ir.SExt:
		if in.A.Kind == ir.OperReg {
			src := in.A.Reg
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = fr.Regs[src] // values are already sign-extended
				return nil
			}, nil
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = getA(e, fr)
			return nil
		}, nil
	case ir.SIToFP:
		to := intBits(in.Ty2)
		if in.A.Kind == ir.OperReg && to == 64 {
			src := in.A.Reg
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.FloatValue(float64(fr.Regs[src].I))
				return nil
			}, nil
		}
	}
	op := in.Cast
	from, to := intBits(in.Ty), intBits(in.Ty2)
	return func(e *core.Engine, fr *core.Frame) error {
		a := getA(e, fr)
		i, f, isF := ir.EvalCast(op, from, to, a.I, a.F)
		if isF {
			fr.Regs[dst] = core.FloatValue(f)
		} else {
			fr.Regs[dst] = core.IntValue(i)
		}
		return nil
	}, nil
}

// Direct-access kinds: the typed shapes the tier-2 memory fast path
// understands. Pointer-typed, sub-byte, and exotic widths always take the
// generic checked path.
const (
	dkNone = iota
	dkI8
	dkI16
	dkI32
	dkI64
	dkF32
	dkF64
)

func directKind(ty ir.Type) int {
	switch t := ty.(type) {
	case *ir.IntType:
		switch t.Bits {
		case 8:
			return dkI8
		case 16:
			return dkI16
		case 32:
			return dkI32
		case 64:
			return dkI64
		}
	case *ir.FloatType:
		switch t.Bits {
		case 32:
			return dkF32
		case 64:
			return dkF64
		}
	}
	return dkNone
}

func directSize(kind int) int64 {
	switch kind {
	case dkI8:
		return 1
	case dkI16:
		return 2
	case dkI32, dkF32:
		return 4
	case dkI64, dkF64:
		return 8
	}
	return 0
}

// compileLoad lowers a typed load. For scalar int/float widths addressed
// through a register, the closure inlines the complete safety check (the
// core.Direct* accessors: liveness, pointer purity, exact bounds) and falls
// back to the generic LoadTyped path — which re-runs the checks and builds
// the exact tier-0 diagnostic — whenever any condition fails. The check is
// never elided; it is merely compiled.
func (c *Compiler) compileLoad(e *core.Engine, in *ir.Instr, fname string, line int) (step, error) {
	dst := in.Dst
	ty := in.Ty
	slow := func(e *core.Engine, fr *core.Frame, p core.Pointer) error {
		v, be := e.LoadTyped(p, ty)
		if be != nil {
			return e.Located(be, fname, line)
		}
		fr.Regs[dst] = v
		return nil
	}
	if kind := directKind(ty); kind != dkNone && in.Addr.Kind == ir.OperReg {
		ar := in.Addr.Reg
		switch kind {
		case dkI64:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectI64(p.Off); ok {
					fr.Regs[dst] = core.IntValue(v)
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkI32:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectI32(p.Off); ok {
					fr.Regs[dst] = core.IntValue(v)
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkI16:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectI16(p.Off); ok {
					fr.Regs[dst] = core.IntValue(v)
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkI8:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectI8(p.Off); ok {
					fr.Regs[dst] = core.IntValue(v)
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkF64:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectF64(p.Off); ok {
					fr.Regs[dst] = core.FloatValue(v)
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkF32:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectF32(p.Off); ok {
					fr.Regs[dst] = core.FloatValue(v)
					return nil
				}
				return slow(e, fr, p)
			}, nil
		}
	}
	getAddr, err := c.compileOperand(e, in.Addr)
	if err != nil {
		return nil, err
	}
	return func(e *core.Engine, fr *core.Frame) error {
		return slow(e, fr, getAddr(e, fr).P)
	}, nil
}

// compileStore mirrors compileLoad for stores: inline Direct* fast path,
// generic StoreTyped fallback with byte-identical diagnostics.
func (c *Compiler) compileStore(e *core.Engine, in *ir.Instr, fname string, line int) (step, error) {
	ty := in.Ty
	getVal, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	slow := func(e *core.Engine, fr *core.Frame, p core.Pointer) error {
		if be := e.StoreTyped(p, ty, getVal(e, fr)); be != nil {
			return e.Located(be, fname, line)
		}
		return nil
	}
	if kind := directKind(ty); kind != dkNone && in.Addr.Kind == ir.OperReg {
		ar := in.Addr.Reg
		// Pre-split the value operand: register read or baked constant.
		vr := -1
		var cvI int64
		var cvF float64
		switch in.A.Kind {
		case ir.OperReg:
			vr = in.A.Reg
		case ir.OperConstInt:
			cvI = in.A.Int
		case ir.OperConstFloat:
			cvF = in.A.Flt
		default:
			kind = dkNone // globals/null/function values: generic path
		}
		switch kind {
		case dkI64:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				v := cvI
				if vr >= 0 {
					v = fr.Regs[vr].I
				}
				if p.Obj.DirectPutI64(p.Off, v) {
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkI32:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				v := cvI
				if vr >= 0 {
					v = fr.Regs[vr].I
				}
				if p.Obj.DirectPutI32(p.Off, v) {
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkI16:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				v := cvI
				if vr >= 0 {
					v = fr.Regs[vr].I
				}
				if p.Obj.DirectPutI16(p.Off, v) {
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkI8:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				v := cvI
				if vr >= 0 {
					v = fr.Regs[vr].I
				}
				if p.Obj.DirectPutI8(p.Off, v) {
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkF64:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				v := cvF
				if vr >= 0 {
					v = fr.Regs[vr].F
				}
				if p.Obj.DirectPutF64(p.Off, v) {
					return nil
				}
				return slow(e, fr, p)
			}, nil
		case dkF32:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				v := cvF
				if vr >= 0 {
					v = fr.Regs[vr].F
				}
				if p.Obj.DirectPutF32(p.Off, v) {
					return nil
				}
				return slow(e, fr, p)
			}, nil
		}
	}
	getAddr, err := c.compileOperand(e, in.Addr)
	if err != nil {
		return nil, err
	}
	return func(e *core.Engine, fr *core.Frame) error {
		return slow(e, fr, getAddr(e, fr).P)
	}, nil
}

func intBits(t ir.Type) int {
	switch v := t.(type) {
	case *ir.IntType:
		return v.Bits
	case *ir.FloatType:
		return v.Bits
	}
	return 64
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
