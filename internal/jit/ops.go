package jit

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ir"
)

// compileBin specializes an arithmetic instruction: the operator and width
// are baked into the closure, so the hot path is a single Go function with
// no dispatch. Division keeps its zero check (a trap the paper's compiler
// must preserve: safe semantics).
func (c *Compiler) compileBin(e *core.Engine, in *ir.Instr, fname string, line int) (step, error) {
	getA, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	getB, err := c.compileOperand(e, in.B)
	if err != nil {
		return nil, err
	}
	dst := in.Dst
	if in.Bin.IsFloatOp() {
		bits := 64
		if ft, ok := in.Ty.(*ir.FloatType); ok {
			bits = ft.Bits
		}
		var fop func(a, b float64) float64
		switch in.Bin {
		case ir.FAdd:
			fop = func(a, b float64) float64 { return a + b }
		case ir.FSub:
			fop = func(a, b float64) float64 { return a - b }
		case ir.FMul:
			fop = func(a, b float64) float64 { return a * b }
		case ir.FDiv:
			fop = func(a, b float64) float64 { return a / b }
		case ir.FRem:
			fop = math.Mod
		}
		if bits == 32 {
			inner := fop
			fop = func(a, b float64) float64 { return float64(float32(inner(a, b))) }
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.FloatValue(fop(getA(e, fr).F, getB(e, fr).F))
			return nil
		}, nil
	}

	bits := intBits(in.Ty)
	shift := uint(64 - bits)
	norm := func(v int64) int64 { return v }
	if bits < 64 {
		norm = func(v int64) int64 { return v << shift >> shift }
	}
	switch in.Bin {
	case ir.Add:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(norm(getA(e, fr).I + getB(e, fr).I))
			return nil
		}, nil
	case ir.Sub:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(norm(getA(e, fr).I - getB(e, fr).I))
			return nil
		}, nil
	case ir.Mul:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(norm(getA(e, fr).I * getB(e, fr).I))
			return nil
		}, nil
	case ir.And:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(getA(e, fr).I & getB(e, fr).I)
			return nil
		}, nil
	case ir.Or:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(getA(e, fr).I | getB(e, fr).I)
			return nil
		}, nil
	case ir.Xor:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(getA(e, fr).I ^ getB(e, fr).I)
			return nil
		}, nil
	case ir.Shl:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(norm(getA(e, fr).I << (uint64(getB(e, fr).I) & 63)))
			return nil
		}, nil
	case ir.AShr:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(getA(e, fr).I >> (uint64(getB(e, fr).I) & 63))
			return nil
		}, nil
	}
	// The less common operators (division, remainders, logical shift) fall
	// back to the shared ALU, keeping the zero-divide check.
	op := in.Bin
	b := bits
	return func(e *core.Engine, fr *core.Frame) error {
		v, ok := ir.EvalIntBin(op, b, getA(e, fr).I, getB(e, fr).I)
		if !ok {
			return e.Located(&core.BugError{Kind: core.DivideByZero}, fname, line)
		}
		fr.Regs[dst] = core.IntValue(v)
		return nil
	}, nil
}

func (c *Compiler) compileCmp(e *core.Engine, in *ir.Instr) (step, error) {
	getA, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	getB, err := c.compileOperand(e, in.B)
	if err != nil {
		return nil, err
	}
	dst := in.Dst
	switch {
	case in.Pred.IsFloatPred():
		pred := in.Pred
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(ir.EvalFloatCmp(pred, getA(e, fr).F, getB(e, fr).F)))
			return nil
		}, nil
	case ir.IsPtr(in.Ty):
		pred := in.Pred
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(core.EvalPtrCmp(pred, getA(e, fr).P, getB(e, fr).P)))
			return nil
		}, nil
	}
	bits := intBits(in.Ty)
	switch in.Pred {
	case ir.Eq:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I == getB(e, fr).I))
			return nil
		}, nil
	case ir.Ne:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I != getB(e, fr).I))
			return nil
		}, nil
	case ir.Slt:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I < getB(e, fr).I))
			return nil
		}, nil
	case ir.Sle:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I <= getB(e, fr).I))
			return nil
		}, nil
	case ir.Sgt:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I > getB(e, fr).I))
			return nil
		}, nil
	case ir.Sge:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(b2i(getA(e, fr).I >= getB(e, fr).I))
			return nil
		}, nil
	}
	pred := in.Pred
	return func(e *core.Engine, fr *core.Frame) error {
		fr.Regs[dst] = core.IntValue(b2i(ir.EvalIntCmp(pred, bits, getA(e, fr).I, getB(e, fr).I)))
		return nil
	}, nil
}

func (c *Compiler) compileCast(e *core.Engine, in *ir.Instr) (step, error) {
	getA, err := c.compileOperand(e, in.A)
	if err != nil {
		return nil, err
	}
	dst := in.Dst
	switch in.Cast {
	case ir.Bitcast:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = getA(e, fr)
			return nil
		}, nil
	case ir.PtrToInt:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.IntValue(core.PointerToken(getA(e, fr).P))
			return nil
		}, nil
	case ir.IntToPtr:
		return func(e *core.Engine, fr *core.Frame) error {
			v := getA(e, fr).I
			if v == 0 {
				fr.Regs[dst] = core.PtrValue(core.Pointer{})
			} else {
				fr.Regs[dst] = core.PtrValue(core.Pointer{Off: v})
			}
			return nil
		}, nil
	case ir.SExt:
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = getA(e, fr) // values are already sign-extended
			return nil
		}, nil
	}
	op := in.Cast
	from, to := intBits(in.Ty), intBits(in.Ty2)
	return func(e *core.Engine, fr *core.Frame) error {
		a := getA(e, fr)
		i, f, isF := ir.EvalCast(op, from, to, a.I, a.F)
		if isF {
			fr.Regs[dst] = core.FloatValue(f)
		} else {
			fr.Regs[dst] = core.IntValue(i)
		}
		return nil
	}, nil
}

// compileCall pre-resolves direct callees; indirect calls go through a
// one-entry inline cache (paper §3.2: "we use inline caches to make
// function pointer calls efficient").
func (c *Compiler) compileCall(e *core.Engine, in *ir.Instr, fname string) (step, error) {
	getters := make([]getter, len(in.Args))
	for i, a := range in.Args {
		g, err := c.compileOperand(e, a)
		if err != nil {
			return nil, err
		}
		getters[i] = g
	}
	nFixed := in.FixedArgs
	if nFixed > len(in.Args) {
		nFixed = len(in.Args)
	}
	varTypes := make([]ir.Type, 0, len(in.Args)-nFixed)
	for i := nFixed; i < len(in.Args); i++ {
		varTypes = append(varTypes, in.Args[i].Ty)
	}
	dst := in.Dst
	line := in.Line

	invoke := func(e *core.Engine, fr *core.Frame, idx int) error {
		args := make([]core.Value, nFixed)
		for i := 0; i < nFixed; i++ {
			args[i] = getters[i](e, fr)
		}
		// The call edge is pushed before variadic boxing and before builtin
		// dispatch, mirroring the tier-0 interpreter's execCall ordering
		// exactly: boxed cells record this call site as their allocation
		// stack, and faults inside builtins capture the caller.
		e.PushCall(fname, line)
		defer e.PopCall()
		var cells []core.Pointer
		if len(varTypes) > 0 {
			cells = make([]core.Pointer, len(varTypes))
			for i := range varTypes {
				cells[i] = e.BoxVarArg(varTypes[i], getters[nFixed+i](e, fr), i)
			}
		}
		ret, err := e.Invoke(idx, args, cells, fr)
		if err != nil {
			return err
		}
		if dst >= 0 {
			fr.Regs[dst] = ret
		}
		return nil
	}

	if in.Callee.Kind == ir.OperFunc {
		idx := e.Module().FuncIndex(in.Callee.Sym)
		if idx < 0 {
			return nil, fmt.Errorf("jit: unknown callee %s", in.Callee.Sym)
		}
		return func(e *core.Engine, fr *core.Frame) error {
			return invoke(e, fr, idx)
		}, nil
	}
	getCallee, err := c.compileOperand(e, in.Callee)
	if err != nil {
		return nil, err
	}
	nFuncs := len(e.Module().Funcs)
	return func(e *core.Engine, fr *core.Frame) error {
		p := getCallee(e, fr).P
		if p.IsNull() {
			return e.Located(&core.BugError{Kind: core.NullDeref, Access: core.CallAccess}, fname, line)
		}
		if !p.IsFunc() {
			// Same fields as the interpreter's report (object identity
			// included), so tier-0 and tier-1 render identically.
			return e.Located(&core.BugError{
				Kind: core.TypeViolation, Access: core.CallAccess, Mem: p.Obj.Mem, Obj: p.Obj.Name,
			}, fname, line)
		}
		idx := p.FuncIndex()
		if idx < 0 || idx >= nFuncs {
			return &core.InternalError{
				Msg:   fmt.Sprintf("call to unknown function in %s", fname),
				Guest: e.CaptureStack(fname, line),
			}
		}
		return invoke(e, fr, idx)
	}, nil
}

func intBits(t ir.Type) int {
	switch v := t.(type) {
	case *ir.IntType:
		return v.Bits
	case *ir.FloatType:
		return v.Bits
	}
	return 64
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
