// On-stack replacement and speculative deoptimization: the frame-compatible
// flavor of the tier-1 compiler.
//
// An OSR entry is requested by the interpreter mid-activation, so the
// compiled code must execute against the *live* interpreter frame. That
// rules out every pass that reshapes the register file or the instruction
// stream (mem2reg, copy propagation, hoisting, fusion, inlining): OSR
// lowering is strictly 1:1 — lowered step i of block b executes IR
// instruction i of block b against the same registers the interpreter was
// using. What remains is still the tier-1 win: dispatch and operand decoding
// disappear, scalar memory traffic takes the core.Direct* fast paths, and
// calls keep their inline caches.
//
// The 1:1 mapping is also what makes speculation sound. A speculative site
// assumes its access stays direct — live object, no pointer slots, in
// bounds — and compiles *only* the guarded fast path; the generic fallback
// closure is gone. When the guard fails, the step returns a *core.DeoptError
// naming its exact (block, instruction): the block runner refunds the fuel
// of that instruction and everything after it (tier-0 charges before
// executing, and the guarded instruction never executed), and the
// interpreter resumes there, re-executing the access generically — which
// either handles the benign case (a pointer-carrying object, say) or raises
// the byte-identical tier-0 diagnostic if the guard caught a real memory
// error. One deopt blacklists the site (Engine.CanSpeculate), so the
// recompiled entry lowers it generically and the loop converges.
package jit

import (
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
)

// osrBlock is a frame-compatible lowered block. All weights are 1 (no pass
// removed or fused anything), so the cost is the instruction count and
// refunds are computed from step indices instead of a weight table.
type osrBlock struct {
	body []step
	term term
	cost int64
}

// CompileOSR lowers the function at fidx frame-compatibly with entry at the
// given loop header. The header is validated against the same loop analysis
// the tier-2 hoisting pass uses (opt.Loops): a dynamically observed backward
// branch that is not a single-header loop edge is refused silently — the
// profiler counts raw backward branches, so irregular targets (a `continue`
// edge, front-end-shaped control flow) are an expected negative answer, not
// a compiler failure worth a bail-out entry. A nil result means the
// interpreter keeps the loop and the engine never re-asks.
func (c *Compiler) CompileOSR(e *core.Engine, fidx, header int) core.CompiledFunc {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := e.Module().Funcs[fidx]
	if f.IsDecl || header < 0 || header >= len(f.Blocks) {
		return nil
	}
	if !opt.IsLoopHeader(f, header) {
		return nil
	}
	// No clone, no passes: lowering only reads the (shared, immutable)
	// module function, and registers must map 1:1 to the live frame.
	c.nextReg = f.NumRegs
	c.osrMode = true
	defer func() { c.osrMode = false }()

	blocks := make([]osrBlock, len(f.Blocks))
	instrs := 0
	for bi, b := range f.Blocks {
		lb, err := c.lowerOSRBlock(e, f, fidx, bi, b)
		if err != nil {
			c.bail(f.Name, err)
			return nil
		}
		blocks[bi] = lb
		instrs += len(b.Instrs)
	}
	c.OSRCompiled++
	c.OSRInstrs += instrs

	entry := header
	return func(e *core.Engine, fr *core.Frame) (core.Value, error) {
		blk := entry
		for {
			b := &blocks[blk]
			if err := e.ChargeSteps(b.cost); err != nil {
				return core.Value{}, err
			}
			for i, s := range b.body {
				if err := s(e, fr); err != nil {
					if de, ok := err.(*core.DeoptError); ok {
						// The guarded instruction never executed: refund it
						// and everything after it. The interpreter re-charges
						// instruction i when it resumes there, so Stats.Steps
						// stays byte-identical across the tier change.
						e.RefundSteps(b.cost - int64(i))
						return core.Value{}, de
					}
					e.RefundSteps(b.cost - int64(i+1))
					return core.Value{}, err
				}
			}
			next, ret, done, err := b.term(e, fr)
			if err != nil {
				return core.Value{}, err
			}
			if done {
				return ret, nil
			}
			blk = next
		}
	}
}

// lowerOSRBlock lowers one block 1:1: step i executes instruction i, the
// terminator is compiled unfused, and scalar loads/stores become speculative
// deopting fast paths where the engine's blacklist allows.
func (c *Compiler) lowerOSRBlock(e *core.Engine, f *ir.Func, fidx, bi int, b *ir.Block) (osrBlock, error) {
	n := len(b.Instrs)
	body := make([]step, 0, n-1)
	for i := 0; i < n-1; i++ {
		in := &b.Instrs[i]
		if st, ok := c.specStep(e, fidx, bi, i, in); ok {
			body = append(body, st)
			continue
		}
		st, err := c.compileStep(e, f, in)
		if err != nil {
			return osrBlock{}, err
		}
		body = append(body, st)
	}
	t, err := c.compileTerm(e, f, &b.Instrs[n-1])
	if err != nil {
		return osrBlock{}, err
	}
	return osrBlock{body: body, term: t, cost: int64(n)}, nil
}

// specStep lowers a scalar register-addressed load or store as a speculative
// fast path: the core.Direct* guard (liveness, pointer purity, exact bounds)
// either passes and the access completes, or the step deopts to tier-0 at
// exactly this instruction. ok=false keeps the generic lowering (blacklisted
// site, non-scalar type, speculation disabled).
func (c *Compiler) specStep(e *core.Engine, fidx, bi, ii int, in *ir.Instr) (step, bool) {
	if in.Op != ir.OpLoad && in.Op != ir.OpStore {
		return nil, false
	}
	kind := directKind(in.Ty)
	if kind == dkNone || in.Addr.Kind != ir.OperReg || !e.CanSpeculate(fidx, bi, ii) {
		return nil, false
	}
	ar := in.Addr.Reg
	// One shared transfer descriptor per site: a deopt is a control
	// transfer, not an event, so it allocates nothing on the fast path.
	de := &core.DeoptError{Blk: bi, Instr: ii}

	if in.Op == ir.OpLoad {
		dst := in.Dst
		switch kind {
		case dkI64:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectI64(p.Off); ok {
					fr.Regs[dst] = core.IntValue(v)
					return nil
				}
				return de
			}, true
		case dkI32:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectI32(p.Off); ok {
					fr.Regs[dst] = core.IntValue(v)
					return nil
				}
				return de
			}, true
		case dkI16:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectI16(p.Off); ok {
					fr.Regs[dst] = core.IntValue(v)
					return nil
				}
				return de
			}, true
		case dkI8:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectI8(p.Off); ok {
					fr.Regs[dst] = core.IntValue(v)
					return nil
				}
				return de
			}, true
		case dkF64:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectF64(p.Off); ok {
					fr.Regs[dst] = core.FloatValue(v)
					return nil
				}
				return de
			}, true
		case dkF32:
			return func(e *core.Engine, fr *core.Frame) error {
				p := fr.Regs[ar].P
				if v, ok := p.Obj.DirectF32(p.Off); ok {
					fr.Regs[dst] = core.FloatValue(v)
					return nil
				}
				return de
			}, true
		}
		return nil, false
	}

	// Store: pre-split the value operand like compileStore does. A store
	// whose guard fails has performed no write — the interpreter re-executes
	// the whole store after the deopt, so no side effect can double.
	vr := -1
	var cvI int64
	var cvF float64
	switch in.A.Kind {
	case ir.OperReg:
		vr = in.A.Reg
	case ir.OperConstInt:
		cvI = in.A.Int
	case ir.OperConstFloat:
		cvF = in.A.Flt
	default:
		return nil, false
	}
	switch kind {
	case dkI64:
		return func(e *core.Engine, fr *core.Frame) error {
			p := fr.Regs[ar].P
			v := cvI
			if vr >= 0 {
				v = fr.Regs[vr].I
			}
			if p.Obj.DirectPutI64(p.Off, v) {
				return nil
			}
			return de
		}, true
	case dkI32:
		return func(e *core.Engine, fr *core.Frame) error {
			p := fr.Regs[ar].P
			v := cvI
			if vr >= 0 {
				v = fr.Regs[vr].I
			}
			if p.Obj.DirectPutI32(p.Off, v) {
				return nil
			}
			return de
		}, true
	case dkI16:
		return func(e *core.Engine, fr *core.Frame) error {
			p := fr.Regs[ar].P
			v := cvI
			if vr >= 0 {
				v = fr.Regs[vr].I
			}
			if p.Obj.DirectPutI16(p.Off, v) {
				return nil
			}
			return de
		}, true
	case dkI8:
		return func(e *core.Engine, fr *core.Frame) error {
			p := fr.Regs[ar].P
			v := cvI
			if vr >= 0 {
				v = fr.Regs[vr].I
			}
			if p.Obj.DirectPutI8(p.Off, v) {
				return nil
			}
			return de
		}, true
	case dkF64:
		return func(e *core.Engine, fr *core.Frame) error {
			p := fr.Regs[ar].P
			v := cvF
			if vr >= 0 {
				v = fr.Regs[vr].F
			}
			if p.Obj.DirectPutF64(p.Off, v) {
				return nil
			}
			return de
		}, true
	case dkF32:
		return func(e *core.Engine, fr *core.Frame) error {
			p := fr.Regs[ar].P
			v := cvF
			if vr >= 0 {
				v = fr.Regs[vr].F
			}
			if p.Obj.DirectPutF32(p.Off, v) {
				return nil
			}
			return de
		}, true
	}
	return nil, false
}
