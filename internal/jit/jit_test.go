package jit

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

func buildEngine(t *testing.T, src string, tier1 bool) *core.Engine {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{}
	if tier1 {
		cfg.Tier1 = New()
		cfg.Tier1Threshold = 1
	}
	e, err := core.NewEngine(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// equivalence checks the interpreter and the compiled code agree on a
// function across a range of inputs.
func equivalence(t *testing.T, src, fn string, inputs []int64) {
	t.Helper()
	interp := buildEngine(t, src, false)
	jitted := buildEngine(t, src, true)
	for _, in := range inputs {
		a, errA := interp.CallByName(fn, []core.Value{core.IntValue(in)})
		// Call twice so the second run uses compiled code.
		jitted.CallByName(fn, []core.Value{core.IntValue(in)})
		b, errB := jitted.CallByName(fn, []core.Value{core.IntValue(in)})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s(%d): error divergence: %v vs %v", fn, in, errA, errB)
		}
		if errA == nil && a.I != b.I {
			t.Errorf("%s(%d): interp %d, jit %d", fn, in, a.I, b.I)
		}
	}
	if jitted.Stats().Tier1Calls == 0 {
		t.Fatal("compiled code never executed")
	}
}

func TestCompiledArithmeticEquivalence(t *testing.T) {
	equivalence(t, `module "t"
func @f fn(i64) i64 regs 8 {
entry:
  %r1 = mul i64 %r0, 3
  %r2 = add i64 %r1, 7
  %r3 = ashr i64 %r2, 1
  %r4 = xor i64 %r3, 255
  %r5 = srem i64 %r4, 1000
  ret i64 %r5
}
`, "f", []int64{0, 1, -1, 42, -100000, 1 << 40})
}

func TestCompiledControlFlowEquivalence(t *testing.T) {
	equivalence(t, `module "t"
func @collatz fn(i64) i64 regs 8 {
entry:
  %r1 = add i64 0, 0
  br cond
cond:
  %r2 = cmp sle i64 %r0, 1
  condbr %r2, done, body
body:
  %r3 = and i64 %r0, 1
  %r4 = cmp eq i64 %r3, 0
  condbr %r4, even, odd
even:
  %r0 = sdiv i64 %r0, 2
  br next
odd:
  %r0 = mul i64 %r0, 3
  %r0 = add i64 %r0, 1
  br next
next:
  %r1 = add i64 %r1, 1
  br cond
done:
  ret i64 %r1
}
`, "collatz", []int64{1, 2, 7, 27, 97})
}

func TestCompiledMemoryChecksPreserved(t *testing.T) {
	src := `module "t"
func @peek fn(i64) i64 regs 6 {
entry:
  %r1 = alloca [8 x i64] name "buf"
  %r2 = gep %r1, 8, %r0
  store i64 5, %r2
  %r3 = load i64, %r2
  ret i64 %r3
}
`
	e := buildEngine(t, src, true)
	// Warm and compile on valid input.
	for i := 0; i < 3; i++ {
		if _, err := e.CallByName("peek", []core.Value{core.IntValue(2)}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Tier1Funcs == 0 {
		t.Fatal("function was not compiled")
	}
	// Out-of-bounds input must still be detected by compiled code.
	_, err := e.CallByName("peek", []core.Value{core.IntValue(8)})
	be, ok := err.(*core.BugError)
	if !ok || be.Kind != core.OutOfBounds {
		t.Fatalf("compiled code lost the bounds check: %v", err)
	}
	// And underflow.
	_, err = e.CallByName("peek", []core.Value{core.IntValue(-1)})
	if be, ok := err.(*core.BugError); !ok || !be.Underflow() {
		t.Fatalf("underflow lost: %v", err)
	}
}

func TestCompiledDivZeroPreserved(t *testing.T) {
	src := `module "t"
func @div fn(i64) i64 regs 3 {
entry:
  %r1 = sdiv i64 100, %r0
  ret i64 %r1
}
`
	e := buildEngine(t, src, true)
	e.CallByName("div", []core.Value{core.IntValue(5)})
	e.CallByName("div", []core.Value{core.IntValue(5)})
	_, err := e.CallByName("div", []core.Value{core.IntValue(0)})
	if be, ok := err.(*core.BugError); !ok || be.Kind != core.DivideByZero {
		t.Fatalf("compiled division lost its zero check: %v", err)
	}
}

func TestCompiledSwitchAndSelect(t *testing.T) {
	equivalence(t, `module "t"
func @pick fn(i64) i64 regs 6 {
entry:
  %r1 = cmp sgt i64 %r0, 10
  %r2 = select %r1, i64 111, 222
  switch i64 %r0, default other [1: one, 2: two]
one:
  ret i64 %r2
two:
  %r3 = add i64 %r2, 1
  ret i64 %r3
other:
  %r4 = add i64 %r2, 2
  ret i64 %r4
}
`, "pick", []int64{1, 2, 3, 11, 100})
}

func TestMem2RegDisabledStillCorrect(t *testing.T) {
	src := `module "t"
func @acc fn(i64) i64 regs 8 {
entry:
  %r1 = alloca i64 name "sum"
  store i64 0, %r1
  br cond
cond:
  %r2 = cmp sgt i64 %r0, 0
  condbr %r2, body, done
body:
  %r3 = load i64, %r1
  %r4 = add i64 %r3, %r0
  store i64 %r4, %r1
  %r0 = sub i64 %r0, 1
  br cond
done:
  %r5 = load i64, %r1
  ret i64 %r5
}
`
	for _, disable := range []bool{false, true} {
		m, _ := ir.Parse(src)
		comp := New()
		comp.DisableMem2Reg = disable
		e, err := core.NewEngine(m, core.Config{Tier1: comp, Tier1Threshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		e.CallByName("acc", []core.Value{core.IntValue(10)})
		v, err := e.CallByName("acc", []core.Value{core.IntValue(10)})
		if err != nil || v.I != 55 {
			t.Errorf("disable=%v: got (%d, %v), want 55", disable, v.I, err)
		}
	}
}

func TestCompilerStats(t *testing.T) {
	comp := New()
	m, _ := ir.Parse(`module "t"
func @f fn() i64 regs 2 {
entry:
  %r0 = add i64 1, 2
  ret i64 %r0
}
`)
	e, _ := core.NewEngine(m, core.Config{Tier1: comp, Tier1Threshold: 1})
	e.CallByName("f", nil)
	e.CallByName("f", nil)
	if comp.Compiled != 1 || comp.InstrsTotal == 0 {
		t.Errorf("stats: %+v", comp)
	}
}

// TestBailDoesNotInflateStats pins the compile-stats contract: a bail-out —
// even one that happens after earlier blocks lowered successfully — must
// leave Compiled and InstrsTotal untouched, count Bailed, and record a
// reason. Before this was enforced, a bail mid-function leaked the already-
// lowered instructions into InstrsTotal, skewing the per-function average.
func TestBailDoesNotInflateStats(t *testing.T) {
	m, err := ir.Parse(`module "t"
func @bad fn(i64) i64 regs 4 {
entry:
  %r1 = add i64 %r0, 1
  br body
body:
  %r2 = mul i64 %r1, 2
  ret i64 %r2
}
func @good fn() i64 regs 2 {
entry:
  %r0 = add i64 40, 2
  ret i64 %r0
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt an operand in @bad's SECOND block: the entry block lowers
	// fine, so a buggy accounting path would have already added its
	// instructions before the failure.
	m.Funcs[0].Blocks[1].Instrs[0].A.Kind = ir.OperandKind(99)
	e, err := core.NewEngine(m, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	comp := New()
	if got := comp.Compile(e, 0); got != nil {
		t.Fatal("corrupted function compiled")
	}
	if comp.Bailed != 1 || comp.Compiled != 0 || comp.InstrsTotal != 0 {
		t.Errorf("after bail: Bailed=%d Compiled=%d InstrsTotal=%d, want 1/0/0",
			comp.Bailed, comp.Compiled, comp.InstrsTotal)
	}
	if len(comp.BailReasons) != 1 || !strings.HasPrefix(comp.BailReasons[0], "bad: ") {
		t.Errorf("bail reason not recorded: %q", comp.BailReasons)
	}

	// A healthy function still compiles on the same compiler, and only its
	// instructions are counted.
	if got := comp.Compile(e, 1); got == nil {
		t.Fatal("good function failed to compile")
	}
	if comp.Compiled != 1 || comp.InstrsTotal == 0 {
		t.Errorf("after success: Compiled=%d InstrsTotal=%d", comp.Compiled, comp.InstrsTotal)
	}
	instrs := comp.InstrsTotal

	// A second bail still moves only the bail counters.
	comp.Compile(e, 0)
	if comp.Bailed != 2 || comp.Compiled != 1 || comp.InstrsTotal != instrs {
		t.Errorf("after second bail: Bailed=%d Compiled=%d InstrsTotal=%d, want 2/1/%d",
			comp.Bailed, comp.Compiled, comp.InstrsTotal, instrs)
	}
}
