// Call lowering for tier-1: pre-resolved direct calls with argument-buffer
// reuse, safety-preserving leaf-function inlining, and monomorphic →
// polymorphic inline caches for function-pointer calls (paper §3.2: "we use
// inline caches to make function pointer calls efficient").
//
// Inlining contract: an inlined callee executes against the caller's frame
// in a private register window, but remains a *call* for every observable
// purpose — the call edge is pushed so backtraces are byte-identical to
// tier-0, the depth limit and stats.Calls fire exactly as the interpreter's
// invoke would, per-callee alloca bytes are released (and use-after-return
// invalidation runs) when the inline scope exits, and each callee block
// charges its weight-accounted fuel.
package jit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
)

// icCapacity bounds the polymorphic inline cache before a call site goes
// megamorphic and falls back to generic dispatch. Entries are core.ICEntry
// values in the engine's per-site table: key is Pointer.Fn (function index
// + 1, never 0), idx the validated module function index.
const icCapacity = 4

// compileCall lowers a call instruction. Direct calls to small leaf
// functions are inlined; other direct calls pre-resolve the callee and —
// when the target is an IR function taking no varargs — reuse a persistent
// argument buffer (the engine copies arguments into the callee frame before
// any guest code runs, so the buffer is dead by the time anything could
// re-enter this site; builtins are excluded because they hold their args
// slice while calling back into guest code). Indirect calls go through an
// inline cache.
func (c *Compiler) compileCall(e *core.Engine, in *ir.Instr, fname string) (step, error) {
	if in.Callee.Kind == ir.OperFunc {
		if st, ok := c.tryInline(e, in, fname); ok {
			return st, nil
		}
	}

	getters := make([]getter, len(in.Args))
	for i, a := range in.Args {
		g, err := c.compileOperand(e, a)
		if err != nil {
			return nil, err
		}
		getters[i] = g
	}
	nFixed := in.FixedArgs
	if nFixed > len(in.Args) {
		nFixed = len(in.Args)
	}
	varTypes := make([]ir.Type, 0, len(in.Args)-nFixed)
	for i := nFixed; i < len(in.Args); i++ {
		varTypes = append(varTypes, in.Args[i].Ty)
	}
	dst := in.Dst
	line := in.Line

	invoke := func(e *core.Engine, fr *core.Frame, idx int, args []core.Value) error {
		for i := 0; i < nFixed; i++ {
			args[i] = getters[i](e, fr)
		}
		// The call edge is pushed before variadic boxing and before builtin
		// dispatch, mirroring the tier-0 interpreter's execCall ordering
		// exactly: boxed cells record this call site as their allocation
		// stack, and faults inside builtins capture the caller.
		e.PushCall(fname, line)
		defer e.PopCall()
		var cells []core.Pointer
		if len(varTypes) > 0 {
			cells = make([]core.Pointer, len(varTypes))
			for i := range varTypes {
				cells[i] = e.BoxVarArg(varTypes[i], getters[nFixed+i](e, fr), i)
			}
		}
		ret, err := e.Invoke(idx, args, cells, fr)
		if err != nil {
			return err
		}
		if dst >= 0 {
			fr.Regs[dst] = ret
		}
		return nil
	}

	if in.Callee.Kind == ir.OperFunc {
		idx := e.Module().FuncIndex(in.Callee.Sym)
		if idx < 0 {
			return nil, fmt.Errorf("jit: unknown callee %s", in.Callee.Sym)
		}
		callee := e.Module().Funcs[idx]
		if !c.DisableTier2 && len(varTypes) == 0 && !callee.IsDecl && !e.IsBuiltin(idx) {
			// Persistent argument buffer, held in the *engine's* call-site
			// table rather than captured here: the closure may be shared by
			// the code cache across many engines, so its only state is the
			// compile-time site ID. Engines are single-threaded and consume
			// args before transferring control, so one buffer per site per
			// engine is safe even under recursion through this site.
			site := c.siteID()
			return func(e *core.Engine, fr *core.Frame) error {
				return invoke(e, fr, idx, e.Site(site).ArgBuf(nFixed))
			}, nil
		}
		return func(e *core.Engine, fr *core.Frame) error {
			return invoke(e, fr, idx, make([]core.Value, nFixed))
		}, nil
	}

	getCallee, err := c.compileOperand(e, in.Callee)
	if err != nil {
		return nil, err
	}
	nFuncs := len(e.Module().Funcs)

	if c.DisableTier2 {
		// Pre-tier-2 generic indirect dispatch (baseline ablation).
		return func(e *core.Engine, fr *core.Frame) error {
			p := getCallee(e, fr).P
			if p.IsNull() {
				return e.Located(&core.BugError{Kind: core.NullDeref, Access: core.CallAccess}, fname, line)
			}
			if !p.IsFunc() {
				return e.Located(&core.BugError{
					Kind: core.TypeViolation, Access: core.CallAccess, Mem: p.Obj.Mem, Obj: p.Obj.Name,
				}, fname, line)
			}
			idx := p.FuncIndex()
			if idx < 0 || idx >= nFuncs {
				return &core.InternalError{
					Msg:   fmt.Sprintf("call to unknown function in %s", fname),
					Guest: e.CaptureStack(fname, line),
				}
			}
			return invoke(e, fr, idx, make([]core.Value, nFixed))
		}, nil
	}

	// Inline cache. The guards run in the interpreter's order: a non-function
	// pointer reports exactly the tier-0 diagnostic (NULL call, call through
	// data pointer, unknown index) before any cache logic touches it. Cache
	// state lives in the *engine's* per-site table, keyed by a compile-time
	// site ID: the closure itself is immutable, so the code cache can share
	// it across engines, and a pooled engine restarts with a cold cache. An
	// engine is single-threaded; the site pointer is re-fetched on every
	// execution and never held across invoke (the table may grow while guest
	// code runs, invalidating old pointers).
	site := c.siteID()
	return func(e *core.Engine, fr *core.Frame) error {
		p := getCallee(e, fr).P
		if p.Fn != 0 { // IsFunc
			s := e.Site(site)
			if !s.Mega {
				for i := range s.IC {
					if s.IC[i].Key == p.Fn {
						if i != 0 {
							// Move-to-front: a mostly-monomorphic site hits on
							// the first compare.
							s.IC[0], s.IC[i] = s.IC[i], s.IC[0]
						}
						return invoke(e, fr, s.IC[0].Idx, make([]core.Value, nFixed))
					}
				}
			}
			idx := p.FuncIndex()
			if idx < 0 || idx >= nFuncs {
				return &core.InternalError{
					Msg:   fmt.Sprintf("call to unknown function in %s", fname),
					Guest: e.CaptureStack(fname, line),
				}
			}
			if !s.Mega {
				if len(s.IC) < icCapacity {
					s.IC = append(s.IC, core.ICEntry{Key: p.Fn, Idx: idx})
				} else {
					s.Mega = true // give up: generic dispatch from here on
					s.IC = nil
				}
			}
			return invoke(e, fr, idx, make([]core.Value, nFixed))
		}
		if p.Obj == nil { // IsNull
			return e.Located(&core.BugError{Kind: core.NullDeref, Access: core.CallAccess}, fname, line)
		}
		return e.Located(&core.BugError{
			Kind: core.TypeViolation, Access: core.CallAccess, Mem: p.Obj.Mem, Obj: p.Obj.Name,
		}, fname, line)
	}, nil
}

// isLeaf reports whether f contains no call instructions.
func isLeaf(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				return false
			}
		}
	}
	return true
}

// remapRegs shifts every register reference in f by base, relocating the
// callee into a private window of the caller's frame.
func remapRegs(f *ir.Func, base int) {
	mo := func(o *ir.Operand) {
		if o.Kind == ir.OperReg {
			o.Reg += base
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst >= 0 {
				in.Dst += base
			}
			mo(&in.A)
			mo(&in.B)
			mo(&in.C)
			mo(&in.Addr)
			mo(&in.Callee)
			for j := range in.Args {
				mo(&in.Args[j])
			}
		}
	}
}

// tryInline compiles a direct call to a small leaf function as an embedded
// block loop over the caller's frame. Budget: callees of at most
// inlineMaxInstrs instructions, at most inlineMaxTotal inlined instructions
// per caller. Failure is never a compilation bail — the site falls back to
// the generic call closure.
func (c *Compiler) tryInline(e *core.Engine, in *ir.Instr, callerName string) (step, bool) {
	if c.DisableMem2Reg || c.DisableTier2 || c.DisableInline || c.osrMode {
		// osrMode: inline windows would grow the register file past the
		// interpreter frame's, breaking frame-compatible deopt transfer.
		return nil, false
	}
	idx := e.Module().FuncIndex(in.Callee.Sym)
	if idx < 0 || e.IsBuiltin(idx) {
		return nil, false
	}
	callee := e.Module().Funcs[idx]
	if callee.IsDecl || callee.Sig.Variadic || len(callee.Blocks) == 0 {
		return nil, false
	}
	// Only plain call shapes: every argument fixed and matching the
	// signature (C's lax arity mismatches keep the generic path, which
	// reproduces the interpreter's copy-min semantics).
	if in.FixedArgs != len(in.Args) || len(in.Args) != len(callee.Sig.Params) {
		return nil, false
	}
	n := callee.InstrCount()
	if n > inlineMaxInstrs || c.inlinedInstr+n > inlineMaxTotal || !isLeaf(callee) {
		return nil, false
	}

	// Clone and optimize the callee exactly like a toplevel compilation, then
	// relocate it into a fresh register window.
	cf := cloneForJIT(callee)
	cw := opt.NewWeights(cf)
	opt.Mem2Reg(cf)
	opt.FoldConstants(cf)
	opt.CopyPropagate(cf)
	opt.CSEAddresses(cf)
	opt.CopyPropagate(cf)
	cw = opt.HoistLoopInvariants(cf, cw)
	opt.SweepDeadMoves(cf, cw)
	base := c.nextReg
	c.nextReg = base + cf.NumRegs
	remapRegs(cf, base)
	blocks, _, err := c.lowerFunc(e, cf, cw)
	if err != nil {
		return nil, false // unlowerable callee: generic call instead
	}
	c.inlinedInstr += n
	c.inlinedSites++

	argGetters := make([]getter, len(in.Args))
	for i, a := range in.Args {
		g, gerr := c.compileOperand(e, a)
		if gerr != nil {
			return nil, false
		}
		argGetters[i] = g
	}
	nRegs := cf.NumRegs
	calleeName := callee.Name
	dst := in.Dst
	line := in.Line

	return func(e *core.Engine, fr *core.Frame) error {
		// Fresh-frame semantics inside the window: the callee's registers
		// start zero on every activation, exactly like a new Frame.
		win := fr.Regs[base : base+nRegs]
		for i := range win {
			win[i] = core.Value{}
		}
		for i, g := range argGetters {
			fr.Regs[base+i] = g(e, fr)
		}
		e.PushCall(callerName, line)
		sc, err := e.EnterInline(fr, calleeName)
		if err != nil {
			e.PopCall()
			return err
		}
		blk := 0
		for {
			b := &blocks[blk]
			if err := e.ChargeSteps(b.cost); err != nil {
				e.LeaveInline(fr, sc)
				e.PopCall()
				return err
			}
			for i, s := range b.body {
				if err := s(e, fr); err != nil {
					e.RefundSteps(b.refund[i])
					e.LeaveInline(fr, sc)
					e.PopCall()
					return err
				}
			}
			next, ret, done, err := b.term(e, fr)
			if err != nil {
				e.LeaveInline(fr, sc)
				e.PopCall()
				return err
			}
			if done {
				e.LeaveInline(fr, sc)
				e.PopCall()
				if dst >= 0 {
					fr.Regs[dst] = ret
				}
				return nil
			}
			blk = next
		}
	}, true
}
