package jit

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

// loopSrc runs a counted loop: entry, cond, body, done — the same block
// shapes tier 0 and tier 1 execute, so their step accounting can be
// compared exactly.
const loopSrc = `module "t"
func @acc fn(i64) i64 regs 8 {
entry:
  %r1 = alloca i64 name "sum"
  store i64 0, %r1
  br cond
cond:
  %r2 = cmp sgt i64 %r0, 0
  condbr %r2, body, done
body:
  %r3 = load i64, %r1
  %r4 = add i64 %r3, %r0
  store i64 %r4, %r1
  %r0 = sub i64 %r0, 1
  br cond
done:
  %r5 = load i64, %r1
  ret i64 %r5
}
`

// TestTier1StepAccountingMatchesTier0: with scalar promotion disabled the
// compiled blocks carry the interpreter's exact instruction counts, so a
// run whose calls all execute as tier-1 closures (threshold 1 compiles on
// the first call) must report the same Stats.Steps as a pure tier-0 run.
// This is the satellite guarantee that MaxSteps and Stats.Steps mean the
// same thing in every tier.
func TestTier1StepAccountingMatchesTier0(t *testing.T) {
	run := func(withJIT bool) int64 {
		m, err := ir.Parse(loopSrc)
		if err != nil {
			t.Fatal(err)
		}
		var cfg core.Config
		if withJIT {
			comp := New()
			comp.DisableMem2Reg = true // keep block shapes identical to tier 0
			cfg.Tier1 = comp
			cfg.Tier1Threshold = 1
		}
		e, err := core.NewEngine(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			v, err := e.CallByName("acc", []core.Value{core.IntValue(100)})
			if err != nil || v.I != 5050 {
				t.Fatalf("withJIT=%v call %d: got (%d, %v), want 5050", withJIT, i, v.I, err)
			}
		}
		return e.Stats().Steps
	}
	tier0, mixed := run(false), run(true)
	if tier0 != mixed {
		t.Fatalf("Stats.Steps diverge: tier-0 only %d, tier-0+tier-1 %d", tier0, mixed)
	}
	if tier0 == 0 {
		t.Fatal("no steps recorded at all")
	}
}

// TestTier1HonorsMaxSteps: a loop running entirely as compiled closures
// exhausts the engine's budget — the regression that motivated per-block
// fuel charging (compiled code used to execute for free).
func TestTier1HonorsMaxSteps(t *testing.T) {
	m, err := ir.Parse(`module "t"
func @spin fn() i64 regs 4 {
entry:
  br loop
loop:
  %r0 = add i64 %r0, 1
  br loop
}
`)
	if err != nil {
		t.Fatal(err)
	}
	comp := New()
	e, err := core.NewEngine(m, core.Config{Tier1: comp, Tier1Threshold: 1, MaxSteps: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.CallByName("spin", nil)
	if comp.Compiled != 1 {
		t.Fatalf("spin was not tier-1 compiled (Compiled=%d)", comp.Compiled)
	}
	var limit *core.LimitError
	if !errors.As(err, &limit) {
		t.Fatalf("got err=%v, want *core.LimitError", err)
	}
}

// TestTier1PollsGovernor: compiled code observes a stopped governor at the
// next block boundary.
func TestTier1PollsGovernor(t *testing.T) {
	m, err := ir.Parse(`module "t"
func @spin fn() i64 regs 4 {
entry:
  br loop
loop:
  %r0 = add i64 %r0, 1
  br loop
}
`)
	if err != nil {
		t.Fatal(err)
	}
	gov := &core.Governor{}
	gov.Stop("test stop")
	comp := New()
	// Threshold 1: the first call is compiled before it executes, so the
	// loop runs entirely as tier-1 closures.
	e, err := core.NewEngine(m, core.Config{Tier1: comp, Tier1Threshold: 1, Governor: gov})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.CallByName("spin", nil)
	if comp.Compiled != 1 {
		t.Fatalf("spin was not tier-1 compiled (Compiled=%d)", comp.Compiled)
	}
	var deadline *core.DeadlineError
	if !errors.As(err, &deadline) {
		t.Fatalf("got err=%v, want *core.DeadlineError", err)
	}
}
