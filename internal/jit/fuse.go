// Superinstruction fusion: gep+load / gep+store pairs collapse into one
// closure, and runs of same-base pairs with constant offsets collapse into a
// single coalesced range check followed by raw in-order accesses. Safety is
// preserved structurally: the fused fast path *is* a complete check
// (core.Direct* / Object.InRange cover liveness, pointer purity, and exact
// bounds), and any failure re-executes the constituent instructions through
// the generic checked path, which faults at the same instruction with the
// byte-identical tier-0 diagnostic. Fuel stays exact via the weight account:
// a fused step carries the summed weights of its instructions, and the
// fallback refunds the unexecuted suffix internally.
package jit

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/ir"
)

// runOp is one gep+access pair inside a coalesced run, pre-decoded.
type runOp struct {
	kind   int   // dkI8..dkF64
	store  bool  // access direction
	gepDst int   // the gep's destination register (still written!)
	delta  int64 // constant byte offset from the run's base pointer
	reg    int   // load destination, or store value register (-1: constant)
	constI int64
	constF float64
}

// tryFusePair compiles instrs g,a as one superinstruction when g is a
// register-based gep and a is a direct-width load/store through g's result.
// Returns ok=false when the pair doesn't match.
func (c *Compiler) tryFusePair(e *core.Engine, f *ir.Func, g, a *ir.Instr) (step, bool, error) {
	if g.Op != ir.OpGEP || g.Addr.Kind != ir.OperReg {
		return nil, false, nil
	}
	base := g.Addr.Reg
	gdst := g.Dst
	stride := g.Stride
	// Offset: constant delta, or stride-scaled register index.
	idxReg := -1
	var delta int64
	switch g.A.Kind {
	case ir.OperConstInt:
		delta = stride * g.A.Int
	case ir.OperReg:
		idxReg = g.A.Reg
	default:
		return nil, false, nil
	}
	fname := f.Name

	switch a.Op {
	case ir.OpLoad:
		kind := directKind(a.Ty)
		if kind == dkNone || a.Addr.Kind != ir.OperReg || a.Addr.Reg != gdst {
			return nil, false, nil
		}
		dst := a.Dst
		ty := a.Ty
		line := a.Line
		slow := func(e *core.Engine, fr *core.Frame, p core.Pointer) error {
			v, be := e.LoadTyped(p, ty)
			if be != nil {
				return e.Located(be, fname, line)
			}
			fr.Regs[dst] = v
			return nil
		}
		isFloat := kind == dkF32 || kind == dkF64
		if isFloat {
			return func(e *core.Engine, fr *core.Frame) error {
				d := delta
				if idxReg >= 0 {
					d = stride * fr.Regs[idxReg].I
				}
				p := fr.Regs[base].P.Add(d)
				fr.Regs[gdst] = core.PtrValue(p)
				var v float64
				var ok bool
				if kind == dkF64 {
					v, ok = p.Obj.DirectF64(p.Off)
				} else {
					v, ok = p.Obj.DirectF32(p.Off)
				}
				if ok {
					fr.Regs[dst] = core.FloatValue(v)
					return nil
				}
				return slow(e, fr, p)
			}, true, nil
		}
		return func(e *core.Engine, fr *core.Frame) error {
			d := delta
			if idxReg >= 0 {
				d = stride * fr.Regs[idxReg].I
			}
			p := fr.Regs[base].P.Add(d)
			fr.Regs[gdst] = core.PtrValue(p)
			var v int64
			var ok bool
			switch kind {
			case dkI64:
				v, ok = p.Obj.DirectI64(p.Off)
			case dkI32:
				v, ok = p.Obj.DirectI32(p.Off)
			case dkI16:
				v, ok = p.Obj.DirectI16(p.Off)
			default:
				v, ok = p.Obj.DirectI8(p.Off)
			}
			if ok {
				fr.Regs[dst] = core.IntValue(v)
				return nil
			}
			return slow(e, fr, p)
		}, true, nil

	case ir.OpStore:
		kind := directKind(a.Ty)
		if kind == dkNone || a.Addr.Kind != ir.OperReg || a.Addr.Reg != gdst {
			return nil, false, nil
		}
		vr := -1
		var cvI int64
		var cvF float64
		switch a.A.Kind {
		case ir.OperReg:
			vr = a.A.Reg
		case ir.OperConstInt:
			cvI = a.A.Int
		case ir.OperConstFloat:
			cvF = a.A.Flt
		default:
			return nil, false, nil
		}
		ty := a.Ty
		line := a.Line
		getVal, err := c.compileOperand(e, a.A)
		if err != nil {
			return nil, false, err
		}
		slow := func(e *core.Engine, fr *core.Frame, p core.Pointer) error {
			if be := e.StoreTyped(p, ty, getVal(e, fr)); be != nil {
				return e.Located(be, fname, line)
			}
			return nil
		}
		isFloat := kind == dkF32 || kind == dkF64
		if isFloat {
			return func(e *core.Engine, fr *core.Frame) error {
				d := delta
				if idxReg >= 0 {
					d = stride * fr.Regs[idxReg].I
				}
				p := fr.Regs[base].P.Add(d)
				fr.Regs[gdst] = core.PtrValue(p)
				v := cvF
				if vr >= 0 {
					v = fr.Regs[vr].F
				}
				var ok bool
				if kind == dkF64 {
					ok = p.Obj.DirectPutF64(p.Off, v)
				} else {
					ok = p.Obj.DirectPutF32(p.Off, v)
				}
				if ok {
					return nil
				}
				return slow(e, fr, p)
			}, true, nil
		}
		return func(e *core.Engine, fr *core.Frame) error {
			d := delta
			if idxReg >= 0 {
				d = stride * fr.Regs[idxReg].I
			}
			p := fr.Regs[base].P.Add(d)
			fr.Regs[gdst] = core.PtrValue(p)
			v := cvI
			if vr >= 0 {
				v = fr.Regs[vr].I
			}
			var ok bool
			switch kind {
			case dkI64:
				ok = p.Obj.DirectPutI64(p.Off, v)
			case dkI32:
				ok = p.Obj.DirectPutI32(p.Off, v)
			case dkI16:
				ok = p.Obj.DirectPutI16(p.Off, v)
			default:
				ok = p.Obj.DirectPutI8(p.Off, v)
			}
			if ok {
				return nil
			}
			return slow(e, fr, p)
		}, true, nil
	}
	return nil, false, nil
}

// scanRun greedily matches consecutive (gep base+const, load/store) pairs
// that share one base register. The base must not be redefined inside the
// run so the single coalesced check covers every access.
func scanRun(instrs []ir.Instr) (ops []runOp, base int, lo, hi int64, consumed int) {
	base = -1
	for k := 0; k+1 < len(instrs); k += 2 {
		g := &instrs[k]
		if g.Op != ir.OpGEP || g.Addr.Kind != ir.OperReg || g.A.Kind != ir.OperConstInt {
			break
		}
		if base == -1 {
			base = g.Addr.Reg
		} else if g.Addr.Reg != base {
			break
		}
		if g.Dst == base {
			break // gep would redefine the base: end the run before it
		}
		op, ok := matchRunAccess(&instrs[k+1], g.Dst, base)
		if !ok {
			break
		}
		op.gepDst = g.Dst
		op.delta = g.Stride * g.A.Int
		if len(ops) == 0 {
			lo, hi = op.delta, op.delta+directSize(op.kind)
		} else {
			if op.delta < lo {
				lo = op.delta
			}
			if end := op.delta + directSize(op.kind); end > hi {
				hi = end
			}
		}
		ops = append(ops, op)
		consumed = k + 2
	}
	if len(ops) < 2 {
		return nil, -1, 0, 0, 0
	}
	return ops, base, lo, hi, consumed
}

// matchRunAccess decodes the access half of a run pair: a direct-width load
// or store through addrReg that does not clobber the run's base register.
func matchRunAccess(a *ir.Instr, addrReg, base int) (runOp, bool) {
	op := runOp{reg: -1}
	switch a.Op {
	case ir.OpLoad:
		op.kind = directKind(a.Ty)
		if op.kind == dkNone || a.Addr.Kind != ir.OperReg || a.Addr.Reg != addrReg || a.Dst == base {
			return op, false
		}
		op.reg = a.Dst
		return op, true
	case ir.OpStore:
		op.kind = directKind(a.Ty)
		op.store = true
		if op.kind == dkNone || a.Addr.Kind != ir.OperReg || a.Addr.Reg != addrReg {
			return op, false
		}
		switch a.A.Kind {
		case ir.OperReg:
			op.reg = a.A.Reg
		case ir.OperConstInt:
			op.constI = a.A.Int
		case ir.OperConstFloat:
			op.constF = a.A.Flt
		default:
			return op, false
		}
		return op, true
	}
	return op, false
}

// tryRun compiles a coalesced access run starting at instrs[0]: one
// InRange check over the union window, then raw in-order accesses (every
// gep destination is still written, so downstream uses see the same
// registers as the unfused code). Any InRange failure — including benign
// ones like a pointer-carrying object — re-executes the run through the
// per-instruction checked path. consumed==0 means no run matched.
func (c *Compiler) tryRun(e *core.Engine, f *ir.Func, instrs []ir.Instr, wts []int64) (step, int, int64, error) {
	if c.DisableTier2 || len(instrs) < 4 {
		return nil, 0, 0, nil
	}
	ops, base, lo, hi, consumed := scanRun(instrs)
	if consumed < 4 {
		return nil, 0, 0, nil
	}

	// Checked fallback: the constituent instructions compiled individually,
	// with the run's internal refund account (runWeight was charged as one
	// step; a fault at sub-instruction k must net tier-0's prefix through k).
	sub := make([]step, consumed)
	subRefund := make([]int64, consumed)
	var runWeight int64
	for k := 0; k < consumed; k++ {
		runWeight += wts[k]
	}
	var prefix int64
	for k := 0; k < consumed; k++ {
		st, err := c.compileStep(e, f, &instrs[k])
		if err != nil {
			return nil, 0, 0, err
		}
		sub[k] = st
		prefix += wts[k]
		subRefund[k] = runWeight - prefix
	}
	slow := func(e *core.Engine, fr *core.Frame) error {
		for k, s := range sub {
			if err := s(e, fr); err != nil {
				e.RefundSteps(subRefund[k])
				return err
			}
		}
		return nil
	}

	st := func(e *core.Engine, fr *core.Frame) error {
		p := fr.Regs[base].P
		o := p.Obj
		if !o.InRange(p.Off+lo, p.Off+hi) {
			return slow(e, fr)
		}
		off := p.Off
		for i := range ops {
			op := &ops[i]
			fr.Regs[op.gepDst] = core.PtrValue(p.Add(op.delta))
			at := off + op.delta
			if op.store {
				vi, vf := op.constI, op.constF
				if op.reg >= 0 {
					vi, vf = fr.Regs[op.reg].I, fr.Regs[op.reg].F
				}
				switch op.kind {
				case dkI64:
					binary.LittleEndian.PutUint64(o.Data[at:], uint64(vi))
				case dkI32:
					binary.LittleEndian.PutUint32(o.Data[at:], uint32(vi))
				case dkI16:
					binary.LittleEndian.PutUint16(o.Data[at:], uint16(vi))
				case dkI8:
					o.Data[at] = byte(vi)
				case dkF64:
					binary.LittleEndian.PutUint64(o.Data[at:], math.Float64bits(vf))
				case dkF32:
					binary.LittleEndian.PutUint32(o.Data[at:], math.Float32bits(float32(vf)))
				}
			} else {
				switch op.kind {
				case dkI64:
					fr.Regs[op.reg] = core.IntValue(int64(binary.LittleEndian.Uint64(o.Data[at:])))
				case dkI32:
					fr.Regs[op.reg] = core.IntValue(int64(int32(binary.LittleEndian.Uint32(o.Data[at:]))))
				case dkI16:
					fr.Regs[op.reg] = core.IntValue(int64(int16(binary.LittleEndian.Uint16(o.Data[at:]))))
				case dkI8:
					fr.Regs[op.reg] = core.IntValue(int64(int8(o.Data[at])))
				case dkF64:
					fr.Regs[op.reg] = core.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(o.Data[at:])))
				case dkF32:
					fr.Regs[op.reg] = core.FloatValue(float64(math.Float32frombits(binary.LittleEndian.Uint32(o.Data[at:]))))
				}
			}
		}
		return nil
	}
	return st, consumed, runWeight, nil
}
