package jit

// Concurrent-churn coverage for the executable-code cache, run under -race
// by the check gate: singleflight coalescing stays exact under eviction
// pressure, the LRU bound holds while many goroutines populate and evict,
// and a cache hit returns the published artifact without mutating it —
// mirroring the PR 1 module-cache hit-shares-identical-module pin.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

// cacheModSrc returns a distinct-content module whose @f doubles its input
// and adds k, so every variant compiles to a different unit but all are
// trivially checkable.
func cacheModSrc(k int) string {
	return fmt.Sprintf(`module "m%d"
func @f fn(i64) i64 regs 4 {
entry:
  %%r1 = mul i64 %%r0, 2
  %%r2 = add i64 %%r1, %d
  ret i64 %%r2
}
`, k, k)
}

func cacheEngine(t *testing.T, src string, cc *CodeCache) (*core.Engine, *Compiler, int) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	comp := New()
	comp.Cache = cc
	e, err := core.NewEngine(m, core.Config{Tier1: comp, Tier1Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	fidx := m.FuncIndex("f")
	if fidx < 0 {
		t.Fatal("no @f in module")
	}
	return e, comp, fidx
}

// TestCodeCacheSingleflightCoalesces: many goroutines demanding the same
// function of the same unit must trigger exactly one lowering; everyone
// else waits on the entry and replays its counter delta.
func TestCodeCacheSingleflightCoalesces(t *testing.T) {
	cc := NewCodeCache(4)
	src := cacheModSrc(1)
	const n = 16
	engs := make([]*core.Engine, n)
	comps := make([]*Compiler, n)
	fidx := 0
	for i := range engs {
		engs[i], comps[i], fidx = cacheEngine(t, src, cc)
	}
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	fns := make([]core.CompiledFunc, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			fns[i] = comps[i].Compile(engs[i], fidx)
		}(i)
	}
	start.Done()
	done.Wait()

	st := cc.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("singleflight broke: %d misses, %d hits, want 1 and %d", st.Misses, st.Hits, n-1)
	}
	for i, fn := range fns {
		if fn == nil {
			t.Fatalf("goroutine %d got a nil closure", i)
		}
	}
	// Counter parity: hit or miss, every compiler reports the identical
	// JITReport delta.
	want := comps[0].Snapshot()
	for i := 1; i < n; i++ {
		if got := comps[i].Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("compiler %d counters %+v differ from %+v", i, got, want)
		}
	}
}

// TestCodeCacheConcurrentEvictionChurn: goroutines hammer more units than
// the cache holds. The LRU bound must hold at every observation point, the
// eviction counter must account for the churn, and every compile —
// coalesced, fresh, or re-compiled after eviction — must return a working
// closure (hits + misses == demands).
func TestCodeCacheConcurrentEvictionChurn(t *testing.T) {
	const capUnits = 2
	const mods = 6
	const workers = 8
	const rounds = 5
	cc := NewCodeCache(capUnits)

	engs := make([]*core.Engine, mods)
	comps := make([]*Compiler, mods)
	fidx := 0
	for i := range engs {
		engs[i], comps[i], fidx = cacheEngine(t, cacheModSrc(i), cc)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % mods
				if fn := comps[i].Compile(engs[i], fidx); fn == nil {
					t.Errorf("worker %d round %d: nil closure for module %d", w, r, i)
				}
				if st := cc.Stats(); st.Units > capUnits {
					t.Errorf("LRU bound violated: %d units, cap %d", st.Units, capUnits)
				}
			}
		}(w)
	}
	wg.Wait()

	st := cc.Stats()
	if st.Units > capUnits {
		t.Fatalf("final unit count %d exceeds cap %d", st.Units, capUnits)
	}
	if st.Hits+st.Misses != workers*rounds {
		t.Fatalf("hits+misses = %d, want every demand accounted (%d)", st.Hits+st.Misses, workers*rounds)
	}
	if st.Evictions == 0 {
		t.Fatal("churn over 6 modules in a 2-unit cache evicted nothing")
	}
	if st.Misses < mods {
		t.Fatalf("only %d misses for %d distinct units", st.Misses, mods)
	}
}

// TestCodeCacheHitNotMutated mirrors the PR 1 module-cache pin: a hit must
// return the artifact the miss published, bit-for-bit — same funcEntry,
// same recorded counter delta, same behavior — and hitting must not grow
// or replace anything in the unit.
func TestCodeCacheHitNotMutated(t *testing.T) {
	cc := NewCodeCache(4)
	src := cacheModSrc(3)
	e1, c1, fidx := cacheEngine(t, src, cc)
	e2, c2, _ := cacheEngine(t, src, cc)

	if fn := c1.Compile(e1, fidx); fn == nil {
		t.Fatal("miss returned nil closure")
	}
	u := cc.unitFor(e1.Module(), c1.fingerprint())
	u.mu.Lock()
	fe1 := u.funcs[fidx]
	u.mu.Unlock()
	meta1 := fe1.meta
	sites1 := u.sites.next

	if fn := c2.Compile(e2, fidx); fn == nil {
		t.Fatal("hit returned nil closure")
	}
	u.mu.Lock()
	fe2 := u.funcs[fidx]
	nfuncs := len(u.funcs)
	u.mu.Unlock()
	if fe2 != fe1 {
		t.Fatal("hit replaced the published funcEntry")
	}
	if fe2.meta != meta1 {
		t.Fatalf("hit mutated the recorded counter delta: %+v -> %+v", meta1, fe2.meta)
	}
	if nfuncs != 1 {
		t.Fatalf("hit grew the unit to %d entries", nfuncs)
	}
	if u.sites.next != sites1 {
		t.Fatalf("hit allocated call sites: %d -> %d", sites1, u.sites.next)
	}
	if st := cc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want exactly 1 hit and 1 miss", st)
	}

	// The shared closure computes the same answer on both engines.
	for _, pair := range []*core.Engine{e1, e2} {
		pair.CallByName("f", []core.Value{core.IntValue(10)}) // warm past threshold
		got, err := pair.CallByName("f", []core.Value{core.IntValue(10)})
		if err != nil {
			t.Fatal(err)
		}
		if got.I != 23 {
			t.Fatalf("f(10) = %d, want 23", got.I)
		}
	}
}

// TestCodeCacheReleaseModule: releasing a module evicts its units (across
// fingerprints) and drops its hash memo, a never-cached module releases as
// a no-op, and a re-compile after release simply misses and works — release
// is an eviction, not an invalidation.
func TestCodeCacheReleaseModule(t *testing.T) {
	cc := NewCodeCache(8)
	src := cacheModSrc(7)
	e1, c1, fidx := cacheEngine(t, src, cc)
	e2, c2, _ := cacheEngine(t, src, cc)
	c2.DisableInline = true // distinct fingerprint, same module content

	if fn := c1.Compile(e1, fidx); fn == nil {
		t.Fatal("compile returned nil closure")
	}
	if fn := c2.Compile(e2, fidx); fn == nil {
		t.Fatal("compile returned nil closure")
	}
	if st := cc.Stats(); st.Units != 2 {
		t.Fatalf("expected 2 units (two fingerprints), got %+v", st)
	}

	cc.ReleaseModule(e1.Module())
	st := cc.Stats()
	if st.Units != 0 || st.Funcs != 0 {
		t.Fatalf("release left artifacts behind: %+v", st)
	}
	if st.Evictions != 2 {
		t.Fatalf("release evicted %d units, want 2", st.Evictions)
	}
	modHashMu.Lock()
	_, memoized := modHashes[e1.Module()]
	modHashMu.Unlock()
	if memoized {
		t.Fatal("release kept the module pinned in the hash memo")
	}

	// Releasing a module the cache never saw is a no-op.
	other, err := ir.Parse(cacheModSrc(8))
	if err != nil {
		t.Fatal(err)
	}
	cc.ReleaseModule(other)
	if got := cc.Stats().Evictions; got != 2 {
		t.Fatalf("no-op release bumped evictions to %d", got)
	}

	// Life after release: a fresh compile misses, repopulates, and runs.
	e3, c3, _ := cacheEngine(t, src, cc)
	if fn := c3.Compile(e3, fidx); fn == nil {
		t.Fatal("post-release compile returned nil closure")
	}
	if st := cc.Stats(); st.Units != 1 || st.Misses != 3 {
		t.Fatalf("post-release stats %+v, want 1 unit and 3 misses", st)
	}
	got, err := e3.CallByName("f", []core.Value{core.IntValue(10)})
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 27 {
		t.Fatalf("f(10) = %d, want 27", got.I)
	}
}

// TestCodeCacheReleaseByContentID: a pipeline-stamped module is addressed by
// its ContentID; release must find its units without consulting the memo.
func TestCodeCacheReleaseByContentID(t *testing.T) {
	cc := NewCodeCache(8)
	src := cacheModSrc(9)
	e, c, fidx := cacheEngine(t, src, cc)
	e.Module().ContentID = "testhash/native/O0"
	if fn := c.Compile(e, fidx); fn == nil {
		t.Fatal("compile returned nil closure")
	}
	cc.ReleaseModule(e.Module())
	if st := cc.Stats(); st.Units != 0 || st.Evictions != 1 {
		t.Fatalf("ContentID release missed the unit: %+v", st)
	}
}
