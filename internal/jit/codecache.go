// The process-wide executable-code cache: compile once, run many.
//
// Every driver in this repository re-runs the same module under many
// configurations — the detection matrix, the FailNth sweep, tier-parity
// triples, perfbench sample loops, fuzzing-campaign oracles — and until now
// each run re-lowered the identical IR from scratch. The content-addressed
// pipeline cache (PR 1) de-duplicated the *front end*; this cache does the
// same for the *back end*, in the compile-once/specialize-per-run tradition
// of HotSpot-style tiered VMs.
//
// What makes sharing sound is that tier-1 closures are pure functions of
// (module, JIT configuration): operands resolve to module indices at compile
// time and to engine objects at run time (GlobalAt), and all per-run
// mutable state — argument buffers, inline-cache entries — lives in the
// engine's call-site table, addressed by compile-time site IDs (Engine.Site).
// A cached closure therefore executes identically on any engine running the
// same module. OSR entries are deliberately *not* cached: they lower against
// one engine's live interpreter frame and consult its speculation blacklist.
//
// Counter parity: each compilation records its counter delta (unitMeta)
// next to the closure, and a cache hit replays the delta into the running
// compiler — so JITReport (Compiled, InstrsTotal, Inlined, Bailed) is
// byte-identical whether the code was compiled in this run or reused, which
// the warm-vs-cold parity suite pins. Bailed compilations are cached as nil
// closures (negative caching): a warm run re-bails instantly with the same
// recorded reason.
package jit

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ir"
)

// siteAlloc hands out dense call-site IDs for one compilation domain (one
// cache unit, or one uncached compiler). It has its own lock because a
// unit's allocator is shared by every compiler filling that unit.
type siteAlloc struct {
	mu   sync.Mutex
	next int
}

func (a *siteAlloc) alloc() int {
	a.mu.Lock()
	id := a.next
	a.next++
	a.mu.Unlock()
	return id
}

// Fingerprint identifies a JIT configuration whose compilations are
// interchangeable. Two compilers with equal fingerprints produce the same
// closures for the same module, so they may share a cache unit.
type Fingerprint struct {
	DisableMem2Reg bool
	DisableTier2   bool
	DisableInline  bool
}

func (c *Compiler) fingerprint() Fingerprint {
	return Fingerprint{
		DisableMem2Reg: c.DisableMem2Reg,
		DisableTier2:   c.DisableTier2,
		DisableInline:  c.DisableInline,
	}
}

// cacheKey addresses one unit: the module's content hash (not its pointer —
// re-parsed but identical sources share code) plus the config fingerprint.
type cacheKey struct {
	hash string
	fp   Fingerprint
}

// modHashes memoizes the content hash per module pointer: drivers run the
// same shared immutable *ir.Module many times, and hashing the printed IR
// is itself a cost worth paying once. (Keying by pointer is safe because
// modules handed to engines are immutable by contract.) The memo is
// epoch-cleared at a size bound rather than grown forever: a fuzzing
// campaign hashes one fresh module per generated program, and a memo that
// pins every module it ever saw would leak the whole campaign's IR. The
// bound comfortably covers the corpus × opt-config working set, so steady
// drivers never re-hash; a clear costs one re-hash per live module.
const modHashBound = 512

var (
	modHashMu sync.Mutex
	modHashes = make(map[*ir.Module]string, 64)
)

func moduleHash(m *ir.Module) string {
	// Pipeline-built modules carry a content address already; hashing the
	// printed IR per generated program was a measurable share of a fuzzing
	// campaign's whole budget. The "cid:"/"sha:" prefixes keep the two hash
	// domains from ever colliding.
	if m.ContentID != "" {
		return "cid:" + m.ContentID
	}
	modHashMu.Lock()
	h, ok := modHashes[m]
	modHashMu.Unlock()
	if ok {
		return h
	}
	sum := sha256.Sum256([]byte(ir.Print(m)))
	h = "sha:" + hex.EncodeToString(sum[:])
	modHashMu.Lock()
	if len(modHashes) >= modHashBound {
		modHashes = make(map[*ir.Module]string, 64)
	}
	modHashes[m] = h
	modHashMu.Unlock()
	return h
}

// funcEntry is one function's compiled artifact inside a unit. ready closes
// when fn/meta are published; concurrent compilers of the same function
// coalesce on it (singleflight), so each function lowers at most once per
// unit lifetime.
type funcEntry struct {
	ready chan struct{}
	fn    core.CompiledFunc // nil: the compilation bailed (negative cache)
	meta  unitMeta
}

// unit is every compiled function of one (module, fingerprint) pair, plus
// the site-ID allocator those functions' closures were compiled against.
// Units are immutable-once-published: entries are only ever added, and a
// published closure is never replaced — a cache hit cannot observe mutation.
type unit struct {
	key   cacheKey
	sites *siteAlloc

	mu    sync.Mutex
	funcs map[int]*funcEntry

	elem *list.Element // position in CodeCache.lru
}

// CodeCache is a size-bounded LRU of compiled-code units shared by every
// engine in the process. Eviction is by unit (a module/config pair), not by
// function: engines still holding closures from an evicted unit keep
// running them — eviction only unpins the unit for the collector once those
// engines retire.
type CodeCache struct {
	mu    sync.Mutex
	cap   int
	units map[cacheKey]*unit
	lru   *list.List // front = most recently used; element values are *unit

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// NewCodeCache returns a cache bounded to capUnits module/config units
// (0 means a default sized for the matrix drivers).
func NewCodeCache(capUnits int) *CodeCache {
	if capUnits <= 0 {
		capUnits = 256
	}
	return &CodeCache{cap: capUnits, units: make(map[cacheKey]*unit), lru: list.New()}
}

// unitFor returns (creating if needed) the unit for m under fp, updating
// recency and evicting over-capacity units.
func (cc *CodeCache) unitFor(m *ir.Module, fp Fingerprint) *unit {
	key := cacheKey{hash: moduleHash(m), fp: fp}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if u, ok := cc.units[key]; ok {
		cc.lru.MoveToFront(u.elem)
		return u
	}
	u := &unit{key: key, sites: &siteAlloc{}, funcs: make(map[int]*funcEntry)}
	u.elem = cc.lru.PushFront(u)
	cc.units[key] = u
	for cc.lru.Len() > cc.cap {
		ev := cc.lru.Remove(cc.lru.Back()).(*unit)
		delete(cc.units, ev.key)
		cc.evictions.Add(1)
	}
	return u
}

// compile serves one Compile request through the cache: a hit replays the
// recorded counter delta and returns the shared closure; a miss compiles
// under the unit's site allocator, publishes, and wakes coalesced waiters.
func (cc *CodeCache) compile(c *Compiler, e *core.Engine, fidx int) core.CompiledFunc {
	u := cc.unitFor(e.Module(), c.fingerprint())
	u.mu.Lock()
	if fe, ok := u.funcs[fidx]; ok {
		u.mu.Unlock()
		<-fe.ready
		cc.hits.Add(1)
		c.mu.Lock()
		c.apply(fe.meta)
		c.mu.Unlock()
		return fe.fn
	}
	fe := &funcEntry{ready: make(chan struct{})}
	u.funcs[fidx] = fe
	u.mu.Unlock()
	cc.misses.Add(1)

	// Publish even if the compile panics (the facade contains the panic as
	// an InternalError): waiters then see a nil closure and stay in the
	// interpreter instead of blocking forever.
	published := false
	defer func() {
		if !published {
			close(fe.ready)
		}
	}()

	c.mu.Lock()
	c.sites = u.sites
	fn, meta := c.compileFn(e, fidx)
	c.apply(meta)
	c.mu.Unlock()

	fe.fn, fe.meta = fn, meta
	published = true
	close(fe.ready)
	return fn
}

// ReleaseModule evicts every unit compiled from m, across all config
// fingerprints, and drops m's hash memo. Drivers that retire a module for
// good call it so a churn workload — a fuzzing campaign compiles one fresh
// module per generated program and never revisits it — does not fill the LRU
// with dead code that only GC scan time pays for. Engines still holding
// closures from a released unit keep running them; release is an eviction,
// not an invalidation.
func (cc *CodeCache) ReleaseModule(m *ir.Module) {
	var h string
	if m.ContentID != "" {
		h = "cid:" + m.ContentID
	} else {
		// Consult (and drop) the hash memo rather than re-hashing: every
		// module that ever entered the cache was memoized by unitFor, so a
		// miss means the module is not cached and release is a no-op — which
		// keeps releasing cheap for NoCodeCache runs, where hashing printed
		// IR would be pure overhead. (If an epoch clear raced in between,
		// the unit just waits for ordinary LRU eviction instead.)
		modHashMu.Lock()
		memo, ok := modHashes[m]
		if ok {
			delete(modHashes, m)
		}
		modHashMu.Unlock()
		if !ok {
			return
		}
		h = memo
	}
	cc.mu.Lock()
	for key, u := range cc.units {
		if key.hash == h {
			cc.lru.Remove(u.elem)
			delete(cc.units, key)
			cc.evictions.Add(1)
		}
	}
	cc.mu.Unlock()
}

// CodeCacheStats is a point-in-time snapshot of cache effectiveness.
type CodeCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Units     int    `json:"units"`
	Funcs     int    `json:"funcs"`
}

// Stats returns hit/miss/eviction counters and the current population.
func (cc *CodeCache) Stats() CodeCacheStats {
	cc.mu.Lock()
	units := len(cc.units)
	funcs := 0
	for _, u := range cc.units {
		u.mu.Lock()
		funcs += len(u.funcs)
		u.mu.Unlock()
	}
	cc.mu.Unlock()
	return CodeCacheStats{
		Hits:      cc.hits.Load(),
		Misses:    cc.misses.Load(),
		Evictions: cc.evictions.Load(),
		Units:     units,
		Funcs:     funcs,
	}
}

// Reset empties the cache and zeroes its counters (cold-start benchmarking).
func (cc *CodeCache) Reset() {
	cc.mu.Lock()
	cc.units = make(map[cacheKey]*unit)
	cc.lru = list.New()
	cc.hits.Store(0)
	cc.misses.Store(0)
	cc.evictions.Store(0)
	cc.mu.Unlock()
}
