// Package jit is Safe Sulong's tier-1 dynamic compiler — the Graal analogue.
// When the engine reports a function hot, the compiler clones its IR,
// applies *safety-preserving* optimizations (scalar promotion of
// non-escaping locals, constant folding, copy propagation, loop-invariant
// hoisting of pure computations — never dead-store or dead-load
// elimination, which would erase bugs), and lowers each basic block to a
// flat slice of specialized Go closures with pre-resolved operands. The
// tier-2 peak-performance layer adds leaf-function inlining, gep+access
// superinstructions with coalesced range checks, and inline caches for
// indirect calls. The result keeps every bounds/NULL/free check observable
// — this is the paper's "optimizes based on safe semantics [and] cannot
// optimize away invalid accesses" property (§4.2) — while eliminating the
// tier-0 interpreter's dispatch and operand-decoding overhead.
//
// Fuel contract: every basic block charges its weight-accounted cost on
// entry and refunds the unexecuted remainder when an instruction faults, so
// Stats.Steps is byte-identical to tier 0 on clean *and* faulting runs.
package jit

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
)

// Inlining budgets: only leaf functions (no calls, no varargs) up to
// inlineMaxInstrs instructions are inlined, and at most inlineMaxTotal
// instructions of callee code may be inlined into one caller.
const (
	inlineMaxInstrs = 40
	inlineMaxTotal  = 256
	maxBailReasons  = 16
)

// Compiler implements core.Tier1Compiler and core.OSRCompiler. Compilation
// may run on the engine's background compile pool while the engine thread
// executes tier-0 code, so every compile entry point and every counter
// access is serialized by mu — the *compiled closures* it produces still
// execute single-threaded on the engine thread.
type Compiler struct {
	// Compiled counts tier-1 compiled functions; InstrsTotal their size
	// (both committed only when a compilation succeeds, so a bail-out never
	// skews the totals).
	Compiled    int
	InstrsTotal int
	// Bailed counts compilations abandoned back to the interpreter, and
	// BailReasons records why (capped; "func: reason"). A silent bail-out
	// shows up in benchmarks only as slow numbers — these counters make it
	// visible in perfbench -json and sulong -json.
	Bailed      int
	BailReasons []string
	// Inlined counts call sites expanded by the tier-2 inliner.
	Inlined int
	// OSRCompiled counts frame-compatible on-stack-replacement entries
	// produced (osr.go); OSRInstrs their lowered instruction count.
	OSRCompiled int
	OSRInstrs   int
	// DisableMem2Reg turns off scalar promotion and every later pass
	// (ablation benchmarks: the tier-0-shaped closure compiler).
	DisableMem2Reg bool
	// DisableTier2 turns off the tier-2 peak layer (copy propagation,
	// address CSE, hoisting, fusion, inlining, inline caches), reproducing
	// the pre-tier-2 compiler for the recorded baseline rows.
	DisableTier2 bool
	// DisableInline turns off just the inliner (ablation row).
	DisableInline bool

	// Cache, when set, makes Compile consult the process-wide executable-code
	// cache before lowering: a hit attaches the shared immutable closure and
	// replays the compile's recorded counter deltas, so JITReport is
	// byte-identical whether the code was compiled here or reused. Set it
	// before the first Compile and never change it.
	Cache *CodeCache

	// mu serializes compilations (the engine may run them on background
	// workers) and guards the counters above against concurrent Stats reads.
	mu sync.Mutex

	// sites allocates per-call-site IDs for the engine-resident state behind
	// compiled closures (argument buffers, inline caches). When compiling
	// into a cache unit this is the unit's allocator, so every engine running
	// the shared code addresses the same dense ID space; uncached compilers
	// get a private one lazily.
	sites *siteAlloc

	// per-Compile state
	nextReg      int  // first free register (inline windows grow this)
	inlinedInstr int  // callee instructions inlined so far
	inlinedSites int  // call sites inlined by this compilation (meta delta)
	osrMode      bool // lowering an OSR entry: frame-compatible, no inlining
}

// Stats is a consistent snapshot of the compiler's counters, safe to take
// while background compilations are in flight.
type Stats struct {
	Compiled    int
	InstrsTotal int
	Bailed      int
	BailReasons []string
	Inlined     int
	OSRCompiled int
}

// Snapshot returns the counters under the compile lock. Callers observing a
// run in progress (warmup-curve capture) must use this instead of reading
// the fields, which would race with a worker mid-compile.
func (c *Compiler) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Compiled:    c.Compiled,
		InstrsTotal: c.InstrsTotal,
		Bailed:      c.Bailed,
		BailReasons: append([]string(nil), c.BailReasons...),
		Inlined:     c.Inlined,
		OSRCompiled: c.OSRCompiled,
	}
}

// New returns a tier-1 compiler.
func New() *Compiler { return &Compiler{} }

// bail abandons the current compilation, recording why.
func (c *Compiler) bail(fn string, err error) {
	c.Bailed++
	if len(c.BailReasons) < maxBailReasons {
		c.BailReasons = append(c.BailReasons, fmt.Sprintf("%s: %v", fn, err))
	}
}

// step executes one non-terminator instruction.
type step func(e *core.Engine, fr *core.Frame) error

// term executes a block terminator: returns the next block, or done=true
// with the return value.
type term func(e *core.Engine, fr *core.Frame) (next int, ret core.Value, done bool, err error)

type block struct {
	body []step
	term term
	// cost is the fuel charged when the block executes: the weight-account
	// sum of its instructions (weights fold when tier-2 passes remove or
	// fuse instructions, so the cost equals what the tier-0 interpreter
	// would charge). Charging per block instead of per closure keeps
	// compiled code cheap while making Config.MaxSteps binding in tier 1.
	cost int64
	// refund[i] is the fuel handed back when body[i] returns an error: the
	// summed weights of the instructions after i that never ran. This keeps
	// Stats.Steps on a faulting run byte-identical to tier-0's
	// charge-per-instruction accounting even with tier-2 restructuring.
	refund []int64
}

// unitMeta is the counter delta one compilation produces, recorded alongside
// the closure in the code cache so a cache hit replays exactly the JITReport
// a cold compile would have produced (including bails and inlined sites).
type unitMeta struct {
	instrs  int
	inlined int
	bailed  bool
	bailMsg string
}

// apply commits one compilation's counter delta. Callers hold c.mu.
func (c *Compiler) apply(m unitMeta) {
	c.Inlined += m.inlined
	if m.bailed {
		c.Bailed++
		if len(c.BailReasons) < maxBailReasons {
			c.BailReasons = append(c.BailReasons, m.bailMsg)
		}
		return
	}
	c.Compiled++
	c.InstrsTotal += m.instrs
}

// siteID allocates the next per-call-site state ID for the current compile.
func (c *Compiler) siteID() int {
	if c.sites == nil {
		c.sites = &siteAlloc{}
	}
	return c.sites.alloc()
}

// Compile lowers the function at fidx to closures. A nil result means the
// function stays in the interpreter (and is counted in Bailed). With a
// Cache attached, the compile is served from (or populates) the shared
// executable-code cache.
func (c *Compiler) Compile(e *core.Engine, fidx int) core.CompiledFunc {
	if c.Cache != nil {
		return c.Cache.compile(c, e, fidx)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fn, meta := c.compileFn(e, fidx)
	c.apply(meta)
	return fn
}

// compileFn performs one tier-1 compilation and returns the closure plus its
// counter delta, without touching the public counters. Callers hold c.mu.
func (c *Compiler) compileFn(e *core.Engine, fidx int) (core.CompiledFunc, unitMeta) {
	orig := e.Module().Funcs[fidx]
	f := cloneForJIT(orig)
	w := opt.NewWeights(f)
	if !c.DisableMem2Reg {
		opt.Mem2Reg(f)
		opt.FoldConstants(f)
		if !c.DisableTier2 {
			opt.CopyPropagate(f)
			opt.CSEAddresses(f)
			opt.CopyPropagate(f)
			w = opt.HoistLoopInvariants(f, w)
		}
		opt.SweepDeadMoves(f, w)
	}
	c.nextReg = f.NumRegs
	c.inlinedInstr = 0
	c.inlinedSites = 0
	c.osrMode = false

	blocks, instrs, err := c.lowerFunc(e, f, w)
	if err != nil {
		// Bail out: stay in the interpreter. The delta still carries any
		// sites inlined before the failing block, matching what the counters
		// historically recorded on a bail.
		return nil, unitMeta{inlined: c.inlinedSites, bailed: true,
			bailMsg: fmt.Sprintf("%s: %v", orig.Name, err)}
	}
	// The size stats are committed only on success: a compilation that bails
	// after lowering a few blocks must not inflate InstrsTotal (it produced
	// no compiled code).
	numRegs := c.nextReg
	meta := unitMeta{instrs: instrs, inlined: c.inlinedSites}
	return func(e *core.Engine, fr *core.Frame) (core.Value, error) {
		// The clone may have added registers (promoted scalars, hoisted
		// temporaries, inline windows).
		if len(fr.Regs) < numRegs {
			regs := make([]core.Value, numRegs)
			copy(regs, fr.Regs)
			fr.Regs = regs
		}
		blk := 0
		for {
			b := &blocks[blk]
			// Fuel + cancellation: one charge per basic block. This is the
			// execution governor's tier-1 hook — compiled loops consume the
			// same step budget as interpreted ones and observe cooperative
			// cancellation at every block boundary.
			if err := e.ChargeSteps(b.cost); err != nil {
				return core.Value{}, err
			}
			for i, s := range b.body {
				if err := s(e, fr); err != nil {
					e.RefundSteps(b.refund[i])
					return core.Value{}, err
				}
			}
			next, ret, done, err := b.term(e, fr)
			if err != nil {
				return core.Value{}, err
			}
			if done {
				return ret, nil
			}
			blk = next
		}
	}, meta
}

// lowerFunc lowers every block of f (whose weight account is w) and returns
// the blocks plus the instruction count.
func (c *Compiler) lowerFunc(e *core.Engine, f *ir.Func, w opt.Weights) ([]block, int, error) {
	uses := regUsesJIT(f, c.nextReg)
	blocks := make([]block, len(f.Blocks))
	instrs := 0
	for bi, b := range f.Blocks {
		lb, err := c.lowerBlock(e, f, b, w[bi], uses)
		if err != nil {
			return nil, 0, err
		}
		blocks[bi] = lb
		instrs += len(b.Instrs)
	}
	return blocks, instrs, nil
}

// lowerBlock lowers one basic block: instruction closures with per-step
// weights (for fault refunds), tier-2 superinstruction fusion, and the
// cmp+condbr terminator fusion.
func (c *Compiler) lowerBlock(e *core.Engine, f *ir.Func, b *ir.Block, bw []int64, uses []int) (block, error) {
	n := len(b.Instrs)
	tier2 := !c.DisableMem2Reg && !c.DisableTier2
	var body []step
	var wts []int64
	i := 0
	last := n - 1 // terminator index

	// cmp+condbr fusion: when the final non-terminator is a comparison
	// consumed only by the conditional branch, evaluate it inside the
	// terminator closure (one dispatch instead of two). Its weight moves to
	// the terminator; neither instruction can fault, so refunds are
	// unaffected.
	fuseCmp := false
	if tier2 && n >= 2 {
		cmp := &b.Instrs[n-2]
		t := &b.Instrs[n-1]
		if cmp.Op == ir.OpCmp && t.Op == ir.OpCondBr &&
			t.A.Kind == ir.OperReg && t.A.Reg == cmp.Dst &&
			cmp.Dst >= 0 && cmp.Dst < len(uses) && uses[cmp.Dst] == 1 {
			fuseCmp = true
			last = n - 2
		}
	}

	for i < last {
		if tier2 {
			// Coalesced same-object access runs (≥2 gep+access pairs).
			if st, consumed, wt, err := c.tryRun(e, f, b.Instrs[i:last], bw[i:]); err != nil {
				return block{}, err
			} else if consumed > 0 {
				body = append(body, st)
				wts = append(wts, wt)
				i += consumed
				continue
			}
			// gep+load / gep+store superinstruction.
			if i+1 < last {
				if st, ok, err := c.tryFusePair(e, f, &b.Instrs[i], &b.Instrs[i+1]); err != nil {
					return block{}, err
				} else if ok {
					body = append(body, st)
					wts = append(wts, bw[i]+bw[i+1])
					i += 2
					continue
				}
			}
		}
		st, err := c.compileStep(e, f, &b.Instrs[i])
		if err != nil {
			return block{}, err
		}
		body = append(body, st)
		wts = append(wts, bw[i])
		i++
	}

	var t term
	var err error
	termWeight := bw[n-1]
	if fuseCmp {
		t, err = c.compileFusedCmpBr(e, &b.Instrs[n-2], &b.Instrs[n-1])
		termWeight += bw[n-2]
	} else {
		t, err = c.compileTerm(e, f, &b.Instrs[n-1])
	}
	if err != nil {
		return block{}, err
	}

	cost := termWeight
	for _, x := range wts {
		cost += x
	}
	refund := make([]int64, len(wts))
	var prefix int64
	for j, x := range wts {
		prefix += x
		refund[j] = cost - prefix
	}
	return block{body: body, term: t, cost: cost, refund: refund}, nil
}

// cloneForJIT deep-copies one function so tier-1 optimization cannot
// disturb the interpreter's view.
func cloneForJIT(f *ir.Func) *ir.Func {
	nf := &ir.Func{Name: f.Name, Sig: f.Sig, NumRegs: f.NumRegs, ParamNames: f.ParamNames}
	for _, b := range f.Blocks {
		nb := &ir.Block{Name: b.Name, Instrs: append([]ir.Instr(nil), b.Instrs...)}
		for i := range nb.Instrs {
			if nb.Instrs[i].Args != nil {
				nb.Instrs[i].Args = append([]ir.Operand(nil), nb.Instrs[i].Args...)
			}
			if nb.Instrs[i].Cases != nil {
				nb.Instrs[i].Cases = append([]ir.SwitchCase(nil), nb.Instrs[i].Cases...)
			}
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// regUsesJIT counts operand reads per register (array sized to cover the
// possibly-remapped register space).
func regUsesJIT(f *ir.Func, size int) []int {
	if size < f.NumRegs {
		size = f.NumRegs
	}
	uses := make([]int, size)
	mark := func(o ir.Operand) {
		if o.Kind == ir.OperReg && o.Reg >= 0 && o.Reg < size {
			uses[o.Reg]++
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			mark(in.A)
			mark(in.B)
			mark(in.C)
			mark(in.Addr)
			mark(in.Callee)
			for _, a := range in.Args {
				mark(a)
			}
		}
	}
	return uses
}

// getter resolves one operand; the decode happens at compile time.
type getter func(e *core.Engine, fr *core.Frame) core.Value

func (c *Compiler) compileOperand(e *core.Engine, o ir.Operand) (getter, error) {
	switch o.Kind {
	case ir.OperReg:
		r := o.Reg
		return func(e *core.Engine, fr *core.Frame) core.Value { return fr.Regs[r] }, nil
	case ir.OperConstInt:
		v := core.IntValue(o.Int)
		return func(e *core.Engine, fr *core.Frame) core.Value { return v }, nil
	case ir.OperConstFloat:
		v := core.FloatValue(o.Flt)
		return func(e *core.Engine, fr *core.Frame) core.Value { return v }, nil
	case ir.OperGlobal:
		// Resolve to the module global *index* at compile time and to the
		// engine's object at run time: the compiled closure depends only on
		// the module, so the executable-code cache can share it across every
		// engine (and every pooled reset) running this module.
		gi := e.Module().GlobalIndex(o.Sym)
		if gi < 0 {
			return nil, fmt.Errorf("jit: unknown global %s", o.Sym)
		}
		return func(e *core.Engine, fr *core.Frame) core.Value {
			return core.PtrValue(core.Pointer{Obj: e.GlobalAt(gi)})
		}, nil
	case ir.OperFunc:
		idx := e.Module().FuncIndex(o.Sym)
		if idx < 0 {
			return nil, fmt.Errorf("jit: unknown function %s", o.Sym)
		}
		v := core.PtrValue(core.FuncPointer(idx))
		return func(e *core.Engine, fr *core.Frame) core.Value { return v }, nil
	case ir.OperNull:
		return func(e *core.Engine, fr *core.Frame) core.Value { return core.Value{} }, nil
	}
	return nil, fmt.Errorf("jit: bad operand kind %d", o.Kind)
}

func (c *Compiler) compileStep(e *core.Engine, f *ir.Func, in *ir.Instr) (step, error) {
	fname := f.Name
	line := in.Line
	switch in.Op {
	case ir.OpAlloca:
		ty := in.Ty
		name := in.Name
		dst := in.Dst
		size := ty.Size()
		ctype := in.CType
		if cnt, ok := in.CountOp(); ok {
			getCnt, err := c.compileOperand(e, cnt)
			if err != nil {
				return nil, err
			}
			return func(e *core.Engine, fr *core.Frame) error {
				n := getCnt(e, fr).I
				p, err := e.AllocAuto(fr, size*n, name, ty, ctype, fname, line)
				if err != nil {
					return err
				}
				e.TrackAuto(fr, p)
				fr.Regs[dst] = core.PtrValue(p)
				return nil
			}, nil
		}
		return func(e *core.Engine, fr *core.Frame) error {
			p, err := e.AllocAuto(fr, size, name, ty, ctype, fname, line)
			if err != nil {
				return err
			}
			e.TrackAuto(fr, p)
			fr.Regs[dst] = core.PtrValue(p)
			return nil
		}, nil

	case ir.OpLoad:
		return c.compileLoad(e, in, fname, line)

	case ir.OpStore:
		return c.compileStore(e, in, fname, line)

	case ir.OpGEP:
		dst := in.Dst
		stride := in.Stride
		if in.Addr.Kind == ir.OperReg {
			base := in.Addr.Reg
			if in.A.Kind == ir.OperConstInt {
				delta := stride * in.A.Int
				return func(e *core.Engine, fr *core.Frame) error {
					fr.Regs[dst] = core.PtrValue(fr.Regs[base].P.Add(delta))
					return nil
				}, nil
			}
			if in.A.Kind == ir.OperReg {
				idx := in.A.Reg
				return func(e *core.Engine, fr *core.Frame) error {
					fr.Regs[dst] = core.PtrValue(fr.Regs[base].P.Add(stride * fr.Regs[idx].I))
					return nil
				}, nil
			}
		}
		getAddr, err := c.compileOperand(e, in.Addr)
		if err != nil {
			return nil, err
		}
		if in.A.Kind == ir.OperConstInt {
			delta := stride * in.A.Int
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.PtrValue(getAddr(e, fr).P.Add(delta))
				return nil
			}, nil
		}
		getIdx, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.PtrValue(getAddr(e, fr).P.Add(stride * getIdx(e, fr).I))
			return nil
		}, nil

	case ir.OpBin:
		return c.compileBin(e, in, fname, line)

	case ir.OpCmp:
		return c.compileCmp(e, in)

	case ir.OpCast:
		return c.compileCast(e, in, fname, line)

	case ir.OpSelect:
		getT, err := c.compileOperand(e, in.B)
		if err != nil {
			return nil, err
		}
		getF, err := c.compileOperand(e, in.C)
		if err != nil {
			return nil, err
		}
		dst := in.Dst
		if in.A.Kind == ir.OperReg {
			cond := in.A.Reg
			return func(e *core.Engine, fr *core.Frame) error {
				if fr.Regs[cond].I != 0 {
					fr.Regs[dst] = getT(e, fr)
				} else {
					fr.Regs[dst] = getF(e, fr)
				}
				return nil
			}, nil
		}
		getC, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		return func(e *core.Engine, fr *core.Frame) error {
			if getC(e, fr).I != 0 {
				fr.Regs[dst] = getT(e, fr)
			} else {
				fr.Regs[dst] = getF(e, fr)
			}
			return nil
		}, nil

	case ir.OpCall:
		return c.compileCall(e, in, fname)
	}
	return nil, fmt.Errorf("jit: unexpected opcode %v mid-block", in.Op)
}

func (c *Compiler) compileTerm(e *core.Engine, f *ir.Func, in *ir.Instr) (term, error) {
	switch in.Op {
	case ir.OpBr:
		next := in.Blk0
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			return next, core.Value{}, false, nil
		}, nil
	case ir.OpCondBr:
		t, fl := in.Blk0, in.Blk1
		if in.A.Kind == ir.OperReg {
			cond := in.A.Reg
			return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
				if fr.Regs[cond].I != 0 {
					return t, core.Value{}, false, nil
				}
				return fl, core.Value{}, false, nil
			}, nil
		}
		getC, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			if getC(e, fr).I != 0 {
				return t, core.Value{}, false, nil
			}
			return fl, core.Value{}, false, nil
		}, nil
	case ir.OpSwitch:
		getV, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		def := in.Blk0
		table := make(map[int64]int, len(in.Cases))
		for _, cs := range in.Cases {
			table[cs.Val] = cs.Blk
		}
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			if blk, ok := table[getV(e, fr).I]; ok {
				return blk, core.Value{}, false, nil
			}
			return def, core.Value{}, false, nil
		}, nil
	case ir.OpRet:
		if in.A.Kind == ir.OperNone {
			return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
				return 0, core.Value{}, true, nil
			}, nil
		}
		if in.A.Kind == ir.OperReg {
			r := in.A.Reg
			return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
				return 0, fr.Regs[r], true, nil
			}, nil
		}
		getV, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			return 0, getV(e, fr), true, nil
		}, nil
	case ir.OpUnreachable:
		name := f.Name
		line := in.Line
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			// Identical message and guest stack to the tier-0 interpreter, so
			// the two tiers classify and render this fault the same way.
			return 0, core.Value{}, false, &core.InternalError{
				Msg:   fmt.Sprintf("reached unreachable in %s", name),
				Guest: e.CaptureStack(name, line),
			}
		}, nil
	}
	return nil, fmt.Errorf("jit: bad terminator %v", in.Op)
}
