// Package jit is Safe Sulong's tier-1 dynamic compiler — the Graal analogue.
// When the engine reports a function hot, the compiler clones its IR,
// applies *safety-preserving* optimizations (scalar promotion of
// non-escaping locals, constant folding, copy cleanup — never dead-store or
// dead-load elimination, which would erase bugs), and lowers each basic
// block to a flat slice of specialized Go closures with pre-resolved
// operands. The result keeps every bounds/NULL/free check — this is the
// paper's "optimizes based on safe semantics [and] cannot optimize away
// invalid accesses" property — while eliminating the tier-0 interpreter's
// dispatch and operand-decoding overhead.
package jit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
)

// Compiler implements core.Tier1Compiler.
type Compiler struct {
	// Compiled counts tier-1 compiled functions; InstrsTotal their size.
	Compiled    int
	InstrsTotal int
	// DisableMem2Reg turns off scalar promotion (ablation benchmarks).
	DisableMem2Reg bool
}

// New returns a tier-1 compiler.
func New() *Compiler { return &Compiler{} }

// step executes one non-terminator instruction.
type step func(e *core.Engine, fr *core.Frame) error

// term executes a block terminator: returns the next block, or done=true
// with the return value.
type term func(e *core.Engine, fr *core.Frame) (next int, ret core.Value, done bool, err error)

type block struct {
	body []step
	term term
	// cost is the fuel charged when the block executes: its instruction
	// count (body + terminator). Charging per block instead of per closure
	// keeps compiled code cheap while making Config.MaxSteps binding in
	// tier 1 — before this accounting existed, a hot loop that compiled
	// executed zero-cost forever and MaxSteps was silently unenforced.
	cost int64
}

// Compile lowers the function at fidx to closures.
func (c *Compiler) Compile(e *core.Engine, fidx int) core.CompiledFunc {
	orig := e.Module().Funcs[fidx]
	f := cloneForJIT(orig)
	if !c.DisableMem2Reg {
		opt.Mem2Reg(f)
		opt.FoldConstants(f)
		sweepMoves(f)
	}
	blocks := make([]block, len(f.Blocks))
	for bi, b := range f.Blocks {
		var body []step
		n := len(b.Instrs)
		for i := 0; i < n-1; i++ {
			s, err := c.compileStep(e, f, &b.Instrs[i])
			if err != nil {
				return nil // bail out: stay in the interpreter
			}
			body = append(body, s)
		}
		t, err := c.compileTerm(e, f, &b.Instrs[n-1])
		if err != nil {
			return nil
		}
		blocks[bi].body = body
		blocks[bi].term = t
		blocks[bi].cost = int64(n)
		c.InstrsTotal += n
	}
	c.Compiled++
	numRegs := f.NumRegs
	return func(e *core.Engine, fr *core.Frame) (core.Value, error) {
		// The clone may have added registers (promoted scalars).
		if len(fr.Regs) < numRegs {
			regs := make([]core.Value, numRegs)
			copy(regs, fr.Regs)
			fr.Regs = regs
		}
		blk := 0
		for {
			b := &blocks[blk]
			// Fuel + cancellation: one charge per basic block. This is the
			// execution governor's tier-1 hook — compiled loops consume the
			// same step budget as interpreted ones and observe cooperative
			// cancellation at every block boundary.
			if err := e.ChargeSteps(b.cost); err != nil {
				return core.Value{}, err
			}
			for _, s := range b.body {
				if err := s(e, fr); err != nil {
					return core.Value{}, err
				}
			}
			next, ret, done, err := b.term(e, fr)
			if err != nil {
				return core.Value{}, err
			}
			if done {
				return ret, nil
			}
			blk = next
		}
	}
}

// cloneForJIT deep-copies one function so tier-1 optimization cannot
// disturb the interpreter's view.
func cloneForJIT(f *ir.Func) *ir.Func {
	nf := &ir.Func{Name: f.Name, Sig: f.Sig, NumRegs: f.NumRegs, ParamNames: f.ParamNames}
	for _, b := range f.Blocks {
		nb := &ir.Block{Name: b.Name, Instrs: append([]ir.Instr(nil), b.Instrs...)}
		for i := range nb.Instrs {
			if nb.Instrs[i].Args != nil {
				nb.Instrs[i].Args = append([]ir.Operand(nil), nb.Instrs[i].Args...)
			}
			if nb.Instrs[i].Cases != nil {
				nb.Instrs[i].Cases = append([]ir.SwitchCase(nil), nb.Instrs[i].Cases...)
			}
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// sweepMoves removes bitcast moves whose destination is never read — the
// residue of promoted allocas. (Full DCE would be unsafe: it could delete
// checked loads; moves are pure by construction.)
func sweepMoves(f *ir.Func) {
	uses := make([]int, f.NumRegs)
	mark := func(o ir.Operand) {
		if o.Kind == ir.OperReg {
			uses[o.Reg]++
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			mark(in.A)
			mark(in.B)
			mark(in.C)
			mark(in.Addr)
			mark(in.Callee)
			for _, a := range in.Args {
				mark(a)
			}
		}
	}
	for _, b := range f.Blocks {
		dst := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpCast && in.Cast == ir.Bitcast && in.Dst >= 0 && uses[in.Dst] == 0 && len(b.Instrs) > 1 && !ir.IsTerminator(in.Op) {
				continue
			}
			dst = append(dst, in)
		}
		if len(dst) == 0 {
			dst = b.Instrs[:1] // never leave a block empty
		}
		b.Instrs = dst
	}
}

// getter resolves one operand; the decode happens at compile time.
type getter func(e *core.Engine, fr *core.Frame) core.Value

func (c *Compiler) compileOperand(e *core.Engine, o ir.Operand) (getter, error) {
	switch o.Kind {
	case ir.OperReg:
		r := o.Reg
		return func(e *core.Engine, fr *core.Frame) core.Value { return fr.Regs[r] }, nil
	case ir.OperConstInt:
		v := core.IntValue(o.Int)
		return func(e *core.Engine, fr *core.Frame) core.Value { return v }, nil
	case ir.OperConstFloat:
		v := core.FloatValue(o.Flt)
		return func(e *core.Engine, fr *core.Frame) core.Value { return v }, nil
	case ir.OperGlobal:
		obj := e.Global(o.Sym)
		if obj == nil {
			return nil, fmt.Errorf("jit: unknown global %s", o.Sym)
		}
		v := core.PtrValue(core.Pointer{Obj: obj})
		return func(e *core.Engine, fr *core.Frame) core.Value { return v }, nil
	case ir.OperFunc:
		idx := e.Module().FuncIndex(o.Sym)
		if idx < 0 {
			return nil, fmt.Errorf("jit: unknown function %s", o.Sym)
		}
		v := core.PtrValue(core.FuncPointer(idx))
		return func(e *core.Engine, fr *core.Frame) core.Value { return v }, nil
	case ir.OperNull:
		return func(e *core.Engine, fr *core.Frame) core.Value { return core.Value{} }, nil
	}
	return nil, fmt.Errorf("jit: bad operand kind %d", o.Kind)
}

func (c *Compiler) compileStep(e *core.Engine, f *ir.Func, in *ir.Instr) (step, error) {
	fname := f.Name
	line := in.Line
	switch in.Op {
	case ir.OpAlloca:
		ty := in.Ty
		name := in.Name
		dst := in.Dst
		size := ty.Size()
		if cnt, ok := in.CountOp(); ok {
			getCnt, err := c.compileOperand(e, cnt)
			if err != nil {
				return nil, err
			}
			return func(e *core.Engine, fr *core.Frame) error {
				n := getCnt(e, fr).I
				p, err := e.AllocAuto(fr, size*n, name, ty, fname, line)
				if err != nil {
					return err
				}
				e.TrackAuto(fr, p)
				fr.Regs[dst] = core.PtrValue(p)
				return nil
			}, nil
		}
		return func(e *core.Engine, fr *core.Frame) error {
			p, err := e.AllocAuto(fr, size, name, ty, fname, line)
			if err != nil {
				return err
			}
			e.TrackAuto(fr, p)
			fr.Regs[dst] = core.PtrValue(p)
			return nil
		}, nil

	case ir.OpLoad:
		getAddr, err := c.compileOperand(e, in.Addr)
		if err != nil {
			return nil, err
		}
		dst := in.Dst
		ty := in.Ty
		return func(e *core.Engine, fr *core.Frame) error {
			v, be := e.LoadTyped(getAddr(e, fr).P, ty)
			if be != nil {
				return e.Located(be, fname, line)
			}
			fr.Regs[dst] = v
			return nil
		}, nil

	case ir.OpStore:
		getAddr, err := c.compileOperand(e, in.Addr)
		if err != nil {
			return nil, err
		}
		getVal, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		ty := in.Ty
		return func(e *core.Engine, fr *core.Frame) error {
			if be := e.StoreTyped(getAddr(e, fr).P, ty, getVal(e, fr)); be != nil {
				return e.Located(be, fname, line)
			}
			return nil
		}, nil

	case ir.OpGEP:
		getAddr, err := c.compileOperand(e, in.Addr)
		if err != nil {
			return nil, err
		}
		dst := in.Dst
		stride := in.Stride
		if in.A.Kind == ir.OperConstInt {
			delta := stride * in.A.Int
			return func(e *core.Engine, fr *core.Frame) error {
				fr.Regs[dst] = core.PtrValue(getAddr(e, fr).P.Add(delta))
				return nil
			}, nil
		}
		getIdx, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		return func(e *core.Engine, fr *core.Frame) error {
			fr.Regs[dst] = core.PtrValue(getAddr(e, fr).P.Add(stride * getIdx(e, fr).I))
			return nil
		}, nil

	case ir.OpBin:
		return c.compileBin(e, in, fname, line)

	case ir.OpCmp:
		return c.compileCmp(e, in)

	case ir.OpCast:
		return c.compileCast(e, in)

	case ir.OpSelect:
		getC, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		getT, err := c.compileOperand(e, in.B)
		if err != nil {
			return nil, err
		}
		getF, err := c.compileOperand(e, in.C)
		if err != nil {
			return nil, err
		}
		dst := in.Dst
		return func(e *core.Engine, fr *core.Frame) error {
			if getC(e, fr).I != 0 {
				fr.Regs[dst] = getT(e, fr)
			} else {
				fr.Regs[dst] = getF(e, fr)
			}
			return nil
		}, nil

	case ir.OpCall:
		return c.compileCall(e, in, fname)
	}
	return nil, fmt.Errorf("jit: unexpected opcode %v mid-block", in.Op)
}

func (c *Compiler) compileTerm(e *core.Engine, f *ir.Func, in *ir.Instr) (term, error) {
	switch in.Op {
	case ir.OpBr:
		next := in.Blk0
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			return next, core.Value{}, false, nil
		}, nil
	case ir.OpCondBr:
		getC, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		t, fl := in.Blk0, in.Blk1
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			if getC(e, fr).I != 0 {
				return t, core.Value{}, false, nil
			}
			return fl, core.Value{}, false, nil
		}, nil
	case ir.OpSwitch:
		getV, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		def := in.Blk0
		table := make(map[int64]int, len(in.Cases))
		for _, cs := range in.Cases {
			table[cs.Val] = cs.Blk
		}
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			if blk, ok := table[getV(e, fr).I]; ok {
				return blk, core.Value{}, false, nil
			}
			return def, core.Value{}, false, nil
		}, nil
	case ir.OpRet:
		if in.A.Kind == ir.OperNone {
			return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
				return 0, core.Value{}, true, nil
			}, nil
		}
		getV, err := c.compileOperand(e, in.A)
		if err != nil {
			return nil, err
		}
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			return 0, getV(e, fr), true, nil
		}, nil
	case ir.OpUnreachable:
		name := f.Name
		line := in.Line
		return func(e *core.Engine, fr *core.Frame) (int, core.Value, bool, error) {
			// Identical message and guest stack to the tier-0 interpreter, so
			// the two tiers classify and render this fault the same way.
			return 0, core.Value{}, false, &core.InternalError{
				Msg:   fmt.Sprintf("reached unreachable in %s", name),
				Guest: e.CaptureStack(name, line),
			}
		}, nil
	}
	return nil, fmt.Errorf("jit: bad terminator %v", in.Op)
}
