package benchprog

import "testing"

func TestAllPresent(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("expected 9 benchmarks, got %d", len(all))
	}
	for _, b := range all {
		if b.Source == "" || b.SmallArg == "" || b.DefaultArg == "" {
			t.Errorf("%s: incomplete metadata", b.Name)
		}
	}
	if _, err := Get("nbody"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) should fail")
	}
	if len(Names()) != 9 {
		t.Error("Names() size mismatch")
	}
}
