/* binarytrees — Benchmarks Game: allocate and walk perfect binary trees.
 * Allocation-intensive: this is the benchmark on which shadow-memory tools
 * slow down most (paper §4.3). Argument: max depth (default 10). */
#include <stdio.h>
#include <stdlib.h>

struct node {
    struct node *left;
    struct node *right;
};

static struct node *bottom_up_tree(int depth) {
    struct node *n = (struct node *)malloc(sizeof(struct node));
    if (depth > 0) {
        n->left = bottom_up_tree(depth - 1);
        n->right = bottom_up_tree(depth - 1);
    } else {
        n->left = NULL;
        n->right = NULL;
    }
    return n;
}

static int item_check(struct node *n) {
    if (n->left == NULL) {
        return 1;
    }
    return 1 + item_check(n->left) + item_check(n->right);
}

static void delete_tree(struct node *n) {
    if (n->left != NULL) {
        delete_tree(n->left);
        delete_tree(n->right);
    }
    free(n);
}

int main(int argc, char **argv) {
    int maxDepth = 10;
    int minDepth = 4;
    int depth;
    struct node *longLived;
    if (argc > 1) {
        maxDepth = atoi(argv[1]);
    }
    if (minDepth + 2 > maxDepth) {
        maxDepth = minDepth + 2;
    }
    {
        struct node *stretch = bottom_up_tree(maxDepth + 1);
        printf("stretch tree of depth %d\t check: %d\n", maxDepth + 1, item_check(stretch));
        delete_tree(stretch);
    }
    longLived = bottom_up_tree(maxDepth);
    for (depth = minDepth; depth <= maxDepth; depth += 2) {
        int iterations = 1 << (maxDepth - depth + minDepth);
        int check = 0;
        int i;
        for (i = 0; i < iterations; i++) {
            struct node *t = bottom_up_tree(depth);
            check += item_check(t);
            delete_tree(t);
        }
        printf("%d\t trees of depth %d\t check: %d\n", iterations, depth, check);
    }
    printf("long lived tree of depth %d\t check: %d\n", maxDepth, item_check(longLived));
    delete_tree(longLived);
    return 0;
}
