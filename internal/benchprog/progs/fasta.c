/* fasta — Benchmarks Game: generate DNA sequences with a weighted random
 * selection. Argument: n (default 300). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define LINE_LEN 60
#define IM 139968
#define IA 3877
#define IC 29573

static long rand_seed = 42;

static double gen_random(double max) {
    rand_seed = (rand_seed * IA + IC) % IM;
    return max * rand_seed / IM;
}

struct aminoacid {
    char c;
    double p;
};

static struct aminoacid iub[] = {
    {'a', 0.27}, {'c', 0.12}, {'g', 0.12}, {'t', 0.27},
    {'B', 0.02}, {'D', 0.02}, {'H', 0.02}, {'K', 0.02},
    {'M', 0.02}, {'N', 0.02}, {'R', 0.02}, {'S', 0.02},
    {'V', 0.02}, {'W', 0.02}, {'Y', 0.02},
};

static struct aminoacid homosapiens[] = {
    {'a', 0.3029549426680}, {'c', 0.1979883004921},
    {'g', 0.1975473066391}, {'t', 0.3015094502008},
};

static const char *alu =
    "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGA"
    "TCACCTGAGGTCAGGAGTTCGAGACCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACT"
    "AAAAATACAAAAATTAGCCGGGCGTGGTGGCGCGCGCCTGTAATCCCAGCTACTCGGGAG"
    "GCTGAGGCAGGAGAATCGCTTGAACCCGGGAGGCGGAGGTTGCAGTGAGCCGAGATCGCG"
    "CCACTGCACTCCAGCCTGGGCGACAGAGCGAGACTCCGTCTCAAAAA";

static void make_cumulative(struct aminoacid *table, int count) {
    double cp = 0.0;
    int i;
    for (i = 0; i < count; i++) {
        cp += table[i].p;
        table[i].p = cp;
    }
}

static char select_random(struct aminoacid *table, int count) {
    double r = gen_random(1.0);
    int i;
    for (i = 0; i < count - 1; i++) {
        if (r < table[i].p) {
            return table[i].c;
        }
    }
    return table[count - 1].c;
}

static void make_random_fasta(const char *id, struct aminoacid *table,
                              int count, int n) {
    int todo = n;
    char line[LINE_LEN + 1];
    printf(">%s\n", id);
    while (todo > 0) {
        int m = todo < LINE_LEN ? todo : LINE_LEN;
        int i;
        for (i = 0; i < m; i++) {
            line[i] = select_random(table, count);
        }
        line[m] = '\0';
        puts(line);
        todo -= m;
    }
}

static void make_repeat_fasta(const char *id, const char *s, int n) {
    int todo = n;
    int k = 0;
    int kn = (int)strlen(s);
    char line[LINE_LEN + 1];
    printf(">%s\n", id);
    while (todo > 0) {
        int m = todo < LINE_LEN ? todo : LINE_LEN;
        int i;
        for (i = 0; i < m; i++) {
            if (k == kn) {
                k = 0;
            }
            line[i] = s[k++];
        }
        line[m] = '\0';
        puts(line);
        todo -= m;
    }
}

int main(int argc, char **argv) {
    int n = 300;
    if (argc > 1) {
        n = atoi(argv[1]);
    }
    make_cumulative(iub, 15);
    make_cumulative(homosapiens, 4);
    make_repeat_fasta("ONE Homo sapiens alu", alu, n * 2);
    make_random_fasta("TWO IUB ambiguity codes", iub, 15, n * 3);
    make_random_fasta("THREE Homo sapiens frequency", homosapiens, 4, n * 5);
    return 0;
}
