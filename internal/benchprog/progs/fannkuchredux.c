/* fannkuchredux — Benchmarks Game: pancake flipping over permutations.
 * Argument: n (default 7). */
#include <stdio.h>
#include <stdlib.h>

#define MAXN 12

int main(int argc, char **argv) {
    int n = 7;
    int perm[MAXN], perm1[MAXN], count[MAXN];
    int maxFlips = 0, permCount = 0, checksum = 0;
    int i, r;
    if (argc > 1) {
        n = atoi(argv[1]);
    }
    if (n > MAXN) {
        n = MAXN;
    }
    for (i = 0; i < n; i++) {
        perm1[i] = i;
    }
    r = n;
    for (;;) {
        while (r != 1) {
            count[r - 1] = r;
            r--;
        }
        {
            int flips = 0;
            int k;
            for (i = 0; i < n; i++) {
                perm[i] = perm1[i];
            }
            k = perm[0];
            while (k != 0) {
                int lo = 0, hi = k;
                while (lo < hi) {
                    int t = perm[lo];
                    perm[lo] = perm[hi];
                    perm[hi] = t;
                    lo++;
                    hi--;
                }
                flips++;
                k = perm[0];
            }
            if (flips > maxFlips) {
                maxFlips = flips;
            }
            if (permCount % 2 == 0) {
                checksum += flips;
            } else {
                checksum -= flips;
            }
        }
        for (;;) {
            int first;
            if (r == n) {
                printf("%d\n", checksum);
                printf("Pfannkuchen(%d) = %d\n", n, maxFlips);
                return 0;
            }
            first = perm1[0];
            for (i = 0; i < r; i++) {
                perm1[i] = perm1[i + 1];
            }
            perm1[r] = first;
            count[r] = count[r] - 1;
            if (count[r] > 0) {
                break;
            }
            r++;
        }
        permCount++;
    }
}
