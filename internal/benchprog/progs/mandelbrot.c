/* mandelbrot — Benchmarks Game: render the Mandelbrot set.
 * Argument: image size (default 64). Prints a checksum of the bitmap
 * instead of binary PBM output, so results compare across engines. */
#include <stdio.h>
#include <stdlib.h>

int main(int argc, char **argv) {
    int w = 64;
    int x, y, i;
    long checksum = 0;
    if (argc > 1) {
        w = atoi(argv[1]);
    }
    for (y = 0; y < w; y++) {
        for (x = 0; x < w; x++) {
            double zr = 0.0, zi = 0.0;
            double cr = 2.0 * x / w - 1.5;
            double ci = 2.0 * y / w - 1.0;
            int inside = 1;
            for (i = 0; i < 50; i++) {
                double zr2 = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = zr2;
                if (zr * zr + zi * zi > 4.0) {
                    inside = 0;
                    break;
                }
            }
            if (inside) {
                checksum += x ^ y;
            }
        }
    }
    printf("%ld\n", checksum);
    return 0;
}
