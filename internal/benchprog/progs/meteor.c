/* meteor — a backtracking exact-tiling search standing in for the
 * Benchmarks Game meteor puzzle (see DESIGN.md: same algorithmic shape —
 * recursive placement search over a bitboard with precomputed piece masks —
 * sized so one run takes comparable work). Counts the tilings of a WxH
 * board by L-tromino shapes in all orientations.
 * Argument: board width (default 6; height fixed at 5). */
#include <stdio.h>
#include <stdlib.h>

#define MAXCELLS 64

static int W = 6;
static int H = 5;
static long solutions = 0;

/* The four orientations of the L-tromino, as (dx, dy) offsets. */
static int shapes[4][3][2] = {
    {{0, 0}, {1, 0}, {0, 1}},
    {{0, 0}, {1, 0}, {1, 1}},
    {{0, 0}, {0, 1}, {1, 1}},
    {{0, 0}, {1, 0}, {0, -1}},
};

static int occupied[MAXCELLS];

static int first_free(void) {
    int i;
    for (i = 0; i < W * H; i++) {
        if (!occupied[i]) {
            return i;
        }
    }
    return -1;
}

static int try_place(int cell, int s, int mark) {
    int x = cell % W;
    int y = cell / W;
    int k;
    for (k = 0; k < 3; k++) {
        int nx = x + shapes[s][k][0];
        int ny = y + shapes[s][k][1];
        if (nx < 0 || nx >= W || ny < 0 || ny >= H) {
            return 0;
        }
        if (occupied[ny * W + nx] && mark) {
            return 0;
        }
        if (occupied[ny * W + nx]) {
            return 0;
        }
    }
    for (k = 0; k < 3; k++) {
        int nx = x + shapes[s][k][0];
        int ny = y + shapes[s][k][1];
        occupied[ny * W + nx] = mark;
    }
    return 1;
}

static void unplace(int cell, int s) {
    int x = cell % W;
    int y = cell / W;
    int k;
    for (k = 0; k < 3; k++) {
        int nx = x + shapes[s][k][0];
        int ny = y + shapes[s][k][1];
        occupied[ny * W + nx] = 0;
    }
}

static void solve(int remaining) {
    int cell, s;
    if (remaining == 0) {
        solutions++;
        return;
    }
    cell = first_free();
    if (cell < 0) {
        return;
    }
    for (s = 0; s < 4; s++) {
        if (try_place(cell, s, 1)) {
            solve(remaining - 3);
            unplace(cell, s);
        }
    }
}

int main(int argc, char **argv) {
    int i;
    if (argc > 1) {
        W = atoi(argv[1]);
    }
    if (W * H > MAXCELLS) {
        W = MAXCELLS / H;
    }
    if ((W * H) % 3 != 0) {
        W++;
    }
    for (i = 0; i < MAXCELLS; i++) {
        occupied[i] = 0;
    }
    solve(W * H);
    printf("%ld solutions found\n", solutions);
    return 0;
}
