/* spectralnorm — Benchmarks Game: spectral norm of an infinite matrix.
 * Argument: matrix size (default 100). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

static double eval_A(int i, int j) {
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}

static void eval_A_times_u(int n, const double *u, double *Au) {
    int i, j;
    for (i = 0; i < n; i++) {
        double s = 0.0;
        for (j = 0; j < n; j++) {
            s += eval_A(i, j) * u[j];
        }
        Au[i] = s;
    }
}

static void eval_At_times_u(int n, const double *u, double *Au) {
    int i, j;
    for (i = 0; i < n; i++) {
        double s = 0.0;
        for (j = 0; j < n; j++) {
            s += eval_A(j, i) * u[j];
        }
        Au[i] = s;
    }
}

static void eval_AtA_times_u(int n, const double *u, double *AtAu, double *tmp) {
    eval_A_times_u(n, u, tmp);
    eval_At_times_u(n, tmp, AtAu);
}

int main(int argc, char **argv) {
    int n = 100;
    int i;
    double *u, *v, *tmp;
    double vBv = 0.0, vv = 0.0;
    if (argc > 1) {
        n = atoi(argv[1]);
    }
    u = (double *)malloc(n * sizeof(double));
    v = (double *)malloc(n * sizeof(double));
    tmp = (double *)malloc(n * sizeof(double));
    for (i = 0; i < n; i++) {
        u[i] = 1.0;
    }
    for (i = 0; i < 10; i++) {
        eval_AtA_times_u(n, u, v, tmp);
        eval_AtA_times_u(n, v, u, tmp);
    }
    for (i = 0; i < n; i++) {
        vBv += u[i] * v[i];
        vv += v[i] * v[i];
    }
    printf("%.9f\n", sqrt(vBv / vv));
    free(u);
    free(v);
    free(tmp);
    return 0;
}
