/* fastaredux — Benchmarks Game: fasta with a precomputed lookup table.
 *
 * This is the benchmark in which the paper's authors found (and fixed) a
 * real out-of-bounds loop: accumulated probabilities fell short of 1.0 due
 * to float rounding, so the lookup could run past the table. This version
 * includes their fix (the last slot is forced to cover the remainder).
 * Argument: n (default 300). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define LINE_LEN 60
#define LOOKUP_SIZE 4096
#define IM 139968
#define IA 3877
#define IC 29573

static long rand_seed = 42;

static double gen_random(void) {
    rand_seed = (rand_seed * IA + IC) % IM;
    return (double)rand_seed / IM;
}

struct acid {
    char c;
    double p;
};

static struct acid iub[] = {
    {'a', 0.27}, {'c', 0.12}, {'g', 0.12}, {'t', 0.27},
    {'B', 0.02}, {'D', 0.02}, {'H', 0.02}, {'K', 0.02},
    {'M', 0.02}, {'N', 0.02}, {'R', 0.02}, {'S', 0.02},
    {'V', 0.02}, {'W', 0.02}, {'Y', 0.02},
};

static char lookup[LOOKUP_SIZE];

static void build_lookup(struct acid *table, int count) {
    int i, j = 0;
    double cp = 0.0;
    for (i = 0; i < count; i++) {
        int upto;
        cp += table[i].p;
        upto = (int)(cp * LOOKUP_SIZE);
        /* Fix for the rounding bug: the final acid fills the table. */
        if (i == count - 1) {
            upto = LOOKUP_SIZE;
        }
        while (j < upto) {
            lookup[j++] = table[i].c;
        }
    }
}

int main(int argc, char **argv) {
    int n = 300;
    int todo;
    char line[LINE_LEN + 1];
    if (argc > 1) {
        n = atoi(argv[1]);
    }
    build_lookup(iub, 15);
    printf(">TWO IUB ambiguity codes\n");
    todo = n * 3;
    while (todo > 0) {
        int m = todo < LINE_LEN ? todo : LINE_LEN;
        int i;
        for (i = 0; i < m; i++) {
            int idx = (int)(gen_random() * LOOKUP_SIZE);
            line[i] = lookup[idx];
        }
        line[m] = '\0';
        puts(line);
        todo -= m;
    }
    return 0;
}
