/* whetstone — the classic synthetic floating-point benchmark (Curnow &
 * Wichmann), following the structure of the netlib C version the paper
 * cites: eight modules exercising array arithmetic, procedure calls,
 * trigonometry, and transcendental functions.
 * Argument: loop count (default 50). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

static double t = 0.499975;
static double t1 = 0.50025;
static double t2 = 2.0;
static double e1[5];

static void pa(double *e) {
    int j;
    for (j = 0; j < 6; j++) {
        e[1] = (e[1] + e[2] + e[3] - e[4]) * t;
        e[2] = (e[1] + e[2] - e[3] + e[4]) * t;
        e[3] = (e[1] - e[2] + e[3] + e[4]) * t;
        e[4] = (-e[1] + e[2] + e[3] + e[4]) / t2;
    }
}

static void p3(double x, double y, double *z) {
    double x1 = x;
    double y1 = y;
    x1 = t * (x1 + y1);
    y1 = t * (x1 + y1);
    *z = (x1 + y1) / t2;
}

static void p0(int *j, int *k, int *l) {
    e1[*j] = e1[*k];
    e1[*k] = e1[*l];
    e1[*l] = e1[*j];
}

int main(int argc, char **argv) {
    int loop = 50;
    int n1, n2, n3, n4, n6, n7, n8;
    int i, ix, j, k, l;
    double x, y, z, x1, x2, x3, x4;
    if (argc > 1) {
        loop = atoi(argv[1]);
    }
    n1 = 0;
    n2 = 12 * loop;
    n3 = 14 * loop;
    n4 = 345 * loop;
    n6 = 210 * loop;
    n7 = 32 * loop;
    n8 = 899 * loop;

    /* Module 1: simple identifiers */
    x1 = 1.0;
    x2 = -1.0;
    x3 = -1.0;
    x4 = -1.0;
    for (i = 0; i < n1; i++) {
        x1 = (x1 + x2 + x3 - x4) * t;
        x2 = (x1 + x2 - x3 + x4) * t;
        x3 = (x1 - x2 + x3 + x4) * t;
        x4 = (-x1 + x2 + x3 + x4) * t;
    }

    /* Module 2: array elements */
    e1[1] = 1.0;
    e1[2] = -1.0;
    e1[3] = -1.0;
    e1[4] = -1.0;
    for (i = 0; i < n2; i++) {
        e1[1] = (e1[1] + e1[2] + e1[3] - e1[4]) * t;
        e1[2] = (e1[1] + e1[2] - e1[3] + e1[4]) * t;
        e1[3] = (e1[1] - e1[2] + e1[3] + e1[4]) * t;
        e1[4] = (-e1[1] + e1[2] + e1[3] + e1[4]) * t;
    }

    /* Module 3: array as parameter */
    for (i = 0; i < n3; i++) {
        pa(e1);
    }

    /* Module 4: conditional jumps */
    j = 1;
    for (i = 0; i < n4; i++) {
        if (j == 1) {
            j = 2;
        } else {
            j = 3;
        }
        if (j > 2) {
            j = 0;
        } else {
            j = 1;
        }
        if (j < 1) {
            j = 1;
        } else {
            j = 0;
        }
    }

    /* Module 6: integer arithmetic */
    j = 1;
    k = 2;
    l = 3;
    for (i = 0; i < n6; i++) {
        j = j * (k - j) * (l - k);
        k = l * k - (l - j) * k;
        l = (l - k) * (k + j);
        e1[l - 2] = j + k + l;
        e1[k - 2] = j * k * l;
    }

    /* Module 7: trigonometric functions */
    x = 0.5;
    y = 0.5;
    for (i = 0; i < n7; i++) {
        x = t * atan(t2 * sin(x) * cos(x) / (cos(x + y) + cos(x - y) - 1.0));
        y = t * atan(t2 * sin(y) * cos(y) / (cos(x + y) + cos(x - y) - 1.0));
    }

    /* Module 8: procedure calls */
    x = 1.0;
    y = 1.0;
    z = 1.0;
    for (i = 0; i < n8; i++) {
        p3(x, y, &z);
    }

    /* Module 10-ish: standard functions */
    x = 0.75;
    for (i = 0; i < n7; i++) {
        x = sqrt(exp(log(x) / t1));
    }

    ix = j + k + l;
    p0(&j, &k, &l);
    printf("whetstone done ix=%d x=%.6f z=%.6f\n", ix, x, z);
    return 0;
}
