/* nbody — Computer Language Benchmarks Game: Jovian planet simulation.
 * Argument: number of simulation steps (default 1000). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

#define PI 3.141592653589793
#define SOLAR_MASS (4 * PI * PI)
#define DAYS_PER_YEAR 365.24
#define NBODIES 5

struct body {
    double x, y, z;
    double vx, vy, vz;
    double mass;
};

static struct body bodies[NBODIES];

static void init_bodies(void) {
    /* Sun */
    bodies[0].mass = SOLAR_MASS;
    /* Jupiter */
    bodies[1].x = 4.84143144246472090e+00;
    bodies[1].y = -1.16032004402742839e+00;
    bodies[1].z = -1.03622044471123109e-01;
    bodies[1].vx = 1.66007664274403694e-03 * DAYS_PER_YEAR;
    bodies[1].vy = 7.69901118419740425e-03 * DAYS_PER_YEAR;
    bodies[1].vz = -6.90460016972063023e-05 * DAYS_PER_YEAR;
    bodies[1].mass = 9.54791938424326609e-04 * SOLAR_MASS;
    /* Saturn */
    bodies[2].x = 8.34336671824457987e+00;
    bodies[2].y = 4.12479856412430479e+00;
    bodies[2].z = -4.03523417114321381e-01;
    bodies[2].vx = -2.76742510726862411e-03 * DAYS_PER_YEAR;
    bodies[2].vy = 4.99852801234917238e-03 * DAYS_PER_YEAR;
    bodies[2].vz = 2.30417297573763929e-05 * DAYS_PER_YEAR;
    bodies[2].mass = 2.85885980666130812e-04 * SOLAR_MASS;
    /* Uranus */
    bodies[3].x = 1.28943695621391310e+01;
    bodies[3].y = -1.51111514016986312e+01;
    bodies[3].z = -2.23307578892655734e-01;
    bodies[3].vx = 2.96460137564761618e-03 * DAYS_PER_YEAR;
    bodies[3].vy = 2.37847173959480950e-03 * DAYS_PER_YEAR;
    bodies[3].vz = -2.96589568540237556e-05 * DAYS_PER_YEAR;
    bodies[3].mass = 4.36624404335156298e-05 * SOLAR_MASS;
    /* Neptune */
    bodies[4].x = 1.53796971148509165e+01;
    bodies[4].y = -2.59193146099879641e+01;
    bodies[4].z = 1.79258772950371181e-01;
    bodies[4].vx = 2.68067772490389322e-03 * DAYS_PER_YEAR;
    bodies[4].vy = 1.62824170038242295e-03 * DAYS_PER_YEAR;
    bodies[4].vz = -9.51592254519715870e-05 * DAYS_PER_YEAR;
    bodies[4].mass = 5.15138902046611451e-05 * SOLAR_MASS;
}

static void offset_momentum(void) {
    double px = 0.0, py = 0.0, pz = 0.0;
    int i;
    for (i = 0; i < NBODIES; i++) {
        px += bodies[i].vx * bodies[i].mass;
        py += bodies[i].vy * bodies[i].mass;
        pz += bodies[i].vz * bodies[i].mass;
    }
    bodies[0].vx = -px / SOLAR_MASS;
    bodies[0].vy = -py / SOLAR_MASS;
    bodies[0].vz = -pz / SOLAR_MASS;
}

static void advance(double dt) {
    int i, j;
    for (i = 0; i < NBODIES; i++) {
        for (j = i + 1; j < NBODIES; j++) {
            double dx = bodies[i].x - bodies[j].x;
            double dy = bodies[i].y - bodies[j].y;
            double dz = bodies[i].z - bodies[j].z;
            double d2 = dx * dx + dy * dy + dz * dz;
            double mag = dt / (d2 * sqrt(d2));
            bodies[i].vx -= dx * bodies[j].mass * mag;
            bodies[i].vy -= dy * bodies[j].mass * mag;
            bodies[i].vz -= dz * bodies[j].mass * mag;
            bodies[j].vx += dx * bodies[i].mass * mag;
            bodies[j].vy += dy * bodies[i].mass * mag;
            bodies[j].vz += dz * bodies[i].mass * mag;
        }
    }
    for (i = 0; i < NBODIES; i++) {
        bodies[i].x += dt * bodies[i].vx;
        bodies[i].y += dt * bodies[i].vy;
        bodies[i].z += dt * bodies[i].vz;
    }
}

static double energy(void) {
    double e = 0.0;
    int i, j;
    for (i = 0; i < NBODIES; i++) {
        e += 0.5 * bodies[i].mass *
             (bodies[i].vx * bodies[i].vx + bodies[i].vy * bodies[i].vy +
              bodies[i].vz * bodies[i].vz);
        for (j = i + 1; j < NBODIES; j++) {
            double dx = bodies[i].x - bodies[j].x;
            double dy = bodies[i].y - bodies[j].y;
            double dz = bodies[i].z - bodies[j].z;
            e -= (bodies[i].mass * bodies[j].mass) / sqrt(dx * dx + dy * dy + dz * dz);
        }
    }
    return e;
}

int main(int argc, char **argv) {
    int n = 1000;
    int i;
    if (argc > 1) {
        n = atoi(argv[1]);
    }
    init_bodies();
    offset_momentum();
    printf("%.9f\n", energy());
    for (i = 0; i < n; i++) {
        advance(0.01);
    }
    printf("%.9f\n", energy());
    return 0;
}
