// Package benchprog bundles the C benchmark programs of the paper's
// performance evaluation (§4.2–4.3): the Computer Language Benchmarks Game
// programs plus whetstone, each parameterized by a single size argument so
// the harness can scale work per engine.
package benchprog

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed progs
var progFS embed.FS

// Benchmark describes one benchmark program.
type Benchmark struct {
	Name string
	// Source is the C source text.
	Source string
	// SmallArg/DefaultArg size one iteration for tests vs. measurements.
	SmallArg   string
	DefaultArg string
	// AllocHeavy marks allocation-intensive workloads (binarytrees), which
	// the paper reports separately in §4.3.
	AllocHeavy bool
}

var sizes = map[string]struct {
	small, def string
	alloc      bool
}{
	"nbody":         {"200", "5000", false},
	"spectralnorm":  {"40", "160", false},
	"mandelbrot":    {"24", "96", false},
	"fannkuchredux": {"6", "8", false},
	"fasta":         {"100", "2000", false},
	"fastaredux":    {"100", "2000", false},
	"binarytrees":   {"6", "10", true},
	"meteor":        {"6", "9", false},
	"whetstone":     {"5", "60", false},
}

// All returns every benchmark, sorted by name.
func All() []Benchmark {
	entries, err := progFS.ReadDir("progs")
	if err != nil {
		panic("benchprog: embedded programs missing: " + err.Error())
	}
	var out []Benchmark
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".c")
		data, err := progFS.ReadFile("progs/" + e.Name())
		if err != nil {
			panic("benchprog: " + err.Error())
		}
		sz, ok := sizes[name]
		if !ok {
			panic(fmt.Sprintf("benchprog: no size entry for %s", name))
		}
		out = append(out, Benchmark{
			Name:       name,
			Source:     string(data),
			SmallArg:   sz.small,
			DefaultArg: sz.def,
			AllocHeavy: sz.alloc,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns one benchmark by name.
func Get(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("benchprog: unknown benchmark %q", name)
}

// Names lists benchmark names.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}
