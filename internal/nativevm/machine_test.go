package nativevm

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/nativemem"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func run(t *testing.T, src string, cfg Config) (int, error, *Machine) {
	t.Helper()
	m, err := New(build(t, src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	code, rerr := m.Run()
	return code, rerr, m
}

func TestMachineArithmetic(t *testing.T) {
	code, err, _ := run(t, `module "t"
func @main fn() i32 regs 3 {
entry:
  %r0 = mul i32 6, 7
  ret i32 %r0
}
`, Config{})
	if err != nil || code != 42 {
		t.Errorf("got (%d, %v)", code, err)
	}
}

func TestMachineStackAllocaAdjacency(t *testing.T) {
	// Two allocas are adjacent on the simulated stack: an overflow of the
	// second lands in the first, silently.
	code, err, _ := run(t, `module "t"
func @main fn() i32 regs 8 {
entry:
  %r0 = alloca [4 x i8] name "a"
  %r1 = alloca [4 x i8] name "b"
  store i8 7, %r0
  %r2 = gep %r1, 1, 16
  store i8 99, %r2
  %r3 = load i8, %r0
  %r4 = sext i8 %r3 to i32
  ret i32 %r4
}
`, Config{})
	if err != nil {
		t.Fatalf("intra-stack overflow must be silent: %v", err)
	}
	_ = code // the write may or may not have hit 'a' depending on padding — silence is the point
}

func TestMachineNullFault(t *testing.T) {
	_, err, _ := run(t, `module "t"
func @main fn() i32 regs 2 {
entry:
  %r0 = load i32, null
  ret i32 %r0
}
`, Config{})
	f, ok := err.(*nativemem.Fault)
	if !ok || f.Addr >= nativemem.PageSize {
		t.Errorf("NULL load should fault on the zero page: %v", err)
	}
}

func TestMachineGlobalLayoutAndInit(t *testing.T) {
	code, err, m := run(t, `module "t"
global @a [2 x i32] = array [int 5, int 6]
global @s const [3 x i8] = bytes "ok\x00"
func @main fn() i32 regs 3 {
entry:
  %r0 = gep @a, 4, 1
  %r1 = load i32, %r0
  ret i32 %r1
}
`, Config{})
	if err != nil || code != 6 {
		t.Fatalf("got (%d, %v)", code, err)
	}
	s, f := m.Mem.CString(m.GlobalAddr("s"), 10)
	if f != nil || s != "ok" {
		t.Errorf("global string = %q", s)
	}
	if m.GlobalAddr("a") == 0 {
		t.Error("global not laid out")
	}
}

func TestMachineFunctionPointers(t *testing.T) {
	code, err, _ := run(t, `module "t"
func @seven fn() i32 regs 1 {
entry:
  ret i32 7
}
func @main fn() i32 regs 4 {
entry:
  %r0 = alloca ptr name "fp"
  store ptr &seven, %r0
  %r1 = load ptr, %r0
  %r2 = call i32 %r1() fixed 0
  ret i32 %r2
}
`, Config{})
	if err != nil || code != 7 {
		t.Errorf("got (%d, %v)", code, err)
	}
}

func TestMachineBadFunctionPointerFaults(t *testing.T) {
	_, err, _ := run(t, `module "t"
func @main fn() i32 regs 2 {
entry:
  %r0 = inttoptr i64 12345 to ptr
  %r1 = call i32 %r0() fixed 0
  ret i32 %r1
}
`, Config{})
	if err == nil {
		t.Error("jump to a non-text address must fault")
	}
}

func TestMachineArgvBlockLayout(t *testing.T) {
	cfg := Config{Args: []string{"one"}, Env: []string{"SECRET=x"}}
	code, err, m := run(t, `module "t"
func @main fn(i32, ptr) i32 regs 4 {
entry:
  %r2 = gep %r1, 8, 1
  %r3 = load ptr, %r2
  %r2 = ptrtoint ptr %r3 to i64
  %r2 = trunc i64 %r2 to i32
  ret i32 %r2
}
`, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = code
	// argv[argc] is NULL, and beyond it lies envp — the paper's leak.
	argvAddr, envpAddr, argc := m.buildArgvBlock()
	if argc != 2 {
		t.Fatalf("argc = %d", argc)
	}
	nullSlot, _ := m.Mem.Load(argvAddr+16, 8)
	if nullSlot != 0 {
		t.Error("argv[argc] must be NULL")
	}
	envp0, _ := m.Mem.Load(envpAddr, 8)
	if envp0 == 0 {
		t.Fatal("envp[0] missing")
	}
	s, _ := m.Mem.CString(envp0, 64)
	if s != "SECRET=x" {
		t.Errorf("env string = %q", s)
	}
	// Reading argv past its end (slot 3 = envp[0]) succeeds silently.
	leak, f := m.Mem.Load(argvAddr+24, 8)
	if f != nil {
		t.Fatal("argv overread must not fault")
	}
	leaked, _ := m.Mem.CString(leak, 64)
	if leaked != "SECRET=x" {
		t.Errorf("argv[3] should leak the environment, got %q", leaked)
	}
}

func TestMachineHeapReuse(t *testing.T) {
	alloc := NewFreeListAlloc(nativemem.New())
	a := alloc.Malloc(32)
	if err := alloc.Free(a); err != nil {
		t.Fatal(err)
	}
	b := alloc.Malloc(32)
	if a != b {
		t.Errorf("freed block should be reused immediately (LIFO): %#x vs %#x", a, b)
	}
	if _, ok := alloc.SizeOf(b); !ok {
		t.Error("live block should have a size")
	}
	if err := alloc.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := alloc.Free(b); err == nil {
		t.Error("double free should abort (glibc consistency check)")
	}
	if err := alloc.Free(0xdead0000); err == nil {
		t.Error("invalid free should abort")
	}
}

func TestMachineDivZeroTraps(t *testing.T) {
	code, err, _ := run(t, `module "t"
func @main fn() i32 regs 3 {
entry:
  %r0 = add i32 0, 0
  %r1 = sdiv i32 5, %r0
  ret i32 %r1
}
`, Config{})
	if err != nil || code != 136 {
		t.Errorf("division by zero should exit 136 (128+SIGFPE), got (%d, %v)", code, err)
	}
}

func TestMachineStepLimit(t *testing.T) {
	_, err, _ := run(t, `module "t"
func @main fn() i32 regs 1 {
entry:
  br entry
}
`, Config{MaxSteps: 500})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("want step-limit error, got %v", err)
	}
}

func TestFuncAddrRoundTrip(t *testing.T) {
	for _, idx := range []int{0, 1, 57, 4095} {
		if FuncIndexOf(FuncAddr(idx)) != idx {
			t.Errorf("round trip failed for %d", idx)
		}
	}
	if FuncIndexOf(0x1234) != -1 {
		t.Error("non-text address should map to -1")
	}
	if FuncIndexOf(FuncBase+7) != -1 {
		t.Error("misaligned text address should map to -1")
	}
}

func TestMachineVariadicAreaReadsPastEnd(t *testing.T) {
	// A variadic callee reading more slots than were passed reads stack
	// garbage, silently — the native varargs blind spot.
	code, err, _ := run(t, `module "t"
func @take fn(i32, ...) i32 regs 2 {
entry:
  ret i32 %r0
}
func @main fn() i32 regs 2 {
entry:
  %r0 = call i32 &take(i32 1, i32 2, i32 3) fixed 1
  ret i32 %r0
}
`, Config{})
	if err != nil || code != 1 {
		t.Errorf("got (%d, %v)", code, err)
	}
}
