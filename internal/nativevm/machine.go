// Package nativevm executes SIR on a simulated native machine: flat memory
// (internal/nativemem), a downward-growing stack, a reusing heap allocator,
// and a "precompiled" libc implemented in Go (internal/nlibc). It models the
// execution environment that ASan-instrumented binaries and Valgrind-hosted
// binaries actually run in, including every blind spot the paper exploits:
// adjacent objects, silent intra-page corruption, heap reuse after free, a
// kernel-initialized argv/envp block, and an uninstrumented libc.
package nativevm

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/memdesc"
	"repro/internal/nativemem"
)

// Address-space layout (lower 47 bits, AMD64-style).
const (
	GlobalBase = uint64(0x0000_0000_0001_0000)
	HeapBase   = uint64(0x0000_0000_1000_0000)
	StackTop   = uint64(0x0000_0000_7fff_0000)
	StackSize  = uint64(8 << 20) // 8 MiB, mapped eagerly
	// ArgvBase is just above the stack: the kernel-initialized block
	// holding argv pointers, envp pointers, and their strings. No tool
	// instruments it (paper case study 1).
	ArgvBase = StackTop + nativemem.PageSize

	// FuncBase is the fictitious text segment: function i has address
	// FuncBase + 16*i.
	FuncBase = uint64(0x0000_4000_0000_0000)

	// TypeStrBase is the region holding the NUL-terminated strings the
	// _type_of introspection builtin returns. It sits outside every guest-
	// reachable segment and is populated by interning (one deterministic
	// address per distinct type name, in first-use order) — never via the
	// gated heap allocator, so calling _type_of cannot shift a FailNth
	// fault-schedule coordinate.
	TypeStrBase = uint64(0x0000_3000_0000_0000)
	typeStrSize = uint64(64 << 10)
)

// Value is a native scalar: an integer/address or a float.
type Value struct {
	I int64
	F float64
}

// IntVal and FloatVal build Values.
func IntVal(v int64) Value     { return Value{I: v} }
func FloatVal(v float64) Value { return Value{F: v} }

// Frame is a native activation record.
type Frame struct {
	Fn      *ir.Func
	Regs    []Value
	VaBase  uint64 // start of this call's variadic area (0 if none)
	VaCount int
	savedSP uint64
	frameLo uint64 // lowest sp reached by this frame's allocas
	// stackBytes is the charged size of this frame's allocas; returned to
	// the fault injector's budget in the call epilogue (sp restore).
	stackBytes int64
}

// CallCtx is what a libc function receives: fixed args plus the variadic
// area, which it reads directly from memory (real varargs have no count;
// nlibc's printf walks the format string, exactly like the real one).
type CallCtx struct {
	Args    []Value
	VaBase  uint64
	VaCount int
	Frame   *Frame // the *calling* IR frame, for __ss_* compatibility shims
}

// LibFunc is a native library function implemented in Go ("precompiled").
type LibFunc func(m *Machine, call *CallCtx) (Value, error)

// Checker observes and vets memory traffic; ASan and memcheck implement it.
// A nil checker means raw native execution.
type Checker interface {
	// Load/Store return a report when the access violates the tool's model.
	Load(addr uint64, size int64) *core.BugError
	Store(addr uint64, size int64) *core.BugError
	// StackAlloc/StackFree/GlobalAlloc let tools poison redzones.
	StackAlloc(addr uint64, size int64)
	StackFree(lo, hi uint64)
	GlobalAlloc(addr uint64, size int64)
}

// Allocator is the heap implementation. ASan substitutes a redzone +
// quarantine allocator; memcheck wraps the default one with bookkeeping.
type Allocator interface {
	Malloc(size int64) uint64
	Free(addr uint64) error
	SizeOf(addr uint64) (int64, bool)
}

// Config configures a native machine.
type Config struct {
	Checker Checker
	// NewAllocator builds the heap allocator over the machine's memory.
	// nil uses the default first-fit, immediately-reusing allocator.
	NewAllocator func(mem *nativemem.Memory) Allocator
	// Libc binds external function names to native implementations.
	Libc map[string]LibFunc
	// StackRedzone adds poisoned padding around each stack object
	// (ASan-style); 0 packs objects adjacently (native reality).
	StackRedzone int64
	// GlobalRedzone likewise pads globals.
	GlobalRedzone int64
	// PerInstr, when set, runs before every interpreted instruction.
	// Binary-translation tools (memcheck) use it to charge the shadow
	// bookkeeping they perform on all operations, not only memory ones.
	PerInstr func(op int)

	Args     []string
	Env      []string
	Stdin    io.Reader
	Stdout   io.Writer
	MaxSteps int64
	MaxDepth int
	// MaxHeapBytes / MaxAllocBytes / FaultPlan mirror the managed engine's
	// resource budget (core.Config): every guest heap allocation — whichever
	// allocator the tool installed — is charged through one fault.Injector
	// gate wrapped around Machine.Alloc, so budgets and fault schedules bind
	// identically across all four engines. 0 = unlimited / no plan.
	MaxHeapBytes  int64
	MaxAllocBytes int64
	FaultPlan     fault.Plan
	// Governor, when non-nil, is the run's cooperative cancellation point:
	// the machine polls it at basic-block boundaries and libc fast paths
	// charge fuel against the same budget (execution governor).
	Governor *core.Governor
	// TrackTypes forces the type-identity mirror on (address-range memdesc
	// registrations for stack objects, globals, and cast-adopted heap
	// blocks). It is enabled automatically when the module declares any of
	// the introspection builtins; the hardened nlibc sets it explicitly so
	// its bounds clamping has the same source of truth.
	TrackTypes bool
	// Hardened makes the nlibc bulk-write family (memcpy/memset/strcpy/...)
	// consult the machine's object bookkeeping and truncate at the
	// destination's end instead of overflowing. Implies TrackTypes.
	Hardened bool
}

// Machine is a native execution engine instance.
type Machine struct {
	Mem   *nativemem.Memory
	Mod   *ir.Module
	Alloc Allocator

	cfg     Config
	checker Checker
	libc    map[string]LibFunc

	globalAddr map[string]uint64
	perInstr   func(op int)
	sp         uint64
	stackLow   uint64
	inj        *fault.Injector // heap budget + fault schedule (nil-safe)

	Stdout *bufio.Writer
	Stdin  *bufio.Reader
	sink   strings.Builder

	steps    int64
	maxSteps int64
	gov      *core.Governor
	depth    int
	maxDepth int

	// libc-private state (strtok pointer, rand seed, ungetc pushback).
	StrtokSave uint64
	RandState  uint64
	Ungot      int

	envpAddr uint64

	// Type-identity mirror (typeident.go): Types maps address ranges of
	// stack objects, globals, and cast-adopted heap blocks to the same
	// memdesc descriptors the managed engine hangs off core.Object, so the
	// introspection builtins and the hardened nlibc share one source of
	// truth with the managed family. Populated only when trackTypes is on
	// (the mirror is pure observation — native execution never checks it).
	Types      memdesc.Table
	trackTypes bool
	hardened   bool
	descCache  map[string]*memdesc.Desc
	castDesc   map[string]*memdesc.Desc
	typeStrs   map[string]uint64
	typeStrCur uint64

	// Shadow call stack: the machine analogue of a debugger unwinding the
	// real stack. callStack holds one frame per live call edge (caller
	// function + call-site line); curFn/curLine track the instruction being
	// executed; inLib marks execution inside a precompiled library function,
	// where the call edge already names the faulting site. Tools (ASan,
	// memcheck) read it through CaptureStack to put backtraces on reports.
	callStack diag.Stack
	curFn     string
	curLine   int
	inLib     bool
}

// EnvpAddr returns the address of the kernel-initialized envp array
// (0 before Run builds the argument block).
func (m *Machine) EnvpAddr() uint64 { return m.envpAddr }

// New builds a machine and lays out globals, stack, and the argv block.
func New(mod *ir.Module, cfg Config) (*Machine, error) {
	m := &Machine{
		Mem:        nativemem.New(),
		Mod:        mod,
		cfg:        cfg,
		checker:    cfg.Checker,
		perInstr:   cfg.PerInstr,
		libc:       cfg.Libc,
		globalAddr: map[string]uint64{},
		maxSteps:   cfg.MaxSteps,
		gov:        cfg.Governor,
		maxDepth:   cfg.MaxDepth,
		RandState:  1,
		Ungot:      -2,
	}
	if m.maxSteps == 0 {
		m.maxSteps = 2_000_000_000
	}
	if m.maxDepth == 0 {
		m.maxDepth = 4096
	}
	out := cfg.Stdout
	if out == nil {
		out = &m.sink
	}
	m.Stdout = bufio.NewWriter(out)
	in := cfg.Stdin
	if in == nil {
		in = strings.NewReader("")
	}
	m.Stdin = bufio.NewReader(in)

	m.inj = fault.NewInjector(cfg.FaultPlan, fault.Budget{
		MaxHeapBytes:  cfg.MaxHeapBytes,
		MaxAllocBytes: cfg.MaxAllocBytes,
	})
	if cfg.NewAllocator != nil {
		m.Alloc = cfg.NewAllocator(m.Mem)
	} else {
		m.Alloc = NewFreeListAlloc(m.Mem)
	}
	// One gate in front of whichever allocator the tool installed: budgets
	// and fault schedules apply before redzones/quarantine ever see the
	// request, so all four engines observe identical allocation outcomes.
	m.Alloc = &gatedAlloc{inner: m.Alloc, inj: m.inj, charged: map[uint64]int64{}}
	// Tools that perform data-proportional shadow work (ASan's range
	// checks, memcheck's A/V-bit updates) charge it against the machine's
	// step budget so instrumented bulk operations cannot escape MaxSteps.
	if fa, ok := any(m.checker).(interface{ SetFuel(func(n int64)) }); ok && m.checker != nil {
		fa.SetFuel(m.AddSteps)
	}
	// Tools that attach backtraces to their reports get the machine's shadow
	// call stack (same interface-assertion wiring as the fuel account).
	if sa, ok := any(m.checker).(interface {
		SetStackSource(func() diag.Stack)
	}); ok && m.checker != nil {
		sa.SetStackSource(m.CaptureStack)
	}

	// Stack.
	m.Mem.Map(StackTop-StackSize, StackSize)
	m.sp = StackTop
	m.stackLow = StackTop - StackSize

	m.hardened = cfg.Hardened
	m.trackTypes = cfg.TrackTypes || cfg.Hardened || moduleWantsIntrospection(mod)

	if err := m.layoutGlobals(); err != nil {
		return nil, err
	}
	return m, nil
}

// Checker returns the configured tool checker (nil for raw native).
func (m *Machine) Checker() Checker { return m.checker }

// PushCall records a call edge (caller function + call-site line) on the
// shadow call stack. O(1): one persistent-stack node.
func (m *Machine) PushCall(fn string, line int) {
	m.callStack = m.callStack.Push(diag.Frame{Func: fn, Line: line})
}

// PopCall removes the innermost call edge.
func (m *Machine) PopCall() { m.callStack = m.callStack.Pop() }

// CaptureStack returns the guest backtrace at the current instruction:
// the shadow call stack plus a synthesized leaf frame for the instruction
// being executed. Inside a precompiled library function the top call edge
// already names the faulting call site, so no leaf is added — reports from
// libc interceptors blame the guest call, exactly like real ASan output.
func (m *Machine) CaptureStack() diag.Stack {
	if m.inLib || m.curFn == "" {
		return m.callStack
	}
	return m.callStack.Push(diag.Frame{Func: m.curFn, Line: m.curLine})
}

// Output returns captured stdout when no writer was configured.
func (m *Machine) Output() string {
	m.Stdout.Flush()
	return m.sink.String()
}

// Steps reports executed instruction count.
func (m *Machine) Steps() int64 { return m.steps }

// MemStats exposes the fault plane's exact heap accounting for this run.
func (m *Machine) MemStats() fault.Stats { return m.inj.Stats() }

// AddSteps charges n steps of fuel without an inline budget check; the
// exhaustion is observed at the next instruction boundary. Checker tools
// use it for shadow bookkeeping (their interfaces have no error path).
func (m *Machine) AddSteps(n int64) { m.steps += n }

// ChargeSteps charges n steps of fuel against the machine's budget and
// polls the run governor. Libc fast paths that loop over guest memory
// (strlen, memcpy, the scanf character pump) call it so a bulk operation
// driven by a corrupted size consumes budget like interpreted code would.
func (m *Machine) ChargeSteps(n int64) error {
	m.steps += n
	if m.steps > m.maxSteps {
		return &core.LimitError{What: fmt.Sprintf("%d native steps", m.maxSteps)}
	}
	if m.gov.Stopped() {
		return m.gov.Err()
	}
	return nil
}

// layoutGlobals packs module globals into the data segment, in declaration
// order, with only natural alignment between them (adjacent objects!), plus
// the configured redzone when a tool asks for one.
func (m *Machine) layoutGlobals() error {
	addr := GlobalBase
	for _, g := range m.Mod.Globals {
		align := uint64(g.Ty.Align())
		if align < 1 {
			align = 1
		}
		addr = (addr + align - 1) / align * align
		size := g.Ty.Size()
		if size == 0 {
			size = 1
		}
		// Globals are charged against the run budget before they are mapped:
		// a huge global must not take down the host. C cannot report a
		// failed global, so exhaustion is hard (classified "oom").
		if m.inj.ChargeFixed(size) == fault.Exhausted {
			return &core.ResourceError{Resource: "global", Requested: size, Limit: m.inj.Limit()}
		}
		m.Mem.Map(addr, uint64(size))
		m.globalAddr[g.Name] = addr
		if m.checker != nil {
			m.checker.GlobalAlloc(addr, size)
		}
		if m.trackTypes && g.CType != "" {
			m.Types.Register(int64(addr), size, m.descFor(g.Ty, g.CType))
		}
		if g.Init != nil {
			if err := m.fillConst(addr, g.Init, g.Ty); err != nil {
				return fmt.Errorf("nativevm: initializing %s: %w", g.Name, err)
			}
		}
		addr += uint64(size)
		if m.cfg.GlobalRedzone > 0 {
			m.Mem.Map(addr, uint64(m.cfg.GlobalRedzone))
			addr += uint64(m.cfg.GlobalRedzone)
		}
	}
	return nil
}

func (m *Machine) fillConst(addr uint64, c ir.Const, ty ir.Type) error {
	switch v := c.(type) {
	case ir.ConstZero:
		return nil
	case ir.ConstIntVal:
		m.Mem.Store(addr, ty.Size(), uint64(v.V))
	case ir.ConstFloatVal:
		bits := 64
		if ft, ok := ty.(*ir.FloatType); ok {
			bits = ft.Bits
		}
		m.Mem.Store(addr, int64(bits/8), uint64(floatBits(v.V, bits)))
	case ir.ConstBytes:
		m.Mem.WriteBytes(addr, v.Data)
	case ir.ConstArrayVal:
		at := ty.(*ir.ArrayType)
		esz := at.Elem.Size()
		for i, el := range v.Elems {
			if err := m.fillConst(addr+uint64(int64(i)*esz), el, at.Elem); err != nil {
				return err
			}
		}
	case ir.ConstStructVal:
		st := ty.(*ir.StructType)
		for i, el := range v.Fields {
			if err := m.fillConst(addr+uint64(st.Fields[i].Offset), el, st.Fields[i].Ty); err != nil {
				return err
			}
		}
	case ir.ConstGlobalRef:
		target, ok := m.globalAddr[v.Sym]
		if !ok {
			return fmt.Errorf("forward global ref %q not yet laid out", v.Sym)
		}
		m.Mem.Store(addr, 8, target+uint64(v.Off))
	case ir.ConstFuncRef:
		idx := m.Mod.FuncIndex(v.Sym)
		if idx < 0 {
			return fmt.Errorf("unknown function %q", v.Sym)
		}
		m.Mem.Store(addr, 8, FuncAddr(idx))
	default:
		return fmt.Errorf("unhandled constant %T", c)
	}
	return nil
}

// FuncAddr returns the simulated text address of function idx.
func FuncAddr(idx int) uint64 { return FuncBase + uint64(idx)*16 }

// FuncIndexOf inverts FuncAddr; returns -1 for non-text addresses.
func FuncIndexOf(addr uint64) int {
	if addr < FuncBase || (addr-FuncBase)%16 != 0 {
		return -1
	}
	return int((addr - FuncBase) / 16)
}

// GlobalAddr returns the data-segment address of a named global.
func (m *Machine) GlobalAddr(name string) uint64 { return m.globalAddr[name] }

// buildArgvBlock lays out the kernel argument block exactly as execve does:
// argv pointer array, NULL, envp pointer array, NULL, then the strings.
// Reading argv[i] past argc walks into envp — the paper's information leak.
func (m *Machine) buildArgvBlock() (argvAddr, envpAddr uint64, argc int64) {
	args := append([]string{"program"}, m.cfg.Args...)
	env := m.cfg.Env
	total := uint64(8*(len(args)+1+len(env)+1)) + 4096
	m.Mem.Map(ArgvBase, total)

	argvAddr = ArgvBase
	envpAddr = ArgvBase + uint64(8*(len(args)+1))
	strBase := envpAddr + uint64(8*(len(env)+1))
	cur := strBase
	writeStr := func(s string) uint64 {
		at := cur
		m.Mem.WriteBytes(cur, append([]byte(s), 0))
		cur += uint64(len(s) + 1)
		return at
	}
	for i, a := range args {
		m.Mem.Store(argvAddr+uint64(8*i), 8, writeStr(a))
	}
	m.Mem.Store(argvAddr+uint64(8*len(args)), 8, 0)
	for i, kv := range env {
		m.Mem.Store(envpAddr+uint64(8*i), 8, writeStr(kv))
	}
	m.Mem.Store(envpAddr+uint64(8*len(env)), 8, 0)
	m.envpAddr = envpAddr
	return argvAddr, envpAddr, int64(len(args))
}

// Run executes main() and returns the exit code. A *core.BugError is a tool
// report; a *nativemem.Fault is a machine trap (crash).
func (m *Machine) Run() (int, error) {
	mainIdx := m.Mod.FuncIndex("main")
	if mainIdx < 0 {
		return 127, fmt.Errorf("nativevm: program has no main function")
	}
	argvAddr, envpAddr, argc := m.buildArgvBlock()
	mainFn := m.Mod.Funcs[mainIdx]
	var args []Value
	switch len(mainFn.Sig.Params) {
	case 0:
	case 1:
		args = []Value{IntVal(argc)}
	case 2:
		args = []Value{IntVal(argc), IntVal(int64(argvAddr))}
	default:
		args = []Value{IntVal(argc), IntVal(int64(argvAddr)), IntVal(int64(envpAddr))}
	}
	ret, err := m.Call(mainIdx, args, 0, 0)
	m.Stdout.Flush()
	if err != nil {
		if ex, ok := err.(*core.ExitError); ok {
			return ex.Code, nil
		}
		return -1, err
	}
	return int(int32(ret.I)), nil
}

func floatBits(f float64, bits int) uint64 {
	if bits == 32 {
		return uint64(f32bits(float32(f)))
	}
	return f64bits(f)
}
