package nativevm

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
)

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }
func f32from(b uint32) float32 { return math.Float32frombits(b) }
func f64from(b uint64) float64 { return math.Float64frombits(b) }

// Call invokes function idx. vaBase/vaCount describe a variadic area the
// caller already wrote to the stack (0 for none).
func (m *Machine) Call(idx int, args []Value, vaBase uint64, vaCount int) (Value, error) {
	return m.callFrom(nil, idx, args, vaBase, vaCount)
}

// callFrom is Call with the calling IR frame attached, so library functions
// that model compiler builtins (__ss_count_varargs) can inspect the
// caller's variadic area.
func (m *Machine) callFrom(caller *Frame, idx int, args []Value, vaBase uint64, vaCount int) (Value, error) {
	f := m.Mod.Funcs[idx]
	if f.IsDecl {
		lf, ok := m.libc[f.Name]
		if !ok {
			return Value{}, fmt.Errorf("nativevm: call to unresolved external %q", f.Name)
		}
		// Library code runs with inLib set: tool reports raised inside it
		// (interceptors, the replacement allocator) use the call edge on the
		// shadow stack as their innermost frame. Saved and restored because
		// libc can call back into guest code (qsort comparators).
		prevLib := m.inLib
		m.inLib = true
		ret, err := lf(m, &CallCtx{Args: args, VaBase: vaBase, VaCount: vaCount, Frame: caller})
		m.inLib = prevLib
		return ret, err
	}
	if m.depth >= m.maxDepth {
		// Native recursion exhaustion is a stack overflow: the simulated
		// machine traps when sp leaves the mapped stack; model it directly.
		return Value{}, &core.ExitError{Code: 139}
	}
	fr := &Frame{Fn: f, Regs: make([]Value, f.NumRegs), VaBase: vaBase, VaCount: vaCount, savedSP: m.sp}
	for i := 0; i < len(f.Sig.Params) && i < len(args); i++ {
		fr.Regs[i] = args[i]
	}
	m.depth++
	ret, err := m.exec(fr)
	m.depth--
	// Epilogue: release the frame's stack range.
	if m.checker != nil && m.sp < fr.savedSP {
		m.checker.StackFree(m.sp, fr.savedSP)
	}
	if m.trackTypes && m.sp < fr.savedSP {
		// Retire the frame's stack type registrations: an address range
		// reused by a later frame must not inherit this frame's types.
		m.Types.RemoveRange(int64(m.sp), int64(fr.savedSP))
	}
	m.sp = fr.savedSP
	m.inj.ReleaseFixed(fr.stackBytes) // return alloca bytes to the budget
	return ret, err
}

// CallAddr invokes a function through a simulated text address (function
// pointers, qsort comparators).
func (m *Machine) CallAddr(addr uint64, args []Value) (Value, error) {
	idx := FuncIndexOf(addr)
	if idx < 0 || idx >= len(m.Mod.Funcs) {
		return Value{}, &nativeFaultErr{addr: addr}
	}
	return m.Call(idx, args, 0, 0)
}

type nativeFaultErr struct{ addr uint64 }

func (e *nativeFaultErr) Error() string {
	return fmt.Sprintf("segmentation fault: jump to invalid address 0x%x", e.addr)
}

// exec runs one frame to completion.
func (m *Machine) exec(fr *Frame) (Value, error) {
	f := fr.Fn
	// Shadow location tracking: record which guest function/line is
	// executing so tool reports can synthesize their innermost frame. The
	// previous values are restored on return (nested exec via calls).
	prevFn, prevLine, prevLib := m.curFn, m.curLine, m.inLib
	m.curFn, m.inLib = f.Name, false
	defer func() {
		m.curFn, m.curLine, m.inLib = prevFn, prevLine, prevLib
	}()
	blk, ii := 0, 0
	for {
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, &core.LimitError{What: fmt.Sprintf("%d native steps", m.maxSteps)}
		}
		if ii == 0 && m.gov.Stopped() {
			// Cancellation point: polled once per basic block entered.
			return Value{}, m.gov.Err()
		}
		in := &f.Blocks[blk].Instrs[ii]
		if in.Line > 0 {
			m.curLine = in.Line
		}
		if m.perInstr != nil {
			m.perInstr(int(in.Op))
		}
		switch in.Op {
		case ir.OpAlloca:
			count := int64(1)
			if cnt, ok := in.CountOp(); ok {
				count = m.oper(fr, cnt).I
			}
			size := in.Ty.Size() * count
			if size < 1 {
				size = 1
			}
			addr, err := m.stackAlloc(fr, size, in.Ty.Align())
			if err != nil {
				return Value{}, err
			}
			if m.trackTypes && in.CType != "" {
				m.Types.Register(int64(addr), size, m.descFor(in.Ty, in.CType))
			}
			fr.Regs[in.Dst] = IntVal(int64(addr))

		case ir.OpLoad:
			addr := uint64(m.oper(fr, in.Addr).I)
			v, err := m.LoadMem(addr, in.Ty)
			if err != nil {
				return Value{}, err
			}
			fr.Regs[in.Dst] = v

		case ir.OpStore:
			addr := uint64(m.oper(fr, in.Addr).I)
			if err := m.StoreMem(addr, in.Ty, m.oper(fr, in.A)); err != nil {
				return Value{}, err
			}

		case ir.OpGEP:
			base := m.oper(fr, in.Addr).I
			idx := m.oper(fr, in.A).I
			fr.Regs[in.Dst] = IntVal(base + in.Stride*idx)

		case ir.OpBin:
			a, b := m.oper(fr, in.A), m.oper(fr, in.B)
			if in.Bin.IsFloatOp() {
				bits := 64
				if ft, ok := in.Ty.(*ir.FloatType); ok {
					bits = ft.Bits
				}
				fr.Regs[in.Dst] = FloatVal(ir.EvalFloatBin(in.Bin, bits, a.F, b.F))
			} else {
				v, ok := ir.EvalIntBin(in.Bin, bitsOf(in.Ty), a.I, b.I)
				if !ok {
					// Division by zero traps on the machine (SIGFPE).
					return Value{}, &core.ExitError{Code: 136}
				}
				fr.Regs[in.Dst] = IntVal(v)
			}

		case ir.OpCmp:
			a, b := m.oper(fr, in.A), m.oper(fr, in.B)
			var r bool
			switch {
			case in.Pred.IsFloatPred():
				r = ir.EvalFloatCmp(in.Pred, a.F, b.F)
			case ir.IsPtr(in.Ty):
				r = ir.EvalIntCmp(in.Pred, 64, a.I, b.I)
			default:
				r = ir.EvalIntCmp(in.Pred, bitsOf(in.Ty), a.I, b.I)
			}
			fr.Regs[in.Dst] = IntVal(boolInt(r))

		case ir.OpCast:
			a := m.oper(fr, in.A)
			switch in.Cast {
			case ir.PtrToInt, ir.IntToPtr, ir.Bitcast:
				if in.Cast == ir.Bitcast && in.CType != "" {
					// Checked cast site: native execution never validates it
					// (that is the blind spot), but a fresh heap block adopts
					// the target type so introspection mirrors the managed
					// engine's answer.
					m.adoptHeapType(uint64(a.I), in)
				}
				fr.Regs[in.Dst] = a
			default:
				i, fl, isF := ir.EvalCast(in.Cast, bitsOf(in.Ty), bitsOf(in.Ty2), a.I, a.F)
				if isF {
					fr.Regs[in.Dst] = FloatVal(fl)
				} else {
					fr.Regs[in.Dst] = IntVal(i)
				}
			}

		case ir.OpSelect:
			if m.oper(fr, in.A).I != 0 {
				fr.Regs[in.Dst] = m.oper(fr, in.B)
			} else {
				fr.Regs[in.Dst] = m.oper(fr, in.C)
			}

		case ir.OpCall:
			ret, err := m.execCall(fr, in)
			if err != nil {
				return Value{}, err
			}
			if in.Dst >= 0 {
				fr.Regs[in.Dst] = ret
			}

		case ir.OpBr:
			blk, ii = in.Blk0, 0
			continue
		case ir.OpCondBr:
			if m.oper(fr, in.A).I != 0 {
				blk = in.Blk0
			} else {
				blk = in.Blk1
			}
			ii = 0
			continue
		case ir.OpSwitch:
			v := m.oper(fr, in.A).I
			blk = in.Blk0
			for _, c := range in.Cases {
				if c.Val == v {
					blk = c.Blk
					break
				}
			}
			ii = 0
			continue
		case ir.OpRet:
			if in.A.Kind == ir.OperNone {
				return Value{}, nil
			}
			return m.oper(fr, in.A), nil
		case ir.OpUnreachable:
			return Value{}, &nativeFaultErr{addr: 0}
		default:
			return Value{}, fmt.Errorf("nativevm: invalid opcode %d", in.Op)
		}
		ii++
	}
}

// stackAlloc carves a stack object, with optional tool redzones around it.
// The object's bytes are charged against the run budget (released in the
// call epilogue); exhaustion is hard — the machine cannot express a failed
// alloca as a value — so it surfaces a *core.ResourceError ("oom").
func (m *Machine) stackAlloc(fr *Frame, size, align int64) (uint64, error) {
	rz := uint64(m.cfg.StackRedzone)
	m.sp -= rz // redzone above the object
	m.sp -= uint64(size)
	if align < 16 {
		align = 16
	}
	m.sp &^= uint64(align - 1)
	addr := m.sp
	m.sp -= rz // redzone below
	if m.sp < m.stackLow {
		return 0, &nativeFaultErr{addr: m.sp} // stack overflow
	}
	if m.inj.ChargeFixed(size) == fault.Exhausted {
		return 0, &core.ResourceError{
			Resource:  "stack",
			Requested: size,
			Limit:     m.inj.Limit(),
			Guest:     m.CaptureStack(),
		}
	}
	if fr != nil {
		fr.stackBytes += size
	}
	if m.checker != nil {
		m.checker.StackAlloc(addr, size)
	}
	return addr, nil
}

// execCall resolves a call instruction: direct, libc, or indirect.
func (m *Machine) execCall(fr *Frame, in *ir.Instr) (Value, error) {
	var idx int
	switch in.Callee.Kind {
	case ir.OperFunc:
		idx = m.Mod.FuncIndex(in.Callee.Sym)
	default:
		addr := uint64(m.oper(fr, in.Callee).I)
		idx = FuncIndexOf(addr)
		if idx < 0 || idx >= len(m.Mod.Funcs) {
			return Value{}, &nativeFaultErr{addr: addr}
		}
	}
	nFixed := in.FixedArgs
	if nFixed > len(in.Args) {
		nFixed = len(in.Args)
	}
	args := make([]Value, 0, nFixed)
	for i := 0; i < nFixed; i++ {
		args = append(args, m.oper(fr, in.Args[i]))
	}
	// Variadic area: extra arguments go into 8-byte stack slots. There is
	// no count on the machine; reading past the last slot reads whatever
	// the stack holds next.
	var vaBase uint64
	spBeforeVa := m.sp
	vaCount := len(in.Args) - nFixed
	if vaCount > 0 {
		m.sp -= uint64(8 * vaCount)
		m.sp &^= 15
		vaBase = m.sp
		for i := 0; i < vaCount; i++ {
			a := in.Args[nFixed+i]
			v := m.oper(fr, a)
			var raw uint64
			if _, isFloat := a.Ty.(*ir.FloatType); isFloat {
				raw = f64bits(v.F)
			} else {
				raw = uint64(v.I)
			}
			m.Mem.Store(vaBase+uint64(8*i), 8, raw)
		}
	} else {
		vaCount = 0
	}
	// Record the call edge on the shadow call stack before transferring
	// control — including to precompiled libc, so allocator and interceptor
	// reports can name the guest call site.
	m.PushCall(fr.Fn.Name, in.Line)
	ret, err := m.callFrom(fr, idx, args, vaBase, vaCount)
	m.PopCall()
	if vaBase != 0 {
		m.sp = spBeforeVa // pop the va area
	}
	return ret, err
}

// LoadMem performs a typed load with tool checking and machine faulting.
func (m *Machine) LoadMem(addr uint64, ty ir.Type) (Value, error) {
	size := ty.Size()
	if m.checker != nil {
		if rep := m.checker.Load(addr, size); rep != nil {
			return Value{}, rep
		}
	}
	raw, fault := m.Mem.Load(addr, size)
	if fault != nil {
		return Value{}, fault
	}
	switch t := ty.(type) {
	case *ir.FloatType:
		if t.Bits == 32 {
			return FloatVal(float64(f32from(uint32(raw)))), nil
		}
		return FloatVal(f64from(raw)), nil
	case *ir.IntType:
		return IntVal(ir.SignExtend(int64(raw), t.Bits)), nil
	default: // pointer
		return IntVal(int64(raw)), nil
	}
}

// StoreMem performs a typed store with tool checking and machine faulting.
func (m *Machine) StoreMem(addr uint64, ty ir.Type, v Value) error {
	size := ty.Size()
	if m.checker != nil {
		if rep := m.checker.Store(addr, size); rep != nil {
			return rep
		}
	}
	var raw uint64
	switch t := ty.(type) {
	case *ir.FloatType:
		raw = floatBits(v.F, t.Bits)
	default:
		raw = uint64(v.I)
	}
	if fault := m.Mem.Store(addr, size, raw); fault != nil {
		return fault
	}
	return nil
}

func (m *Machine) oper(fr *Frame, o ir.Operand) Value {
	switch o.Kind {
	case ir.OperReg:
		return fr.Regs[o.Reg]
	case ir.OperConstInt:
		return IntVal(o.Int)
	case ir.OperConstFloat:
		return FloatVal(o.Flt)
	case ir.OperGlobal:
		return IntVal(int64(m.globalAddr[o.Sym]))
	case ir.OperFunc:
		return IntVal(int64(FuncAddr(m.Mod.FuncIndex(o.Sym))))
	case ir.OperNull:
		return IntVal(0)
	}
	return Value{}
}

func bitsOf(t ir.Type) int {
	switch v := t.(type) {
	case *ir.IntType:
		return v.Bits
	case *ir.FloatType:
		return v.Bits
	}
	return 64
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
